package sim

import (
	"testing"
	"testing/quick"

	"eddie/internal/cfg"
	"eddie/internal/isa"
)

func TestCacheHitMissSequence(t *testing.T) {
	c := newCache(CacheConfig{SizeBytes: 1024, LineBytes: 64, Ways: 2, HitLatency: 1})
	// 1024/64/2 = 8 sets.
	if c.sets != 8 {
		t.Fatalf("sets = %d, want 8", c.sets)
	}
	if c.access(0) {
		t.Error("cold access should miss")
	}
	if !c.access(0) {
		t.Error("second access should hit")
	}
	if !c.access(63) {
		t.Error("same line should hit")
	}
	if c.access(64) {
		t.Error("next line should miss")
	}
	// Set 0 now holds tag 0. Bring in two more tags that map to set 0:
	// the second fill evicts the LRU entry, which is tag 0.
	c.access(0)          // tag 0 most recent so far
	c.access(8 * 64)     // set 0, second way (tag 8); now tag 0 is LRU
	c.access(2 * 8 * 64) // set 0, evicts tag 0
	if !c.access(8 * 64) {
		t.Error("recently used line must survive the eviction")
	}
	if c.access(0) {
		t.Error("LRU line should have been evicted")
	}
}

func TestCacheLRUInvariantProperty(t *testing.T) {
	// Property: the most recently accessed line always hits immediately
	// afterwards, regardless of the access history.
	f := func(addrs []uint16) bool {
		c := newCache(CacheConfig{SizeBytes: 512, LineBytes: 32, Ways: 2, HitLatency: 1})
		for _, a := range addrs {
			c.access(uint64(a))
			if !c.access(uint64(a)) {
				return false
			}
		}
		return c.Accesses == int64(2*len(addrs)) && c.Misses <= int64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	cfgv := DefaultIoT()
	h := newHierarchy(cfgv)
	lat1, lvl1 := h.access(1000)
	if lvl1 != hitMem {
		t.Errorf("cold access served by %v, want DRAM", lvl1)
	}
	wantCold := cfgv.L1.HitLatency + cfgv.L2.HitLatency + cfgv.MemLatency
	if lat1 != wantCold {
		t.Errorf("cold latency = %d, want %d", lat1, wantCold)
	}
	lat2, lvl2 := h.access(1000)
	if lvl2 != hitL1 || lat2 != cfgv.L1.HitLatency {
		t.Errorf("warm access: latency %d level %v", lat2, lvl2)
	}
}

func TestBimodalPredictorLearnsBias(t *testing.T) {
	p := newBimodal(64)
	// A branch that is always taken should quickly stop mispredicting.
	miss := 0
	for i := 0; i < 100; i++ {
		if !p.predictAndUpdate(42, true) {
			miss++
		}
	}
	if miss > 3 {
		t.Errorf("%d mispredictions on an always-taken branch", miss)
	}
	// Alternating branch on a fresh key: bimodal should mispredict a lot.
	p2 := newBimodal(64)
	miss = 0
	for i := 0; i < 100; i++ {
		if !p2.predictAndUpdate(7, i%2 == 0) {
			miss++
		}
	}
	if miss < 30 {
		t.Errorf("alternating branch mispredicted only %d/100 times", miss)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultIoT()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := DefaultOOO().Validate(); err != nil {
		t.Fatalf("default OOO config invalid: %v", err)
	}
	bad := good
	bad.IssueWidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero issue width accepted")
	}
	bad = good
	bad.L1.LineBytes = 48 // not a power of two
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two line size accepted")
	}
	bad = DefaultOOO()
	bad.ROBSize = 0
	if err := bad.Validate(); err == nil {
		t.Error("OOO with no ROB accepted")
	}
	bad = good
	bad.SamplePeriod = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero sample period accepted")
	}
}

// buildLoopProgram makes a two-nest program for engine tests.
func buildLoopProgram() *isa.Program {
	b := isa.NewBuilder("engine_test", 64)
	entry := b.NewBlock("entry")
	h1 := b.NewBlock("h1")
	b1 := b.NewBlock("b1")
	mid := b.NewBlock("mid")
	h2 := b.NewBlock("h2")
	b2 := b.NewBlock("b2")
	exit := b.NewBlock("exit")
	entry.Li(1, 2000).Li(0, 0).Li(3, 0)
	entry.Jump(h1)
	h1.Branch(isa.GT, 1, 0, b1, mid)
	b1.AndI(4, 1, 31).Load(5, 4, 0).Add(3, 3, 5).SubI(1, 1, 1)
	b1.Jump(h1)
	mid.Li(1, 1000).Nop().Nop()
	mid.Jump(h2)
	h2.Branch(isa.GT, 1, 0, b2, exit)
	b2.Mul(5, 1, 1).Store(5, 32, 5).SubI(1, 1, 1)
	b2.Jump(h2)
	exit.Halt()
	return b.Build()
}

func TestEngineProducesPowerAndSegments(t *testing.T) {
	p := buildLoopProgram()
	machine, err := cfg.BuildMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, machine, DefaultIoT(), isa.ExecConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Power) == 0 {
		t.Fatal("no power samples")
	}
	for i, pw := range res.Power {
		if pw <= 0 {
			t.Fatalf("power sample %d is %g; leakage should keep it positive", i, pw)
		}
	}
	if res.Stats.Cycles <= 0 || res.Stats.DynInstrs <= 0 {
		t.Fatalf("bad stats: %+v", res.Stats)
	}
	// Power length matches the cycle count.
	wantSamples := int(res.Stats.Cycles/int64(DefaultIoT().SamplePeriod)) + 1
	if len(res.Power) != wantSamples && len(res.Power) != wantSamples-1 {
		t.Errorf("power samples = %d, want ~%d", len(res.Power), wantSamples)
	}
	// Segments: ordered, non-overlapping, both loop regions present.
	var prevEnd int64
	seen := map[cfg.RegionID]bool{}
	for _, s := range res.Segments {
		if s.StartCycle < prevEnd {
			t.Fatalf("segments overlap: %+v", res.Segments)
		}
		if s.EndCycle <= s.StartCycle {
			t.Fatalf("empty segment: %+v", s)
		}
		prevEnd = s.EndCycle
		seen[s.Region] = true
	}
	if !seen[machine.LoopRegionOf(0)] || !seen[machine.LoopRegionOf(1)] {
		t.Errorf("loop regions missing from segments: %v", res.Segments)
	}
}

func TestEngineOOOFasterThanNarrowInOrder(t *testing.T) {
	p := buildLoopProgram()
	machine, err := cfg.BuildMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	narrow := DefaultIoT()
	narrow.IssueWidth = 1
	resNarrow, err := Run(p, machine, narrow, isa.ExecConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	resOoo, err := Run(p, machine, DefaultOOO(), isa.ExecConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resOoo.Stats.Cycles >= resNarrow.Stats.Cycles {
		t.Errorf("4-wide OOO (%d cycles) not faster than 1-wide in-order (%d cycles)",
			resOoo.Stats.Cycles, resNarrow.Stats.Cycles)
	}
	if ipc := resOoo.Stats.IPC(); ipc <= 0.5 || ipc > 4 {
		t.Errorf("OOO IPC = %.2f, outside plausible (0.5, 4]", ipc)
	}
}

func TestEngineDeterminism(t *testing.T) {
	p := buildLoopProgram()
	machine, err := cfg.BuildMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(p, machine, DefaultIoT(), isa.ExecConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, machine, DefaultIoT(), isa.ExecConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Errorf("stats differ across identical runs:\n%+v\n%+v", a.Stats, b.Stats)
	}
	for i := range a.Power {
		if a.Power[i] != b.Power[i] {
			t.Fatalf("power differs at sample %d", i)
		}
	}
}

func TestEngineInjectedMarks(t *testing.T) {
	p := buildLoopProgram()
	machine, err := cfg.BuildMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	// Wrap: inject 100 flagged instructions after the 500th instruction.
	wrap := func(next isa.Consumer) isa.Consumer {
		n := 0
		fired := false
		return func(di *isa.DynInstr) bool {
			n++
			if n == 500 && !fired {
				fired = true
				inj := isa.DynInstr{Op: isa.Add, Injected: true, MemAddr: -1, Block: di.Block}
				for i := 0; i < 100; i++ {
					if !next(&inj) {
						return false
					}
				}
			}
			return next(di)
		}
	}
	res, err := Run(p, machine, DefaultIoT(), isa.ExecConfig{}, wrap)
	if err != nil {
		t.Fatal(err)
	}
	marked := 0
	for _, inj := range res.InjectedSamples {
		if inj {
			marked++
		}
	}
	if marked == 0 {
		t.Error("no power samples marked injected")
	}
	if marked > 40 {
		t.Errorf("%d samples marked; 100 instructions should span far fewer", marked)
	}
}

func TestMispredictionsSlowDeepPipelines(t *testing.T) {
	p := buildLoopProgram()
	machine, err := cfg.BuildMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	shallow := DefaultIoT()
	shallow.PipelineDepth = 4
	deep := DefaultIoT()
	deep.PipelineDepth = 24
	a, err := Run(p, machine, shallow, isa.ExecConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, machine, deep, isa.ExecConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Mispredicts != b.Stats.Mispredicts {
		t.Fatalf("mispredict counts differ: %d vs %d", a.Stats.Mispredicts, b.Stats.Mispredicts)
	}
	if b.Stats.Cycles <= a.Stats.Cycles {
		t.Errorf("deep pipeline (%d cycles) not slower than shallow (%d)", b.Stats.Cycles, a.Stats.Cycles)
	}
}

// TestROBLimitsMemoryParallelism: with long-latency loads in flight, a
// tiny ROB stalls dispatch while a large one overlaps the misses.
func TestROBLimitsMemoryParallelism(t *testing.T) {
	// Program: a pointer-free scan with a cache-missing load every
	// iteration (large stride defeats both cache levels).
	b := isa.NewBuilder("rob_test", 1<<20)
	entry := b.NewBlock("entry")
	head := b.NewBlock("head")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	entry.Li(1, 4000).Li(0, 0).Li(2, 0).Li(3, 0)
	entry.Jump(head)
	head.Branch(isa.GT, 1, 0, body, exit)
	body.
		AddI(2, 2, 1024). // stride: 8 KB per access
		Load(4, 2, 0).    // independent miss
		Add(3, 3, 1).     // independent ALU work
		SubI(1, 1, 1)
	body.Jump(head)
	exit.Halt()
	p := b.Build()
	machine, err := cfg.BuildMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	run := func(rob int) int64 {
		c := DefaultOOO()
		c.ROBSize = rob
		res, err := Run(p, machine, c, isa.ExecConfig{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Cycles
	}
	small := run(4)
	large := run(256)
	if large >= small {
		t.Errorf("256-entry ROB (%d cycles) not faster than 4-entry (%d cycles)", large, small)
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	p := buildLoopProgram()
	machine, err := cfg.BuildMachine(p)
	if err != nil {
		b.Fatal(err)
	}
	c := DefaultIoT()
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		res, err := Run(p, machine, c, isa.ExecConfig{}, nil)
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.Stats.DynInstrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}
