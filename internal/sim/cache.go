package sim

// cache is one set-associative cache level with true-LRU replacement.
// Addresses are byte addresses; the simulator converts the ISA's
// word addresses by multiplying by 8.
type cache struct {
	cfg      CacheConfig
	sets     int
	lineBits uint
	setMask  uint64
	// tags[set*ways+way] holds the line tag; valid tracks occupancy; lru
	// holds a recency counter (higher = more recent).
	tags  []uint64
	valid []bool
	lru   []uint64
	tick  uint64

	// Statistics.
	Accesses int64
	Misses   int64
}

func newCache(cfg CacheConfig) *cache {
	lines := cfg.SizeBytes / cfg.LineBytes
	sets := lines / cfg.Ways
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineBytes {
		lineBits++
	}
	return &cache{
		cfg:      cfg,
		sets:     sets,
		lineBits: lineBits,
		setMask:  uint64(sets - 1),
		tags:     make([]uint64, lines),
		valid:    make([]bool, lines),
		lru:      make([]uint64, lines),
	}
}

// access looks up addr, allocating the line on a miss (write-allocate for
// stores, standard allocate for loads). It returns true on a hit.
func (c *cache) access(addr uint64) bool {
	c.Accesses++
	c.tick++
	line := addr >> c.lineBits
	var set uint64
	if c.setMask != 0 {
		set = line & c.setMask
	}
	base := int(set) * c.cfg.Ways
	tag := line
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.lru[base+w] = c.tick
			return true
		}
	}
	c.Misses++
	// Fill: pick an invalid way, else the least recently used.
	victim := base
	for w := 0; w < c.cfg.Ways; w++ {
		if !c.valid[base+w] {
			victim = base + w
			break
		}
		if c.lru[base+w] < c.lru[victim] {
			victim = base + w
		}
	}
	c.valid[victim] = true
	c.tags[victim] = tag
	c.lru[victim] = c.tick
	return false
}

// reset clears contents and statistics.
func (c *cache) reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.lru[i] = 0
		c.tags[i] = 0
	}
	c.tick = 0
	c.Accesses = 0
	c.Misses = 0
}

// memLevel reports which level served an access: 1 = L1, 2 = L2, 3 = DRAM.
type memLevel int

const (
	hitL1  memLevel = 1
	hitL2  memLevel = 2
	hitMem memLevel = 3
)

// hierarchy is the two-level cache hierarchy.
type hierarchy struct {
	l1, l2     *cache
	memLatency int64
}

func newHierarchy(cfg Config) *hierarchy {
	return &hierarchy{
		l1:         newCache(cfg.L1),
		l2:         newCache(cfg.L2),
		memLatency: cfg.MemLatency,
	}
}

// access returns the latency of a data access and the level that served it.
func (h *hierarchy) access(wordAddr int64) (int64, memLevel) {
	addr := uint64(wordAddr) * 8
	if h.l1.access(addr) {
		return h.l1.cfg.HitLatency, hitL1
	}
	if h.l2.access(addr) {
		return h.l1.cfg.HitLatency + h.l2.cfg.HitLatency, hitL2
	}
	return h.l1.cfg.HitLatency + h.l2.cfg.HitLatency + h.memLatency, hitMem
}

// bimodal is a table of 2-bit saturating counters indexed by a hash of the
// branch's block id.
type bimodal struct {
	counters []uint8
	mask     uint64

	// Statistics.
	Lookups     int64
	Mispredicts int64
}

func newBimodal(entries int) *bimodal {
	// Round up to a power of two for cheap masking.
	n := 1
	for n < entries {
		n <<= 1
	}
	c := make([]uint8, n)
	for i := range c {
		c[i] = 1 // weakly not-taken
	}
	return &bimodal{counters: c, mask: uint64(n - 1)}
}

func (b *bimodal) index(key uint64) uint64 {
	key ^= key >> 7
	key *= 0x9e3779b97f4a7c15
	return (key >> 17) & b.mask
}

// predictAndUpdate returns whether the prediction matched the outcome and
// trains the counter.
func (b *bimodal) predictAndUpdate(key uint64, taken bool) bool {
	b.Lookups++
	i := b.index(key)
	pred := b.counters[i] >= 2
	if taken && b.counters[i] < 3 {
		b.counters[i]++
	} else if !taken && b.counters[i] > 0 {
		b.counters[i]--
	}
	if pred != taken {
		b.Mispredicts++
		return false
	}
	return true
}
