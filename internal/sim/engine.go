package sim

import (
	"fmt"

	"eddie/internal/cfg"
	"eddie/internal/isa"
)

// Segment is one region-occupancy interval of the execution: the program
// was in Region for cycles [StartCycle, EndCycle).
type Segment struct {
	Region     cfg.RegionID
	StartCycle int64
	EndCycle   int64
}

// Stats collects microarchitectural counters for one run.
type Stats struct {
	DynInstrs   int64
	Cycles      int64
	L1Accesses  int64
	L1Misses    int64
	L2Accesses  int64
	L2Misses    int64
	Branches    int64
	Mispredicts int64
}

// IPC returns instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.DynInstrs) / float64(s.Cycles)
}

// Engine is the timing/power model. Feed it the dynamic instruction stream
// (optionally after an injector has tampered with it) and call Finalize.
type Engine struct {
	cfg     Config
	machine *cfg.Machine
	hier    *hierarchy
	pred    *bimodal

	regReady   [isa.NumRegs]int64
	fetchAvail int64
	lastIssue  int64
	lastRetire int64
	maxCycle   int64
	idx        int64
	widthRing  []int64
	retireRing []int64

	energy   []float64
	injected []bool

	// Region tracking. curNest >= 0 while inside a loop nest; -1 during a
	// transition. lastNest remembers the loop nest we most recently left.
	curNest    int
	lastNest   int
	segStart   int64
	transStart int64
	segments   []Segment

	stats Stats
}

// NewEngine creates a timing engine for one run. machine provides the
// block-to-region mapping used for the region trace.
func NewEngine(machine *cfg.Machine, config Config) (*Engine, error) {
	if err := config.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:       config,
		machine:   machine,
		hier:      newHierarchy(config),
		pred:      newBimodal(config.PredictorEntries),
		widthRing: make([]int64, config.IssueWidth),
		curNest:   -1,
		lastNest:  cfg.Boundary,
	}
	if config.Kind == OutOfOrder {
		e.retireRing = make([]int64, config.ROBSize)
	}
	return e, nil
}

// Feed consumes one dynamic instruction. It always returns true (the
// engine never aborts a run); the signature matches isa.Consumer.
func (e *Engine) Feed(di *isa.DynInstr) bool {
	c := &e.cfg
	earliest := e.fetchAvail
	if e.idx >= int64(c.IssueWidth) {
		if t := e.widthRing[e.idx%int64(c.IssueWidth)] + 1; t > earliest {
			earliest = t
		}
	}
	if c.Kind == OutOfOrder {
		if e.idx >= int64(c.ROBSize) {
			if t := e.retireRing[e.idx%int64(c.ROBSize)]; t > earliest {
				earliest = t
			}
		}
	} else if e.lastIssue > earliest {
		// In-order issue: never issue before an older instruction.
		earliest = e.lastIssue
	}

	srcReady := e.sourceReady(di)
	issue := earliest
	if srcReady > issue {
		issue = srcReady
	}

	energy := c.Energy.Fetch
	var lat int64 = 1
	switch {
	case di.IsBranch:
		e.stats.Branches++
		energy += c.Energy.Branch
		correct := e.pred.predictAndUpdate(uint64(di.Block), di.Taken)
		if !correct {
			e.fetchAvail = issue + lat + int64(c.PipelineDepth)
			energy += c.Energy.Mispred
		}
	case di.Op == isa.Mul:
		lat = 4
		energy += c.Energy.Mul
	case di.Op == isa.Div || di.Op == isa.Rem:
		lat = 12
		energy += c.Energy.Div
	case di.Op == isa.Load:
		memLat, level := e.hier.access(di.MemAddr)
		lat = memLat
		energy += e.memEnergy(level)
	case di.Op == isa.Store:
		// Stores retire through a write buffer: dependents don't wait for
		// the cache, but the access still happens (for state and energy).
		_, level := e.hier.access(di.MemAddr)
		lat = 1
		energy += e.memEnergy(level)
	default:
		energy += c.Energy.ALU
	}

	complete := issue + lat
	if e.writesDst(di) {
		e.regReady[di.Dst] = complete
	}
	retire := complete
	if e.lastRetire > retire {
		retire = e.lastRetire
	}
	e.lastRetire = retire
	if retire > e.maxCycle {
		e.maxCycle = retire
	}
	e.widthRing[e.idx%int64(c.IssueWidth)] = issue
	if c.Kind == OutOfOrder {
		e.retireRing[e.idx%int64(c.ROBSize)] = retire
	} else {
		e.lastIssue = issue
	}
	e.idx++
	e.stats.DynInstrs++

	e.addEnergy(issue, energy)
	if di.Injected {
		e.markInjected(issue)
	}
	e.trackRegion(di, retire)
	return true
}

func (e *Engine) sourceReady(di *isa.DynInstr) int64 {
	switch {
	case di.IsBranch:
		return max64(e.regReady[di.A], e.regReady[di.B])
	case di.Op == isa.Nop || di.Op == isa.LoadImm:
		return 0
	case di.Op == isa.Mov || di.Op == isa.Load:
		return e.regReady[di.A]
	case di.Op == isa.Store:
		return max64(e.regReady[di.A], e.regReady[di.B])
	default:
		return max64(e.regReady[di.A], e.regReady[di.B])
	}
}

func (e *Engine) writesDst(di *isa.DynInstr) bool {
	if di.IsBranch || di.Injected {
		// Injected instructions use no architectural registers (the
		// paper's idealized dead-register injection), so they never
		// lengthen the host program's dependence chains.
		return false
	}
	switch di.Op {
	case isa.Nop, isa.Store:
		return false
	default:
		return true
	}
}

func (e *Engine) memEnergy(level memLevel) float64 {
	c := &e.cfg.Energy
	switch level {
	case hitL1:
		return c.L1Access
	case hitL2:
		return c.L1Access + c.L2Access
	default:
		return c.L1Access + c.L2Access + c.MemAccess
	}
}

func (e *Engine) bucket(cycle int64) int {
	return int(cycle / int64(e.cfg.SamplePeriod))
}

func (e *Engine) addEnergy(cycle int64, v float64) {
	b := e.bucket(cycle)
	for len(e.energy) <= b {
		e.energy = append(e.energy, 0)
	}
	e.energy[b] += v
}

func (e *Engine) markInjected(cycle int64) {
	b := e.bucket(cycle)
	for len(e.injected) <= b {
		e.injected = append(e.injected, false)
	}
	e.injected[b] = true
}

// trackRegion advances the region trace given the block of the current
// instruction and the current (retire) cycle.
func (e *Engine) trackRegion(di *isa.DynInstr, now int64) {
	nest := -1
	if int(di.Block) < len(e.machine.BlockNest) {
		nest = e.machine.BlockNest[di.Block]
	}
	if e.curNest >= 0 {
		switch {
		case nest == e.curNest:
			return
		case nest >= 0:
			// Direct hop from one nest to another.
			e.closeLoopSegment(now)
			e.curNest = nest
			e.segStart = now
		default:
			// Left the nest into inter-loop code.
			e.closeLoopSegment(now)
			e.curNest = -1
			e.transStart = now
		}
		return
	}
	// Currently in a transition (or at program start).
	if nest < 0 {
		return
	}
	if now > e.transStart {
		if id, ok := e.machine.TransRegionOf(e.lastNest, nest); ok {
			e.segments = append(e.segments, Segment{Region: id, StartCycle: e.transStart, EndCycle: now})
		} else {
			e.segments = append(e.segments, Segment{Region: cfg.NoRegion, StartCycle: e.transStart, EndCycle: now})
		}
	}
	e.curNest = nest
	e.segStart = now
}

func (e *Engine) closeLoopSegment(now int64) {
	if now > e.segStart {
		e.segments = append(e.segments, Segment{
			Region:     e.machine.LoopRegionOf(e.curNest),
			StartCycle: e.segStart,
			EndCycle:   now,
		})
	}
	e.lastNest = e.curNest
}

// RunResult is the output of one simulated run.
type RunResult struct {
	// Power is the sampled power trace: Power[k] is the average power in
	// cycles [k*SamplePeriod, (k+1)*SamplePeriod).
	Power []float64
	// InjectedSamples flags power samples whose interval contained at
	// least one injected instruction (ground truth for evaluation).
	InjectedSamples []bool
	// Segments is the region trace in cycles.
	Segments []Segment
	// Stats are the microarchitectural counters.
	Stats Stats
	// Config echoes the simulator configuration of the run.
	Config Config
}

// Duration returns the run length in seconds.
func (r *RunResult) Duration() float64 {
	return float64(r.Stats.Cycles) / r.Config.ClockHz
}

// Finalize closes the region trace and materializes the power signal.
func (e *Engine) Finalize() *RunResult {
	end := e.maxCycle + 1
	if e.curNest >= 0 {
		e.closeLoopSegment(end)
	} else if end > e.transStart {
		if id, ok := e.machine.TransRegionOf(e.lastNest, cfg.Boundary); ok {
			e.segments = append(e.segments, Segment{Region: id, StartCycle: e.transStart, EndCycle: end})
		} else {
			e.segments = append(e.segments, Segment{Region: cfg.NoRegion, StartCycle: e.transStart, EndCycle: end})
		}
	}
	nSamples := e.bucket(e.maxCycle) + 1
	power := make([]float64, nSamples)
	period := float64(e.cfg.SamplePeriod)
	for k := 0; k < nSamples; k++ {
		var dyn float64
		if k < len(e.energy) {
			dyn = e.energy[k]
		}
		power[k] = dyn/period + e.cfg.Energy.Leakage
	}
	injected := make([]bool, nSamples)
	copy(injected, e.injected)

	e.stats.Cycles = end
	e.stats.L1Accesses = e.hier.l1.Accesses
	e.stats.L1Misses = e.hier.l1.Misses
	e.stats.L2Accesses = e.hier.l2.Accesses
	e.stats.L2Misses = e.hier.l2.Misses
	e.stats.Mispredicts = e.pred.Mispredicts

	return &RunResult{
		Power:           power,
		InjectedSamples: injected,
		Segments:        e.segments,
		Stats:           e.stats,
		Config:          e.cfg,
	}
}

// Run executes program p functionally and through the timing model in one
// call. wrap, if non-nil, intercepts the dynamic instruction stream (this
// is where attack injectors hook in). machine must have been built for p.
func Run(p *isa.Program, machine *cfg.Machine, config Config, execCfg isa.ExecConfig, wrap func(isa.Consumer) isa.Consumer) (*RunResult, error) {
	if machine.Graph.Program != p {
		return nil, fmt.Errorf("sim: region machine was built for program %q, not %q", machine.Graph.Program.Name, p.Name)
	}
	engine, err := NewEngine(machine, config)
	if err != nil {
		return nil, err
	}
	consumer := isa.Consumer(engine.Feed)
	if wrap != nil {
		consumer = wrap(consumer)
	}
	if _, err := isa.Execute(p, execCfg, consumer); err != nil {
		return nil, err
	}
	return engine.Finalize(), nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
