// Package sim is the cycle-level microarchitecture simulator that stands in
// for SESC (with CACTI/WATTCH power models) in the paper's evaluation. It
// consumes the dynamic instruction stream produced by isa.Execute, models
// in-order and out-of-order pipelines, a two-level cache hierarchy and a
// bimodal branch predictor, and produces (a) a power trace sampled every
// SamplePeriod cycles and (b) a region trace: which loop/inter-loop region
// of the program occupied each cycle interval.
package sim

import "fmt"

// CoreKind selects the pipeline model.
type CoreKind int

const (
	// InOrder models a stall-on-hazard in-order superscalar pipeline
	// (the ARM Cortex-A8-like IoT configuration of the paper).
	InOrder CoreKind = iota
	// OutOfOrder models a dataflow-scheduled core bounded by a reorder
	// buffer (the paper's simulated 4-issue OOO configuration).
	OutOfOrder
)

// String names the core kind.
func (k CoreKind) String() string {
	switch k {
	case InOrder:
		return "in-order"
	case OutOfOrder:
		return "out-of-order"
	default:
		return fmt.Sprintf("CoreKind(%d)", int(k))
	}
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// LineBytes is the line size.
	LineBytes int
	// Ways is the associativity.
	Ways int
	// HitLatency is the access latency in cycles on a hit.
	HitLatency int64
}

// Validate checks the cache geometry.
func (c CacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("sim: cache config must be positive, got %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("sim: cache line size must be a power of two, got %d", c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines%c.Ways != 0 || lines/c.Ways == 0 {
		return fmt.Errorf("sim: cache geometry invalid: %d lines, %d ways", lines, c.Ways)
	}
	if c.HitLatency < 0 {
		return fmt.Errorf("sim: negative hit latency %d", c.HitLatency)
	}
	return nil
}

// EnergyConfig assigns an energy cost (arbitrary units, think pJ) to each
// microarchitectural event. The absolute scale is irrelevant to EDDIE —
// only the time-variation of power matters — but the relative costs shape
// how visible different instruction mixes are, which §5.7 of the paper
// studies (off-chip accesses are far more visible than ALU ops).
type EnergyConfig struct {
	Fetch     float64 // per instruction: fetch+decode+rename
	ALU       float64 // simple integer op
	Mul       float64
	Div       float64
	Branch    float64 // branch resolution
	L1Access  float64
	L2Access  float64
	MemAccess float64 // off-chip DRAM access
	Mispred   float64 // pipeline flush cost
	Leakage   float64 // static energy per cycle
}

// DefaultEnergy returns the WATTCH-flavoured default energy model.
func DefaultEnergy() EnergyConfig {
	return EnergyConfig{
		Fetch:     2,
		ALU:       3,
		Mul:       10,
		Div:       40,
		Branch:    4,
		L1Access:  6,
		L2Access:  30,
		MemAccess: 220,
		Mispred:   25,
		Leakage:   5,
	}
}

// Config is the complete simulator configuration.
type Config struct {
	// Kind selects in-order or out-of-order timing.
	Kind CoreKind
	// IssueWidth is the maximum instructions issued per cycle.
	IssueWidth int
	// PipelineDepth is the front-end depth; it sets the branch
	// misprediction penalty.
	PipelineDepth int
	// ROBSize is the reorder-buffer size (OutOfOrder only).
	ROBSize int
	// ClockHz is the core clock used to convert cycles to seconds.
	ClockHz float64
	// L1 and L2 are the cache levels; MemLatency is the miss penalty
	// beyond L2 in cycles.
	L1, L2     CacheConfig
	MemLatency int64
	// PredictorEntries is the bimodal branch predictor table size.
	PredictorEntries int
	// SamplePeriod is the power sampling period in cycles (the paper
	// samples the simulator's power signal every 20 cycles).
	SamplePeriod int
	// Energy is the event energy model.
	Energy EnergyConfig
}

// DefaultIoT returns the IoT-board-like configuration: a 2-issue in-order
// core, 32 KB L1 and 256 KB L2, modeled after the A13-OLinuXino's
// Cortex-A8. The clock is scaled down (100 MHz) to keep cycle-accurate
// simulation laptop-feasible; see DESIGN.md §5.
func DefaultIoT() Config {
	return Config{
		Kind:             InOrder,
		IssueWidth:       2,
		PipelineDepth:    13,
		ROBSize:          0,
		ClockHz:          100e6,
		L1:               CacheConfig{SizeBytes: 32 << 10, LineBytes: 64, Ways: 4, HitLatency: 1},
		L2:               CacheConfig{SizeBytes: 256 << 10, LineBytes: 64, Ways: 8, HitLatency: 10},
		MemLatency:       80,
		PredictorEntries: 1024,
		SamplePeriod:     8,
		Energy:           DefaultEnergy(),
	}
}

// DefaultOOO returns the paper's simulated configuration: a 4-issue
// out-of-order core with 32 KB L1 and a large L2.
func DefaultOOO() Config {
	c := DefaultIoT()
	c.Kind = OutOfOrder
	c.IssueWidth = 4
	c.PipelineDepth = 14
	c.ROBSize = 128
	c.L2 = CacheConfig{SizeBytes: 2 << 20, LineBytes: 64, Ways: 16, HitLatency: 12}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.IssueWidth <= 0 {
		return fmt.Errorf("sim: issue width must be positive, got %d", c.IssueWidth)
	}
	if c.PipelineDepth <= 0 {
		return fmt.Errorf("sim: pipeline depth must be positive, got %d", c.PipelineDepth)
	}
	if c.Kind == OutOfOrder && c.ROBSize <= 0 {
		return fmt.Errorf("sim: out-of-order core needs a positive ROB size, got %d", c.ROBSize)
	}
	if c.ClockHz <= 0 {
		return fmt.Errorf("sim: clock must be positive, got %g", c.ClockHz)
	}
	if err := c.L1.Validate(); err != nil {
		return err
	}
	if err := c.L2.Validate(); err != nil {
		return err
	}
	if c.MemLatency < 0 {
		return fmt.Errorf("sim: negative memory latency %d", c.MemLatency)
	}
	if c.PredictorEntries <= 0 {
		return fmt.Errorf("sim: predictor entries must be positive, got %d", c.PredictorEntries)
	}
	if c.SamplePeriod <= 0 {
		return fmt.Errorf("sim: sample period must be positive, got %d", c.SamplePeriod)
	}
	return nil
}

// SampleRate returns the power-trace sample rate in Hz.
func (c Config) SampleRate() float64 {
	return c.ClockHz / float64(c.SamplePeriod)
}
