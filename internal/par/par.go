// Package par provides the bounded worker pool that parallelizes run
// collection, the per-region training fan-out (core.TrainConfig.Workers)
// and the experiment harnesses, plus the process-wide parallelism knob
// behind the -parallel CLI flags and the EDDIE_PARALLELISM environment
// variable.
//
// Determinism contract: Do dispatches work by index and callers write
// results into index-addressed slots, so the assembled output of a
// successful parallel loop is byte-identical to running the same indices
// serially. Scheduling order is the only thing that varies.
package par

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// parallelism is the configured worker count; 0 means "resolve a default"
// (EDDIE_PARALLELISM, else GOMAXPROCS).
var parallelism atomic.Int64

// envOnce caches the EDDIE_PARALLELISM lookup.
var envOnce = sync.OnceValue(func() int {
	if s := os.Getenv("EDDIE_PARALLELISM"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 0
})

// SetParallelism fixes the worker count used by Do when callers pass
// workers <= 0. n <= 0 restores the default resolution (environment, then
// GOMAXPROCS). Safe for concurrent use.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int64(n))
}

// Parallelism resolves the effective default worker count: the value set
// via SetParallelism, else EDDIE_PARALLELISM, else GOMAXPROCS.
func Parallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	if n := envOnce(); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Do runs fn(i) for every i in [0, n) on a bounded pool of workers
// (workers <= 0 selects Parallelism()). It returns the error of the
// lowest index that failed, or nil. After the first observed failure no
// new indices are dispatched (indices already running finish), so on
// error some higher indices may not have run — callers treat any error as
// fatal for the whole loop, matching the serial early-return they
// replace.
func Do(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = Parallelism()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Inline fast path: identical to the historical serial loop,
		// including its stop-at-first-error behaviour.
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstErr error
		errIdx   = n
		failed   atomic.Bool
		wg       sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < errIdx {
						errIdx = i
						firstErr = err
					}
					mu.Unlock()
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
