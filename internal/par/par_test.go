package par

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestDoCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8, 33} {
		const n = 100
		var hits [n]atomic.Int32
		if err := Do(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestDoIndexedResultsMatchSerial(t *testing.T) {
	const n = 64
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 3, 16} {
		got := make([]int, n)
		if err := Do(n, workers, func(i int) error {
			got[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got[%d]=%d want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestDoReturnsLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 4} {
		err := Do(50, workers, func(i int) error {
			switch i {
			case 7:
				return errLow
			case 31:
				return errHigh
			}
			return nil
		})
		// With workers=1 index 31 never runs; with more workers it may,
		// but index 7 always runs before dispatch stops and must win.
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: got %v, want %v", workers, err, errLow)
		}
	}
}

func TestDoZeroAndNegativeN(t *testing.T) {
	calls := 0
	if err := Do(0, 4, func(int) error { calls++; return nil }); err != nil || calls != 0 {
		t.Fatalf("n=0: err=%v calls=%d", err, calls)
	}
	if err := Do(-3, 4, func(int) error { calls++; return nil }); err != nil || calls != 0 {
		t.Fatalf("n<0: err=%v calls=%d", err, calls)
	}
}

func TestParallelismResolution(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d after SetParallelism(3)", got)
	}
	SetParallelism(0)
	if got := Parallelism(); got < 1 {
		t.Fatalf("default Parallelism() = %d, want >= 1", got)
	}
}
