// Package pipeline wires the full EDDIE stack together: workload →
// cycle-level simulation → (optional) EM channel → STFT → STS extraction →
// training/monitoring. The experiment harnesses, the CLI tools and the
// examples all build on it.
package pipeline

import (
	"fmt"

	"eddie/internal/cfg"
	"eddie/internal/core"
	"eddie/internal/dsp"
	"eddie/internal/emsim"
	"eddie/internal/inject"
	"eddie/internal/isa"
	"eddie/internal/mibench"
	"eddie/internal/obs"
	"eddie/internal/par"
	"eddie/internal/sim"
	"eddie/internal/trace"
)

// Config describes one measurement pipeline: how the device is simulated
// and how its signal is captured and reduced to STSs.
type Config struct {
	// Sim is the simulated processor.
	Sim sim.Config
	// STFT controls the window analysis; its SampleRate must match
	// Sim.SampleRate(). Use DefaultSTFT.
	STFT dsp.STFTConfig
	// Peaks controls spectral peak extraction.
	Peaks dsp.PeakConfig
	// Denoise configures the optional SVD subspace denoising stage
	// applied to each power spectrum between the STFT and STS extraction.
	// The zero value disables it. The streaming detector applies the same
	// stage at the same point in the same order, so offline and streamed
	// reductions of one capture stay bit-identical with denoising on.
	Denoise dsp.DenoiseConfig
	// Channel, when non-nil, passes the power trace through the EM
	// channel + receiver (the "real IoT device" mode of Table 1). Nil
	// feeds the raw simulator power signal to EDDIE (Table 2 mode).
	Channel *emsim.ChannelConfig
	// MaxInstrs bounds each run.
	MaxInstrs int64
	// Trace, when non-nil, records a span per pipeline stage (simulate →
	// EM channel → detrend → STFT → peak extraction) on a per-run track,
	// exportable as Chrome trace-event JSON. Nil costs nothing.
	Trace *obs.Recorder
}

// DefaultSTFT returns the paper-equivalent STFT configuration for a
// simulator configuration: ~41 µs windows with 50% overlap (the paper's
// 0.1 ms windows, scaled with the reduced clock; see DESIGN.md §5).
func DefaultSTFT(sc sim.Config) dsp.STFTConfig {
	return dsp.STFTConfig{
		WindowSize: 512,
		HopSize:    256,
		Window:     dsp.Hann,
		SampleRate: sc.SampleRate(),
	}
}

// DefaultConfig returns the Table 1 style pipeline (IoT core + EM channel).
func DefaultConfig() Config {
	sc := sim.DefaultIoT()
	ch := emsim.DefaultChannel(sc.SampleRate())
	return Config{
		Sim:       sc,
		STFT:      DefaultSTFT(sc),
		Peaks:     defaultPeaks(),
		Channel:   &ch,
		MaxInstrs: 20_000_000,
	}
}

// defaultPeaks adapts the paper's 1%-of-total-window-energy rule to the
// AC-coupled (detrended) signal: the paper's denominator includes the
// carrier/DC line, ours does not, so the equivalent threshold on AC-only
// energy is higher. 2% lands in the paper's 7–15 peaks-per-window regime.
// The lowest bins are excluded: slow gain drift and residual DC live
// there, not loop activity.
func defaultPeaks() dsp.PeakConfig {
	p := dsp.DefaultPeakConfig()
	p.MinEnergyFraction = 0.02
	p.MinBin = 3
	return p
}

// SimulatorConfig returns the Table 2 style pipeline (OOO core, raw power
// signal, no channel noise).
func SimulatorConfig() Config {
	sc := sim.DefaultOOO()
	return Config{
		Sim:       sc,
		STFT:      DefaultSTFT(sc),
		Peaks:     defaultPeaks(),
		Channel:   nil,
		MaxInstrs: 20_000_000,
	}
}

// Run is the outcome of one monitored (or training) run.
type Run struct {
	// STS is the Short-Term Spectrum sequence.
	STS []core.STS
	// Sim is the raw simulation result.
	Sim *sim.RunResult
	// Signal is the signal EDDIE analyzed (power trace or demodulated EM).
	Signal []float64
}

// HopSeconds returns the STS hop duration of the pipeline.
func (c *Config) HopSeconds() float64 { return c.STFT.HopDuration() }

// CollectRun executes one run of the workload and reduces it to STSs.
// injector may be nil (clean run). runIdx selects the input and the
// channel noise realization.
func CollectRun(w *mibench.Workload, machine *cfg.Machine, c Config, runIdx int, injector inject.Injector) (*Run, error) {
	if c.STFT.SampleRate != c.Sim.SampleRate() {
		return nil, fmt.Errorf("pipeline: STFT sample rate %g != simulator sample rate %g",
			c.STFT.SampleRate, c.Sim.SampleRate())
	}
	var tk obs.Track
	if c.Trace != nil {
		tk = c.Trace.Track(fmt.Sprintf("run %d (%s)", runIdx, w.Name))
	}
	execCfg := isa.ExecConfig{MaxInstrs: c.MaxInstrs, InitMem: w.GenInput(runIdx)}
	var res *sim.RunResult
	var err error
	sp := tk.Start("simulate")
	if injector == nil {
		res, err = sim.Run(w.Program, machine, c.Sim, execCfg, nil)
	} else {
		res, err = sim.Run(w.Program, machine, c.Sim, execCfg, injector.Wrap)
	}
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("pipeline: %s run %d: %w", w.Name, runIdx, err)
	}

	signal := res.Power
	if c.Channel != nil {
		ch := *c.Channel
		ch.Seed = ch.Seed*1_000_003 + int64(runIdx)
		sp = tk.Start("em_channel")
		signal, err = emsim.Transmit(res.Power, ch)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("pipeline: EM channel: %w", err)
		}
	}
	sts, err := reduce(signal, res, c, tk)
	if err != nil {
		return nil, err
	}
	return &Run{STS: sts, Sim: res, Signal: signal}, nil
}

// Reduce converts a captured signal into the labeled STS sequence of its
// run: AC coupling, STFT, ground-truth labeling, peak extraction. It is
// the signal-to-STS tail of CollectRun, split out so a capture can be
// re-reduced after signal-level processing — the robustness experiments
// impair one collected signal at many severities without re-simulating.
func Reduce(signal []float64, res *sim.RunResult, c Config) ([]core.STS, error) {
	var tk obs.Track
	if c.Trace != nil {
		tk = c.Trace.Track("reduce")
	}
	return reduce(signal, res, c, tk)
}

// reduce is Reduce on an explicit trace track (CollectRun reuses its
// per-run track).
func reduce(signal []float64, res *sim.RunResult, c Config, tk obs.Track) ([]core.STS, error) {
	sp := tk.Start("detrend")
	detrended := dsp.Detrend(signal)
	sp.End()
	sp = tk.Start("stft")
	frames, err := dsp.STFT(detrended, c.STFT)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("pipeline: STFT: %w", err)
	}
	if c.Denoise.Enabled() {
		sp = tk.Start("denoise")
		dn, err := dsp.NewDenoiser(c.Denoise, c.STFT.WindowSize/2+1)
		if err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		// Push frames in stream order: the denoiser is causal, so this
		// produces the exact spectra the streaming detector would see.
		for i := range frames {
			dn.Push(frames[i].Power)
		}
		sp.End()
	}
	sp = tk.Start("extract_sts")
	labeled := trace.LabelFrames(frames, c.STFT, res)
	sts := core.ExtractSTS(labeled, c.STFT, c.Peaks)
	sp.End()
	return sts, nil
}

// CollectRuns executes several runs (run indices firstRun..firstRun+n-1)
// on the process-wide worker pool (par.Parallelism() workers; see the
// -parallel flags and EDDIE_PARALLELISM). Each run is seeded by its run
// index and results are written by index, so the output is byte-identical
// to collecting the same indices serially. On error, the lowest failing
// run index's error is returned.
func CollectRuns(w *mibench.Workload, machine *cfg.Machine, c Config, firstRun, n int, injector inject.Injector) ([][]core.STS, error) {
	out := make([][]core.STS, n)
	err := par.Do(n, 0, func(i int) error {
		r, err := CollectRun(w, machine, c, firstRun+i, injector)
		if err != nil {
			return err
		}
		out[i] = r.STS
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Train builds the region machine and trains a model from n clean runs.
func Train(w *mibench.Workload, c Config, nRuns int, tc core.TrainConfig) (*core.Model, *cfg.Machine, error) {
	machine, err := cfg.BuildMachine(w.Program)
	if err != nil {
		return nil, nil, err
	}
	runs, err := CollectRuns(w, machine, c, 0, nRuns, nil)
	if err != nil {
		return nil, nil, err
	}
	model, err := core.Train(w.Name, machine, runs, tc)
	if err != nil {
		return nil, nil, err
	}
	return model, machine, nil
}

// Monitor replays one STS sequence through a fresh monitor and returns it.
func Monitor(model *core.Model, sts []core.STS, mc core.MonitorConfig) (*core.Monitor, error) {
	mon, err := core.NewMonitor(model, mc)
	if err != nil {
		return nil, err
	}
	for i := range sts {
		mon.Observe(&sts[i])
	}
	return mon, nil
}

// MonitorAndScore replays a run and evaluates it against ground truth.
func MonitorAndScore(model *core.Model, c Config, sts []core.STS, mc core.MonitorConfig) (*core.Metrics, error) {
	mon, err := Monitor(model, sts, mc)
	if err != nil {
		return nil, err
	}
	return core.Evaluate(model, sts, mon.Outcomes, mon.Reports, c.HopSeconds())
}

// HotLoopHeaders profiles one functional run and returns, per nest, the
// loop header entered most often (the innermost hot loop).
func HotLoopHeaders(w *mibench.Workload, machine *cfg.Machine) ([]isa.BlockID, error) {
	loops := cfg.NaturalLoops(machine.Graph)
	isHeader := map[isa.BlockID]bool{}
	for _, l := range loops {
		isHeader[l.Header] = true
	}
	entries := map[isa.BlockID]int64{}
	prev := isa.NoBlock
	_, err := isa.Execute(w.Program, isa.ExecConfig{
		MaxInstrs: 20_000_000,
		InitMem:   w.GenInput(0),
	}, func(di *isa.DynInstr) bool {
		if di.Block != prev {
			prev = di.Block
			if isHeader[di.Block] {
				entries[di.Block]++
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make([]isa.BlockID, len(machine.Nests))
	for i, nest := range machine.Nests {
		best := nest.Header
		var bestCount int64 = -1
		for _, l := range loops {
			if !nest.Blocks[l.Header] {
				continue
			}
			if c := entries[l.Header]; c > bestCount {
				bestCount = c
				best = l.Header
			}
		}
		out[i] = best
	}
	return out, nil
}
