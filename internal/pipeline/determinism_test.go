package pipeline

import (
	"reflect"
	"testing"

	"eddie/internal/cfg"
	"eddie/internal/core"
	"eddie/internal/inject"
	"eddie/internal/mibench"
	"eddie/internal/par"
)

// TestCollectRunsParallelDeterminism is the scheduler's contract test:
// CollectRuns must produce byte-identical STS sequences at any worker
// count, because every run's seeds derive from its run index and results
// are written by index. Covers two workloads, clean and injected.
func TestCollectRunsParallelDeterminism(t *testing.T) {
	for _, name := range []string{"bitcount", "sha"} {
		w, err := mibench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		machine, err := cfg.BuildMachine(w.Program)
		if err != nil {
			t.Fatal(err)
		}
		c := SimulatorConfig()
		injectors := map[string]inject.Injector{
			"clean": nil,
			"inloop": &inject.InLoop{
				Header: machine.Nests[0].Header, Instrs: 8, MemOps: 4,
				Contamination: 1, Seed: 3,
			},
		}
		for mode, inj := range injectors {
			collect := func(workers int) [][]core.STS {
				par.SetParallelism(workers)
				defer par.SetParallelism(0)
				out, err := CollectRuns(w, machine, c, 500, 6, inj)
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", name, mode, workers, err)
				}
				return out
			}
			serial := collect(1)
			if len(serial) != 6 {
				t.Fatalf("%s/%s: got %d runs, want 6", name, mode, len(serial))
			}
			for _, workers := range []int{4, 8} {
				got := collect(workers)
				if !reflect.DeepEqual(got, serial) {
					t.Errorf("%s/%s: workers=%d output differs from serial", name, mode, workers)
				}
			}
		}
	}
}
