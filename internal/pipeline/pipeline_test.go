package pipeline

import (
	"testing"

	"eddie/internal/cfg"
	"eddie/internal/core"
	"eddie/internal/inject"
	"eddie/internal/mibench"
)

// TestSpectraCarryRegionStructure is the load-bearing integration check:
// loop regions must yield STFT windows with spectral peaks, and different
// regions must be spectrally distinguishable — the physical premise EDDIE
// rests on.
func TestSpectraCarryRegionStructure(t *testing.T) {
	w := mibench.Bitcount()
	machine, err := cfg.BuildMachine(w.Program)
	if err != nil {
		t.Fatal(err)
	}
	c := SimulatorConfig()
	run, err := CollectRun(w, machine, c, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.STS) < 50 {
		t.Fatalf("only %d windows; run too short", len(run.STS))
	}

	// Per-region statistics.
	type rstat struct {
		windows  int
		peaks    int
		topFreqs []float64
	}
	stats := map[cfg.RegionID]*rstat{}
	for i := range run.STS {
		s := &run.STS[i]
		rs := stats[s.Region]
		if rs == nil {
			rs = &rstat{}
			stats[s.Region] = rs
		}
		rs.windows++
		rs.peaks += len(s.PeakFreqs)
		if len(s.PeakFreqs) > 0 {
			rs.topFreqs = append(rs.topFreqs, s.PeakFreqs[0])
		}
	}
	loopRegionsWithPeaks := 0
	for id, rs := range stats {
		r := machine.Region(id)
		if r == nil {
			continue
		}
		t.Logf("region %v (%s): %d windows, %.1f peaks/window", id, r.Label, rs.windows, float64(rs.peaks)/float64(rs.windows))
		if r.Kind == cfg.LoopRegion && rs.windows >= 10 && rs.peaks > rs.windows {
			loopRegionsWithPeaks++
		}
	}
	if loopRegionsWithPeaks < 3 {
		t.Errorf("only %d loop regions produced peaky spectra; EDDIE needs loop peaks", loopRegionsWithPeaks)
	}
}

// TestTrainMonitorCleanRunIsQuiet trains on a few runs and verifies a held
// out clean run produces few false alarms and decent coverage.
func TestTrainMonitorCleanRunIsQuiet(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	w := mibench.Bitcount()
	c := SimulatorConfig()
	tc := core.DefaultTrainConfig()
	model, machine, err := Train(w, c, 12, tc)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("model:\n%s", model)

	run, err := CollectRun(w, machine, c, 100, nil) // unseen input
	if err != nil {
		t.Fatal(err)
	}
	m, err := MonitorAndScore(model, c, run.STS, core.DefaultMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("clean run: %s", m)
	if fp := m.FalsePositivePct(); fp > 10 {
		t.Errorf("false positive rate %.2f%% on a clean run; want < 10%%", fp)
	}
	if cov := m.CoveragePct(); cov < 50 {
		t.Errorf("coverage %.1f%%; want > 50%%", cov)
	}
}

// TestTrainMonitorDetectsBurstInjection verifies the headline behaviour: a
// shellcode-sized burst injected between two loops is reported.
func TestTrainMonitorDetectsBurstInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	w := mibench.Bitcount()
	c := SimulatorConfig()
	model, machine, err := Train(w, c, 12, core.DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	injector := &inject.Burst{
		BlockNest: machine.BlockNest,
		FromNest:  1,
		Count:     476_000,
	}
	run, err := CollectRun(w, machine, c, 200, injector)
	if err != nil {
		t.Fatal(err)
	}
	injected := 0
	for i := range run.STS {
		if run.STS[i].Injected {
			injected++
		}
	}
	if injected < 5 {
		t.Fatalf("burst produced only %d injected windows", injected)
	}
	m, err := MonitorAndScore(model, c, run.STS, core.DefaultMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("burst run: %s (injected windows: %d)", m, injected)
	if m.Detections == 0 {
		t.Error("burst injection was not detected")
	}
	if tpr := m.TruePositivePct(); tpr < 50 {
		t.Errorf("true positive rate %.1f%%; want > 50%%", tpr)
	}
}

// TestTrainMonitorDetectsInLoopInjection verifies that 8 instructions
// injected per loop iteration are detected.
func TestTrainMonitorDetectsInLoopInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	w := mibench.Bitcount()
	c := SimulatorConfig()
	model, machine, err := Train(w, c, 12, core.DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	injector := &inject.InLoop{
		Header:        machine.Nests[0].Header,
		Instrs:        8,
		MemOps:        4,
		Contamination: 1.0,
		Seed:          42,
	}
	run, err := CollectRun(w, machine, c, 300, injector)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MonitorAndScore(model, c, run.STS, core.DefaultMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("in-loop run: %s", m)
	if m.Detections == 0 {
		t.Error("in-loop injection was not detected")
	}
}

// TestEMChannelPipeline verifies the Table 1 mode: IoT core, EM channel
// with noise and interference, envelope receiver. The model must still
// train and a clean run must stay quiet.
func TestEMChannelPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	w := mibench.Bitcount()
	c := DefaultConfig()
	model, machine, err := Train(w, c, 12, core.DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("model:\n%s", model)
	run, err := CollectRun(w, machine, c, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MonitorAndScore(model, c, run.STS, core.DefaultMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("clean EM run: %s", m)
	if fp := m.FalsePositivePct(); fp > 15 {
		t.Errorf("false positive rate %.2f%% on a clean EM run", fp)
	}
	inj := &inject.Burst{BlockNest: machine.BlockNest, FromNest: 1, Count: 476_000}
	dirty, err := CollectRun(w, machine, c, 200, inj)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := MonitorAndScore(model, c, dirty.STS, core.DefaultMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("burst EM run: %s", dm)
	if dm.Detections == 0 {
		t.Error("burst not detected through the EM channel")
	}
}
