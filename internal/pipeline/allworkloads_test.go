package pipeline

import (
	"testing"

	"eddie/internal/cfg"
	"eddie/internal/core"
	"eddie/internal/mibench"
)

// TestAllWorkloadsTrainAndStayQuiet is the breadth check: every benchmark
// must train a usable model from a handful of runs and keep a held-out
// clean run essentially alarm-free in both pipeline modes.
func TestAllWorkloadsTrainAndStayQuiet(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	modes := []struct {
		name string
		cfg  Config
	}{
		{"sim", SimulatorConfig()},
		{"iot", DefaultConfig()},
	}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			for _, w := range mibench.All() {
				w := w
				t.Run(w.Name, func(t *testing.T) {
					model, machine, err := Train(w, mode.cfg, 10, core.DefaultTrainConfig())
					if err != nil {
						t.Fatalf("train: %v", err)
					}
					// Every loop nest with substantial dwell should be modeled.
					modeled := 0
					for nest := range machine.Nests {
						if model.Regions[machine.LoopRegionOf(nest)] != nil {
							modeled++
						}
					}
					if modeled < len(machine.Nests)-1 {
						t.Errorf("only %d of %d loop nests modeled", modeled, len(machine.Nests))
					}
					m, err := e2eScore(model, machine, w, mode.cfg)
					if err != nil {
						t.Fatal(err)
					}
					if fp := m.FalsePositivePct(); fp > 12 {
						t.Errorf("clean run FP %.1f%%", fp)
					}
					if cov := m.CoveragePct(); cov < 40 {
						t.Errorf("coverage %.1f%%", cov)
					}
				})
			}
		})
	}
}

func e2eScore(model *core.Model, machine *cfg.Machine, w *mibench.Workload, c Config) (*core.Metrics, error) {
	run, err := CollectRun(w, machine, c, 4242, nil)
	if err != nil {
		return nil, err
	}
	return MonitorAndScore(model, c, run.STS, core.DefaultMonitorConfig())
}
