// Package pipetest provides the shared trained-model fixture used by the
// stream, impair, pipeline and experiments test suites. Training even a
// small workload costs seconds, so each (workload, config, runs) flavor
// is trained once per process and shared; the tiny flavor cuts the
// instruction budget so `go test -short` exercises the full
// train-and-monitor path in a couple of seconds.
package pipetest

import (
	"fmt"
	"sync"
	"testing"

	"eddie/internal/cfg"
	"eddie/internal/core"
	"eddie/internal/mibench"
	"eddie/internal/pipeline"
)

// F is one trained fixture: a workload with its machine, model and the
// pipeline configuration it was trained under.
type F struct {
	W         *mibench.Workload
	Machine   *cfg.Machine
	Model     *core.Model
	Config    pipeline.Config
	TrainRuns int
}

// TinyConfig returns a scaled-down simulator pipeline (reduced
// instruction budget, no EM channel) that trains in a fraction of the
// full configuration's time while keeping the paper-equivalent STFT.
func TinyConfig() pipeline.Config {
	c := pipeline.SimulatorConfig()
	c.MaxInstrs = 2_000_000
	return c
}

// entry caches one fixture flavor.
type entry struct {
	once sync.Once
	f    *F
	err  error
}

var fixtures sync.Map // string -> *entry

// Train returns the cached fixture for (name, c, runs), training it on
// first use. Safe for concurrent use.
func Train(tb testing.TB, name string, c pipeline.Config, runs int) *F {
	tb.Helper()
	key := fmt.Sprintf("%s|%d|%+v", name, runs, c)
	v, _ := fixtures.LoadOrStore(key, &entry{})
	e := v.(*entry)
	e.once.Do(func() {
		w, err := mibench.ByName(name)
		if err != nil {
			e.err = err
			return
		}
		model, machine, err := pipeline.Train(w, c, runs, core.DefaultTrainConfig())
		if err != nil {
			e.err = err
			return
		}
		e.f = &F{W: w, Machine: machine, Model: model, Config: c, TrainRuns: runs}
	})
	if e.err != nil {
		tb.Fatalf("pipetest: training %s: %v", name, e.err)
	}
	return e.f
}

// Fixture returns the standard bitcount fixture: trained on the tiny
// configuration in short mode (a few seconds), on the full simulator
// configuration otherwise. The integration tests that used to skip
// under -short run against the tiny flavor instead.
func Fixture(tb testing.TB) *F {
	tb.Helper()
	if testing.Short() {
		return Tiny(tb)
	}
	return Train(tb, "bitcount", pipeline.SimulatorConfig(), 8)
}

// Tiny returns the tiny-configuration bitcount fixture regardless of
// -short (golden-vector tests need a mode-independent flavor).
func Tiny(tb testing.TB) *F {
	tb.Helper()
	return Train(tb, "bitcount", TinyConfig(), 5)
}
