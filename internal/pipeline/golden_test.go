package pipeline_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"eddie/internal/core"
	"eddie/internal/dsp"
	"eddie/internal/inject"
	"eddie/internal/pipeline"
	"eddie/internal/pipeline/pipetest"
)

// -update-golden regenerates the golden vectors instead of comparing.
// Run `go test ./internal/pipeline -update-golden` after an intentional
// numerics change and review the fixture diff.
var updateGolden = flag.Bool("update-golden", false, "rewrite golden vector fixtures")

// goldenTol is the relative tolerance for float comparisons. Everything
// in the pipeline is seeded and deterministic, so the only drift this
// admits is differing FMA contraction across architectures.
const goldenTol = 1e-9

// goldenVector captures one run at every stage of the pipeline: raw
// signal → window spectra → peak ranks → K-S decisions. A change
// anywhere in the numerics shows up as a diff at the first stage it
// touches, which localizes regressions.
type goldenVector struct {
	Workload   string    `json:"workload"`
	Injected   bool      `json:"injected"`
	RunIdx     int       `json:"run_idx"`
	SignalLen  int       `json:"signal_len"`
	SignalHead []float64 `json:"signal_head"` // first samples of the capture
	SignalSum  float64   `json:"signal_sum"`

	Windows        int         `json:"windows"`
	WindowEnergies []float64   `json:"window_energies"` // first windows
	PeakFreqs      [][]float64 `json:"peak_freqs"`      // first windows

	RejectedWindows int            `json:"rejected_windows"`
	FlaggedWindows  int            `json:"flagged_windows"`
	Reports         []goldenReport `json:"reports"`
}

type goldenReport struct {
	Window  int     `json:"window"`
	TimeSec float64 `json:"time_sec"`
	Region  int     `json:"region"`
}

const (
	goldenHeadSamples = 16
	goldenHeadWindows = 8
)

// goldenCases are the recorded scenarios: two workloads, clean and
// injected, all under the tiny fixture configuration and fixed seeds,
// plus denoise-enabled bitcount variants that pin the subspace stage's
// numerics (fixtures golden_denoise_*.json).
var goldenCases = []struct {
	workload string
	injected bool
	runIdx   int
	denoise  bool
}{
	{"bitcount", false, 900, false},
	{"bitcount", true, 901, false},
	{"sha", false, 900, false},
	{"sha", true, 901, false},
	{"bitcount", false, 900, true},
	{"bitcount", true, 901, true},
}

// goldenDenoise is the fixed denoising configuration of the denoise
// golden vectors.
var goldenDenoise = dsp.DenoiseConfig{Rank: 5, Block: 16, Stride: 4, Seed: 11}

func TestGoldenVectors(t *testing.T) {
	for _, gc := range goldenCases {
		gc := gc
		name := fmt.Sprintf("%s_clean", gc.workload)
		if gc.injected {
			name = fmt.Sprintf("%s_injected", gc.workload)
		}
		if gc.denoise {
			name = "denoise_" + name
		}
		t.Run(name, func(t *testing.T) {
			cfg := pipetest.TinyConfig()
			if gc.denoise {
				cfg.Denoise = goldenDenoise
			}
			f := pipetest.Train(t, gc.workload, cfg, 5)
			var injector inject.Injector
			if gc.injected {
				injector = &inject.InLoop{
					Header: f.Machine.Nests[0].Header, Instrs: 8, MemOps: 4,
					Contamination: 0.5, Seed: 3,
				}
			}
			got := captureGolden(t, f, gc.workload, gc.injected, gc.runIdx, injector)

			path := filepath.Join("testdata", "golden_"+name+".json")
			if *updateGolden {
				b, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden vector %s (generate with -update-golden): %v", path, err)
			}
			var want goldenVector
			if err := json.Unmarshal(b, &want); err != nil {
				t.Fatalf("corrupt golden vector %s: %v", path, err)
			}
			compareGolden(t, &want, got)
		})
	}
}

func captureGolden(t *testing.T, f *pipetest.F, workload string, injected bool, runIdx int, injector inject.Injector) *goldenVector {
	t.Helper()
	run, err := pipeline.CollectRun(f.W, f.Machine, f.Config, runIdx, injector)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := pipeline.Monitor(f.Model, run.STS, core.DefaultMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}

	g := &goldenVector{
		Workload:  workload,
		Injected:  injected,
		RunIdx:    runIdx,
		SignalLen: len(run.Signal),
		Windows:   len(run.STS),
	}
	for i := 0; i < goldenHeadSamples && i < len(run.Signal); i++ {
		g.SignalHead = append(g.SignalHead, run.Signal[i])
	}
	for _, s := range run.Signal {
		g.SignalSum += s
	}
	for w := 0; w < goldenHeadWindows && w < len(run.STS); w++ {
		g.WindowEnergies = append(g.WindowEnergies, run.STS[w].Energy)
		g.PeakFreqs = append(g.PeakFreqs, append([]float64(nil), run.STS[w].PeakFreqs...))
	}
	for _, o := range mon.Outcomes {
		if o.Rejected {
			g.RejectedWindows++
		}
		if o.Flagged {
			g.FlaggedWindows++
		}
	}
	for _, r := range mon.Reports {
		g.Reports = append(g.Reports, goldenReport{Window: r.Window, TimeSec: r.TimeSec, Region: int(r.Region)})
	}
	return g
}

func compareGolden(t *testing.T, want, got *goldenVector) {
	t.Helper()
	if got.SignalLen != want.SignalLen {
		t.Errorf("signal length drifted: got %d, golden %d", got.SignalLen, want.SignalLen)
	}
	cmpF := func(stage string, got, want float64) {
		if !closeRel(got, want) {
			t.Errorf("%s drifted: got %v, golden %v", stage, got, want)
		}
	}
	cmpFs := func(stage string, got, want []float64) {
		if len(got) != len(want) {
			t.Errorf("%s length drifted: got %d, golden %d", stage, len(got), len(want))
			return
		}
		for i := range got {
			if !closeRel(got[i], want[i]) {
				t.Errorf("%s[%d] drifted: got %v, golden %v", stage, i, got[i], want[i])
				return
			}
		}
	}
	cmpFs("signal head", got.SignalHead, want.SignalHead)
	cmpF("signal sum", got.SignalSum, want.SignalSum)
	if got.Windows != want.Windows {
		t.Errorf("window count drifted: got %d, golden %d", got.Windows, want.Windows)
	}
	cmpFs("window energies", got.WindowEnergies, want.WindowEnergies)
	if len(got.PeakFreqs) != len(want.PeakFreqs) {
		t.Errorf("peak list count drifted: got %d, golden %d", len(got.PeakFreqs), len(want.PeakFreqs))
	} else {
		for w := range got.PeakFreqs {
			cmpFs(fmt.Sprintf("peak freqs window %d", w), got.PeakFreqs[w], want.PeakFreqs[w])
		}
	}
	if got.RejectedWindows != want.RejectedWindows {
		t.Errorf("K-S rejected windows drifted: got %d, golden %d", got.RejectedWindows, want.RejectedWindows)
	}
	if got.FlaggedWindows != want.FlaggedWindows {
		t.Errorf("flagged windows drifted: got %d, golden %d", got.FlaggedWindows, want.FlaggedWindows)
	}
	if len(got.Reports) != len(want.Reports) {
		t.Errorf("report count drifted: got %d, golden %d", len(got.Reports), len(want.Reports))
	} else {
		for i := range got.Reports {
			if got.Reports[i].Window != want.Reports[i].Window || got.Reports[i].Region != want.Reports[i].Region ||
				!closeRel(got.Reports[i].TimeSec, want.Reports[i].TimeSec) {
				t.Errorf("report %d drifted: got %+v, golden %+v", i, got.Reports[i], want.Reports[i])
			}
		}
	}
	if t.Failed() {
		t.Log("intentional numerics change? regenerate with: go test ./internal/pipeline -update-golden")
	}
}

// closeRel compares with relative tolerance (absolute near zero).
func closeRel(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return d <= goldenTol
	}
	return d <= goldenTol*scale
}
