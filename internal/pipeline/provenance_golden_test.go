package pipeline_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"eddie/internal/core"
	"eddie/internal/inject"
	"eddie/internal/obs"
	"eddie/internal/pipeline"
	"eddie/internal/pipeline/pipetest"
)

// goldenProvenance records the decision-provenance view of one monitored
// run: how many windows were tested/rejected, which transitions the
// state machine took, the full evidence of the first tested window, and
// the last alarm's header. The per-rank K-S statistics pin the decision
// arithmetic itself — a change to the K-S path shows up here even when
// the verdicts happen to stay the same.
type goldenProvenance struct {
	Workload string `json:"workload"`
	Injected bool   `json:"injected"`
	RunIdx   int    `json:"run_idx"`

	Windows         int            `json:"windows"`
	TestedWindows   int            `json:"tested_windows"`
	RejectedWindows int            `json:"rejected_windows"`
	ReportedWindows int            `json:"reported_windows"`
	Transitions     map[string]int `json:"transitions"`

	FirstTested *obs.WindowRecord `json:"first_tested"`
	LastAlarm   *goldenAlarmHead  `json:"last_alarm"`
}

// goldenAlarmHead is the alarm dump header (the ring contents are
// already covered by the per-window counts above).
type goldenAlarmHead struct {
	Window        int     `json:"window"`
	TimeSec       float64 `json:"time_sec"`
	Region        int     `json:"region"`
	Streak        int     `json:"streak"`
	RejectedRanks []int   `json:"rejected_ranks"`
}

func TestGoldenProvenance(t *testing.T) {
	for _, gc := range []struct {
		injected bool
		runIdx   int
	}{
		{false, 900},
		{true, 901},
	} {
		gc := gc
		name := "bitcount_clean"
		if gc.injected {
			name = "bitcount_injected"
		}
		t.Run(name, func(t *testing.T) {
			f := pipetest.Tiny(t)
			var injector inject.Injector
			if gc.injected {
				injector = &inject.InLoop{
					Header: f.Machine.Nests[0].Header, Instrs: 8, MemOps: 4,
					Contamination: 0.5, Seed: 3,
				}
			}
			got := captureProvenance(t, f, gc.injected, gc.runIdx, injector)

			path := filepath.Join("testdata", "golden_provenance_"+name+".json")
			if *updateGolden {
				b, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden provenance %s (generate with -update-golden): %v", path, err)
			}
			var want goldenProvenance
			if err := json.Unmarshal(b, &want); err != nil {
				t.Fatalf("corrupt golden provenance %s: %v", path, err)
			}
			compareProvenance(t, &want, got)
		})
	}
}

func captureProvenance(t *testing.T, f *pipetest.F, injected bool, runIdx int, injector inject.Injector) *goldenProvenance {
	t.Helper()
	run, err := pipeline.CollectRun(f.W, f.Machine, f.Config, runIdx, injector)
	if err != nil {
		t.Fatal(err)
	}
	mc := core.DefaultMonitorConfig()
	// A ring deeper than the run keeps every window's record.
	flight := obs.NewFlightRecorder(len(run.STS) + 1)
	mc.Flight = flight
	mon, err := pipeline.Monitor(f.Model, run.STS, mc)
	if err != nil {
		t.Fatal(err)
	}
	records := flight.Recent()
	if len(records) != len(run.STS) {
		t.Fatalf("flight recorded %d windows, run has %d", len(records), len(run.STS))
	}

	g := &goldenProvenance{
		Workload:    "bitcount",
		Injected:    injected,
		RunIdx:      runIdx,
		Windows:     len(records),
		Transitions: map[string]int{},
	}
	for i := range records {
		r := &records[i]
		if r.Tested {
			g.TestedWindows++
			if g.FirstTested == nil {
				g.FirstTested = r
			}
		}
		if r.Rejected {
			g.RejectedWindows++
		}
		if r.Reported {
			g.ReportedWindows++
		}
		g.Transitions[r.Transition]++
	}
	// The provenance verdicts must mirror the monitor's own outcomes
	// exactly — capture can never change a decision. Record.Region is the
	// region when the window arrived; the outcome holds the post-
	// transition region, i.e. SwitchTo when a switch/relock happened.
	for w, o := range mon.Outcomes {
		r := &records[w]
		finalRegion := r.Region
		if r.SwitchTo >= 0 {
			finalRegion = r.SwitchTo
		}
		if r.Rejected != o.Rejected || r.Flagged != o.Flagged || finalRegion != int(o.Region) {
			t.Fatalf("window %d: provenance %+v disagrees with outcome %+v", w, r, o)
		}
	}
	if a := flight.LastAlarm(); a != nil {
		g.LastAlarm = &goldenAlarmHead{
			Window: a.Window, TimeSec: a.TimeSec, Region: a.Region,
			Streak: a.Streak, RejectedRanks: a.RejectedRanks,
		}
		if len(mon.Reports) == 0 {
			t.Fatal("alarm dump exists but monitor has no reports")
		}
		last := mon.Reports[len(mon.Reports)-1]
		if a.Window != last.Window || a.Region != int(last.Region) {
			t.Fatalf("alarm dump %+v disagrees with last report %+v", a, last)
		}
	} else if len(mon.Reports) != 0 {
		t.Fatal("monitor reported but flight recorder has no alarm dump")
	}
	return g
}

func compareProvenance(t *testing.T, want, got *goldenProvenance) {
	t.Helper()
	if got.Windows != want.Windows {
		t.Errorf("windows drifted: got %d, golden %d", got.Windows, want.Windows)
	}
	if got.TestedWindows != want.TestedWindows {
		t.Errorf("tested windows drifted: got %d, golden %d", got.TestedWindows, want.TestedWindows)
	}
	if got.RejectedWindows != want.RejectedWindows {
		t.Errorf("rejected windows drifted: got %d, golden %d", got.RejectedWindows, want.RejectedWindows)
	}
	if got.ReportedWindows != want.ReportedWindows {
		t.Errorf("reported windows drifted: got %d, golden %d", got.ReportedWindows, want.ReportedWindows)
	}
	for k, v := range want.Transitions {
		if got.Transitions[k] != v {
			t.Errorf("transition %q count drifted: got %d, golden %d", k, got.Transitions[k], v)
		}
	}
	for k := range got.Transitions {
		if _, ok := want.Transitions[k]; !ok {
			t.Errorf("unexpected transition %q (count %d)", k, got.Transitions[k])
		}
	}
	compareRecord(t, "first tested window", want.FirstTested, got.FirstTested)
	switch {
	case want.LastAlarm == nil && got.LastAlarm != nil:
		t.Errorf("unexpected alarm: %+v", got.LastAlarm)
	case want.LastAlarm != nil && got.LastAlarm == nil:
		t.Errorf("missing alarm (golden %+v)", want.LastAlarm)
	case want.LastAlarm != nil:
		w, g := want.LastAlarm, got.LastAlarm
		if g.Window != w.Window || g.Region != w.Region || g.Streak != w.Streak ||
			!closeRel(g.TimeSec, w.TimeSec) || !equalInts(g.RejectedRanks, w.RejectedRanks) {
			t.Errorf("alarm head drifted: got %+v, golden %+v", g, w)
		}
	}
	if t.Failed() {
		t.Log("intentional decision change? regenerate with: go test ./internal/pipeline -update-golden")
	}
}

func compareRecord(t *testing.T, what string, want, got *obs.WindowRecord) {
	t.Helper()
	if (want == nil) != (got == nil) {
		t.Errorf("%s: got %+v, golden %+v", what, got, want)
		return
	}
	if want == nil {
		return
	}
	if got.Window != want.Window || got.Region != want.Region || got.Tested != want.Tested ||
		got.GroupSize != want.GroupSize || got.Burst != want.Burst || got.BestMode != want.BestMode ||
		got.CountOut != want.CountOut || got.Rejected != want.Rejected || got.Flagged != want.Flagged ||
		got.Streak != want.Streak || got.Transition != want.Transition || got.SwitchTo != want.SwitchTo ||
		got.Reported != want.Reported {
		t.Errorf("%s fields drifted:\n got    %+v\n golden %+v", what, got, want)
	}
	for _, c := range []struct {
		stage      string
		got, wantV float64
	}{
		{"time_sec", got.TimeSec, want.TimeSec},
		{"c_alpha", got.CAlpha, want.CAlpha},
		{"rej_frac", got.RejFrac, want.RejFrac},
	} {
		if !closeRel(c.got, c.wantV) {
			t.Errorf("%s %s drifted: got %v, golden %v", what, c.stage, c.got, c.wantV)
		}
	}
	if !equalInts(got.RejectedRanks, want.RejectedRanks) {
		t.Errorf("%s rejected ranks drifted: got %v, golden %v", what, got.RejectedRanks, want.RejectedRanks)
	}
	if len(got.Ranks) != len(want.Ranks) {
		t.Errorf("%s rank count drifted: got %d, golden %d", what, len(got.Ranks), len(want.Ranks))
		return
	}
	for i := range got.Ranks {
		g, w := got.Ranks[i], want.Ranks[i]
		if g.Rank != w.Rank || g.Rejected != w.Rejected || !closeRel(g.Stat, w.Stat) || !closeRel(g.Crit, w.Crit) {
			t.Errorf("%s rank %d drifted: got %+v, golden %+v", what, i, g, w)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
