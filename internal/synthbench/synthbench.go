// Package synthbench builds synthetic multi-region machines, training
// runs and monitored streams for the decision and training benchmarks
// (BENCH_decision.json). The generators are deterministic: fixed seeds
// per run index, so every benchmark process measures the identical
// workload. Unlike the mibench fixtures these scale freely in region
// count and mode count, which is what the multi-mode decision benchmark
// and the parallel-training scaling benchmark need.
package synthbench

import (
	"fmt"
	"math/rand"

	"eddie/internal/cfg"
	"eddie/internal/core"
	"eddie/internal/isa"
)

// Machine builds a chain of `nests` counted loops: entry → loop 0 →
// loop 1 → … → exit. Each loop becomes one region in the region machine
// (plus the transitions between consecutive loops), so the region count —
// and with it the width of the global rejection scan and the training
// fan-out — scales linearly with nests.
func Machine(nests int) (*cfg.Machine, error) {
	if nests < 1 {
		return nil, fmt.Errorf("synthbench: need at least one nest, got %d", nests)
	}
	b := isa.NewBuilder("synthbench", 4)
	entry := b.NewBlock("entry")
	entry.Li(1, 10).Li(0, 0)
	headers := make([]*isa.BlockBuilder, nests)
	bodies := make([]*isa.BlockBuilder, nests)
	mids := make([]*isa.BlockBuilder, nests-1)
	for i := 0; i < nests; i++ {
		headers[i] = b.NewBlock(fmt.Sprintf("h%d", i))
		bodies[i] = b.NewBlock(fmt.Sprintf("b%d", i))
		if i < nests-1 {
			mids[i] = b.NewBlock(fmt.Sprintf("mid%d", i))
		}
	}
	exit := b.NewBlock("exit")
	entry.Jump(headers[0])
	for i := 0; i < nests; i++ {
		next := exit
		if i < nests-1 {
			next = mids[i]
			mids[i].Li(1, 10)
			mids[i].Jump(headers[i+1])
		}
		headers[i].Branch(isa.GT, 1, 0, bodies[i], next)
		bodies[i].SubI(1, 1, 1)
		bodies[i].Jump(headers[i])
	}
	exit.Halt()
	return cfg.BuildMachine(b.Build())
}

// baseHz is nest i's fundamental frequency: well-separated bases so the
// regions are spectrally distinct, like distinct loop bodies are.
func baseHz(nest int) float64 { return 100e3 * float64(nest+1) }

// sts makes one window: peaks at the base frequency's harmonics,
// jittered 1% by the rng and scaled by shift (1 = in-distribution;
// a few percent off defeats every training mode).
func sts(r *rand.Rand, region cfg.RegionID, base float64, peaks int, shift float64) core.STS {
	freqs := make([]float64, peaks)
	for k := range freqs {
		freqs[k] = (base*float64(k+1) + r.NormFloat64()*base*0.01) * shift
	}
	return core.STS{PeakFreqs: freqs, Energy: 1000 + r.Float64()*100, Region: region}
}

// Run builds one run visiting every nest in order: windows STSs per loop
// region with 4 transition windows between consecutive nests, timestamps
// 1 ms apart. shift scales every peak frequency (use 1 for training).
func Run(r *rand.Rand, m *cfg.Machine, nests, windows, peaks int, shift float64) []core.STS {
	var run []core.STS
	tick := 0.0
	add := func(s core.STS) {
		s.TimeSec = tick
		tick += 0.001
		run = append(run, s)
	}
	for nest := 0; nest < nests; nest++ {
		for i := 0; i < windows; i++ {
			add(sts(r, m.LoopRegionOf(nest), baseHz(nest), peaks, shift))
		}
		if nest < nests-1 {
			if tr, ok := m.TransRegionOf(nest, nest+1); ok {
				for i := 0; i < 4; i++ {
					add(sts(r, tr, (baseHz(nest)+baseHz(nest+1))/2, 2, shift))
				}
			}
		}
	}
	return run
}

// TrainingRuns builds n deterministic training runs. Each run has its
// own seed, so each region collects n distinct spectral modes — the
// multi-mode structure the decision benchmark scans.
func TrainingRuns(m *cfg.Machine, nests, n, windows, peaks int) [][]core.STS {
	runs := make([][]core.STS, n)
	for i := range runs {
		runs[i] = Run(rand.New(rand.NewSource(int64(i+1))), m, nests, windows, peaks, 1)
	}
	return runs
}

// Stream builds a monitored stream of `windows` region-0 STSs with every
// peak frequency scaled by shift. shift = 1 exercises the steady accept
// path (the common case the fleet server lives in); shift around 1.05
// matches no training mode, so every window drives the full rejection
// machinery — mode scan, burst test, successor probes, global region
// scan — the multi-mode worst case the sort-once kernel targets.
func Stream(m *cfg.Machine, windows, peaks int, shift float64) []core.STS {
	r := rand.New(rand.NewSource(99))
	run := make([]core.STS, 0, windows)
	for i := 0; i < windows; i++ {
		s := sts(r, m.LoopRegionOf(0), baseHz(0), peaks, shift)
		s.TimeSec = float64(i) * 0.001
		run = append(run, s)
	}
	return run
}
