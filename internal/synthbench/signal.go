package synthbench

import (
	"math"
	"math/rand"

	"eddie/internal/cfg"
	"eddie/internal/core"
	"eddie/internal/dsp"
	"eddie/internal/trace"
)

// The fleet-load benchmark needs raw sample streams, not STS windows:
// fleet clients ship float64 samples over the wire and the server runs
// the whole decode → STFT → peaks → K-S pipeline per session. The
// generators here synthesize deterministic captures whose spectra look
// like the STS-level generators above — harmonics of baseHz(0), clean
// or uniformly shifted — so one single-region model cleanly separates
// the two stream kinds.

// FleetSTFT is the capture format the fleet-load benchmark generates
// for: 2 MHz sample rate, the paper's 1024-sample Hann window with 75%
// overlap. baseHz(0)'s first five harmonics (100–500 kHz) sit well
// below the 1 MHz Nyquist limit.
func FleetSTFT() dsp.STFTConfig {
	return dsp.STFTConfig{
		WindowSize: 1024,
		HopSize:    256,
		Window:     dsp.Hann,
		SampleRate: 2e6,
	}
}

// signalPeaks is the harmonic count of a synthetic capture.
const signalPeaks = 5

// Signal synthesizes n samples: signalPeaks harmonics of baseHz(0)
// with 1/k amplitude falloff plus low-level deterministic noise, all
// scaled by shift (1 = in-distribution; 1.05 defeats every training
// mode, mirroring Stream's anomalous variant). Same seed, same samples.
func Signal(n int, stft dsp.STFTConfig, seed int64, shift float64) []float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	dt := 1 / stft.SampleRate
	for k := 1; k <= signalPeaks; k++ {
		f := baseHz(0) * float64(k) * shift
		amp := 1 / float64(k)
		phase := r.Float64() * 2 * math.Pi
		w := 2 * math.Pi * f
		for i := range out {
			out[i] += amp * math.Sin(w*float64(i)*dt+phase)
		}
	}
	for i := range out {
		out[i] += r.NormFloat64() * 0.02
	}
	return out
}

// TrainSignalModel trains a single-region model on nRuns clean
// synthetic captures of samplesPerRun samples each, reduced exactly the
// way the fleet server reduces live streams (detrend, STFT, peak
// extraction). Every window is labeled with the machine's one loop
// region, so the monitor starts there and stays there — the steady
// in-region regime a dense fleet node lives in.
func TrainSignalModel(nRuns, samplesPerRun int, stft dsp.STFTConfig, peakCfg dsp.PeakConfig) (*core.Model, *cfg.Machine, error) {
	m, err := Machine(1)
	if err != nil {
		return nil, nil, err
	}
	region := m.LoopRegionOf(0)
	runs := make([][]core.STS, nRuns)
	for i := range runs {
		sig := dsp.Detrend(Signal(samplesPerRun, stft, int64(i+1), 1))
		frames, err := dsp.STFT(sig, stft)
		if err != nil {
			return nil, nil, err
		}
		labeled := make([]trace.LabeledFrame, len(frames))
		for j := range frames {
			labeled[j] = trace.LabeledFrame{
				Frame:   frames[j],
				Region:  region,
				TimeSec: float64(frames[j].Start) / stft.SampleRate,
			}
		}
		runs[i] = core.ExtractSTS(labeled, stft, peakCfg)
	}
	model, err := core.Train("synthfleet", m, runs, core.DefaultTrainConfig())
	if err != nil {
		return nil, nil, err
	}
	return model, m, nil
}
