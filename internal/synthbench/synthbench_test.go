package synthbench

import (
	"reflect"
	"testing"

	"eddie/internal/core"
	"eddie/internal/dsp"
	"eddie/internal/stream"
)

func TestMachineRegionCount(t *testing.T) {
	if _, err := Machine(0); err == nil {
		t.Error("Machine(0) should fail")
	}
	m, err := Machine(5)
	if err != nil {
		t.Fatal(err)
	}
	for nest := 0; nest < 5; nest++ {
		if m.LoopRegionOf(nest) < 0 {
			t.Errorf("nest %d has no loop region", nest)
		}
	}
	for nest := 0; nest < 4; nest++ {
		if _, ok := m.TransRegionOf(nest, nest+1); !ok {
			t.Errorf("no transition region between nests %d and %d", nest, nest+1)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	m, err := Machine(3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(TrainingRuns(m, 3, 4, 10, 5), TrainingRuns(m, 3, 4, 10, 5)) {
		t.Error("TrainingRuns is not deterministic")
	}
	if !reflect.DeepEqual(Stream(m, 50, 5, 1.05), Stream(m, 50, 5, 1.05)) {
		t.Error("Stream is not deterministic")
	}
	run := TrainingRuns(m, 3, 1, 10, 5)[0]
	// 3 nests x 10 windows + 2 transitions x 4 windows.
	if len(run) != 3*10+2*4 {
		t.Errorf("run has %d windows, want %d", len(run), 3*10+2*4)
	}
}

// TestSignalModelSeparatesStreams is the fleet-load benchmark's
// premise: a model trained on clean synthetic captures stays quiet on a
// fresh clean capture and fires on the 5%-shifted anomalous variant.
func TestSignalModelSeparatesStreams(t *testing.T) {
	stft := FleetSTFT()
	peaks := dsp.DefaultPeakConfig()
	peaks.MinEnergyFraction = 0.02
	peaks.MinBin = 3
	model, _, err := TrainSignalModel(4, 200_000, stft, peaks)
	if err != nil {
		t.Fatal(err)
	}

	feed := func(shift float64, seed int64) int {
		det, err := stream.NewDetector(model, stream.Config{
			STFT:    stft,
			Peaks:   peaks,
			Monitor: core.DefaultMonitorConfig(),
		})
		if err != nil {
			t.Fatal(err)
		}
		sig := Signal(200_000, stft, seed, shift)
		return len(det.Feed(sig))
	}

	if n := feed(1, 71); n != 0 {
		t.Errorf("clean synthetic capture fired %d reports", n)
	}
	if n := feed(1.05, 71); n == 0 {
		t.Error("shifted synthetic capture fired no reports")
	}

	if !reflect.DeepEqual(Signal(4096, stft, 7, 1.05), Signal(4096, stft, 7, 1.05)) {
		t.Error("Signal is not deterministic")
	}
}
