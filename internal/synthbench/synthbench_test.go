package synthbench

import (
	"reflect"
	"testing"
)

func TestMachineRegionCount(t *testing.T) {
	if _, err := Machine(0); err == nil {
		t.Error("Machine(0) should fail")
	}
	m, err := Machine(5)
	if err != nil {
		t.Fatal(err)
	}
	for nest := 0; nest < 5; nest++ {
		if m.LoopRegionOf(nest) < 0 {
			t.Errorf("nest %d has no loop region", nest)
		}
	}
	for nest := 0; nest < 4; nest++ {
		if _, ok := m.TransRegionOf(nest, nest+1); !ok {
			t.Errorf("no transition region between nests %d and %d", nest, nest+1)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	m, err := Machine(3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(TrainingRuns(m, 3, 4, 10, 5), TrainingRuns(m, 3, 4, 10, 5)) {
		t.Error("TrainingRuns is not deterministic")
	}
	if !reflect.DeepEqual(Stream(m, 50, 5, 1.05), Stream(m, 50, 5, 1.05)) {
		t.Error("Stream is not deterministic")
	}
	run := TrainingRuns(m, 3, 1, 10, 5)[0]
	// 3 nests x 10 windows + 2 transitions x 4 windows.
	if len(run) != 3*10+2*4 {
		t.Errorf("run has %d windows, want %d", len(run), 3*10+2*4)
	}
}
