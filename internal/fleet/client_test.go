package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// scriptedDialer swaps in for dialTCP: each dial either fails with a
// scripted transport error or hands back one end of a pipe whose other
// end is served by the scripted responder. Steps repeat their last
// entry once the script runs out.
type scriptedDialer struct {
	t     *testing.T
	steps []dialStep
	calls atomic.Int32
	// addrs records the address of every dial attempt, in order.
	addrs []string
}

type dialStep struct {
	// err, when non-nil, fails the dial (transport error).
	err error
	// respond, otherwise, serves the handshake on the server side of
	// the pipe: it gets the decoded hello and answers with one frame.
	respond func(hello Hello) (typ byte, payload []byte)
}

func (d *scriptedDialer) dial(network, addr string, timeout time.Duration) (net.Conn, error) {
	i := int(d.calls.Add(1)) - 1
	d.addrs = append(d.addrs, addr)
	if i >= len(d.steps) {
		i = len(d.steps) - 1
	}
	step := d.steps[i]
	if step.err != nil {
		return nil, step.err
	}
	client, server := net.Pipe()
	go func() {
		defer server.Close()
		typ, payload, err := readFrame(server, DefaultMaxFrameBytes)
		if err != nil || typ != FrameHello {
			return
		}
		var hello Hello
		if err := json.Unmarshal(payload, &hello); err != nil {
			return
		}
		rtyp, rpayload := step.respond(hello)
		writeFrame(server, rtyp, rpayload)
	}()
	return client, nil
}

// install swaps the dialer in and restores the real one on cleanup.
func (d *scriptedDialer) install(t *testing.T) {
	t.Helper()
	prev := dialTCP
	dialTCP = d.dial
	t.Cleanup(func() { dialTCP = prev })
}

// welcomeStep answers any hello with a minimal welcome.
func welcomeStep() dialStep {
	return dialStep{respond: func(h Hello) (byte, []byte) {
		return FrameWelcome, mustJSON(Welcome{Session: 1, Device: h.Device})
	}}
}

// redirectStep answers any hello with a redirect to addr.
func redirectStep(addr string) dialStep {
	return dialStep{respond: func(Hello) (byte, []byte) {
		return FrameRedirect, mustJSON(Redirect{Addr: addr})
	}}
}

// errorStep answers any hello with a protocol error.
func errorStep(msg string) dialStep {
	return dialStep{respond: func(Hello) (byte, []byte) {
		return FrameError, mustJSON(ErrorInfo{Error: msg})
	}}
}

// TestClientReconnect is the reconnect-hardening table: which dial
// outcomes retry (with backoff, restarting from the original address)
// and which fail fast.
func TestClientReconnect(t *testing.T) {
	refused := &net.OpError{Op: "dial", Err: errors.New("connection refused")}
	timeout := fmt.Errorf("dial tcp: i/o timeout")
	cases := []struct {
		name    string
		steps   []dialStep
		cfg     ClientConfig
		wantErr string // substring; empty means success
		dials   int32
		// addrs, when non-nil, is the exact expected dial sequence.
		addrs []string
	}{
		{
			name:  "refused then up",
			steps: []dialStep{{err: refused}, {err: refused}, welcomeStep()},
			dials: 3,
		},
		{
			name:    "persistently refused exhausts retries",
			steps:   []dialStep{{err: refused}},
			wantErr: "after 3 attempts",
			dials:   3,
		},
		{
			name:    "dial timeout exhausts retries",
			steps:   []dialStep{{err: timeout}},
			wantErr: "after 3 attempts",
			dials:   3,
		},
		{
			name:    "retries disabled fails fast",
			steps:   []dialStep{{err: refused}},
			cfg:     ClientConfig{Retries: -1},
			wantErr: "refused",
			dials:   1,
		},
		{
			name:  "redirect then welcome",
			steps: []dialStep{redirectStep("backend-1:9000"), welcomeStep()},
			dials: 2,
			addrs: []string{"coord:9000", "backend-1:9000"},
		},
		{
			name: "redirect to dead backend retries from the original address",
			steps: []dialStep{
				redirectStep("backend-1:9000"), // coord answers
				{err: refused},                 // backend is freshly dead
				redirectStep("backend-2:9000"), // coord re-homes
				welcomeStep(),
			},
			dials: 4,
			addrs: []string{"coord:9000", "backend-1:9000", "coord:9000", "backend-2:9000"},
		},
		{
			name:    "redirect loop fails without retry",
			steps:   []dialStep{redirectStep("coord:9000")},
			cfg:     ClientConfig{MaxRedirects: 2},
			wantErr: "redirect limit",
			dials:   3, // original + 2 hops, no retry pass afterwards
		},
		{
			name:    "server error fails without retry",
			steps:   []dialStep{errorStep("fleet: at capacity (4 sessions)")},
			wantErr: "at capacity",
			dials:   1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := &scriptedDialer{t: t, steps: tc.steps}
			d.install(t)
			cfg := tc.cfg
			cfg.RetryBackoff = time.Millisecond // keep the table fast
			cl, err := DialConfig("coord:9000", Hello{Device: "d1", Workload: "w"}, cfg)
			if cl != nil {
				cl.Close()
			}
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("dial: %v", err)
				}
			} else if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("dial error %v, want substring %q", err, tc.wantErr)
			}
			if got := d.calls.Load(); got != tc.dials {
				t.Errorf("%d dial attempts, want %d", got, tc.dials)
			}
			if tc.addrs != nil {
				if fmt.Sprint(d.addrs) != fmt.Sprint(tc.addrs) {
					t.Errorf("dial sequence %v, want %v", d.addrs, tc.addrs)
				}
			}
		})
	}
}

// TestClientRetryBackoffGrows checks the retry loop actually sleeps a
// growing, jittered backoff rather than hammering: three attempts at a
// 40ms base must take at least base/2 + base = 60ms in total.
func TestClientRetryBackoffGrows(t *testing.T) {
	refused := &net.OpError{Op: "dial", Err: errors.New("connection refused")}
	d := &scriptedDialer{t: t, steps: []dialStep{{err: refused}}}
	d.install(t)
	start := time.Now()
	_, err := DialConfig("coord:9000", Hello{Device: "d", Workload: "w"},
		ClientConfig{Retries: 2, RetryBackoff: 40 * time.Millisecond})
	if err == nil {
		t.Fatal("dial against a refusing server succeeded")
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Errorf("3 attempts finished in %v; backoff did not accumulate", elapsed)
	}
}
