package fleet

// fifo is a growable ring-buffer FIFO with a reusable backing array: the
// one queue type behind both the per-session frame inbox and each
// shard's run queue of ready sessions (they used to be two hand-rolled
// slice queues with duplicated bookkeeping). Push and pop are O(1);
// popped slots are zeroed so the queue never pins freed payloads. fifo
// is not synchronized — callers hold their own lock.
type fifo[T any] struct {
	buf  []T
	head int
	n    int
}

// len returns the number of queued items.
func (q *fifo[T]) len() int { return q.n }

// push appends v at the tail, growing the ring when full.
func (q *fifo[T]) push(v T) {
	if q.n == len(q.buf) {
		q.grow(1)
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
}

// pop removes and returns the head item; ok is false when empty.
func (q *fifo[T]) pop() (v T, ok bool) {
	if q.n == 0 {
		return v, false
	}
	v = q.buf[q.head]
	var zero T
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return v, true
}

// drainTo appends every queued item to dst in FIFO order and empties the
// queue, keeping both backing arrays for reuse. Passing dst[:0] of a
// scratch slice makes a steady-state drain allocation-free.
func (q *fifo[T]) drainTo(dst []T) []T {
	var zero T
	for q.n > 0 {
		dst = append(dst, q.buf[q.head])
		q.buf[q.head] = zero
		q.head = (q.head + 1) % len(q.buf)
		q.n--
	}
	q.head = 0
	return dst
}

// grow resizes the ring to hold at least n more items, relinearizing the
// contents at the front of the new backing array.
func (q *fifo[T]) grow(n int) {
	need := q.n + n
	size := len(q.buf) * 2
	if size < 8 {
		size = 8
	}
	for size < need {
		size *= 2
	}
	buf := make([]T, size)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = buf
	q.head = 0
}
