package fleet

import (
	"context"
	"encoding/json"
	"net"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"eddie/internal/core"
	"eddie/internal/dsp"
	"eddie/internal/obs"
	"eddie/internal/pipeline"
)

// obsConfig wires a full observability plane (journal + alarm stream +
// SLO tracker) into the test server config, returning the journal
// directory for recovery checks.
func obsConfig(t *testing.T, cfg Config) (Config, string, *obs.AlarmStream) {
	t.Helper()
	dir := t.TempDir()
	j, err := obs.OpenJournal(obs.JournalConfig{Dir: dir, Fsync: obs.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	a := obs.NewAlarmStream()
	cfg.Journal, cfg.Alarms, cfg.SLO = j, a, obs.NewSLOTracker(obs.SLOConfig{})
	return cfg, dir, a
}

// drainSSE collects every event a subscriber channel delivers until it
// closes, on a goroutine; read the returned channel for the result.
func drainSSE(ch <-chan []byte) <-chan [][]byte {
	out := make(chan [][]byte, 1)
	go func() {
		var events [][]byte
		for ev := range ch {
			events = append(events, append([]byte(nil), ev...))
		}
		out <- events
	}()
	return out
}

// TestFleetJournalRoundTrip is the durability acceptance check: an
// injected-anomaly fleet run journals every alarm, and recovering the
// journal reproduces the live AlarmDumps bit-identically — the events
// streamed to SSE subscribers at fire time re-marshal byte-for-byte
// from the recovered journal.
func TestFleetJournalRoundTrip(t *testing.T) {
	f, sig := fleetSignal(t)
	cfg, jdir, alarms := obsConfig(t, serverConfig(f))
	_, addr := startServer(t, cfg)

	sub, cancel := alarms.Subscribe()
	live := drainSSE(sub)
	defer cancel()

	c, err := DialConfig(addr, Hello{Device: "dev-journal", Workload: "bitcount", DisableDCBlock: true},
		ClientConfig{DialTimeout: 30 * time.Second, IOTimeout: 120 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < len(sig); i += 1024 {
		end := min(i+1024, len(sig))
		if err := c.Send(sig[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	_, reports, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("contaminated capture produced no reports; round-trip is vacuous")
	}
	alarms.Close()
	liveEvents := <-live

	if err := cfg.Journal.Sync(); err != nil {
		t.Fatal(err)
	}
	rec, err := obs.RecoverJournal(jdir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TruncatedTail || rec.CorruptLines != 0 {
		t.Fatalf("clean run recovered dirty: %+v", rec)
	}
	if len(rec.Alarms) != len(reports) {
		t.Fatalf("journal has %d alarms, fleet streamed %d reports", len(rec.Alarms), len(reports))
	}
	if len(liveEvents) != len(reports) {
		t.Fatalf("SSE delivered %d alarm events, want %d", len(liveEvents), len(reports))
	}
	// Bit-identical round trip: the journaled alarm events re-marshal to
	// exactly the bytes published live (JSON float64 round-trips are
	// exact in Go, so equality is the right comparison).
	var alarmEvents []obs.JournalEvent
	for _, ev := range rec.Events {
		if ev.Type == "alarm" {
			alarmEvents = append(alarmEvents, ev)
		}
	}
	for i := range alarmEvents {
		remarshaled, err := json.Marshal(&alarmEvents[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(remarshaled) != string(liveEvents[i]) {
			t.Fatalf("alarm %d not bit-identical:\njournal: %s\nlive:    %s",
				i, remarshaled, liveEvents[i])
		}
	}
	// The dumps carry real evidence and match the report stream.
	for i, d := range rec.Alarms {
		if d.Window != reports[i].Window || d.TimeSec != reports[i].TimeSec {
			t.Fatalf("alarm %d dump (w%d t%g) mismatches report (w%d t%g)",
				i, d.Window, d.TimeSec, reports[i].Window, reports[i].TimeSec)
		}
		if len(d.Records) == 0 {
			t.Fatalf("alarm %d has no flight records", i)
		}
	}
}

// TestFleetDrainJournalAndSSE covers the graceful-drain interaction:
// Shutdown must flush the journal (no lost lifecycle events or alarms),
// close every SSE subscriber, and leak no goroutines.
func TestFleetDrainJournalAndSSE(t *testing.T) {
	f, sig := fleetSignal(t)
	baseline := runtime.NumGoroutine()
	jdir := t.TempDir()
	j, err := obs.OpenJournal(obs.JournalConfig{Dir: jdir, Fsync: obs.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	alarms := obs.NewAlarmStream()
	cfg := serverConfig(f)
	cfg.Journal, cfg.Alarms = j, alarms
	cfg.SLO = obs.NewSLOTracker(obs.SLOConfig{})

	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()

	sub, cancel := alarms.Subscribe()
	defer cancel()
	live := drainSSE(sub)

	c, err := DialConfig(ln.Addr().String(),
		Hello{Device: "dev-drain", Workload: "bitcount", DisableDCBlock: true},
		ClientConfig{DialTimeout: 30 * time.Second, IOTimeout: 120 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < len(sig); i += 1024 {
		end := min(i+1024, len(sig))
		if err := c.Send(sig[i:end]); err != nil {
			t.Fatal(err)
		}
	}

	// Graceful drain mid-stream (the SIGTERM path in cmd/eddie): queued
	// frames are still processed, then everything shuts down.
	ctx, cancelCtx := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancelCtx()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}

	// The drain closed the alarm stream: the subscriber loop ends.
	liveEvents := <-live

	// Journal is flushed and consistent: lifecycle events present and
	// every streamed alarm durable.
	rec, err := obs.RecoverJournal(jdir)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, ev := range rec.Events {
		counts[ev.Type]++
	}
	for _, typ := range []string{"server_start", "connect", "drain", "disconnect", "server_stop"} {
		if counts[typ] != 1 {
			t.Errorf("journal has %d %q events, want 1 (all: %v)", counts[typ], typ, counts)
		}
	}
	total := int(s.Registry().Counter("fleet_reports").Value())
	if counts["alarm"] != total {
		t.Errorf("journal has %d alarms, fleet fired %d reports (lost alarms on drain)",
			counts["alarm"], total)
	}
	if len(liveEvents) != total {
		t.Errorf("SSE delivered %d alarms before shutdown, fleet fired %d", len(liveEvents), total)
	}
	if _, _, subs := alarms.Stats(); subs != 0 {
		t.Errorf("%d SSE subscribers still registered after drain", subs)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// No goroutine leaks: everything the server started is gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutine leak after drain: %d > baseline %d\n%s",
			n, baseline, buf[:runtime.Stack(buf, true)])
	}
}

// TestFleetHealthzFlipsDegraded is the SLO acceptance check: against a
// tight latency budget an over-budget fleet-load rung flips
// /eddie/healthz from ready to degraded, observable over HTTP.
func TestFleetHealthzFlipsDegraded(t *testing.T) {
	f, sig := fleetSignal(t)
	// A 1 ns budget makes every real verdict over-budget (the
	// "over-budget rung" without needing to overload CI hardware);
	// OverloadBurn is pushed out of reach so the flip lands exactly on
	// degraded.
	slo := obs.NewSLOTracker(obs.SLOConfig{Budget: time.Nanosecond, OverloadBurn: 1e9})
	cfg := serverConfig(f)
	cfg.SLO = slo
	s, addr := startServer(t, cfg)

	mux := obs.NewMux(obs.ServeState{Health: slo, Fleet: s})
	web := httptest.NewServer(mux)
	defer web.Close()
	getStatus := func() (int, string) {
		t.Helper()
		resp, err := web.Client().Get(web.URL + "/eddie/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Status string `json:"status"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body.Status
	}

	if code, status := getStatus(); code != 200 || status != obs.HealthReady {
		t.Fatalf("before load: %d %s, want 200 ready", code, status)
	}

	c, err := DialConfig(addr, Hello{Device: "dev-slo", Workload: "bitcount", DisableDCBlock: true},
		ClientConfig{DialTimeout: 30 * time.Second, IOTimeout: 120 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < len(sig); i += 1024 {
		end := min(i+1024, len(sig))
		if err := c.Send(sig[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.Finish(); err != nil {
		t.Fatal(err)
	}

	h := slo.Health()
	if h.Short.Bad == 0 {
		t.Fatal("no over-budget verdicts recorded; flip is vacuous")
	}
	if code, status := getStatus(); code != 200 || status != obs.HealthDegraded {
		t.Fatalf("over-budget load: %d %s, want 200 degraded", code, status)
	}
}

// TestFleetListingActivityAndDepth: the session listing surfaces
// last-activity timestamps, inbox queue depth, and per-shard latency
// summaries.
func TestFleetListingActivityAndDepth(t *testing.T) {
	f, sig := fleetSignal(t)
	cfg, _, _ := obsConfig(t, serverConfig(f))
	s, addr := startServer(t, cfg)

	c, err := DialConfig(addr, Hello{Device: "dev-list", Workload: "bitcount", DisableDCBlock: true},
		ClientConfig{DialTimeout: 30 * time.Second, IOTimeout: 120 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	before := time.Now().Add(-time.Second)
	for i := 0; i < 16*1024 && i < len(sig); i += 1024 {
		if err := c.Send(sig[i : i+1024]); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until the frames have been processed so activity is recorded.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if s.Registry().Counter("fleet_device_samples/dev-list").Value() >= 16*1024 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	infos := s.Sessions()
	if len(infos) == 0 {
		t.Fatal("no sessions listed")
	}
	info := infos[0]
	if info.LastActivity == "" {
		t.Fatal("LastActivity not surfaced")
	}
	ts, err := time.Parse(time.RFC3339Nano, info.LastActivity)
	if err != nil {
		t.Fatalf("LastActivity %q not RFC3339Nano: %v", info.LastActivity, err)
	}
	if ts.Before(before) {
		t.Fatalf("LastActivity %v predates the frames (%v)", ts, before)
	}
	// Sub-second precision must survive the listing: sessions churn far
	// faster than once a second, so whole-second timestamps made distinct
	// sessions look simultaneous. (A true zero-nanosecond instant is a
	// one-in-a-billion event; a regression here is deterministic.)
	if ts.Nanosecond() == 0 {
		t.Fatalf("LastActivity %q truncated to whole seconds", info.LastActivity)
	}
	started, err := time.Parse(time.RFC3339Nano, info.StartedAt)
	if err != nil {
		t.Fatalf("StartedAt %q not RFC3339Nano: %v", info.StartedAt, err)
	}
	if started.Nanosecond() == 0 {
		t.Fatalf("StartedAt %q truncated to whole seconds", info.StartedAt)
	}
	if info.QueueDepth < 0 {
		t.Fatalf("QueueDepth %d", info.QueueDepth)
	}

	page, _, _ := s.FleetSessionsPage(0, 10)
	m := page.(map[string]any)
	lat, ok := m["shard_latency"].(map[string]any)
	if !ok {
		t.Fatalf("no shard_latency in listing: %T", m["shard_latency"])
	}
	if len(lat) == 0 {
		t.Fatal("shard_latency empty after processed turns")
	}
	for label, v := range lat {
		sm := v.(map[string]any)
		if sm["count"].(int64) <= 0 {
			t.Fatalf("shard %s latency count %v", label, sm["count"])
		}
		if sm["p99_ms"].(float64) < 0 {
			t.Fatalf("shard %s p99 %v", label, sm["p99_ms"])
		}
	}
}

// TestFleetAdaptationObservability: a session whose stream template has
// the adaptive reference layer enabled surfaces its activity on every
// observability channel — the fleet_adapt_updates counter advances,
// per-region region_adapt_drift/R* gauges are registered, and the alarm
// journal carries throttled "adapt" checkpoint events.
func TestFleetAdaptationObservability(t *testing.T) {
	f, _ := fleetSignal(t)
	// A clean capture: adaptation must engage (the contaminated fleet
	// signal would keep resetting the clean streak).
	run, err := pipeline.CollectRun(f.W, f.Machine, f.Config, 801, nil)
	if err != nil {
		t.Fatal(err)
	}
	clean := dsp.Detrend(run.Signal)

	cfg := serverConfig(f)
	cfg.Stream.Monitor.Adapt = core.AdaptConfig{Enabled: true, MinCleanStreak: 4}
	cfg, jdir, _ := obsConfig(t, cfg)
	s, addr := startServer(t, cfg)

	c, err := DialConfig(addr, Hello{Device: "dev-adapt", Workload: "bitcount", DisableDCBlock: true},
		ClientConfig{DialTimeout: 30 * time.Second, IOTimeout: 120 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for rep := 0; rep < 3; rep++ {
		for i := 0; i < len(clean); i += 1024 {
			end := min(i+1024, len(clean))
			if err := c.Send(clean[i:end]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, _, err := c.Finish(); err != nil {
		t.Fatal(err)
	}

	updates := s.Registry().Counter("fleet_adapt_updates").Value()
	if updates == 0 {
		t.Fatal("fleet_adapt_updates did not advance on a clean adaptive session")
	}
	var gauges int
	for name := range s.Registry().Snapshot() {
		if strings.HasPrefix(name, "region_adapt_drift/R") {
			gauges++
		}
	}
	if gauges == 0 {
		t.Fatal("no region_adapt_drift gauges registered after admitted updates")
	}

	if err := cfg.Journal.Sync(); err != nil {
		t.Fatal(err)
	}
	rec, err := obs.RecoverJournal(jdir)
	if err != nil {
		t.Fatal(err)
	}
	var adaptEvents int
	for _, ev := range rec.Events {
		if ev.Type != "adapt" {
			continue
		}
		adaptEvents++
		if ev.Device != "dev-adapt" || !strings.Contains(ev.Detail, "updates=") {
			t.Fatalf("malformed adapt event: %+v", ev)
		}
	}
	if adaptEvents == 0 {
		t.Fatal("journal has no adapt checkpoint events")
	}
	// The journal trail is throttled, not per-update: one checkpoint at
	// the first admitted update plus one per adaptJournalEvery after.
	if wantMax := 1 + int(updates)/adaptJournalEvery; adaptEvents > wantMax {
		t.Fatalf("journal has %d adapt events for %d updates (throttle broken, want <= %d)",
			adaptEvents, updates, wantMax)
	}
}
