// Package fleet is EDDIE's multi-device monitoring server: one process
// hosting one streaming detector session per connected device, so a
// single detection backend watches a fleet of monitored endpoints (the
// scalable deployment the ROADMAP's north star and the synthetic-
// fingerprinting line of work describe).
//
// Devices speak a small length-prefixed TCP protocol: a JSON hello
// naming the device and the workload/model, then raw float64 sample
// frames; anomaly reports stream back as JSON events. Sessions load
// trained models through core.LoadModel (train once, monitor from any
// process), run under bounded concurrency with per-frame read deadlines
// and a backpressure cap on buffered samples, and drain gracefully on
// shutdown. Per-device counters land in a shared metrics.Registry
// (Prometheus-ready) and each session keeps its own flight recorder.
package fleet

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Frame types. A frame is one byte of type, four bytes of big-endian
// payload length, then the payload. Client-to-server types sit below
// 0x10, server-to-client types at or above it.
const (
	// FrameHello opens a session: a JSON Hello payload.
	FrameHello byte = 0x01
	// FrameSamples carries little-endian float64 receiver samples.
	FrameSamples byte = 0x02
	// FrameBye asks the server to drain the session and answer with a
	// FrameSummary.
	FrameBye byte = 0x03
	// FrameLoadQuery asks a backend for its live load (empty payload);
	// the answer is a FrameLoadReport. The coordinator's health probes
	// and fleet-listing aggregation speak this control side of the
	// protocol instead of opening a detector session.
	FrameLoadQuery byte = 0x04
	// FrameFleetQuery asks a backend for one page of its session
	// listing: a JSON FleetQuery payload, answered by a FrameFleetPage.
	FrameFleetQuery byte = 0x05

	// FrameWelcome acknowledges a hello: a JSON Welcome payload.
	FrameWelcome byte = 0x10
	// FrameReport is one anomaly report: a JSON Report payload.
	FrameReport byte = 0x11
	// FrameSummary closes a session cleanly: a JSON Summary payload.
	FrameSummary byte = 0x12
	// FrameRedirect answers a hello at a coordinator: a JSON Redirect
	// payload naming the backend that owns the device. Only sent to
	// clients that announced ProtoRedirect in their hello; the sender
	// closes the connection afterwards and the client re-dials the
	// named backend.
	FrameRedirect byte = 0x13
	// FrameLoadReport answers a FrameLoadQuery: a JSON LoadReport
	// payload.
	FrameLoadReport byte = 0x14
	// FrameFleetPage answers a FrameFleetQuery: a JSON FleetPage
	// payload.
	FrameFleetPage byte = 0x15
	// FrameError reports a fatal session error: a JSON ErrorInfo
	// payload. The server closes the connection after sending it.
	FrameError byte = 0x1f
)

// ProtoRedirect is the protocol feature level at which a client accepts
// FrameRedirect answers to its hello. Level 0 (the field absent from
// the wire) is the original protocol: a hello against a plain backend
// is answered with a welcome either way, so old clients against old
// servers — and old clients against new backends — stay bit-identical.
const ProtoRedirect = 1

// DefaultMaxFrameBytes caps one frame's payload (2^22 bytes = 512k
// samples); oversized frames are a protocol error, not an allocation.
const DefaultMaxFrameBytes = 1 << 22

// frameHeaderLen is the wire size of a frame header.
const frameHeaderLen = 5

// Hello is the session-opening payload: which device is connecting and
// which trained model should monitor it.
type Hello struct {
	// Device names the connecting device; it labels the per-device
	// metrics, so it is restricted to [A-Za-z0-9._-]{1,64}.
	Device string `json:"device"`
	// Workload names the trained model to load (a workload name, not a
	// path: the server resolves it against its model source).
	Workload string `json:"workload"`
	// DisableDCBlock requests the raw-sample path (for pre-detrended
	// captures; mirrors stream.Config.DisableDCBlock).
	DisableDCBlock bool `json:"disableDCBlock,omitempty"`
	// Proto announces the client's protocol feature level (see
	// ProtoRedirect). Zero is omitted from the wire, so a hello that
	// uses no new feature marshals byte-identically to the original
	// protocol; servers ignore levels they do not know.
	Proto int `json:"proto,omitempty"`
}

// Redirect is the payload of a FrameRedirect: which backend owns the
// device that said hello, and where to re-dial it.
type Redirect struct {
	// Addr is the owning backend's device-facing listen address.
	Addr string `json:"addr"`
	// Backend labels the backend for logs and metrics.
	Backend string `json:"backend,omitempty"`
}

// LoadReport is the payload of a FrameLoadReport: a backend's live load,
// consumed by the coordinator's health probes.
type LoadReport struct {
	// Active and Max are the live session count and the admission cap.
	Active int `json:"active"`
	Max    int `json:"max"`
	// Draining is true once a graceful shutdown has been requested.
	Draining bool `json:"draining"`
	// QueueDepth is the number of sessions waiting for a processor
	// across all shards (scheduling pressure, not byte backlog).
	QueueDepth int `json:"queueDepth"`
	// P99Ms is the worst per-shard p99 frame-to-verdict latency in
	// milliseconds (0 before any completed turn).
	P99Ms float64 `json:"p99Ms"`
	// Status is the SLO burn-rate health verdict ("ready", "degraded",
	// "overloaded", "draining"; "ready" when no SLO tracker is wired).
	Status string `json:"status"`
}

// FleetQuery is the payload of a FrameFleetQuery: one page of the
// backend's session listing.
type FleetQuery struct {
	Offset int `json:"offset"`
	Limit  int `json:"limit"`
}

// FleetPage is the payload of a FrameFleetPage.
type FleetPage struct {
	Sessions []SessionInfo `json:"sessions"`
	Total    int           `json:"total"`
	Active   int           `json:"active"`
}

// Welcome acknowledges a hello and describes the session's front end.
type Welcome struct {
	Session    int64   `json:"session"`
	Device     string  `json:"device"`
	Workload   string  `json:"workload"`
	WindowSize int     `json:"windowSize"`
	HopSize    int     `json:"hopSize"`
	SampleRate float64 `json:"sampleRate"`
	Regions    int     `json:"regions"`
}

// Report is one anomaly report event streamed back to the device.
type Report struct {
	Device  string  `json:"device"`
	Session int64   `json:"session"`
	Window  int     `json:"window"`
	TimeSec float64 `json:"timeSec"`
	Region  int     `json:"region"`
}

// Summary answers a FrameBye: the session's final counters.
type Summary struct {
	Session   int64 `json:"session"`
	Samples   int64 `json:"samples"`
	Sanitized int64 `json:"sanitized"`
	Windows   int   `json:"windows"`
	Reports   int   `json:"reports"`
}

// ErrorInfo is the payload of a FrameError.
type ErrorInfo struct {
	Error string `json:"error"`
}

// WriteFrame writes one protocol frame. It is exported for protocol-
// level tooling (the fleet-load benchmark drives raw connections to
// timestamp individual report arrivals); applications use Client.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	return writeFrame(w, typ, payload)
}

// ReadFrame reads one protocol frame, rejecting payloads larger than
// maxLen. Exported for protocol-level tooling; applications use Client.
func ReadFrame(r io.Reader, maxLen int) (typ byte, payload []byte, err error) {
	return readFrame(r, maxLen)
}

// writeFrame writes one frame. payload may be nil (length 0).
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > DefaultMaxFrameBytes {
		return fmt.Errorf("fleet: payload of %d bytes exceeds frame limit %d",
			len(payload), DefaultMaxFrameBytes)
	}
	var hdr [frameHeaderLen]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame, rejecting payloads larger than maxLen.
func readFrame(r io.Reader, maxLen int) (typ byte, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if int64(n) > int64(maxLen) {
		return 0, nil, fmt.Errorf("fleet: frame of %d bytes exceeds limit %d", n, maxLen)
	}
	if n == 0 {
		return hdr[0], nil, nil
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("fleet: truncated frame: %w", err)
	}
	return hdr[0], payload, nil
}

// readFrameInto reads one frame like readFrame, but into a reusable
// scratch buffer: the returned payload aliases the returned scratch and
// is only valid until the next call. Server-side readers use it so a
// steady-state session reads every frame into memory it already owns.
func readFrameInto(r io.Reader, maxLen int, scratch []byte) (typ byte, payload, newScratch []byte, err error) {
	// The header is read into the scratch buffer too: a local array
	// escapes through the io.Reader call and would heap-allocate on
	// every frame.
	if cap(scratch) < frameHeaderLen {
		scratch = make([]byte, frameHeaderLen)
	}
	hdr := scratch[:frameHeaderLen]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, scratch, err
	}
	typ = hdr[0]
	n := int(binary.BigEndian.Uint32(hdr[1:]))
	if int64(n) > int64(maxLen) {
		return 0, nil, scratch, fmt.Errorf("fleet: frame of %d bytes exceeds limit %d", n, maxLen)
	}
	if n == 0 {
		return typ, nil, scratch, nil
	}
	if cap(scratch) < n {
		scratch = make([]byte, n)
	}
	payload = scratch[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, scratch, fmt.Errorf("fleet: truncated frame: %w", err)
	}
	return typ, payload, scratch, nil
}

// EncodeSamples renders samples as a FrameSamples payload (little-endian
// IEEE 754 doubles).
func EncodeSamples(samples []float64) []byte {
	out := make([]byte, 8*len(samples))
	for i, s := range samples {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(s))
	}
	return out
}

// DecodeSamples parses a FrameSamples payload into dst (reused when it
// has capacity). The payload length must be a multiple of 8.
func DecodeSamples(payload []byte, dst []float64) ([]float64, error) {
	if len(payload)%8 != 0 {
		return nil, fmt.Errorf("fleet: samples payload of %d bytes is not a multiple of 8", len(payload))
	}
	n := len(payload) / 8
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return dst, nil
}

// validName reports whether s is a safe device/session label:
// 1..64 characters of [A-Za-z0-9._-]. Device names become metric label
// values and appear in logs, so the alphabet is locked down (no path
// separators, no format-string surprises, bounded cardinality per
// device).
func validName(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}
