package fleet

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"eddie/internal/core"
	"eddie/internal/dsp"
	"eddie/internal/inject"
	"eddie/internal/metrics"
	"eddie/internal/pipeline"
	"eddie/internal/pipeline/pipetest"
	"eddie/internal/stream"
)

// fleetSignal returns the shared trained fixture plus one detrended,
// injection-contaminated capture (collected once per process).
var (
	sigOnce    sync.Once
	sigSamples []float64
	sigErr     error
)

func fleetSignal(t *testing.T) (*pipetest.F, []float64) {
	t.Helper()
	f := pipetest.Fixture(t)
	sigOnce.Do(func() {
		inj := &inject.InLoop{
			Header: f.Machine.Nests[0].Header, Instrs: 8, MemOps: 4,
			Contamination: 0.5, Seed: 3,
		}
		run, err := pipeline.CollectRun(f.W, f.Machine, f.Config, 800, inj)
		if err != nil {
			sigErr = err
			return
		}
		sigSamples = dsp.Detrend(run.Signal)
	})
	if sigErr != nil {
		t.Fatal(sigErr)
	}
	return f, sigSamples
}

// serverConfig is the default test server configuration for a fixture.
func serverConfig(f *pipetest.F) Config {
	return Config{
		Models: StaticModels{"bitcount": f.Model},
		Stream: stream.Config{
			STFT:    f.Config.STFT,
			Peaks:   f.Config.Peaks,
			Monitor: core.DefaultMonitorConfig(),
		},
	}
}

// startServer runs a fleet server on a loopback listener and tears it
// down with the test.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	t.Cleanup(func() {
		s.Close()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return s, ln.Addr().String()
}

// feedDirect runs the same samples through a direct stream.Detector with
// the fleet session's effective configuration, returning the reports.
func feedDirect(t *testing.T, f *pipetest.F, samples []float64) (*stream.Detector, []core.Report) {
	t.Helper()
	cfg := stream.Config{
		STFT:              f.Config.STFT,
		Peaks:             f.Config.Peaks,
		Monitor:           core.DefaultMonitorConfig(),
		DisableDCBlock:    true,
		MaxHistoryWindows: 4096, // the fleet server default
	}
	det, err := stream.NewDetector(f.Model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var reports []core.Report
	for i := 0; i < len(samples); {
		n := 251 + i%509
		if i+n > len(samples) {
			n = len(samples) - i
		}
		reports = append(reports, det.Feed(samples[i:i+n])...)
		i += n
	}
	return det, reports
}

// TestFleetDifferentialVsDirect streams a capture through the fleet
// server over real TCP and asserts the reports coming back over the wire
// are bit-identical to a direct stream.Detector fed the same samples:
// same report count, same window indices, same float64 timestamps (JSON
// round-trips float64 exactly, so == is the right comparison). The
// differential runs at several shard counts and in the legacy
// goroutine-per-session mode: batching and scheduling must never change
// a verdict.
func TestFleetDifferentialVsDirect(t *testing.T) {
	f, sig := fleetSignal(t)
	det, directReports := feedDirect(t, f, sig)

	variants := []struct {
		name   string
		mutate func(*Config)
	}{
		{"shards=1", func(c *Config) { c.Shards = 1 }},
		{"shards=4", func(c *Config) { c.Shards = 4 }},
		{"goroutine-per-session", func(c *Config) { c.GoroutinePerSession = true }},
	}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		variants = append(variants, struct {
			name   string
			mutate func(*Config)
		}{fmt.Sprintf("shards=gomaxprocs-%d", n), func(c *Config) { c.Shards = n }})
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			cfg := serverConfig(f)
			v.mutate(&cfg)
			testFleetDifferential(t, f, sig, cfg, det, directReports)
		})
	}
}

func testFleetDifferential(t *testing.T, f *pipetest.F, sig []float64, cfg Config, det *stream.Detector, directReports []core.Report) {
	s, addr := startServer(t, cfg)

	// Generous I/O timeout: a differential run pushes hundreds of frames
	// through a single shard turnstile, and CI machines stall.
	c, err := DialConfig(addr, Hello{Device: "dev-diff", Workload: "bitcount", DisableDCBlock: true},
		ClientConfig{DialTimeout: 30 * time.Second, IOTimeout: 120 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	w := c.Welcome()
	if w.WindowSize != f.Config.STFT.WindowSize || w.HopSize != f.Config.STFT.HopSize {
		t.Fatalf("welcome window/hop %d/%d, want %d/%d",
			w.WindowSize, w.HopSize, f.Config.STFT.WindowSize, f.Config.STFT.HopSize)
	}
	if w.Regions != len(f.Model.Regions) {
		t.Fatalf("welcome regions %d, want %d", w.Regions, len(f.Model.Regions))
	}

	for i := 0; i < len(sig); {
		n := 251 + i%509 // awkward chunk sizes, same as the stream differential test
		if i+n > len(sig) {
			n = len(sig) - i
		}
		if err := c.Send(sig[i : i+n]); err != nil {
			t.Fatal(err)
		}
		i += n
	}
	sum, reports, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}

	if sum.Samples != int64(len(sig)) {
		t.Fatalf("summary samples %d, want %d", sum.Samples, len(sig))
	}
	if sum.Windows != det.Windows() {
		t.Fatalf("summary windows %d, direct %d", sum.Windows, det.Windows())
	}
	if sum.Sanitized != 0 {
		t.Fatalf("summary sanitized %d on a clean capture", sum.Sanitized)
	}
	if len(reports) != len(directReports) {
		t.Fatalf("fleet reports %d, direct %d", len(reports), len(directReports))
	}
	if len(reports) == 0 {
		t.Fatal("contaminated capture produced no reports; differential is vacuous")
	}
	if sum.Reports != len(reports) {
		t.Fatalf("summary reports %d, streamed %d", sum.Reports, len(reports))
	}
	for i := range reports {
		got, want := reports[i], directReports[i]
		if got.Window != want.Window || got.TimeSec != want.TimeSec || got.Region != int(want.Region) {
			t.Fatalf("report %d: fleet %+v, direct %+v", i, got, want)
		}
		if got.Device != "dev-diff" {
			t.Fatalf("report %d: device %q", i, got.Device)
		}
	}

	if n := s.Registry().Counter("fleet_reports").Value(); n != int64(len(reports)) {
		t.Fatalf("fleet_reports counter %d, want %d", n, len(reports))
	}
}

// TestFleetRejectsBadHello drives the handshake's failure paths.
func TestFleetRejectsBadHello(t *testing.T) {
	f, _ := fleetSignal(t)
	_, addr := startServer(t, serverConfig(f))

	for _, tc := range []struct {
		name string
		h    Hello
		want string
	}{
		{"bad device", Hello{Device: "../evil", Workload: "bitcount"}, "invalid device name"},
		{"empty device", Hello{Device: "", Workload: "bitcount"}, "invalid device name"},
		{"bad workload", Hello{Device: "dev", Workload: "no/such"}, "invalid workload name"},
		{"unknown workload", Hello{Device: "dev", Workload: "nosuch"}, "no model"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Dial(addr, tc.h)
			if err == nil {
				t.Fatal("hello accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q, want substring %q", err, tc.want)
			}
		})
	}

	t.Run("wrong first frame", func(t *testing.T) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if err := writeFrame(conn, FrameBye, nil); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		typ, payload, err := readFrame(conn, DefaultMaxFrameBytes)
		if err != nil {
			t.Fatal(err)
		}
		if typ != FrameError || !strings.Contains(string(payload), "expected hello") {
			t.Fatalf("got frame 0x%02x %q", typ, payload)
		}
	})
}

// TestFleetCapacityRefusal fills the session bound and checks the next
// connection is refused with an error frame, then admitted again once a
// slot frees up.
func TestFleetCapacityRefusal(t *testing.T) {
	f, _ := fleetSignal(t)
	cfg := serverConfig(f)
	cfg.MaxSessions = 1
	s, addr := startServer(t, cfg)

	c1, err := Dial(addr, Hello{Device: "dev-1", Workload: "bitcount"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Dial(addr, Hello{Device: "dev-2", Workload: "bitcount"})
	if err == nil || !strings.Contains(err.Error(), "at capacity") {
		t.Fatalf("second dial: %v, want at-capacity refusal", err)
	}
	if n := s.Registry().Counter("fleet_conns_refused").Value(); n == 0 {
		t.Fatal("fleet_conns_refused not incremented")
	}

	c1.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		c2, err := Dial(addr, Hello{Device: "dev-2", Workload: "bitcount"})
		if err == nil {
			c2.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed after close: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFleetIdleTimeout checks a silent session is torn down with an
// error frame after the idle deadline.
func TestFleetIdleTimeout(t *testing.T) {
	f, _ := fleetSignal(t)
	cfg := serverConfig(f)
	cfg.IdleTimeout = 200 * time.Millisecond
	_, addr := startServer(t, cfg)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, FrameHello, mustJSON(Hello{Device: "dev-idle", Workload: "bitcount"})); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	typ, _, err := readFrame(conn, DefaultMaxFrameBytes)
	if err != nil || typ != FrameWelcome {
		t.Fatalf("welcome: frame 0x%02x, err %v", typ, err)
	}
	// Send nothing: the idle deadline must fire and answer with an error.
	typ, payload, err := readFrame(conn, DefaultMaxFrameBytes)
	if err != nil {
		t.Fatalf("awaiting idle teardown: %v", err)
	}
	if typ != FrameError || !strings.Contains(string(payload), "idle") {
		t.Fatalf("got frame 0x%02x %q, want idle error", typ, payload)
	}
}

// TestBackpressureStalls drives the bounded session inbox directly: an
// enqueue over the pending cap must block (and count a stall) until the
// processor side drains, and must wake up when it does. The test stands
// in for the shard processor, so the session is pre-marked queued and
// drained with the same inbox operations processTurn uses.
func TestBackpressureStalls(t *testing.T) {
	reg := metrics.NewRegistry()
	srv := &Server{cfg: Config{Models: StaticModels{}, MaxPendingSamples: 16}.withDefaults()}
	srv.reg = reg
	srv.cBackpress = reg.Counter("fleet_backpressure_stalls")
	ss := newSession(srv, 1, nil)
	ss.queued = true // the test plays the shard's role

	if !ss.enqueue(make([]float64, 512)) {
		t.Fatal("first enqueue refused")
	}
	done := make(chan bool, 1)
	go func() { done <- ss.enqueue(make([]float64, 512)) }()
	select {
	case <-done:
		t.Fatal("enqueue over the pending cap did not stall")
	case <-time.After(100 * time.Millisecond):
	}
	if n := srv.cBackpress.Value(); n != 1 {
		t.Fatalf("stall counter %d, want 1", n)
	}

	// Drain the inbox the way a processor turn does.
	ss.mu.Lock()
	batch := ss.inbox.drainTo(nil)
	ss.pending = 0
	ss.cond.Broadcast()
	ss.mu.Unlock()
	if len(batch) != 1 || len(batch[0]) != 512 {
		t.Fatalf("drained %d chunks, want the one 512-sample chunk", len(batch))
	}
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("stalled enqueue returned false after drain")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled enqueue never woke up")
	}
	// A stall is counted once per blocked enqueue, not once per wakeup.
	if n := srv.cBackpress.Value(); n != 1 {
		t.Fatalf("stall counter %d after wakeup, want 1", n)
	}
}

// TestFleetBackpressureEndToEnd runs a session with a tiny pending cap
// over real TCP and checks nothing is lost or reordered under stalls.
func TestFleetBackpressureEndToEnd(t *testing.T) {
	f, sig := fleetSignal(t)
	cfg := serverConfig(f)
	cfg.MaxPendingSamples = 64 // far below the per-send chunk size
	_, addr := startServer(t, cfg)

	c, err := DialConfig(addr, Hello{Device: "dev-bp", Workload: "bitcount", DisableDCBlock: true},
		ClientConfig{DialTimeout: 30 * time.Second, IOTimeout: 120 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n := len(sig)
	if n > 100_000 {
		n = 100_000
	}
	for i := 0; i < n; i += 512 {
		end := i + 512
		if end > n {
			end = n
		}
		if err := c.Send(sig[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	sum, _, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Samples != int64(n) {
		t.Fatalf("summary samples %d, want %d", sum.Samples, n)
	}
	det, _ := feedDirect(t, f, sig[:n])
	if sum.Windows != det.Windows() {
		t.Fatalf("summary windows %d, direct %d", sum.Windows, det.Windows())
	}
}

// TestFleetStressConcurrentSessions runs well over 8 concurrent device
// sessions against one server (several sharing a device name, so the
// shared per-device counters are exercised) while another goroutine
// hammers the listing and scrape endpoints. Run under -race this is the
// fleet's concurrency proof.
func TestFleetStressConcurrentSessions(t *testing.T) {
	f, sig := fleetSignal(t)
	cfg := serverConfig(f)
	cfg.MaxSessions = 16 // the default can resolve to 8 on small machines
	s, addr := startServer(t, cfg)

	n := len(sig)
	if testing.Short() && n > 120_000 {
		n = 120_000
	}
	part := sig[:n]
	det, directReports := feedDirect(t, f, part)

	const sessions = 10
	const devices = 5 // 2 sessions per device name → shared counters
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dev := fmt.Sprintf("dev-%d", i%devices)
			c, err := DialConfig(addr, Hello{Device: dev, Workload: "bitcount", DisableDCBlock: true},
				ClientConfig{DialTimeout: 30 * time.Second, IOTimeout: 120 * time.Second})
			if err != nil {
				errs <- fmt.Errorf("session %d: dial: %w", i, err)
				return
			}
			defer c.Close()
			for off := 0; off < len(part); {
				k := 1024 + (i*131+off)%2048
				if off+k > len(part) {
					k = len(part) - off
				}
				if err := c.Send(part[off : off+k]); err != nil {
					errs <- fmt.Errorf("session %d: send: %w", i, err)
					return
				}
				off += k
			}
			sum, reports, err := c.Finish()
			if err != nil {
				errs <- fmt.Errorf("session %d: finish: %w", i, err)
				return
			}
			if sum.Samples != int64(len(part)) {
				errs <- fmt.Errorf("session %d: samples %d, want %d", i, sum.Samples, len(part))
				return
			}
			if sum.Windows != det.Windows() {
				errs <- fmt.Errorf("session %d: windows %d, want %d", i, sum.Windows, det.Windows())
				return
			}
			if len(reports) != len(directReports) {
				errs <- fmt.Errorf("session %d: reports %d, want %d", i, len(reports), len(directReports))
				return
			}
			errs <- nil
		}(i)
	}

	// Concurrent observers: session listings and Prometheus scrapes must
	// be safe while sessions stream.
	stop := make(chan struct{})
	var obsWG sync.WaitGroup
	obsWG.Add(1)
	go func() {
		defer obsWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Sessions()
			s.FleetSessions()
			s.Registry().WritePrometheus(io.Discard, "eddie")
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	close(stop)
	obsWG.Wait()
	for i := 0; i < sessions; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	reg := s.Registry()
	if got := reg.Counter("fleet_sessions_opened").Value(); got != sessions {
		t.Errorf("fleet_sessions_opened %d, want %d", got, sessions)
	}
	perDevice := int64(sessions / devices * len(part))
	for d := 0; d < devices; d++ {
		name := fmt.Sprintf("fleet_device_samples/dev-%d", d)
		if got := reg.Counter(name).Value(); got != perDevice {
			t.Errorf("%s = %d, want %d", name, got, perDevice)
		}
	}
	if got := reg.Counter("fleet_reports").Value(); got != int64(sessions*len(directReports)) {
		t.Errorf("fleet_reports %d, want %d", got, sessions*len(directReports))
	}
}

// TestFleetSmoke is the end-to-end smoke run behind `make fleet-smoke`:
// several devices stream concurrently, the server is asked to drain
// mid-stream, every in-flight session is told "server draining", and
// shutdown completes gracefully.
func TestFleetSmoke(t *testing.T) {
	f, sig := fleetSignal(t)
	s, err := NewServer(serverConfig(f))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	addr := ln.Addr().String()

	// A raw device mid-stream: it will be told the server is draining.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, FrameHello, mustJSON(Hello{Device: "dev-raw", Workload: "bitcount"})); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if typ, _, err := readFrame(conn, DefaultMaxFrameBytes); err != nil || typ != FrameWelcome {
		t.Fatalf("welcome: frame 0x%02x, err %v", typ, err)
	}
	chunk := sig
	if len(chunk) > 8192 {
		chunk = chunk[:8192]
	}
	if err := writeFrame(conn, FrameSamples, EncodeSamples(chunk)); err != nil {
		t.Fatal(err)
	}

	// A well-behaved device that completes before the drain.
	c, err := Dial(addr, Hello{Device: "dev-clean", Workload: "bitcount"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(chunk); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}

	// The raw device must have been answered with a draining error after
	// its queued samples were processed.
	sawError := false
	for {
		typ, payload, err := readFrame(conn, DefaultMaxFrameBytes)
		if err != nil {
			break
		}
		if typ == FrameError {
			sawError = true
			if !strings.Contains(string(payload), "draining") {
				t.Fatalf("drain error %q", payload)
			}
			break
		}
		// Reports for the queued samples may precede the error frame.
		if typ != FrameReport {
			t.Fatalf("unexpected frame 0x%02x during drain", typ)
		}
	}
	if !sawError {
		t.Fatal("drained session never received the draining error frame")
	}

	// After shutdown the listing shows no active sessions and further
	// dials fail (listener closed or refused while draining).
	for _, info := range s.Sessions() {
		if info.Active {
			t.Fatalf("session %d still active after shutdown", info.Session)
		}
	}
	if _, err := Dial(addr, Hello{Device: "dev-late", Workload: "bitcount"}); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}

	if got := s.Registry().Counter("fleet_sessions_opened").Value(); got != 2 {
		t.Errorf("fleet_sessions_opened %d, want 2", got)
	}
	if got := s.Registry().Counter("fleet_sessions_closed").Value(); got != 2 {
		t.Errorf("fleet_sessions_closed %d, want 2", got)
	}
}

// TestDirModels exercises the directory-backed model source: name
// validation before any filesystem access, error paths not cached, and
// model sharing once loaded.
func TestDirModels(t *testing.T) {
	f, _ := fleetSignal(t)
	dir := t.TempDir()
	d := NewDirModels(dir)

	if _, err := d.Load("../escape"); err == nil || !strings.Contains(err.Error(), "invalid workload") {
		t.Fatalf("path traversal: %v", err)
	}
	if _, err := d.Load("nosuchworkload"); err == nil {
		t.Fatal("unknown workload accepted")
	}
	// Known workload, no file yet: must fail, and the failure must not be
	// cached (installing the model later works without a restart).
	if _, err := d.Load("bitcount"); err == nil {
		t.Fatal("missing model file accepted")
	}
	if err := f.Model.SaveFile(filepath.Join(dir, "bitcount.json")); err != nil {
		t.Fatal(err)
	}
	m1, err := d.Load("bitcount")
	if err != nil {
		t.Fatalf("load after install: %v", err)
	}
	m2, err := d.Load("bitcount")
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("cached load returned a different model instance")
	}
	// Forget forces a re-read.
	d.Forget("bitcount")
	if err := os.Remove(filepath.Join(dir, "bitcount.json")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Load("bitcount"); err == nil {
		t.Fatal("load succeeded after Forget with the file gone")
	}
}
