package fleet

import (
	"fmt"
	"path/filepath"
	"sync"

	"eddie/internal/cfg"
	"eddie/internal/core"
	"eddie/internal/mibench"
)

// ModelSource resolves a client-supplied workload name to a trained
// model. Implementations must be safe for concurrent use and must treat
// the name as untrusted input.
type ModelSource interface {
	Load(workload string) (*core.Model, error)
}

// StaticModels serves models from an in-memory map — the test and
// embedding-API source.
type StaticModels map[string]*core.Model

// Load returns the named model or an error.
func (s StaticModels) Load(workload string) (*core.Model, error) {
	m := s[workload]
	if m == nil {
		return nil, fmt.Errorf("fleet: no model for workload %q", workload)
	}
	return m, nil
}

// DirModels loads models saved by eddie -save-model from a directory,
// one file per workload (<dir>/<workload>.json). Loads are cached: a
// fleet of N devices running the same workload shares one model (models
// are immutable once loaded, so sharing across sessions is safe). The
// workload name is validated against the built-in workload set before
// it touches the filesystem, so a hostile client cannot traverse paths,
// and the model file itself goes through core.LoadModel's corrupt-file
// validation with the machine fingerprint rebuilt from the named
// program.
type DirModels struct {
	dir string

	mu    sync.Mutex
	cache map[string]*dirEntry
}

// dirEntry caches one workload's load. Successes are cached forever
// (models are immutable); failures are evicted after the in-flight
// loaders share the error, so installing a missing model file works
// without a restart.
type dirEntry struct {
	once  sync.Once
	model *core.Model
	err   error
}

// NewDirModels creates a directory-backed model source.
func NewDirModels(dir string) *DirModels {
	return &DirModels{dir: dir, cache: map[string]*dirEntry{}}
}

// Load resolves a workload name to its trained model.
func (d *DirModels) Load(workload string) (*core.Model, error) {
	if !validName(workload) {
		return nil, fmt.Errorf("fleet: invalid workload name")
	}
	w, err := mibench.ByName(workload)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	d.mu.Lock()
	e := d.cache[workload]
	if e == nil {
		e = &dirEntry{}
		d.cache[workload] = e
	}
	d.mu.Unlock()
	e.once.Do(func() {
		machine, err := cfg.BuildMachine(w.Program)
		if err != nil {
			e.err = fmt.Errorf("fleet: building machine for %s: %w", workload, err)
			return
		}
		path := filepath.Join(d.dir, workload+".json")
		model, err := core.LoadModelFile(path, machine)
		if err != nil {
			e.err = err
			return
		}
		e.model = model
	})
	if e.err != nil {
		d.mu.Lock()
		if d.cache[workload] == e {
			delete(d.cache, workload)
		}
		d.mu.Unlock()
	}
	return e.model, e.err
}

// Forget drops a cached entry so the next Load re-reads the file (e.g.
// after the operator re-trains a model in place).
func (d *DirModels) Forget(workload string) {
	d.mu.Lock()
	delete(d.cache, workload)
	d.mu.Unlock()
}
