package fleet

import "testing"

// TestFifoOrder pushes and pops across several growth cycles and checks
// strict FIFO order.
func TestFifoOrder(t *testing.T) {
	var q fifo[int]
	next, want := 0, 0
	for round := 0; round < 5; round++ {
		for i := 0; i < 37; i++ {
			q.push(next)
			next++
		}
		for i := 0; i < 23; i++ {
			v, ok := q.pop()
			if !ok {
				t.Fatalf("pop %d: empty", want)
			}
			if v != want {
				t.Fatalf("pop %d: got %d", want, v)
			}
			want++
		}
	}
	for q.len() > 0 {
		v, ok := q.pop()
		if !ok || v != want {
			t.Fatalf("tail pop: got %d ok=%v, want %d", v, ok, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("popped %d items, pushed %d", want, next)
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop on empty queue reported ok")
	}
}

// TestFifoWraparound forces the ring's head past the wrap point before
// growing, which exercises the relinearizing copy.
func TestFifoWraparound(t *testing.T) {
	var q fifo[int]
	for i := 0; i < 8; i++ {
		q.push(i)
	}
	for i := 0; i < 6; i++ {
		q.pop()
	}
	// head is now at 6 of an 8-slot ring; these wrap, then force growth.
	for i := 8; i < 20; i++ {
		q.push(i)
	}
	for want := 6; want < 20; want++ {
		v, ok := q.pop()
		if !ok || v != want {
			t.Fatalf("got %d ok=%v, want %d", v, ok, want)
		}
	}
}

// TestFifoDrainTo drains into a reused destination and checks order,
// emptiness, and that the backing array is reused (no allocation in
// steady state).
func TestFifoDrainTo(t *testing.T) {
	var q fifo[int]
	var dst []int
	for round := 0; round < 3; round++ {
		for i := 0; i < 10; i++ {
			q.push(round*10 + i)
		}
		dst = q.drainTo(dst[:0])
		if len(dst) != 10 {
			t.Fatalf("round %d: drained %d items", round, len(dst))
		}
		for i, v := range dst {
			if v != round*10+i {
				t.Fatalf("round %d: dst[%d] = %d", round, i, v)
			}
		}
		if q.len() != 0 {
			t.Fatalf("round %d: %d items left after drain", round, q.len())
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 10; i++ {
			q.push(i)
		}
		dst = q.drainTo(dst[:0])
	})
	if allocs != 0 {
		t.Fatalf("steady-state push+drain allocates %.1f/op, want 0", allocs)
	}
}

// TestFifoZeroesSlots checks popped and drained slots do not pin their
// old contents (pointer elements must be released for GC).
func TestFifoZeroesSlots(t *testing.T) {
	var q fifo[*int]
	v := new(int)
	q.push(v)
	q.pop()
	for i := range q.buf {
		if q.buf[i] != nil {
			t.Fatalf("slot %d still holds a pointer after pop", i)
		}
	}
	q.push(v)
	q.drainTo(nil)
	for i := range q.buf {
		if q.buf[i] != nil {
			t.Fatalf("slot %d still holds a pointer after drain", i)
		}
	}
}
