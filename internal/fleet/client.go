package fleet

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"
)

// Client is a minimal fleet-protocol device client: it opens a session,
// streams sample frames, and collects the reports the server sends
// back. It doubles as the reference implementation of the protocol for
// third-party device firmware.
type Client struct {
	conn     net.Conn
	br       *bufio.Reader
	bw       *bufio.Writer
	maxFrame int
	timeout  time.Duration
	welcome  Welcome
	reports  []Report
	closed   bool
}

// DialTimeout is the default per-operation client deadline.
const DialTimeout = 30 * time.Second

// ClientConfig tunes a client's timeouts. The zero value reproduces
// Dial's defaults. The dial and I/O deadlines are separate knobs: a
// connect should fail fast, while a send to a backpressured server may
// legitimately block far longer than any sane dial bound (the old
// single hardcoded DialTimeout served as both, which broke slow
// sessions and made tests either flaky or slow).
type ClientConfig struct {
	// DialTimeout bounds the TCP connect. Zero means the DialTimeout
	// constant (30s).
	DialTimeout time.Duration
	// IOTimeout is the per-operation deadline for the handshake, each
	// Send, and each Finish read. Zero means the resolved dial timeout;
	// negative disables I/O deadlines entirely.
	IOTimeout time.Duration
	// MaxFrameBytes caps inbound frames. Zero means
	// DefaultMaxFrameBytes.
	MaxFrameBytes int
	// MaxRedirects caps how many FrameRedirect hops one dial follows
	// before giving up (a coordinator normally answers with exactly
	// one). Zero means 4; negative refuses redirects entirely — the
	// hello then omits the proto field and is bit-identical to the
	// original protocol, so a coordinator answers it with an error
	// instead of a redirect.
	MaxRedirects int
	// Retries is how many additional dial attempts follow a transport
	// failure (connection refused, dial timeout, or a redirect target
	// that cannot be reached — each retry restarts from the original
	// address, so a redirect to a freshly dead backend re-asks the
	// coordinator, which re-homes the device). Protocol-level failures
	// (a FrameError, a redirect loop) never retry. Zero means 2;
	// negative disables retries.
	Retries int
	// RetryBackoff is the base of the jittered exponential backoff
	// between retries: attempt i sleeps a uniform random duration in
	// [base/2, base) * 2^i, so a thundering herd of re-homing clients
	// spreads instead of re-dialing in lockstep. Zero means 100ms.
	RetryBackoff time.Duration
}

// withDefaults resolves the zero values.
func (cfg ClientConfig) withDefaults() ClientConfig {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DialTimeout
	}
	if cfg.IOTimeout == 0 {
		cfg.IOTimeout = cfg.DialTimeout
	}
	if cfg.MaxFrameBytes <= 0 {
		cfg.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if cfg.MaxRedirects == 0 {
		cfg.MaxRedirects = 4
	}
	if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 100 * time.Millisecond
	}
	return cfg
}

// dialTCP is swapped out by the reconnect table tests to exercise the
// retry loop deterministically.
var dialTCP = net.DialTimeout

// retryableError marks a transport-level dial failure the retry loop
// may re-attempt from the original address.
type retryableError struct{ err error }

func (e retryableError) Error() string { return e.err.Error() }
func (e retryableError) Unwrap() error { return e.err }

// Dial connects to a fleet server (or a coordinator fronting several)
// with default timeouts, performs the hello/welcome handshake —
// transparently following a coordinator's redirect to the owning
// backend — and returns a ready client.
func Dial(addr string, hello Hello) (*Client, error) {
	return DialConfig(addr, hello, ClientConfig{})
}

// DialConfig is Dial with explicit timeout, redirect and retry
// configuration.
func DialConfig(addr string, hello Hello, cfg ClientConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	if cfg.MaxRedirects > 0 {
		hello.Proto = ProtoRedirect
	}
	backoff := cfg.RetryBackoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		c, err := dialHops(addr, hello, cfg)
		if err == nil {
			return c, nil
		}
		var re retryableError
		if !errors.As(err, &re) {
			return nil, err
		}
		lastErr = err
		if attempt >= cfg.Retries {
			break
		}
		// Jittered exponential backoff: uniform in [backoff/2, backoff).
		time.Sleep(backoff/2 + time.Duration(rand.Int63n(int64(backoff/2))))
		backoff *= 2
	}
	if cfg.Retries > 0 {
		return nil, fmt.Errorf("fleet: dial %s failed after %d attempts: %w",
			addr, cfg.Retries+1, lastErr)
	}
	return nil, lastErr
}

// dialHops performs one dial pass: connect, handshake, and follow up to
// MaxRedirects coordinator redirects. Transport failures come back
// wrapped as retryableError; protocol failures are final.
func dialHops(addr string, hello Hello, cfg ClientConfig) (*Client, error) {
	for hop := 0; ; hop++ {
		conn, err := dialTCP("tcp", addr, cfg.DialTimeout)
		if err != nil {
			return nil, retryableError{err}
		}
		c := &Client{
			conn:     conn,
			br:       bufio.NewReaderSize(conn, 1<<16),
			bw:       bufio.NewWriterSize(conn, 1<<16),
			maxFrame: cfg.MaxFrameBytes,
			timeout:  cfg.IOTimeout,
		}
		conn.SetDeadline(c.opDeadline())
		if err := writeFrame(c.bw, FrameHello, mustJSON(hello)); err != nil {
			conn.Close()
			return nil, retryableError{err}
		}
		if err := c.bw.Flush(); err != nil {
			conn.Close()
			return nil, retryableError{err}
		}
		typ, payload, err := readFrame(c.br, c.maxFrame)
		if err != nil {
			conn.Close()
			return nil, retryableError{fmt.Errorf("fleet: reading welcome: %w", err)}
		}
		switch typ {
		case FrameWelcome:
			if err := json.Unmarshal(payload, &c.welcome); err != nil {
				conn.Close()
				return nil, fmt.Errorf("fleet: bad welcome: %w", err)
			}
			conn.SetDeadline(time.Time{})
			return c, nil
		case FrameRedirect:
			conn.Close()
			var rd Redirect
			if err := json.Unmarshal(payload, &rd); err != nil || rd.Addr == "" {
				return nil, fmt.Errorf("fleet: bad redirect: %v", err)
			}
			if hop >= cfg.MaxRedirects {
				return nil, fmt.Errorf("fleet: redirect limit (%d hops) exceeded at %s -> %s",
					cfg.MaxRedirects, addr, rd.Addr)
			}
			addr = rd.Addr
		case FrameError:
			conn.Close()
			return nil, errors.New(decodeError(payload))
		default:
			conn.Close()
			return nil, fmt.Errorf("fleet: unexpected frame 0x%02x in handshake", typ)
		}
	}
}

// Welcome returns the server's session acknowledgment.
func (c *Client) Welcome() Welcome { return c.welcome }

// Send streams samples to the server, splitting them into frames under
// the protocol's size cap.
func (c *Client) Send(samples []float64) error {
	if c.closed {
		return errors.New("fleet: client closed")
	}
	maxPer := c.maxFrame / 8
	c.conn.SetWriteDeadline(c.opDeadline())
	for len(samples) > 0 {
		n := len(samples)
		if n > maxPer {
			n = maxPer
		}
		if err := writeFrame(c.bw, FrameSamples, EncodeSamples(samples[:n])); err != nil {
			return err
		}
		samples = samples[n:]
	}
	return c.bw.Flush()
}

// Finish says bye, then reads the remaining report events until the
// server's summary arrives. It returns the summary and every report
// received over the session's lifetime.
func (c *Client) Finish() (Summary, []Report, error) {
	var sum Summary
	if c.closed {
		return sum, c.reports, errors.New("fleet: client closed")
	}
	c.conn.SetWriteDeadline(c.opDeadline())
	if err := writeFrame(c.bw, FrameBye, nil); err != nil {
		return sum, c.reports, err
	}
	if err := c.bw.Flush(); err != nil {
		return sum, c.reports, err
	}
	for {
		c.conn.SetReadDeadline(c.opDeadline())
		typ, payload, err := readFrame(c.br, c.maxFrame)
		if err != nil {
			return sum, c.reports, fmt.Errorf("fleet: awaiting summary: %w", err)
		}
		switch typ {
		case FrameReport:
			var r Report
			if err := json.Unmarshal(payload, &r); err != nil {
				return sum, c.reports, fmt.Errorf("fleet: bad report: %w", err)
			}
			c.reports = append(c.reports, r)
		case FrameSummary:
			if err := json.Unmarshal(payload, &sum); err != nil {
				return sum, c.reports, fmt.Errorf("fleet: bad summary: %w", err)
			}
			return sum, c.reports, nil
		case FrameError:
			return sum, c.reports, errors.New(decodeError(payload))
		default:
			return sum, c.reports, fmt.Errorf("fleet: unexpected frame 0x%02x", typ)
		}
	}
}

// Reports returns the report events collected so far.
func (c *Client) Reports() []Report { return c.reports }

// Close tears the connection down.
func (c *Client) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

// opDeadline returns the next per-operation deadline (zero time — no
// deadline — when I/O deadlines are disabled).
func (c *Client) opDeadline() time.Time {
	if c.timeout <= 0 {
		return time.Time{}
	}
	return time.Now().Add(c.timeout)
}

// decodeError extracts the message of a FrameError payload.
func decodeError(payload []byte) string {
	var ei ErrorInfo
	if err := json.Unmarshal(payload, &ei); err != nil || ei.Error == "" {
		return "fleet: server error"
	}
	return ei.Error
}
