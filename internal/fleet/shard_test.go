package fleet

import (
	"bytes"
	"fmt"
	"testing"

	"eddie/internal/core"
	"eddie/internal/dsp"
	"eddie/internal/metrics"
	"eddie/internal/pipeline"
	"eddie/internal/pipeline/pipetest"
	"eddie/internal/stream"
)

// TestShardIndexDeterministic pins that a device always lands on the
// same shard (its frames must stay ordered on one processor).
func TestShardIndexDeterministic(t *testing.T) {
	for _, n := range []int{1, 2, 4, 16} {
		for _, dev := range []string{"a", "dev-0", "sensor.rack12.slot3", "x_y-z.9"} {
			i := shardIndex(dev, n)
			if i < 0 || i >= n {
				t.Fatalf("shardIndex(%q, %d) = %d out of range", dev, n, i)
			}
			for r := 0; r < 3; r++ {
				if shardIndex(dev, n) != i {
					t.Fatalf("shardIndex(%q, %d) not deterministic", dev, n)
				}
			}
		}
	}
}

// TestShardIndexDistribution hashes a fleet's worth of systematic
// device names and checks no shard is starved or overloaded: FNV-1a
// over sequential names must spread within ±50% of the per-shard mean.
func TestShardIndexDistribution(t *testing.T) {
	const devices = 10000
	for _, shards := range []int{4, 8, 16} {
		counts := make([]int, shards)
		for i := 0; i < devices; i++ {
			counts[shardIndex(fmt.Sprintf("device-%05d", i), shards)]++
		}
		mean := devices / shards
		for i, c := range counts {
			if c < mean/2 || c > mean*3/2 {
				t.Errorf("shards=%d: shard %d holds %d devices (mean %d)", shards, i, c, mean)
			}
		}
	}
}

// TestSamplePoolRecycles checks size-class round-trips: a returned
// buffer is handed out again for the same class, retained capacity is
// bounded, and oversized buffers are never pooled.
func TestSamplePoolRecycles(t *testing.T) {
	p := samplePool{maxRetain: 1 << 20}
	b := p.get(1000)
	if len(b) != 1000 || cap(b) != 1024 {
		t.Fatalf("get(1000): len %d cap %d, want 1000/1024", len(b), cap(b))
	}
	p.put(b)
	b2 := p.get(600) // same class (1<<10): must reuse the pooled buffer
	if cap(b2) != 1024 || &b2[0] != &b[0] {
		t.Fatal("get after put did not recycle the class buffer")
	}

	huge := p.get(1 << 20) // above the top class: plain allocation
	if cap(huge) != 1<<20 {
		t.Fatalf("oversized get capacity %d", cap(huge))
	}
	p.put(huge)
	if p.retained != 0 {
		t.Fatalf("oversized put retained %d samples, want 0", p.retained)
	}

	p2 := samplePool{maxRetain: 1024}
	a := p2.get(1024)
	c := p2.get(1024)
	p2.put(a)
	p2.put(c) // over budget: dropped
	if p2.retained != 1024 {
		t.Fatalf("retained %d samples, want the 1024 budget", p2.retained)
	}
}

// detachedSession builds a session with a live detector but no socket,
// so tests and benchmarks can drive the decode → enqueue → batch-feed
// path directly (the test plays both the reader and the shard).
func detachedSession(tb testing.TB) (*session, []float64) {
	tb.Helper()
	f := pipetest.Tiny(tb)
	run, err := pipeline.CollectRun(f.W, f.Machine, f.Config, 900, nil)
	if err != nil {
		tb.Fatal(err)
	}
	clean := dsp.Detrend(run.Signal)

	reg := metrics.NewRegistry()
	srv := &Server{cfg: Config{Models: StaticModels{"w": f.Model}}.withDefaults()}
	srv.reg = reg
	srv.cBackpress = reg.Counter("fleet_backpressure_stalls")
	srv.cReports = reg.Counter("fleet_reports")

	det, err := stream.NewDetector(f.Model, stream.Config{
		STFT:  f.Config.STFT,
		Peaks: f.Config.Peaks,
		// Explicitly disabled: the steady-state zero-alloc guard below
		// covers the denoise-off fleet configuration, so a regression that
		// puts the disabled stage on the per-frame path fails loudly.
		Denoise:           dsp.DenoiseConfig{},
		Monitor:           core.DefaultMonitorConfig(),
		DisableDCBlock:    true,
		MaxHistoryWindows: 256,
		Metrics:           metrics.NewDetectorWith(reg),
	})
	if err != nil {
		tb.Fatal(err)
	}
	if det.Denoiser() != nil {
		tb.Fatal("disabled denoise config built a denoiser")
	}
	ss := newSession(srv, 1, nil)
	ss.det = det
	ss.device, ss.workload = "dev-detached", "w"
	ss.dSamples = reg.Counter("fleet_device_samples/dev-detached")
	ss.dWindows = reg.Counter("fleet_device_windows/dev-detached")
	ss.dReports = reg.Counter("fleet_device_reports/dev-detached")
	ss.dSanitized = reg.Counter("fleet_device_sanitized/dev-detached")

	sh := newShard(srv, 0, "detached")
	sh.stop()
	<-sh.done // the test calls processTurn itself
	ss.sh = sh
	return ss, clean
}

// steadyStep is one reader+processor cycle of the hot path: read a
// frame into the reusable scratch, decode into a pooled buffer, enqueue
// under the backpressure cap, and run one batched processor turn.
func steadyStep(ss *session, r *bytes.Reader, frame []byte) error {
	r.Reset(frame)
	_, payload, scratch, err := readFrameInto(r, DefaultMaxFrameBytes, ss.readBuf)
	ss.readBuf = scratch
	if err != nil {
		return err
	}
	buf, err := DecodeSamples(payload, ss.getBuf(len(payload)/8))
	if err != nil {
		return err
	}
	if !ss.enqueue(buf) {
		return fmt.Errorf("enqueue refused")
	}
	ss.processTurn()
	return nil
}

// TestFleetSteadyStateZeroAlloc pins the tentpole's allocation
// guarantee: in steady state the per-frame sample path — frame read,
// sample decode, inbox enqueue, batched detector feed — performs zero
// heap allocations. Warmup runs the detector past its ring growth and
// history-trim onset and primes the frame scratch and sample pool.
func TestFleetSteadyStateZeroAlloc(t *testing.T) {
	ss, clean := detachedSession(t)
	const chunk = 1024
	frames := make([][]byte, 0, len(clean)/chunk)
	for i := 0; i+chunk <= len(clean); i += chunk {
		var buf bytes.Buffer
		if err := writeFrame(&buf, FrameSamples, EncodeSamples(clean[i:i+chunk])); err != nil {
			t.Fatal(err)
		}
		frames = append(frames, buf.Bytes())
	}
	r := bytes.NewReader(nil)
	// Warmup: ring growth, history-trim onset (MaxHistoryWindows=256),
	// pool and frame-scratch priming. Cycling the capture splices its
	// end onto its start, and a splice can produce a (legitimate)
	// report, so the warmup runs several laps and the measurement below
	// is aligned to cover one splice-free stretch.
	// Align so the splice (and the rejection streak it can trigger a few
	// windows later) resolves before measurement starts, and the next
	// splice lies beyond the measured stretch.
	i := 0
	for ; i < 300 || i%len(frames) != 6; i++ {
		if err := steadyStep(ss, r, frames[i%len(frames)]); err != nil {
			t.Fatal(err)
		}
	}
	if len(frames) < 40 {
		t.Fatalf("capture too short for a splice-free measurement window: %d frames", len(frames))
	}
	reportsBefore := ss.aReports.Load()
	avg := testing.AllocsPerRun(30, func() {
		if err := steadyStep(ss, r, frames[i%len(frames)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if n := ss.aReports.Load() - reportsBefore; n != 0 {
		t.Fatalf("measurement window produced %d reports; the zero-alloc claim needs a report-free stretch", n)
	}
	if avg != 0 {
		t.Errorf("steady-state sample path allocates %.3f allocs/op, want 0", avg)
	}
}

// BenchmarkFleetSteadyState measures one frame through the full session
// hot path (read + decode + enqueue + batched feed of 1024 samples).
func BenchmarkFleetSteadyState(b *testing.B) {
	ss, clean := detachedSession(b)
	const chunk = 1024
	frames := make([][]byte, 0, len(clean)/chunk)
	for i := 0; i+chunk <= len(clean); i += chunk {
		var buf bytes.Buffer
		if err := writeFrame(&buf, FrameSamples, EncodeSamples(clean[i:i+chunk])); err != nil {
			b.Fatal(err)
		}
		frames = append(frames, buf.Bytes())
	}
	r := bytes.NewReader(nil)
	for i := 0; i < 500; i++ {
		if err := steadyStep(ss, r, frames[i%len(frames)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := steadyStep(ss, r, frames[i%len(frames)]); err != nil {
			b.Fatal(err)
		}
	}
}
