package fleet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"eddie/internal/metrics"
	"eddie/internal/obs"
	"eddie/internal/par"
	"eddie/internal/stream"
)

// Config configures a fleet server.
type Config struct {
	// Models resolves workload names from session hellos to trained
	// models. Required.
	Models ModelSource
	// Stream is the per-session detector template: STFT, peak and
	// monitor configuration. Each session gets its own copy (and its own
	// flight recorder); per-session hooks in the template (Tap,
	// GroundTruth) are dropped. STFT.SampleRate etc. must match what the
	// models were trained under.
	Stream stream.Config
	// MaxSessions bounds concurrent device sessions; further connections
	// are refused with a FrameError. Zero derives the bound from
	// physical memory (a quarter of RAM at ~256 KiB per session, clamped
	// to [64, 262144]): sessions are mostly idle and their detector work
	// is multiplexed over the shard pool, so memory — not CPU count — is
	// what limits density.
	MaxSessions int
	// Shards is the number of processor goroutines the detector work is
	// multiplexed over. Sessions are hashed onto shards by device id;
	// each shard drains a session's whole frame inbox per scheduling
	// turn. Zero means par.Parallelism().
	Shards int
	// GoroutinePerSession restores the legacy architecture: every
	// session gets a private processor goroutine instead of a slot in
	// the shard pool. It exists as the A/B baseline for the fleet
	// benchmark (cmd/eddie-bench -fleet-bench).
	GoroutinePerSession bool
	// IdleTimeout is the per-frame read deadline: a session that sends
	// nothing for this long is torn down. Zero means 30s.
	IdleTimeout time.Duration
	// WriteTimeout bounds each outbound frame write. Zero means 10s.
	WriteTimeout time.Duration
	// MaxFrameBytes caps one frame's payload. Zero means
	// DefaultMaxFrameBytes.
	MaxFrameBytes int
	// MaxPendingSamples is the per-session backpressure cap: when a
	// session has this many decoded samples waiting for the detector,
	// its reader stops draining the socket until the detector catches
	// up, which pushes back on the device through TCP flow control.
	// Zero means 1<<20 (one million samples ≈ 8 MB per slow session).
	MaxPendingSamples int
	// MaxHistoryWindows bounds each session monitor's retained outcome
	// history (stream.Config.MaxHistoryWindows). Zero means 4096;
	// negative keeps unbounded history (offline semantics).
	MaxHistoryWindows int
	// FlightDepth is each session's flight-recorder depth. Zero means
	// the obs default; negative disables per-session flight recorders.
	FlightDepth int
	// Registry receives fleet-wide and per-device counters. Nil creates
	// a private registry (exposed via Server.Registry).
	Registry *metrics.Registry
	// Journal, when non-nil, durably records session lifecycle events
	// (connect, drain, disconnect, backpressure) and every alarm dump.
	// The server syncs it at shutdown but never closes it — the journal
	// outlives the server (its owner recovers it on the next start).
	Journal *obs.Journal
	// Alarms, when non-nil, receives every alarm as a JSON-encoded
	// JournalEvent for live streaming (/eddie/alarms). The server closes
	// it when shutdown completes, ending every SSE subscriber.
	Alarms *obs.AlarmStream
	// SLO, when non-nil, receives every scheduling turn's
	// frame-to-verdict latency for the /eddie/healthz burn-rate verdict.
	SLO *obs.SLOTracker
	// Logf, when non-nil, receives one line per session lifecycle event.
	Logf func(format string, args ...any)
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = defaultMaxSessions()
	}
	if c.Shards <= 0 {
		c.Shards = par.Parallelism()
		if c.Shards < 1 {
			c.Shards = 1
		}
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 30 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if c.MaxPendingSamples <= 0 {
		c.MaxPendingSamples = 1 << 20
	}
	switch {
	case c.MaxHistoryWindows == 0:
		c.MaxHistoryWindows = 4096
	case c.MaxHistoryWindows < 0:
		c.MaxHistoryWindows = 0
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	return c
}

// Server hosts one streaming detector session per connected device.
type Server struct {
	cfg Config
	reg *metrics.Registry

	// Fleet-wide counters.
	cAccepted   *metrics.Counter // connections accepted
	cOpened     *metrics.Counter // sessions past a valid hello
	cClosed     *metrics.Counter // sessions ended (any reason)
	cRefused    *metrics.Counter // connections refused at capacity
	cErrors     *metrics.Counter // sessions ended by a protocol error
	cReports    *metrics.Counter // anomaly reports streamed out
	cBackpress  *metrics.Counter // reader stalls on the pending cap
	cAdapt      *metrics.Counter // adaptive reference updates across sessions
	hSessionWin *metrics.Histogram

	// shards is the shared processor pool (empty in GoroutinePerSession
	// mode); arenas interns per-workload model state across sessions.
	shards    []*shard
	shardStop sync.Once
	obsStop   sync.Once // journal sync + alarm-stream close at shutdown
	arenas    arenaTable

	mu       sync.Mutex
	ln       net.Listener
	sessions map[int64]*session
	devices  int           // sessions holding a MaxSessions slot (past a valid hello)
	recent   []SessionInfo // ring of recently closed sessions
	nextID   int64
	draining bool
	closed   bool

	wg sync.WaitGroup // live sessions (released in finish)
}

// recentClosedCap bounds the recently-closed session ring in Sessions
// listings.
const recentClosedCap = 32

// NewServer creates a fleet server. Call Serve (or ListenAndServe) to
// start accepting devices.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Models == nil {
		return nil, fmt.Errorf("fleet: config needs a model source")
	}
	if err := cfg.Stream.STFT.Validate(); err != nil {
		return nil, fmt.Errorf("fleet: stream template: %w", err)
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		reg:      cfg.Registry,
		sessions: map[int64]*session{},
	}
	s.cAccepted = s.reg.Counter("fleet_conns_accepted")
	s.cOpened = s.reg.Counter("fleet_sessions_opened")
	s.cClosed = s.reg.Counter("fleet_sessions_closed")
	s.cRefused = s.reg.Counter("fleet_conns_refused")
	s.cErrors = s.reg.Counter("fleet_session_errors")
	s.cReports = s.reg.Counter("fleet_reports")
	s.cBackpress = s.reg.Counter("fleet_backpressure_stalls")
	s.cAdapt = s.reg.Counter("fleet_adapt_updates")
	s.hSessionWin = s.reg.Histogram("fleet_session_windows",
		[]float64{16, 64, 256, 1024, 4096, 16384, 65536})
	if !cfg.GoroutinePerSession {
		s.shards = make([]*shard, cfg.Shards)
		for i := range s.shards {
			s.shards[i] = newShard(s, i, shardLabel(i))
		}
	}
	return s, nil
}

// Registry returns the server's metrics registry (for /metrics wiring).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// logf logs one line if a logger is configured.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// ListenAndServe listens on addr and serves until Shutdown or Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts device connections on ln until the listener is closed
// by Shutdown or Close. It returns nil after a clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("fleet: server already shut down")
	}
	if s.ln != nil {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("fleet: server already serving")
	}
	s.ln = ln
	s.mu.Unlock()
	s.logf("fleet: serving on %s (max %d sessions)", ln.Addr(), s.cfg.MaxSessions)
	s.cfg.Journal.Event("server_start", "", 0, "", ln.Addr().String())

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			stopping := s.draining || s.closed
			s.mu.Unlock()
			if stopping {
				return nil
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		s.cAccepted.Inc()
		if !s.admit(conn) {
			continue
		}
	}
}

// controlHeadroom is how many connections beyond MaxSessions the accept
// path admits. The strict MaxSessions bound applies to device sessions
// at hello time (claimDeviceSlot); the headroom exists so coordinator
// health probes and listing queries still get answered when the backend
// is at its device cap — a probe refused for capacity would read as
// "backend down" and trigger a spurious re-home exactly when the fleet
// is busiest.
const controlHeadroom = 8

// admit registers a new connection under the connection bound; refused
// connections get an error frame and are closed. Returns false when the
// connection was refused.
func (s *Server) admit(conn net.Conn) bool {
	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		s.refuse(conn, "server draining")
		return false
	}
	if len(s.sessions) >= s.cfg.MaxSessions+controlHeadroom {
		s.mu.Unlock()
		s.cRefused.Inc()
		s.refuse(conn, fmt.Sprintf("at capacity (%d sessions)", s.cfg.MaxSessions))
		return false
	}
	s.nextID++
	sess := newSession(s, s.nextID, conn)
	s.sessions[sess.id] = sess
	s.wg.Add(1)
	s.mu.Unlock()
	// The reader goroutine stays thin (decode + enqueue); detector work
	// and session teardown happen on the session's shard. finish —
	// reached exactly once via finalize — releases the wait group.
	go sess.run()
	return true
}

// refuse sends a best-effort error frame and closes the connection.
func (s *Server) refuse(conn net.Conn, why string) {
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	writeFrame(conn, FrameError, mustJSON(ErrorInfo{Error: "fleet: " + why}))
	conn.Close()
}

// claimDeviceSlot reserves one of the MaxSessions device slots for a
// session that presented a valid hello. The check and the increment are
// one critical section, so the device cap is exact no matter how many
// handshakes race.
func (s *Server) claimDeviceSlot() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed || s.devices >= s.cfg.MaxSessions {
		return false
	}
	s.devices++
	return true
}

// finish unregisters an ended session and records its summary. Called
// exactly once per admitted session, from session.finalize.
func (s *Server) finish(sess *session) {
	defer s.wg.Done()
	s.arenas.release(sess.arena)
	if sess.control.Load() {
		// Control connections (coordinator probes and listing queries)
		// release their slot without touching the listing ring, the
		// journal, or the session counters — a probe every second would
		// otherwise drown the real session history.
		s.mu.Lock()
		delete(s.sessions, sess.id)
		s.mu.Unlock()
		return
	}
	info := sess.info()
	info.Active = false
	s.mu.Lock()
	delete(s.sessions, sess.id)
	if sess.slot.Load() {
		s.devices--
	}
	s.recent = append(s.recent, info)
	if len(s.recent) > recentClosedCap {
		s.recent = append(s.recent[:0], s.recent[len(s.recent)-recentClosedCap:]...)
	}
	s.mu.Unlock()
	s.cClosed.Inc()
	if info.Error != "" {
		s.cErrors.Inc()
	}
	s.hSessionWin.Observe(float64(info.Windows))
	s.cfg.Journal.Event("disconnect", info.Device, sess.id, sess.shardLabel(), info.Error)
	s.logf("fleet: session %d (%s/%s) closed: %d windows, %d reports%s",
		sess.id, info.Device, info.Workload, info.Windows, info.Reports,
		errSuffix(info.Error))
}

func errSuffix(e string) string {
	if e == "" {
		return ""
	}
	return ", error: " + e
}

// Shutdown gracefully drains the server: stop accepting, tell every
// session to finish processing what it has already received, and wait
// for them (or for ctx). Sessions still open when ctx expires are
// force-closed. Safe to call multiple times.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining || s.closed
	s.draining = true
	ln := s.ln
	var sessions []*session
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	if ln != nil && !already {
		ln.Close()
	}
	for _, sess := range sessions {
		sess.drain()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.stopShards()
		s.finishObs("drained")
		return nil
	case <-ctx.Done():
		s.Close()
		<-done
		return ctx.Err()
	}
}

// finishObs ends the observability plane exactly once when the last
// session is gone: the shutdown is journaled and made durable, and the
// alarm stream closes so every SSE subscriber sees a clean end-of-
// stream instead of a hang. The journal itself stays open — its owner
// (cmd/eddie) closes it after the server is done.
func (s *Server) finishObs(detail string) {
	s.obsStop.Do(func() {
		s.cfg.Journal.Event("server_stop", "", 0, "", detail)
		s.cfg.Journal.Sync()
		s.cfg.Alarms.Close()
	})
}

// Close force-closes the listener and every session without draining.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	var sessions []*session
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
		if errors.Is(err, net.ErrClosed) {
			err = nil
		}
	}
	for _, sess := range sessions {
		sess.close()
	}
	// The shard pool must outlive every session (force-closed sessions
	// still finalize on their shard), so it stops once the last one
	// finishes.
	go func() {
		s.wg.Wait()
		s.stopShards()
		s.finishObs("closed")
	}()
	return err
}

// Draining implements obs.FleetHealth: true once Shutdown (or Close)
// has been requested.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining || s.closed
}

// ActiveSessions implements obs.FleetHealth: the live session count and
// the configured bound.
func (s *Server) ActiveSessions() (active, limit int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.devices, s.cfg.MaxSessions
}

// SessionInfo describes one device session for the /eddie/fleet listing.
type SessionInfo struct {
	Session   int64  `json:"session"`
	Device    string `json:"device"`
	Workload  string `json:"workload"`
	Remote    string `json:"remote"`
	StartedAt string `json:"startedAt"`
	// LastActivity is the RFC3339 time of the session's newest enqueued
	// frame (empty before any samples arrive).
	LastActivity string `json:"lastActivity,omitempty"`
	Active       bool   `json:"active"`
	Samples      int64  `json:"samples"`
	Sanitized    int64  `json:"sanitized"`
	// QueueDepth is the number of decoded samples sitting in the
	// session's inbox, waiting for its shard's next scheduling turn.
	QueueDepth int     `json:"queueDepth"`
	Windows    int     `json:"windows"`
	Reports    int     `json:"reports"`
	LastWindow int     `json:"lastReportWindow"`
	LastTime   float64 `json:"lastReportTimeSec"`
	Error      string  `json:"error,omitempty"`
}

// Sessions returns the active sessions (sorted by id) followed by the
// most recently closed ones.
func (s *Server) Sessions() []SessionInfo {
	s.mu.Lock()
	active := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		if sess.control.Load() {
			continue
		}
		active = append(active, sess)
	}
	recent := append([]SessionInfo(nil), s.recent...)
	s.mu.Unlock()
	sort.Slice(active, func(i, j int) bool { return active[i].id < active[j].id })
	out := make([]SessionInfo, 0, len(active)+len(recent))
	for _, sess := range active {
		out = append(out, sess.info())
	}
	return append(out, recent...)
}

// DefaultSessionPageLimit bounds one /eddie/fleet listing page: at
// 100k+ sessions per node a full dump would render megabytes of JSON
// per GET, so listings page by default.
const DefaultSessionPageLimit = 1000

// SessionsPage returns one page of the session listing — active
// sessions in id order followed by the recently closed ring — plus the
// listing total and the live-session count. A limit <= 0 falls back to
// DefaultSessionPageLimit.
func (s *Server) SessionsPage(offset, limit int) (page []SessionInfo, total, active int) {
	if offset < 0 {
		offset = 0
	}
	if limit <= 0 {
		limit = DefaultSessionPageLimit
	}
	s.mu.Lock()
	act := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		if sess.control.Load() {
			continue
		}
		act = append(act, sess)
	}
	recent := append([]SessionInfo(nil), s.recent...)
	s.mu.Unlock()
	sort.Slice(act, func(i, j int) bool { return act[i].id < act[j].id })
	total = len(act) + len(recent)
	active = len(act)
	page = make([]SessionInfo, 0, min(limit, total))
	for i := offset; i < total && len(page) < limit; i++ {
		if i < len(act) {
			page = append(page, act[i].info())
		} else {
			page = append(page, recent[i-len(act)])
		}
	}
	return page, total, active
}

// FleetSessions implements obs.SessionLister for the /eddie/fleet debug
// endpoint: the first listing page plus fleet-level state.
func (s *Server) FleetSessions() any {
	out, _, _ := s.FleetSessionsPage(0, DefaultSessionPageLimit)
	return out
}

// FleetSessionsPage implements obs.SessionPager: one listing page with
// totals for the paging headers.
func (s *Server) FleetSessionsPage(offset, limit int) (any, int, int) {
	page, total, active := s.SessionsPage(offset, limit)
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	return map[string]any{
		"active":        active,
		"max":           s.cfg.MaxSessions,
		"shards":        len(s.shards),
		"draining":      draining,
		"arenas":        s.arenas.snapshot(),
		"shard_latency": s.shardLatency(),
		"total":         total,
		"offset":        offset,
		"limit":         limit,
		"sessions":      page,
	}, total, active
}

// loadReport assembles the control-RPC load answer the coordinator's
// health probes consume: live sessions against the admission cap,
// scheduling pressure, the worst per-shard p99 frame-to-verdict
// latency, and the SLO health verdict.
func (s *Server) loadReport() LoadReport {
	s.mu.Lock()
	rep := LoadReport{
		Active:   s.devices, // slot holders only: not probes, not half-open handshakes
		Max:      s.cfg.MaxSessions,
		Draining: s.draining || s.closed,
	}
	s.mu.Unlock()
	for _, sh := range s.shards {
		rep.QueueDepth += int(sh.gDepth.Value())
		snap := sh.hVerdict.Snapshot()
		if snap.Count == 0 {
			continue
		}
		if ms := float64(snap.P99) / 1e6; ms > rep.P99Ms {
			rep.P99Ms = ms
		}
	}
	switch {
	case rep.Draining:
		rep.Status = obs.HealthDraining
	case s.cfg.SLO != nil:
		rep.Status = s.cfg.SLO.Health().Status
	default:
		rep.Status = obs.HealthReady
	}
	return rep
}

// shardLatency summarizes each shared shard's frame-to-verdict latency
// histogram in milliseconds (shards with no completed turns are
// omitted).
func (s *Server) shardLatency() map[string]any {
	out := map[string]any{}
	toMS := func(ns int64) float64 { return float64(ns) / 1e6 }
	for _, sh := range s.shards {
		snap := sh.hVerdict.Snapshot()
		if snap.Count == 0 {
			continue
		}
		out[sh.label] = map[string]any{
			"count":   snap.Count,
			"mean_ms": snap.Mean / 1e6,
			"p50_ms":  toMS(snap.P50),
			"p90_ms":  toMS(snap.P90),
			"p99_ms":  toMS(snap.P99),
			"max_ms":  toMS(snap.Max),
		}
	}
	return out
}
