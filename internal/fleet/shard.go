package fleet

import (
	"fmt"
	"sync"
	"time"

	"eddie/internal/metrics"
)

// shard owns one processor goroutine and a run queue of ready sessions.
// Sessions are hashed onto shards by device id, so a node hosts
// Config.Shards processor goroutines total instead of one per
// connection; each scheduling turn drains everything a session has
// queued and feeds it to the detector as one batch. Readers stay thin
// (decode + enqueue only) and block on the per-session pending cap, so
// TCP flow control still pushes back on individual devices.
type shard struct {
	srv   *Server
	id    int
	label string

	mu     sync.Mutex
	cond   *sync.Cond
	runq   fifo[*session]
	closed bool

	gDepth   *metrics.Gauge   // sessions waiting for this processor
	cBatches *metrics.Counter // scheduling turns executed
	// Per-shard latency/depth histograms (log-bucketed, zero-alloc
	// record): frame-to-verdict latency of each completed turn, the
	// turn's own processing duration, and the run-queue depth observed
	// at each turn. Always on — a handful of atomic adds per turn.
	hVerdict *metrics.LogHistogram // fleet_frame_to_verdict_ns
	hTurn    *metrics.LogHistogram // fleet_turn_ns
	hQDepth  *metrics.LogHistogram // fleet_turn_queue_depth
	done     chan struct{}         // closed when the processor exits
}

// newShard creates a shard and starts its processor goroutine. label
// names the shard's instruments in the registry; private per-session
// shards (GoroutinePerSession mode) share one label so the registry
// does not grow with session count.
func newShard(srv *Server, id int, label string) *shard {
	sh := &shard{srv: srv, id: id, label: label, done: make(chan struct{})}
	sh.cond = sync.NewCond(&sh.mu)
	sh.gDepth = srv.reg.Gauge("fleet_shard_depth/" + label)
	sh.cBatches = srv.reg.Counter("fleet_shard_batches/" + label)
	sh.hVerdict = srv.reg.LogHist("fleet_frame_to_verdict_ns/" + label)
	sh.hTurn = srv.reg.LogHist("fleet_turn_ns/" + label)
	sh.hQDepth = srv.reg.LogHist("fleet_turn_queue_depth/" + label)
	go sh.run()
	return sh
}

// enqueue hands a ready session to the processor. The caller must have
// set the session's queued flag; a session is in at most one run-queue
// slot at a time. Enqueues on a stopped shard are dropped — the server
// only stops shards after every session has finished.
func (sh *shard) enqueue(ss *session) {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return
	}
	sh.runq.push(ss)
	sh.mu.Unlock()
	sh.gDepth.Inc()
	sh.cond.Signal()
}

// run is the processor loop: pop a ready session, give it one batched
// scheduling turn, requeue it at the tail if it has more work (FIFO
// fairness across sessions on the shard).
func (sh *shard) run() {
	defer close(sh.done)
	for {
		sh.mu.Lock()
		for sh.runq.len() == 0 && !sh.closed {
			sh.cond.Wait()
		}
		ss, ok := sh.runq.pop()
		sh.mu.Unlock()
		if !ok { // closed and drained
			return
		}
		sh.gDepth.Dec()
		sh.cBatches.Inc()
		sh.hQDepth.Record(sh.gDepth.Value())
		t0 := time.Now()
		requeue := ss.processTurn()
		sh.hTurn.Record(int64(time.Since(t0)))
		if requeue {
			sh.enqueue(ss)
		}
	}
}

// stop asks the processor to exit once its run queue is empty.
func (sh *shard) stop() {
	sh.mu.Lock()
	sh.closed = true
	sh.mu.Unlock()
	sh.cond.Broadcast()
}

// shardIndex maps a device id onto one of n shards with FNV-1a, so a
// device's frames always reach the same processor goroutine.
func shardIndex(device string, n int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(device); i++ {
		h ^= uint32(device[i])
		h *= prime32
	}
	return int(h % uint32(n))
}

// shardFor picks the session's shard: a hashed slot of the shared pool,
// or a fresh private shard in GoroutinePerSession mode (the benchmark
// baseline, one processor goroutine per connection).
func (s *Server) shardFor(device string) (sh *shard, private bool) {
	if s.cfg.GoroutinePerSession {
		return newShard(s, -1, "private"), true
	}
	return s.shards[shardIndex(device, len(s.shards))], false
}

// stopShards stops the shared shard pool; idempotent.
func (s *Server) stopShards() {
	s.shardStop.Do(func() {
		for _, sh := range s.shards {
			sh.stop()
		}
	})
}

// shardLabel names a shared shard's instruments.
func shardLabel(i int) string { return fmt.Sprintf("s%02d", i) }
