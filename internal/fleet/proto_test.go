package fleet

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xab}, 1000)}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := writeFrame(&buf, FrameSamples, p); err != nil {
			t.Fatalf("writeFrame: %v", err)
		}
	}
	for i, want := range payloads {
		typ, got, err := readFrame(&buf, DefaultMaxFrameBytes)
		if err != nil {
			t.Fatalf("frame %d: readFrame: %v", i, err)
		}
		if typ != FrameSamples {
			t.Fatalf("frame %d: type 0x%02x", i, typ)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: payload %q, want %q", i, got, want)
		}
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, FrameSamples, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readFrame(&buf, 50); err == nil {
		t.Fatal("oversized frame accepted")
	} else if !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestWriteFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	err := writeFrame(&buf, FrameSamples, make([]byte, DefaultMaxFrameBytes+1))
	if err == nil {
		t.Fatal("oversized payload written")
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, FrameReport, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := bytes.NewReader(full[:cut])
		if _, _, err := readFrame(r, DefaultMaxFrameBytes); err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
}

func TestSamplesRoundTrip(t *testing.T) {
	in := []float64{0, 1, -1, math.Pi, math.MaxFloat64, math.SmallestNonzeroFloat64, math.Inf(1), math.NaN()}
	out, err := DecodeSamples(EncodeSamples(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len %d, want %d", len(out), len(in))
	}
	for i := range in {
		if math.Float64bits(out[i]) != math.Float64bits(in[i]) {
			t.Fatalf("sample %d: %x != %x", i, math.Float64bits(out[i]), math.Float64bits(in[i]))
		}
	}
}

func TestDecodeSamplesRejectsRaggedPayload(t *testing.T) {
	if _, err := DecodeSamples(make([]byte, 12), nil); err == nil {
		t.Fatal("ragged payload accepted")
	}
}

func TestValidName(t *testing.T) {
	good := []string{"a", "dev-01", "sensor.rack2_slot3", strings.Repeat("x", 64)}
	for _, s := range good {
		if !validName(s) {
			t.Errorf("validName(%q) = false", s)
		}
	}
	bad := []string{"", " ", "a b", "a/b", "../etc", "dev\x00", strings.Repeat("x", 65), "héllo"}
	for _, s := range bad {
		if validName(s) {
			t.Errorf("validName(%q) = true", s)
		}
	}
}

// oldHello is the Hello type as it existed before protocol feature
// levels: the differential below proves the new field is invisible on
// the wire unless used.
type oldHello struct {
	Device         string `json:"device"`
	Workload       string `json:"workload"`
	DisableDCBlock bool   `json:"disableDCBlock,omitempty"`
}

// TestHelloWireCompatOldClient checks old-client -> new-server
// byte-compatibility: a hello that uses no new feature marshals
// byte-for-byte as the original protocol did, golden bytes included.
func TestHelloWireCompatOldClient(t *testing.T) {
	now := Hello{Device: "d1", Workload: "w"}
	old := oldHello{Device: "d1", Workload: "w"}
	nb, _ := json.Marshal(now)
	ob, _ := json.Marshal(old)
	if !bytes.Equal(nb, ob) {
		t.Fatalf("hello payload changed:\n new: %s\n old: %s", nb, ob)
	}
	const golden = `{"device":"d1","workload":"w"}`
	if string(nb) != golden {
		t.Fatalf("hello payload %s, want golden %s", nb, golden)
	}
	// The full frame too: header byte, big-endian length, payload.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameHello, nb); err != nil {
		t.Fatal(err)
	}
	want := append([]byte{0x01, 0, 0, 0, byte(len(golden))}, golden...)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("hello frame % x, want % x", buf.Bytes(), want)
	}
}

// TestHelloWireCompatNewClient checks new-client -> old-server
// compatibility: an old server (modeled by the pre-feature-level Hello
// struct) decodes a proto-announcing hello without error, simply
// ignoring the unknown field, and the known fields survive unchanged.
func TestHelloWireCompatNewClient(t *testing.T) {
	payload, _ := json.Marshal(Hello{Device: "d1", Workload: "w", Proto: ProtoRedirect})
	if !bytes.Contains(payload, []byte(`"proto":1`)) {
		t.Fatalf("new-client hello %s does not announce its feature level", payload)
	}
	var old oldHello
	if err := json.Unmarshal(payload, &old); err != nil {
		t.Fatalf("old server rejected a new-client hello: %v", err)
	}
	if old.Device != "d1" || old.Workload != "w" {
		t.Fatalf("old server decoded %+v from %s", old, payload)
	}
}

// TestServerIgnoresFutureProto checks forward compatibility on the
// server side: a hello announcing a feature level beyond anything this
// server knows is still welcomed normally (levels gate client-side
// behavior; servers never reject on them).
func TestServerIgnoresFutureProto(t *testing.T) {
	var h Hello
	if err := json.Unmarshal([]byte(`{"device":"d1","workload":"w","proto":99}`), &h); err != nil {
		t.Fatal(err)
	}
	if h.Proto != 99 || h.Device != "d1" {
		t.Fatalf("decoded %+v", h)
	}
}
