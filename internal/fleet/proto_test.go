package fleet

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xab}, 1000)}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := writeFrame(&buf, FrameSamples, p); err != nil {
			t.Fatalf("writeFrame: %v", err)
		}
	}
	for i, want := range payloads {
		typ, got, err := readFrame(&buf, DefaultMaxFrameBytes)
		if err != nil {
			t.Fatalf("frame %d: readFrame: %v", i, err)
		}
		if typ != FrameSamples {
			t.Fatalf("frame %d: type 0x%02x", i, typ)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: payload %q, want %q", i, got, want)
		}
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, FrameSamples, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readFrame(&buf, 50); err == nil {
		t.Fatal("oversized frame accepted")
	} else if !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestWriteFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	err := writeFrame(&buf, FrameSamples, make([]byte, DefaultMaxFrameBytes+1))
	if err == nil {
		t.Fatal("oversized payload written")
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, FrameReport, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := bytes.NewReader(full[:cut])
		if _, _, err := readFrame(r, DefaultMaxFrameBytes); err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
}

func TestSamplesRoundTrip(t *testing.T) {
	in := []float64{0, 1, -1, math.Pi, math.MaxFloat64, math.SmallestNonzeroFloat64, math.Inf(1), math.NaN()}
	out, err := DecodeSamples(EncodeSamples(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len %d, want %d", len(out), len(in))
	}
	for i := range in {
		if math.Float64bits(out[i]) != math.Float64bits(in[i]) {
			t.Fatalf("sample %d: %x != %x", i, math.Float64bits(out[i]), math.Float64bits(in[i]))
		}
	}
}

func TestDecodeSamplesRejectsRaggedPayload(t *testing.T) {
	if _, err := DecodeSamples(make([]byte, 12), nil); err == nil {
		t.Fatal("ragged payload accepted")
	}
}

func TestValidName(t *testing.T) {
	good := []string{"a", "dev-01", "sensor.rack2_slot3", strings.Repeat("x", 64)}
	for _, s := range good {
		if !validName(s) {
			t.Errorf("validName(%q) = false", s)
		}
	}
	bad := []string{"", " ", "a b", "a/b", "../etc", "dev\x00", strings.Repeat("x", 65), "héllo"}
	for _, s := range bad {
		if validName(s) {
			t.Errorf("validName(%q) = true", s)
		}
	}
}
