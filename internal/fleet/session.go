package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"eddie/internal/cfg"
	"eddie/internal/metrics"
	"eddie/internal/obs"
	"eddie/internal/stream"
)

// sessionReadBufBytes sizes the per-session buffered reader: big enough
// to take a frame header plus a typical samples payload in one syscall.
const sessionReadBufBytes = 1 << 16

// session is one connected device. A thin reader goroutine decodes
// frames into a bounded inbox (decode + enqueue only); the detector work
// happens on the session's shard, whose processor drains the whole
// inbox in one batched scheduling turn. The inbox bound is the
// backpressure mechanism: when pending samples exceed the cap the
// reader stops draining the socket, and TCP flow control pushes back on
// the device.
type session struct {
	s    *Server
	id   int64
	conn net.Conn
	br   *bufio.Reader

	// Set during the handshake, read-only afterwards (sh/privateShard
	// are written under mu because close() may race the handshake).
	device   string
	workload string
	det      *stream.Detector
	flight   *obs.FlightRecorder
	arena    *modelArena
	started  time.Time
	remote   string

	// Per-device counters in the server registry.
	dSamples, dWindows, dReports, dSanitized *metrics.Counter

	// control marks a coordinator control connection (load probes,
	// fleet-listing queries): it holds a session slot but opens no
	// detector and stays out of the listing/journal/counter plane.
	// Atomic because listings race the handshake that sets it.
	control atomic.Bool
	// slot marks a session holding one of the MaxSessions device slots
	// (claimed at hello, released in finish). Atomic for the same
	// reason as control: finish may run on a shard goroutine.
	slot atomic.Bool

	mu           sync.Mutex
	cond         *sync.Cond // wakes a reader stalled on the pending cap
	sh           *shard
	privateShard bool
	inbox        fifo[[]float64]
	pool         samplePool
	pending      int // samples sitting in the inbox
	// firstPending is when the oldest frame of the current inbox batch
	// was enqueued — the start of its frame-to-verdict latency, measured
	// when the turn that drains it completes.
	firstPending time.Time
	queued       bool   // session sits in its shard's run queue
	readerDone   bool   // reader exited; processor drains then finalizes
	sawBye       bool   // reader saw a clean FrameBye
	stopRead     bool   // reader should stop taking frames
	closed       bool   // hard stop: finalize without draining
	finalized    bool   // terminal state reached exactly once
	finalMsg     string // error sent to the client at session end ("" = clean)

	// Processor-only state (one shard turn at a time, no lock needed).
	batch         [][]float64
	readBuf       []byte
	prevWindows   int
	prevSanitized int64
	// Adaptation accounting (only touched when the stream template
	// enables the monitor's drift-adaptive layer).
	prevAdaptUpdates int64
	nextAdaptJournal int64
	adaptGauges      map[cfg.RegionID]*metrics.FloatGauge
	adaptDriftFn     func(cfg.RegionID, float64)

	// Progress counters, atomically readable by Sessions listings while
	// the shard processor runs.
	aSamples   atomic.Int64
	aSanitized atomic.Int64
	aWindows   atomic.Int64
	aReports   atomic.Int64
	lastWindow atomic.Int64
	lastTime   atomic.Uint64 // float64 bits
	lastActive atomic.Int64  // unix nanos of the newest enqueued frame
	errMsg     atomic.Pointer[string]
}

func newSession(s *Server, id int64, conn net.Conn) *session {
	ss := &session{s: s, id: id, conn: conn, started: time.Now()}
	ss.cond = sync.NewCond(&ss.mu)
	ss.lastWindow.Store(-1)
	ss.pool.maxRetain = 2 * s.cfg.MaxPendingSamples
	if conn != nil {
		ss.remote = conn.RemoteAddr().String()
		ss.br = bufio.NewReaderSize(conn, sessionReadBufBytes)
	}
	return ss
}

// fail records the session's terminal error (first one wins).
func (ss *session) fail(msg string) {
	ss.errMsg.CompareAndSwap(nil, &msg)
}

// info snapshots the session for listings.
func (ss *session) info() SessionInfo {
	ss.mu.Lock()
	active := !ss.closed && !ss.finalized
	queueDepth := ss.pending
	ss.mu.Unlock()
	info := SessionInfo{
		QueueDepth: queueDepth,
		Session:    ss.id,
		Device:     ss.device,
		Workload:   ss.workload,
		Remote:     ss.remote,
		StartedAt:  ss.started.UTC().Format(time.RFC3339Nano),
		Active:     active,
		Samples:    ss.aSamples.Load(),
		Sanitized:  ss.aSanitized.Load(),
		Windows:    int(ss.aWindows.Load()),
		Reports:    int(ss.aReports.Load()),
		LastWindow: int(ss.lastWindow.Load()),
	}
	if bits := ss.lastTime.Load(); bits != 0 {
		info.LastTime = math.Float64frombits(bits)
	}
	if ns := ss.lastActive.Load(); ns != 0 {
		info.LastActivity = time.Unix(0, ns).UTC().Format(time.RFC3339Nano)
	}
	if e := ss.errMsg.Load(); e != nil {
		info.Error = *e
	}
	return info
}

// shardLabel names the session's shard for journal provenance ("" when
// unassigned).
func (ss *session) shardLabel() string {
	ss.mu.Lock()
	sh := ss.sh
	ss.mu.Unlock()
	if sh == nil {
		return ""
	}
	return sh.label
}

// run is the reader lifecycle: handshake, then decode + enqueue until
// the stream ends. The session's final frame and teardown happen on the
// shard processor, which drains whatever the reader queued first.
func (ss *session) run() {
	if !ss.handshake() {
		ss.finalize(false)
		return
	}
	ss.s.cOpened.Inc()
	ss.s.logf("fleet: session %d: device %s monitoring %s from %s",
		ss.id, ss.device, ss.workload, ss.remote)
	ss.s.cfg.Journal.Event("connect", ss.device, ss.id, ss.shardLabel(), ss.remote)
	ss.read()

	ss.mu.Lock()
	ss.readerDone = true
	enq := !ss.queued
	if enq {
		ss.queued = true
	}
	sh := ss.sh
	ss.mu.Unlock()
	if enq {
		sh.enqueue(ss)
	}
}

// handshake reads and validates the hello, builds the detector, and
// assigns the session to its shard. Failures answer with a FrameError.
func (ss *session) handshake() bool {
	ss.conn.SetReadDeadline(time.Now().Add(ss.s.cfg.IdleTimeout))
	typ, payload, err := readFrame(ss.br, ss.s.cfg.MaxFrameBytes)
	if err != nil {
		ss.abort(fmt.Sprintf("reading hello: %v", err))
		return false
	}
	if typ == FrameLoadQuery || typ == FrameFleetQuery {
		ss.control.Store(true)
		ss.serveControl(typ, payload)
		return false
	}
	if typ != FrameHello {
		ss.abort(fmt.Sprintf("expected hello frame, got 0x%02x", typ))
		return false
	}
	var hello Hello
	if err := json.Unmarshal(payload, &hello); err != nil {
		ss.abort(fmt.Sprintf("bad hello: %v", err))
		return false
	}
	if !validName(hello.Device) {
		ss.abort("invalid device name (want 1-64 chars of [A-Za-z0-9._-])")
		return false
	}
	if !validName(hello.Workload) {
		ss.abort("invalid workload name (want 1-64 chars of [A-Za-z0-9._-])")
		return false
	}
	// The device cap is enforced here, not at accept: the accept path
	// over-admits by a small headroom so control probes get through at
	// a full backend, and only sessions presenting a real hello claim a
	// MaxSessions slot.
	if !ss.s.claimDeviceSlot() {
		ss.s.cRefused.Inc()
		ss.abort(fmt.Sprintf("at capacity (%d sessions)", ss.s.cfg.MaxSessions))
		return false
	}
	ss.slot.Store(true)
	model, err := ss.s.cfg.Models.Load(hello.Workload)
	if err != nil {
		ss.abort(fmt.Sprintf("loading model: %v", err))
		return false
	}
	// Sessions monitoring the same workload share one interned model
	// (reference distributions are immutable), not one copy each.
	ss.arena = ss.s.arenas.acquire(hello.Workload, model, ss.s.reg)
	model = ss.arena.model

	cfg := ss.s.cfg.Stream
	// Per-session hooks from the template would be shared mutable state
	// across devices; drop them. Each session gets its own flight
	// recorder, and the shared registry aggregates fleet-wide detector
	// metrics (its instruments are concurrency-safe).
	cfg.Tap = nil
	cfg.GroundTruth = nil
	cfg.Impair = nil
	cfg.Metrics = metrics.NewDetectorWith(ss.s.reg)
	cfg.Monitor.Stats = nil
	cfg.Monitor.Flight = nil
	cfg.MaxHistoryWindows = ss.s.cfg.MaxHistoryWindows
	if hello.DisableDCBlock {
		cfg.DisableDCBlock = true
	}
	if ss.s.cfg.FlightDepth >= 0 {
		ss.flight = obs.NewFlightRecorder(ss.s.cfg.FlightDepth)
		cfg.Flight = ss.flight
	} else {
		cfg.Flight = nil
	}
	det, err := stream.NewDetector(model, cfg)
	if err != nil {
		ss.abort(fmt.Sprintf("creating detector: %v", err))
		return false
	}
	ss.det = det
	ss.device = hello.Device
	ss.workload = hello.Workload
	// Every alarm this session's recorder takes is published the moment
	// it fires: journaled durably and fanned out to SSE subscribers.
	ss.flight.SetOnAlarm(ss.publishAlarm)
	ss.dSamples = ss.s.reg.Counter("fleet_device_samples/" + ss.device)
	ss.dWindows = ss.s.reg.Counter("fleet_device_windows/" + ss.device)
	ss.dReports = ss.s.reg.Counter("fleet_device_reports/" + ss.device)
	ss.dSanitized = ss.s.reg.Counter("fleet_device_sanitized/" + ss.device)
	if det.Monitor().AdaptEnabled() {
		// Bound once: the method value would otherwise allocate a closure
		// on every shard turn that admits updates.
		ss.adaptDriftFn = ss.recordRegionDrift
		ss.nextAdaptJournal = 1
	}

	sh, private := ss.s.shardFor(ss.device)
	ss.mu.Lock()
	ss.sh = sh
	ss.privateShard = private
	ss.mu.Unlock()

	welcome := Welcome{
		Session:    ss.id,
		Device:     ss.device,
		Workload:   ss.workload,
		WindowSize: cfg.STFT.WindowSize,
		HopSize:    cfg.STFT.HopSize,
		SampleRate: cfg.STFT.SampleRate,
		Regions:    len(model.Regions),
	}
	if err := ss.writeFrame(FrameWelcome, mustJSON(welcome)); err != nil {
		ss.fail(fmt.Sprintf("writing welcome: %v", err))
		return false
	}
	return true
}

// serveControl answers coordinator control queries on this connection
// until it closes, goes idle, or the server drains: FrameLoadQuery ->
// FrameLoadReport, FrameFleetQuery -> FrameFleetPage. A control
// connection occupies a session slot (the admission bound covers it)
// but opens no detector and stays out of the listing and journal.
func (ss *session) serveControl(typ byte, payload []byte) {
	for {
		switch typ {
		case FrameLoadQuery:
			if err := ss.writeFrame(FrameLoadReport, mustJSON(ss.s.loadReport())); err != nil {
				return
			}
		case FrameFleetQuery:
			var q FleetQuery
			if err := json.Unmarshal(payload, &q); err != nil {
				ss.writeFrame(FrameError, mustJSON(ErrorInfo{Error: "fleet: bad fleet query: " + err.Error()}))
				return
			}
			page, total, active := ss.s.SessionsPage(q.Offset, q.Limit)
			if page == nil {
				page = []SessionInfo{} // "sessions":[] rather than null
			}
			if err := ss.writeFrame(FrameFleetPage, mustJSON(FleetPage{Sessions: page, Total: total, Active: active})); err != nil {
				return
			}
		default:
			ss.writeFrame(FrameError, mustJSON(ErrorInfo{
				Error: fmt.Sprintf("fleet: unexpected control frame 0x%02x", typ)}))
			return
		}
		if !ss.armReadDeadline() {
			return
		}
		var err error
		typ, payload, ss.readBuf, err = readFrameInto(ss.br, ss.s.cfg.MaxFrameBytes, ss.readBuf)
		if err != nil {
			return
		}
	}
}

// abort answers a handshake failure with a FrameError.
func (ss *session) abort(msg string) {
	ss.fail(msg)
	ss.writeFrame(FrameError, mustJSON(ErrorInfo{Error: "fleet: " + msg}))
}

// armReadDeadline sets the idle read deadline for the next frame, or
// reports false when the session stopped. Sharing ss.mu with drain()
// means a drain can never be overwritten by a stale long deadline.
func (ss *session) armReadDeadline() bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.stopRead || ss.closed {
		return false
	}
	ss.conn.SetReadDeadline(time.Now().Add(ss.s.cfg.IdleTimeout))
	return true
}

// read is the session's socket reader: it decodes frames into pooled
// buffers and enqueues them under the backpressure cap until the device
// says bye, errs, goes idle, or the server drains.
func (ss *session) read() {
	for {
		if !ss.armReadDeadline() {
			ss.finishRead("", false)
			return
		}
		typ, payload, scratch, err := readFrameInto(ss.br, ss.s.cfg.MaxFrameBytes, ss.readBuf)
		ss.readBuf = scratch
		if err != nil {
			if ss.drainRequested() {
				ss.finishRead("server draining", false)
				return
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				ss.finishRead(fmt.Sprintf("idle for %v", ss.s.cfg.IdleTimeout), false)
				return
			}
			ss.finishRead(fmt.Sprintf("read: %v", err), false)
			return
		}
		switch typ {
		case FrameSamples:
			samples, err := DecodeSamples(payload, ss.getBuf(len(payload)/8))
			if err != nil {
				ss.finishRead(err.Error(), false)
				return
			}
			if !ss.enqueue(samples) {
				ss.finishRead("", false) // closed or draining underneath us
				return
			}
		case FrameBye:
			ss.finishRead("", true)
			return
		default:
			ss.finishRead(fmt.Sprintf("unexpected frame 0x%02x", typ), false)
			return
		}
	}
}

// getBuf takes a decode buffer from the session pool.
func (ss *session) getBuf(n int) []float64 {
	ss.mu.Lock()
	b := ss.pool.get(n)
	ss.mu.Unlock()
	return b
}

// finishRead ends the reader: records a clean bye or the terminal
// error. The caller (run) then hands the session to its shard.
func (ss *session) finishRead(errMsg string, bye bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if bye {
		ss.sawBye = true
	}
	if errMsg != "" && ss.finalMsg == "" {
		ss.finalMsg = errMsg
	}
	ss.stopRead = true
}

// drainRequested reports whether the server asked this session to
// drain.
func (ss *session) drainRequested() bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.stopRead
}

// enqueue adds a decoded chunk to the inbox and marks the session
// ready on its shard, blocking while the pending-sample cap is exceeded
// (the backpressure stall). Returns false when the session stopped
// while waiting.
func (ss *session) enqueue(samples []float64) bool {
	now := time.Now()
	ss.lastActive.Store(now.UnixNano())
	ss.mu.Lock()
	stalled := false
	for ss.pending > 0 && ss.pending+len(samples) > ss.s.cfg.MaxPendingSamples &&
		!ss.closed && !ss.stopRead {
		if !stalled {
			stalled = true
			ss.s.cBackpress.Inc()
			if j := ss.s.cfg.Journal; j != nil {
				label := ""
				if ss.sh != nil {
					label = ss.sh.label
				}
				j.Event("backpressure", ss.device, ss.id, label, "pending cap reached")
			}
		}
		ss.cond.Wait()
	}
	if ss.closed || ss.stopRead {
		ss.mu.Unlock()
		return false
	}
	if ss.pending == 0 {
		ss.firstPending = now
	}
	ss.inbox.push(samples)
	ss.pending += len(samples)
	enq := !ss.queued
	if enq {
		ss.queued = true
	}
	sh := ss.sh
	ss.mu.Unlock()
	if enq {
		sh.enqueue(ss)
	}
	return true
}

// processTurn is one scheduling turn on the session's shard: drain the
// whole inbox, feed it to the detector as one batch, stream the
// resulting reports, then either requeue (more frames arrived while
// feeding), finalize (stream ended), or go idle. Returns whether the
// shard should requeue the session.
func (ss *session) processTurn() (requeue bool) {
	ss.mu.Lock()
	if ss.finalized {
		ss.mu.Unlock()
		return false
	}
	if ss.closed {
		ss.mu.Unlock()
		ss.finalize(false)
		return false
	}
	ss.batch = ss.inbox.drainTo(ss.batch[:0])
	ss.pending = 0
	t0 := ss.firstPending
	ss.firstPending = time.Time{}
	sh := ss.sh
	ss.cond.Broadcast() // release a reader stalled on the pending cap
	ss.mu.Unlock()

	if len(ss.batch) > 0 {
		if !ss.feedBatch() {
			return false // report write failed; session finalized
		}
		// Frame-to-verdict: oldest frame of the batch enqueued → its
		// verdict rendered (the detector has decided on every window the
		// batch completed). Atomic histogram + SLO record, no allocation
		// — this runs on every steady-state turn.
		if !t0.IsZero() {
			lat := time.Since(t0)
			if sh != nil {
				sh.hVerdict.Record(int64(lat))
			}
			ss.s.cfg.SLO.Record(lat)
		}
	}

	ss.mu.Lock()
	switch {
	case ss.closed:
		ss.mu.Unlock()
		ss.finalize(false)
		return false
	case ss.inbox.len() > 0:
		ss.mu.Unlock()
		return true // keep queued=true; shard requeues at the tail
	case ss.readerDone:
		ss.mu.Unlock()
		ss.finalize(true)
		return false
	default:
		ss.queued = false
		ss.mu.Unlock()
		return false
	}
}

// feedBatch runs the drained batch through the detector, updates the
// progress counters, recycles the sample buffers, and streams the
// reports. Returns false when a report write failed (the session is
// finalized).
func (ss *session) feedBatch() bool {
	var total int64
	for _, c := range ss.batch {
		total += int64(len(c))
	}
	reports := ss.det.FeedChunks(ss.batch)

	// Device counters may be shared by several sessions of the same
	// device name, so deltas come from session-local progress, never
	// from reading the shared counter back.
	ss.aSamples.Add(total)
	ss.aSanitized.Store(ss.det.Sanitized())
	ss.aWindows.Store(int64(ss.det.Windows()))
	ss.dSamples.Add(total)
	ss.dWindows.Add(int64(ss.det.Windows() - ss.prevWindows))
	ss.dSanitized.Add(ss.det.Sanitized() - ss.prevSanitized)
	ss.prevWindows, ss.prevSanitized = ss.det.Windows(), ss.det.Sanitized()
	if ss.adaptDriftFn != nil {
		ss.publishAdapt()
	}

	// The detector copies samples into its own ring, so the batch
	// buffers recycle before the (comparatively slow) report writes.
	ss.mu.Lock()
	for i := range ss.batch {
		ss.pool.put(ss.batch[i])
		ss.batch[i] = nil
	}
	ss.mu.Unlock()
	ss.batch = ss.batch[:0]

	for i := range reports {
		r := &reports[i]
		ss.aReports.Add(1)
		ss.dReports.Inc()
		ss.s.cReports.Inc()
		ss.lastWindow.Store(int64(r.Window))
		ss.lastTime.Store(math.Float64bits(r.TimeSec))
		if ss.flight == nil {
			// No flight recorder (FlightDepth < 0), so the SetOnAlarm hook
			// never fires: journal and stream a dump-less alarm event here
			// so the alarm record stays complete either way.
			ss.publishAlarmEvent(&obs.JournalEvent{
				Type:   "alarm",
				Detail: fmt.Sprintf("window %d region %d t=%.3fs", r.Window, int(r.Region), r.TimeSec),
			})
		}
		ev := Report{
			Device:  ss.device,
			Session: ss.id,
			Window:  r.Window,
			TimeSec: r.TimeSec,
			Region:  int(r.Region),
		}
		if err := ss.writeFrame(FrameReport, mustJSON(ev)); err != nil {
			ss.fail(fmt.Sprintf("writing report: %v", err))
			ss.finalize(false)
			return false
		}
	}
	return true
}

// adaptJournalEvery is how many admitted reference updates pass between
// journaled adaptation events: the first update a session ever admits is
// journaled immediately (the reference started moving — that is the
// forensically interesting moment), then one event per this many updates
// keeps a durable trail of the accumulated drift without writing the
// journal on every scheduling turn.
const adaptJournalEvery = 256

// publishAdapt runs on the session's shard turn after a batch was fed:
// it forwards newly admitted adaptation updates to the fleet counter,
// refreshes the per-region drift gauges, and journals the adaptation
// trail at adaptJournalEvery granularity.
func (ss *session) publishAdapt() {
	mon := ss.det.Monitor()
	u := mon.AdaptUpdates()
	if u == ss.prevAdaptUpdates {
		return
	}
	ss.s.cAdapt.Add(u - ss.prevAdaptUpdates)
	ss.prevAdaptUpdates = u
	mon.AdaptRegionDrift(ss.adaptDriftFn)
	if u >= ss.nextAdaptJournal {
		ss.nextAdaptJournal = u + adaptJournalEvery
		ss.publishAlarmEvent(&obs.JournalEvent{
			Type:   "adapt",
			Detail: fmt.Sprintf("updates=%d drift=%.3f", u, mon.AdaptDrift()),
		})
	}
}

// recordRegionDrift publishes one region's cumulative adaptation drift,
// resolving and caching the gauge on first use. Fleet-wide the gauge
// holds the most recently reported session's value — a troubleshooting
// signal, not an aggregate.
func (ss *session) recordRegionDrift(id cfg.RegionID, drift float64) {
	if ss.adaptGauges == nil {
		ss.adaptGauges = map[cfg.RegionID]*metrics.FloatGauge{}
	}
	g := ss.adaptGauges[id]
	if g == nil {
		g = ss.s.reg.FloatGauge(fmt.Sprintf("region_adapt_drift/R%d", id))
		ss.adaptGauges[id] = g
	}
	g.Set(drift)
}

// publishAlarm is the flight recorder's SetOnAlarm hook: the dump is
// journaled durably and fanned out to SSE subscribers as one
// JSON-encoded JournalEvent. It runs on the session's shard processor,
// right after the monitor fired the report — the alarm is on disk
// before the report frame reaches the device.
func (ss *session) publishAlarm(d *obs.AlarmDump) {
	ss.publishAlarmEvent(&obs.JournalEvent{Type: "alarm", Alarm: d})
}

// publishAlarmEvent stamps the session's provenance onto ev, appends it
// to the journal (which assigns the sequence number) and publishes the
// same encoded event to the live alarm stream.
func (ss *session) publishAlarmEvent(ev *obs.JournalEvent) {
	ev.Device = ss.device
	ev.Session = ss.id
	ev.Shard = ss.shardLabel()
	ss.s.cfg.Journal.AppendEvent(ev) // stamps Seq and TimeUnixNano
	if ss.s.cfg.Alarms == nil {
		return
	}
	if ev.TimeUnixNano == 0 { // no journal attached; stamp for the stream
		ev.TimeUnixNano = time.Now().UnixNano()
	}
	if b, err := json.Marshal(ev); err == nil {
		ss.s.cfg.Alarms.Publish(b)
	}
}

// finalize reaches the session's terminal state exactly once: send the
// final frame (summary after a clean bye, error otherwise) unless the
// session was force-closed, tear down the connection, stop a private
// shard, and unregister from the server.
func (ss *session) finalize(sendFinal bool) {
	ss.mu.Lock()
	if ss.finalized {
		ss.mu.Unlock()
		return
	}
	ss.finalized = true
	wasClosed := ss.closed
	sawBye := ss.sawBye
	finalMsg := ss.finalMsg
	sh, private := ss.sh, ss.privateShard
	ss.closed = true
	ss.stopRead = true
	ss.cond.Broadcast()
	ss.mu.Unlock()

	if sendFinal && !wasClosed {
		switch {
		case sawBye:
			sum := Summary{
				Session:   ss.id,
				Samples:   ss.aSamples.Load(),
				Sanitized: ss.det.Sanitized(),
				Windows:   ss.det.Windows(),
				Reports:   int(ss.aReports.Load()),
			}
			if err := ss.writeFrame(FrameSummary, mustJSON(sum)); err != nil {
				ss.fail(fmt.Sprintf("writing summary: %v", err))
			}
		default:
			if finalMsg == "" {
				finalMsg = "session closed"
			}
			ss.fail(finalMsg)
			ss.writeFrame(FrameError, mustJSON(ErrorInfo{Error: "fleet: " + finalMsg}))
		}
	}
	if ss.conn != nil {
		ss.conn.Close()
	}
	if sh != nil && private {
		sh.stop()
	}
	ss.s.finish(ss)
}

// writeFrame writes one outbound frame under the write deadline.
// Detached sessions (tests and benchmarks drive the processor without a
// socket) drop outbound frames.
func (ss *session) writeFrame(typ byte, payload []byte) error {
	if ss.conn == nil {
		return nil
	}
	ss.conn.SetWriteDeadline(time.Now().Add(ss.s.cfg.WriteTimeout))
	return writeFrame(ss.conn, typ, payload)
}

// drain asks the session to stop reading new frames; the shard
// processor finishes the queued work and closes. Called by
// Server.Shutdown.
func (ss *session) drain() {
	ss.mu.Lock()
	if ss.finalMsg == "" {
		ss.finalMsg = "server draining"
	}
	ss.stopRead = true
	ss.cond.Broadcast()
	ss.mu.Unlock()
	ss.s.cfg.Journal.Event("drain", ss.device, ss.id, ss.shardLabel(), "")
	// Wake a reader blocked in a frame read.
	ss.conn.SetReadDeadline(time.Now())
}

// close force-stops the session: the processor finalizes without
// draining and the connection is torn down. Called by Server.Close.
func (ss *session) close() {
	ss.mu.Lock()
	if ss.finalized {
		ss.mu.Unlock()
		return
	}
	ss.closed = true
	ss.stopRead = true
	enq := ss.sh != nil && !ss.queued
	if enq {
		ss.queued = true
	}
	sh := ss.sh
	ss.cond.Broadcast()
	ss.mu.Unlock()
	ss.conn.Close()
	if enq {
		sh.enqueue(ss) // prompt finalize on the shard
	}
}

// mustJSON marshals a protocol payload; the payload types marshal
// without error by construction.
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("fleet: encoding %T: %v", v, err))
	}
	return b
}
