package fleet

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"eddie/internal/metrics"
	"eddie/internal/obs"
	"eddie/internal/stream"
)

// item is one unit of session work, kept in arrival order: a decoded
// sample chunk, or the end-of-stream marker from a FrameBye.
type item struct {
	samples []float64
	bye     bool
}

// session is one connected device: a reader goroutine that decodes
// frames into a bounded FIFO, and a processor goroutine that feeds the
// detector and streams reports back. The bound is the backpressure
// mechanism: when pending samples exceed the cap the reader stops
// draining the socket, and TCP flow control pushes back on the device.
type session struct {
	s    *Server
	id   int64
	conn net.Conn

	// Set during the handshake, read-only afterwards.
	device   string
	workload string
	det      *stream.Detector
	flight   *obs.FlightRecorder
	started  time.Time

	// Per-device counters in the server registry.
	dSamples, dWindows, dReports, dSanitized *metrics.Counter

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []item
	pending  int    // samples sitting in queue
	stopRead bool   // reader finished; processor drains then finishes
	closed   bool   // hard stop: processor exits without draining
	finalMsg string // error sent to the client at session end ("" = clean)

	// Progress counters, atomically readable by Sessions listings while
	// the processor runs.
	aSamples   atomic.Int64
	aSanitized atomic.Int64
	aWindows   atomic.Int64
	aReports   atomic.Int64
	lastWindow atomic.Int64
	lastTime   atomic.Uint64 // float64 bits
	errMsg     atomic.Pointer[string]
}

func newSession(s *Server, id int64, conn net.Conn) *session {
	ss := &session{s: s, id: id, conn: conn, started: time.Now()}
	ss.cond = sync.NewCond(&ss.mu)
	ss.lastWindow.Store(-1)
	return ss
}

// fail records the session's terminal error (first one wins).
func (ss *session) fail(msg string) {
	ss.errMsg.CompareAndSwap(nil, &msg)
}

// info snapshots the session for listings.
func (ss *session) info() SessionInfo {
	ss.mu.Lock()
	active := !ss.closed
	ss.mu.Unlock()
	info := SessionInfo{
		Session:    ss.id,
		Device:     ss.device,
		Workload:   ss.workload,
		Remote:     ss.conn.RemoteAddr().String(),
		StartedAt:  ss.started.UTC().Format(time.RFC3339),
		Active:     active,
		Samples:    ss.aSamples.Load(),
		Sanitized:  ss.aSanitized.Load(),
		Windows:    int(ss.aWindows.Load()),
		Reports:    int(ss.aReports.Load()),
		LastWindow: int(ss.lastWindow.Load()),
	}
	if bits := ss.lastTime.Load(); bits != 0 {
		info.LastTime = math.Float64frombits(bits)
	}
	if e := ss.errMsg.Load(); e != nil {
		info.Error = *e
	}
	return info
}

// run is the session lifecycle: handshake, then reader + processor
// until the stream ends. It returns once the connection is closed.
func (ss *session) run() {
	defer ss.conn.Close()
	if !ss.handshake() {
		return
	}
	ss.s.cOpened.Inc()
	ss.s.logf("fleet: session %d: device %s monitoring %s from %s",
		ss.id, ss.device, ss.workload, ss.conn.RemoteAddr())

	done := make(chan struct{})
	go func() {
		defer close(done)
		ss.process()
	}()
	ss.read()
	<-done
}

// handshake reads and validates the hello and builds the detector.
// Failures answer with a FrameError and close the session.
func (ss *session) handshake() bool {
	ss.conn.SetReadDeadline(time.Now().Add(ss.s.cfg.IdleTimeout))
	typ, payload, err := readFrame(ss.conn, ss.s.cfg.MaxFrameBytes)
	if err != nil {
		ss.abort(fmt.Sprintf("reading hello: %v", err))
		return false
	}
	if typ != FrameHello {
		ss.abort(fmt.Sprintf("expected hello frame, got 0x%02x", typ))
		return false
	}
	var hello Hello
	if err := json.Unmarshal(payload, &hello); err != nil {
		ss.abort(fmt.Sprintf("bad hello: %v", err))
		return false
	}
	if !validName(hello.Device) {
		ss.abort("invalid device name (want 1-64 chars of [A-Za-z0-9._-])")
		return false
	}
	if !validName(hello.Workload) {
		ss.abort("invalid workload name (want 1-64 chars of [A-Za-z0-9._-])")
		return false
	}
	model, err := ss.s.cfg.Models.Load(hello.Workload)
	if err != nil {
		ss.abort(fmt.Sprintf("loading model: %v", err))
		return false
	}

	cfg := ss.s.cfg.Stream
	// Per-session hooks from the template would be shared mutable state
	// across devices; drop them. Each session gets its own flight
	// recorder, and the shared registry aggregates fleet-wide detector
	// metrics (its instruments are concurrency-safe).
	cfg.Tap = nil
	cfg.GroundTruth = nil
	cfg.Impair = nil
	cfg.Metrics = metrics.NewDetectorWith(ss.s.reg)
	cfg.Monitor.Stats = nil
	cfg.Monitor.Flight = nil
	cfg.MaxHistoryWindows = ss.s.cfg.MaxHistoryWindows
	if hello.DisableDCBlock {
		cfg.DisableDCBlock = true
	}
	if ss.s.cfg.FlightDepth >= 0 {
		ss.flight = obs.NewFlightRecorder(ss.s.cfg.FlightDepth)
		cfg.Flight = ss.flight
	} else {
		cfg.Flight = nil
	}
	det, err := stream.NewDetector(model, cfg)
	if err != nil {
		ss.abort(fmt.Sprintf("creating detector: %v", err))
		return false
	}
	ss.det = det
	ss.device = hello.Device
	ss.workload = hello.Workload
	ss.dSamples = ss.s.reg.Counter("fleet_device_samples/" + ss.device)
	ss.dWindows = ss.s.reg.Counter("fleet_device_windows/" + ss.device)
	ss.dReports = ss.s.reg.Counter("fleet_device_reports/" + ss.device)
	ss.dSanitized = ss.s.reg.Counter("fleet_device_sanitized/" + ss.device)

	welcome := Welcome{
		Session:    ss.id,
		Device:     ss.device,
		Workload:   ss.workload,
		WindowSize: cfg.STFT.WindowSize,
		HopSize:    cfg.STFT.HopSize,
		SampleRate: cfg.STFT.SampleRate,
		Regions:    len(model.Regions),
	}
	if err := ss.writeFrame(FrameWelcome, mustJSON(welcome)); err != nil {
		ss.fail(fmt.Sprintf("writing welcome: %v", err))
		return false
	}
	return true
}

// abort answers a handshake failure with a FrameError.
func (ss *session) abort(msg string) {
	ss.fail(msg)
	ss.writeFrame(FrameError, mustJSON(ErrorInfo{Error: "fleet: " + msg}))
}

// armReadDeadline sets the idle read deadline for the next frame, or
// reports false when the session stopped. Sharing ss.mu with drain()
// means a drain can never be overwritten by a stale long deadline.
func (ss *session) armReadDeadline() bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.stopRead || ss.closed {
		return false
	}
	ss.conn.SetReadDeadline(time.Now().Add(ss.s.cfg.IdleTimeout))
	return true
}

// read is the session's socket reader: it decodes frames and enqueues
// sample chunks under the backpressure cap until the device says bye,
// errs, goes idle, or the server drains.
func (ss *session) read() {
	for {
		if !ss.armReadDeadline() {
			ss.finishRead("", false)
			return
		}
		typ, payload, err := readFrame(ss.conn, ss.s.cfg.MaxFrameBytes)
		if err != nil {
			if ss.drainRequested() {
				ss.finishRead("server draining", false)
				return
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				ss.finishRead(fmt.Sprintf("idle for %v", ss.s.cfg.IdleTimeout), false)
				return
			}
			ss.finishRead(fmt.Sprintf("read: %v", err), false)
			return
		}
		switch typ {
		case FrameSamples:
			samples, err := DecodeSamples(payload, nil)
			if err != nil {
				ss.finishRead(err.Error(), false)
				return
			}
			if !ss.enqueue(item{samples: samples}) {
				ss.finishRead("", false) // closed or draining underneath us
				return
			}
		case FrameBye:
			ss.finishRead("", true)
			return
		default:
			ss.finishRead(fmt.Sprintf("unexpected frame 0x%02x", typ), false)
			return
		}
	}
}

// finishRead ends the reader: optionally queues the bye marker, records
// the terminal error, and wakes the processor.
func (ss *session) finishRead(errMsg string, bye bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if bye {
		ss.queue = append(ss.queue, item{bye: true})
	}
	if errMsg != "" && ss.finalMsg == "" {
		ss.finalMsg = errMsg
	}
	ss.stopRead = true
	ss.cond.Broadcast()
}

// drainRequested reports whether the server asked this session to
// drain.
func (ss *session) drainRequested() bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.stopRead
}

// enqueue adds a decoded chunk, blocking while the pending-sample cap
// is exceeded (the backpressure stall). Returns false when the session
// stopped while waiting.
func (ss *session) enqueue(it item) bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	stalled := false
	for ss.pending > 0 && ss.pending+len(it.samples) > ss.s.cfg.MaxPendingSamples &&
		!ss.closed && !ss.stopRead {
		if !stalled {
			stalled = true
			ss.s.cBackpress.Inc()
		}
		ss.cond.Wait()
	}
	if ss.closed || ss.stopRead {
		return false
	}
	ss.queue = append(ss.queue, it)
	ss.pending += len(it.samples)
	ss.cond.Broadcast()
	return true
}

// dequeue pops the next item in arrival order. ok is false once the
// stream ended and the queue is empty (or the session was force-
// closed).
func (ss *session) dequeue() (item, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	for len(ss.queue) == 0 && !ss.stopRead && !ss.closed {
		ss.cond.Wait()
	}
	if ss.closed || len(ss.queue) == 0 {
		return item{}, false
	}
	it := ss.queue[0]
	ss.queue = ss.queue[1:]
	ss.pending -= len(it.samples)
	ss.cond.Broadcast()
	return it, true
}

// process feeds dequeued chunks to the detector in arrival order and
// streams back every report, then sends the session's final frame
// (summary after a bye, error otherwise).
func (ss *session) process() {
	sawBye := false
	// Device counters may be shared by several sessions of the same
	// device name, so deltas come from session-local progress, never
	// from reading the shared counter back.
	prevWindows, prevSanitized := 0, int64(0)
	for {
		it, ok := ss.dequeue()
		if !ok {
			break
		}
		if it.bye {
			sawBye = true
			break
		}
		reports := ss.det.Feed(it.samples)
		ss.aSamples.Add(int64(len(it.samples)))
		ss.aSanitized.Store(ss.det.Sanitized())
		ss.aWindows.Store(int64(ss.det.Windows()))
		ss.dSamples.Add(int64(len(it.samples)))
		ss.dWindows.Add(int64(ss.det.Windows() - prevWindows))
		ss.dSanitized.Add(ss.det.Sanitized() - prevSanitized)
		prevWindows, prevSanitized = ss.det.Windows(), ss.det.Sanitized()
		for i := range reports {
			r := &reports[i]
			ss.aReports.Add(1)
			ss.dReports.Inc()
			ss.s.cReports.Inc()
			ss.lastWindow.Store(int64(r.Window))
			ss.lastTime.Store(math.Float64bits(r.TimeSec))
			ev := Report{
				Device:  ss.device,
				Session: ss.id,
				Window:  r.Window,
				TimeSec: r.TimeSec,
				Region:  int(r.Region),
			}
			if err := ss.writeFrame(FrameReport, mustJSON(ev)); err != nil {
				ss.fail(fmt.Sprintf("writing report: %v", err))
				ss.close()
				return
			}
		}
	}

	ss.mu.Lock()
	finalMsg := ss.finalMsg
	closed := ss.closed
	ss.mu.Unlock()
	if closed {
		return
	}
	switch {
	case sawBye:
		sum := Summary{
			Session:   ss.id,
			Samples:   ss.aSamples.Load(),
			Sanitized: ss.det.Sanitized(),
			Windows:   ss.det.Windows(),
			Reports:   int(ss.aReports.Load()),
		}
		if err := ss.writeFrame(FrameSummary, mustJSON(sum)); err != nil {
			ss.fail(fmt.Sprintf("writing summary: %v", err))
		}
	default:
		if finalMsg == "" {
			finalMsg = "session closed"
		}
		ss.fail(finalMsg)
		ss.writeFrame(FrameError, mustJSON(ErrorInfo{Error: "fleet: " + finalMsg}))
	}
}

// writeFrame writes one outbound frame under the write deadline.
func (ss *session) writeFrame(typ byte, payload []byte) error {
	ss.conn.SetWriteDeadline(time.Now().Add(ss.s.cfg.WriteTimeout))
	return writeFrame(ss.conn, typ, payload)
}

// drain asks the session to stop reading new frames, finish the queued
// work, and close. Called by Server.Shutdown.
func (ss *session) drain() {
	ss.mu.Lock()
	if ss.finalMsg == "" {
		ss.finalMsg = "server draining"
	}
	ss.stopRead = true
	ss.cond.Broadcast()
	ss.mu.Unlock()
	// Wake a reader blocked in a frame read.
	ss.conn.SetReadDeadline(time.Now())
}

// close force-stops the session: the processor exits without draining
// and the connection is torn down. Called by Server.Close.
func (ss *session) close() {
	ss.mu.Lock()
	ss.closed = true
	ss.stopRead = true
	ss.cond.Broadcast()
	ss.mu.Unlock()
	ss.conn.Close()
}

// mustJSON marshals a protocol payload; the payload types marshal
// without error by construction.
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("fleet: encoding %T: %v", v, err))
	}
	return b
}
