package fleet

import (
	"os"
	"strconv"
	"strings"
)

const (
	// perSessionBytes is the planning estimate of one idle session's
	// steady-state footprint: detector scratch (~5 windows of float64),
	// monitor ring and history, recycled sample buffers, socket buffers
	// and goroutine stack. Measured ~100-200 KiB for the default 512-pt
	// STFT; 256 KiB keeps headroom for larger windows.
	perSessionBytes = 256 << 10
	// minDefaultSessions / maxDefaultSessions clamp the derived bound.
	minDefaultSessions = 64
	maxDefaultSessions = 1 << 18
	// fallbackMemBytes stands in when physical memory is unreadable.
	fallbackMemBytes = int64(8) << 30
)

// defaultMaxSessions derives the session bound from physical memory
// instead of CPU count: sessions are mostly idle (readers parked in
// epoll, work multiplexed over a few shard processors), so memory, not
// cores, is what actually limits density. A quarter of RAM at the
// per-session estimate — 128 GiB hosts ~131k sessions.
func defaultMaxSessions() int {
	mem := memTotalBytes()
	if mem <= 0 {
		mem = fallbackMemBytes
	}
	n := int(mem / 4 / perSessionBytes)
	if n < minDefaultSessions {
		return minDefaultSessions
	}
	if n > maxDefaultSessions {
		return maxDefaultSessions
	}
	return n
}

// DefaultMaxSessions is the memory-derived session bound a zero
// Config.MaxSessions resolves to, exported so tooling (flag help, the
// fleet-load benchmark) can report the node's deployable density.
func DefaultMaxSessions() int { return defaultMaxSessions() }

// memTotalBytes returns physical memory from /proc/meminfo, or 0 when
// unavailable (non-Linux, restricted container).
func memTotalBytes() int64 {
	data, err := os.ReadFile("/proc/meminfo")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "MemTotal:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
