package fleet

import (
	"sync"

	"eddie/internal/core"
	"eddie/internal/metrics"
)

// modelArena is the shared read-only state for one workload: the trained
// model (reference distributions, region machine, cached region-id
// listing) interned once and handed to every live session monitoring
// that workload. Model sources that build a fresh *core.Model per Load
// would otherwise give N same-firmware sessions N copies of identical
// reference data; the arena pins the first loaded instance while any
// session uses it. Models are immutable once trained, so sharing is
// free of synchronization on the hot path.
type modelArena struct {
	workload string
	model    *core.Model
	refs     int
	gauge    *metrics.Gauge
}

// arenaTable interns arenas by workload name. An arena is dropped when
// its last session ends, so a retrained model (e.g. DirModels after
// Forget) takes effect for future sessions once the old cohort cycles
// out.
type arenaTable struct {
	mu sync.Mutex
	m  map[string]*modelArena
}

// acquire returns the workload's arena, creating it around model on
// first use, and counts the caller as a live session.
func (t *arenaTable) acquire(workload string, model *core.Model, reg *metrics.Registry) *modelArena {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m == nil {
		t.m = map[string]*modelArena{}
	}
	a := t.m[workload]
	if a == nil {
		a = &modelArena{
			workload: workload,
			model:    model,
			gauge:    reg.Gauge("fleet_arena_sessions/" + workload),
		}
		// Prewarm derived state every session shares (the sorted
		// region-id listing used by global re-lock scans).
		model.RegionIDs()
		t.m[workload] = a
	}
	a.refs++
	a.gauge.Set(int64(a.refs))
	return a
}

// release drops one session's reference; the arena is evicted when the
// last reference goes.
func (t *arenaTable) release(a *modelArena) {
	if a == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	a.refs--
	a.gauge.Set(int64(a.refs))
	if a.refs <= 0 {
		delete(t.m, a.workload)
	}
}

// snapshot lists live-session counts per interned workload.
func (t *arenaTable) snapshot() map[string]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int, len(t.m))
	for w, a := range t.m {
		out[w] = a.refs
	}
	return out
}
