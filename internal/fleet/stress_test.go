package fleet

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"eddie/internal/dsp"
	"eddie/internal/pipeline"
	"eddie/internal/pipeline/pipetest"
)

// cleanSignal returns a detrended capture of the fixture workload with
// no injection (collected once per process).
var (
	cleanOnce    sync.Once
	cleanSamples []float64
	cleanErr     error
)

func cleanSignal(t *testing.T) []float64 {
	t.Helper()
	f := pipetest.Fixture(t)
	cleanOnce.Do(func() {
		run, err := pipeline.CollectRun(f.W, f.Machine, f.Config, 417, nil)
		if err != nil {
			cleanErr = err
			return
		}
		cleanSamples = dsp.Detrend(run.Signal)
	})
	if cleanErr != nil {
		t.Fatal(cleanErr)
	}
	return cleanSamples
}

// TestFleetStressShardedChurn is the sharded pool's concurrency proof,
// meant to run under -race: at least 64 concurrent sessions multiplexed
// onto a handful of shard processors, mixing clean and anomalous
// streams with sessions that disconnect abruptly mid-stream. A tiny
// pending cap keeps the backpressure path hot. Every session that
// finishes cleanly must receive exactly the reports its summary counts
// (no report loss), and the final drain must complete without deadlock.
func TestFleetStressShardedChurn(t *testing.T) {
	f, anomalous := fleetSignal(t)
	clean := cleanSignal(t)

	cfg := serverConfig(f)
	cfg.MaxSessions = 256
	cfg.Shards = 4
	cfg.MaxPendingSamples = 2048 // two chunks deep: stalls are routine
	s, addr := startServer(t, cfg)

	limit := func(sig []float64, n int) []float64 {
		if len(sig) > n {
			return sig[:n]
		}
		return sig
	}
	cleanPart := limit(clean, 40_000)
	anomPart := limit(anomalous, 40_000)

	const sessions = 64
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dev := fmt.Sprintf("stress-%03d", i)
			hello := Hello{Device: dev, Workload: "bitcount", DisableDCBlock: true}

			if i%4 == 3 {
				// Abrupt mid-stream disconnect: no Bye, no Finish. The
				// server must tear the session down without wedging its
				// shard.
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					errs <- fmt.Errorf("%s: dial: %w", dev, err)
					return
				}
				if err := writeFrame(conn, FrameHello, mustJSON(hello)); err != nil {
					conn.Close()
					errs <- fmt.Errorf("%s: hello: %w", dev, err)
					return
				}
				conn.SetReadDeadline(time.Now().Add(30 * time.Second))
				if typ, _, err := readFrame(conn, DefaultMaxFrameBytes); err != nil || typ != FrameWelcome {
					conn.Close()
					errs <- fmt.Errorf("%s: welcome 0x%02x, err %v", dev, typ, err)
					return
				}
				for k := 0; k < 4; k++ {
					chunk := anomPart[k*1024 : (k+1)*1024]
					if err := writeFrame(conn, FrameSamples, EncodeSamples(chunk)); err != nil {
						break // server may already have hung up; that's its call
					}
				}
				conn.Close()
				errs <- nil
				return
			}

			sig := cleanPart
			if i%2 == 1 {
				sig = anomPart
			}
			c, err := DialConfig(addr, hello, ClientConfig{
				DialTimeout: 30 * time.Second,
				IOTimeout:   60 * time.Second,
			})
			if err != nil {
				errs <- fmt.Errorf("%s: dial: %w", dev, err)
				return
			}
			defer c.Close()
			for off := 0; off < len(sig); {
				k := 1024
				if off+k > len(sig) {
					k = len(sig) - off
				}
				if err := c.Send(sig[off : off+k]); err != nil {
					errs <- fmt.Errorf("%s: send: %w", dev, err)
					return
				}
				off += k
			}
			sum, reports, err := c.Finish()
			if err != nil {
				errs <- fmt.Errorf("%s: finish: %w", dev, err)
				return
			}
			if sum.Samples != int64(len(sig)) {
				errs <- fmt.Errorf("%s: samples %d, want %d", dev, sum.Samples, len(sig))
				return
			}
			// No report loss: the summary's count and the reports that
			// actually arrived over the wire must agree exactly.
			if sum.Reports != len(reports) {
				errs <- fmt.Errorf("%s: summary reports %d, received %d", dev, sum.Reports, len(reports))
				return
			}
			errs <- nil
		}(i)
	}
	wg.Wait()
	for i := 0; i < sessions; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// Drain must complete promptly with all sessions gone — a stuck
	// shard or a leaked session would hang Shutdown.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown after churn: %v", err)
	}

	reg := s.Registry()
	if got := reg.Counter("fleet_sessions_opened").Value(); got != sessions {
		t.Errorf("fleet_sessions_opened %d, want %d", got, sessions)
	}
	if got := reg.Counter("fleet_sessions_closed").Value(); got != sessions {
		t.Errorf("fleet_sessions_closed %d, want %d", got, sessions)
	}
	// With a two-chunk pending cap and 4 shards timeslicing 64 readers,
	// enqueue stalls are all but guaranteed; a zero here means the
	// backpressure path silently stopped counting.
	if got := reg.Counter("fleet_backpressure_stalls").Value(); got == 0 {
		t.Error("no backpressure stalls counted under a two-chunk pending cap")
	}
}
