package fleet

import "math/bits"

// Sample buffers are recycled in power-of-two size classes. The largest
// class covers the biggest FrameSamples payload a server accepts under
// DefaultMaxFrameBytes (1<<22 bytes = 1<<19 floats); anything larger is
// allocated directly and never pooled.
const (
	minSampleClassBits = 8
	maxSampleClassBits = 19
	sampleClasses      = maxSampleClassBits - minSampleClassBits + 1
)

// samplePool recycles one session's decoded sample buffers: the reader
// takes a buffer per FrameSamples, the shard processor returns it after
// the batch Observe, so a steady-state session decodes every frame into
// memory it already owns instead of a per-frame make([]float64, n).
// The pool is per-session and guarded by the session mutex, so there is
// no cross-session contention and no sync.Pool pointer boxing on the
// hot path. Retained capacity is bounded by maxRetain samples — the
// pool never holds more than the session's backpressure window could
// have queued.
type samplePool struct {
	free      [sampleClasses][][]float64
	retained  int // total retained capacity, in samples
	maxRetain int
}

// get returns a buffer of length n with power-of-two capacity, reusing
// a pooled one when the size class has stock.
func (p *samplePool) get(n int) []float64 {
	if n <= 0 {
		return nil
	}
	b := bits.Len(uint(n - 1)) // smallest b with 1<<b >= n
	if b < minSampleClassBits {
		b = minSampleClassBits
	}
	if b > maxSampleClassBits {
		return make([]float64, n)
	}
	c := b - minSampleClassBits
	if s := p.free[c]; len(s) > 0 {
		buf := s[len(s)-1]
		s[len(s)-1] = nil
		p.free[c] = s[:len(s)-1]
		p.retained -= cap(buf)
		return buf[:n]
	}
	return make([]float64, n, 1<<b)
}

// put returns a buffer to its size class. Oversized, undersized, and
// over-budget buffers are dropped to the GC.
func (p *samplePool) put(buf []float64) {
	b := bits.Len(uint(cap(buf))) - 1 // largest b with 1<<b <= cap
	if b < minSampleClassBits || b > maxSampleClassBits {
		return
	}
	if p.maxRetain > 0 && p.retained+cap(buf) > p.maxRetain {
		return
	}
	c := b - minSampleClassBits
	p.free[c] = append(p.free[c], buf[:0])
	p.retained += cap(buf)
}
