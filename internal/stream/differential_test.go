package stream

import (
	"testing"

	"eddie/internal/core"
	"eddie/internal/dsp"
	"eddie/internal/inject"
	"eddie/internal/pipeline"
	"eddie/internal/pipeline/pipetest"
)

// TestDifferentialOfflineVsStream feeds the same collected run through
// the offline pipeline reduction and sample by sample through the
// streaming detector, and asserts the two paths agree bit for bit: same
// STS sequence (peak frequencies, energy, timestamps) and same monitor
// verdicts (per-window outcomes and reports).
//
// To make the comparison exact the stream runs with its DC blocker
// disabled on the pre-detrended signal — the detector's EWMA DC blocker
// is the one intentional difference from the offline global-mean
// detrend. Everything downstream (windowing, planned real-input FFT,
// peak extraction, K-S monitoring) is shared arithmetic, so any drift
// here is a real regression in one of the paths.
func TestDifferentialOfflineVsStream(t *testing.T) {
	f := pipetest.Fixture(t)
	injector := &inject.InLoop{
		Header: f.Machine.Nests[0].Header, Instrs: 8, MemOps: 4,
		Contamination: 0.5, Seed: 3,
	}
	// The denoised variants reuse the clean/injected captures but
	// re-reduce them with the subspace stage enabled: both paths must
	// still agree bit for bit, because offline reduce and the stream push
	// identical power spectra through one causal Denoiser in the same
	// order.
	denoise := dsp.DenoiseConfig{Rank: 5, Block: 16, Stride: 4, Seed: 11}
	for _, tc := range []struct {
		name    string
		inj     inject.Injector
		denoise dsp.DenoiseConfig
	}{
		{"clean", nil, dsp.DenoiseConfig{}},
		{"injected", injector, dsp.DenoiseConfig{}},
		{"clean denoised", nil, denoise},
		{"injected denoised", injector, denoise},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run, err := pipeline.CollectRun(f.W, f.Machine, f.Config, 800, tc.inj)
			if err != nil {
				t.Fatal(err)
			}
			detrended := dsp.Detrend(run.Signal)
			pcfg := f.Config
			pcfg.Denoise = tc.denoise

			// Offline path: the exact reduction CollectRun runs, under the
			// case's denoise configuration.
			offSTS, err := pipeline.Reduce(run.Signal, run.Sim, pcfg)
			if err != nil {
				t.Fatal(err)
			}
			offMon, err := pipeline.Monitor(f.Model, offSTS, core.DefaultMonitorConfig())
			if err != nil {
				t.Fatal(err)
			}

			// Streaming path: same samples, awkward chunk sizes. The Tap
			// captures the produced STS sequence (copying the reused
			// PeakFreqs slice).
			var strSTS []core.STS
			cfg := streamCfg(pcfg)
			cfg.DisableDCBlock = true
			cfg.Tap = func(sts *core.STS) {
				c := *sts
				c.PeakFreqs = append([]float64(nil), sts.PeakFreqs...)
				strSTS = append(strSTS, c)
			}
			d, err := NewDetector(f.Model, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < len(detrended); {
				n := 251 + i%509 // varying odd chunk sizes
				if i+n > len(detrended) {
					n = len(detrended) - i
				}
				d.Feed(detrended[i : i+n])
				i += n
			}

			// The offline STFT also emits a final partial-tail window when
			// (len-window) isn't hop-aligned; the stream only emits full
			// windows. Compare the common prefix and bound the difference.
			if d.Windows() > len(offSTS) || len(offSTS)-d.Windows() > 1 {
				t.Fatalf("window counts: stream %d, offline %d", d.Windows(), len(offSTS))
			}
			n := d.Windows()
			strMon := d.Monitor()
			if len(strSTS) != n {
				t.Fatalf("tap captured %d STSs, windows %d", len(strSTS), n)
			}
			for w := 0; w < n; w++ {
				off, str := &offSTS[w], &strSTS[w]
				if off.TimeSec != str.TimeSec {
					t.Fatalf("window %d: TimeSec offline %v stream %v", w, off.TimeSec, str.TimeSec)
				}
				if off.Energy != str.Energy {
					t.Fatalf("window %d: Energy offline %v stream %v", w, off.Energy, str.Energy)
				}
				if !equalFloats(off.PeakFreqs, str.PeakFreqs) {
					t.Fatalf("window %d: PeakFreqs offline %v stream %v", w, off.PeakFreqs, str.PeakFreqs)
				}
				offOut, strOut := offMon.Outcomes[w], strMon.Outcomes[w]
				if offOut.Region != strOut.Region || offOut.Rejected != strOut.Rejected || offOut.Flagged != strOut.Flagged {
					t.Fatalf("window %d: outcome offline %+v stream %+v", w, offOut, strOut)
				}
			}
			offReports := reportsBefore(offMon.Reports, n)
			strReports := strMon.Reports
			if len(offReports) != len(strReports) {
				t.Fatalf("report counts: offline %d, stream %d", len(offReports), len(strReports))
			}
			for i := range offReports {
				if offReports[i].TimeSec != strReports[i].TimeSec || offReports[i].Region != strReports[i].Region {
					t.Fatalf("report %d: offline %+v stream %+v", i, offReports[i], strReports[i])
				}
			}
		})
	}
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// reportsBefore drops reports raised on windows the stream never saw
// (the offline tail window).
func reportsBefore(reports []core.Report, n int) []core.Report {
	out := reports[:0:0]
	for _, r := range reports {
		if r.Window < n {
			out = append(out, r)
		}
	}
	return out
}
