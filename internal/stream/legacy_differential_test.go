package stream

import (
	"reflect"
	"testing"

	"eddie/internal/core"
	"eddie/internal/dsp"
	"eddie/internal/inject"
	"eddie/internal/obs"
	"eddie/internal/pipeline"
	"eddie/internal/pipeline/pipetest"
)

// TestDetectorLegacyVsPresortedSort runs the full streaming detector —
// sample chunking, DC blocking, sliding STFT, peak extraction — twice
// over the same capture, once with the monitor's legacy copy-and-sort
// decision path and once with the sort-once presorted kernel, and
// asserts every detector-level observable is bit-identical: window
// outcomes, reports, and the flight-recorder provenance with alarm
// dumps. This is the end-to-end form of the core-level differential:
// it proves the kernel swap is invisible from the deployable API down.
func TestDetectorLegacyVsPresortedSort(t *testing.T) {
	f := pipetest.Fixture(t)
	injector := &inject.InLoop{
		Header: f.Machine.Nests[0].Header, Instrs: 8, MemOps: 4,
		Contamination: 0.5, Seed: 3,
	}
	for _, tc := range []struct {
		name string
		inj  inject.Injector
	}{
		{"clean", nil},
		{"injected", injector},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run, err := pipeline.CollectRun(f.W, f.Machine, f.Config, 800, tc.inj)
			if err != nil {
				t.Fatal(err)
			}
			detrended := dsp.Detrend(run.Signal)

			feed := func(legacy bool) (*core.Monitor, *obs.FlightRecorder) {
				cfg := streamCfg(f.Config)
				cfg.Monitor.LegacySort = legacy
				flight := obs.NewFlightRecorder(len(run.STS) + 1)
				cfg.Monitor.Flight = flight
				d, err := NewDetector(f.Model, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < len(detrended); {
					n := 251 + i%509
					if i+n > len(detrended) {
						n = len(detrended) - i
					}
					d.Feed(detrended[i : i+n])
					i += n
				}
				return d.Monitor(), flight
			}

			monNew, flightNew := feed(false)
			monLegacy, flightLegacy := feed(true)

			if !reflect.DeepEqual(monNew.Outcomes, monLegacy.Outcomes) {
				t.Error("WindowOutcome histories differ")
			}
			if !reflect.DeepEqual(monNew.Reports, monLegacy.Reports) {
				t.Errorf("report lists differ: presorted %+v, legacy %+v", monNew.Reports, monLegacy.Reports)
			}
			recNew := flightNew.Recent()
			recLegacy := flightLegacy.Recent()
			if len(recNew) != len(recLegacy) {
				t.Fatalf("flight record counts differ: %d vs %d", len(recNew), len(recLegacy))
			}
			for i := range recNew {
				if !reflect.DeepEqual(recNew[i], recLegacy[i]) {
					t.Fatalf("flight record %d differs:\npresorted: %+v\nlegacy:    %+v", i, recNew[i], recLegacy[i])
				}
			}
			if flightNew.Alarms() != flightLegacy.Alarms() {
				t.Errorf("alarm counts differ: %d vs %d", flightNew.Alarms(), flightLegacy.Alarms())
			}
			if !reflect.DeepEqual(flightNew.LastAlarm(), flightLegacy.LastAlarm()) {
				t.Error("alarm dumps differ")
			}
		})
	}
}
