package stream

import (
	"sync"
	"testing"

	"eddie/internal/metrics"
	"eddie/internal/obs"
	"eddie/internal/pipeline"
	"eddie/internal/pipeline/pipetest"
)

// TestConcurrentDetectorsSharedInstruments is the detector fleet's
// concurrency proof at the stream layer: N detectors (one per goroutine,
// detectors themselves are single-session) share one metrics registry,
// one trace recorder and one flight recorder — exactly the aggregation
// the fleet server wires up. Run under -race; afterwards the shared
// counters must hold the exact aggregate totals.
func TestConcurrentDetectorsSharedInstruments(t *testing.T) {
	f := pipetest.Fixture(t)
	run, err := pipeline.CollectRun(f.W, f.Machine, f.Config, 900, nil)
	if err != nil {
		t.Fatal(err)
	}
	sig := run.Signal
	if testing.Short() && len(sig) > 150_000 {
		sig = sig[:150_000]
	}

	reg := metrics.NewRegistry()
	trace := obs.NewRecorder()
	flight := obs.NewFlightRecorder(256)

	const n = 8
	windows := make([]int, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := streamCfg(f.Config)
			cfg.Metrics = metrics.NewDetectorWith(reg)
			cfg.Trace = trace
			cfg.Flight = flight
			d, err := NewDetector(f.Model, cfg)
			if err != nil {
				errs <- err
				return
			}
			for off := 0; off < len(sig); {
				k := 777 + (i*97+off)%1555
				if off+k > len(sig) {
					k = len(sig) - off
				}
				d.Feed(sig[off : off+k])
				off += k
			}
			windows[i] = d.Windows()
			errs <- nil
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Identical input ⇒ identical window counts, chunking-independent.
	totalWindows := 0
	for i := 1; i < n; i++ {
		if windows[i] != windows[0] {
			t.Fatalf("detector %d produced %d windows, detector 0 produced %d",
				i, windows[i], windows[0])
		}
	}
	totalWindows = n * windows[0]
	if windows[0] == 0 {
		t.Fatal("no windows produced")
	}

	if got := reg.Counter("samples_in").Value(); got != int64(n*len(sig)) {
		t.Errorf("samples_in = %d, want %d", got, n*len(sig))
	}
	if got := reg.Counter("sts_produced").Value(); got != int64(totalWindows) {
		t.Errorf("sts_produced = %d, want %d", got, totalWindows)
	}
	if got := reg.Histogram("peak_count", nil).Snapshot().Count; got != int64(totalWindows) {
		t.Errorf("peak_count observations = %d, want %d", got, totalWindows)
	}
	// The shared trace and flight recorders must have survived the
	// concurrent appends with consistent internal state.
	if trace.Len() == 0 {
		t.Error("shared recorder captured no events")
	}
	if got := flight.Seen(); got != totalWindows {
		t.Errorf("flight recorder saw %d windows, want %d", got, totalWindows)
	}
}
