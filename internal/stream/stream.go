// Package stream provides the deployable, online form of EDDIE: a
// Detector that consumes raw receiver samples as they arrive (no whole-
// capture passes), maintains the sliding STFT internally, and feeds each
// completed Short-Term Spectrum to the monitor. This is the software
// equivalent of the paper's envisioned low-cost receiver (§5.1: "ASIC
// block for STFT and peak finding, simple CPU for tests").
package stream

import (
	"fmt"

	"eddie/internal/core"
	"eddie/internal/dsp"
)

// Config describes the detector's signal front end.
type Config struct {
	// STFT is the window analysis configuration; SampleRate must match
	// the incoming sample stream.
	STFT dsp.STFTConfig
	// Peaks controls spectral peak extraction.
	Peaks dsp.PeakConfig
	// Monitor is the monitoring configuration.
	Monitor core.MonitorConfig
	// DCTau is the time constant (in samples) of the streaming DC
	// blocker (an exponential moving average subtracted from the input).
	// Zero means 2048.
	DCTau float64
}

// Detector consumes raw samples and raises anomaly reports online.
type Detector struct {
	cfg     Config
	model   *core.Model
	monitor *core.Monitor

	win     []float64 // analysis window coefficients
	buf     []float64 // pending samples (DC-blocked)
	fftBuf  []complex128
	dcMean  float64
	dcInit  bool
	dcAlpha float64

	samplesIn int64
	windows   int
	binW      float64
}

// NewDetector creates a streaming detector for a trained model.
func NewDetector(model *core.Model, cfg Config) (*Detector, error) {
	if err := cfg.STFT.Validate(); err != nil {
		return nil, err
	}
	if cfg.STFT.HopSize > cfg.STFT.WindowSize {
		return nil, fmt.Errorf("stream: hop %d larger than window %d", cfg.STFT.HopSize, cfg.STFT.WindowSize)
	}
	if cfg.DCTau == 0 {
		cfg.DCTau = 2048
	}
	if cfg.DCTau < 1 {
		return nil, fmt.Errorf("stream: DC blocker time constant %g < 1 sample", cfg.DCTau)
	}
	mon, err := core.NewMonitor(model, cfg.Monitor)
	if err != nil {
		return nil, err
	}
	return &Detector{
		cfg:     cfg,
		model:   model,
		monitor: mon,
		win:     dsp.Window(cfg.STFT.Window, cfg.STFT.WindowSize),
		fftBuf:  make([]complex128, cfg.STFT.WindowSize),
		dcAlpha: 1 / cfg.DCTau,
		binW:    cfg.STFT.SampleRate / float64(cfg.STFT.WindowSize),
	}, nil
}

// Write feeds a batch of raw samples to the detector and returns the
// anomaly reports that fired while processing it (nil if none). Batches
// may be of any size, including single samples.
func (d *Detector) Write(samples []float64) []core.Report {
	if len(samples) == 0 {
		return nil
	}
	if !d.dcInit {
		d.dcMean = samples[0]
		d.dcInit = true
	}
	before := len(d.monitor.Reports)
	for _, s := range samples {
		// Streaming DC blocker: subtract a slow EWMA of the input (the
		// offline pipeline subtracts the global mean instead).
		d.dcMean += d.dcAlpha * (s - d.dcMean)
		d.buf = append(d.buf, s-d.dcMean)
		d.samplesIn++
	}
	for len(d.buf) >= d.cfg.STFT.WindowSize {
		d.processWindow()
		// Slide by one hop, reusing the backing array.
		n := copy(d.buf, d.buf[d.cfg.STFT.HopSize:])
		d.buf = d.buf[:n]
	}
	if len(d.monitor.Reports) == before {
		return nil
	}
	out := make([]core.Report, len(d.monitor.Reports)-before)
	copy(out, d.monitor.Reports[before:])
	return out
}

// processWindow turns the first WindowSize buffered samples into an STS
// and feeds the monitor.
func (d *Detector) processWindow() {
	ws := d.cfg.STFT.WindowSize
	for i := 0; i < ws; i++ {
		d.fftBuf[i] = complex(d.buf[i]*d.win[i], 0)
	}
	spec := dsp.FFT(d.fftBuf)
	half := ws/2 + 1
	power := make([]float64, half)
	for k := 0; k < half; k++ {
		re, im := real(spec[k]), imag(spec[k])
		power[k] = re*re + im*im
	}
	frame := dsp.Frame{Index: d.windows, Power: power}
	peaks := dsp.FindPeaks(&frame, d.cfg.Peaks, d.cfg.STFT.BinFrequency)
	freqs := make([]float64, len(peaks))
	for i, p := range peaks {
		freqs[i] = dsp.InterpolatePeakFrequency(&frame, p.Bin, d.binW)
	}
	sortFloats(freqs)
	minBin := d.cfg.Peaks.MinBin
	if minBin < 1 {
		minBin = 1
	}
	var energy float64
	for b := minBin; b < len(power); b++ {
		energy += power[b]
	}
	sts := core.STS{
		PeakFreqs: freqs,
		Energy:    energy,
		TimeSec:   float64(d.samplesIn-int64(len(d.buf))) / d.cfg.STFT.SampleRate,
	}
	d.monitor.Observe(&sts)
	d.windows++
}

// Windows returns the number of STSs processed so far.
func (d *Detector) Windows() int { return d.windows }

// Monitor exposes the underlying monitor (reports, outcomes, current
// region estimate).
func (d *Detector) Monitor() *core.Monitor { return d.monitor }

// sortFloats is insertion sort: peak lists are short and this avoids an
// allocation-heavy sort.Float64s call per window on the hot path.
func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}
