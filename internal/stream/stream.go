// Package stream provides the deployable, online form of EDDIE: a
// Detector that consumes raw receiver samples as they arrive (no whole-
// capture passes), maintains the sliding STFT internally, and feeds each
// completed Short-Term Spectrum to the monitor. This is the software
// equivalent of the paper's envisioned low-cost receiver (§5.1: "ASIC
// block for STFT and peak finding, simple CPU for tests").
package stream

import (
	"fmt"
	"math"
	"time"

	"eddie/internal/core"
	"eddie/internal/dsp"
	"eddie/internal/impair"
	"eddie/internal/metrics"
	"eddie/internal/obs"
	"eddie/internal/stats"
)

// Config describes the detector's signal front end.
type Config struct {
	// STFT is the window analysis configuration; SampleRate must match
	// the incoming sample stream.
	STFT dsp.STFTConfig
	// Peaks controls spectral peak extraction.
	Peaks dsp.PeakConfig
	// Denoise configures the optional SVD subspace denoising stage that
	// runs on each power spectrum between the STFT and peak extraction.
	// The zero value disables it; the detector is then bit-identical to
	// one built without the stage. The offline pipeline applies the same
	// stage at the same point, so the offline-vs-stream differential holds
	// with denoising on.
	Denoise dsp.DenoiseConfig
	// Monitor is the monitoring configuration.
	Monitor core.MonitorConfig
	// DCTau is the time constant (in samples) of the streaming DC
	// blocker (an exponential moving average subtracted from the input).
	// Zero means 2048.
	DCTau float64
	// DisableDCBlock feeds samples through unmodified. Use it when the
	// input is already AC-coupled (e.g. a pre-detrended capture); with
	// it the detector reproduces the offline pipeline's STS sequence
	// bit for bit (see the differential test).
	DisableDCBlock bool
	// Impair, when non-nil, is applied to the incoming samples before
	// any processing — fault injection for robustness testing. The
	// detector copies each chunk before impairing, so caller buffers are
	// never modified.
	Impair impair.Transform
	// Metrics, when non-nil, receives the detector's runtime counters
	// and histograms (and is forwarded to the monitor as its Stats hook
	// unless Monitor.Stats is already set).
	Metrics *metrics.Detector
	// GroundTruth, when non-nil, labels window indices as injected
	// ground truth; the detector then maintains false-positive/negative
	// counts and detection-latency histograms in Metrics.
	GroundTruth func(window int) bool
	// Tap, when non-nil, receives every completed STS just before it
	// reaches the monitor — for golden capture and differential testing.
	// The STS's PeakFreqs slice is reused across windows; taps that
	// retain it must copy.
	Tap func(sts *core.STS)
	// Trace, when non-nil, records spans for the detector's stages
	// (impair, STFT, peak extraction) on a "stream" track and is
	// forwarded to the monitor (unless Monitor.Trace is already set) for
	// its per-window decision spans. Nil costs nothing.
	Trace *obs.Recorder
	// Flight, when non-nil, is forwarded to the monitor (unless
	// Monitor.Flight is already set): every window's decision provenance
	// lands in its ring and each fired report snapshots an alarm dump.
	Flight *obs.FlightRecorder
	// MaxHistoryWindows bounds the monitor's retained per-window outcome
	// and report history. Zero keeps everything (the offline/evaluation
	// behaviour); a long-running deployment (e.g. a fleet session that
	// streams for days) should set it so memory stays flat. Trimming
	// never changes verdicts — only how much history stays readable.
	MaxHistoryWindows int
}

// Detector consumes raw samples and raises anomaly reports online.
type Detector struct {
	cfg     Config
	model   *core.Model
	monitor *core.Monitor

	win      []float64 // analysis window coefficients
	buf      []float64 // pending samples (DC-blocked), len < WindowSize + HopSize
	plan     *dsp.RFFTPlan
	windowed []float64
	spec     []complex128
	work     []complex128
	power    []float64
	freqs    []float64
	peaks    []dsp.Peak // per-window peak scratch
	frame    dsp.Frame  // per-window frame header, reused
	sts      core.STS   // per-window STS, reused (Observe copies what it keeps)
	binHz    func(int) float64
	chunkBuf []float64 // impairment scratch
	dcMean   float64
	dcInit   bool
	dcAlpha  float64

	denoiser   *dsp.Denoiser // nil when denoising is disabled
	dnRefactor int64         // refactor count already published to Metrics

	// adaptUpdates is the monitor adaptation-update count already
	// published to Metrics (always 0 with adaptation disabled).
	adaptUpdates int64

	samplesIn int64
	sanitized int64
	windows   int
	binW      float64
	track     obs.Track

	// episode tracks ground-truth injection episodes for latency
	// accounting.
	episodeStart int
	episodeDone  bool
	prevInjected bool
}

// NewDetector creates a streaming detector for a trained model.
func NewDetector(model *core.Model, cfg Config) (*Detector, error) {
	if err := cfg.STFT.Validate(); err != nil {
		return nil, err
	}
	if cfg.STFT.HopSize > cfg.STFT.WindowSize {
		return nil, fmt.Errorf("stream: hop %d larger than window %d", cfg.STFT.HopSize, cfg.STFT.WindowSize)
	}
	if cfg.DCTau == 0 {
		cfg.DCTau = 2048
	}
	if cfg.DCTau < 1 {
		return nil, fmt.Errorf("stream: DC blocker time constant %g < 1 sample", cfg.DCTau)
	}
	if cfg.MaxHistoryWindows < 0 {
		return nil, fmt.Errorf("stream: negative history bound %d", cfg.MaxHistoryWindows)
	}
	if cfg.Metrics != nil && cfg.Monitor.Stats == nil {
		cfg.Monitor.Stats = cfg.Metrics
	}
	if cfg.Trace != nil && cfg.Monitor.Trace == nil {
		cfg.Monitor.Trace = cfg.Trace
	}
	if cfg.Flight != nil && cfg.Monitor.Flight == nil {
		cfg.Monitor.Flight = cfg.Flight
	}
	mon, err := core.NewMonitor(model, cfg.Monitor)
	if err != nil {
		return nil, err
	}
	ws := cfg.STFT.WindowSize
	plan := dsp.PlanRFFT(ws)
	var denoiser *dsp.Denoiser
	if cfg.Denoise.Enabled() {
		denoiser, err = dsp.NewDenoiser(cfg.Denoise, plan.SpectrumLen())
		if err != nil {
			return nil, fmt.Errorf("stream: %w", err)
		}
	}
	return &Detector{
		cfg:     cfg,
		model:   model,
		monitor: mon,
		// The coefficient table is a pure function of (kind, size) and
		// only ever read, so all detectors of one process share it (a
		// fleet node's sessions would otherwise each hold a copy).
		win:      dsp.SharedWindow(cfg.STFT.Window, ws),
		buf:      make([]float64, 0, ws),
		plan:     plan,
		windowed: make([]float64, ws),
		spec:     make([]complex128, plan.SpectrumLen()),
		work:     make([]complex128, plan.WorkLen()),
		power:    make([]float64, plan.SpectrumLen()),
		dcAlpha:  1 / cfg.DCTau,
		binW:     cfg.STFT.SampleRate / float64(ws),
		// Bound once: building the method value per window would
		// allocate a closure on the hot path.
		binHz:        cfg.STFT.BinFrequency,
		episodeStart: -1,
		track:        cfg.Trace.Track("stream"),
		denoiser:     denoiser,
	}, nil
}

// Feed pushes a batch of raw samples into the detector and returns the
// anomaly reports that fired while processing it (nil if none). Batches
// may be of any size, including single samples and empty chunks; the
// STS sequence depends only on the concatenated sample stream, never on
// how it was chunked. Non-finite samples (NaN, ±Inf — ADC glitches,
// corrupt transport frames) are replaced by zero and counted. The
// internal buffer never holds more than one analysis window.
func (d *Detector) Feed(samples []float64) []core.Report {
	before := len(d.monitor.Reports)
	d.feedChunk(samples)
	if len(d.monitor.Reports) == before {
		return nil
	}
	out := make([]core.Report, len(d.monitor.Reports)-before)
	copy(out, d.monitor.Reports[before:])
	return out
}

// FeedChunks feeds a sequence of sample chunks in order in a single
// call, returning the reports that fired across all of them. It is
// exactly equivalent to calling Feed once per chunk and concatenating
// the results — the STS sequence and every verdict depend only on the
// concatenated sample stream — but lets a batching caller (the fleet
// server's shard processors, which drain a session's whole frame queue
// in one scheduling turn) cross the detector boundary once per batch
// instead of once per frame. When no report fires it allocates nothing.
func (d *Detector) FeedChunks(chunks [][]float64) []core.Report {
	var out []core.Report
	for _, c := range chunks {
		// Snapshot per chunk, not once for the batch: feedChunk may trim
		// report history between chunks, which would invalidate an index
		// taken before the batch.
		before := len(d.monitor.Reports)
		d.feedChunk(c)
		if n := len(d.monitor.Reports) - before; n > 0 {
			out = append(out, d.monitor.Reports[before:]...)
		}
	}
	return out
}

// feedChunk pushes one chunk of raw samples through the front end and
// the monitor; fired reports accumulate in the monitor's history.
func (d *Detector) feedChunk(samples []float64) {
	if len(samples) == 0 {
		return
	}
	if limit := d.cfg.MaxHistoryWindows; limit > 0 && len(d.monitor.Outcomes) > limit {
		// Trim between batches only, so the report bookkeeping below (a
		// length taken before feeding) stays consistent within one call.
		d.monitor.TrimHistory(limit / 2)
	}
	if m := d.cfg.Metrics; m != nil {
		m.SamplesIn.Add(int64(len(samples)))
	}
	sanBefore := d.sanitized
	chunk := samples
	if d.cfg.Impair != nil {
		// Copy before impairing: transforms work in place and must not
		// modify the caller's buffer. Sanitize first so a corrupt sample
		// cannot poison the transform's internal state.
		d.chunkBuf = append(d.chunkBuf[:0], samples...)
		for i, s := range d.chunkBuf {
			if !isFinite(s) {
				d.chunkBuf[i] = 0
				d.sanitized++
			}
		}
		sp := d.track.Start("impair")
		chunk = d.cfg.Impair.Process(d.chunkBuf)
		sp.End()
	}
	for _, s := range chunk {
		if !isFinite(s) {
			s = 0
			d.sanitized++
		}
		if !d.cfg.DisableDCBlock {
			if !d.dcInit {
				d.dcMean = s
				d.dcInit = true
			}
			// Streaming DC blocker: subtract a slow EWMA of the input
			// (the offline pipeline subtracts the global mean instead).
			d.dcMean += d.dcAlpha * (s - d.dcMean)
			s -= d.dcMean
		}
		d.buf = append(d.buf, s)
		d.samplesIn++
		if len(d.buf) == d.cfg.STFT.WindowSize {
			d.processWindow()
			// Slide by one hop, reusing the backing array.
			n := copy(d.buf, d.buf[d.cfg.STFT.HopSize:])
			d.buf = d.buf[:n]
		}
	}
	if m := d.cfg.Metrics; m != nil && d.sanitized > sanBefore {
		m.Sanitized.Add(d.sanitized - sanBefore)
	}
}

// Write is an alias for Feed, kept for io.Writer-style call sites.
func (d *Detector) Write(samples []float64) []core.Report { return d.Feed(samples) }

// processWindow turns the buffered WindowSize samples into an STS and
// feeds the monitor. It runs the same planned real-input FFT and peak
// extraction as the offline pipeline, so given identical input samples
// the produced STS is bit-identical to the batch path's.
func (d *Detector) processWindow() {
	var t0 time.Time
	if d.cfg.Metrics != nil {
		t0 = time.Now()
	}
	ws := d.cfg.STFT.WindowSize
	sp := d.track.Start("stft")
	for j := 0; j < ws; j++ {
		d.windowed[j] = d.buf[j] * d.win[j]
	}
	d.plan.PowerInto(d.power, d.windowed, d.spec, d.work)
	sp.End()
	if d.denoiser != nil {
		sp = d.track.Start("denoise")
		d.denoiser.Push(d.power)
		sp.End()
		if m := d.cfg.Metrics; m != nil {
			if rf := d.denoiser.Refactors(); rf > d.dnRefactor {
				m.DenoiseRefactors.Add(rf - d.dnRefactor)
				d.dnRefactor = rf
				m.DenoiseRank.Set(int64(d.denoiser.Rank()))
				m.DenoiseEnergyPct.Set(int64(d.denoiser.EnergyRatio()*100 + 0.5))
			}
		}
	}
	sp = d.track.Start("peaks")
	d.frame.Index = d.windows
	d.frame.Power = d.power
	d.peaks = dsp.FindPeaksInto(d.peaks[:0], &d.frame, d.cfg.Peaks, d.binHz)
	d.freqs = d.freqs[:0]
	for _, p := range d.peaks {
		d.freqs = append(d.freqs, dsp.InterpolatePeakFrequency(&d.frame, p.Bin, d.binW))
	}
	stats.Sort(d.freqs)
	sp.End()
	minBin := d.cfg.Peaks.MinBin
	if minBin < 1 {
		minBin = 1
	}
	var energy float64
	for b := minBin; b < len(d.power); b++ {
		energy += d.power[b]
	}
	// Reuse the detector-owned STS: a stack literal escapes through the
	// Observe call and would heap-allocate every window. Monitor.Observe
	// copies the peak list into its ring, so nothing here is retained.
	d.sts = core.STS{
		PeakFreqs: d.freqs,
		Energy:    energy,
		TimeSec:   float64(d.samplesIn-int64(len(d.buf))) / d.cfg.STFT.SampleRate,
	}
	if d.cfg.Tap != nil {
		d.cfg.Tap(&d.sts)
	}
	reported := d.monitor.Observe(&d.sts)
	if m := d.cfg.Metrics; m != nil {
		m.Windows.Inc()
		m.PeakCount.Observe(float64(len(d.freqs)))
		m.WindowNanos.Record(int64(time.Since(t0)))
		if u := d.monitor.AdaptUpdates(); u > d.adaptUpdates {
			m.AdaptUpdates.Add(u - d.adaptUpdates)
			d.adaptUpdates = u
			m.AdaptDrift.Set(d.monitor.AdaptDrift())
		}
	}
	d.scoreGroundTruth(reported)
	d.windows++
}

// scoreGroundTruth updates the truth-conditioned counters and latency
// histograms for the window that just completed.
func (d *Detector) scoreGroundTruth(reported bool) {
	if d.cfg.GroundTruth == nil {
		return
	}
	w := d.windows
	inj := d.cfg.GroundTruth(w)
	out, _ := d.monitor.OutcomeAt(w)
	flagged := out.Flagged
	if m := d.cfg.Metrics; m != nil {
		switch {
		case inj && flagged:
			m.TruePos.Inc()
		case inj && !flagged:
			m.FalseNeg.Inc()
		case !inj && flagged:
			m.FalsePos.Inc()
		default:
			m.TrueNeg.Inc()
		}
	}
	if inj && !d.prevInjected {
		d.episodeStart = w
		d.episodeDone = false
	}
	d.prevInjected = inj
	if reported && d.episodeStart >= 0 && !d.episodeDone {
		lat := w - d.episodeStart
		if m := d.cfg.Metrics; m != nil {
			m.LatencySTS.Observe(float64(lat))
			m.LatencySamples.Observe(float64(lat * d.cfg.STFT.HopSize))
		}
		d.episodeDone = true
	}
}

// Windows returns the number of STSs processed so far.
func (d *Detector) Windows() int { return d.windows }

// Sanitized returns how many non-finite input samples were replaced.
func (d *Detector) Sanitized() int64 { return d.sanitized }

// Buffered returns the number of samples currently pending (always less
// than one analysis window).
func (d *Detector) Buffered() int { return len(d.buf) }

// Monitor exposes the underlying monitor (reports, outcomes, current
// region estimate).
func (d *Detector) Monitor() *core.Monitor { return d.monitor }

// Denoiser exposes the subspace denoising stage, or nil when disabled.
func (d *Detector) Denoiser() *dsp.Denoiser { return d.denoiser }

// isFinite reports whether s is neither NaN nor ±Inf.
func isFinite(s float64) bool {
	return !math.IsNaN(s) && !math.IsInf(s, 0)
}
