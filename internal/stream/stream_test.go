package stream

import (
	"testing"

	"eddie/internal/cfg"
	"eddie/internal/core"
	"eddie/internal/inject"
	"eddie/internal/mibench"
	"eddie/internal/pipeline"
)

func streamCfg(p pipeline.Config) Config {
	return Config{STFT: p.STFT, Peaks: p.Peaks, Monitor: core.DefaultMonitorConfig()}
}

func trainFixture(t *testing.T) (*core.Model, *cfg.Machine, *mibench.Workload, pipeline.Config) {
	t.Helper()
	w, err := mibench.ByName("bitcount")
	if err != nil {
		t.Fatal(err)
	}
	p := pipeline.SimulatorConfig()
	model, machine, err := pipeline.Train(w, p, 8, core.DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	return model, machine, w, p
}

func TestDetectorQuietOnCleanStream(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	model, machine, w, p := trainFixture(t)
	run, err := pipeline.CollectRun(w, machine, p, 500, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDetector(model, streamCfg(p))
	if err != nil {
		t.Fatal(err)
	}
	// Feed in awkward batch sizes to exercise buffering.
	var reports []core.Report
	sig := run.Signal
	for len(sig) > 0 {
		n := 173
		if n > len(sig) {
			n = len(sig)
		}
		reports = append(reports, d.Write(sig[:n])...)
		sig = sig[n:]
	}
	if len(reports) != 0 {
		t.Errorf("clean stream produced %d reports", len(reports))
	}
	if d.Windows() == 0 {
		t.Fatal("no windows processed")
	}
	// The streaming detector should see the same number of windows as the
	// offline STFT (up to trailing remainder).
	if diff := len(run.STS) - d.Windows(); diff < 0 || diff > 2 {
		t.Errorf("streaming windows %d vs offline %d", d.Windows(), len(run.STS))
	}
}

func TestDetectorReportsInjectedStream(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	model, machine, w, p := trainFixture(t)
	injector := &inject.InLoop{
		Header: machine.Nests[0].Header, Instrs: 8, MemOps: 4,
		Contamination: 1, Seed: 9,
	}
	run, err := pipeline.CollectRun(w, machine, p, 600, injector)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDetector(model, streamCfg(p))
	if err != nil {
		t.Fatal(err)
	}
	reports := d.Write(run.Signal)
	if len(reports) == 0 {
		t.Fatal("injected stream produced no reports")
	}
	// Report timestamps are within the run duration.
	dur := run.Sim.Duration()
	for _, r := range reports {
		if r.TimeSec < 0 || r.TimeSec > dur {
			t.Errorf("report at %.4f s outside run duration %.4f s", r.TimeSec, dur)
		}
	}
}

func TestDetectorBatchSizeInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	model, machine, w, p := trainFixture(t)
	run, err := pipeline.CollectRun(w, machine, p, 700, nil)
	if err != nil {
		t.Fatal(err)
	}
	countWindows := func(batch int) int {
		d, err := NewDetector(model, streamCfg(p))
		if err != nil {
			t.Fatal(err)
		}
		sig := run.Signal
		for len(sig) > 0 {
			n := batch
			if n > len(sig) {
				n = len(sig)
			}
			d.Write(sig[:n])
			sig = sig[n:]
		}
		return d.Windows()
	}
	all := countWindows(len(run.Signal))
	one := countWindows(1)
	odd := countWindows(997)
	if all != one || all != odd {
		t.Errorf("window counts differ by batch size: whole=%d single=%d odd=%d", all, one, odd)
	}
}

func TestDetectorValidation(t *testing.T) {
	model := &core.Model{} // only needed for config validation paths
	p := pipeline.SimulatorConfig()
	bad := streamCfg(p)
	bad.STFT.WindowSize = 0
	if _, err := NewDetector(model, bad); err == nil {
		t.Error("zero window size accepted")
	}
	bad = streamCfg(p)
	bad.STFT.HopSize = bad.STFT.WindowSize * 2
	if _, err := NewDetector(model, bad); err == nil {
		t.Error("hop > window accepted")
	}
	bad = streamCfg(p)
	bad.DCTau = 0.5
	if _, err := NewDetector(model, bad); err == nil {
		t.Error("sub-sample DC time constant accepted")
	}
}
