package stream

import (
	"math"
	"reflect"
	"testing"

	"eddie/internal/core"
	"eddie/internal/impair"
	"eddie/internal/inject"
	"eddie/internal/metrics"
	"eddie/internal/pipeline"
	"eddie/internal/pipeline/pipetest"
)

func streamCfg(p pipeline.Config) Config {
	return Config{STFT: p.STFT, Peaks: p.Peaks, Denoise: p.Denoise, Monitor: core.DefaultMonitorConfig()}
}

func TestDetectorQuietOnCleanStream(t *testing.T) {
	f := pipetest.Fixture(t)
	run, err := pipeline.CollectRun(f.W, f.Machine, f.Config, 500, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDetector(f.Model, streamCfg(f.Config))
	if err != nil {
		t.Fatal(err)
	}
	// Feed in awkward batch sizes to exercise buffering.
	var reports []core.Report
	sig := run.Signal
	for len(sig) > 0 {
		n := 173
		if n > len(sig) {
			n = len(sig)
		}
		reports = append(reports, d.Feed(sig[:n])...)
		sig = sig[n:]
	}
	if len(reports) != 0 {
		t.Errorf("clean stream produced %d reports", len(reports))
	}
	if d.Windows() == 0 {
		t.Fatal("no windows processed")
	}
	// The streaming detector should see the same number of windows as the
	// offline STFT (up to trailing remainder).
	if diff := len(run.STS) - d.Windows(); diff < 0 || diff > 2 {
		t.Errorf("streaming windows %d vs offline %d", d.Windows(), len(run.STS))
	}
}

func TestDetectorReportsInjectedStream(t *testing.T) {
	f := pipetest.Fixture(t)
	injector := &inject.InLoop{
		Header: f.Machine.Nests[0].Header, Instrs: 8, MemOps: 4,
		Contamination: 1, Seed: 9,
	}
	run, err := pipeline.CollectRun(f.W, f.Machine, f.Config, 600, injector)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDetector(f.Model, streamCfg(f.Config))
	if err != nil {
		t.Fatal(err)
	}
	reports := d.Feed(run.Signal)
	if len(reports) == 0 {
		t.Fatal("injected stream produced no reports")
	}
	// Report timestamps are within the run duration.
	dur := run.Sim.Duration()
	for _, r := range reports {
		if r.TimeSec < 0 || r.TimeSec > dur {
			t.Errorf("report at %.4f s outside run duration %.4f s", r.TimeSec, dur)
		}
	}
}

func TestDetectorBatchSizeInvariance(t *testing.T) {
	f := pipetest.Fixture(t)
	run, err := pipeline.CollectRun(f.W, f.Machine, f.Config, 700, nil)
	if err != nil {
		t.Fatal(err)
	}
	countWindows := func(batch int) int {
		d, err := NewDetector(f.Model, streamCfg(f.Config))
		if err != nil {
			t.Fatal(err)
		}
		sig := run.Signal
		for len(sig) > 0 {
			n := batch
			if n > len(sig) {
				n = len(sig)
			}
			d.Feed(sig[:n])
			sig = sig[n:]
		}
		return d.Windows()
	}
	all := countWindows(len(run.Signal))
	one := countWindows(1)
	odd := countWindows(997)
	if all != one || all != odd {
		t.Errorf("window counts differ by batch size: whole=%d single=%d odd=%d", all, one, odd)
	}
}

// TestDetectorFeedChunksMatchesFeed pins the batched entry point the
// fleet's shard processors use: feeding a run as one FeedChunks call
// over many chunks must produce exactly the reports (same windows, same
// timestamps) as sequential Feed calls on a second detector.
func TestDetectorFeedChunksMatchesFeed(t *testing.T) {
	f := pipetest.Fixture(t)
	injector := &inject.InLoop{
		Header: f.Machine.Nests[0].Header, Instrs: 8, MemOps: 4,
		Contamination: 0.5, Seed: 11,
	}
	run, err := pipeline.CollectRun(f.W, f.Machine, f.Config, 650, injector)
	if err != nil {
		t.Fatal(err)
	}
	chunks := make([][]float64, 0, len(run.Signal)/769+1)
	for sig := run.Signal; len(sig) > 0; {
		n := 769
		if n > len(sig) {
			n = len(sig)
		}
		chunks = append(chunks, sig[:n])
		sig = sig[n:]
	}

	seq, err := NewDetector(f.Model, streamCfg(f.Config))
	if err != nil {
		t.Fatal(err)
	}
	var want []core.Report
	for _, c := range chunks {
		want = append(want, seq.Feed(c)...)
	}

	bat, err := NewDetector(f.Model, streamCfg(f.Config))
	if err != nil {
		t.Fatal(err)
	}
	got := bat.FeedChunks(chunks)

	if len(want) == 0 {
		t.Fatal("contaminated run produced no reports; equivalence is vacuous")
	}
	if len(got) != len(want) {
		t.Fatalf("FeedChunks reports %d, sequential Feed %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Window != want[i].Window || got[i].TimeSec != want[i].TimeSec ||
			got[i].Region != want[i].Region {
			t.Fatalf("report %d: batched %+v, sequential %+v", i, got[i], want[i])
		}
	}
	if bat.Windows() != seq.Windows() {
		t.Fatalf("windows %d vs %d", bat.Windows(), seq.Windows())
	}
}

// TestDetectorImpairmentChainChunkInvariance extends the chunk-
// invariance guarantee to a stateful impairment chain: ClockSkew carries
// its resampling phase and Dropout its RNG and gap countdown across
// chunk boundaries, so the verdict history must depend only on the
// concatenated sample stream, never on how the caller batched it.
func TestDetectorImpairmentChainChunkInvariance(t *testing.T) {
	f := pipetest.Fixture(t)
	run, err := pipeline.CollectRun(f.W, f.Machine, f.Config, 720, nil)
	if err != nil {
		t.Fatal(err)
	}
	feed := func(batch int) *Detector {
		cfg := streamCfg(f.Config)
		// A fresh chain per detector: the transforms are stateful.
		cfg.Impair = impair.NewChain(
			&impair.ClockSkew{PPM: 300},
			&impair.Dropout{Rate: 2e-5, MeanLen: 32, Seed: 5},
		)
		d, err := NewDetector(f.Model, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for sig := run.Signal; len(sig) > 0; {
			n := batch
			if n > len(sig) {
				n = len(sig)
			}
			d.Feed(sig[:n])
			sig = sig[n:]
		}
		return d
	}
	whole := feed(len(run.Signal))
	odd := feed(911)
	small := feed(173)
	for _, d := range []*Detector{odd, small} {
		if d.Windows() != whole.Windows() {
			t.Fatalf("window counts differ by batch size: %d vs %d", d.Windows(), whole.Windows())
		}
		if !reflect.DeepEqual(d.Monitor().Outcomes, whole.Monitor().Outcomes) {
			t.Fatal("outcome histories differ by batch size under an impairment chain")
		}
		if !reflect.DeepEqual(d.Monitor().Reports, whole.Monitor().Reports) {
			t.Fatal("report lists differ by batch size under an impairment chain")
		}
	}
}

// TestDetectorAdaptMetrics verifies the detector publishes the monitor's
// adaptation counters: with the adaptive layer on, a long clean stream
// admits updates and the adapt_updates/adapt_drift instruments track the
// monitor's own accounting.
func TestDetectorAdaptMetrics(t *testing.T) {
	f := pipetest.Tiny(t)
	run, err := pipeline.CollectRun(f.W, f.Machine, f.Config, 730, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := metrics.NewDetector()
	cfg := streamCfg(f.Config)
	cfg.Metrics = m
	cfg.Monitor.Adapt = core.AdaptConfig{Enabled: true, MinCleanStreak: 4}
	d, err := NewDetector(f.Model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		d.Feed(run.Signal)
	}
	mon := d.Monitor()
	if mon.AdaptUpdates() == 0 {
		t.Fatal("no adaptation updates on a repeated clean stream")
	}
	if got := m.AdaptUpdates.Value(); got != mon.AdaptUpdates() {
		t.Errorf("adapt_updates metric %d, monitor reports %d", got, mon.AdaptUpdates())
	}
	if got := m.AdaptDrift.Value(); got != mon.AdaptDrift() {
		t.Errorf("adapt_drift metric %g, monitor reports %g", got, mon.AdaptDrift())
	}
}

func TestDetectorSanitizesNonFinite(t *testing.T) {
	f := pipetest.Fixture(t)
	d, err := NewDetector(f.Model, streamCfg(f.Config))
	if err != nil {
		t.Fatal(err)
	}
	chunk := []float64{1, math.NaN(), 2, math.Inf(1), 3, math.Inf(-1)}
	d.Feed(chunk)
	if d.Sanitized() != 3 {
		t.Errorf("sanitized %d samples, want 3", d.Sanitized())
	}
	if d.Buffered() != len(chunk) {
		t.Errorf("buffered %d samples, want %d", d.Buffered(), len(chunk))
	}
}

func TestDetectorMetricsAndGroundTruth(t *testing.T) {
	f := pipetest.Fixture(t)
	injector := &inject.InLoop{
		Header: f.Machine.Nests[0].Header, Instrs: 8, MemOps: 4,
		Contamination: 1, Seed: 9,
	}
	run, err := pipeline.CollectRun(f.W, f.Machine, f.Config, 600, injector)
	if err != nil {
		t.Fatal(err)
	}
	m := metrics.NewDetector()
	cfg := streamCfg(f.Config)
	cfg.Metrics = m
	cfg.GroundTruth = func(w int) bool {
		return w < len(run.STS) && run.STS[w].Injected
	}
	d, err := NewDetector(f.Model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Feed(run.Signal)
	if got := m.SamplesIn.Value(); got != int64(len(run.Signal)) {
		t.Errorf("samples_in %d, want %d", got, len(run.Signal))
	}
	if got := m.Windows.Value(); got != int64(d.Windows()) {
		t.Errorf("sts_produced %d, want %d", got, d.Windows())
	}
	if m.KSTests.Value() == 0 {
		t.Error("no K-S tests counted")
	}
	if m.ReportsFired.Value() == 0 {
		t.Error("no reports counted on an injected stream")
	}
	if m.TruePos.Value() == 0 {
		t.Error("no true positives against ground truth")
	}
	if lat := m.LatencySTS.Snapshot(); lat.Count == 0 {
		t.Error("no detection latency observed")
	} else if latS := m.LatencySamples.Snapshot(); latS.Count != lat.Count {
		t.Errorf("latency histograms disagree: %d STS obs vs %d sample obs", lat.Count, latS.Count)
	}
	snap := m.Reg.Snapshot()
	if len(snap) == 0 {
		t.Fatal("empty metrics snapshot")
	}
	total := m.TruePos.Value() + m.TrueNeg.Value() + m.FalsePos.Value() + m.FalseNeg.Value()
	if total != int64(d.Windows()) {
		t.Errorf("truth-conditioned counts sum to %d, want %d windows", total, d.Windows())
	}
}

func TestDetectorImpairedStreamStillDetects(t *testing.T) {
	f := pipetest.Fixture(t)
	injector := &inject.InLoop{
		Header: f.Machine.Nests[0].Header, Instrs: 8, MemOps: 4,
		Contamination: 1, Seed: 9,
	}
	run, err := pipeline.CollectRun(f.W, f.Machine, f.Config, 600, injector)
	if err != nil {
		t.Fatal(err)
	}
	cfg := streamCfg(f.Config)
	cfg.Impair = impair.NewChain(
		&impair.AWGN{SNRdB: 30, Seed: 4},
		&impair.GainDrift{Std: 1e-6, Seed: 5},
	)
	d, err := NewDetector(f.Model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), run.Signal[:8]...)
	reports := d.Feed(run.Signal)
	for i := range before {
		if run.Signal[i] != before[i] {
			t.Fatal("Feed with Impair modified the caller's buffer")
		}
	}
	if len(reports) == 0 {
		t.Error("mildly impaired injected stream produced no reports")
	}
}

func TestDetectorValidation(t *testing.T) {
	model := &core.Model{} // only needed for config validation paths
	p := pipeline.SimulatorConfig()
	bad := streamCfg(p)
	bad.STFT.WindowSize = 0
	if _, err := NewDetector(model, bad); err == nil {
		t.Error("zero window size accepted")
	}
	bad = streamCfg(p)
	bad.STFT.HopSize = bad.STFT.WindowSize * 2
	if _, err := NewDetector(model, bad); err == nil {
		t.Error("hop > window accepted")
	}
	bad = streamCfg(p)
	bad.DCTau = 0.5
	if _, err := NewDetector(model, bad); err == nil {
		t.Error("sub-sample DC time constant accepted")
	}
}
