package stream

import (
	"encoding/binary"
	"math"
	"testing"

	"eddie/internal/core"
	"eddie/internal/pipeline/pipetest"
)

// maxFuzzSamples bounds one fuzz iteration's stream length (a handful of
// analysis windows is enough to exercise the window/hop machinery).
const maxFuzzSamples = 4096

// decodeFuzzInput turns raw fuzz bytes into a chunk-size selector and a
// float64 sample stream. Arbitrary 8-byte groups become arbitrary
// float64 bit patterns, so NaNs, ±Inf, denormals and huge magnitudes all
// occur naturally.
func decodeFuzzInput(data []byte) (sel byte, samples []float64) {
	if len(data) == 0 {
		return 0, nil
	}
	sel, data = data[0], data[1:]
	n := len(data) / 8
	if n > maxFuzzSamples {
		n = maxFuzzSamples
	}
	samples = make([]float64, n)
	for i := 0; i < n; i++ {
		samples[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return sel, samples
}

// FuzzDetectorFeed feeds arbitrary sample streams in arbitrary chunkings
// and asserts the detector's safety contract: no panics, the internal
// buffer never exceeds one analysis window, non-finite samples are
// sanitized, and the results depend only on the concatenated stream —
// one big Feed and many small Feeds are bit-identical.
func FuzzDetectorFeed(f *testing.F) {
	fx := pipetest.Tiny(f)

	f.Add([]byte{}) // empty input
	// One window of a ramp, fed in 7-sample chunks.
	ramp := make([]byte, 1+8*600)
	ramp[0] = 7
	for i := 0; i < 600; i++ {
		binary.LittleEndian.PutUint64(ramp[1+8*i:], math.Float64bits(float64(i%50)))
	}
	f.Add(ramp)
	// Hostile values: NaN, ±Inf, huge, denormal, signed zero.
	hostile := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e308, -1e308, 5e-324, math.Copysign(0, -1), 1}
	hb := make([]byte, 1+8*len(hostile))
	hb[0] = 1
	for i, v := range hostile {
		binary.LittleEndian.PutUint64(hb[1+8*i:], math.Float64bits(v))
	}
	f.Add(hb)

	f.Fuzz(func(t *testing.T, data []byte) {
		sel, samples := decodeFuzzInput(data)

		newDet := func(tap func(*core.STS)) *Detector {
			cfg := streamCfg(fx.Config)
			cfg.Tap = tap
			d, err := NewDetector(fx.Model, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return d
		}

		var wholeSTS []core.STS
		whole := newDet(func(s *core.STS) {
			c := *s
			c.PeakFreqs = append([]float64(nil), s.PeakFreqs...)
			wholeSTS = append(wholeSTS, c)
		})
		whole.Feed(samples)

		var chunkedSTS []core.STS
		chunked := newDet(func(s *core.STS) {
			c := *s
			c.PeakFreqs = append([]float64(nil), s.PeakFreqs...)
			chunkedSTS = append(chunkedSTS, c)
		})
		// Chunk sizes derived from the selector byte, including empty
		// chunks every few iterations.
		rest := samples
		for i := 0; len(rest) > 0; i++ {
			n := (int(sel)+i*i)%257 + 1
			if i%5 == 4 {
				chunked.Feed(nil) // empty chunks must be no-ops
			}
			if n > len(rest) {
				n = len(rest)
			}
			chunked.Feed(rest[:n])
			rest = rest[n:]
		}

		ws := fx.Config.STFT.WindowSize
		for _, d := range []*Detector{whole, chunked} {
			if d.Buffered() >= ws {
				t.Fatalf("buffer grew to %d samples (window %d)", d.Buffered(), ws)
			}
		}
		if whole.Windows() != chunked.Windows() {
			t.Fatalf("windows: whole %d, chunked %d", whole.Windows(), chunked.Windows())
		}
		if whole.Sanitized() != chunked.Sanitized() {
			t.Fatalf("sanitized: whole %d, chunked %d", whole.Sanitized(), chunked.Sanitized())
		}
		if len(wholeSTS) != len(chunkedSTS) {
			t.Fatalf("tap: whole %d STSs, chunked %d", len(wholeSTS), len(chunkedSTS))
		}
		for w := range wholeSTS {
			a, b := &wholeSTS[w], &chunkedSTS[w]
			// Bit-level comparison: extreme inputs can push Inf/NaN through
			// the FFT, and both paths must produce the same bit pattern.
			if a.TimeSec != b.TimeSec || math.Float64bits(a.Energy) != math.Float64bits(b.Energy) {
				t.Fatalf("window %d: whole %+v chunked %+v", w, a, b)
			}
			if !sameBits(a.PeakFreqs, b.PeakFreqs) {
				t.Fatalf("window %d peaks: whole %v chunked %v", w, a.PeakFreqs, b.PeakFreqs)
			}
		}
		wm, cm := whole.Monitor(), chunked.Monitor()
		if len(wm.Reports) != len(cm.Reports) {
			t.Fatalf("reports: whole %d, chunked %d", len(wm.Reports), len(cm.Reports))
		}
		for w := range wm.Outcomes {
			if wm.Outcomes[w] != cm.Outcomes[w] {
				t.Fatalf("outcome %d: whole %+v chunked %+v", w, wm.Outcomes[w], cm.Outcomes[w])
			}
		}
	})
}

// sameBits compares float slices bit for bit (NaN equals NaN).
func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
