package stream

import (
	"testing"

	"eddie/internal/core"
	"eddie/internal/dsp"
	"eddie/internal/metrics"
	"eddie/internal/pipeline"
	"eddie/internal/pipeline/pipetest"
)

// TestDenoiseDisabledNoOverhead pins the disabled path: a detector built
// with the zero Denoise config carries no denoiser, emits verdicts
// bit-identical to one where the field was never considered, and its
// steady-state sample path still performs zero heap allocations.
func TestDenoiseDisabledNoOverhead(t *testing.T) {
	f := pipetest.Fixture(t)
	run, err := pipeline.CollectRun(f.W, f.Machine, f.Config, 810, nil)
	if err != nil {
		t.Fatal(err)
	}
	clean := dsp.Detrend(run.Signal)

	mk := func(c Config) *Detector {
		d, err := NewDetector(f.Model, c)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	base := streamCfg(f.Config)
	base.DisableDCBlock = true
	explicit := base
	explicit.Denoise = dsp.DenoiseConfig{} // spelled out, still disabled
	d1, d2 := mk(base), mk(explicit)
	if d1.Denoiser() != nil || d2.Denoiser() != nil {
		t.Fatal("disabled config built a denoiser")
	}
	d1.Feed(clean)
	d2.Feed(clean)
	m1, m2 := d1.Monitor(), d2.Monitor()
	if len(m1.Outcomes) != len(m2.Outcomes) || len(m1.Reports) != len(m2.Reports) {
		t.Fatalf("disabled-denoise verdict drift: %d/%d outcomes, %d/%d reports",
			len(m1.Outcomes), len(m2.Outcomes), len(m1.Reports), len(m2.Reports))
	}
	for w := range m1.Outcomes {
		a, b := m1.Outcomes[w], m2.Outcomes[w]
		if a.Region != b.Region || a.Rejected != b.Rejected || a.Flagged != b.Flagged {
			t.Fatalf("window %d: outcome %+v vs %+v", w, a, b)
		}
	}

	// Steady-state allocation guard, with the metrics layer attached the
	// way a fleet session runs it.
	d := mk(Config{
		STFT:              f.Config.STFT,
		Peaks:             f.Config.Peaks,
		Monitor:           core.DefaultMonitorConfig(),
		DisableDCBlock:    true,
		MaxHistoryWindows: 256,
		Metrics:           metrics.NewDetector(),
	})
	const chunk = 1024
	chunks := make([][]float64, 0, len(clean)/chunk)
	for i := 0; i+chunk <= len(clean); i += chunk {
		chunks = append(chunks, clean[i:i+chunk])
	}
	if len(chunks) < 40 {
		t.Fatalf("capture too short: %d chunks", len(chunks))
	}
	// Warm up past ring growth and the history-trim onset; align so the
	// capture-cycling splice resolves before the measurement window.
	i := 0
	for ; i < 300 || i%len(chunks) != 6; i++ {
		d.Feed(chunks[i%len(chunks)])
	}
	before := len(d.Monitor().Reports)
	avg := testing.AllocsPerRun(30, func() {
		d.Feed(chunks[i%len(chunks)])
		i++
	})
	if n := len(d.Monitor().Reports) - before; n != 0 {
		t.Skipf("measurement window fired %d reports; no report-free stretch", n)
	}
	if avg != 0 {
		t.Errorf("disabled-denoise steady state allocates %.3f allocs/op, want 0", avg)
	}
}

// TestDenoiseEnabledDetector exercises the enabled stage end to end on a
// streaming detector: the denoiser is live, refactors on schedule, and
// publishes rank/energy/refactor instruments to the metrics layer.
func TestDenoiseEnabledDetector(t *testing.T) {
	f := pipetest.Fixture(t)
	run, err := pipeline.CollectRun(f.W, f.Machine, f.Config, 820, nil)
	if err != nil {
		t.Fatal(err)
	}
	dm := metrics.NewDetector()
	cfg := streamCfg(f.Config)
	cfg.DisableDCBlock = true
	cfg.Denoise = dsp.DenoiseConfig{Rank: 5, Block: 16, Stride: 4, Seed: 3}
	cfg.Metrics = dm
	d, err := NewDetector(f.Model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Denoiser() == nil {
		t.Fatal("enabled config did not build a denoiser")
	}
	d.Feed(dsp.Detrend(run.Signal))
	dn := d.Denoiser()
	if dn.Windows() != int64(d.Windows()) {
		t.Fatalf("denoiser saw %d windows, detector %d", dn.Windows(), d.Windows())
	}
	if dn.Refactors() < 2 {
		t.Fatalf("denoiser refactored %d times over %d windows", dn.Refactors(), d.Windows())
	}
	if got := dm.DenoiseRefactors.Value(); got != dn.Refactors() {
		t.Errorf("metrics refactor counter %d, denoiser %d", got, dn.Refactors())
	}
	if r := dm.DenoiseRank.Value(); r < 1 || r > 5 {
		t.Errorf("denoise_rank gauge %d outside [1, 5]", r)
	}
	if p := dm.DenoiseEnergyPct.Value(); p < 1 || p > 100 {
		t.Errorf("denoise_energy_pct gauge %d outside [1, 100]", p)
	}
}
