package stream

import (
	"testing"

	"eddie/internal/core"
	"eddie/internal/dsp"
	"eddie/internal/inject"
	"eddie/internal/obs"
	"eddie/internal/pipeline"
	"eddie/internal/pipeline/pipetest"
)

// TestDifferentialProvenance extends the offline-vs-stream differential
// contract to the decision provenance: with the DC blocker disabled on a
// pre-detrended capture, the flight-recorder records produced by the
// offline monitor and by the streaming detector must be identical field
// for field — same regions, group sizes, per-rank K-S statistics,
// transitions and alarm dumps. The provenance is derived from the same
// decision arithmetic on both paths, so any divergence means capture
// has drifted from (or worse, influenced) the decisions themselves.
func TestDifferentialProvenance(t *testing.T) {
	f := pipetest.Fixture(t)
	injector := &inject.InLoop{
		Header: f.Machine.Nests[0].Header, Instrs: 8, MemOps: 4,
		Contamination: 0.5, Seed: 3,
	}
	for _, tc := range []struct {
		name string
		inj  inject.Injector
	}{
		{"clean", nil},
		{"injected", injector},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run, err := pipeline.CollectRun(f.W, f.Machine, f.Config, 800, tc.inj)
			if err != nil {
				t.Fatal(err)
			}
			detrended := dsp.Detrend(run.Signal)
			depth := len(run.STS) + 1 // keep every record

			// Offline path.
			offFlight := obs.NewFlightRecorder(depth)
			mc := core.DefaultMonitorConfig()
			mc.Flight = offFlight
			if _, err := pipeline.Monitor(f.Model, run.STS, mc); err != nil {
				t.Fatal(err)
			}

			// Streaming path: same samples in awkward chunk sizes.
			strFlight := obs.NewFlightRecorder(depth)
			cfg := streamCfg(f.Config)
			cfg.DisableDCBlock = true
			cfg.Flight = strFlight
			d, err := NewDetector(f.Model, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < len(detrended); {
				n := 251 + i%509
				if i+n > len(detrended) {
					n = len(detrended) - i
				}
				d.Feed(detrended[i : i+n])
				i += n
			}

			// The offline reduction may see one extra hop-unaligned tail
			// window; compare the common prefix.
			n := d.Windows()
			offRecs, strRecs := offFlight.Recent(), strFlight.Recent()
			if len(strRecs) != n {
				t.Fatalf("stream flight has %d records, windows %d", len(strRecs), n)
			}
			if len(offRecs) < n {
				t.Fatalf("offline flight has %d records, want >= %d", len(offRecs), n)
			}
			for w := 0; w < n; w++ {
				if !recordsEqual(&offRecs[w], &strRecs[w]) {
					t.Fatalf("window %d provenance diverged:\n offline %+v\n stream  %+v",
						w, offRecs[w], strRecs[w])
				}
			}

			offAlarm, strAlarm := offFlight.LastAlarm(), strFlight.LastAlarm()
			// Ignore an offline alarm fired on the tail window the stream
			// never saw.
			if offAlarm != nil && offAlarm.Window >= n {
				offAlarm = nil
			}
			switch {
			case (offAlarm == nil) != (strAlarm == nil):
				t.Fatalf("alarm presence diverged: offline %v, stream %v", offAlarm, strAlarm)
			case offAlarm != nil:
				if offAlarm.Window != strAlarm.Window || offAlarm.Region != strAlarm.Region ||
					offAlarm.Streak != strAlarm.Streak || offAlarm.TimeSec != strAlarm.TimeSec ||
					!intsEqual(offAlarm.RejectedRanks, strAlarm.RejectedRanks) {
					t.Fatalf("alarm diverged:\n offline %+v\n stream  %+v", offAlarm, strAlarm)
				}
				if offFlight.Alarms() != strFlight.Alarms() {
					t.Fatalf("alarm counts diverged: offline %d, stream %d",
						offFlight.Alarms(), strFlight.Alarms())
				}
			}
		})
	}
}

// recordsEqual compares two window records bit for bit (floats compared
// exactly: both paths run identical arithmetic).
func recordsEqual(a, b *obs.WindowRecord) bool {
	if a.Window != b.Window || a.TimeSec != b.TimeSec || a.Region != b.Region ||
		a.Tested != b.Tested || a.GroupSize != b.GroupSize || a.Burst != b.Burst ||
		a.CAlpha != b.CAlpha || a.BestMode != b.BestMode || a.RejFrac != b.RejFrac ||
		a.CountOut != b.CountOut || a.Rejected != b.Rejected || a.Flagged != b.Flagged ||
		a.Streak != b.Streak || a.Transition != b.Transition || a.SwitchTo != b.SwitchTo ||
		a.Reported != b.Reported {
		return false
	}
	if len(a.Ranks) != len(b.Ranks) || !intsEqual(a.RejectedRanks, b.RejectedRanks) {
		return false
	}
	for i := range a.Ranks {
		if a.Ranks[i] != b.Ranks[i] {
			return false
		}
	}
	return true
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
