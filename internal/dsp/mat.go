package dsp

import "fmt"

// Mat is a dense column-major matrix: element (i,j) lives at
// Data[i+j*Rows]. Column-major is the natural layout for the spectrogram
// kernels — a spectrogram block stores one STFT window per column, so
// appending a window, projecting a window onto a basis and the
// column-sweep inner loops of QR and the randomized SVD all walk
// contiguous memory.
//
// All kernels write into caller-provided destinations and reuse backing
// arrays via Reshape, so a steady-state caller (the streaming denoiser
// refactoring every stride windows) performs zero allocations.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat allocates an m×n zero matrix.
func NewMat(rows, cols int) *Mat {
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Reshape resizes m to rows×cols, reusing the backing array when it is
// large enough (contents become undefined) and growing it otherwise.
func (m *Mat) Reshape(rows, cols int) {
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	}
	m.Rows, m.Cols, m.Data = rows, cols, m.Data[:n]
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i+j*m.Rows] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i+j*m.Rows] = v }

// Col returns column j as a slice aliasing the matrix storage.
func (m *Mat) Col(j int) []float64 {
	return m.Data[j*m.Rows : (j+1)*m.Rows : (j+1)*m.Rows]
}

// CopyFrom makes m a same-shape copy of a (reusing m's backing array).
func (m *Mat) CopyFrom(a *Mat) {
	m.Reshape(a.Rows, a.Cols)
	copy(m.Data, a.Data)
}

// Zero clears every element.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// FrobeniusSq returns the squared Frobenius norm, the total energy the
// denoiser's rank/energy accounting is measured against.
func (m *Mat) FrobeniusSq() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return s
}

// MulInto computes dst = a·b. dst is reshaped to a.Rows×b.Cols; it must
// not alias a or b. The kernel runs column-major axpy sweeps: column j of
// dst accumulates b[k,j] times column k of a, so every inner loop walks
// contiguous memory.
func MulInto(dst, a, b *Mat) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("dsp: MulInto shape mismatch: %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst.Reshape(a.Rows, b.Cols)
	for j := 0; j < b.Cols; j++ {
		dj := dst.Col(j)
		for i := range dj {
			dj[i] = 0
		}
		bj := b.Col(j)
		for k, bkj := range bj {
			if bkj == 0 {
				continue
			}
			ak := a.Col(k)
			for i, aik := range ak {
				dj[i] += bkj * aik
			}
		}
	}
}

// MulATBInto computes dst = aᵀ·b. dst is reshaped to a.Cols×b.Cols; it
// must not alias a or b. Each element is a dot product of two columns —
// both contiguous in column-major storage.
func MulATBInto(dst, a, b *Mat) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("dsp: MulATBInto shape mismatch: (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst.Reshape(a.Cols, b.Cols)
	for j := 0; j < b.Cols; j++ {
		bj := b.Col(j)
		dj := dst.Col(j)
		for i := 0; i < a.Cols; i++ {
			dj[i] = dot(a.Col(i), bj)
		}
	}
}

// MulVecInto computes dst = a·x for a vector x of length a.Cols; dst must
// have length a.Rows and not alias x.
func MulVecInto(dst []float64, a *Mat, x []float64) {
	if len(x) != a.Cols || len(dst) != a.Rows {
		panic(fmt.Sprintf("dsp: MulVecInto shape mismatch: %dx%d · %d -> %d", a.Rows, a.Cols, len(x), len(dst)))
	}
	for i := range dst {
		dst[i] = 0
	}
	for k, xk := range x {
		if xk == 0 {
			continue
		}
		ak := a.Col(k)
		for i, aik := range ak {
			dst[i] += xk * aik
		}
	}
}

// MulTVecInto computes dst = aᵀ·x for a vector x of length a.Rows; dst
// must have length a.Cols and not alias x.
func MulTVecInto(dst []float64, a *Mat, x []float64) {
	if len(x) != a.Rows || len(dst) != a.Cols {
		panic(fmt.Sprintf("dsp: MulTVecInto shape mismatch: (%dx%d)ᵀ · %d -> %d", a.Rows, a.Cols, len(x), len(dst)))
	}
	for j := range dst {
		dst[j] = dot(a.Col(j), x)
	}
}

// dot returns the inner product of two equal-length vectors.
func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}
