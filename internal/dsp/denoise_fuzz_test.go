package dsp

import (
	"encoding/binary"
	"math"
	"testing"
)

// decodeDenoiseFuzz maps raw fuzz bytes to a denoiser shape and a cell
// stream. The first bytes pick bins/rank/block/stride so tiny blocks,
// rank ≥ min(bins, block) and degenerate shapes all occur; the rest
// become float64 bit patterns, so NaNs, ±Inf, denormals and huge values
// arrive naturally. Streams shorter than the window count leave zero
// columns — the rank-deficient case.
func decodeDenoiseFuzz(data []byte) (cfg DenoiseConfig, bins int, cells []float64) {
	if len(data) < 4 {
		return DenoiseConfig{}, 0, nil
	}
	bins = 1 + int(data[0])%96
	cfg = DenoiseConfig{
		Rank:  1 + int(data[1])%140, // often ≥ min(bins, block): must clamp
		Block: 2 + int(data[2])%40,
		Seed:  uint64(data[0]) + 3,
	}
	cfg.Stride = 1 + int(data[3])%cfg.Block
	data = data[4:]
	n := len(data) / 8
	const maxCells = 8192
	if n > maxCells {
		n = maxCells
	}
	cells = make([]float64, n)
	for i := range cells {
		cells[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return cfg, bins, cells
}

// FuzzDenoiser pushes arbitrary spectrogram content through arbitrary
// denoiser shapes and asserts the stage's safety contract: never
// panics, always emits finite non-negative spectra, counts every
// non-finite cell it sanitized, and is a pure function of its input
// (two identical denoisers stay bit-identical cell for cell). This is
// the dsp-layer analogue of stream.FuzzDetectorFeed.
func FuzzDenoiser(f *testing.F) {
	f.Add([]byte{})                   // no-op
	f.Add([]byte{3, 1, 0, 0})         // tiny block (2), rank 2, no cells
	f.Add([]byte{0, 139, 0, 1, 1, 2}) // bins 1, huge rank, stray bytes
	// Hostile cells: NaN, ±Inf, denormal, huge, negative, signed zero.
	hostile := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 5e-324, 1e308, -1, math.Copysign(0, -1), 2}
	hb := []byte{7, 5, 2, 1}
	for _, v := range hostile {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		hb = append(hb, b[:]...)
	}
	f.Add(hb)
	// Enough clean ramp cells to fill several blocks of a small shape.
	ramp := []byte{15, 2, 6, 3}
	for i := 0; i < 400; i++ {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(float64(i%23)))
		ramp = append(ramp, b[:]...)
	}
	f.Add(ramp)

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, bins, cells := decodeDenoiseFuzz(data)
		if bins == 0 {
			return
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("decoded config invalid: %v", err)
		}
		mk := func() *Denoiser {
			d, err := NewDenoiser(cfg, bins)
			if err != nil {
				t.Fatalf("NewDenoiser(%+v, %d): %v", cfg, bins, err)
			}
			return d
		}
		d1, d2 := mk(), mk()
		// Enough windows to fill the block and refactor several times even
		// when the cell stream is short — the tail windows are all-zero
		// columns.
		windows := 3*cfg.Block + 2
		if have := len(cells) / bins; have > windows {
			windows = have
		}
		const maxWindows = 512
		if windows > maxWindows {
			windows = maxWindows
		}
		b1 := make([]float64, bins)
		b2 := make([]float64, bins)
		for w := 0; w < windows; w++ {
			for i := range b1 {
				b1[i] = 0
				if idx := w*bins + i; idx < len(cells) {
					b1[i] = cells[idx]
				}
			}
			copy(b2, b1)
			d1.Push(b1)
			d2.Push(b2)
			for i, v := range b1 {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					t.Fatalf("window %d bin %d: non-finite or negative output %v (cfg %+v bins %d)", w, i, v, cfg, bins)
				}
			}
			if !sameBitsSlice(b1, b2) {
				t.Fatalf("window %d: twin denoisers diverged (cfg %+v bins %d)", w, cfg, bins)
			}
		}
		if d1.Sanitized() != d2.Sanitized() {
			t.Fatalf("sanitized counts diverged: %d vs %d", d1.Sanitized(), d2.Sanitized())
		}
		if d1.Refactors() != d2.Refactors() {
			t.Fatalf("refactor counts diverged: %d vs %d", d1.Refactors(), d2.Refactors())
		}
		if r := d1.EnergyRatio(); math.IsNaN(r) || r < 0 || r > 1 {
			t.Fatalf("energy ratio %v outside [0,1]", r)
		}
	})
}
