package dsp

import (
	"math"
	"testing"
)

// naiveMul is the reference O(mnk) product used to pin the kernels.
func naiveMul(a, b *Mat) *Mat {
	out := NewMat(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// randMat returns a deterministic pseudo-random matrix.
func randMat(rows, cols int, seed uint64) *Mat {
	m := NewMat(rows, cols)
	fillGaussian(m.Data, seed)
	return m
}

func matsClose(t *testing.T, name string, got, want *Mat, tol float64) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > tol {
			t.Fatalf("%s: element %d: got %v want %v", name, i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulKernels(t *testing.T) {
	for _, dims := range [][3]int{{1, 1, 1}, {3, 2, 4}, {7, 5, 3}, {16, 8, 16}, {33, 12, 9}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randMat(m, k, 11)
		b := randMat(k, n, 22)

		var dst Mat
		MulInto(&dst, a, b)
		matsClose(t, "MulInto", &dst, naiveMul(a, b), 1e-12)

		at := NewMat(k, m)
		for i := 0; i < m; i++ {
			for j := 0; j < k; j++ {
				at.Set(j, i, a.At(i, j))
			}
		}
		bigA := randMat(m, k, 33)
		bigB := randMat(m, n, 44)
		var atb Mat
		MulATBInto(&atb, bigA, bigB)
		bigAT := NewMat(k, m)
		for i := 0; i < m; i++ {
			for j := 0; j < k; j++ {
				bigAT.Set(j, i, bigA.At(i, j))
			}
		}
		matsClose(t, "MulATBInto", &atb, naiveMul(bigAT, bigB), 1e-12)

		var abt Mat
		c := randMat(m, k, 55)
		d := randMat(n, k, 66)
		mulABTInto(&abt, c, d)
		dt := NewMat(k, n)
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				dt.Set(j, i, d.At(i, j))
			}
		}
		matsClose(t, "mulABTInto", &abt, naiveMul(c, dt), 1e-12)
	}
}

func TestMatVecKernels(t *testing.T) {
	a := randMat(9, 5, 7)
	x := make([]float64, 5)
	fillGaussian(x, 8)
	y := make([]float64, 9)
	MulVecInto(y, a, x)
	for i := 0; i < 9; i++ {
		var s float64
		for j := 0; j < 5; j++ {
			s += a.At(i, j) * x[j]
		}
		if math.Abs(y[i]-s) > 1e-12 {
			t.Fatalf("MulVecInto[%d]: got %v want %v", i, y[i], s)
		}
	}
	z := make([]float64, 5)
	big := make([]float64, 9)
	fillGaussian(big, 9)
	MulTVecInto(z, a, big)
	for j := 0; j < 5; j++ {
		var s float64
		for i := 0; i < 9; i++ {
			s += a.At(i, j) * big[i]
		}
		if math.Abs(z[j]-s) > 1e-12 {
			t.Fatalf("MulTVecInto[%d]: got %v want %v", j, z[j], s)
		}
	}
}

// TestMatReshapeReuse pins the workspace-reuse contract: shrinking and
// re-growing within capacity keeps the backing array.
func TestMatReshapeReuse(t *testing.T) {
	m := NewMat(8, 8)
	base := &m.Data[0]
	m.Reshape(4, 3)
	if &m.Data[0] != base {
		t.Fatal("Reshape within capacity reallocated")
	}
	if m.Rows != 4 || m.Cols != 3 || len(m.Data) != 12 {
		t.Fatalf("Reshape shape wrong: %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	m.Reshape(8, 8)
	if &m.Data[0] != base {
		t.Fatal("Reshape back to capacity reallocated")
	}
	m.Reshape(9, 9)
	if len(m.Data) != 81 {
		t.Fatalf("grown Reshape len %d", len(m.Data))
	}
}

// TestMatMulZeroAlloc asserts the kernels allocate nothing once their
// destinations have reached steady-state capacity — the property the
// streaming denoiser's refactor loop depends on.
func TestMatMulZeroAlloc(t *testing.T) {
	a := randMat(64, 16, 1)
	b := randMat(16, 24, 2)
	var dst, atb Mat
	MulInto(&dst, a, b)
	MulATBInto(&atb, a, randMat(64, 8, 3))
	c := randMat(64, 8, 3)
	avg := testing.AllocsPerRun(50, func() {
		MulInto(&dst, a, b)
		MulATBInto(&atb, a, c)
	})
	if avg != 0 {
		t.Errorf("warm matrix kernels allocate %.2f allocs/op, want 0", avg)
	}
}
