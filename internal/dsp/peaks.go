package dsp

import "math"

// Peak is one spectral peak extracted from a Short-Term Spectrum.
type Peak struct {
	// Bin is the index of the peak in the one-sided power spectrum.
	Bin int
	// Frequency is the peak position in Hz.
	Frequency float64
	// Power is the total power attributed to the peak (the local maximum
	// bin plus its immediate shoulders).
	Power float64
	// Fraction is Power divided by the frame's total (non-DC) energy.
	Fraction float64
}

// PeakConfig controls spectral peak extraction.
type PeakConfig struct {
	// MinEnergyFraction is the minimum fraction of the frame's total
	// energy a local maximum must carry to count as a peak. The paper
	// defines a peak as a frequency holding at least 1% of the window's
	// signal energy.
	MinEnergyFraction float64
	// MaxPeaks caps the number of peaks returned (strongest first).
	// Zero means no cap.
	MaxPeaks int
	// MinBin excludes bins below this index (DC and near-DC leakage).
	// If zero, bin 1 is the first candidate (DC itself is always skipped).
	MinBin int
}

// DefaultPeakConfig mirrors the paper: peaks are frequencies holding >=1%
// of the window's energy, with no cap on the peak count.
func DefaultPeakConfig() PeakConfig {
	return PeakConfig{MinEnergyFraction: 0.01}
}

// FindPeaks extracts the spectral peaks of one STFT frame, strongest first.
// binHz converts a bin index to a frequency; STFTConfig.BinFrequency is the
// usual choice.
func FindPeaks(frame *Frame, cfg PeakConfig, binHz func(int) float64) []Peak {
	return FindPeaksInto(nil, frame, cfg, binHz)
}

// FindPeaksInto is FindPeaks appending into dst's backing array (pass
// dst[:0] of a reused scratch slice): the streaming detector extracts
// peaks every hop, and per-window result allocations would dominate its
// steady-state profile. The returned ordering is identical to
// FindPeaks: the comparison (power descending, bin ascending) is a
// total order, so every correct sort produces the same sequence.
func FindPeaksInto(dst []Peak, frame *Frame, cfg PeakConfig, binHz func(int) float64) []Peak {
	minBin := cfg.MinBin
	if minBin < 1 {
		minBin = 1
	}
	p := frame.Power
	// Normalize by the energy of the candidate band only. Bins below
	// MinBin hold residual DC and drift leakage whose level depends on
	// unrelated parts of the signal (e.g. a high-power episode elsewhere
	// in the run shifts the global mean); letting them into the
	// denominator would suppress legitimate peaks.
	var total float64
	for i := minBin; i < len(p); i++ {
		total += p[i]
	}
	if total <= 0 {
		return dst[:0]
	}
	peaks := dst[:0]
	for i := minBin; i < len(p); i++ {
		left := math.Inf(-1)
		if i > 0 {
			left = p[i-1]
		}
		right := math.Inf(-1)
		if i+1 < len(p) {
			right = p[i+1]
		}
		if p[i] < left || p[i] <= right {
			continue // not a local maximum
		}
		// Attribute the shoulders' power to the peak: a sinusoid windowed
		// by a Hann taper spreads across ~3 bins.
		power := p[i]
		if i > minBin {
			power += p[i-1]
		}
		if i+1 < len(p) {
			power += p[i+1]
		}
		frac := power / total
		if frac < cfg.MinEnergyFraction {
			continue
		}
		peaks = append(peaks, Peak{
			Bin:       i,
			Frequency: binHz(i),
			Power:     power,
			Fraction:  frac,
		})
	}
	sortPeaks(peaks)
	if cfg.MaxPeaks > 0 && len(peaks) > cfg.MaxPeaks {
		peaks = peaks[:cfg.MaxPeaks]
	}
	return peaks
}

// sortPeaks orders peaks by power descending, breaking ties by bin
// ascending — the same total order sort.Slice used to apply, without
// the per-call closure and reflection swapper. Peak counts are small
// (the 1%-of-energy rule admits at most 100 peaks), so insertion sort
// is both allocation-free and fast.
func sortPeaks(peaks []Peak) {
	for i := 1; i < len(peaks); i++ {
		v := peaks[i]
		j := i - 1
		for j >= 0 && (peaks[j].Power < v.Power ||
			(peaks[j].Power == v.Power && peaks[j].Bin > v.Bin)) {
			peaks[j+1] = peaks[j]
			j--
		}
		peaks[j+1] = v
	}
}

// InterpolatePeakFrequency refines a peak position by parabolic
// interpolation over the log-power of the peak bin and its neighbours.
// It returns the refined frequency; if interpolation is impossible (edge
// bins or non-positive powers) the bin-center frequency is returned.
func InterpolatePeakFrequency(frame *Frame, bin int, binWidthHz float64) float64 {
	p := frame.Power
	center := float64(bin) * binWidthHz
	if bin <= 0 || bin+1 >= len(p) {
		return center
	}
	a, b, c := p[bin-1], p[bin], p[bin+1]
	if a <= 0 || b <= 0 || c <= 0 {
		return center
	}
	la, lb, lc := math.Log(a), math.Log(b), math.Log(c)
	den := la - 2*lb + lc
	if den == 0 {
		return center
	}
	delta := 0.5 * (la - lc) / den
	if delta < -0.5 {
		delta = -0.5
	} else if delta > 0.5 {
		delta = 0.5
	}
	return (float64(bin) + delta) * binWidthHz
}

// DB converts a power ratio to decibels. Non-positive inputs map to -inf.
func DB(power float64) float64 {
	if power <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(power)
}
