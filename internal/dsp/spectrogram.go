package dsp

import (
	"fmt"
	"math"
	"strings"
)

// Spectrogram is a time-frequency power matrix built from STFT frames.
type Spectrogram struct {
	// Frames are the underlying STFT frames.
	Frames []Frame
	// Cfg is the STFT configuration the frames were computed with.
	Cfg STFTConfig
}

// NewSpectrogram computes the spectrogram of a signal.
func NewSpectrogram(signal []float64, cfg STFTConfig) (*Spectrogram, error) {
	frames, err := STFT(signal, cfg)
	if err != nil {
		return nil, err
	}
	return &Spectrogram{Frames: frames, Cfg: cfg}, nil
}

// shades orders the ASCII ramp used by Render, darkest last.
var shades = []byte(" .:-=+*#%@")

// Render draws the spectrogram as ASCII art: time flows left to right,
// frequency bottom to top, intensity in dB mapped onto a character ramp.
// rows and cols bound the output size (the matrix is max-pooled down to
// fit); minBin skips the DC/drift bins.
func (s *Spectrogram) Render(rows, cols, minBin int) string {
	if len(s.Frames) == 0 || rows <= 0 || cols <= 0 {
		return "(empty spectrogram)\n"
	}
	nBins := len(s.Frames[0].Power)
	if minBin < 0 {
		minBin = 0
	}
	if minBin >= nBins {
		minBin = nBins - 1
	}
	useBins := nBins - minBin
	if rows > useBins {
		rows = useBins
	}
	if cols > len(s.Frames) {
		cols = len(s.Frames)
	}

	// Max-pool into the output grid, in dB.
	grid := make([][]float64, rows)
	lo, hi := math.Inf(1), math.Inf(-1)
	for r := 0; r < rows; r++ {
		grid[r] = make([]float64, cols)
		for c := 0; c < cols; c++ {
			f0 := c * len(s.Frames) / cols
			f1 := (c + 1) * len(s.Frames) / cols
			b0 := minBin + r*useBins/rows
			b1 := minBin + (r+1)*useBins/rows
			peak := 0.0
			for f := f0; f < f1; f++ {
				p := s.Frames[f].Power
				for b := b0; b < b1 && b < len(p); b++ {
					if p[b] > peak {
						peak = p[b]
					}
				}
			}
			db := DB(peak)
			grid[r][c] = db
			if !math.IsInf(db, -1) {
				if db < lo {
					lo = db
				}
				if db > hi {
					hi = db
				}
			}
		}
	}
	if math.IsInf(lo, 1) || hi <= lo {
		lo, hi = 0, 1
	}
	// Compress the dynamic range: show the top 50 dB.
	if hi-lo > 50 {
		lo = hi - 50
	}

	var sb strings.Builder
	for r := rows - 1; r >= 0; r-- {
		freq := s.Cfg.BinFrequency(minBin + r*useBins/rows)
		fmt.Fprintf(&sb, "%8.0fkHz |", freq/1e3)
		for c := 0; c < cols; c++ {
			v := (grid[r][c] - lo) / (hi - lo)
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			idx := int(v * float64(len(shades)-1))
			sb.WriteByte(shades[idx])
		}
		sb.WriteByte('\n')
	}
	dur := float64(len(s.Frames)) * s.Cfg.HopDuration() * 1e3
	fmt.Fprintf(&sb, "%8s     +%s\n", "", strings.Repeat("-", cols))
	fmt.Fprintf(&sb, "%8s      0 ms %s %.1f ms\n", "", strings.Repeat(" ", max(0, cols-14)), dur)
	return sb.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
