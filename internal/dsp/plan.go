package dsp

import (
	"math"
	"math/cmplx"
	"sync"
)

// This file implements planned transforms: per-size precomputed twiddle
// tables, bit-reversal permutations and Bluestein convolution kernels,
// cached process-wide so repeated transforms of the same size (the STFT
// hot loop, parallel run collection) pay the trigonometry exactly once.
//
// Plans are immutable after construction and therefore safe for
// concurrent use from any number of goroutines. Mutable per-call scratch
// is either caller-provided (RFFTPlan) or drawn from an internal
// sync.Pool (Bluestein convolution buffers).

// FFTPlan holds the precomputed tables for complex transforms of one size.
// A plan is immutable and safe for concurrent use.
type FFTPlan struct {
	n int
	// perm is the bit-reversal permutation (power-of-two sizes only).
	perm []int32
	// twiddle[k] = exp(-2*pi*i*k/n) for k in [0, n/2). Butterfly stages of
	// length L read it with stride n/L; the inverse transform conjugates
	// on the fly. Power-of-two sizes only.
	twiddle []complex128
	// bs holds the Bluestein kernel for non-power-of-two sizes.
	bs *bluesteinPlan
}

// bluesteinPlan is the precomputed chirp-z kernel for one non-power-of-two
// size: DFT_n(x) re-expressed as a circular convolution of power-of-two
// size m >= 2n-1.
type bluesteinPlan struct {
	m int
	// w[k] = exp(-i*pi*k^2/n) is the forward chirp.
	w []complex128
	// bhat is the forward FFT of the padded chirp-conjugate sequence,
	// shared by every convolution of this size.
	bhat []complex128
	// mp is the power-of-two sub-plan of size m.
	mp *FFTPlan
	// scratch pools *[]complex128 convolution buffers of length m.
	scratch sync.Pool
}

// planCache maps transform size -> *FFTPlan. Misses construct a candidate
// and publish it with LoadOrStore, so concurrent first use of one size
// settles on a single shared plan.
var planCache sync.Map

// PlanFFT returns the cached transform plan for size n (n >= 1), building
// it on first use. The returned plan is shared and concurrency-safe.
func PlanFFT(n int) *FFTPlan {
	if v, ok := planCache.Load(n); ok {
		return v.(*FFTPlan)
	}
	v, _ := planCache.LoadOrStore(n, newFFTPlan(n))
	return v.(*FFTPlan)
}

func newFFTPlan(n int) *FFTPlan {
	p := &FFTPlan{n: n}
	if n&(n-1) == 0 {
		p.perm = bitReversal(n)
		p.twiddle = forwardTwiddles(n)
		return p
	}
	p.bs = newBluesteinPlan(n)
	return p
}

// bitReversal returns the bit-reversal permutation for a power-of-two n.
func bitReversal(n int) []int32 {
	perm := make([]int32, n)
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		perm[i] = int32(j)
	}
	return perm
}

// forwardTwiddles returns w[k] = exp(-2*pi*i*k/n) for k in [0, n/2). Each
// factor is computed directly from its angle (no running product), so the
// table carries no accumulated rounding error.
func forwardTwiddles(n int) []complex128 {
	half := n / 2
	tw := make([]complex128, half)
	for k := 0; k < half; k++ {
		ang := -2 * math.Pi * float64(k) / float64(n)
		s, c := math.Sincos(ang)
		tw[k] = complex(c, s)
	}
	return tw
}

func newBluesteinPlan(n int) *bluesteinPlan {
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	bp := &bluesteinPlan{m: m, mp: PlanFFT(m)}
	bp.w = make([]complex128, n)
	for k := 0; k < n; k++ {
		// k^2 mod 2n keeps the angle argument small for large k.
		kk := (int64(k) * int64(k)) % int64(2*n)
		ang := -math.Pi * float64(kk) / float64(n)
		s, c := math.Sincos(ang)
		bp.w[k] = complex(c, s)
	}
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		b[k] = cmplx.Conj(bp.w[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(bp.w[k])
	}
	bp.mp.forwardInPlace(b)
	bp.bhat = b
	bp.scratch.New = func() any {
		s := make([]complex128, m)
		return &s
	}
	return bp
}

// Size returns the transform length the plan was built for.
func (p *FFTPlan) Size() int { return p.n }

// Forward computes the DFT of src into dst (dst and src may alias; both
// must have length Size()).
func (p *FFTPlan) Forward(dst, src []complex128) {
	p.transform(dst, src, false)
}

// Inverse computes the inverse DFT of src into dst, normalized by 1/n.
func (p *FFTPlan) Inverse(dst, src []complex128) {
	p.transform(dst, src, true)
	inv := complex(1/float64(p.n), 0)
	for i := range dst {
		dst[i] *= inv
	}
}

func (p *FFTPlan) transform(dst, src []complex128, inverse bool) {
	if p.bs != nil {
		p.bs.transform(dst, src, inverse)
		return
	}
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	p.radix2InPlace(dst, inverse)
}

// forwardInPlace is the in-place forward transform used internally by the
// Bluestein kernel (power-of-two plans only).
func (p *FFTPlan) forwardInPlace(x []complex128) { p.radix2InPlace(x, false) }

// radix2InPlace runs the iterative radix-2 butterflies using the
// precomputed permutation and twiddle table. inverse conjugates the
// twiddles on the fly (no normalization).
func (p *FFTPlan) radix2InPlace(x []complex128, inverse bool) {
	n := p.n
	if n < 2 {
		return
	}
	for i, j := range p.perm {
		if int(j) > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	tw := p.twiddle
	for length := 2; length <= n; length <<= 1 {
		half := length >> 1
		step := n / length
		for start := 0; start < n; start += length {
			ti := 0
			for k := start; k < start+half; k++ {
				w := tw[ti]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				ti += step
				u := x[k]
				v := x[k+half] * w
				x[k] = u + v
				x[k+half] = u - v
			}
		}
	}
}

// transform runs the Bluestein convolution. The inverse transform uses the
// conjugation identity IDFT(x) = conj(DFT(conj(x)))/n, so one precomputed
// forward kernel serves both directions (the caller applies the 1/n).
func (bp *bluesteinPlan) transform(dst, src []complex128, inverse bool) {
	n := len(bp.w)
	sp := bp.scratch.Get().(*[]complex128)
	a := *sp
	for k := 0; k < n; k++ {
		v := src[k]
		if inverse {
			v = cmplx.Conj(v)
		}
		a[k] = v * bp.w[k]
	}
	for k := n; k < bp.m; k++ {
		a[k] = 0
	}
	bp.mp.forwardInPlace(a)
	for i, b := range bp.bhat {
		a[i] *= b
	}
	bp.mp.radix2InPlace(a, true) // unnormalized inverse
	scale := complex(1/float64(bp.m), 0)
	for k := 0; k < n; k++ {
		v := a[k] * scale * bp.w[k]
		if inverse {
			v = cmplx.Conj(v)
		}
		dst[k] = v
	}
	bp.scratch.Put(sp)
}

// RFFTPlan computes one-sided spectra of real-valued signals. For even
// sizes it packs the signal into a half-size complex transform and
// untwists the result (conjugate symmetry halves the butterfly work); odd
// sizes fall back to a full complex transform. Plans are immutable and
// safe for concurrent use; per-call scratch is caller-provided so the
// caller can amortize it across frames.
type RFFTPlan struct {
	n int
	// half is the size-n/2 complex sub-plan (even n >= 2).
	half *FFTPlan
	// untwist[k] = exp(-2*pi*i*k/n) for k in [0, n/2] (even n).
	untwist []complex128
	// full is the size-n fallback plan (odd n, and n == 1).
	full *FFTPlan
}

// rfftCache maps size -> *RFFTPlan.
var rfftCache sync.Map

// PlanRFFT returns the cached real-input plan for size n (n >= 1).
func PlanRFFT(n int) *RFFTPlan {
	if v, ok := rfftCache.Load(n); ok {
		return v.(*RFFTPlan)
	}
	v, _ := rfftCache.LoadOrStore(n, newRFFTPlan(n))
	return v.(*RFFTPlan)
}

func newRFFTPlan(n int) *RFFTPlan {
	p := &RFFTPlan{n: n}
	if n >= 2 && n%2 == 0 {
		p.half = PlanFFT(n / 2)
		p.untwist = make([]complex128, n/2+1)
		for k := range p.untwist {
			ang := -2 * math.Pi * float64(k) / float64(n)
			s, c := math.Sincos(ang)
			p.untwist[k] = complex(c, s)
		}
		return p
	}
	p.full = PlanFFT(n)
	return p
}

// Size returns the real input length the plan was built for.
func (p *RFFTPlan) Size() int { return p.n }

// SpectrumLen returns the one-sided output length, n/2 + 1.
func (p *RFFTPlan) SpectrumLen() int { return p.n/2 + 1 }

// WorkLen returns the scratch length Transform requires.
func (p *RFFTPlan) WorkLen() int {
	if p.full != nil {
		return p.n
	}
	return p.n / 2
}

// Transform computes the one-sided spectrum X[0..n/2] of the length-n real
// signal x into dst (length SpectrumLen()). work must have length
// WorkLen(); pass the same buffer across calls to stay allocation-free.
// The full two-sided spectrum follows from X[n-k] = conj(X[k]).
func (p *RFFTPlan) Transform(dst []complex128, x []float64, work []complex128) {
	if p.full != nil {
		for i, v := range x {
			work[i] = complex(v, 0)
		}
		p.full.forwardTo(work)
		copy(dst, work[:p.n/2+1])
		return
	}
	h := p.n / 2
	for j := 0; j < h; j++ {
		work[j] = complex(x[2*j], x[2*j+1])
	}
	p.half.forwardTo(work)
	// Untwist: X[k] = E[k] + exp(-2*pi*i*k/n) * O[k], where E and O are the
	// DFTs of the even- and odd-indexed samples, recovered from the packed
	// transform Z via E[k] = (Z[k]+conj(Z[h-k]))/2, O[k] = -i*(Z[k]-conj(Z[h-k]))/2.
	for k := 0; k <= h; k++ {
		zk := work[k%h]
		zr := cmplx.Conj(work[(h-k)%h])
		e := (zk + zr) * 0.5
		o := (zk - zr) * complex(0, -0.5)
		dst[k] = e + p.untwist[k]*o
	}
}

// forwardTo runs the forward transform in place (any size; Bluestein sizes
// use pooled scratch).
func (p *FFTPlan) forwardTo(x []complex128) {
	if p.bs != nil {
		p.bs.transform(x, x, false)
		return
	}
	p.radix2InPlace(x, false)
}

// PowerInto writes the one-sided power spectrum of x into dst (length
// SpectrumLen()): dst[k] = |X[k]|^2. spec and work are scratch of lengths
// SpectrumLen() and WorkLen().
func (p *RFFTPlan) PowerInto(dst []float64, x []float64, spec, work []complex128) {
	p.Transform(spec, x, work)
	for k := range dst {
		re := real(spec[k])
		im := imag(spec[k])
		dst[k] = re*re + im*im
	}
}
