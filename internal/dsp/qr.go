package dsp

import "math"

// orthonormTol is the relative column-norm floor below which a column is
// treated as linearly dependent during orthonormalization: once the
// residual after projecting out earlier columns drops under tol times
// the column's pre-projection norm, nothing numerically meaningful is
// left and the column is zeroed instead of normalized noise.
const orthonormTol = 1e-12

// Orthonormalize turns the columns of q into an orthonormal basis of
// their span, in place, and returns the numerical rank (the number of
// nonzero columns kept). It runs modified Gram-Schmidt with one full
// re-orthogonalization pass per column ("twice is enough"), which keeps
// QᵀQ within a few ulps of the identity even for the nearly dependent
// columns a power-iterated range finder produces. Rank-deficient
// columns are set to zero — projections through the basis then simply
// ignore them — so the routine is total and deterministic for any
// input, including zero and non-finite-free degenerate matrices.
func Orthonormalize(q *Mat) int {
	rank := 0
	for j := 0; j < q.Cols; j++ {
		cj := q.Col(j)
		norm0 := math.Sqrt(dot(cj, cj))
		// Two MGS passes: the second mops up the projection error the
		// first leaves when cj is nearly inside the span so far.
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < j; i++ {
				ci := q.Col(i)
				r := dot(ci, cj)
				if r == 0 {
					continue
				}
				for k := range cj {
					cj[k] -= r * ci[k]
				}
			}
		}
		norm := math.Sqrt(dot(cj, cj))
		if norm <= orthonormTol*norm0 || norm == 0 || math.IsNaN(norm) || math.IsInf(norm, 0) {
			for k := range cj {
				cj[k] = 0
			}
			continue
		}
		inv := 1 / norm
		for k := range cj {
			cj[k] *= inv
		}
		rank++
	}
	return rank
}
