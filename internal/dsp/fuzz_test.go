package dsp

import (
	"math"
	"math/cmplx"
	"testing"
)

// FuzzFFTRoundTrip checks IFFT(FFT(x)) == x and Parseval's identity for
// arbitrary signal content and length.
func FuzzFFTRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0})
	f.Add([]byte{255, 0, 255, 0, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 1024 {
			t.Skip()
		}
		x := make([]complex128, len(data))
		for i, b := range data {
			x[i] = complex(float64(b)-128, float64(b%7))
		}
		y := IFFT(FFT(x))
		for i := range x {
			if cmplx.Abs(x[i]-y[i]) > 1e-6*float64(len(x)+1) {
				t.Fatalf("round trip diverged at %d: %v vs %v", i, x[i], y[i])
			}
		}
		// Parseval.
		fx := FFT(x)
		var et, ef float64
		for i := range x {
			et += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			ef += real(fx[i])*real(fx[i]) + imag(fx[i])*imag(fx[i])
		}
		ef /= float64(len(x))
		if math.Abs(et-ef) > 1e-6*(et+1) {
			t.Fatalf("Parseval violated: %g vs %g", et, ef)
		}
	})
}

// FuzzFindPeaks checks that peak extraction never panics and returns
// well-formed peaks for arbitrary power spectra.
func FuzzFindPeaks(f *testing.F) {
	f.Add([]byte{10, 0, 10, 0, 200, 0, 10})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 || len(data) > 4096 {
			t.Skip()
		}
		frame := Frame{Power: make([]float64, len(data))}
		for i, b := range data {
			frame.Power[i] = float64(b) * float64(b)
		}
		peaks := FindPeaks(&frame, PeakConfig{MinEnergyFraction: 0.01}, func(b int) float64 { return float64(b) })
		for i, p := range peaks {
			if p.Bin <= 0 || p.Bin >= len(data) {
				t.Fatalf("peak %d at bin %d outside spectrum", i, p.Bin)
			}
			if p.Fraction < 0.01 {
				t.Fatalf("peak %d below the energy threshold: %g", i, p.Fraction)
			}
			if i > 0 && peaks[i-1].Power < p.Power {
				t.Fatalf("peaks not sorted by power at %d", i)
			}
		}
	})
}
