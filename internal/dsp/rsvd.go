package dsp

import (
	"fmt"
	"math"
)

// RSVDConfig parameterizes the randomized truncated SVD.
type RSVDConfig struct {
	// Rank is the number of dominant singular directions kept.
	Rank int
	// Oversample widens the random sketch beyond Rank (the classic p of
	// Halko/Martinsson/Tropp); the extra directions are discarded after
	// the small factorization. Zero means 4.
	Oversample int
	// PowerIters is the number of subspace power iterations. Each one
	// sharpens the sketch's alignment with the dominant subspace by the
	// ratio of consecutive singular values squared; one is enough for
	// spectrogram blocks, whose spectra decay fast. Zero means 1.
	PowerIters int
	// Seed seeds the Gaussian test matrix. The generator is a private
	// splitmix64 + Box-Muller chain, so sketches are bit-reproducible
	// across runs, worker counts and Go versions.
	Seed uint64
}

// withDefaults fills zero fields with their documented defaults.
func (c RSVDConfig) withDefaults() RSVDConfig {
	if c.Oversample == 0 {
		c.Oversample = 4
	}
	if c.PowerIters == 0 {
		c.PowerIters = 1
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c RSVDConfig) Validate() error {
	if c.Rank < 1 {
		return fmt.Errorf("dsp: RSVD rank %d < 1", c.Rank)
	}
	if c.Oversample < 0 {
		return fmt.Errorf("dsp: RSVD oversample %d < 0", c.Oversample)
	}
	if c.PowerIters < 0 {
		return fmt.Errorf("dsp: RSVD power iterations %d < 0", c.PowerIters)
	}
	return nil
}

// RSVD computes rank-k truncated singular value decompositions by
// randomized range finding (Halko, Martinsson & Tropp 2011): sketch the
// column space with a seeded Gaussian test matrix, sharpen it with
// power iterations, then solve the small (k+p)-dimensional problem
// exactly with a Jacobi eigensolver. One RSVD value owns every
// workspace it needs, so repeated factorizations of same-shaped inputs
// allocate nothing — the streaming denoiser refactors every stride
// windows on the hot path.
//
// The factorization is fully deterministic: the only randomness is the
// test matrix, which is derived from the seed passed to Factor.
type RSVD struct {
	cfg RSVDConfig

	omega Mat // n×l Gaussian test matrix
	y     Mat // m×l range sketch
	z     Mat // n×l power-iteration companion
	b     Mat // l×n projected matrix B = QᵀA
	g     Mat // l×l Gram matrix B·Bᵀ
	w     Mat // l×l eigenvectors of g
	eig   []float64
	jac   jacobiScratch
}

// NewRSVD returns a factorizer for the configuration.
func NewRSVD(cfg RSVDConfig) (*RSVD, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &RSVD{cfg: cfg.withDefaults()}, nil
}

// Rank returns the configured target rank.
func (s *RSVD) Rank() int { return s.cfg.Rank }

// Factor computes the rank-k truncated SVD of a (m×n): on return u is an
// m×k matrix with orthonormal columns spanning the dominant subspace
// (k = min(Rank, m, n); rank-deficient directions come back as zero
// columns), and the returned slice holds the k estimated singular
// values, descending. The slice aliases internal storage and is valid
// until the next Factor call. seed selects the Gaussian sketch;
// identical (a, seed) always produce bit-identical results.
func (s *RSVD) Factor(u *Mat, a *Mat, seed uint64) []float64 {
	m, n := a.Rows, a.Cols
	k := s.cfg.Rank
	if k > m {
		k = m
	}
	if k > n {
		k = n
	}
	l := k + s.cfg.Oversample
	if mn := min(m, n); l > mn {
		l = mn
	}
	if k < 1 || l < 1 {
		u.Reshape(m, 0)
		s.eig = s.eig[:0]
		return s.eig
	}

	// Sketch: Y = A·Ω with Ω ~ N(0,1), seeded.
	s.omega.Reshape(n, l)
	fillGaussian(s.omega.Data, s.cfg.Seed^seed)
	MulInto(&s.y, a, &s.omega)
	Orthonormalize(&s.y)

	// Power iterations with QR re-orthonormalization at every half-step:
	// without it the sketch collapses onto the single largest direction
	// in floating point.
	for it := 0; it < s.cfg.PowerIters; it++ {
		MulATBInto(&s.z, a, &s.y) // Z = AᵀQ (n×l)
		Orthonormalize(&s.z)
		MulInto(&s.y, a, &s.z) // Y = A·Z (m×l)
		Orthonormalize(&s.y)
	}

	// Small exact problem: B = QᵀA (l×n), G = BBᵀ (l×l symmetric).
	// Eigen-decomposing G gives the left singular structure of B — and
	// the top-k singular directions of A are Q times the top-k
	// eigenvectors.
	MulATBInto(&s.b, &s.y, a)
	mulABTInto(&s.g, &s.b, &s.b)
	s.eig = symEigJacobi(&s.g, &s.w, s.eig[:0], &s.jac)

	u.Reshape(m, k)
	for j := 0; j < k; j++ {
		MulVecInto(u.Col(j), &s.y, s.w.Col(j))
	}
	s.eig = s.eig[:k]
	for i, lam := range s.eig {
		if lam > 0 {
			s.eig[i] = math.Sqrt(lam)
		} else {
			s.eig[i] = 0
		}
	}
	return s.eig
}

// mulABTInto computes dst = a·bᵀ for equal-row-count a and b. Only used
// for the small l×n · n×l Gram product, where walking rows is cheap.
func mulABTInto(dst, a, b *Mat) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("dsp: mulABTInto shape mismatch: %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst.Reshape(a.Rows, b.Rows)
	dst.Zero()
	for k := 0; k < a.Cols; k++ {
		ak, bk := a.Col(k), b.Col(k)
		for j, bjk := range bk {
			if bjk == 0 {
				continue
			}
			dj := dst.Col(j)
			for i, aik := range ak {
				dj[i] += aik * bjk
			}
		}
	}
}

// SingularValues returns all min(m,n) singular values of a, descending.
// It forms the Gram matrix on the smaller side and eigen-decomposes it
// with the same Jacobi kernel RSVD uses for its small problem — O(min³)
// plus the Gram product, exact up to roundoff. The property tests use it
// to compute the optimal (Eckart-Young) truncation error the randomized
// factorization is judged against.
func SingularValues(a *Mat) []float64 {
	var g, v Mat
	if a.Rows <= a.Cols {
		mulABTInto(&g, a, a)
	} else {
		MulATBInto(&g, a, a)
	}
	var jac jacobiScratch
	eig := symEigJacobi(&g, &v, nil, &jac)
	for i, lam := range eig {
		if lam > 0 {
			eig[i] = math.Sqrt(lam)
		} else {
			eig[i] = 0
		}
	}
	return eig
}

// jacobiScratch holds the permutation scratch of the eigensolver.
type jacobiScratch struct {
	ord []int
	tmp []float64
}

// symEigJacobi eigen-decomposes the symmetric matrix g in place with the
// cyclic Jacobi method: eigenvalues are returned appended to eig in
// descending order and the matching eigenvectors land in the columns of
// v. Jacobi is slower than tridiagonalization but unconditionally
// stable, free of convergence branches that could order results
// differently across platforms, and exact enough that the randomized
// SVD's small problem adds no error of its own. g is destroyed.
func symEigJacobi(g, v *Mat, eig []float64, sc *jacobiScratch) []float64 {
	n := g.Rows
	v.Reshape(n, n)
	v.Zero()
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	if n == 0 {
		return eig[:0]
	}
	const maxSweeps = 50
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for j := 0; j < n; j++ {
			for i := 0; i < j; i++ {
				off += g.At(i, j) * g.At(i, j)
			}
		}
		if off == 0 || !(math.Sqrt(2*off) > 1e-14*frobenius(g)) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := g.At(p, q)
				if apq == 0 {
					continue
				}
				app, aqq := g.At(p, p), g.At(q, q)
				// Stable rotation angle (Golub & Van Loan §8.5).
				theta := (aqq - app) / (2 * apq)
				t := 1 / (math.Abs(theta) + math.Sqrt(1+theta*theta))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				rotateSym(g, p, q, c, s)
				rotateCols(v, p, q, c, s)
			}
		}
	}
	// Sort eigenpairs descending by eigenvalue; the order must be a
	// total, deterministic function of the values (ties broken by index).
	if cap(sc.ord) < n {
		sc.ord = make([]int, n)
		sc.tmp = make([]float64, n)
	}
	ord := sc.ord[:n]
	for i := range ord {
		ord[i] = i
	}
	// Insertion sort: n is small (k+p) and the order is stable.
	for i := 1; i < n; i++ {
		oi := ord[i]
		key := g.At(oi, oi)
		j := i - 1
		for j >= 0 && g.At(ord[j], ord[j]) < key {
			ord[j+1] = ord[j]
			j--
		}
		ord[j+1] = oi
	}
	eig = eig[:0]
	for _, i := range ord {
		eig = append(eig, g.At(i, i))
	}
	// Permute eigenvector columns to match, one row at a time through the
	// scratch buffer (cheaper than materializing a permuted copy).
	tmp := sc.tmp[:n]
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			tmp[c] = v.At(r, ord[c])
		}
		for c := 0; c < n; c++ {
			v.Set(r, c, tmp[c])
		}
	}
	return eig
}

// rotateSym applies the two-sided Jacobi rotation to the symmetric
// matrix g on the (p,q) plane.
func rotateSym(g *Mat, p, q int, c, s float64) {
	n := g.Rows
	app, aqq, apq := g.At(p, p), g.At(q, q), g.At(p, q)
	for i := 0; i < n; i++ {
		if i == p || i == q {
			continue
		}
		aip, aiq := g.At(i, p), g.At(i, q)
		g.Set(i, p, c*aip-s*aiq)
		g.Set(p, i, c*aip-s*aiq)
		g.Set(i, q, s*aip+c*aiq)
		g.Set(q, i, s*aip+c*aiq)
	}
	g.Set(p, p, c*c*app-2*s*c*apq+s*s*aqq)
	g.Set(q, q, s*s*app+2*s*c*apq+c*c*aqq)
	g.Set(p, q, 0)
	g.Set(q, p, 0)
}

// rotateCols applies the rotation to columns p and q of v (the
// accumulated eigenvector matrix).
func rotateCols(v *Mat, p, q int, c, s float64) {
	cp, cq := v.Col(p), v.Col(q)
	for i := range cp {
		vip, viq := cp[i], cq[i]
		cp[i] = c*vip - s*viq
		cq[i] = s*vip + c*viq
	}
}

// frobenius returns the Frobenius norm of g.
func frobenius(g *Mat) float64 { return math.Sqrt(g.FrobeniusSq()) }

// fillGaussian fills dst with standard normal variates from a splitmix64
// generator and the Box-Muller transform. Self-contained so sketches are
// bit-stable across Go releases (math/rand's stream is not part of any
// compatibility promise once v2 migrations happen).
func fillGaussian(dst []float64, seed uint64) {
	state := seed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	// uniform returns a float64 in (0, 1]: the +1 shift keeps log(u)
	// finite.
	uniform := func() float64 {
		return (float64(next()>>11) + 1) / (1 << 53)
	}
	for i := 0; i+1 < len(dst); i += 2 {
		u1, u2 := uniform(), uniform()
		r := math.Sqrt(-2 * math.Log(u1))
		dst[i] = r * math.Cos(2*math.Pi*u2)
		dst[i+1] = r * math.Sin(2*math.Pi*u2)
	}
	if len(dst)%2 == 1 {
		u1, u2 := uniform(), uniform()
		dst[len(dst)-1] = math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}
