package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
)

// TestFFTAccuracyLargeN is the twiddle-factor regression test: the old
// radix-2 kernel generated twiddles with a running product (w *= wl),
// accumulating one rounding error per butterfly column. The planned
// kernel computes each table entry directly from math.Sincos, so even at
// n=4096 the transform must agree with the naive DFT to near machine
// precision relative to the signal's magnitude.
func TestFFTAccuracyLargeN(t *testing.T) {
	const n = 4096
	r := rand.New(rand.NewSource(7))
	x := randComplex(r, n)
	want := DFTNaive(x)
	got := FFT(x)

	var scale float64
	for _, v := range want {
		if m := cmplx.Abs(v); m > scale {
			scale = m
		}
	}
	var worst float64
	for k := range want {
		if d := cmplx.Abs(got[k] - want[k]); d > worst {
			worst = d
		}
	}
	// Direct-twiddle FFTs stay near sqrt(log n)*eps relative error (the
	// measured value here is ~1.5e-12 relative, most of it from the naive
	// reference); the recurrence version drifts an order of magnitude
	// further as its running product accumulates one rounding per column.
	if limit := 1e-11 * scale; worst > limit {
		t.Fatalf("n=%d: max |FFT-DFT| = %g, want <= %g (relative %g)", n, worst, limit, worst/scale)
	}
}

// TestRFFTMatchesComplexFFT checks the conjugate-symmetry path against the
// full complex transform for even sizes (packed half-size kernel), odd
// sizes (full-plan fallback) and the degenerate sizes 1 and 2.
func TestRFFTMatchesComplexFFT(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 4, 6, 16, 63, 100, 255, 256, 1000, 1024} {
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		full := make([]complex128, n)
		for i, v := range x {
			full[i] = complex(v, 0)
		}
		want := FFT(full)

		plan := PlanRFFT(n)
		if plan.Size() != n {
			t.Fatalf("n=%d: plan.Size() = %d", n, plan.Size())
		}
		spec := make([]complex128, plan.SpectrumLen())
		work := make([]complex128, plan.WorkLen())
		plan.Transform(spec, x, work)
		for k := 0; k < plan.SpectrumLen(); k++ {
			if d := cmplx.Abs(spec[k] - want[k]); d > 1e-9 {
				t.Fatalf("n=%d bin %d: rfft %v, fft %v (|diff| %g)", n, k, spec[k], want[k], d)
			}
		}

		power := make([]float64, plan.SpectrumLen())
		plan.PowerInto(power, x, spec, work)
		for k := range power {
			w := real(want[k])*real(want[k]) + imag(want[k])*imag(want[k])
			if math.Abs(power[k]-w) > 1e-7*(1+w) {
				t.Fatalf("n=%d bin %d: power %g, want %g", n, k, power[k], w)
			}
		}
	}
}

// TestFFTRealMatchesNaive covers the public FFTReal wrapper (full
// two-sided spectrum with mirrored upper half).
func TestFFTRealMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for _, n := range []int{8, 15, 64} {
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		full := make([]complex128, n)
		for i, v := range x {
			full[i] = complex(v, 0)
		}
		want := DFTNaive(full)
		got := FFTReal(x)
		if !complexSliceClose(got, want, 1e-9) {
			t.Fatalf("n=%d: FFTReal disagrees with naive DFT", n)
		}
	}
}

// TestPlanCacheConcurrent hammers the plan caches from many goroutines
// with mixed sizes — run under -race this is the data-race regression
// test for the sync.Map/sync.Once plan construction and the Bluestein
// scratch pool.
func TestPlanCacheConcurrent(t *testing.T) {
	sizes := []int{16, 60, 64, 100, 128, 255, 256, 384, 1000, 1024}
	refs := make(map[int][]complex128, len(sizes))
	for _, n := range sizes {
		r := rand.New(rand.NewSource(int64(n)))
		refs[n] = FFT(randComplex(r, n))
	}
	cfg := STFTConfig{WindowSize: 256, HopSize: 128, Window: Hann, SampleRate: 1e6}
	sig := make([]float64, 4096)
	for i := range sig {
		sig[i] = math.Sin(2 * math.Pi * float64(i) / 32)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				n := sizes[(g+iter)%len(sizes)]
				r := rand.New(rand.NewSource(int64(n)))
				got := FFT(randComplex(r, n))
				if !complexSliceClose(got, refs[n], 1e-9) {
					t.Errorf("goroutine %d: FFT(n=%d) changed under concurrency", g, n)
					return
				}
				if _, err := STFT(sig, cfg); err != nil {
					t.Errorf("goroutine %d: STFT: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSTFTAllocFree verifies the hot-loop contract: after plan warmup, the
// per-frame allocation count is ~zero (only the frames slice, the shared
// power backing array and the three reusable buffers are allocated per
// call, independent of frame count).
func TestSTFTAllocFree(t *testing.T) {
	sig := make([]float64, 1<<15)
	for i := range sig {
		sig[i] = math.Sin(2 * math.Pi * float64(i) / 64)
	}
	cfg := STFTConfig{WindowSize: 1024, HopSize: 512, Window: Hann, SampleRate: 1e6}
	if _, err := STFT(sig, cfg); err != nil { // warm the plan cache
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := STFT(sig, cfg); err != nil {
			t.Fatal(err)
		}
	})
	// 63 frames; the fixed overhead is ~7 allocations (window, frames
	// header, power backing, windowed, spec, work, plan lookup interfaces).
	if allocs > 16 {
		t.Fatalf("STFT allocations per call = %v, want <= 16 (fixed, not per-frame)", allocs)
	}
}

func BenchmarkFFTPow2(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randComplex(r, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFFTBluestein(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randComplex(r, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkRFFT1024(b *testing.B) {
	x := make([]float64, 1024)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / 64)
	}
	plan := PlanRFFT(len(x))
	power := make([]float64, plan.SpectrumLen())
	spec := make([]complex128, plan.SpectrumLen())
	work := make([]complex128, plan.WorkLen())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.PowerInto(power, x, spec, work)
	}
}
