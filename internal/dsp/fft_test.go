package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func complexSliceClose(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func randComplex(r *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return x
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 33, 64, 100, 128, 255, 256} {
		x := randComplex(r, n)
		got := FFT(x)
		want := DFTNaive(x)
		if !complexSliceClose(got, want, 1e-6*float64(n)) {
			t.Errorf("n=%d: FFT disagrees with naive DFT", n)
		}
	}
}

func TestFFTRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func(seed int64, sizeSel uint8) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + int(sizeSel)%300
		x := randComplex(rr, n)
		y := IFFT(FFT(x))
		return complexSliceClose(x, y, 1e-8*float64(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 16 + r.Intn(64)
		x := randComplex(r, n)
		y := randComplex(r, n)
		a := complex(r.NormFloat64(), r.NormFloat64())
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a*x[i] + y[i]
		}
		fx := FFT(x)
		fy := FFT(y)
		fsum := FFT(sum)
		for i := range fsum {
			if cmplx.Abs(fsum[i]-(a*fx[i]+fy[i])) > 1e-7*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 8 + r.Intn(200)
		x := randComplex(r, n)
		fx := FFT(x)
		var et, ef float64
		for i := range x {
			et += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			ef += real(fx[i])*real(fx[i]) + imag(fx[i])*imag(fx[i])
		}
		ef /= float64(n)
		return math.Abs(et-ef) <= 1e-7*(et+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFFTSingleTone(t *testing.T) {
	const n = 256
	const bin = 37
	x := make([]complex128, n)
	for i := range x {
		ang := 2 * math.Pi * bin * float64(i) / n
		x[i] = cmplx.Exp(complex(0, ang))
	}
	fx := FFT(x)
	for k := range fx {
		mag := cmplx.Abs(fx[k])
		if k == bin {
			if math.Abs(mag-n) > 1e-6 {
				t.Errorf("bin %d magnitude = %g, want %d", k, mag, n)
			}
		} else if mag > 1e-6 {
			t.Errorf("leakage at bin %d: %g", k, mag)
		}
	}
}

func TestFFTEmptyAndSingle(t *testing.T) {
	if got := FFT(nil); got != nil {
		t.Errorf("FFT(nil) = %v, want nil", got)
	}
	got := FFT([]complex128{3 + 4i})
	if len(got) != 1 || cmplx.Abs(got[0]-(3+4i)) > 1e-12 {
		t.Errorf("FFT of singleton = %v", got)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestWindowProperties(t *testing.T) {
	for _, k := range []WindowKind{Rectangular, Hann, Hamming, Blackman} {
		w := Window(k, 128)
		if len(w) != 128 {
			t.Fatalf("%v: wrong length %d", k, len(w))
		}
		for i, v := range w {
			if v < -1e-12 || v > 1+1e-12 {
				t.Errorf("%v[%d] = %g outside [0,1]", k, i, v)
			}
		}
		// Symmetry.
		for i := 0; i < len(w)/2; i++ {
			if math.Abs(w[i]-w[len(w)-1-i]) > 1e-12 {
				t.Errorf("%v not symmetric at %d", k, i)
			}
		}
		if g := CoherentGain(w); g <= 0 || g > 1 {
			t.Errorf("%v coherent gain %g outside (0,1]", k, g)
		}
	}
	if g := CoherentGain(Window(Rectangular, 64)); math.Abs(g-1) > 1e-12 {
		t.Errorf("rectangular coherent gain = %g, want 1", g)
	}
	if len(Window(Hann, 0)) != 0 {
		t.Error("zero-length window should be empty")
	}
	if w := Window(Hann, 1); w[0] != 1 {
		t.Errorf("length-1 window = %v, want [1]", w)
	}
}

func TestSTFTFrameCountAndEnergy(t *testing.T) {
	cfg := STFTConfig{WindowSize: 64, HopSize: 32, Window: Hann, SampleRate: 1000}
	sig := make([]float64, 1000)
	for i := range sig {
		sig[i] = math.Sin(2 * math.Pi * 100 * float64(i) / 1000)
	}
	frames, err := STFT(sig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantFrames := (1000-64)/32 + 1
	if len(frames) != wantFrames {
		t.Fatalf("got %d frames, want %d", len(frames), wantFrames)
	}
	for i, f := range frames {
		if f.Index != i || f.Start != i*32 {
			t.Errorf("frame %d has index %d start %d", i, f.Index, f.Start)
		}
		if len(f.Power) != 33 {
			t.Errorf("frame %d one-sided length %d, want 33", i, len(f.Power))
		}
		if f.TotalEnergy() <= 0 {
			t.Errorf("frame %d has non-positive energy", i)
		}
	}
}

func TestSTFTDetectsToneFrequency(t *testing.T) {
	cfg := STFTConfig{WindowSize: 256, HopSize: 128, Window: Hann, SampleRate: 10000}
	const tone = 1250.0 // exactly bin 32
	sig := make([]float64, 4096)
	for i := range sig {
		sig[i] = math.Sin(2 * math.Pi * tone * float64(i) / cfg.SampleRate)
	}
	frames, err := STFT(sig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		peaks := FindPeaks(&f, DefaultPeakConfig(), cfg.BinFrequency)
		if len(peaks) == 0 {
			t.Fatalf("frame %d: no peaks", f.Index)
		}
		if math.Abs(peaks[0].Frequency-tone) > cfg.SampleRate/float64(cfg.WindowSize) {
			t.Errorf("frame %d: strongest peak at %g Hz, want %g", f.Index, peaks[0].Frequency, tone)
		}
	}
}

func TestSTFTValidation(t *testing.T) {
	bad := []STFTConfig{
		{WindowSize: 0, HopSize: 1, SampleRate: 1},
		{WindowSize: 8, HopSize: 0, SampleRate: 1},
		{WindowSize: 8, HopSize: 4, SampleRate: 0},
	}
	for _, cfg := range bad {
		if _, err := STFT([]float64{1, 2, 3}, cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
	// Short signal: no frames, no error.
	frames, err := STFT([]float64{1, 2}, STFTConfig{WindowSize: 8, HopSize: 4, SampleRate: 1})
	if err != nil || frames != nil {
		t.Errorf("short signal: frames=%v err=%v", frames, err)
	}
}

func TestFindPeaksEnergyThreshold(t *testing.T) {
	cfg := STFTConfig{WindowSize: 256, HopSize: 256, Window: Hann, SampleRate: 256}
	sig := make([]float64, 256)
	for i := range sig {
		// strong tone at bin 20, weak tone at bin 60
		sig[i] = math.Sin(2*math.Pi*20*float64(i)/256) + 0.02*math.Sin(2*math.Pi*60*float64(i)/256)
	}
	frames, err := STFT(sig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	peaks := FindPeaks(&frames[0], PeakConfig{MinEnergyFraction: 0.01}, cfg.BinFrequency)
	foundWeak := false
	for _, p := range peaks {
		if p.Bin >= 58 && p.Bin <= 62 {
			foundWeak = true
		}
	}
	if foundWeak {
		t.Error("0.02-amplitude tone (0.04% energy) should fall below the 1% threshold")
	}
	peaks = FindPeaks(&frames[0], PeakConfig{MinEnergyFraction: 1e-6}, cfg.BinFrequency)
	foundWeak = false
	for _, p := range peaks {
		if p.Bin >= 58 && p.Bin <= 62 {
			foundWeak = true
		}
	}
	if !foundWeak {
		t.Error("with a tiny threshold the weak tone should be reported")
	}
}

func TestFindPeaksOrderingAndCap(t *testing.T) {
	frame := Frame{Power: make([]float64, 129)}
	frame.Power[10] = 100
	frame.Power[40] = 400
	frame.Power[70] = 200
	peaks := FindPeaks(&frame, PeakConfig{MinEnergyFraction: 0.01}, func(b int) float64 { return float64(b) })
	if len(peaks) != 3 {
		t.Fatalf("got %d peaks, want 3", len(peaks))
	}
	if peaks[0].Bin != 40 || peaks[1].Bin != 70 || peaks[2].Bin != 10 {
		t.Errorf("wrong order: %v", peaks)
	}
	capped := FindPeaks(&frame, PeakConfig{MinEnergyFraction: 0.01, MaxPeaks: 2}, func(b int) float64 { return float64(b) })
	if len(capped) != 2 || capped[0].Bin != 40 {
		t.Errorf("cap failed: %v", capped)
	}
}

func TestInterpolatePeakFrequency(t *testing.T) {
	// A symmetric peak should interpolate to its center.
	frame := Frame{Power: []float64{0, 1, 10, 100, 10, 1, 0}}
	f := InterpolatePeakFrequency(&frame, 3, 1)
	if math.Abs(f-3) > 1e-9 {
		t.Errorf("symmetric peak interpolated to %g, want 3", f)
	}
	// A peak skewed right should land between bins 3 and 4.
	frame = Frame{Power: []float64{0, 1, 10, 100, 60, 1, 0}}
	f = InterpolatePeakFrequency(&frame, 3, 1)
	if f <= 3 || f >= 4 {
		t.Errorf("skewed peak interpolated to %g, want (3,4)", f)
	}
	// Edge bins fall back to the bin center.
	if f := InterpolatePeakFrequency(&frame, 0, 1); f != 0 {
		t.Errorf("edge bin: %g", f)
	}
}

func TestDBConversion(t *testing.T) {
	if got := DB(10); math.Abs(got-10) > 1e-12 {
		t.Errorf("DB(10) = %g", got)
	}
	if got := DB(0); !math.IsInf(got, -1) {
		t.Errorf("DB(0) = %g, want -inf", got)
	}
}

func BenchmarkFFT1024(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	x := randComplex(r, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkSTFT(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	sig := make([]float64, 1<<17)
	for i := range sig {
		sig[i] = r.NormFloat64()
	}
	cfg := STFTConfig{WindowSize: 1024, HopSize: 512, Window: Hann, SampleRate: 1e6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := STFT(sig, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSpectrogramRender(t *testing.T) {
	cfg := STFTConfig{WindowSize: 128, HopSize: 64, Window: Hann, SampleRate: 128000}
	sig := make([]float64, 8192)
	for i := range sig {
		f := 8000.0
		if i > len(sig)/2 {
			f = 24000 // frequency switch halfway through
		}
		sig[i] = math.Sin(2 * math.Pi * f * float64(i) / cfg.SampleRate)
	}
	sg, err := NewSpectrogram(sig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := sg.Render(16, 60, 1)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 18 { // 16 rows + axis + time labels
		t.Fatalf("rendered %d lines, want 18:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "kHz") || !strings.Contains(out, "ms") {
		t.Error("render lacks axis labels")
	}
	// The signal hops frequency halfway through, so one dark row must have
	// its energy in the left (early) half of the columns and another in
	// the right (late) half.
	var darkEarly, darkLate bool
	for _, line := range lines[:16] {
		cells := line[13:]
		half := len(cells) / 2
		if strings.ContainsAny(cells[:half], "%@#") {
			darkEarly = true
		}
		if strings.ContainsAny(cells[half:], "%@#") {
			darkLate = true
		}
	}
	if !darkEarly || !darkLate {
		t.Errorf("expected strong energy in both time halves:\n%s", out)
	}
	// Degenerate inputs must not panic.
	empty := &Spectrogram{Cfg: cfg}
	if s := empty.Render(4, 4, 0); !strings.Contains(s, "empty") {
		t.Error("empty render")
	}
}
