package dsp

import "fmt"

// STFTConfig describes how a continuous signal is cut into overlapping
// frames and transformed into Short-Term Spectra (STSs).
type STFTConfig struct {
	// WindowSize is the number of samples per frame. It must be positive.
	// Power-of-two sizes are fastest but not required.
	WindowSize int
	// HopSize is the number of samples between consecutive frame starts.
	// The paper uses 50% overlap, i.e. HopSize = WindowSize/2.
	HopSize int
	// Window is the taper applied before the FFT.
	Window WindowKind
	// SampleRate is the sample rate of the input signal in Hz. It is used
	// to convert bin indices to frequencies.
	SampleRate float64
}

// Validate reports whether the configuration is usable.
func (c STFTConfig) Validate() error {
	if c.WindowSize <= 0 {
		return fmt.Errorf("dsp: STFT window size must be positive, got %d", c.WindowSize)
	}
	if c.HopSize <= 0 {
		return fmt.Errorf("dsp: STFT hop size must be positive, got %d", c.HopSize)
	}
	if c.SampleRate <= 0 {
		return fmt.Errorf("dsp: STFT sample rate must be positive, got %g", c.SampleRate)
	}
	return nil
}

// BinFrequency converts a bin index of the one-sided spectrum to Hz.
func (c STFTConfig) BinFrequency(bin int) float64 {
	return float64(bin) * c.SampleRate / float64(c.WindowSize)
}

// FrameDuration returns the length of one analysis window in seconds.
func (c STFTConfig) FrameDuration() float64 {
	return float64(c.WindowSize) / c.SampleRate
}

// HopDuration returns the time advance between consecutive frames in seconds.
func (c STFTConfig) HopDuration() float64 {
	return float64(c.HopSize) / c.SampleRate
}

// Frame is one Short-Term Spectrum: the one-sided power spectrum of a
// single windowed frame together with its position in the input signal.
type Frame struct {
	// Index is the frame number (0-based).
	Index int
	// Start is the sample index of the first sample in the frame.
	Start int
	// Power holds the one-sided power spectrum: Power[k] is the squared
	// magnitude of bin k, for k in [0, WindowSize/2].
	Power []float64
}

// TotalEnergy returns the sum of the power spectrum excluding the DC bin.
// EDDIE excludes DC because the mean power level carries no periodicity
// information and would otherwise dominate the 1%-of-energy peak rule.
func (f *Frame) TotalEnergy() float64 {
	var sum float64
	for i := 1; i < len(f.Power); i++ {
		sum += f.Power[i]
	}
	return sum
}

// STFT slices signal into overlapping frames and returns the one-sided power
// spectrum of each. Trailing samples that do not fill a window are dropped,
// matching the streaming behaviour of the monitoring pipeline.
//
// The hot loop runs the planned real-input FFT (conjugate symmetry halves
// the butterfly work) and reuses one windowed-sample buffer, one transform
// scratch buffer and one shared Power backing array across all frames, so
// the per-frame allocation count is ~zero.
func STFT(signal []float64, cfg STFTConfig) ([]Frame, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(signal) < cfg.WindowSize {
		return nil, nil
	}
	win := Window(cfg.Window, cfg.WindowSize)
	nFrames := (len(signal)-cfg.WindowSize)/cfg.HopSize + 1
	half := cfg.WindowSize/2 + 1
	frames := make([]Frame, 0, nFrames)
	plan := PlanRFFT(cfg.WindowSize)
	windowed := make([]float64, cfg.WindowSize)
	spec := make([]complex128, plan.SpectrumLen())
	work := make([]complex128, plan.WorkLen())
	powerAll := make([]float64, nFrames*half)
	for i := 0; i < nFrames; i++ {
		start := i * cfg.HopSize
		for j := 0; j < cfg.WindowSize; j++ {
			windowed[j] = signal[start+j] * win[j]
		}
		power := powerAll[i*half : (i+1)*half : (i+1)*half]
		plan.PowerInto(power, windowed, spec, work)
		frames = append(frames, Frame{Index: i, Start: start, Power: power})
	}
	return frames, nil
}

// Detrend returns a copy of the signal with its mean removed (AC
// coupling). Without it, the DC component leaks through the analysis
// window into the lowest bins and dominates the per-frame energy that the
// peak rule normalizes by.
func Detrend(signal []float64) []float64 {
	if len(signal) == 0 {
		return nil
	}
	var sum float64
	for _, v := range signal {
		sum += v
	}
	mean := sum / float64(len(signal))
	out := make([]float64, len(signal))
	for i, v := range signal {
		out[i] = v - mean
	}
	return out
}

// PowerSpectrum returns the one-sided power spectrum of the entire signal
// (a single real-input FFT, no framing). Useful for Fig 1-style
// whole-region spectra.
func PowerSpectrum(signal []float64) []float64 {
	n := len(signal)
	if n == 0 {
		return nil
	}
	plan := PlanRFFT(n)
	power := make([]float64, plan.SpectrumLen())
	spec := make([]complex128, plan.SpectrumLen())
	work := make([]complex128, plan.WorkLen())
	plan.PowerInto(power, signal, spec, work)
	return power
}
