package dsp

import (
	"fmt"
	"math"
	"sync"
)

// WindowKind identifies a taper applied to each STFT frame before the FFT.
type WindowKind int

const (
	// Rectangular applies no taper.
	Rectangular WindowKind = iota
	// Hann is the raised-cosine window used by default in EDDIE's STFT.
	Hann
	// Hamming is the optimized raised-cosine window.
	Hamming
	// Blackman is a three-term cosine window with very low sidelobes.
	Blackman
)

// String returns the conventional name of the window.
func (k WindowKind) String() string {
	switch k {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	default:
		return fmt.Sprintf("WindowKind(%d)", int(k))
	}
}

// Window returns the n coefficients of the window. It panics on negative n.
func Window(k WindowKind, n int) []float64 {
	if n < 0 {
		panic(fmt.Sprintf("dsp: negative window length %d", n))
	}
	w := make([]float64, n)
	if n == 0 {
		return w
	}
	if n == 1 {
		w[0] = 1
		return w
	}
	den := float64(n - 1)
	for i := 0; i < n; i++ {
		t := float64(i) / den
		switch k {
		case Rectangular:
			w[i] = 1
		case Hann:
			w[i] = 0.5 - 0.5*math.Cos(2*math.Pi*t)
		case Hamming:
			w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*t)
		case Blackman:
			w[i] = 0.42 - 0.5*math.Cos(2*math.Pi*t) + 0.08*math.Cos(4*math.Pi*t)
		default:
			panic(fmt.Sprintf("dsp: unknown window kind %d", int(k)))
		}
	}
	return w
}

// sharedWindows caches one coefficient slice per (kind, length), keyed
// by sharedWindowKey. Coefficients are pure functions of the key and
// read-only by contract, so every caller shares one slice.
var sharedWindows sync.Map

type sharedWindowKey struct {
	k WindowKind
	n int
}

// SharedWindow returns the n coefficients of the window from a process-
// wide cache. The returned slice is shared and MUST NOT be modified;
// callers that need a private copy use Window instead. One fleet node
// hosting tens of thousands of detector sessions with the same STFT
// front end holds one coefficient table instead of one per session.
func SharedWindow(k WindowKind, n int) []float64 {
	key := sharedWindowKey{k, n}
	if w, ok := sharedWindows.Load(key); ok {
		return w.([]float64)
	}
	w, _ := sharedWindows.LoadOrStore(key, Window(k, n))
	return w.([]float64)
}

// CoherentGain returns the mean of the window coefficients: the factor by
// which a windowed sinusoid's spectral line is attenuated.
func CoherentGain(w []float64) float64 {
	if len(w) == 0 {
		return 0
	}
	var sum float64
	for _, v := range w {
		sum += v
	}
	return sum / float64(len(w))
}
