package dsp

import (
	"fmt"
	"math"
)

// WindowKind identifies a taper applied to each STFT frame before the FFT.
type WindowKind int

const (
	// Rectangular applies no taper.
	Rectangular WindowKind = iota
	// Hann is the raised-cosine window used by default in EDDIE's STFT.
	Hann
	// Hamming is the optimized raised-cosine window.
	Hamming
	// Blackman is a three-term cosine window with very low sidelobes.
	Blackman
)

// String returns the conventional name of the window.
func (k WindowKind) String() string {
	switch k {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	default:
		return fmt.Sprintf("WindowKind(%d)", int(k))
	}
}

// Window returns the n coefficients of the window. It panics on negative n.
func Window(k WindowKind, n int) []float64 {
	if n < 0 {
		panic(fmt.Sprintf("dsp: negative window length %d", n))
	}
	w := make([]float64, n)
	if n == 0 {
		return w
	}
	if n == 1 {
		w[0] = 1
		return w
	}
	den := float64(n - 1)
	for i := 0; i < n; i++ {
		t := float64(i) / den
		switch k {
		case Rectangular:
			w[i] = 1
		case Hann:
			w[i] = 0.5 - 0.5*math.Cos(2*math.Pi*t)
		case Hamming:
			w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*t)
		case Blackman:
			w[i] = 0.42 - 0.5*math.Cos(2*math.Pi*t) + 0.08*math.Cos(4*math.Pi*t)
		default:
			panic(fmt.Sprintf("dsp: unknown window kind %d", int(k)))
		}
	}
	return w
}

// CoherentGain returns the mean of the window coefficients: the factor by
// which a windowed sinusoid's spectral line is attenuated.
func CoherentGain(w []float64) float64 {
	if len(w) == 0 {
		return 0
	}
	var sum float64
	for _, v := range w {
		sum += v
	}
	return sum / float64(len(w))
}
