package dsp

import (
	"math"
	"testing"
)

// synthSpectrum writes a low-rank "loop activity" spectrum into dst:
// a few stable spectral lines whose amplitudes breathe slowly across
// windows — the structure real region spectrograms have.
func synthSpectrum(dst []float64, window int) {
	for i := range dst {
		dst[i] = 0
	}
	lines := []struct {
		bin int
		amp float64
	}{{10, 40}, {21, 18}, {33, 9}, {47, 5}}
	phase := float64(window) * 0.07
	for li, l := range lines {
		if l.bin+1 >= len(dst) {
			continue
		}
		a := l.amp * (1 + 0.3*math.Sin(phase+float64(li)))
		dst[l.bin] += a
		dst[l.bin-1] += a * 0.3
		dst[l.bin+1] += a * 0.3
	}
}

// noisySpectrum is synthSpectrum plus deterministic broadband noise.
// Squared Gaussians model the exponential distribution AWGN has after
// the power spectrum (variance ≈ 2× squared mean): a flat floor the
// subspace keeps plus strong per-bin fluctuation it should remove.
func noisySpectrum(dst []float64, window int, noiseAmp float64, noise []float64) {
	synthSpectrum(dst, window)
	fillGaussian(noise, uint64(window)*2654435761+17)
	for i := range dst {
		dst[i] += noiseAmp * noise[i] * noise[i]
	}
}

func TestDenoiseConfigValidate(t *testing.T) {
	ok := []DenoiseConfig{
		{},                  // disabled
		{Rank: 4},           // all defaults
		{Rank: 1, Block: 2}, // minimal
		{Rank: 8, Block: 64, Stride: 64},
		{Rank: 3, Block: 16, Stride: 1, PowerIters: 2, Oversample: 8, Seed: 9},
	}
	for _, c := range ok {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
	bad := []DenoiseConfig{
		{Rank: -1},
		{Rank: 2, Block: 1},
		{Rank: 2, Block: -4},
		{Rank: 2, Block: 8, Stride: 9},
		{Rank: 2, Block: 8, Stride: -1},
		{Rank: 2, PowerIters: -1},
		{Rank: 2, Oversample: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted a bad config", c)
		}
	}
	if (DenoiseConfig{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if !(DenoiseConfig{Rank: 3}).Enabled() {
		t.Error("rank-3 config reports disabled")
	}
}

func TestNewDenoiserErrors(t *testing.T) {
	if _, err := NewDenoiser(DenoiseConfig{}, 64); err == nil {
		t.Error("NewDenoiser accepted a disabled config")
	}
	if _, err := NewDenoiser(DenoiseConfig{Rank: 2, Block: 1}, 64); err == nil {
		t.Error("NewDenoiser accepted block 1")
	}
	if _, err := NewDenoiser(DenoiseConfig{Rank: 2}, 0); err == nil {
		t.Error("NewDenoiser accepted 0 bins")
	}
}

// TestDenoiserWarmupPassthrough: until a full block has been seen the
// stage only sanitizes; values pass through bit-identically.
func TestDenoiserWarmupPassthrough(t *testing.T) {
	const bins = 64
	d, err := NewDenoiser(DenoiseConfig{Rank: 4, Block: 8}, bins)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, bins)
	want := make([]float64, bins)
	for w := 0; w < 7; w++ { // block-1 windows
		synthSpectrum(buf, w)
		copy(want, buf)
		d.Push(buf)
		if !sameBitsSlice(buf, want) {
			t.Fatalf("warm-up window %d modified the spectrum", w)
		}
	}
	if d.Refactors() != 0 {
		t.Fatalf("refactored during warm-up: %d", d.Refactors())
	}
	synthSpectrum(buf, 7)
	copy(want, buf)
	d.Push(buf) // block is full: first factorization + projection
	if d.Refactors() != 1 {
		t.Fatalf("refactors after full block: %d, want 1", d.Refactors())
	}
	if sameBitsSlice(buf, want) {
		t.Error("first denoised window identical to input (projection did nothing)")
	}
}

// TestDenoiserRecoversSignal: on a low-rank spectrogram plus broadband
// noise, the denoised spectra are closer to the clean ones than the
// noisy inputs were — the property the whole stage exists for.
func TestDenoiserRecoversSignal(t *testing.T) {
	const bins, windows = 64, 200
	d, err := NewDenoiser(DenoiseConfig{Rank: 5, Block: 32, Stride: 8}, bins)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, bins)
	clean := make([]float64, bins)
	noise := make([]float64, bins)
	var errNoisy, errDenoised float64
	for w := 0; w < windows; w++ {
		noisySpectrum(buf, w, 2.0, noise)
		synthSpectrum(clean, w)
		var en float64
		for i := range buf {
			dd := buf[i] - clean[i]
			en += dd * dd
		}
		d.Push(buf)
		if int64(w) < 32 {
			continue // warm-up windows pass through; score steady state only
		}
		errNoisy += en
		for i := range buf {
			dd := buf[i] - clean[i]
			errDenoised += dd * dd
			if math.IsNaN(buf[i]) || math.IsInf(buf[i], 0) || buf[i] < 0 {
				t.Fatalf("window %d bin %d: non-finite or negative output %v", w, i, buf[i])
			}
		}
	}
	if errDenoised >= errNoisy/2 {
		t.Errorf("denoising did not help enough: residual %.1f vs noisy %.1f (want < half)", errDenoised, errNoisy)
	}
	if r := d.EnergyRatio(); !(r > 0.5 && r <= 1) {
		t.Errorf("energy ratio %v outside (0.5, 1]", r)
	}
	if d.Rank() < 1 || d.Rank() > 5 {
		t.Errorf("effective rank %d outside [1,5]", d.Rank())
	}
}

// TestDenoiserDeterministic: two denoisers fed the same sequence emit
// bit-identical output — the contract the offline-vs-stream differential
// builds on.
func TestDenoiserDeterministic(t *testing.T) {
	const bins, windows = 64, 120
	mk := func() *Denoiser {
		d, err := NewDenoiser(DenoiseConfig{Rank: 4, Block: 16, Stride: 4, Seed: 77}, bins)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d1, d2 := mk(), mk()
	b1 := make([]float64, bins)
	b2 := make([]float64, bins)
	noise := make([]float64, bins)
	for w := 0; w < windows; w++ {
		noisySpectrum(b1, w, 1.0, noise)
		copy(b2, b1)
		d1.Push(b1)
		d2.Push(b2)
		if !sameBitsSlice(b1, b2) {
			t.Fatalf("window %d: outputs diverged", w)
		}
	}
	if d1.Refactors() != d2.Refactors() {
		t.Fatalf("refactor counts diverged: %d vs %d", d1.Refactors(), d2.Refactors())
	}
}

// TestDenoiserRefactorStride: the basis refactors once per stride, not
// per window.
func TestDenoiserRefactorStride(t *testing.T) {
	const bins = 32
	d, err := NewDenoiser(DenoiseConfig{Rank: 3, Block: 8, Stride: 4}, bins)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, bins)
	for w := 0; w < 8+16; w++ {
		synthSpectrum(buf, w%20)
		d.Push(buf)
	}
	// Window 8 (1-indexed: the block-filling one) factorizes, then every
	// 4th window after: windows 8, 12, 16, 20, 24 → 5 factorizations.
	if d.Refactors() != 5 {
		t.Errorf("refactors = %d, want 5", d.Refactors())
	}
}

// TestDenoiserSteadyStateZeroAlloc: after warm-up, Push allocates
// nothing — projections and refactorizations both run on preallocated
// workspaces.
func TestDenoiserSteadyStateZeroAlloc(t *testing.T) {
	const bins = 129
	d, err := NewDenoiser(DenoiseConfig{Rank: 6, Block: 24, Stride: 6}, bins)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, bins)
	noise := make([]float64, bins)
	w := 0
	for ; w < 80; w++ { // warm-up: fill block, run several refactors
		noisySpectrum(buf, w, 1.0, noise)
		d.Push(buf)
	}
	avg := testing.AllocsPerRun(60, func() {
		noisySpectrum(buf, w, 1.0, noise)
		d.Push(buf)
		w++
	})
	if avg != 0 {
		t.Errorf("steady-state Push allocates %.2f allocs/op, want 0", avg)
	}
}

// TestDenoiserRankClamp: rank ≥ min(bins, block) clamps instead of
// failing, and the projection then reproduces the input (up to the
// clamped subspace being the whole space).
func TestDenoiserRankClamp(t *testing.T) {
	const bins = 6
	d, err := NewDenoiser(DenoiseConfig{Rank: 100, Block: 4}, bins)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, bins)
	for w := 0; w < 16; w++ {
		synthSpectrum2(buf, w)
		d.Push(buf)
		for _, v := range buf {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("window %d: bad output %v", w, v)
			}
		}
	}
	if d.Rank() > 4 {
		t.Errorf("effective rank %d exceeds min(bins, block)=4", d.Rank())
	}
}

// synthSpectrum2 is a tiny-bins variant of synthSpectrum.
func synthSpectrum2(dst []float64, window int) {
	for i := range dst {
		dst[i] = 1 + 0.5*math.Sin(float64(window)*0.3+float64(i))
	}
}
