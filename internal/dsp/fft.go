// Package dsp provides the digital signal processing substrate used by
// EDDIE: fast Fourier transforms, window functions, the short-term Fourier
// transform (STFT), and spectral peak extraction.
//
// All routines are implemented from scratch on top of the standard library
// so the module has no external dependencies. Transforms run through
// per-size cached plans (see plan.go) and are safe for concurrent use.
package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFT computes the discrete Fourier transform of x.
//
// For power-of-two lengths it runs an iterative radix-2 Cooley–Tukey
// transform in O(n log n). Other lengths are handled by Bluestein's
// algorithm, which re-expresses the DFT as a convolution of power-of-two
// size. Twiddle factors, permutations and convolution kernels come from
// the process-wide plan cache. The input slice is not modified.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	PlanFFT(n).Forward(out, x)
	return out
}

// IFFT computes the inverse discrete Fourier transform of x, normalized by
// 1/n so that IFFT(FFT(x)) == x up to floating-point error.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	PlanFFT(n).Inverse(out, x)
	return out
}

// FFTReal computes the DFT of a real-valued signal. It runs the real-input
// fast path (half-size complex transform) and mirrors the upper half of
// the spectrum from conjugate symmetry.
func FFTReal(x []float64) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	p := PlanRFFT(n)
	spec := make([]complex128, p.SpectrumLen())
	work := make([]complex128, p.WorkLen())
	p.Transform(spec, x, work)
	out := make([]complex128, n)
	copy(out, spec)
	for k := n/2 + 1; k < n; k++ {
		out[k] = cmplx.Conj(spec[n-k])
	}
	return out
}

// DFTNaive computes the DFT by direct summation in O(n^2). It exists as a
// correctness oracle for FFT in tests and for very small transforms.
func DFTNaive(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Exp(complex(0, ang))
		}
		out[k] = sum
	}
	return out
}

// NextPow2 returns the smallest power of two >= n. It panics if n exceeds
// the largest power of two representable in an int.
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n {
		if p > math.MaxInt/2 {
			panic(fmt.Sprintf("dsp: NextPow2 overflow for n=%d", n))
		}
		p <<= 1
	}
	return p
}
