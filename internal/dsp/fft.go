// Package dsp provides the digital signal processing substrate used by
// EDDIE: fast Fourier transforms, window functions, the short-term Fourier
// transform (STFT), and spectral peak extraction.
//
// All routines are implemented from scratch on top of the standard library
// so the module has no external dependencies.
package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFT computes the discrete Fourier transform of x.
//
// For power-of-two lengths it runs an iterative radix-2 Cooley–Tukey
// transform in O(n log n). Other lengths are handled by Bluestein's
// algorithm, which re-expresses the DFT as a convolution of power-of-two
// size. The input slice is not modified.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) == 0 {
		out := make([]complex128, n)
		copy(out, x)
		fftRadix2(out, false)
		return out
	}
	return bluestein(x, false)
}

// IFFT computes the inverse discrete Fourier transform of x, normalized by
// 1/n so that IFFT(FFT(x)) == x up to floating-point error.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	var out []complex128
	if n&(n-1) == 0 {
		out = make([]complex128, n)
		copy(out, x)
		fftRadix2(out, true)
	} else {
		out = bluestein(x, true)
	}
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// FFTReal computes the DFT of a real-valued signal.
func FFTReal(x []float64) []complex128 {
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	return FFT(cx)
}

// fftRadix2 runs an in-place iterative radix-2 FFT. inverse selects the
// conjugate transform (without normalization). len(x) must be a power of two.
func fftRadix2(x []complex128, inverse bool) {
	n := len(x)
	if n < 2 {
		return
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w
				x[start+k] = u + v
				x[start+k+half] = u - v
				w *= wl
			}
		}
	}
}

// bluestein computes a DFT of arbitrary length as a circular convolution of
// power-of-two size (the chirp z-transform trick).
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp factors w[k] = exp(sign*i*pi*k^2/n). k^2 mod 2n avoids overflow
	// and precision loss for large k.
	w := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		ang := sign * math.Pi * float64(kk) / float64(n)
		w[k] = cmplx.Exp(complex(0, ang))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * w[k]
		b[k] = cmplx.Conj(w[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(w[k])
	}
	fftRadix2(a, false)
	fftRadix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	fftRadix2(a, true)
	out := make([]complex128, n)
	scale := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		out[k] = a[k] * scale * w[k]
	}
	return out
}

// DFTNaive computes the DFT by direct summation in O(n^2). It exists as a
// correctness oracle for FFT in tests and for very small transforms.
func DFTNaive(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Exp(complex(0, ang))
		}
		out[k] = sum
	}
	return out
}

// NextPow2 returns the smallest power of two >= n. It panics if n exceeds
// the largest power of two representable in an int.
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n {
		if p > math.MaxInt/2 {
			panic(fmt.Sprintf("dsp: NextPow2 overflow for n=%d", n))
		}
		p <<= 1
	}
	return p
}
