package dsp

import (
	"fmt"
	"math"
)

// DenoiseConfig controls the subspace denoising stage that sits between
// the STFT and peak extraction. The zero value disables denoising.
//
// The stage projects every power spectrum onto the dominant rank-k
// subspace of a sliding spectrogram block: loop activity concentrates in
// a few stable spectral directions while channel noise spreads over all
// of them, so the projection keeps the periodic structure and discards
// most of the noise energy (Miller et al., "Detecting Code Injections in
// Noisy Environments Through EM Signal Analysis and SVD Denoising").
type DenoiseConfig struct {
	// Rank is the subspace dimension k. Zero disables the stage
	// entirely; the detector then behaves bit-identically to a build
	// without the denoiser.
	Rank int
	// Block is the sliding spectrogram block length in windows (the
	// column count of the factored matrix). Zero means 32.
	Block int
	// Stride is how many new windows arrive between refactorizations.
	// Between refactors, incoming windows are projected onto the current
	// basis — an O(bins·rank) incremental update instead of an O(bins·
	// block·rank) factorization — so the steady-state per-window cost is
	// the projection plus 1/Stride of a factorization. Zero means
	// Block/4 (minimum 1).
	Stride int
	// PowerIters and Oversample tune the randomized SVD (see RSVDConfig).
	// Zeros mean 1 and 4.
	PowerIters int
	Oversample int
	// Seed seeds the factorization sketches. Each refactorization mixes
	// the seed with its ordinal, so a denoiser's output is a pure
	// function of (config, column sequence) — reproducible at any worker
	// count and across processes. Zero means 1 (a zero splitmix64 seed
	// is valid but keeping 0 == "default" mirrors the impair layer).
	Seed uint64
}

// Enabled reports whether the configuration turns denoising on.
func (c DenoiseConfig) Enabled() bool { return c.Rank != 0 }

// WithDefaults returns the configuration with zero fields replaced by
// their documented defaults — the values a Denoiser actually runs with.
func (c DenoiseConfig) WithDefaults() DenoiseConfig { return c.withDefaults() }

// withDefaults fills zero fields with their documented defaults.
func (c DenoiseConfig) withDefaults() DenoiseConfig {
	if c.Block == 0 {
		c.Block = 32
	}
	if c.Stride == 0 {
		c.Stride = c.Block / 4
		if c.Stride < 1 {
			c.Stride = 1
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Validate reports whether the configuration is usable. The zero value
// (disabled) is always valid.
func (c DenoiseConfig) Validate() error {
	if !c.Enabled() {
		return nil
	}
	if c.Rank < 1 {
		return fmt.Errorf("dsp: denoise rank %d < 1", c.Rank)
	}
	c = c.withDefaults()
	if c.Block < 2 {
		return fmt.Errorf("dsp: denoise block %d < 2 windows", c.Block)
	}
	if c.Stride < 1 || c.Stride > c.Block {
		return fmt.Errorf("dsp: denoise stride %d outside [1, block=%d]", c.Stride, c.Block)
	}
	if c.PowerIters < 0 {
		return fmt.Errorf("dsp: denoise power iterations %d < 0", c.PowerIters)
	}
	if c.Oversample < 0 {
		return fmt.Errorf("dsp: denoise oversample %d < 0", c.Oversample)
	}
	return nil
}

// Denoiser is the streaming subspace denoising stage. It is not safe
// for concurrent use; every detector owns its own instance. After the
// warm-up block it performs zero heap allocations per Push.
type Denoiser struct {
	cfg  DenoiseConfig
	bins int

	ring  Mat // bins×block ring of the most recent columns
	head  int // next ring slot to overwrite
	seen  int64
	since int // columns since the last refactorization

	rsvd  *RSVD
	block Mat       // chronological copy of the ring for factorization
	u     Mat       // current orthonormal basis (bins×k)
	proj  []float64 // k-dimensional projection scratch

	refactors   int64
	sanitized   int64
	energyRatio float64
	rankEff     int
}

// NewDenoiser creates a denoiser for spectra of the given bin count
// (STFT WindowSize/2+1). Every workspace the steady state needs is
// allocated here.
func NewDenoiser(cfg DenoiseConfig, bins int) (*Denoiser, error) {
	if !cfg.Enabled() {
		return nil, fmt.Errorf("dsp: NewDenoiser on a disabled config (rank 0)")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if bins < 1 {
		return nil, fmt.Errorf("dsp: denoise bin count %d < 1", bins)
	}
	cfg = cfg.withDefaults()
	rank := cfg.Rank
	if rank > bins {
		rank = bins
	}
	if rank > cfg.Block {
		rank = cfg.Block
	}
	rs, err := NewRSVD(RSVDConfig{
		Rank:       rank,
		Oversample: cfg.Oversample,
		PowerIters: cfg.PowerIters,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	d := &Denoiser{cfg: cfg, bins: bins, rsvd: rs, proj: make([]float64, rank)}
	d.ring.Reshape(bins, cfg.Block)
	d.ring.Zero()
	d.block.Reshape(bins, cfg.Block)
	return d, nil
}

// Push runs one power spectrum through the stage, in place. Corrupt
// cells — NaN, ±Inf or negative, none of which a real power spectrum
// can contain — are replaced by zero and counted before any further
// processing, so the output is always finite and non-negative. During
// warm-up (fewer than Block spectra seen) the input passes through
// sanitized but un-denoised; afterwards it is replaced by its
// projection onto the current rank-k subspace, with the basis
// refactored every Stride windows.
func (d *Denoiser) Push(power []float64) {
	if len(power) != d.bins {
		panic(fmt.Sprintf("dsp: Denoiser.Push got %d bins, want %d", len(power), d.bins))
	}
	for i, v := range power {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			power[i] = 0
			d.sanitized++
		}
	}
	copy(d.ring.Col(d.head), power)
	d.head++
	if d.head == d.cfg.Block {
		d.head = 0
	}
	d.seen++
	if d.seen < int64(d.cfg.Block) {
		return // warm-up: not enough history to estimate a subspace
	}
	if d.refactors == 0 || d.since >= d.cfg.Stride {
		d.refactor()
	} else {
		d.since++
	}
	// Project: x ← U(Uᵀx), clamped to the non-negative orthant. Power
	// spectra are non-negative by construction; the projection can dip
	// below zero where the subspace disagrees with a bin, and a negative
	// "power" would corrupt the energy normalization downstream.
	MulTVecInto(d.proj, &d.u, power)
	MulVecInto(power, &d.u, d.proj)
	for i, v := range power {
		if !(v > 0) { // also catches any residual NaN
			power[i] = 0
		}
	}
}

// refactor recomputes the subspace basis from the current block. The
// ring is copied out in chronological order so the factored matrix — and
// with it the Gaussian sketch applied to it — is a deterministic
// function of the column sequence alone, independent of ring phase.
func (d *Denoiser) refactor() {
	b := d.cfg.Block
	for j := 0; j < b; j++ {
		src := (d.head + j) % b // head points at the oldest column now
		copy(d.block.Col(j), d.ring.Col(src))
	}
	sv := d.rsvd.Factor(&d.u, &d.block, mix64(uint64(d.refactors)))
	d.refactors++
	d.since = 1
	d.rankEff = 0
	var kept float64
	for _, s := range sv {
		if s > 0 {
			d.rankEff++
			kept += s * s
		}
	}
	if total := d.block.FrobeniusSq(); total > 0 {
		d.energyRatio = kept / total
		if d.energyRatio > 1 {
			d.energyRatio = 1 // roundoff can push the estimate just past 1
		}
	} else {
		d.energyRatio = 0
	}
}

// mix64 is a splitmix64 finalization round, used to spread refactor
// ordinals into well-separated sketch seeds.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	return x ^ (x >> 33)
}

// Refactors returns how many subspace factorizations have run.
func (d *Denoiser) Refactors() int64 { return d.refactors }

// Sanitized returns how many non-finite spectrogram cells were replaced.
func (d *Denoiser) Sanitized() int64 { return d.sanitized }

// Rank returns the effective subspace rank of the current basis (the
// number of numerically nonzero singular directions kept; 0 before the
// first factorization).
func (d *Denoiser) Rank() int { return d.rankEff }

// EnergyRatio returns the fraction of the last factored block's spectral
// energy captured by the subspace, in [0, 1]. High values on clean
// signal and a drop under noise are the expected signature; a low value
// on clean signal means the rank is too small for the workload.
func (d *Denoiser) EnergyRatio() float64 { return d.energyRatio }

// Windows returns how many spectra have been pushed.
func (d *Denoiser) Windows() int64 { return d.seen }
