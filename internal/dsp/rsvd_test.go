package dsp

import (
	"math"
	"runtime"
	"sync"
	"testing"
)

// lowRankPlusNoise builds A = L + eps·N where L has the given exact rank
// and N is dense Gaussian noise — the matrix family the denoiser is
// designed for and the property tests quantify against.
func lowRankPlusNoise(m, n, rank int, eps float64, seed uint64) *Mat {
	l := randMat(m, rank, seed)
	r := randMat(rank, n, seed+1)
	var a Mat
	MulInto(&a, l, r)
	noise := make([]float64, m*n)
	fillGaussian(noise, seed+2)
	for i := range a.Data {
		a.Data[i] += eps * noise[i]
	}
	return &a
}

// orthoError returns max |QᵀQ - I| over the nonzero columns of q.
func orthoError(q *Mat) float64 {
	var worst float64
	for i := 0; i < q.Cols; i++ {
		ci := q.Col(i)
		ni := dot(ci, ci)
		if ni == 0 {
			continue // dropped rank-deficient column
		}
		for j := i; j < q.Cols; j++ {
			cj := q.Col(j)
			if dot(cj, cj) == 0 {
				continue
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if e := math.Abs(dot(ci, cj) - want); e > worst {
				worst = e
			}
		}
	}
	return worst
}

// TestOrthonormalizeProperty: for random, low-rank and duplicate-column
// matrices the computed basis satisfies QᵀQ ≈ I on its kept columns and
// reports the right rank.
func TestOrthonormalizeProperty(t *testing.T) {
	cases := []struct {
		name    string
		mat     *Mat
		minRank int
	}{
		{"dense 40x8", randMat(40, 8, 5), 8},
		{"dense 8x8", randMat(8, 8, 6), 8},
		{"low-rank", lowRankPlusNoise(30, 10, 3, 0, 7), 3},
		{"zero", NewMat(20, 5), 0},
	}
	// Duplicate columns: rank must collapse to the distinct count.
	dup := NewMat(16, 6)
	base := randMat(16, 2, 8)
	for j := 0; j < 6; j++ {
		copy(dup.Col(j), base.Col(j%2))
	}
	cases = append(cases, struct {
		name    string
		mat     *Mat
		minRank int
	}{"duplicated", dup, 2})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rank := Orthonormalize(tc.mat)
			if rank != tc.minRank {
				t.Errorf("rank %d, want %d", rank, tc.minRank)
			}
			if e := orthoError(tc.mat); e > 1e-10 {
				t.Errorf("orthonormality error %g > 1e-10", e)
			}
		})
	}
}

// reconError returns ‖A − U·UᵀA‖_F, the rank-k subspace reconstruction
// error.
func reconError(a, u *Mat) float64 {
	var proj, rec Mat
	MulATBInto(&proj, u, a) // k×n
	MulInto(&rec, u, &proj) // m×n
	var s float64
	for i := range a.Data {
		d := a.Data[i] - rec.Data[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// optimalTruncError returns the Eckart-Young optimum √(Σ_{i≥k} σ_i²)
// from the exact singular values.
func optimalTruncError(a *Mat, k int) float64 {
	sv := SingularValues(a)
	var s float64
	for i := k; i < len(sv); i++ {
		s += sv[i] * sv[i]
	}
	return math.Sqrt(s)
}

// TestRSVDReconstructionBound: on random low-rank-plus-noise matrices
// the randomized factorization's reconstruction error stays within a
// constant factor of the optimal rank-k truncation error — and never
// below it (Eckart-Young), which cross-checks SingularValues.
func TestRSVDReconstructionBound(t *testing.T) {
	cases := []struct {
		m, n, rank, k int
		eps           float64
		seed          uint64
	}{
		{64, 32, 4, 6, 1e-3, 100},
		{64, 32, 4, 6, 1e-1, 101},
		{128, 24, 8, 8, 1e-2, 102},
		{257, 32, 6, 8, 0.5, 103}, // spectrogram-block shaped, heavy noise
		{32, 32, 2, 4, 1e-6, 104},
		{40, 10, 10, 4, 1e-2, 105}, // k below true rank: genuine truncation
	}
	for _, tc := range cases {
		a := lowRankPlusNoise(tc.m, tc.n, tc.rank, tc.eps, tc.seed)
		rs, err := NewRSVD(RSVDConfig{Rank: tc.k, Oversample: 4, PowerIters: 2, Seed: tc.seed})
		if err != nil {
			t.Fatal(err)
		}
		var u Mat
		sv := rs.Factor(&u, a, 0)
		if len(sv) == 0 {
			t.Fatalf("case %+v: no singular values", tc)
		}
		got := reconError(a, &u)
		opt := optimalTruncError(a, min(tc.k, min(tc.m, tc.n)))
		floor := 1e-9 * math.Sqrt(a.FrobeniusSq())
		if got+floor < opt {
			t.Errorf("case %+v: reconstruction error %g below the Eckart-Young optimum %g — SingularValues or Factor is wrong", tc, got, opt)
		}
		// With oversampling and two power iterations the randomized error
		// concentrates tightly around the optimum; 1.5x is far beyond any
		// observed deviation while still catching a broken sketch.
		if got > 1.5*opt+floor {
			t.Errorf("case %+v: reconstruction error %g exceeds 1.5x optimal truncation error %g", tc, got, opt)
		}
		// The reported singular values must approximate the true leading
		// ones from above-to-within-tolerance.
		exact := SingularValues(a)
		for i, s := range sv {
			if i >= len(exact) {
				break
			}
			if s > exact[i]*(1+1e-8)+floor {
				t.Errorf("case %+v: σ[%d]=%g exceeds exact %g", tc, i, s, exact[i])
			}
		}
	}
}

// TestRSVDBasisOrthonormal: the returned basis has orthonormal columns.
func TestRSVDBasisOrthonormal(t *testing.T) {
	a := lowRankPlusNoise(100, 40, 5, 1e-2, 200)
	rs, err := NewRSVD(RSVDConfig{Rank: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var u Mat
	rs.Factor(&u, a, 7)
	if u.Rows != 100 || u.Cols != 8 {
		t.Fatalf("basis shape %dx%d, want 100x8", u.Rows, u.Cols)
	}
	if e := orthoError(&u); e > 1e-10 {
		t.Errorf("basis orthonormality error %g", e)
	}
}

// TestRSVDDeterminism: factorization output is a pure function of
// (matrix, config, seed) — bit-identical across repeated calls, across
// RSVD instances, across GOMAXPROCS settings and under concurrency.
func TestRSVDDeterminism(t *testing.T) {
	a := lowRankPlusNoise(96, 32, 5, 0.1, 300)
	cfg := RSVDConfig{Rank: 6, Oversample: 3, PowerIters: 1, Seed: 42}

	factor := func() ([]float64, []float64) {
		rs, err := NewRSVD(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var u Mat
		sv := rs.Factor(&u, a, 9)
		return append([]float64(nil), u.Data...), append([]float64(nil), sv...)
	}

	prev := runtime.GOMAXPROCS(1)
	u1, sv1 := factor()
	runtime.GOMAXPROCS(4)
	u2, sv2 := factor()
	runtime.GOMAXPROCS(prev)

	if !sameBitsSlice(u1, u2) || !sameBitsSlice(sv1, sv2) {
		t.Fatal("factorization differs across GOMAXPROCS settings")
	}

	// Concurrent instances must not perturb each other.
	const workers = 8
	results := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			u, _ := factor()
			results[w] = u
		}(w)
	}
	wg.Wait()
	for w := range results {
		if !sameBitsSlice(results[w], u1) {
			t.Fatalf("concurrent factorization %d diverged", w)
		}
	}

	// A different seed must actually change the sketch (and in general
	// the roundoff pattern of the result).
	rs, _ := NewRSVD(cfg)
	var u3 Mat
	rs.Factor(&u3, a, 10)
	_ = u3 // different seed may still converge to the same subspace; no assertion
}

// TestSingularValuesKnown pins SingularValues on a diagonal matrix.
func TestSingularValuesKnown(t *testing.T) {
	a := NewMat(5, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, -7) // singular value is |λ|
	a.Set(2, 2, 0.5)
	sv := SingularValues(a)
	want := []float64{7, 3, 0.5}
	if len(sv) != 3 {
		t.Fatalf("got %d singular values, want 3", len(sv))
	}
	for i := range want {
		if math.Abs(sv[i]-want[i]) > 1e-12 {
			t.Errorf("σ[%d] = %g, want %g", i, sv[i], want[i])
		}
	}
}

func sameBitsSlice(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
