package stats

import "testing"

// FuzzKSStatistic checks the two-sample K-S statistic invariants on
// arbitrary samples: range [0,1], symmetry, identity.
func FuzzKSStatistic(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{3, 2, 1})
	f.Add([]byte{0}, []byte{255})
	f.Fuzz(func(t *testing.T, ab, bb []byte) {
		if len(ab) == 0 || len(bb) == 0 || len(ab)+len(bb) > 2048 {
			t.Skip()
		}
		a := make([]float64, len(ab))
		b := make([]float64, len(bb))
		for i, v := range ab {
			a[i] = float64(v)
		}
		for i, v := range bb {
			b[i] = float64(v)
		}
		d := KSStatistic(a, b)
		if d < 0 || d > 1 {
			t.Fatalf("D = %g outside [0,1]", d)
		}
		if d2 := KSStatistic(b, a); d != d2 {
			t.Fatalf("asymmetric: %g vs %g", d, d2)
		}
		if KSStatistic(a, a) != 0 {
			t.Fatal("self-distance nonzero")
		}
	})
}

// FuzzECDF checks ECDF bounds and monotonicity for arbitrary samples.
func FuzzECDF(f *testing.F) {
	f.Add([]byte{5, 1, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 2048 {
			t.Skip()
		}
		s := make([]float64, len(data))
		for i, v := range data {
			s[i] = float64(v)
		}
		e, err := NewECDF(s)
		if err != nil {
			t.Fatal(err)
		}
		prev := 0.0
		for x := -1.0; x <= 256; x += 16 {
			v := e.At(x)
			if v < prev || v < 0 || v > 1 {
				t.Fatalf("ECDF not monotone in [0,1] at %g: %g (prev %g)", x, v, prev)
			}
			prev = v
		}
		if e.At(256) != 1 {
			t.Fatal("ECDF must reach 1 beyond the maximum")
		}
	})
}
