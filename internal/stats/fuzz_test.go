package stats

import (
	"math"
	"sort"
	"testing"
)

// FuzzKSPresorted asserts the presorted decision kernel is bit-identical
// to the copy-and-sort kernel on arbitrary inputs: same statistic, same
// critical value, same verdict. This is the contract the monitor's
// sort-once hot path rests on.
func FuzzKSPresorted(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, []byte{4, 3, 2, 1}, 0.01)
	f.Add([]byte{0, 0, 0}, []byte{0, 0}, 0.05)
	f.Add([]byte{9}, []byte{9, 9, 9, 200}, 0.001)
	f.Fuzz(func(t *testing.T, refB, monB []byte, alpha float64) {
		if len(refB) == 0 || len(monB) == 0 || len(refB)+len(monB) > 1024 {
			t.Skip()
		}
		if math.IsNaN(alpha) || alpha <= 0 || alpha >= 1 {
			alpha = 0.01
		}
		cAlpha := KolmogorovInverse(1 - alpha)
		ref := make([]float64, len(refB))
		mon := make([]float64, len(monB))
		for i, v := range refB {
			ref[i] = float64(v) / 3 // non-integral values, frequent ties
		}
		for i, v := range monB {
			mon[i] = float64(v) / 3
		}
		sort.Float64s(ref)
		scratch := make([]float64, len(mon))
		wantD, wantCrit := KSRejectStatSorted(ref, mon, scratch, cAlpha)
		wantReject := KSRejectSorted(ref, mon, scratch, cAlpha)
		monSorted := append([]float64(nil), mon...)
		Sort(monSorted)
		gotD, gotCrit := KSRejectStatPresorted(ref, monSorted, cAlpha)
		if gotD != wantD || gotCrit != wantCrit {
			t.Fatalf("presorted (d=%g, crit=%g) != copy-and-sort (d=%g, crit=%g)", gotD, gotCrit, wantD, wantCrit)
		}
		if got := KSRejectPresorted(ref, monSorted, cAlpha); got != wantReject {
			t.Fatalf("presorted verdict %v != copy-and-sort verdict %v", got, wantReject)
		}
	})
}

// FuzzKSStatistic checks the two-sample K-S statistic invariants on
// arbitrary samples: range [0,1], symmetry, identity.
func FuzzKSStatistic(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{3, 2, 1})
	f.Add([]byte{0}, []byte{255})
	f.Fuzz(func(t *testing.T, ab, bb []byte) {
		if len(ab) == 0 || len(bb) == 0 || len(ab)+len(bb) > 2048 {
			t.Skip()
		}
		a := make([]float64, len(ab))
		b := make([]float64, len(bb))
		for i, v := range ab {
			a[i] = float64(v)
		}
		for i, v := range bb {
			b[i] = float64(v)
		}
		d := KSStatistic(a, b)
		if d < 0 || d > 1 {
			t.Fatalf("D = %g outside [0,1]", d)
		}
		if d2 := KSStatistic(b, a); d != d2 {
			t.Fatalf("asymmetric: %g vs %g", d, d2)
		}
		if KSStatistic(a, a) != 0 {
			t.Fatal("self-distance nonzero")
		}
	})
}

// FuzzECDF checks ECDF bounds and monotonicity for arbitrary samples.
func FuzzECDF(f *testing.F) {
	f.Add([]byte{5, 1, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 2048 {
			t.Skip()
		}
		s := make([]float64, len(data))
		for i, v := range data {
			s[i] = float64(v)
		}
		e, err := NewECDF(s)
		if err != nil {
			t.Fatal(err)
		}
		prev := 0.0
		for x := -1.0; x <= 256; x += 16 {
			v := e.At(x)
			if v < prev || v < 0 || v > 1 {
				t.Fatalf("ECDF not monotone in [0,1] at %g: %g (prev %g)", x, v, prev)
			}
			prev = v
		}
		if e.At(256) != 1 {
			t.Fatal("ECDF must reach 1 beyond the maximum")
		}
	})
}
