package stats

import "sort"

// insertionSortMax is the length up to which Sort uses a branch-light
// insertion sort instead of sort.Float64s. K-S rank groups are typically
// a few dozen values, where insertion sort beats the general-purpose
// sorter's dispatch and pivot machinery.
const insertionSortMax = 48

// Sort sorts xs ascending in place. For the short slices of the decision
// hot path (rank groups, peak lists) it runs a plain insertion sort;
// longer inputs fall through to sort.Float64s. Both produce the same
// ascending permutation for totally ordered (NaN-free) inputs, so the
// choice of algorithm can never change a downstream K-S statistic.
func Sort(xs []float64) {
	if len(xs) > insertionSortMax {
		sort.Float64s(xs)
		return
	}
	for i := 1; i < len(xs); i++ {
		x := xs[i]
		j := i
		for j > 0 && x < xs[j-1] {
			xs[j] = xs[j-1]
			j--
		}
		xs[j] = x
	}
}

// SlideSorted advances a sorted sliding-window sample by one step in
// place: it removes one occurrence of old and inserts next, keeping g
// sorted ascending. It runs in O(len(g)) with zero allocations — the
// monitor's incremental group maintenance when the window slides by one
// hop. It returns false (leaving g in an unspecified but same-multiset
// state) when old is not present, e.g. because a non-finite value
// defeated the binary search; callers must then rebuild the window from
// scratch.
func SlideSorted(g []float64, old, next float64) bool {
	if next != next {
		// NaN breaks the total order every comparison below relies on;
		// make the caller rebuild rather than silently corrupt the window.
		return false
	}
	if old == next {
		// The leaving and entering values are equal: the sorted window is
		// unchanged as a multiset, and any occurrence of the value stands
		// in for any other.
		i := sort.SearchFloat64s(g, old)
		return i < len(g) && g[i] == old
	}
	i := sort.SearchFloat64s(g, old)
	if i >= len(g) || g[i] != old {
		return false
	}
	if next > old {
		// Shift the gap right until the entering value fits.
		for i+1 < len(g) && g[i+1] < next {
			g[i] = g[i+1]
			i++
		}
	} else {
		for i > 0 && g[i-1] > next {
			g[i] = g[i-1]
			i--
		}
	}
	g[i] = next
	return true
}

// MedianSorted returns the median of a sample already sorted ascending,
// or 0 for an empty slice. It computes the identical expression to
// MedianScratch (which sorts a scratch copy first), so the two agree bit
// for bit on equal multisets.
func MedianSorted(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mid := len(xs) / 2
	if len(xs)%2 == 1 {
		return xs[mid]
	}
	return (xs[mid-1] + xs[mid]) / 2
}
