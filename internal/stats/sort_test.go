package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestSortMatchesSortFloat64s checks that Sort produces the identical
// ascending permutation as the stdlib sorter across the size boundary
// between the insertion and general paths.
func TestSortMatchesSortFloat64s(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 3, 7, 16, insertionSortMax, insertionSortMax + 1, 200} {
		for trial := 0; trial < 20; trial++ {
			xs := make([]float64, n)
			for i := range xs {
				// Coarse values force ties.
				xs[i] = math.Floor(rng.Float64() * 10)
			}
			want := append([]float64(nil), xs...)
			sort.Float64s(want)
			Sort(xs)
			for i := range xs {
				if xs[i] != want[i] {
					t.Fatalf("n=%d trial=%d: Sort diverges from sort.Float64s at %d: %v vs %v", n, trial, i, xs, want)
				}
			}
		}
	}
}

// TestSlideSorted drives a sorted sliding window through random slides
// and checks it always matches a from-scratch sort of the same window.
func TestSlideSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 24
	stream := make([]float64, 500)
	for i := range stream {
		stream[i] = math.Floor(rng.Float64() * 8) // heavy ties
	}
	g := append([]float64(nil), stream[:n]...)
	Sort(g)
	for w := 1; w+n <= len(stream); w++ {
		if !SlideSorted(g, stream[w-1], stream[w+n-1]) {
			t.Fatalf("slide %d: leaving value %g not found in window", w, stream[w-1])
		}
		want := append([]float64(nil), stream[w:w+n]...)
		sort.Float64s(want)
		for i := range g {
			if g[i] != want[i] {
				t.Fatalf("slide %d: window diverges at %d: %v vs %v", w, i, g, want)
			}
		}
	}
}

// TestSlideSortedRejectsBadInputs pins the rebuild-signalling contract:
// a missing leaving value or a NaN entering value returns false.
func TestSlideSortedRejectsBadInputs(t *testing.T) {
	g := []float64{1, 2, 3, 4}
	if SlideSorted(g, 2.5, 9) {
		t.Error("SlideSorted accepted a leaving value not in the window")
	}
	g = []float64{1, 2, 3, 4}
	if SlideSorted(g, 2, math.NaN()) {
		t.Error("SlideSorted accepted a NaN entering value")
	}
	g = []float64{1, 2, 3, 4}
	if SlideSorted(g, 5, 9) {
		t.Error("SlideSorted accepted a leaving value beyond the maximum")
	}
}

// TestMedianSortedMatchesMedianScratch checks bit-identity of the two
// median forms on equal multisets, odd and even lengths.
func TestMedianSortedMatchesMedianScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	scratch := make([]float64, 64)
	for _, n := range []int{1, 2, 3, 4, 9, 10, 33} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		want := MedianScratch(xs, scratch)
		sorted := append([]float64(nil), xs...)
		Sort(sorted)
		if got := MedianSorted(sorted); got != want {
			t.Errorf("n=%d: MedianSorted %g != MedianScratch %g", n, got, want)
		}
	}
	if MedianSorted(nil) != 0 {
		t.Error("MedianSorted(nil) != 0")
	}
}

// TestKSPresortedMatchesSorted checks the presorted kernel against the
// copy-and-sort kernel on random samples (the fuzz target deepens this).
func TestKSPresortedMatchesSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	const cAlpha = 1.6276 // ~99% confidence
	scratch := make([]float64, 256)
	for trial := 0; trial < 100; trial++ {
		m := 1 + rng.Intn(128)
		n := 1 + rng.Intn(64)
		ref := make([]float64, m)
		mon := make([]float64, n)
		for i := range ref {
			ref[i] = math.Floor(rng.Float64() * 20)
		}
		for i := range mon {
			mon[i] = math.Floor(rng.Float64()*20) + float64(trial%3)
		}
		sort.Float64s(ref)
		wantD, wantCrit := KSRejectStatSorted(ref, mon, scratch, cAlpha)
		monSorted := append([]float64(nil), mon...)
		Sort(monSorted)
		gotD, gotCrit := KSRejectStatPresorted(ref, monSorted, cAlpha)
		if gotD != wantD || gotCrit != wantCrit {
			t.Fatalf("trial %d: presorted (%g, %g) != sorted (%g, %g)", trial, gotD, gotCrit, wantD, wantCrit)
		}
		if KSRejectPresorted(ref, monSorted, cAlpha) != KSRejectSorted(ref, mon, scratch, cAlpha) {
			t.Fatalf("trial %d: verdicts diverge", trial)
		}
		if d := KSStatisticPresorted(ref, monSorted); d != KSStatistic(ref, mon) {
			t.Fatalf("trial %d: KSStatisticPresorted %g != KSStatistic %g", trial, d, KSStatistic(ref, mon))
		}
	}
}

// TestKSStatisticAllocs pins the single-backing-slice optimization: one
// allocation per call regardless of input sizes.
func TestKSStatisticAllocs(t *testing.T) {
	a := make([]float64, 300)
	b := make([]float64, 70)
	for i := range a {
		a[i] = float64(i % 17)
	}
	for i := range b {
		b[i] = float64(i % 13)
	}
	avg := testing.AllocsPerRun(200, func() {
		KSStatistic(a, b)
	})
	if avg > 1 {
		t.Errorf("KSStatistic allocates %.1f allocs/op, want <= 1", avg)
	}
	avg = testing.AllocsPerRun(200, func() {
		KSStatisticPresorted(a, b)
	})
	if avg != 0 {
		t.Errorf("KSStatisticPresorted allocates %.1f allocs/op, want 0", avg)
	}
}

// BenchmarkKSStatistic tracks the copy-and-sort statistic's cost and its
// single-allocation guarantee (run with -benchmem).
func BenchmarkKSStatistic(b *testing.B) {
	a := make([]float64, 256)
	c := make([]float64, 64)
	rng := rand.New(rand.NewSource(1))
	for i := range a {
		a[i] = rng.Float64()
	}
	for i := range c {
		c[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KSStatistic(a, c)
	}
}

// BenchmarkKSRejectPresorted is the sort-once hot-path kernel: one merge
// pass, zero copies, zero allocations.
func BenchmarkKSRejectPresorted(b *testing.B) {
	ref := make([]float64, 256)
	mon := make([]float64, 64)
	rng := rand.New(rand.NewSource(2))
	for i := range ref {
		ref[i] = rng.Float64()
	}
	for i := range mon {
		mon[i] = rng.Float64()
	}
	sort.Float64s(ref)
	sort.Float64s(mon)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KSRejectPresorted(ref, mon, 1.6276)
	}
}
