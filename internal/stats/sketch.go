package stats

import "math"

// QuantileSorted returns the q-quantile (q in [0,1]) of a sample already
// sorted ascending, with linear interpolation between adjacent order
// statistics. An empty sample yields 0.
func QuantileSorted(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q <= 0 {
		return xs[0]
	}
	if q >= 1 {
		return xs[len(xs)-1]
	}
	pos := q * float64(len(xs)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(xs) {
		return xs[len(xs)-1]
	}
	return xs[lo] + frac*(xs[lo+1]-xs[lo])
}

// BlendSorted nudges a sorted reference sample toward the empirical
// quantiles of a sorted observed sample, in place and without
// allocating. Each reference value ref[i] — the (i+0.5)/len(ref)
// quantile of the reference distribution — moves a fraction rate of the
// way toward the same quantile of obs, with the per-value step bounded
// to maxStepFrac of the reference span. The bound is the contamination
// guard's backstop: even an adversarial observation admitted past the
// K-S gate can move the reference only a bounded distance per update.
//
// The effective span is floored at minSpan (pass 0 for pure span
// semantics): a near-point-mass reference has a span orders of magnitude
// below its position, and a purely span-relative step bound would freeze
// it in place; callers that need such references to track slow drift pass
// a floor proportional to the reference's magnitude.
//
// ref is re-sorted before returning (clamped steps can locally reorder
// an almost-converged sketch), so it remains a valid presorted K-S
// reference. The return value is the mean absolute shift normalized by
// the effective span — the per-update drift distance, accumulated by
// callers into drift telemetry. Non-finite observation quantiles leave
// the corresponding reference value untouched.
func BlendSorted(ref, obs []float64, rate, maxStepFrac, minSpan float64) float64 {
	if len(ref) == 0 || len(obs) == 0 || rate <= 0 {
		return 0
	}
	span := ref[len(ref)-1] - ref[0]
	if span < minSpan {
		span = minSpan
	}
	if span <= 0 {
		// Degenerate (constant) reference: fall back to its magnitude so
		// the step bound and drift normalization stay meaningful.
		span = math.Abs(ref[0])
		if span == 0 {
			span = 1
		}
	}
	maxStep := maxStepFrac * span
	var total float64
	for i := range ref {
		q := (float64(i) + 0.5) / float64(len(ref))
		target := QuantileSorted(obs, q)
		if math.IsNaN(target) || math.IsInf(target, 0) {
			continue
		}
		step := rate * (target - ref[i])
		if step > maxStep {
			step = maxStep
		} else if step < -maxStep {
			step = -maxStep
		}
		ref[i] += step
		total += math.Abs(step)
	}
	Sort(ref)
	return total / (float64(len(ref)) * span)
}
