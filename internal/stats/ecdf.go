// Package stats implements the statistical machinery EDDIE relies on: the
// two-sample Kolmogorov–Smirnov test (EDDIE's core decision procedure), the
// Wilcoxon–Mann–Whitney U test (the alternative the paper evaluated and
// rejected), empirical distribution functions, descriptive statistics,
// histograms, and N-way ANOVA (used for the architecture-sensitivity study
// in §5.3 of the paper).
package stats

import (
	"fmt"
	"sort"
)

// ECDF is an empirical cumulative distribution function built from a sample.
// The zero value is unusable; construct with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from the sample. The input is copied and sorted.
func NewECDF(sample []float64) (*ECDF, error) {
	if len(sample) == 0 {
		return nil, fmt.Errorf("stats: ECDF requires a non-empty sample")
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// At returns F(x) = P(X <= x), the fraction of the sample <= x.
func (e *ECDF) At(x float64) float64 {
	// sort.SearchFloat64s returns the first index i with sorted[i] >= x,
	// so we search for the first index strictly greater than x.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// Quantile returns the q-th empirical quantile, q in [0,1], using the
// nearest-rank definition. Values of q outside [0,1] are clamped.
func (e *ECDF) Quantile(q float64) float64 {
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	idx := int(q*float64(len(e.sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(e.sorted) {
		idx = len(e.sorted) - 1
	}
	return e.sorted[idx]
}

// Sorted returns the underlying sorted sample. The caller must not modify it.
func (e *ECDF) Sorted() []float64 { return e.sorted }
