package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs, or 0 when fewer than
// two observations are available.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the sample median, or 0 for an empty slice.
func Median(xs []float64) float64 {
	return MedianScratch(xs, make([]float64, len(xs)))
}

// MedianScratch is Median on caller-provided scratch space (len >=
// len(xs)); the hot decision loop uses it to stay allocation-free. xs is
// unmodified; scratch contents are overwritten.
func MedianScratch(xs, scratch []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := copy(scratch, xs)
	s := scratch[:n]
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// MinMax returns the smallest and largest value of xs. For an empty slice
// it returns (0, 0).
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Histogram bins xs into nbins equal-width bins spanning [lo, hi] and
// returns the count per bin. Values outside the range are clamped into the
// first/last bin. nbins must be positive and hi > lo; otherwise nil.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins <= 0 || hi <= lo {
		return nil
	}
	counts := make([]int, nbins)
	width := (hi - lo) / float64(nbins)
	for _, x := range xs {
		i := int((x - lo) / width)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		counts[i]++
	}
	return counts
}

// FitNormal returns the maximum-likelihood normal parameters (mean, sigma)
// of xs. Used for the Fig 2 illustration of why parametric fits fail.
func FitNormal(xs []float64) (mu, sigma float64) {
	mu = Mean(xs)
	if len(xs) < 2 {
		return mu, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mu
		ss += d * d
	}
	return mu, math.Sqrt(ss / float64(len(xs)))
}

// NormalPDF evaluates the normal density with the given parameters.
func NormalPDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		return 0
	}
	z := (x - mu) / sigma
	return math.Exp(-0.5*z*z) / (sigma * math.Sqrt(2*math.Pi))
}

// BiNormalFit is a two-component Gaussian mixture fitted with a small EM
// loop. The paper shows (Fig 2) that even a bi-normal fit mismatches the
// true peak-frequency distribution, motivating nonparametric tests.
type BiNormalFit struct {
	Weight1, Mu1, Sigma1 float64
	Weight2, Mu2, Sigma2 float64
}

// FitBiNormal runs expectation–maximization for a two-component 1-D
// Gaussian mixture. iterations controls the number of EM steps.
func FitBiNormal(xs []float64, iterations int) BiNormalFit {
	if len(xs) == 0 {
		return BiNormalFit{Weight1: 0.5, Weight2: 0.5}
	}
	lo, hi := MinMax(xs)
	f := BiNormalFit{
		Weight1: 0.5, Mu1: lo + (hi-lo)/4, Sigma1: (hi - lo) / 4,
		Weight2: 0.5, Mu2: lo + 3*(hi-lo)/4, Sigma2: (hi - lo) / 4,
	}
	if f.Sigma1 <= 0 {
		f.Sigma1, f.Sigma2 = 1, 1
	}
	resp := make([]float64, len(xs))
	for it := 0; it < iterations; it++ {
		// E step: responsibility of component 1 for each observation.
		for i, x := range xs {
			p1 := f.Weight1 * NormalPDF(x, f.Mu1, f.Sigma1)
			p2 := f.Weight2 * NormalPDF(x, f.Mu2, f.Sigma2)
			if p1+p2 <= 0 {
				resp[i] = 0.5
			} else {
				resp[i] = p1 / (p1 + p2)
			}
		}
		// M step.
		var n1, s1, n2, s2 float64
		for i, x := range xs {
			n1 += resp[i]
			s1 += resp[i] * x
			n2 += 1 - resp[i]
			s2 += (1 - resp[i]) * x
		}
		if n1 <= 0 || n2 <= 0 {
			break
		}
		f.Mu1 = s1 / n1
		f.Mu2 = s2 / n2
		var v1, v2 float64
		for i, x := range xs {
			d1 := x - f.Mu1
			d2 := x - f.Mu2
			v1 += resp[i] * d1 * d1
			v2 += (1 - resp[i]) * d2 * d2
		}
		f.Sigma1 = math.Sqrt(v1/n1) + 1e-12
		f.Sigma2 = math.Sqrt(v2/n2) + 1e-12
		f.Weight1 = n1 / float64(len(xs))
		f.Weight2 = n2 / float64(len(xs))
	}
	return f
}

// PDF evaluates the mixture density.
func (f BiNormalFit) PDF(x float64) float64 {
	return f.Weight1*NormalPDF(x, f.Mu1, f.Sigma1) + f.Weight2*NormalPDF(x, f.Mu2, f.Sigma2)
}

// CDF evaluates the mixture cumulative distribution.
func (f BiNormalFit) CDF(x float64) float64 {
	c1 := NormalCDF((x - f.Mu1) / f.Sigma1)
	c2 := NormalCDF((x - f.Mu2) / f.Sigma2)
	return f.Weight1*c1 + f.Weight2*c2
}
