package stats

import (
	"fmt"
	"math/rand"
	"sort"
)

// ADResult reports the outcome of a two-sample Anderson–Darling
// permutation test.
type ADResult struct {
	// A2 is the two-sample Anderson–Darling statistic (Scholz & Stephens
	// 1987, k=2 discrete form).
	A2 float64
	// PValue is the permutation p-value: the fraction of label
	// permutations with a statistic at least as large.
	PValue float64
	// Reject reports whether H0 (same population) is rejected at the
	// requested significance level.
	Reject bool
}

// ADStatistic computes the two-sample Anderson–Darling statistic. Larger
// values indicate stronger evidence that the samples come from different
// populations. Compared to the K-S statistic it weights the distribution
// tails more heavily, making it more sensitive to shifts that move only a
// small fraction of the probability mass.
func ADStatistic(a, b []float64) float64 {
	m := len(a)
	n := len(b)
	if m == 0 || n == 0 {
		return 0
	}
	nTot := m + n
	pooled := make([]float64, 0, nTot)
	pooled = append(pooled, a...)
	pooled = append(pooled, b...)
	sort.Float64s(pooled)
	as := append([]float64(nil), a...)
	sort.Float64s(as)

	var a2 float64
	mi := 0 // count of sample-a values <= current pooled value
	for j := 0; j < nTot-1; j++ {
		v := pooled[j]
		for mi < m && as[mi] <= v {
			mi++
		}
		jj := float64(j + 1)
		d := float64(mi)*float64(nTot) - jj*float64(m)
		a2 += d * d / (jj * (float64(nTot) - jj))
	}
	return a2 / float64(m*n)
}

// ADTest runs the two-sample Anderson–Darling test at significance level
// alpha, with the null distribution estimated by label permutation
// (deterministic given seed). permutations controls the resolution of the
// p-value; 199 gives a granularity of 0.5%.
func ADTest(a, b []float64, alpha float64, permutations int, seed int64) (ADResult, error) {
	if len(a) == 0 || len(b) == 0 {
		return ADResult{}, fmt.Errorf("stats: A-D test requires non-empty samples (m=%d, n=%d)", len(a), len(b))
	}
	if alpha <= 0 || alpha >= 1 {
		return ADResult{}, fmt.Errorf("stats: A-D significance level must be in (0,1), got %g", alpha)
	}
	if permutations < 19 {
		return ADResult{}, fmt.Errorf("stats: at least 19 permutations required, got %d", permutations)
	}
	observed := ADStatistic(a, b)
	pooled := make([]float64, 0, len(a)+len(b))
	pooled = append(pooled, a...)
	pooled = append(pooled, b...)
	rng := rand.New(rand.NewSource(seed))
	extreme := 1 // the observed labeling counts once
	for p := 0; p < permutations; p++ {
		rng.Shuffle(len(pooled), func(i, j int) {
			pooled[i], pooled[j] = pooled[j], pooled[i]
		})
		if ADStatistic(pooled[:len(a)], pooled[len(a):]) >= observed {
			extreme++
		}
	}
	pValue := float64(extreme) / float64(permutations+1)
	return ADResult{A2: observed, PValue: pValue, Reject: pValue < alpha}, nil
}
