package stats

import (
	"fmt"
	"math"
	"sort"
)

// UTestResult reports the outcome of a two-sample Wilcoxon–Mann–Whitney
// rank-sum test (normal approximation with tie correction).
type UTestResult struct {
	// U is the Mann–Whitney U statistic for the first sample.
	U float64
	// Z is the standardized statistic under the normal approximation.
	Z float64
	// PValue is the two-sided p-value.
	PValue float64
	// Reject reports whether the null hypothesis of equal distributions
	// (sensitive to median shifts) is rejected at the requested level.
	Reject bool
}

// UTest runs the two-sided Wilcoxon–Mann–Whitney test at significance level
// alpha. The paper compared this test against the K-S test and found the
// K-S test performs better for EDDIE; we keep it as the ablation baseline.
func UTest(a, b []float64, alpha float64) (UTestResult, error) {
	if len(a) == 0 || len(b) == 0 {
		return UTestResult{}, fmt.Errorf("stats: U test requires non-empty samples (m=%d, n=%d)", len(a), len(b))
	}
	if alpha <= 0 || alpha >= 1 {
		return UTestResult{}, fmt.Errorf("stats: U test significance level must be in (0,1), got %g", alpha)
	}
	m := len(a)
	n := len(b)
	type obs struct {
		v     float64
		fromA bool
	}
	all := make([]obs, 0, m+n)
	for _, v := range a {
		all = append(all, obs{v, true})
	}
	for _, v := range b {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Midranks with tie correction term sum(t^3 - t).
	ranks := make([]float64, len(all))
	var tieCorrection float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		r := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = r
		}
		t := float64(j - i)
		tieCorrection += t*t*t - t
		i = j
	}
	var rankSumA float64
	for i, o := range all {
		if o.fromA {
			rankSumA += ranks[i]
		}
	}
	mf := float64(m)
	nf := float64(n)
	u := rankSumA - mf*(mf+1)/2
	mean := mf * nf / 2
	total := mf + nf
	variance := mf * nf / 12 * ((total + 1) - tieCorrection/(total*(total-1)))
	if variance <= 0 {
		// All observations identical: no evidence against H0.
		return UTestResult{U: u, Z: 0, PValue: 1, Reject: false}, nil
	}
	z := (u - mean) / math.Sqrt(variance)
	p := 2 * NormalSurvival(math.Abs(z))
	if p > 1 {
		p = 1
	}
	return UTestResult{U: u, Z: z, PValue: p, Reject: p < alpha}, nil
}

// NormalSurvival returns P(Z > z) for the standard normal distribution.
func NormalSurvival(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// NormalCDF returns P(Z <= z) for the standard normal distribution.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}
