package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestQuantileSorted pins the interpolation convention against hand
// computations and the edge clamps.
func TestQuantileSorted(t *testing.T) {
	xs := []float64{1, 2, 4, 8}
	cases := []struct{ q, want float64 }{
		{-1, 1}, {0, 1}, {1, 8}, {2, 8},
		{0.5, 3},       // midway between 2 and 4
		{1.0 / 3.0, 2}, // exactly the second order statistic
		{0.25, 1.75},   // pos 0.75 between 1 and 2
		{5.0 / 6.0, 6}, // pos 2.5 between 4 and 8
	}
	for _, c := range cases {
		if got := QuantileSorted(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("QuantileSorted(q=%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if got := QuantileSorted(nil, 0.5); got != 0 {
		t.Errorf("QuantileSorted(empty) = %g, want 0", got)
	}
	if got := QuantileSorted([]float64{7}, 0.9); got != 7 {
		t.Errorf("QuantileSorted(single) = %g, want 7", got)
	}
}

// TestBlendSortedConverges drives a reference sketch toward a shifted
// target distribution through repeated bounded blends: the sketch must
// converge to the target quantiles and stay sorted after every step.
func TestBlendSortedConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 32
	ref := make([]float64, n)
	target := make([]float64, 256)
	for i := range ref {
		ref[i] = rng.NormFloat64()
	}
	for i := range target {
		target[i] = 5 + 2*rng.NormFloat64()
	}
	Sort(ref)
	Sort(target)

	var total float64
	for step := 0; step < 400; step++ {
		total += BlendSorted(ref, target, 0.1, 0.05, 0)
		for i := 1; i < n; i++ {
			if ref[i] < ref[i-1] {
				t.Fatalf("step %d: reference left unsorted at %d", step, i)
			}
		}
	}
	if total <= 0 {
		t.Fatal("BlendSorted reported zero cumulative drift for a real shift")
	}
	// After convergence each sketch value should sit near its target
	// quantile (sampling noise in the 256-point target dominates).
	for i := range ref {
		q := (float64(i) + 0.5) / float64(n)
		want := QuantileSorted(target, q)
		if math.Abs(ref[i]-want) > 0.5 {
			t.Errorf("sketch[%d] = %g, want ~%g (q=%.3f)", i, ref[i], want, q)
		}
	}
}

// TestBlendSortedStepBound verifies the contamination backstop: one
// update against an adversarially distant observation moves no value by
// more than maxStepFrac of the reference span.
func TestBlendSortedStepBound(t *testing.T) {
	ref := []float64{0, 1, 2, 3, 4} // span 4
	before := append([]float64(nil), ref...)
	obs := []float64{1e6, 1e6 + 1, 1e6 + 2}
	Sort(obs)
	const maxFrac = 0.05
	drift := BlendSorted(ref, obs, 1.0, maxFrac, 0)
	maxStep := maxFrac * 4
	for i := range ref {
		if d := math.Abs(ref[i] - before[i]); d > maxStep+1e-12 {
			t.Errorf("value %d moved %g, bound %g", i, d, maxStep)
		}
	}
	if drift > maxFrac+1e-12 {
		t.Errorf("normalized drift %g exceeds per-update bound %g", drift, maxFrac)
	}
}

// TestBlendSortedDegenerate covers empty inputs, zero rate, NaN targets
// and a constant reference.
func TestBlendSortedDegenerate(t *testing.T) {
	if d := BlendSorted(nil, []float64{1}, 0.5, 0.1, 0); d != 0 {
		t.Errorf("empty ref drift = %g", d)
	}
	if d := BlendSorted([]float64{1, 2}, nil, 0.5, 0.1, 0); d != 0 {
		t.Errorf("empty obs drift = %g", d)
	}
	if d := BlendSorted([]float64{1, 2}, []float64{3}, 0, 0.1, 0); d != 0 {
		t.Errorf("zero-rate drift = %g", d)
	}
	ref := []float64{2, 2, 2}
	BlendSorted(ref, []float64{math.NaN(), math.NaN()}, 0.5, 0.1, 0)
	for i, v := range ref {
		if v != 2 {
			t.Errorf("NaN obs moved ref[%d] to %g", i, v)
		}
	}
	// Constant reference: span falls back to |ref[0]|, blend still moves.
	ref = []float64{2, 2, 2}
	BlendSorted(ref, []float64{4, 4, 4}, 0.5, 1, 0)
	for i, v := range ref {
		if v <= 2 {
			t.Errorf("constant ref[%d] did not move toward target: %g", i, v)
		}
	}
}

// TestBlendSortedSpanFloor verifies that minSpan widens the step bound of
// a near-point-mass reference: with the natural span the sketch could
// barely move per update; with the floor it tracks a shifted target.
func TestBlendSortedSpanFloor(t *testing.T) {
	// Span 0.002 around 1000; target shifted by 1 (500 natural spans away).
	narrow := func() []float64 { return []float64{999.999, 1000, 1000.001} }
	obs := []float64{1000.999, 1001, 1001.001}

	ref := narrow()
	BlendSorted(ref, obs, 1.0, 0.05, 0)
	if moved := ref[1] - 1000; moved > 0.001 {
		t.Fatalf("floorless blend moved midpoint by %g; natural span bound broken", moved)
	}

	ref = narrow()
	BlendSorted(ref, obs, 1.0, 0.05, 10) // step bound now 0.05*10 = 0.5
	moved := ref[1] - 1000
	if moved < 0.4 || moved > 0.5+1e-9 {
		t.Errorf("floored blend moved midpoint by %g, want ~0.5", moved)
	}
}
