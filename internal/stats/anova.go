package stats

import (
	"fmt"
	"math"
)

// FactorEffect is the ANOVA result for one factor.
type FactorEffect struct {
	// Name of the factor (e.g. "pipeline-depth").
	Name string
	// SumSq is the between-level sum of squares attributed to the factor.
	SumSq float64
	// DF is the factor's degrees of freedom (levels - 1).
	DF int
	// F is the F statistic (factor mean square over residual mean square).
	F float64
	// PValue is the probability of an F at least this large under the
	// null hypothesis that the factor has no effect.
	PValue float64
	// Significant reports PValue < alpha for the alpha given to ANOVA.
	Significant bool
}

// ANOVAResult is the outcome of an N-way main-effects ANOVA.
type ANOVAResult struct {
	Effects    []FactorEffect
	ResidualSS float64
	ResidualDF int
	TotalSS    float64
}

// ANOVA performs an N-way main-effects analysis of variance.
//
// response[i] is the i-th observation; levels[f][i] is the level of factor
// f for observation i. Factor names are given in names. alpha is the
// significance threshold for the Significant flag (the paper uses the
// conventional 0.05).
//
// This is the unbalanced-design sequential (type I) decomposition with main
// effects only, which matches how the paper uses ANOVA: to ask which
// architectural parameters have a statistically significant impact on
// EDDIE's detection latency.
func ANOVA(response []float64, levels [][]int, names []string, alpha float64) (ANOVAResult, error) {
	n := len(response)
	if n < 2 {
		return ANOVAResult{}, fmt.Errorf("stats: ANOVA requires at least 2 observations, got %d", n)
	}
	if len(levels) != len(names) {
		return ANOVAResult{}, fmt.Errorf("stats: ANOVA got %d factors but %d names", len(levels), len(names))
	}
	for f, lv := range levels {
		if len(lv) != n {
			return ANOVAResult{}, fmt.Errorf("stats: factor %q has %d observations, want %d", names[f], len(lv), n)
		}
	}
	grand := Mean(response)
	var totalSS float64
	for _, y := range response {
		d := y - grand
		totalSS += d * d
	}

	var effects []FactorEffect
	var explainedSS float64
	residualDF := n - 1
	for f := range levels {
		sums := map[int]float64{}
		counts := map[int]int{}
		for i, y := range response {
			sums[levels[f][i]] += y
			counts[levels[f][i]]++
		}
		var ss float64
		for lvl, s := range sums {
			m := s / float64(counts[lvl])
			d := m - grand
			ss += float64(counts[lvl]) * d * d
		}
		df := len(sums) - 1
		effects = append(effects, FactorEffect{Name: names[f], SumSq: ss, DF: df})
		explainedSS += ss
		residualDF -= df
	}
	residualSS := totalSS - explainedSS
	if residualSS < 0 {
		residualSS = 0
	}
	if residualDF < 1 {
		residualDF = 1
	}
	msr := residualSS / float64(residualDF)
	for i := range effects {
		e := &effects[i]
		if e.DF <= 0 || msr <= 0 {
			e.F = math.Inf(1)
			e.PValue = 0
		} else {
			e.F = (e.SumSq / float64(e.DF)) / msr
			e.PValue = FSurvival(e.F, float64(e.DF), float64(residualDF))
		}
		e.Significant = e.PValue < alpha
	}
	return ANOVAResult{
		Effects:    effects,
		ResidualSS: residualSS,
		ResidualDF: residualDF,
		TotalSS:    totalSS,
	}, nil
}

// FSurvival returns P(F > x) for an F distribution with d1 and d2 degrees
// of freedom, via the regularized incomplete beta function.
func FSurvival(x, d1, d2 float64) float64 {
	if x <= 0 {
		return 1
	}
	// P(F <= x) = I_{d1*x/(d1*x+d2)}(d1/2, d2/2)
	z := d1 * x / (d1*x + d2)
	return 1 - RegIncBeta(d1/2, d2/2, z)
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes style, modified
// Lentz algorithm).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF evaluates the continued fraction of the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 1e-14
		tiny    = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		mf := float64(m)
		m2 := 2 * mf
		aa := mf * (b - mf) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + mf) * (qab + mf) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
