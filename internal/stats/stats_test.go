package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e, err := NewECDF([]float64{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x, want float64
	}{
		{0.5, 0}, {1, 1.0 / 3}, {1.5, 1.0 / 3}, {2, 2.0 / 3}, {3, 1}, {99, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("F(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	if _, err := NewECDF(nil); err == nil {
		t.Error("empty sample should be rejected")
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		s := make([]float64, n)
		for i := range s {
			s[i] = r.NormFloat64() * 10
		}
		e, err := NewECDF(s)
		if err != nil {
			return false
		}
		prev := -1.0
		for x := -30.0; x <= 30; x += 0.5 {
			v := e.At(x)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestECDFQuantile(t *testing.T) {
	e, _ := NewECDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if q := e.Quantile(0); q != 1 {
		t.Errorf("q0 = %g", q)
	}
	if q := e.Quantile(1); q != 10 {
		t.Errorf("q1 = %g", q)
	}
	if q := e.Quantile(0.5); q != 5 {
		t.Errorf("median = %g, want 5", q)
	}
}

func TestKSStatisticKnownValues(t *testing.T) {
	// Identical samples: D = 0.
	a := []float64{1, 2, 3, 4}
	if d := KSStatistic(a, a); d != 0 {
		t.Errorf("identical samples: D = %g", d)
	}
	// Completely disjoint: D = 1.
	b := []float64{10, 11, 12}
	if d := KSStatistic(a, b); d != 1 {
		t.Errorf("disjoint samples: D = %g", d)
	}
	// Hand-computed: a={1,2}, b={1.5}: F_a steps 0.5 at 1, 1 at 2;
	// F_b steps 1 at 1.5. Max gap is 0.5 (at 1 and at 1.5).
	if d := KSStatistic([]float64{1, 2}, []float64{1.5}); math.Abs(d-0.5) > 1e-12 {
		t.Errorf("D = %g, want 0.5", d)
	}
}

func TestKSStatisticProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(60)
		n := 1 + r.Intn(60)
		a := make([]float64, m)
		bb := make([]float64, n)
		for i := range a {
			a[i] = r.NormFloat64()
		}
		for i := range bb {
			bb[i] = r.NormFloat64()
		}
		d1 := KSStatistic(a, bb)
		d2 := KSStatistic(bb, a)
		// Symmetry, range, and zero for self-comparison.
		return math.Abs(d1-d2) < 1e-12 && d1 >= 0 && d1 <= 1 && KSStatistic(a, a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestKolmogorovDistribution(t *testing.T) {
	// Textbook values: Q(1.36) ~ 0.049, Q(1.63) ~ 0.010.
	if q := KolmogorovSurvival(1.36); math.Abs(q-0.049) > 0.002 {
		t.Errorf("Q(1.36) = %g, want ~0.049", q)
	}
	if q := KolmogorovSurvival(1.63); math.Abs(q-0.010) > 0.001 {
		t.Errorf("Q(1.63) = %g, want ~0.010", q)
	}
	if q := KolmogorovSurvival(0); q != 1 {
		t.Errorf("Q(0) = %g", q)
	}
	// Inverse round trip.
	for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
		c := KolmogorovInverse(p)
		if got := KolmogorovCDF(c); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Inverse(%g)) = %g", p, got)
		}
	}
	// The classic critical constants.
	if c := KolmogorovInverse(0.95); math.Abs(c-1.358) > 0.002 {
		t.Errorf("c(0.05) = %g, want ~1.358", c)
	}
	if c := KolmogorovInverse(0.99); math.Abs(c-1.628) > 0.002 {
		t.Errorf("c(0.01) = %g, want ~1.628", c)
	}
}

func TestKSTestSameDistributionRarelyRejects(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	rejects := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		a := make([]float64, 100)
		b := make([]float64, 40)
		for j := range a {
			a[j] = r.NormFloat64()
		}
		for j := range b {
			b[j] = r.NormFloat64()
		}
		res, err := KSTest(a, b, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reject {
			rejects++
		}
	}
	// At alpha=0.01 we expect ~1% false rejections; allow up to 4%.
	if rejects > trials*4/100 {
		t.Errorf("%d/%d false rejections at alpha=0.01", rejects, trials)
	}
}

func TestKSTestDifferentDistributionsReject(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	detected := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		a := make([]float64, 100)
		b := make([]float64, 40)
		for j := range a {
			a[j] = r.NormFloat64()
		}
		for j := range b {
			b[j] = r.NormFloat64() + 1.2 // shifted mean
		}
		res, err := KSTest(a, b, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reject {
			detected++
		}
	}
	if detected < trials*85/100 {
		t.Errorf("only %d/%d shifted distributions detected", detected, trials)
	}
}

func TestKSRejectSortedMatchesKSTest(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	cAlpha := KolmogorovInverse(0.99)
	scratch := make([]float64, 64)
	for i := 0; i < 200; i++ {
		m := 20 + r.Intn(100)
		n := 4 + r.Intn(60)
		ref := make([]float64, m)
		mon := make([]float64, n)
		for j := range ref {
			ref[j] = r.NormFloat64()
		}
		for j := range mon {
			mon[j] = r.NormFloat64() + r.Float64()
		}
		want, err := KSTest(ref, mon, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		sortedRef := append([]float64(nil), ref...)
		sortFloats(sortedRef)
		got := KSRejectSorted(sortedRef, mon, scratch, cAlpha)
		if got != want.Reject {
			t.Fatalf("trial %d: fast path %v, reference %v (D=%g crit=%g)", i, got, want.Reject, want.D, want.Critical)
		}
	}
}

func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

func TestKSTestValidation(t *testing.T) {
	if _, err := KSTest(nil, []float64{1}, 0.01); err == nil {
		t.Error("empty reference should error")
	}
	if _, err := KSTest([]float64{1}, []float64{1}, 0); err == nil {
		t.Error("alpha=0 should error")
	}
	if _, err := KSTest([]float64{1}, []float64{1}, 1); err == nil {
		t.Error("alpha=1 should error")
	}
}

func TestUTestDetectsMedianShift(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64() + 0.8
	}
	res, err := UTest(a, b, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject {
		t.Errorf("shift of 0.8 sigma not detected: p=%g", res.PValue)
	}
	same, err := UTest(a, a, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if same.Reject {
		t.Errorf("identical samples rejected: p=%g", same.PValue)
	}
}

func TestUTestVarianceOnlyChangeIsInvisible(t *testing.T) {
	// The U test keys on medians; a pure variance change with the same
	// median should usually pass, while the K-S test catches it. This is
	// the property that made the paper pick K-S.
	r := rand.New(rand.NewSource(11))
	a := make([]float64, 400)
	b := make([]float64, 400)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64() * 3
	}
	u, err := UTest(a, b, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := KSTest(a, b, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if u.Reject {
		t.Log("U test rejected a variance-only change (possible but unusual)")
	}
	if !ks.Reject {
		t.Error("K-S test should detect a 3x variance change with n=400")
	}
}

func TestNormalCDFValues(t *testing.T) {
	if got := NormalCDF(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Phi(0) = %g", got)
	}
	if got := NormalCDF(1.96); math.Abs(got-0.975) > 1e-3 {
		t.Errorf("Phi(1.96) = %g", got)
	}
	if got := NormalSurvival(1.96) + NormalCDF(1.96); math.Abs(got-1) > 1e-12 {
		t.Errorf("survival+cdf = %g", got)
	}
}

func TestDescriptiveStats(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %g", m)
	}
	if v := Variance(xs); math.Abs(v-32.0/7) > 1e-12 {
		t.Errorf("variance = %g, want %g", v, 32.0/7)
	}
	if md := Median(xs); md != 4.5 {
		t.Errorf("median = %g", md)
	}
	lo, hi := MinMax(xs)
	if lo != 2 || hi != 9 {
		t.Errorf("minmax = %g,%g", lo, hi)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 || Median(nil) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0.1, 0.2, 0.6, 0.9, -1, 2}, 0, 1, 2)
	// -1 clamps into bin 0, 2 clamps into bin 1.
	if h[0] != 3 || h[1] != 3 {
		t.Errorf("histogram = %v", h)
	}
	if Histogram(nil, 0, 0, 2) != nil {
		t.Error("hi<=lo should give nil")
	}
	if Histogram(nil, 0, 1, 0) != nil {
		t.Error("nbins<=0 should give nil")
	}
}

func TestFitBiNormalSeparatesModes(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	xs := make([]float64, 600)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = r.NormFloat64()*0.3 + 1
		} else {
			xs[i] = r.NormFloat64()*0.3 + 5
		}
	}
	fit := FitBiNormal(xs, 60)
	lo, hi := fit.Mu1, fit.Mu2
	if lo > hi {
		lo, hi = hi, lo
	}
	if math.Abs(lo-1) > 0.3 || math.Abs(hi-5) > 0.3 {
		t.Errorf("modes at %g, %g; want ~1 and ~5", lo, hi)
	}
	// CDF should be a valid distribution function.
	if c := fit.CDF(-100); c > 1e-6 {
		t.Errorf("CDF(-inf) = %g", c)
	}
	if c := fit.CDF(100); c < 1-1e-6 {
		t.Errorf("CDF(inf) = %g", c)
	}
}

func TestRegIncBeta(t *testing.T) {
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); math.Abs(got-x) > 1e-10 {
			t.Errorf("I_%g(1,1) = %g", x, got)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	if got := RegIncBeta(2, 3, 0.4) + RegIncBeta(3, 2, 0.6); math.Abs(got-1) > 1e-10 {
		t.Errorf("symmetry violated: %g", got)
	}
	if RegIncBeta(2, 2, 0) != 0 || RegIncBeta(2, 2, 1) != 1 {
		t.Error("boundary values wrong")
	}
}

func TestFSurvival(t *testing.T) {
	// F(1, d1, d2) with d1=d2 has survival 0.5 by symmetry.
	if got := FSurvival(1, 10, 10); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("P(F>1) = %g, want 0.5", got)
	}
	// Critical value check: P(F_{2,20} > 3.49) ~ 0.05.
	if got := FSurvival(3.49, 2, 20); math.Abs(got-0.05) > 0.005 {
		t.Errorf("P(F_{2,20} > 3.49) = %g, want ~0.05", got)
	}
	if got := FSurvival(0, 2, 2); got != 1 {
		t.Errorf("P(F>0) = %g", got)
	}
}

func TestANOVADetectsRealEffect(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	var resp []float64
	var f1, f2 []int
	for i := 0; i < 120; i++ {
		a := i % 3 // factor 1: real effect
		b := i % 2 // factor 2: no effect
		y := float64(a)*2 + r.NormFloat64()*0.5
		resp = append(resp, y)
		f1 = append(f1, a)
		f2 = append(f2, b)
	}
	res, err := ANOVA(resp, [][]int{f1, f2}, []string{"real", "null"}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Effects[0].Significant {
		t.Errorf("real effect not significant: p=%g", res.Effects[0].PValue)
	}
	if res.Effects[1].Significant {
		t.Errorf("null effect significant: p=%g", res.Effects[1].PValue)
	}
}

func TestANOVAValidation(t *testing.T) {
	if _, err := ANOVA([]float64{1}, nil, nil, 0.05); err == nil {
		t.Error("single observation should error")
	}
	if _, err := ANOVA([]float64{1, 2}, [][]int{{0}}, []string{"f"}, 0.05); err == nil {
		t.Error("mismatched factor length should error")
	}
	if _, err := ANOVA([]float64{1, 2}, [][]int{{0, 1}}, []string{"f", "g"}, 0.05); err == nil {
		t.Error("name/factor count mismatch should error")
	}
}

func BenchmarkKSRejectSorted(b *testing.B) {
	r := rand.New(rand.NewSource(14))
	ref := make([]float64, 1000)
	for i := range ref {
		ref[i] = r.NormFloat64()
	}
	sortFloats(ref)
	mon := make([]float64, 32)
	for i := range mon {
		mon[i] = r.NormFloat64()
	}
	scratch := make([]float64, 64)
	cAlpha := KolmogorovInverse(0.99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KSRejectSorted(ref, mon, scratch, cAlpha)
	}
}

func TestADStatisticBasics(t *testing.T) {
	// Identical samples: small statistic; disjoint samples: large.
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	same := ADStatistic(a, a)
	far := ADStatistic(a, []float64{101, 102, 103, 104, 105, 106, 107, 108})
	if far <= same {
		t.Errorf("disjoint samples A2=%g should exceed identical samples A2=%g", far, same)
	}
	if ADStatistic(nil, a) != 0 || ADStatistic(a, nil) != 0 {
		t.Error("empty sample should give 0")
	}
}

func TestADTestCalibration(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	rejects := 0
	const trials = 60
	for i := 0; i < trials; i++ {
		a := make([]float64, 40)
		b := make([]float64, 20)
		for j := range a {
			a[j] = r.NormFloat64()
		}
		for j := range b {
			b[j] = r.NormFloat64()
		}
		res, err := ADTest(a, b, 0.05, 199, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if res.Reject {
			rejects++
		}
	}
	// ~5% expected; allow up to 15%.
	if rejects > trials*15/100 {
		t.Errorf("%d/%d false rejections at alpha=0.05", rejects, trials)
	}
	// Power: a clear shift must be detected most of the time.
	detected := 0
	for i := 0; i < 20; i++ {
		a := make([]float64, 40)
		b := make([]float64, 20)
		for j := range a {
			a[j] = r.NormFloat64()
		}
		for j := range b {
			b[j] = r.NormFloat64() + 1.5
		}
		res, err := ADTest(a, b, 0.05, 199, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if res.Reject {
			detected++
		}
	}
	if detected < 16 {
		t.Errorf("only %d/20 1.5-sigma shifts detected", detected)
	}
}

func TestADTestTailSensitivity(t *testing.T) {
	// A contamination that moves only 15% of the mass far into the tail:
	// the A-D statistic should stand out more (relative to its same-
	// population value) than K-S does, reflecting its tail weighting.
	r := rand.New(rand.NewSource(22))
	a := make([]float64, 200)
	b := make([]float64, 100)
	for j := range a {
		a[j] = r.NormFloat64()
	}
	for j := range b {
		b[j] = r.NormFloat64()
		if j%4 == 0 {
			b[j] += 6 // 25% of points pushed into the far tail
		}
	}
	res, err := ADTest(a, b, 0.05, 199, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject {
		t.Errorf("tail contamination not detected: A2=%g p=%g", res.A2, res.PValue)
	}
}

func TestADTestValidation(t *testing.T) {
	if _, err := ADTest(nil, []float64{1}, 0.05, 199, 1); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := ADTest([]float64{1}, []float64{1}, 0, 199, 1); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := ADTest([]float64{1}, []float64{1}, 0.05, 5, 1); err == nil {
		t.Error("too few permutations accepted")
	}
}
