package stats

import (
	"fmt"
	"math"
	"sort"
)

// KSResult reports the outcome of a two-sample Kolmogorov–Smirnov test.
type KSResult struct {
	// D is the K-S statistic: the maximum absolute difference between the
	// two empirical distribution functions.
	D float64
	// Critical is the rejection threshold D_{m,n,alpha} at the requested
	// significance level.
	Critical float64
	// PValue is the asymptotic probability of observing a statistic at
	// least as large as D under the null hypothesis that both samples were
	// drawn from the same population.
	PValue float64
	// Reject reports whether the null hypothesis is rejected at the
	// requested significance level (D > Critical).
	Reject bool
	// M and N are the two sample sizes.
	M, N int
}

// KSTest runs the two-sample Kolmogorov–Smirnov test on reference sample
// ref (size m) and monitored sample mon (size n) at significance level
// alpha (e.g. 0.01 for the paper's 99% confidence).
//
// The null hypothesis H0 is that both samples come from the same
// population. H0 is rejected when D_{m,n} > c(alpha)*sqrt((m+n)/(m*n)),
// where c is the inverse of the Kolmogorov distribution.
func KSTest(ref, mon []float64, alpha float64) (KSResult, error) {
	if len(ref) == 0 || len(mon) == 0 {
		return KSResult{}, fmt.Errorf("stats: K-S test requires non-empty samples (m=%d, n=%d)", len(ref), len(mon))
	}
	if alpha <= 0 || alpha >= 1 {
		return KSResult{}, fmt.Errorf("stats: K-S significance level must be in (0,1), got %g", alpha)
	}
	d := KSStatistic(ref, mon)
	m := float64(len(ref))
	n := float64(len(mon))
	en := math.Sqrt(m * n / (m + n))
	crit := KolmogorovInverse(1-alpha) / en
	p := KolmogorovSurvival(d * en)
	return KSResult{
		D:        d,
		Critical: crit,
		PValue:   p,
		Reject:   d > crit,
		M:        len(ref),
		N:        len(mon),
	}, nil
}

// KSRejectSorted is the allocation-light K-S path used by EDDIE's hot
// loops: refSorted must already be sorted ascending; mon is copied into
// scratch (which must have len >= len(mon)) and sorted there. cAlpha is
// KolmogorovInverse(1-alpha), computed once by the caller. It reports
// whether H0 (same population) is rejected.
func KSRejectSorted(refSorted, mon, scratch []float64, cAlpha float64) bool {
	d, crit := KSRejectStatSorted(refSorted, mon, scratch, cAlpha)
	return d > crit
}

// KSRejectStatSorted is KSRejectSorted's evidence-preserving form: it
// returns the K-S statistic D and the critical value it is compared to
// (rejection is d > crit). The arithmetic is shared with KSRejectSorted,
// so recording provenance can never change a decision.
func KSRejectStatSorted(refSorted, mon, scratch []float64, cAlpha float64) (d, crit float64) {
	n := copy(scratch, mon)
	s := scratch[:n]
	sort.Float64s(s)
	d = ksStatSorted(refSorted, s)
	m := float64(len(refSorted))
	nf := float64(n)
	crit = cAlpha * math.Sqrt((m+nf)/(m*nf))
	return d, crit
}

// KSRejectPresorted is the zero-copy K-S decision kernel: both samples
// must already be sorted ascending. The monitor's sort-once decision path
// sorts each monitored rank group a single time per window (incrementally
// where the window slides) and then re-tests it unchanged against every
// training mode and candidate region, so the per-test cost collapses to
// one merge pass. It reports whether H0 (same population) is rejected.
func KSRejectPresorted(refSorted, monSorted []float64, cAlpha float64) bool {
	d, crit := KSRejectStatPresorted(refSorted, monSorted, cAlpha)
	return d > crit
}

// KSRejectStatPresorted is KSRejectPresorted's evidence-preserving form.
// It shares ksStatSorted and the critical-value arithmetic with
// KSRejectStatSorted, and sorting is a pure permutation, so for equal
// multisets the (d, crit) pair — and therefore every verdict and every
// recorded provenance statistic — is bit-identical to the copy-and-sort
// path it replaces.
func KSRejectStatPresorted(refSorted, monSorted []float64, cAlpha float64) (d, crit float64) {
	d = ksStatSorted(refSorted, monSorted)
	m := float64(len(refSorted))
	n := float64(len(monSorted))
	crit = cAlpha * math.Sqrt((m+n)/(m*n))
	return d, crit
}

// ksStatSorted computes the two-sample K-S statistic over two already
// sorted samples.
func ksStatSorted(as, bs []float64) float64 {
	var i, j int
	var d float64
	m := float64(len(as))
	n := float64(len(bs))
	for i < len(as) && j < len(bs) {
		x := math.Min(as[i], bs[j])
		for i < len(as) && as[i] <= x {
			i++
		}
		for j < len(bs) && bs[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/m - float64(j)/n)
		if diff > d {
			d = diff
		}
	}
	return d
}

// KSStatistic computes the two-sample K-S statistic
// D = max_x |F_ref(x) - F_mon(x)| with a single merge pass over the two
// sorted samples. It copies both inputs into one backing slice (a single
// allocation) before sorting, leaving the arguments unmodified.
func KSStatistic(a, b []float64) float64 {
	buf := make([]float64, len(a)+len(b))
	as := buf[:len(a):len(a)]
	bs := buf[len(a):]
	copy(as, a)
	copy(bs, b)
	sort.Float64s(as)
	sort.Float64s(bs)
	return ksStatSorted(as, bs)
}

// KSStatisticPresorted is KSStatistic on samples already sorted
// ascending: no copies, no allocations. Training's detectable-shift probe
// uses it on the (sorted) reference distributions directly.
func KSStatisticPresorted(aSorted, bSorted []float64) float64 {
	return ksStatSorted(aSorted, bSorted)
}

// KolmogorovSurvival returns Q(x) = P(K > x) for the Kolmogorov
// distribution, using the classic alternating series
// Q(x) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 x^2).
func KolmogorovSurvival(x float64) float64 {
	if x <= 0 {
		return 1
	}
	if x > 5 {
		return 0 // series underflows; survival is ~1e-22 already
	}
	var sum float64
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := math.Exp(-2 * float64(k) * float64(k) * x * x)
		sum += sign * term
		sign = -sign
		if term < 1e-12 {
			break
		}
	}
	q := 2 * sum
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// KolmogorovCDF returns P(K <= x) for the Kolmogorov distribution.
func KolmogorovCDF(x float64) float64 { return 1 - KolmogorovSurvival(x) }

// KolmogorovInverse returns c such that KolmogorovCDF(c) = p, i.e. the
// critical value c(alpha) for confidence level p = 1-alpha. Computed by
// bisection; the CDF is strictly increasing on (0, inf).
func KolmogorovInverse(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	lo, hi := 0.0, 5.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if KolmogorovCDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12 {
			break
		}
	}
	return (lo + hi) / 2
}
