// Package trace aligns the signal domain with the program domain: it
// labels each STFT window with the code region that produced it (ground
// truth from the simulator's region trace) and with whether the window
// overlaps injected execution. Training consumes the region labels — the
// equivalent of the paper's lightweight loop instrumentation — while
// evaluation consumes both.
package trace

import (
	"eddie/internal/cfg"
	"eddie/internal/dsp"
	"eddie/internal/sim"
)

// LabeledFrame is an STFT frame with ground-truth annotations.
type LabeledFrame struct {
	// Frame is the Short-Term Spectrum.
	Frame dsp.Frame
	// Region is the region that dominated the window (the region holding
	// the largest share of the window's cycles), or cfg.NoRegion if the
	// window lies outside the traced execution.
	Region cfg.RegionID
	// Injected reports whether any injected execution fell in the window.
	Injected bool
	// TimeSec is the window start time in seconds.
	TimeSec float64
}

// LabelFrames annotates STFT frames using the simulator's region trace.
// stftCfg must be the configuration the frames were computed with, and its
// SampleRate must equal run.Config.SampleRate().
func LabelFrames(frames []dsp.Frame, stftCfg dsp.STFTConfig, run *sim.RunResult) []LabeledFrame {
	out := make([]LabeledFrame, 0, len(frames))
	period := int64(run.Config.SamplePeriod)
	segs := run.Segments
	segIdx := 0
	for _, f := range frames {
		startCycle := int64(f.Start) * period
		endCycle := (int64(f.Start) + int64(stftCfg.WindowSize)) * period

		// Advance past segments that end before this window.
		for segIdx < len(segs) && segs[segIdx].EndCycle <= startCycle {
			segIdx++
		}
		// Find the region with the largest cycle overlap.
		best := cfg.NoRegion
		var bestOverlap int64
		for i := segIdx; i < len(segs) && segs[i].StartCycle < endCycle; i++ {
			s := segs[i]
			lo := max64(s.StartCycle, startCycle)
			hi := min64(s.EndCycle, endCycle)
			if hi-lo > bestOverlap {
				bestOverlap = hi - lo
				best = s.Region
			}
		}
		injected := false
		for k := f.Start; k < f.Start+stftCfg.WindowSize && k < len(run.InjectedSamples); k++ {
			if run.InjectedSamples[k] {
				injected = true
				break
			}
		}
		out = append(out, LabeledFrame{
			Frame:    f,
			Region:   best,
			Injected: injected,
			TimeSec:  float64(f.Start) / stftCfg.SampleRate,
		})
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
