package trace

import (
	"testing"

	"eddie/internal/cfg"
	"eddie/internal/dsp"
	"eddie/internal/sim"
)

// fakeRun builds a RunResult with hand-placed segments and injected marks.
func fakeRun(samplePeriod int, segments []sim.Segment, injected []bool) *sim.RunResult {
	c := sim.DefaultIoT()
	c.SamplePeriod = samplePeriod
	return &sim.RunResult{
		Segments:        segments,
		InjectedSamples: injected,
		Config:          c,
	}
}

func frames(n, windowSize, hop int) []dsp.Frame {
	out := make([]dsp.Frame, n)
	for i := range out {
		out[i] = dsp.Frame{Index: i, Start: i * hop, Power: []float64{0, 1}}
	}
	return out
}

func TestLabelFramesMajorityOverlap(t *testing.T) {
	// Sample period 1 cycle for easy arithmetic: window k covers samples
	// [64k, 64k+128).
	segs := []sim.Segment{
		{Region: 1, StartCycle: 0, EndCycle: 100},
		{Region: 2, StartCycle: 100, EndCycle: 1000},
	}
	fs := frames(5, 128, 64)
	stft := dsp.STFTConfig{WindowSize: 128, HopSize: 64, SampleRate: 1e6}
	labeled := LabelFrames(fs, stft, fakeRun(1, segs, nil))
	// Window 0 covers [0,128): 100 cycles in region 1, 28 in region 2.
	if labeled[0].Region != 1 {
		t.Errorf("window 0 labeled %v, want 1", labeled[0].Region)
	}
	// Window 1 covers [64,192): 36 cycles region 1, 92 region 2.
	if labeled[1].Region != 2 {
		t.Errorf("window 1 labeled %v, want 2", labeled[1].Region)
	}
	for i := 2; i < 5; i++ {
		if labeled[i].Region != 2 {
			t.Errorf("window %d labeled %v, want 2", i, labeled[i].Region)
		}
	}
}

func TestLabelFramesOutsideTrace(t *testing.T) {
	segs := []sim.Segment{{Region: 1, StartCycle: 0, EndCycle: 10}}
	fs := frames(3, 128, 64)
	stft := dsp.STFTConfig{WindowSize: 128, HopSize: 64, SampleRate: 1e6}
	labeled := LabelFrames(fs, stft, fakeRun(1, segs, nil))
	if labeled[2].Region != cfg.NoRegion {
		t.Errorf("window beyond the trace labeled %v, want NoRegion", labeled[2].Region)
	}
}

func TestLabelFramesInjectedFlag(t *testing.T) {
	segs := []sim.Segment{{Region: 1, StartCycle: 0, EndCycle: 10000}}
	injected := make([]bool, 400)
	injected[200] = true // one injected sample
	fs := frames(5, 128, 64)
	stft := dsp.STFTConfig{WindowSize: 128, HopSize: 64, SampleRate: 1e6}
	labeled := LabelFrames(fs, stft, fakeRun(1, segs, injected))
	// Sample 200 falls in windows starting at 128 and 192 (covering
	// [128,256) and [192,320)) and window 2 starting 128... indices:
	// window i covers samples [64i, 64i+128).
	wantInjected := map[int]bool{2: true, 3: true}
	for i, lf := range labeled {
		if lf.Injected != wantInjected[i] {
			t.Errorf("window %d injected=%t, want %t", i, lf.Injected, wantInjected[i])
		}
	}
}

func TestLabelFramesTimeSec(t *testing.T) {
	fs := frames(3, 128, 64)
	stft := dsp.STFTConfig{WindowSize: 128, HopSize: 64, SampleRate: 1000}
	labeled := LabelFrames(fs, stft, fakeRun(1, nil, nil))
	if labeled[1].TimeSec != 0.064 {
		t.Errorf("window 1 starts at %g s, want 0.064", labeled[1].TimeSec)
	}
}
