// Package coord is EDDIE's multi-node fleet coordinator: one light
// process fronting N fleet backends, sharding devices across them by
// consistent hash of device ID so monitoring capacity scales
// horizontally (the ROADMAP's "multi-node fleet" item; Vedros et al.
// frame fleet scale as the central systems challenge for EM-based
// monitoring).
//
// The coordinator speaks the existing length-prefixed fleet protocol:
// a device says hello, the coordinator answers with a redirect to the
// backend that owns the device's ring span, and the device re-dials the
// backend directly — steady-state sample traffic never flows through
// the coordinator, so it is never the data-plane bottleneck. Backends
// are health-probed over a small control RPC (liveness plus a
// queue-depth/latency load report); a backend that dies or burns its
// latency SLO is drained from the ring and its span re-homes to the
// survivors, journaled as a `rehome` event. Devices re-dial with
// jittered backoff and resume on the new owner with fresh detector
// state — no device goes dark because one backend did.
package coord

import (
	"sort"
	"sync"
)

// DefaultVirtualNodes is how many ring points each backend gets when
// Config.VirtualNodes is zero: enough that each backend's owned span is
// the sum of many small arcs (arc-length variance shrinks like
// 1/sqrt(vnodes), so 160 points — the ketama convention — keeps the
// hottest backend within ~2x of the coldest) while keeping ring
// rebuilds trivially cheap.
const DefaultVirtualNodes = 160

// Ring is a consistent-hash ring with virtual nodes. Each member owns
// the arcs that precede its points; a key belongs to the member of the
// first point at or after the key's hash. Adding a member moves only
// ~1/N of the keys (onto the new member); removing one moves only its
// own keys (onto the survivors). Owner lookups take a reject callback,
// giving bounded-load behavior: a span whose owner is full or down
// walks clockwise to the next member with headroom.
//
// Hashing is pure FNV-1a over the key bytes — fully deterministic, no
// per-process seed — so every coordinator replica, at any GOMAXPROCS,
// maps a device to the same backend.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	points  []ringPoint // sorted by hash
	members map[string]struct{}
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing creates an empty ring with the given virtual-node count per
// member (<= 0 uses DefaultVirtualNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, members: map[string]struct{}{}}
}

// fnv64a hashes s with 64-bit FNV-1a, then runs the splitmix64
// finalizer: FNV alone avalanches poorly on inputs differing only in
// the last byte (exactly what consecutive vnode labels look like), and
// clustered ring points defeat the whole virtual-node smoothing.
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// vnodeHash is the ring position of member's i-th virtual node. The
// "#i" suffix keeps a member's points spread independently of other
// members sharing a prefix.
func vnodeHash(member string, i int) uint64 {
	// Append the index digits without fmt (rings rebuild on every
	// health transition).
	buf := make([]byte, 0, len(member)+8)
	buf = append(buf, member...)
	buf = append(buf, '#')
	if i == 0 {
		buf = append(buf, '0')
	}
	for d := i; d > 0; d /= 10 {
		buf = append(buf, byte('0'+d%10))
	}
	return fnv64a(string(buf))
}

// Add inserts a member (idempotent).
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; ok {
		return
	}
	r.members[member] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{vnodeHash(member, i), member})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member and its points (idempotent).
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; !ok {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Owner returns the member owning key, walking clockwise past members
// the reject callback refuses (down, at capacity). A nil reject accepts
// everyone. Returns ok=false when the ring is empty or every member is
// rejected; reject is called at most once per distinct member.
func (r *Ring) Owner(key string, reject func(member string) bool) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := len(r.points)
	if n == 0 {
		return "", false
	}
	h := fnv64a(key)
	start := sort.Search(n, func(i int) bool { return r.points[i].hash >= h }) % n
	var tried map[string]bool
	for i := 0; i < n; i++ {
		m := r.points[(start+i)%n].member
		if tried[m] {
			continue
		}
		if reject == nil || !reject(m) {
			return m, true
		}
		if tried == nil {
			tried = make(map[string]bool, len(r.members))
		}
		tried[m] = true
		if len(tried) == len(r.members) {
			break
		}
	}
	return "", false
}

// Members returns the live members in sorted order.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Len reports the live member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Balance reports how evenly the hash space is owned: the largest
// member's owned fraction times the member count, so 1.0 is a perfect
// split and 2.0 means the hottest member owns twice its fair share.
// Returns 0 on an empty ring.
func (r *Ring) Balance() float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return 0
	}
	span := map[string]uint64{}
	prev := r.points[len(r.points)-1].hash // arc wrapping through zero
	for _, p := range r.points {
		span[p.member] += p.hash - prev // uint64 wraparound handles the seam
		prev = p.hash
	}
	var max uint64
	for _, s := range span {
		if s > max {
			max = s
		}
	}
	// The untyped constant 1<<64 is exact in float64 context.
	return float64(max) / (1 << 64) * float64(len(span))
}
