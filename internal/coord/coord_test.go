package coord

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"eddie/internal/core"
	"eddie/internal/dsp"
	"eddie/internal/fleet"
	"eddie/internal/inject"
	"eddie/internal/obs"
	"eddie/internal/pipeline"
	"eddie/internal/pipeline/pipetest"
	"eddie/internal/stream"
)

// coordSignal returns the shared trained fixture plus one detrended,
// injection-contaminated capture (collected once per process).
var (
	sigOnce    sync.Once
	sigSamples []float64
	sigErr     error
)

func coordSignal(t *testing.T) (*pipetest.F, []float64) {
	t.Helper()
	f := pipetest.Fixture(t)
	sigOnce.Do(func() {
		inj := &inject.InLoop{
			Header: f.Machine.Nests[0].Header, Instrs: 8, MemOps: 4,
			Contamination: 0.5, Seed: 3,
		}
		run, err := pipeline.CollectRun(f.W, f.Machine, f.Config, 800, inj)
		if err != nil {
			sigErr = err
			return
		}
		sigSamples = dsp.Detrend(run.Signal)
	})
	if sigErr != nil {
		t.Fatal(sigErr)
	}
	return f, sigSamples
}

// backendConfig is the default test backend configuration for a
// fixture.
func backendConfig(f *pipetest.F) fleet.Config {
	return fleet.Config{
		Models: fleet.StaticModels{"bitcount": f.Model},
		Stream: stream.Config{
			STFT:    f.Config.STFT,
			Peaks:   f.Config.Peaks,
			Monitor: core.DefaultMonitorConfig(),
		},
	}
}

// startBackend runs a fleet backend on a loopback listener. It is NOT
// registered for cleanup teardown — failover tests kill backends
// mid-test — so callers own the Close (calling it twice is fine).
func startBackend(t *testing.T, cfg fleet.Config) (*fleet.Server, string) {
	t.Helper()
	s, err := fleet.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return s, ln.Addr().String()
}

// startCoord runs a coordinator over the given backends and waits for
// the first probe round.
func startCoord(t *testing.T, cfg Config) (*Coordinator, string) {
	t.Helper()
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 50 * time.Millisecond
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go c.Serve(ln)
	t.Cleanup(func() { c.Close() })
	if err := c.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	return c, ln.Addr().String()
}

// streamSession dials addr, streams the capture in frames, and returns
// the summary and reports.
func streamSession(t *testing.T, addr, device string, samples []float64, cfg fleet.ClientConfig) (fleet.Summary, []fleet.Report) {
	t.Helper()
	cl, err := fleet.DialConfig(addr, fleet.Hello{Device: device, Workload: "bitcount"}, cfg)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer cl.Close()
	for i := 0; i < len(samples); {
		n := 251 + i%509
		if i+n > len(samples) {
			n = len(samples) - i
		}
		if err := cl.Send(samples[i : i+n]); err != nil {
			t.Fatalf("send: %v", err)
		}
		i += n
	}
	sum, reports, err := cl.Finish()
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	return sum, reports
}

// TestCoordDifferentialVsDirect streams the same capture once through
// the coordinator (hello → redirect → backend) and once straight at the
// backend with an old-protocol client, and asserts the two sessions'
// reports and summaries are bit-identical: the redirect hop must change
// routing only, never detection.
func TestCoordDifferentialVsDirect(t *testing.T) {
	f, samples := coordSignal(t)
	_, backendAddr := startBackend(t, backendConfig(f))
	_, coordAddr := startCoord(t, Config{Backends: []string{backendAddr}})

	sumVia, repVia := streamSession(t, coordAddr, "dev-via-coord", samples, fleet.ClientConfig{})
	sumDir, repDir := streamSession(t, backendAddr, "dev-direct", samples,
		fleet.ClientConfig{MaxRedirects: -1})

	if len(repVia) == 0 {
		t.Fatal("contaminated capture produced no reports")
	}
	if len(repVia) != len(repDir) {
		t.Fatalf("report counts differ: %d via coordinator, %d direct", len(repVia), len(repDir))
	}
	for i := range repVia {
		v, d := repVia[i], repDir[i]
		if v.Window != d.Window || v.TimeSec != d.TimeSec || v.Region != d.Region {
			t.Fatalf("report %d differs: via=%+v direct=%+v", i, v, d)
		}
	}
	if sumVia.Samples != sumDir.Samples || sumVia.Windows != sumDir.Windows ||
		sumVia.Reports != sumDir.Reports || sumVia.Sanitized != sumDir.Sanitized {
		t.Fatalf("summaries differ: via=%+v direct=%+v", sumVia, sumDir)
	}
}

// TestCoordFailover kills a backend mid-stream and checks the full
// re-homing story: the coordinator drains the dead backend from the
// ring and journals a rehome event, a re-dialing client lands on the
// survivor, and every alarm fired before the kill is recoverable from
// the dead backend's journal — zero alarms lost to the failover.
func TestCoordFailover(t *testing.T) {
	f, samples := coordSignal(t)

	dirA := t.TempDir()
	journalA, err := obs.OpenJournal(obs.JournalConfig{Dir: dirA, Fsync: obs.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer journalA.Close()
	cfgA := backendConfig(f)
	cfgA.Journal = journalA
	backendA, addrA := startBackend(t, cfgA)
	_, addrB := startBackend(t, backendConfig(f))

	dirC := t.TempDir()
	journalC, err := obs.OpenJournal(obs.JournalConfig{Dir: dirC, Fsync: obs.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer journalC.Close()
	coord, coordAddr := startCoord(t, Config{
		Backends:      []string{addrA, addrB},
		ProbeInterval: 25 * time.Millisecond,
		DownAfter:     2,
		Journal:       journalC,
	})

	// Pick a device the ring assigns to backend A, so the kill hits the
	// session's owner.
	ring := NewRing(0)
	ring.Add(addrA)
	ring.Add(addrB)
	device := ""
	for i := 0; i < 1000; i++ {
		d := fmt.Sprintf("victim-%03d", i)
		if owner, _ := ring.Owner(d, nil); owner == addrA {
			device = d
			break
		}
	}
	if device == "" {
		t.Fatal("no device hashed onto backend A")
	}

	// First half of the capture through the coordinator onto backend A.
	cl, err := fleet.Dial(coordAddr, fleet.Hello{Device: device, Workload: "bitcount"})
	if err != nil {
		t.Fatal(err)
	}
	half := len(samples) / 2
	for i := 0; i < half; {
		n := 500
		if i+n > half {
			n = half - i
		}
		if err := cl.Send(samples[i : i+n]); err != nil {
			t.Fatalf("pre-kill send: %v", err)
		}
		i += n
	}
	// Drain cleanly so backend A journals its alarms before dying; a
	// torn session would lose in-flight detector state by design (the
	// re-homed session restarts fresh), but alarms already fired must
	// be durable.
	_, preReports, err := cl.Finish()
	if err != nil {
		t.Fatalf("pre-kill finish: %v", err)
	}
	cl.Close()
	if len(preReports) == 0 {
		t.Fatal("first half of the capture produced no alarms")
	}

	// Kill backend A and wait for the coordinator to notice.
	backendA.Close()
	deadline := time.Now().Add(5 * time.Second)
	for coord.ring.Len() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never drained the dead backend")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := coord.cRehomes.Value(); got != 1 {
		t.Fatalf("coord_rehomes = %d, want 1", got)
	}

	// The device re-dials the coordinator (as a real device's backoff
	// loop would) and must land on the survivor with fresh state.
	sum, _ := streamSession(t, coordAddr, device, samples, fleet.ClientConfig{
		Retries: 4, RetryBackoff: 25 * time.Millisecond,
	})
	if sum.Samples != int64(len(samples)) {
		t.Fatalf("re-homed session processed %d samples, want %d", sum.Samples, len(samples))
	}

	// The rehome event is journaled durably at the coordinator.
	journalC.Sync()
	recC, err := obs.RecoverJournal(dirC)
	if err != nil {
		t.Fatal(err)
	}
	rehomes := 0
	for _, ev := range recC.Events {
		if ev.Type == "rehome" && strings.Contains(ev.Detail, addrA) {
			rehomes++
		}
	}
	if rehomes != 1 {
		t.Fatalf("coordinator journal has %d rehome events for %s, want 1", rehomes, addrA)
	}

	// Zero lost alarms: every report the device saw before the kill is
	// in backend A's journal.
	recA, err := obs.RecoverJournal(dirA)
	if err != nil {
		t.Fatal(err)
	}
	if len(recA.Alarms) < len(preReports) {
		t.Fatalf("backend A journal recovered %d alarms, device saw %d pre-kill reports",
			len(recA.Alarms), len(preReports))
	}
	journaled := map[int]bool{}
	for _, a := range recA.Alarms {
		journaled[a.Window] = true
	}
	for _, r := range preReports {
		if !journaled[r.Window] {
			t.Errorf("pre-kill alarm at window %d missing from the journal", r.Window)
		}
	}
}

// TestCoordAggregatedListing spreads sessions across two backends and
// checks the coordinator's cross-backend paged listing: config-order
// concatenation, correct totals, and working offsets.
func TestCoordAggregatedListing(t *testing.T) {
	f, _ := coordSignal(t)
	_, addrA := startBackend(t, backendConfig(f))
	_, addrB := startBackend(t, backendConfig(f))
	coord, _ := startCoord(t, Config{Backends: []string{addrA, addrB}})

	// Old-protocol clients dialed straight at the backends place the
	// sessions deterministically: two on A, one on B.
	direct := fleet.ClientConfig{MaxRedirects: -1}
	var clients []*fleet.Client
	for _, s := range []struct{ addr, device string }{
		{addrA, "lst-a1"}, {addrA, "lst-a2"}, {addrB, "lst-b1"},
	} {
		cl, err := fleet.DialConfig(s.addr, fleet.Hello{Device: s.device, Workload: "bitcount"}, direct)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, cl)
		defer cl.Close()
	}

	page, total, active := coord.FleetSessionsPage(0, 10)
	sessions := page.([]fleet.SessionInfo)
	if total != 3 || active != 3 || len(sessions) != 3 {
		t.Fatalf("full page: %d sessions, total %d, active %d; want 3/3/3", len(sessions), total, active)
	}
	order := []string{sessions[0].Device, sessions[1].Device, sessions[2].Device}
	if order[0] != "lst-a1" || order[1] != "lst-a2" || order[2] != "lst-b1" {
		t.Fatalf("listing order %v, want backend-A sessions first", order)
	}

	page, total, _ = coord.FleetSessionsPage(0, 2)
	if got := len(page.([]fleet.SessionInfo)); got != 2 || total != 3 {
		t.Fatalf("limit 2: %d sessions, total %d; want 2 and 3", got, total)
	}
	page, total, _ = coord.FleetSessionsPage(2, 10)
	tail := page.([]fleet.SessionInfo)
	if len(tail) != 1 || tail[0].Device != "lst-b1" || total != 3 {
		t.Fatalf("offset 2: got %+v total %d, want just lst-b1 of 3", tail, total)
	}

	// ActiveSessions reads the probe-reconciled estimate, which lags a
	// direct dial by one probe round.
	deadline := time.Now().Add(5 * time.Second)
	for {
		a, max := coord.ActiveSessions()
		if a == 3 && max > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ActiveSessions = (%d, %d), want 3 active under a positive cap", a, max)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCoordOldClientRefused checks version negotiation at the
// coordinator: a client that never announced ProtoRedirect gets a
// self-describing error, not a redirect frame it would misparse.
func TestCoordOldClientRefused(t *testing.T) {
	f, _ := coordSignal(t)
	_, addrA := startBackend(t, backendConfig(f))
	_, coordAddr := startCoord(t, Config{Backends: []string{addrA}})

	_, err := fleet.DialConfig(coordAddr,
		fleet.Hello{Device: "old-dev", Workload: "bitcount"},
		fleet.ClientConfig{MaxRedirects: -1, Retries: -1})
	if err == nil {
		t.Fatal("old-protocol client succeeded against the coordinator")
	}
	if !strings.Contains(err.Error(), "proto") {
		t.Fatalf("refusal %q does not explain the protocol requirement", err)
	}
}

// TestCoordNoBackends checks that a coordinator with every backend down
// refuses hellos instead of hanging, and reports itself overloaded.
func TestCoordNoBackends(t *testing.T) {
	// A dead address: listen, then close, so nothing answers probes.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	coord, coordAddr := startCoord(t, Config{
		Backends:      []string{dead},
		ProbeInterval: 20 * time.Millisecond,
		DownAfter:     1,
	})
	if st := coord.HealthStatus(); st != obs.HealthOverloaded {
		t.Fatalf("health %q with no live backends, want %q", st, obs.HealthOverloaded)
	}
	_, err = fleet.DialConfig(coordAddr,
		fleet.Hello{Device: "d", Workload: "bitcount"},
		fleet.ClientConfig{Retries: -1})
	if err == nil || !strings.Contains(err.Error(), "no backend") {
		t.Fatalf("dial with no backends: %v, want a no-backend refusal", err)
	}
}

// TestCoordProbeAtFullBackend checks the headroom story end to end: a
// backend at its device cap still answers load probes, so the
// coordinator keeps it in the ring (marked full) instead of re-homing
// its span.
func TestCoordProbeAtFullBackend(t *testing.T) {
	f, _ := coordSignal(t)
	cfg := backendConfig(f)
	cfg.MaxSessions = 1
	_, addrA := startBackend(t, cfg)
	_, addrB := startBackend(t, backendConfig(f))
	coord, coordAddr := startCoord(t, Config{
		Backends:      []string{addrA, addrB},
		ProbeInterval: 25 * time.Millisecond,
		DownAfter:     2,
	})

	// Fill backend A's single slot.
	cl, err := fleet.DialConfig(addrA,
		fleet.Hello{Device: "filler", Workload: "bitcount"},
		fleet.ClientConfig{MaxRedirects: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Several probe rounds later A must still be in the ring.
	time.Sleep(200 * time.Millisecond)
	if n := coord.ring.Len(); n != 2 {
		t.Fatalf("ring has %d members after probing a full backend, want 2", n)
	}

	// And a device whose span lands on A is diverted to B by bounded
	// load rather than refused.
	ring := NewRing(0)
	ring.Add(addrA)
	ring.Add(addrB)
	device := ""
	for i := 0; i < 1000; i++ {
		d := fmt.Sprintf("spill-%03d", i)
		if owner, _ := ring.Owner(d, nil); owner == addrA {
			device = d
			break
		}
	}
	cl2, err := fleet.Dial(coordAddr, fleet.Hello{Device: device, Workload: "bitcount"})
	if err != nil {
		t.Fatalf("bounded-load spill dial failed: %v", err)
	}
	cl2.Close()
}

// TestCoordLoadQueryAggregates checks that probing the coordinator
// itself with a load query returns the fleet-wide aggregate, so
// coordinators compose with external health checkers.
func TestCoordLoadQueryAggregates(t *testing.T) {
	f, _ := coordSignal(t)
	_, addrA := startBackend(t, backendConfig(f))
	_, addrB := startBackend(t, backendConfig(f))
	_, coordAddr := startCoord(t, Config{Backends: []string{addrA, addrB}})

	conn, err := net.DialTimeout("tcp", coordAddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rep, err := roundTrip[fleet.LoadReport](conn, bufio.NewReader(conn), time.Now().Add(2*time.Second),
		fleet.FrameLoadQuery, nil, fleet.FrameLoadReport, fleet.DefaultMaxFrameBytes)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Max <= 0 || rep.Draining || rep.Status != obs.HealthReady {
		t.Fatalf("aggregate load report %+v, want ready with a positive cap", rep)
	}
}

// TestCoordValidation covers constructor misuse.
func TestCoordValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with no backends succeeded")
	}
	if _, err := New(Config{Backends: []string{"a:1", "a:1"}}); err == nil {
		t.Error("New with duplicate backends succeeded")
	}
	if _, err := New(Config{Backends: []string{""}}); err == nil {
		t.Error("New with an empty backend address succeeded")
	}
	c, err := New(Config{Backends: []string{"127.0.0.1:1"}, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Shutdown(context.Background()); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}
