package coord

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// devices returns n synthetic device IDs shaped like the fleet's real
// ones.
func devices(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("sensor-%04d.rack%d", i, i%7)
	}
	return out
}

// assign maps every device to its owner.
func assign(r *Ring, devs []string) map[string]string {
	out := make(map[string]string, len(devs))
	for _, d := range devs {
		m, ok := r.Owner(d, nil)
		if !ok {
			panic("empty ring")
		}
		out[d] = m
	}
	return out
}

// TestRingBalance checks that virtual nodes smooth the load: across 10k
// devices on 4 backends no backend carries more than 2x the lightest
// one, and the hash-space balance metric agrees.
func TestRingBalance(t *testing.T) {
	r := NewRing(DefaultVirtualNodes)
	backends := []string{"10.0.0.1:9000", "10.0.0.2:9000", "10.0.0.3:9000", "10.0.0.4:9000"}
	for _, b := range backends {
		r.Add(b)
	}
	counts := map[string]int{}
	for _, d := range devices(10000) {
		m, ok := r.Owner(d, nil)
		if !ok {
			t.Fatal("Owner failed on a populated ring")
		}
		counts[m]++
	}
	if len(counts) != len(backends) {
		t.Fatalf("only %d of %d backends received devices: %v", len(counts), len(backends), counts)
	}
	min, max := 1 << 30, 0
	for _, n := range counts {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if ratio := float64(max) / float64(min); ratio > 2.0 {
		t.Errorf("max/min load ratio %.2f exceeds 2.0: %v", ratio, counts)
	}
	if b := r.Balance(); b < 1.0 || b > 2.0 {
		t.Errorf("hash-space balance %.3f outside [1, 2]", b)
	}
}

// TestRingMinimalMovementOnAdd checks the consistent-hashing contract:
// adding a backend moves only the devices that land on the new backend,
// everything else keeps its owner.
func TestRingMinimalMovementOnAdd(t *testing.T) {
	devs := devices(10000)
	r := NewRing(DefaultVirtualNodes)
	r.Add("a:1")
	r.Add("b:1")
	r.Add("c:1")
	before := assign(r, devs)
	r.Add("d:1")
	after := assign(r, devs)
	moved := 0
	for _, d := range devs {
		if before[d] != after[d] {
			moved++
			if after[d] != "d:1" {
				t.Fatalf("device %s moved %s -> %s, not to the new backend",
					d, before[d], after[d])
			}
		}
	}
	// The new backend should own ~1/4 of the keys; allow wide slack but
	// reject both "nothing moved" and "everything reshuffled".
	if moved < len(devs)/10 || moved > len(devs)/2 {
		t.Errorf("adding 4th backend moved %d of %d devices, want ~1/4", moved, len(devs))
	}
}

// TestRingMinimalMovementOnRemove checks the inverse: removing a
// backend moves only its own devices (onto survivors) and no others.
func TestRingMinimalMovementOnRemove(t *testing.T) {
	devs := devices(10000)
	r := NewRing(DefaultVirtualNodes)
	for _, b := range []string{"a:1", "b:1", "c:1", "d:1"} {
		r.Add(b)
	}
	before := assign(r, devs)
	r.Remove("b:1")
	after := assign(r, devs)
	for _, d := range devs {
		if before[d] == "b:1" {
			if after[d] == "b:1" {
				t.Fatalf("device %s still owned by removed backend", d)
			}
		} else if before[d] != after[d] {
			t.Fatalf("device %s moved %s -> %s though its owner survived",
				d, before[d], after[d])
		}
	}
}

// TestRingRejectWalksClockwise checks bounded-load behavior: rejecting
// the natural owner hands the span to another member, rejecting all
// members fails the lookup.
func TestRingRejectWalksClockwise(t *testing.T) {
	r := NewRing(DefaultVirtualNodes)
	r.Add("a:1")
	r.Add("b:1")
	natural, _ := r.Owner("dev-42", nil)
	alt, ok := r.Owner("dev-42", func(m string) bool { return m == natural })
	if !ok || alt == natural {
		t.Fatalf("rejecting %s gave (%s, %v), want the other member", natural, alt, ok)
	}
	if _, ok := r.Owner("dev-42", func(string) bool { return true }); ok {
		t.Fatal("rejecting every member still found an owner")
	}
}

// TestRingDeterministic checks that assignment is a pure function of
// the key and membership — same result on repeat lookups, under
// concurrency, and at any GOMAXPROCS (no per-process hash seed).
func TestRingDeterministic(t *testing.T) {
	devs := devices(1000)
	build := func() *Ring {
		r := NewRing(32)
		for _, b := range []string{"x:1", "y:1", "z:1"} {
			r.Add(b)
		}
		return r
	}
	want := assign(build(), devs)
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		r := build()
		var wg sync.WaitGroup
		errs := make(chan string, 8)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, d := range devs {
					if m, _ := r.Owner(d, nil); m != want[d] {
						select {
						case errs <- fmt.Sprintf("GOMAXPROCS=%d: %s -> %s, want %s", procs, d, m, want[d]):
						default:
						}
						return
					}
				}
			}()
		}
		wg.Wait()
		runtime.GOMAXPROCS(prev)
		close(errs)
		for e := range errs {
			t.Error(e)
		}
	}
}

// TestRingIdempotentMutations checks Add/Remove tolerate repeats.
func TestRingIdempotentMutations(t *testing.T) {
	r := NewRing(16)
	r.Add("a:1")
	r.Add("a:1")
	if r.Len() != 1 {
		t.Fatalf("double Add produced %d members", r.Len())
	}
	r.Remove("a:1")
	r.Remove("a:1")
	r.Remove("ghost:1")
	if r.Len() != 0 {
		t.Fatalf("ring not empty after removals: %d members", r.Len())
	}
	if _, ok := r.Owner("dev", nil); ok {
		t.Fatal("empty ring returned an owner")
	}
}
