package coord

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"eddie/internal/fleet"
	"eddie/internal/metrics"
	"eddie/internal/obs"
)

// Config configures a Coordinator.
type Config struct {
	// Backends lists the fleet backends' device-facing addresses
	// (host:port). Required, at least one.
	Backends []string
	// VirtualNodes per backend on the consistent-hash ring. Zero means
	// DefaultVirtualNodes.
	VirtualNodes int
	// ProbeInterval is the health-probe period per backend. Zero means
	// 1s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe RPC (dial + query + report). Zero
	// means 2×ProbeInterval.
	ProbeTimeout time.Duration
	// DownAfter is how many consecutive bad probes (unreachable,
	// draining, or a sustained-overload SLO verdict) drain a backend
	// and re-home its ring span. Zero means 3.
	DownAfter int
	// IdleTimeout bounds the hello read on an accepted device
	// connection. Zero means 10s.
	IdleTimeout time.Duration
	// WriteTimeout bounds each outbound frame write. Zero means 10s.
	WriteTimeout time.Duration
	// MaxFrameBytes caps one frame's payload. Zero means
	// fleet.DefaultMaxFrameBytes.
	MaxFrameBytes int
	// PerBackendCap, when positive, lowers the per-backend admission
	// bound below what each backend reports as its own MaxSessions —
	// the knob for running a fleet at a deliberate utilization ceiling
	// (and for benchmarks that emulate fixed per-node capacity). Zero
	// trusts the backends' reported caps.
	PerBackendCap int
	// Registry receives coordinator metrics (coord_backend_up,
	// coord_rehomes, coord_redirects, ring balance). Nil creates a
	// private registry.
	Registry *metrics.Registry
	// Journal, when non-nil, durably records backend health transitions
	// (`backend_up`, `rehome`) and coordinator lifecycle events. Never
	// closed by the coordinator.
	Journal *obs.Journal
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = DefaultVirtualNodes
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * c.ProbeInterval
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 3
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 10 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = fleet.DefaultMaxFrameBytes
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	return c
}

// backend is one fronted fleet backend: its ring membership, health
// state and the persistent probe connection.
type backend struct {
	addr       string
	gUp        *metrics.Gauge
	cRedirects *metrics.Counter

	mu       sync.Mutex
	conn     net.Conn // persistent probe connection (re-dialed on error)
	br       *bufio.Reader
	up       bool
	failures int              // consecutive bad probes
	probed   bool             // at least one probe round completed
	report   fleet.LoadReport // last successful load report
	assigned int              // live load estimate: report.Active + redirects since
	// redirectSeq counts redirects ever issued to this backend. Each
	// probe snapshots it at send time and reconciles assigned to
	// report.Active plus the redirects issued after the snapshot, so a
	// connection surge between probes is never wiped from the estimate
	// (a redirected device that has not completed its hello yet is
	// invisible in report.Active).
	redirectSeq int64
	// cap is the admission bound the coordinator enforces for this
	// backend: report.Max, lowered to Config.PerBackendCap when set.
	cap int
}

// healthy reports whether the backend is in the ring.
func (b *backend) healthy() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.up
}

// load is the backend's estimated live session count.
func (b *backend) load() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.assigned
}

// atCap reports whether the backend's estimated load has reached its
// admission cap (bounded-load rejection; cap 0 means the cap is
// unknown, so never reject on it).
func (b *backend) atCap() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cap > 0 && b.assigned >= b.cap
}

// noteAssigned counts one redirect toward the load estimate, reconciled
// by the next load report.
func (b *backend) noteAssigned() {
	b.mu.Lock()
	b.assigned++
	b.redirectSeq++
	b.mu.Unlock()
}

// Coordinator fronts N fleet backends: devices say hello here and are
// redirected to the backend owning their ring span.
type Coordinator struct {
	cfg      Config
	reg      *metrics.Registry
	ring     *Ring
	backends []*backend // config order
	byAddr   map[string]*backend

	cHellos    *metrics.Counter // hellos answered (any outcome)
	cRedirects *metrics.Counter // redirects issued
	cRefused   *metrics.Counter // hellos refused (no backend / old client)
	cRehomes   *metrics.Counter // ring spans re-homed off a dead backend
	gUpCount   *metrics.Gauge   // backends currently in the ring
	gBalance   *metrics.FloatGauge

	mu       sync.Mutex
	ln       net.Listener
	draining bool
	closed   bool

	ready     chan struct{} // closed once every backend's first probe lands
	readyLeft int
	readyOnce sync.Once
	stop      chan struct{}
	stopOnce  sync.Once
	wg        sync.WaitGroup // probe loops + connection handlers
}

// New creates a coordinator and starts its backend health probes; call
// Serve (or ListenAndServe) to start answering devices. Backends enter
// the ring on their first successful probe — WaitReady blocks until the
// first probe round resolved every backend one way or the other.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("coord: config needs at least one backend")
	}
	seen := map[string]bool{}
	for _, a := range cfg.Backends {
		if a == "" {
			return nil, errors.New("coord: empty backend address")
		}
		if seen[a] {
			return nil, fmt.Errorf("coord: duplicate backend %s", a)
		}
		seen[a] = true
	}
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:       cfg,
		reg:       cfg.Registry,
		ring:      NewRing(cfg.VirtualNodes),
		byAddr:    map[string]*backend{},
		ready:     make(chan struct{}),
		readyLeft: len(cfg.Backends),
		stop:      make(chan struct{}),
	}
	c.cHellos = c.reg.Counter("coord_hellos")
	c.cRedirects = c.reg.Counter("coord_redirects")
	c.cRefused = c.reg.Counter("coord_refused")
	c.cRehomes = c.reg.Counter("coord_rehomes")
	c.gUpCount = c.reg.Gauge("coord_backends_up")
	c.gBalance = c.reg.FloatGauge("coord_ring_balance")
	for _, addr := range cfg.Backends {
		b := &backend{
			addr:       addr,
			gUp:        c.reg.Gauge("coord_backend_up/" + addr),
			cRedirects: c.reg.Counter("coord_backend_redirects/" + addr),
		}
		c.backends = append(c.backends, b)
		c.byAddr[addr] = b
		c.wg.Add(1)
		go c.probeLoop(b)
	}
	return c, nil
}

// Registry returns the coordinator's metrics registry.
func (c *Coordinator) Registry() *metrics.Registry { return c.reg }

// logf logs one line if a logger is configured.
func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// WaitReady blocks until every backend's first health probe has
// resolved (up or down), the timeout passes, or the coordinator stops.
// Serving before readiness is safe — hellos are refused until a backend
// joins the ring — but callers that just started their backends get a
// deterministic handoff by waiting.
func (c *Coordinator) WaitReady(timeout time.Duration) error {
	select {
	case <-c.ready:
		return nil
	case <-c.stop:
		return errors.New("coord: coordinator stopped")
	case <-time.After(timeout):
		return fmt.Errorf("coord: not ready after %v", timeout)
	}
}

// firstProbe marks one backend's first probe round complete.
func (c *Coordinator) firstProbe() {
	c.mu.Lock()
	c.readyLeft--
	done := c.readyLeft <= 0
	c.mu.Unlock()
	if done {
		c.readyOnce.Do(func() { close(c.ready) })
	}
}

// probeLoop probes one backend forever: immediately on start, then
// every ProbeInterval until the coordinator stops.
func (c *Coordinator) probeLoop(b *backend) {
	defer c.wg.Done()
	c.probe(b)
	c.firstProbe()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			b.mu.Lock()
			if b.conn != nil {
				b.conn.Close()
				b.conn = nil
			}
			b.mu.Unlock()
			return
		case <-t.C:
			c.probe(b)
		}
	}
}

// probe runs one health probe and applies the up/down transition.
func (c *Coordinator) probe(b *backend) {
	rep, sentSeq, err := c.queryLoad(b)
	bad := ""
	switch {
	case err != nil:
		bad = err.Error()
	case rep.Draining:
		bad = "backend draining"
	case rep.Status == obs.HealthOverloaded:
		// A single overloaded verdict is already a sustained burn (the
		// SLO tracker's short window must be far over budget), but the
		// DownAfter streak still applies so one probe racing a burst
		// spike cannot evict a backend.
		bad = "sustained SLO burn (overloaded)"
	}

	b.mu.Lock()
	b.probed = true
	if bad == "" {
		b.failures = 0
		b.report = rep
		b.cap = rep.Max
		if c.cfg.PerBackendCap > 0 && (b.cap == 0 || c.cfg.PerBackendCap < b.cap) {
			b.cap = c.cfg.PerBackendCap
		}
		// Reconcile the load estimate: what the backend counted, plus
		// every redirect issued after this probe left — those devices
		// may not have completed their hello when the backend built the
		// report, but their slots are spoken for.
		b.assigned = rep.Active + int(b.redirectSeq-sentSeq)
		wasDown := !b.up
		b.up = true
		b.mu.Unlock()
		if wasDown {
			b.gUp.Set(1)
			c.ring.Add(b.addr)
			c.noteRingChange()
			c.cfg.Journal.Event("backend_up", "", 0, "", b.addr)
			c.logf("coord: backend %s up (%d/%d sessions)", b.addr, rep.Active, rep.Max)
		}
		return
	}
	b.failures++
	evict := b.up && b.failures >= c.cfg.DownAfter
	if evict {
		b.up = false
	}
	b.mu.Unlock()
	if evict {
		b.gUp.Set(0)
		c.ring.Remove(b.addr)
		c.noteRingChange()
		c.cRehomes.Inc()
		c.cfg.Journal.Event("rehome", "", 0, "",
			fmt.Sprintf("backend %s drained (%s): ring span re-homed to %d survivors",
				b.addr, bad, c.ring.Len()))
		c.logf("coord: backend %s drained (%s); span re-homed", b.addr, bad)
	}
}

// noteRingChange refreshes the ring gauges after a membership change.
func (c *Coordinator) noteRingChange() {
	c.gUpCount.Set(int64(c.ring.Len()))
	c.gBalance.Set(c.ring.Balance())
}

// queryLoad sends one FrameLoadQuery over the backend's persistent
// probe connection (re-dialing as needed) and reads the report, along
// with the redirectSeq snapshot taken as the query left. The probe I/O
// runs outside b.mu — only probeLoop touches the connection, and
// holding the lock across a slow RPC would stall every redirect to
// this backend for up to ProbeTimeout.
func (c *Coordinator) queryLoad(b *backend) (fleet.LoadReport, int64, error) {
	deadline := time.Now().Add(c.cfg.ProbeTimeout)
	b.mu.Lock()
	conn, br := b.conn, b.br
	b.mu.Unlock()
	if conn == nil {
		dialed, err := net.DialTimeout("tcp", b.addr, c.cfg.ProbeTimeout)
		if err != nil {
			return fleet.LoadReport{}, 0, err
		}
		conn, br = dialed, bufio.NewReaderSize(dialed, 1<<12)
		b.mu.Lock()
		b.conn, b.br = conn, br
		b.mu.Unlock()
	}
	b.mu.Lock()
	sentSeq := b.redirectSeq
	b.mu.Unlock()
	rep, err := roundTrip[fleet.LoadReport](conn, br, deadline,
		fleet.FrameLoadQuery, nil, fleet.FrameLoadReport, c.cfg.MaxFrameBytes)
	if err != nil {
		conn.Close()
		b.mu.Lock()
		b.conn, b.br = nil, nil
		b.mu.Unlock()
		return fleet.LoadReport{}, 0, err
	}
	return rep, sentSeq, nil
}

// roundTrip writes one control frame and decodes the expected JSON
// answer under a deadline.
func roundTrip[T any](conn net.Conn, br *bufio.Reader, deadline time.Time,
	reqTyp byte, reqPayload []byte, wantTyp byte, maxFrame int) (T, error) {
	var out T
	conn.SetDeadline(deadline)
	if err := fleet.WriteFrame(conn, reqTyp, reqPayload); err != nil {
		return out, err
	}
	typ, payload, err := fleet.ReadFrame(br, maxFrame)
	if err != nil {
		return out, err
	}
	if typ != wantTyp {
		return out, fmt.Errorf("coord: control frame 0x%02x, want 0x%02x", typ, wantTyp)
	}
	if err := json.Unmarshal(payload, &out); err != nil {
		return out, fmt.Errorf("coord: bad control payload: %w", err)
	}
	return out, nil
}

// ListenAndServe listens on addr and serves until Shutdown or Close.
func (c *Coordinator) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return c.Serve(ln)
}

// Addr returns the listener address (nil before Serve).
func (c *Coordinator) Addr() net.Addr {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ln == nil {
		return nil
	}
	return c.ln.Addr()
}

// Serve accepts device connections on ln until Shutdown or Close.
// Coordinator connections are ephemeral — one hello in, one redirect
// (or error) out — so there is nothing to drain.
func (c *Coordinator) Serve(ln net.Listener) error {
	c.mu.Lock()
	if c.closed || c.draining {
		c.mu.Unlock()
		ln.Close()
		return errors.New("coord: coordinator already shut down")
	}
	if c.ln != nil {
		c.mu.Unlock()
		ln.Close()
		return errors.New("coord: coordinator already serving")
	}
	c.ln = ln
	c.mu.Unlock()
	c.logf("coord: serving on %s, %d backends", ln.Addr(), len(c.backends))
	c.cfg.Journal.Event("coord_start", "", 0, "", ln.Addr().String())
	for {
		conn, err := ln.Accept()
		if err != nil {
			c.mu.Lock()
			stopping := c.draining || c.closed
			c.mu.Unlock()
			if stopping {
				return nil
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		c.wg.Add(1)
		go c.handle(conn)
	}
}

// handle answers one device connection: a hello gets a redirect to the
// owning backend, a load query gets the aggregate load (so coordinators
// can themselves be probed).
func (c *Coordinator) handle(conn net.Conn) {
	defer c.wg.Done()
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(c.cfg.IdleTimeout))
	br := bufio.NewReaderSize(conn, 1<<12)
	typ, payload, err := fleet.ReadFrame(br, c.cfg.MaxFrameBytes)
	if err != nil {
		return
	}
	switch typ {
	case fleet.FrameHello:
		c.answerHello(conn, payload)
	case fleet.FrameLoadQuery:
		active, max := c.ActiveSessions()
		c.writeFrame(conn, fleet.FrameLoadReport, mustJSON(fleet.LoadReport{
			Active:   active,
			Max:      max,
			Draining: c.Draining(),
			Status:   c.HealthStatus(),
		}))
	default:
		c.writeFrame(conn, fleet.FrameError, mustJSON(fleet.ErrorInfo{
			Error: fmt.Sprintf("coord: unexpected frame 0x%02x", typ)}))
	}
}

// answerHello resolves the device's owning backend and redirects.
func (c *Coordinator) answerHello(conn net.Conn, payload []byte) {
	c.cHellos.Inc()
	refuse := func(why string) {
		c.cRefused.Inc()
		c.writeFrame(conn, fleet.FrameError, mustJSON(fleet.ErrorInfo{Error: why}))
	}
	var hello fleet.Hello
	if err := json.Unmarshal(payload, &hello); err != nil {
		refuse(fmt.Sprintf("coord: bad hello: %v", err))
		return
	}
	if hello.Device == "" {
		refuse("coord: hello names no device")
		return
	}
	if hello.Proto < fleet.ProtoRedirect {
		// Version negotiation: a client that never announced redirect
		// support would misread a FrameRedirect as a protocol error, so
		// it gets a self-describing refusal instead. Old clients against
		// plain backends remain untouched — only the coordinator needs
		// the new feature level.
		refuse("coord: client does not support redirects (proto >= 1); dial a backend directly")
		return
	}
	b, ok := c.pick(hello.Device)
	if !ok {
		refuse("coord: no backend available")
		return
	}
	b.cRedirects.Inc()
	c.cRedirects.Inc()
	c.writeFrame(conn, fleet.FrameRedirect, mustJSON(fleet.Redirect{Addr: b.addr, Backend: b.addr}))
}

// pick maps a device to a backend: the consistent-hash owner of the
// device's ring span unless it is down or at its estimated admission
// cap, in which case the span walks clockwise to the next backend with
// headroom (bounded load). If every live backend looks full the least
// loaded one takes the redirect anyway — the estimate may be stale and
// the backend adjudicates admission authoritatively.
func (c *Coordinator) pick(device string) (*backend, bool) {
	addr, ok := c.ring.Owner(device, func(member string) bool {
		b := c.byAddr[member]
		return b == nil || !b.healthy() || b.atCap()
	})
	if ok {
		b := c.byAddr[addr]
		b.noteAssigned()
		return b, true
	}
	var best *backend
	for _, b := range c.backends {
		if !b.healthy() {
			continue
		}
		if best == nil || b.load() < best.load() {
			best = b
		}
	}
	if best == nil {
		return nil, false
	}
	best.noteAssigned()
	return best, true
}

// writeFrame writes one outbound frame under the write deadline.
func (c *Coordinator) writeFrame(conn net.Conn, typ byte, payload []byte) {
	conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
	fleet.WriteFrame(conn, typ, payload)
}

// Shutdown stops the coordinator: close the listener, stop probing and
// wait for in-flight handshakes (or ctx). Safe to call multiple times.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	already := c.draining || c.closed
	c.draining = true
	ln := c.ln
	c.mu.Unlock()
	if ln != nil && !already {
		ln.Close()
	}
	c.stopOnce.Do(func() { close(c.stop) })
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		c.finishJournal("drained")
		return nil
	case <-ctx.Done():
		c.Close()
		<-done
		return errors.New("coord: shutdown interrupted")
	}
}

// Close force-stops the coordinator.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	wasClosed := c.closed
	c.closed = true
	ln := c.ln
	c.mu.Unlock()
	var err error
	if ln != nil && !wasClosed {
		err = ln.Close()
		if errors.Is(err, net.ErrClosed) {
			err = nil
		}
	}
	c.stopOnce.Do(func() { close(c.stop) })
	go func() {
		c.wg.Wait()
		c.finishJournal("closed")
	}()
	return err
}

// finishJournal journals the stop and unblocks any WaitReady callers.
func (c *Coordinator) finishJournal(detail string) {
	c.readyOnce.Do(func() { close(c.ready) })
	c.cfg.Journal.Event("coord_stop", "", 0, "", detail)
	c.cfg.Journal.Sync()
}

// --- obs integration: the coordinator is the fleet's front door, so it
// implements the same listing and health interfaces the single-node
// server does (obs.SessionLister, obs.SessionPager, obs.FleetHealth),
// aggregating across backends over the FleetQuery control RPC.

// Draining reports whether shutdown has been requested
// (obs.FleetHealth).
func (c *Coordinator) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining || c.closed
}

// ActiveSessions sums the live session counts and admission caps of the
// backends currently in the ring (obs.FleetHealth).
func (c *Coordinator) ActiveSessions() (active, max int) {
	for _, b := range c.backends {
		b.mu.Lock()
		if b.up {
			active += b.assigned
			max += b.report.Max
		}
		b.mu.Unlock()
	}
	return active, max
}

// HealthStatus is the coordinator's own SLO verdict
// (obs.HealthStatuser): draining beats everything, a fleet with no live
// backend is overloaded (healthz must fail closed so a load balancer
// stops sending devices here), a partial fleet is degraded, a full
// fleet is ready.
func (c *Coordinator) HealthStatus() string {
	if c.Draining() {
		return obs.HealthDraining
	}
	up := c.ring.Len()
	switch {
	case up == 0:
		return obs.HealthOverloaded
	case up < len(c.backends):
		return obs.HealthDegraded
	default:
		return obs.HealthReady
	}
}

// FleetSessions returns the whole cross-backend session listing
// (obs.SessionLister; the paged variant below is preferred).
func (c *Coordinator) FleetSessions() any {
	page, _, _ := c.FleetSessionsPage(0, obs.MaxFleetPageLimit)
	return page
}

// FleetSessionsPage aggregates one listing page across the backends in
// config order (obs.SessionPager): backend A's sessions come first,
// then B's, and so on, so paging through the coordinator walks the
// whole fleet exactly once. Backends that are down or unreachable
// contribute nothing; totals count only what was actually reachable.
func (c *Coordinator) FleetSessionsPage(offset, limit int) (any, int, int) {
	if offset < 0 {
		offset = 0
	}
	if limit < 0 {
		limit = 0
	}
	sessions := []fleet.SessionInfo{}
	var total, active int
	rem, need := offset, limit
	for _, b := range c.backends {
		if !b.healthy() {
			continue
		}
		q := fleet.FleetQuery{Offset: rem, Limit: need}
		if need == 0 {
			// The page is already full; ask for totals only.
			q = fleet.FleetQuery{Offset: 1 << 30, Limit: 1}
		}
		page, err := c.queryFleet(b.addr, q)
		if err != nil {
			c.logf("coord: fleet listing from %s failed: %v", b.addr, err)
			continue
		}
		sessions = append(sessions, page.Sessions...)
		total += page.Total
		active += page.Active
		need -= len(page.Sessions)
		// Whatever offset this backend's listing did not absorb carries
		// into the next backend's query.
		rem -= page.Total
		if rem < 0 {
			rem = 0
		}
	}
	return sessions, total, active
}

// queryFleet asks one backend for a listing page over a fresh
// connection (listings are a low-rate obs endpoint; the persistent
// probe connection stays dedicated to health).
func (c *Coordinator) queryFleet(addr string, q fleet.FleetQuery) (fleet.FleetPage, error) {
	conn, err := net.DialTimeout("tcp", addr, c.cfg.ProbeTimeout)
	if err != nil {
		return fleet.FleetPage{}, err
	}
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 1<<16)
	return roundTrip[fleet.FleetPage](conn, br, time.Now().Add(c.cfg.ProbeTimeout),
		fleet.FrameFleetQuery, mustJSON(q), fleet.FrameFleetPage, c.cfg.MaxFrameBytes)
}

// mustJSON marshals a protocol payload; the payload types marshal
// without error by construction.
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("coord: encoding %T: %v", v, err))
	}
	return b
}
