package cfg

import (
	"fmt"
	"sort"

	"eddie/internal/isa"
)

// RegionKind distinguishes the two region types of EDDIE's model.
type RegionKind int

const (
	// LoopRegion is a loop nest: the program spends most of its time here
	// and produces the spectral peaks EDDIE keys on.
	LoopRegion RegionKind = iota
	// TransRegion is an inter-loop region: the code executed between two
	// loop nests (or between program start/end and a nest).
	TransRegion
)

// RegionID identifies a region within a Machine.
type RegionID int

// NoRegion is the absent-region sentinel.
const NoRegion RegionID = -1

// Boundary is the virtual nest index used for the program start and end in
// transition regions.
const Boundary = -1

// Region is one node or edge of the region-level state machine.
type Region struct {
	ID    RegionID
	Kind  RegionKind
	Label string
	// Nest is the loop-nest index for LoopRegion (-1 otherwise).
	Nest int
	// From and To are the nest indices a TransRegion connects; Boundary
	// stands for program start (From) or program end (To).
	From, To int
}

// Machine is the region-level state machine of a program: the compact
// model of valid region sequences that EDDIE's training phase produces and
// its monitoring phase walks.
type Machine struct {
	// Graph is the underlying CFG.
	Graph *Graph
	// Nests are the loop nests of the program.
	Nests []*Nest
	// Regions lists all regions: loop regions first (index == nest
	// index), then transition regions.
	Regions []Region
	// BlockNest maps each block to its nest index, or -1 for non-loop
	// blocks.
	BlockNest []int
	// succ maps a region to the regions that may legally follow it.
	succ map[RegionID][]RegionID
	// trans maps a (from,to) nest pair to its transition region.
	trans map[[2]int]RegionID
}

// BuildMachine constructs the region-level state machine of a program,
// following §4.1: merge each loop nest into a single node, eliminate
// non-loop blocks by connecting their predecessors to their successors,
// and merge parallel edges.
func BuildMachine(p *isa.Program) (*Machine, error) {
	g, err := Build(p)
	if err != nil {
		return nil, err
	}
	nests := LoopNests(g)
	m := &Machine{
		Graph:     g,
		Nests:     nests,
		BlockNest: make([]int, len(p.Blocks)),
		succ:      map[RegionID][]RegionID{},
		trans:     map[[2]int]RegionID{},
	}
	for i := range m.BlockNest {
		m.BlockNest[i] = -1
	}
	for _, n := range nests {
		for b := range n.Blocks {
			m.BlockNest[b] = n.Index
		}
		m.Regions = append(m.Regions, Region{
			ID:    RegionID(n.Index),
			Kind:  LoopRegion,
			Label: fmt.Sprintf("loop%d@%s", n.Index, p.Blocks[n.Header].Label),
			Nest:  n.Index,
			From:  -1, To: -1,
		})
	}

	// Discover transition pairs. For each nest (and the program entry),
	// walk forward through non-loop blocks until hitting a nest or Halt.
	pairs := map[[2]int]bool{}
	addReach := func(from int, startBlocks []isa.BlockID) {
		seen := map[isa.BlockID]bool{}
		stack := append([]isa.BlockID(nil), startBlocks...)
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if nest := m.BlockNest[b]; nest >= 0 {
				// Reaching a nest (including re-entering the one we left,
				// e.g. through an outer control structure) ends the walk
				// and records a legal transition.
				pairs[[2]int{from, nest}] = true
				continue
			}
			if seen[b] {
				continue
			}
			seen[b] = true
			blk := &p.Blocks[b]
			if blk.Term.Kind == isa.Halt {
				pairs[[2]int{from, Boundary}] = true
				continue
			}
			stack = append(stack, g.Succs[b]...)
		}
	}

	// From program entry.
	addReach(Boundary, []isa.BlockID{p.Entry})
	// From every nest's exit edges.
	for _, n := range nests {
		var exits []isa.BlockID
		for b := range n.Blocks {
			if p.Blocks[b].Term.Kind == isa.Halt {
				pairs[[2]int{n.Index, Boundary}] = true
				continue
			}
			for _, s := range g.Succs[b] {
				if !n.Blocks[s] {
					exits = append(exits, s)
				}
			}
		}
		addReach(n.Index, exits)
	}

	// Materialize transition regions deterministically.
	keys := make([][2]int, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	name := func(n int) string {
		if n == Boundary {
			return "·"
		}
		return fmt.Sprintf("loop%d", n)
	}
	for _, k := range keys {
		id := RegionID(len(m.Regions))
		m.Regions = append(m.Regions, Region{
			ID:    id,
			Kind:  TransRegion,
			Label: fmt.Sprintf("%s→%s", name(k[0]), name(k[1])),
			Nest:  -1,
			From:  k[0], To: k[1],
		})
		m.trans[k] = id
	}

	// Successor relation: loop region L → every transition (L, *); the
	// transition (x, M) → loop region M. A transition ending at the
	// program boundary has no successors.
	for _, r := range m.Regions {
		switch r.Kind {
		case LoopRegion:
			for _, k := range keys {
				if k[0] == r.Nest {
					m.succ[r.ID] = append(m.succ[r.ID], m.trans[k])
					if k[1] != Boundary {
						// Allow a direct hop to the next loop region too:
						// very short transitions often never produce a
						// whole STFT window of their own.
						m.succ[r.ID] = append(m.succ[r.ID], RegionID(k[1]))
					}
				}
			}
		case TransRegion:
			if r.To != Boundary {
				m.succ[r.ID] = append(m.succ[r.ID], RegionID(r.To))
			}
		}
	}
	return m, nil
}

// NumRegions returns the total region count.
func (m *Machine) NumRegions() int { return len(m.Regions) }

// Region returns the region with the given id, or nil if out of range.
func (m *Machine) Region(id RegionID) *Region {
	if id < 0 || int(id) >= len(m.Regions) {
		return nil
	}
	return &m.Regions[id]
}

// LoopRegionOf returns the region id of a nest index.
func (m *Machine) LoopRegionOf(nest int) RegionID { return RegionID(nest) }

// TransRegionOf returns the transition region for the (from, to) nest pair
// and whether it exists in the machine.
func (m *Machine) TransRegionOf(from, to int) (RegionID, bool) {
	id, ok := m.trans[[2]int{from, to}]
	return id, ok
}

// Successors returns the regions that may legally follow r. The caller
// must not modify the returned slice.
func (m *Machine) Successors(r RegionID) []RegionID { return m.succ[r] }

// Accepts reports whether the sequence of region ids is a walk of the
// machine (each consecutive pair connected by the successor relation,
// possibly with the direct loop→loop shortcut).
func (m *Machine) Accepts(seq []RegionID) bool {
	for i := 0; i+1 < len(seq); i++ {
		if seq[i] == seq[i+1] {
			continue
		}
		ok := false
		for _, s := range m.succ[seq[i]] {
			if s == seq[i+1] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// String renders the machine for debugging.
func (m *Machine) String() string {
	s := fmt.Sprintf("region machine for %q: %d nests, %d regions\n", m.Graph.Program.Name, len(m.Nests), len(m.Regions))
	for _, r := range m.Regions {
		s += fmt.Sprintf("  R%d %s -> %v\n", r.ID, r.Label, m.succ[r.ID])
	}
	return s
}
