package cfg

import (
	"sort"

	"eddie/internal/isa"
)

// Loop is a natural loop: the blocks strongly connected to a header via a
// back edge.
type Loop struct {
	// Header is the loop entry block (the target of the back edge).
	Header isa.BlockID
	// Body is the set of blocks in the loop, including the header.
	Body map[isa.BlockID]bool
}

// NaturalLoops finds every natural loop of the graph. Loops sharing a
// header are merged into one Loop, as is conventional.
func NaturalLoops(g *Graph) []*Loop {
	byHeader := map[isa.BlockID]*Loop{}
	for b := range g.Succs {
		if !g.Reachable[b] {
			continue
		}
		for _, h := range g.Succs[b] {
			if !g.Dominates(h, isa.BlockID(b)) {
				continue // not a back edge
			}
			l := byHeader[h]
			if l == nil {
				l = &Loop{Header: h, Body: map[isa.BlockID]bool{h: true}}
				byHeader[h] = l
			}
			collectLoopBody(g, l, isa.BlockID(b))
		}
	}
	loops := make([]*Loop, 0, len(byHeader))
	for _, l := range byHeader {
		loops = append(loops, l)
	}
	sort.Slice(loops, func(i, j int) bool { return loops[i].Header < loops[j].Header })
	return loops
}

// collectLoopBody walks predecessors from the back-edge source until the
// header, adding every visited block to the loop body.
func collectLoopBody(g *Graph, l *Loop, tail isa.BlockID) {
	if l.Body[tail] {
		return
	}
	stack := []isa.BlockID{tail}
	l.Body[tail] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.Preds[b] {
			if !l.Body[p] && g.Reachable[p] {
				l.Body[p] = true
				stack = append(stack, p)
			}
		}
	}
}

// Nest is a loop nest: an outermost loop with all of its inner loops'
// blocks merged in, which is exactly the granularity at which EDDIE
// defines loop regions (§4.1: "for each loop nest we merge all the nodes
// in the CFG that belong to that loop nest into a single loop-region node").
type Nest struct {
	// Index is the nest's position in the Nests slice.
	Index int
	// Header is the header of the outermost loop of the nest.
	Header isa.BlockID
	// Blocks is the set of all blocks in the nest.
	Blocks map[isa.BlockID]bool
}

// LoopNests merges natural loops into maximal (outermost) loop nests.
// Overlapping loops (possible only in irreducible graphs) are merged into
// one nest so that every block belongs to at most one nest.
func LoopNests(g *Graph) []*Nest {
	loops := NaturalLoops(g)
	// Sort by decreasing body size so outer loops come first.
	sort.Slice(loops, func(i, j int) bool {
		if len(loops[i].Body) != len(loops[j].Body) {
			return len(loops[i].Body) > len(loops[j].Body)
		}
		return loops[i].Header < loops[j].Header
	})
	var nests []*Nest
	owner := map[isa.BlockID]*Nest{}
	for _, l := range loops {
		// Find nests this loop overlaps with.
		var hit *Nest
		for b := range l.Body {
			if n := owner[b]; n != nil {
				hit = n
				break
			}
		}
		if hit == nil {
			n := &Nest{Header: l.Header, Blocks: map[isa.BlockID]bool{}}
			for b := range l.Body {
				n.Blocks[b] = true
				owner[b] = n
			}
			nests = append(nests, n)
			continue
		}
		// Contained or overlapping: merge into the existing nest.
		for b := range l.Body {
			hit.Blocks[b] = true
			owner[b] = hit
		}
	}
	sort.Slice(nests, func(i, j int) bool { return nests[i].Header < nests[j].Header })
	for i, n := range nests {
		n.Index = i
	}
	return nests
}
