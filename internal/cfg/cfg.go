// Package cfg performs the compile-time analysis EDDIE's training phase
// needs: it builds the control-flow graph of an isa.Program, finds natural
// loops and loop nests via dominator analysis, and distills the
// region-level state machine described in §4.1 of the paper — loop-nest
// nodes connected by inter-loop edges — that constrains which region
// sequences a valid execution may produce.
package cfg

import (
	"fmt"

	"eddie/internal/isa"
)

// Graph is the basic-block control-flow graph of a program.
type Graph struct {
	// Program is the analyzed program.
	Program *isa.Program
	// Succs[b] lists the successors of block b.
	Succs [][]isa.BlockID
	// Preds[b] lists the predecessors of block b.
	Preds [][]isa.BlockID
	// IDom[b] is the immediate dominator of block b (NoBlock for entry
	// and unreachable blocks).
	IDom []isa.BlockID
	// Reachable[b] reports whether b is reachable from the entry.
	Reachable []bool
	// RPO holds the reachable blocks in reverse postorder.
	RPO []isa.BlockID
	// rpoIndex[b] is the position of b in RPO (-1 if unreachable).
	rpoIndex []int
}

// Build constructs the CFG and dominator tree of p.
func Build(p *isa.Program) (*Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Blocks)
	g := &Graph{
		Program:   p,
		Succs:     make([][]isa.BlockID, n),
		Preds:     make([][]isa.BlockID, n),
		IDom:      make([]isa.BlockID, n),
		Reachable: make([]bool, n),
		rpoIndex:  make([]int, n),
	}
	for i := range p.Blocks {
		g.Succs[i] = p.Blocks[i].Successors()
	}
	for b := range g.Succs {
		for _, s := range g.Succs[b] {
			g.Preds[s] = append(g.Preds[s], isa.BlockID(b))
		}
	}
	g.computeRPO()
	g.computeDominators()
	return g, nil
}

// computeRPO fills Reachable, RPO and rpoIndex via an iterative DFS.
func (g *Graph) computeRPO() {
	n := len(g.Succs)
	for i := range g.rpoIndex {
		g.rpoIndex[i] = -1
	}
	post := make([]isa.BlockID, 0, n)
	// Iterative postorder DFS.
	type frame struct {
		b    isa.BlockID
		next int
	}
	stack := []frame{{b: g.Program.Entry}}
	g.Reachable[g.Program.Entry] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(g.Succs[f.b]) {
			s := g.Succs[f.b][f.next]
			f.next++
			if !g.Reachable[s] {
				g.Reachable[s] = true
				stack = append(stack, frame{b: s})
			}
			continue
		}
		post = append(post, f.b)
		stack = stack[:len(stack)-1]
	}
	g.RPO = make([]isa.BlockID, len(post))
	for i := range post {
		g.RPO[i] = post[len(post)-1-i]
	}
	for i, b := range g.RPO {
		g.rpoIndex[b] = i
	}
}

// computeDominators runs the Cooper–Harvey–Kennedy iterative algorithm.
func (g *Graph) computeDominators() {
	for i := range g.IDom {
		g.IDom[i] = isa.NoBlock
	}
	entry := g.Program.Entry
	g.IDom[entry] = entry
	changed := true
	for changed {
		changed = false
		for _, b := range g.RPO {
			if b == entry {
				continue
			}
			var newIDom = isa.NoBlock
			for _, p := range g.Preds[b] {
				if g.IDom[p] == isa.NoBlock {
					continue // predecessor not yet processed
				}
				if newIDom == isa.NoBlock {
					newIDom = p
				} else {
					newIDom = g.intersect(p, newIDom)
				}
			}
			if newIDom != isa.NoBlock && g.IDom[b] != newIDom {
				g.IDom[b] = newIDom
				changed = true
			}
		}
	}
	// The entry's IDom is conventionally itself during the fixpoint; clear
	// it afterwards so Dominates() treats entry as dominated only by itself.
	g.IDom[entry] = isa.NoBlock
}

func (g *Graph) intersect(a, b isa.BlockID) isa.BlockID {
	for a != b {
		for g.rpoIndex[a] > g.rpoIndex[b] {
			a = g.IDom[a]
			if a == isa.NoBlock {
				return b
			}
		}
		for g.rpoIndex[b] > g.rpoIndex[a] {
			b = g.IDom[b]
			if b == isa.NoBlock {
				return a
			}
		}
	}
	return a
}

// Dominates reports whether block a dominates block b (reflexively).
func (g *Graph) Dominates(a, b isa.BlockID) bool {
	if !g.Reachable[a] || !g.Reachable[b] {
		return false
	}
	for {
		if a == b {
			return true
		}
		if b == g.Program.Entry {
			return false
		}
		b = g.IDom[b]
		if b == isa.NoBlock {
			return false
		}
	}
}

// String renders a compact textual form of the graph for debugging.
func (g *Graph) String() string {
	s := fmt.Sprintf("cfg %q entry=%d\n", g.Program.Name, g.Program.Entry)
	for b := range g.Succs {
		s += fmt.Sprintf("  %d (%s) -> %v\n", b, g.Program.Blocks[b].Label, g.Succs[b])
	}
	return s
}
