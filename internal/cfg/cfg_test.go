package cfg

import (
	"testing"

	"eddie/internal/isa"
)

// buildDiamond: entry -> (a | b) -> join -> exit, no loops.
func buildDiamond() *isa.Program {
	b := isa.NewBuilder("diamond", 0)
	entry := b.NewBlock("entry")
	a := b.NewBlock("a")
	c := b.NewBlock("b")
	join := b.NewBlock("join")
	entry.Branch(isa.EQ, 0, 0, a, c)
	a.Jump(join)
	c.Jump(join)
	join.Halt()
	return b.Build()
}

// buildTwoLoops: entry -> loop1 -> mid -> loop2 -> exit.
func buildTwoLoops() *isa.Program {
	b := isa.NewBuilder("twoloops", 4)
	entry := b.NewBlock("entry")
	h1 := b.NewBlock("h1")
	b1 := b.NewBlock("b1")
	mid := b.NewBlock("mid")
	h2 := b.NewBlock("h2")
	b2 := b.NewBlock("b2")
	exit := b.NewBlock("exit")
	entry.Li(1, 10).Li(0, 0)
	entry.Jump(h1)
	h1.Branch(isa.GT, 1, 0, b1, mid)
	b1.SubI(1, 1, 1)
	b1.Jump(h1)
	mid.Li(1, 5)
	mid.Jump(h2)
	h2.Branch(isa.GT, 1, 0, b2, exit)
	b2.SubI(1, 1, 1)
	b2.Jump(h2)
	exit.Halt()
	return b.Build()
}

// buildNested: outer loop containing an inner loop.
func buildNested() *isa.Program {
	b := isa.NewBuilder("nested", 4)
	entry := b.NewBlock("entry")
	oh := b.NewBlock("outer_head")
	ih := b.NewBlock("inner_head")
	ib := b.NewBlock("inner_body")
	on := b.NewBlock("outer_next")
	exit := b.NewBlock("exit")
	entry.Li(1, 5).Li(0, 0)
	entry.Jump(oh)
	oh.Branch(isa.GT, 1, 0, ihInit(b, ih), exit)
	ih.Branch(isa.GT, 2, 0, ib, on)
	ib.SubI(2, 2, 1)
	ib.Jump(ih)
	on.SubI(1, 1, 1)
	on.Jump(oh)
	exit.Halt()
	return b.Build()
}

func ihInit(b *isa.Builder, ih *isa.BlockBuilder) *isa.BlockBuilder {
	w := b.NewBlock("inner_init")
	w.Li(2, 3)
	w.Jump(ih)
	return w
}

func TestDominators(t *testing.T) {
	p := buildDiamond()
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	// Entry dominates everything; neither branch arm dominates the join.
	for b := isa.BlockID(0); b < 4; b++ {
		if !g.Dominates(0, b) {
			t.Errorf("entry should dominate block %d", b)
		}
	}
	if g.Dominates(1, 3) || g.Dominates(2, 3) {
		t.Error("branch arms must not dominate the join")
	}
	if g.IDom[3] != 0 {
		t.Errorf("idom(join) = %d, want 0", g.IDom[3])
	}
	if !g.Dominates(3, 3) {
		t.Error("dominance must be reflexive")
	}
}

func TestNaturalLoopsTwoLoops(t *testing.T) {
	p := buildTwoLoops()
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	loops := NaturalLoops(g)
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	for _, l := range loops {
		if len(l.Body) != 2 {
			t.Errorf("loop at %d has body %v, want header+body", l.Header, l.Body)
		}
		if !l.Body[l.Header] {
			t.Errorf("loop body must contain its header")
		}
	}
}

func TestLoopNestsMergeInnerLoops(t *testing.T) {
	p := buildNested()
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	loops := NaturalLoops(g)
	if len(loops) != 2 {
		t.Fatalf("found %d natural loops, want 2 (outer+inner)", len(loops))
	}
	nests := LoopNests(g)
	if len(nests) != 1 {
		t.Fatalf("found %d nests, want 1 (inner merged into outer)", len(nests))
	}
	// The nest contains both headers.
	headers := 0
	for _, l := range loops {
		if nests[0].Blocks[l.Header] {
			headers++
		}
	}
	if headers != 2 {
		t.Errorf("nest contains %d of 2 loop headers", headers)
	}
}

func TestRegionMachineTwoLoops(t *testing.T) {
	p := buildTwoLoops()
	m, err := BuildMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Nests) != 2 {
		t.Fatalf("%d nests, want 2", len(m.Nests))
	}
	// Expect loop regions 0,1 plus transitions start->0, 0->1, 1->end.
	wantTrans := [][2]int{{Boundary, 0}, {0, 1}, {1, Boundary}}
	for _, tr := range wantTrans {
		if _, ok := m.TransRegionOf(tr[0], tr[1]); !ok {
			t.Errorf("missing transition region %v", tr)
		}
	}
	// Successor relation: loop0 -> {trans(0,1), loop1}; trans(0,1) -> loop1.
	succ0 := m.Successors(m.LoopRegionOf(0))
	foundLoop1 := false
	for _, s := range succ0 {
		if s == m.LoopRegionOf(1) {
			foundLoop1 = true
		}
	}
	if !foundLoop1 {
		t.Errorf("loop0 successors %v missing loop1", succ0)
	}
	// Valid walk accepted, invalid rejected.
	t01, _ := m.TransRegionOf(0, 1)
	if !m.Accepts([]RegionID{m.LoopRegionOf(0), t01, m.LoopRegionOf(1)}) {
		t.Error("valid walk rejected")
	}
	if m.Accepts([]RegionID{m.LoopRegionOf(1), m.LoopRegionOf(0)}) {
		t.Error("backwards walk accepted")
	}
}

func TestRegionMachineBlockNest(t *testing.T) {
	p := buildTwoLoops()
	m, err := BuildMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	inNest := 0
	for _, n := range m.BlockNest {
		if n >= 0 {
			inNest++
		}
	}
	if inNest != 4 {
		t.Errorf("%d blocks in nests, want 4 (two 2-block loops)", inNest)
	}
}

// TestRuntimeTraceIsAcceptedByMachine is the property tying static
// analysis to dynamic behavior: every executed region sequence must be a
// walk of the machine.
func TestRuntimeTraceIsAcceptedByMachine(t *testing.T) {
	for _, build := range []func() *isa.Program{buildTwoLoops, buildNested} {
		p := build()
		m, err := BuildMachine(p)
		if err != nil {
			t.Fatal(err)
		}
		// Reconstruct the nest sequence from a functional execution.
		var nestSeq []int
		prev := -2
		_, err = isa.Execute(p, isa.ExecConfig{}, func(di *isa.DynInstr) bool {
			n := m.BlockNest[di.Block]
			if n != prev {
				if n >= 0 {
					nestSeq = append(nestSeq, n)
				}
				prev = n
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		// Convert to region walk with transitions inserted.
		var walk []RegionID
		last := Boundary
		for _, n := range nestSeq {
			if tr, ok := m.TransRegionOf(last, n); ok {
				walk = append(walk, tr)
			}
			walk = append(walk, m.LoopRegionOf(n))
			last = n
		}
		if !m.Accepts(walk) {
			t.Errorf("%s: runtime walk %v rejected by machine\n%s", p.Name, walk, m)
		}
	}
}

func TestDiamondHasNoNests(t *testing.T) {
	m, err := BuildMachine(buildDiamond())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Nests) != 0 {
		t.Errorf("diamond has %d nests, want 0", len(m.Nests))
	}
	// Only the start->end transition exists.
	if _, ok := m.TransRegionOf(Boundary, Boundary); !ok {
		t.Error("missing start->end transition for loop-free program")
	}
}

func TestUnreachableBlocksIgnored(t *testing.T) {
	b := isa.NewBuilder("unreach", 0)
	entry := b.NewBlock("entry")
	dead := b.NewBlock("dead")
	exit := b.NewBlock("exit")
	entry.Jump(exit)
	dead.Jump(dead) // unreachable self-loop
	exit.Halt()
	p := b.Build()
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.Reachable[1] {
		t.Error("dead block marked reachable")
	}
	loops := NaturalLoops(g)
	if len(loops) != 0 {
		t.Errorf("unreachable self-loop reported: %v", loops)
	}
}
