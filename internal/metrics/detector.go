package metrics

import (
	"fmt"
	"sync"

	"eddie/internal/cfg"
)

// latencyBucketsSTS are histogram bounds for detection latency measured
// in STS windows.
var latencyBucketsSTS = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// peakBuckets are histogram bounds for per-window peak counts.
var peakBuckets = []float64{0, 1, 2, 4, 6, 8, 12, 16, 24, 32}

// statBuckets are histogram bounds for the per-region K-S rejection
// fraction (the share of peak-rank tests that rejected, in [0,1]).
var statBuckets = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}

// DriftEWMAAlpha is the smoothing factor of the per-region K-S
// statistic EWMAs (region_stat_ewma/R*): slow enough to average over
// the test-to-test jitter of a healthy channel, fast enough that gain
// drift or reference staleness moves the gauge within a few hundred
// windows. These gauges are the drift-adaptive roadmap item's input
// signal: a region whose EWMA climbs while no alarm fires is a channel
// drifting away from its frozen training-time reference.
const DriftEWMAAlpha = 0.02

// Detector bundles the instruments of one detector instance. It
// implements core.MonitorStats, so handing it to a monitor (or a
// stream.Detector, which forwards it) captures the monitoring internals:
// K-S tests run, per-region statistic distributions, region switches and
// report streaks. The stream layer adds sample/window counters and,
// when ground truth is available, false-positive/negative counts and
// detection latency.
type Detector struct {
	// Reg is the backing registry; Snapshot/MarshalJSON/Publish live
	// there.
	Reg *Registry

	// SamplesIn counts raw samples fed; Sanitized the non-finite samples
	// replaced by zero; Windows the STSs produced; ReportsFired the
	// anomaly reports raised.
	SamplesIn, Sanitized, Windows, ReportsFired *Counter
	// KSTests counts region-level K-S decisions; KSRejects the rejecting
	// ones.
	KSTests, KSRejects *Counter
	// RegionSwitches counts monitor region transitions.
	RegionSwitches *Counter
	// TruePos/FalsePos/TrueNeg/FalseNeg classify windows against
	// injected ground truth (only populated when ground truth is wired).
	TruePos, FalsePos, TrueNeg, FalseNeg *Counter
	// DenoiseRefactors counts subspace refactorizations of the denoising
	// stage (zero when denoising is disabled).
	DenoiseRefactors *Counter
	// DenoiseRank is the effective rank of the current denoising basis;
	// DenoiseEnergyPct the percentage of block spectral energy it
	// captures. Both update on each refactorization.
	DenoiseRank, DenoiseEnergyPct *Gauge
	// AdaptUpdates counts reference updates admitted by the monitor's
	// drift-adaptive layer; AdaptDrift is the cumulative normalized
	// distance the adaptive references have moved from their trained
	// position. Both stay zero with adaptation disabled.
	AdaptUpdates *Counter
	AdaptDrift   *FloatGauge
	// PeakCount is the distribution of per-window peak counts.
	PeakCount *Histogram
	// LatencySTS and LatencySamples are detection latency distributions,
	// from the first injected window of an episode to its report.
	LatencySTS, LatencySamples *Histogram
	// WindowNanos is the distribution of per-window processing cost
	// (STFT + denoise + peaks + decision) in nanoseconds — the
	// detector-level half of the fleet's frame-to-verdict budget.
	// Lock-free and zero-alloc, recorded on every window.
	WindowNanos *LogHistogram

	// regions caches per-region instruments. Resolving them through the
	// registry needs a formatted name, and the monitor consults these
	// hooks every window — a Sprintf per K-S decision would put string
	// allocation on the detector's zero-alloc sample path.
	regions sync.Map // cfg.RegionID -> *regionInstruments
}

// regionInstruments bundles the instruments scoped to one region.
type regionInstruments struct {
	stat             *Histogram
	statEWMA         *FloatGauge
	windows, rejects *Counter
}

// region returns the cached instruments for one region, resolving them
// from the registry on first use. Registry instruments are interned by
// name, so a racing double-create resolves to the same counters.
func (d *Detector) region(id cfg.RegionID) *regionInstruments {
	if v, ok := d.regions.Load(id); ok {
		return v.(*regionInstruments)
	}
	ri := &regionInstruments{
		stat:     d.Reg.Histogram(fmt.Sprintf("region_stat/R%d", id), statBuckets),
		statEWMA: d.Reg.FloatGauge(fmt.Sprintf("region_stat_ewma/R%d", id)),
		windows:  d.Reg.Counter(fmt.Sprintf("region_windows/R%d", id)),
		rejects:  d.Reg.Counter(fmt.Sprintf("region_rejects/R%d", id)),
	}
	v, _ := d.regions.LoadOrStore(id, ri)
	return v.(*regionInstruments)
}

// NewDetector creates a detector instrument bundle on a fresh registry.
func NewDetector() *Detector { return NewDetectorWith(NewRegistry()) }

// NewDetectorWith creates a detector instrument bundle on an existing
// registry. Instruments are resolved by name, so several bundles built
// on the same registry share the same counters — this is how a fleet of
// concurrent detector sessions aggregates into one scrape target. All
// instruments are safe for concurrent use across sessions.
func NewDetectorWith(reg *Registry) *Detector {
	return &Detector{
		Reg:              reg,
		SamplesIn:        reg.Counter("samples_in"),
		Sanitized:        reg.Counter("samples_sanitized"),
		Windows:          reg.Counter("sts_produced"),
		ReportsFired:     reg.Counter("reports_fired"),
		KSTests:          reg.Counter("ks_tests"),
		KSRejects:        reg.Counter("ks_rejects"),
		RegionSwitches:   reg.Counter("region_switches"),
		TruePos:          reg.Counter("truth_true_positive"),
		FalsePos:         reg.Counter("truth_false_positive"),
		TrueNeg:          reg.Counter("truth_true_negative"),
		FalseNeg:         reg.Counter("truth_false_negative"),
		DenoiseRefactors: reg.Counter("denoise_refactors"),
		DenoiseRank:      reg.Gauge("denoise_rank"),
		DenoiseEnergyPct: reg.Gauge("denoise_energy_pct"),
		AdaptUpdates:     reg.Counter("adapt_updates"),
		AdaptDrift:       reg.FloatGauge("adapt_drift"),
		PeakCount:        reg.Histogram("peak_count", peakBuckets),
		LatencySTS:       reg.Histogram("detection_latency_sts", latencyBucketsSTS),
		LatencySamples:   reg.Histogram("detection_latency_samples", nil),
		WindowNanos:      reg.LogHist("window_process_ns"),
	}
}

// KSTest implements core.MonitorStats: one region-level K-S decision,
// with the best-mode rejection fraction as the test statistic.
func (d *Detector) KSTest(region cfg.RegionID, rejFrac float64, rejected bool) {
	d.KSTests.Inc()
	if rejected {
		d.KSRejects.Inc()
	}
	ri := d.region(region)
	ri.stat.Observe(rejFrac)
	// Drift telemetry: the EWMA of the region test statistic. Healthy
	// channels hold it near the training-time baseline; slow channel
	// drift (gain, DC wander, clock skew) pushes it up long before the
	// rejection streak threshold fires an alarm.
	ri.statEWMA.ObserveEWMA(rejFrac, DriftEWMAAlpha)
}

// WindowObserved implements core.MonitorStats: one STS processed by the
// monitor.
func (d *Detector) WindowObserved(region cfg.RegionID, rejected, flagged bool) {
	ri := d.region(region)
	ri.windows.Inc()
	if rejected {
		ri.rejects.Inc()
	}
}

// ReportFired implements core.MonitorStats: an anomaly report was
// raised after a rejection streak of the given length.
func (d *Detector) ReportFired(streak int) {
	d.ReportsFired.Inc()
}

// RegionSwitch implements core.MonitorStats: the monitor moved between
// regions.
func (d *Detector) RegionSwitch(from, to cfg.RegionID) {
	d.RegionSwitches.Inc()
}
