package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestLogBucketIndexExactBelowLinear: values under the linear limit get
// their own unit buckets, so small queue depths are exact.
func TestLogBucketIndexExactBelowLinear(t *testing.T) {
	for v := int64(0); v < logHistLinear; v++ {
		if got := logBucketIndex(v); got != int(v) {
			t.Fatalf("logBucketIndex(%d) = %d, want %d", v, got, v)
		}
		if got := logBucketMax(int(v)); got != v {
			t.Fatalf("logBucketMax(%d) = %d, want %d", v, got, v)
		}
	}
}

// TestLogBucketIndexMonotone: bucket index is monotone in the value and
// every value is <= its bucket's upper bound, across representative
// points of the whole int64 range.
func TestLogBucketIndexMonotone(t *testing.T) {
	vals := []int64{0, 1, 31, 32, 33, 47, 48, 63, 64, 100, 1000, 4095, 4096,
		1 << 20, 1<<20 + 1, 1 << 40, 1<<62 - 1, 1 << 62, math.MaxInt64}
	prevIdx := -1
	for _, v := range vals {
		idx := logBucketIndex(v)
		if idx < prevIdx {
			t.Fatalf("bucket index not monotone at %d: %d < %d", v, idx, prevIdx)
		}
		prevIdx = idx
		if idx < 0 || idx >= logHistBuckets {
			t.Fatalf("logBucketIndex(%d) = %d out of range [0,%d)", v, idx, logHistBuckets)
		}
		ub := logBucketMax(idx)
		if ub < v {
			t.Fatalf("logBucketMax(%d)=%d below value %d", idx, ub, v)
		}
		// Relative error bound: upper bound overshoots by < 1/logHistSub.
		if v >= logHistLinear {
			if rel := float64(ub-v) / float64(v); rel > 1.0/logHistSub {
				t.Fatalf("value %d: bound %d relative error %.4f > %.4f",
					v, ub, rel, 1.0/logHistSub)
			}
		}
	}
}

// TestLogBucketBoundsContiguous: every bucket's upper bound is exactly
// one below the next bucket's smallest member — no gaps, no overlaps.
func TestLogBucketBoundsContiguous(t *testing.T) {
	for i := 0; i < logHistBuckets-1; i++ {
		ub := logBucketMax(i)
		if ub == math.MaxInt64 {
			break
		}
		if got := logBucketIndex(ub); got != i {
			t.Fatalf("upper bound %d of bucket %d maps to bucket %d", ub, i, got)
		}
		if got := logBucketIndex(ub + 1); got != i+1 {
			t.Fatalf("value %d (one past bucket %d) maps to bucket %d, want %d",
				ub+1, i, got, i+1)
		}
	}
	// The last bucket holds MaxInt64.
	if got := logBucketIndex(math.MaxInt64); got != logHistBuckets-1 {
		t.Fatalf("MaxInt64 maps to bucket %d, want %d", got, logHistBuckets-1)
	}
}

func TestLogHistogramSnapshotQuantiles(t *testing.T) {
	var h LogHistogram
	// 1000 observations: 1..1000 (values well inside the geometric range).
	for v := int64(1); v <= 1000; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("Count = %d, want 1000", s.Count)
	}
	if want := int64(1000 * 1001 / 2); s.Sum != want {
		t.Fatalf("Sum = %d, want %d", s.Sum, want)
	}
	if math.Abs(s.Mean-500.5) > 1e-9 {
		t.Fatalf("Mean = %g, want 500.5", s.Mean)
	}
	// Quantile estimates overshoot by at most one sub-bucket (6.25%).
	checks := []struct {
		name  string
		got   int64
		exact float64
	}{
		{"p50", s.P50, 500}, {"p90", s.P90, 900},
		{"p99", s.P99, 990}, {"p999", s.P999, 999},
	}
	for _, c := range checks {
		if float64(c.got) < c.exact || float64(c.got) > c.exact*(1+1.0/logHistSub)+1 {
			t.Errorf("%s = %d, want within [%g, %g]", c.name, c.got,
				c.exact, c.exact*(1+1.0/logHistSub)+1)
		}
	}
	if float64(s.Max) < 1000 || float64(s.Max) > 1000*(1+1.0/logHistSub)+1 {
		t.Errorf("Max = %d, want ~1000", s.Max)
	}
	if q := h.Quantile(0.5); q != s.P50 {
		t.Errorf("Quantile(0.5) = %d != snapshot P50 %d", q, s.P50)
	}
	if q := h.Quantile(1.0); q != s.Max {
		t.Errorf("Quantile(1.0) = %d != snapshot Max %d", q, s.Max)
	}
}

func TestLogHistogramEmptyAndNegative(t *testing.T) {
	var h LogHistogram
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.P99 != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty Quantile != 0")
	}
	h.Record(-17) // clamps to 0
	s = h.Snapshot()
	if s.Count != 1 || s.Sum != 0 || s.Max != 0 {
		t.Fatalf("negative record not clamped: %+v", s)
	}
}

func TestLogHistogramConcurrent(t *testing.T) {
	var h LogHistogram
	const G, N = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < N; i++ {
				h.Record(int64(g*N + i))
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != G*N {
		t.Fatalf("Count = %d, want %d", got, G*N)
	}
}

// TestLogHistogramRecordZeroAlloc is the alloc gate for the hot-path
// record (run by make obs-bench): one Record per fleet frame must not
// allocate.
func TestLogHistogramRecordZeroAlloc(t *testing.T) {
	var h LogHistogram
	v := int64(0)
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Record(v)
		v += 997
	}); allocs != 0 {
		t.Fatalf("LogHistogram.Record allocates %v allocs/op, want 0", allocs)
	}
}

func TestFloatGaugeEWMA(t *testing.T) {
	var g FloatGauge
	g.ObserveEWMA(10, 0.5) // seeds directly
	if got := g.Value(); got != 10 {
		t.Fatalf("after seed: %g, want 10", got)
	}
	g.ObserveEWMA(20, 0.5)
	if got := g.Value(); got != 15 {
		t.Fatalf("after second observation: %g, want 15", got)
	}
	// A genuine zero average must not reset the seeding state.
	var z FloatGauge
	z.ObserveEWMA(0, 0.5)
	if got := z.Value(); got != 0 {
		t.Fatalf("zero seed: %g, want 0", got)
	}
	z.ObserveEWMA(1, 0.5)
	if got := z.Value(); got != 0.5 {
		t.Fatalf("zero then one: %g, want 0.5 (zero seed forgotten?)", got)
	}
}

func TestFloatGaugeEWMAZeroAlloc(t *testing.T) {
	var g FloatGauge
	x := 0.1
	if allocs := testing.AllocsPerRun(1000, func() {
		g.ObserveEWMA(x, 0.05)
		x += 0.001
	}); allocs != 0 {
		t.Fatalf("ObserveEWMA allocates %v allocs/op, want 0", allocs)
	}
}

func TestFloatGaugeConcurrentEWMA(t *testing.T) {
	var g FloatGauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.ObserveEWMA(1, 0.1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("EWMA of constant 1 = %g, want 1", got)
	}
}

// TestRegistryNewInstruments: float gauges, log histograms and info
// metrics intern by name and appear in snapshots with their distinct
// value types.
func TestRegistryNewInstruments(t *testing.T) {
	r := NewRegistry()
	if r.FloatGauge("a") != r.FloatGauge("a") {
		t.Error("FloatGauge not interned")
	}
	if r.LogHist("b") != r.LogHist("b") {
		t.Error("LogHist not interned")
	}
	r.FloatGauge("a").Set(0.25)
	r.LogHist("b").Record(3)
	lbl := map[string]string{"version": "v1.2.3"}
	r.SetInfo("build_info", lbl)
	lbl["version"] = "mutated" // SetInfo must have copied

	snap := r.Snapshot()
	if v, ok := snap["a"].(FloatGaugeValue); !ok || float64(v) != 0.25 {
		t.Errorf("snapshot[a] = %#v, want FloatGaugeValue(0.25)", snap["a"])
	}
	if v, ok := snap["b"].(LogHistogramSnapshot); !ok || v.Count != 1 {
		t.Errorf("snapshot[b] = %#v, want LogHistogramSnapshot{Count:1}", snap["b"])
	}
	if v, ok := snap["build_info"].(InfoValue); !ok || v["version"] != "v1.2.3" {
		t.Errorf("snapshot[build_info] = %#v, want copied labels", snap["build_info"])
	}
}

// TestWritePrometheusNewKinds: float gauges render as gauges, info
// metrics as value-1 gauges with sorted labels, log histograms as
// summaries with quantile labels.
func TestWritePrometheusNewKinds(t *testing.T) {
	r := NewRegistry()
	r.FloatGauge("region_stat_ewma/R3").Set(0.125)
	r.SetInfo("build_info", map[string]string{"version": "v1.0", "go": "go1.22"})
	h := r.LogHist("frame_to_verdict_ns/s00")
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 1000)
	}

	var b strings.Builder
	r.WritePrometheus(&b, "eddie")
	out := b.String()
	for _, want := range []string{
		"# TYPE eddie_region_stat_ewma gauge\n",
		"eddie_region_stat_ewma{key=\"R3\"} 0.125\n",
		"# TYPE eddie_build_info gauge\n",
		"eddie_build_info{go=\"go1.22\",version=\"v1.0\"} 1\n",
		"# TYPE eddie_frame_to_verdict_ns summary\n",
		"eddie_frame_to_verdict_ns{key=\"s00\",quantile=\"0.5\"} ",
		"eddie_frame_to_verdict_ns{key=\"s00\",quantile=\"0.999\"} ",
		"eddie_frame_to_verdict_ns_count{key=\"s00\"} 100\n",
		"eddie_frame_to_verdict_ns_sum{key=\"s00\"} 5050000\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q; got:\n%s", want, out)
		}
	}
}

func BenchmarkLogHistogramRecord(b *testing.B) {
	var h LogHistogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
}

func BenchmarkFloatGaugeObserveEWMA(b *testing.B) {
	var g FloatGauge
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.ObserveEWMA(float64(i&1023)/1024, DriftEWMAAlpha)
	}
}
