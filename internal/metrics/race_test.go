package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"testing"
)

// TestRegistryConcurrent is the metrics layer's concurrency proof: many
// goroutines create and bump instruments (including dynamically named
// ones, the fleet's per-device pattern) while others snapshot, marshal
// and scrape the same registry. Run under -race, and the final counts
// must still be exact — no increments lost to races.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const (
		writers = 8
		perG    = 5000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: snapshot, JSON and Prometheus scrapes throughout.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				reg.Snapshot()
				if _, err := json.Marshal(reg); err != nil {
					t.Error(err)
					return
				}
				reg.WritePrometheus(io.Discard, "eddie")
			}
		}()
	}

	var writerWG sync.WaitGroup
	for g := 0; g < writers; g++ {
		writerWG.Add(1)
		go func(g int) {
			defer writerWG.Done()
			// A detector bundle per goroutine on the shared registry: the
			// fleet's per-session wiring. Same names resolve to the same
			// instruments.
			d := NewDetectorWith(reg)
			for i := 0; i < perG; i++ {
				d.SamplesIn.Add(2)
				d.Windows.Inc()
				d.PeakCount.Observe(float64(i % 16))
				// Dynamic per-key instruments, like per-device counters.
				reg.Counter(fmt.Sprintf("device/%d", g%4)).Inc()
				reg.Histogram("shared_hist", []float64{1, 10, 100}).Observe(float64(i))
			}
		}(g)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	if got := reg.Counter("samples_in").Value(); got != writers*perG*2 {
		t.Errorf("samples_in = %d, want %d", got, writers*perG*2)
	}
	if got := reg.Counter("sts_produced").Value(); got != writers*perG {
		t.Errorf("sts_produced = %d, want %d", got, writers*perG)
	}
	var devTotal int64
	for k := 0; k < 4; k++ {
		devTotal += reg.Counter(fmt.Sprintf("device/%d", k)).Value()
	}
	if devTotal != writers*perG {
		t.Errorf("device counters total %d, want %d", devTotal, writers*perG)
	}
	if got := reg.Histogram("shared_hist", nil).Snapshot().Count; got != writers*perG {
		t.Errorf("shared_hist count %d, want %d", got, writers*perG)
	}
	if got := reg.Histogram("peak_count", nil).Snapshot().Count; got != writers*perG {
		t.Errorf("peak_count count %d, want %d", got, writers*perG)
	}
}
