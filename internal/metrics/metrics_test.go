package metrics

import (
	"encoding/json"
	"expvar"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter value %d, want 5", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("concurrent counter value %d, want 8000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Inc()
	g.Add(4)
	g.Dec()
	if g.Value() != 11 {
		t.Errorf("gauge value %d, want 11", g.Value())
	}
	g.Add(-20) // gauges, unlike counters, may go negative
	if g.Value() != -9 {
		t.Errorf("gauge value %d, want -9", g.Value())
	}
}

func TestGaugeRegistryAndSnapshot(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("queue_depth")
	if r.Gauge("queue_depth") != g {
		t.Fatal("registry did not intern the gauge by name")
	}
	g.Set(42)
	snap := r.Snapshot()
	if v, ok := snap["queue_depth"].(GaugeValue); !ok || int64(v) != 42 {
		t.Errorf("snapshot queue_depth = %#v, want GaugeValue(42)", snap["queue_depth"])
	}
	var buf strings.Builder
	r.WritePrometheus(&buf, "eddie")
	out := buf.String()
	if !strings.Contains(out, "# TYPE eddie_queue_depth gauge") ||
		!strings.Contains(out, "eddie_queue_depth 42") {
		t.Errorf("prometheus exposition missing gauge:\n%s", out)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Errorf("count %d, want 5", s.Count)
	}
	if s.Min != 0.5 || s.Max != 100 {
		t.Errorf("min/max %g/%g, want 0.5/100", s.Min, s.Max)
	}
	if want := (0.5 + 1 + 1.5 + 3 + 100) / 5; math.Abs(s.Mean-want) > 1e-12 {
		t.Errorf("mean %g, want %g", s.Mean, want)
	}
	// SearchFloat64s puts v == bound into that bound's bucket.
	wantBuckets := []int64{2, 1, 1, 1}
	for i, w := range wantBuckets {
		if s.Buckets[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, s.Buckets[i], w, s.Buckets)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	s := NewHistogram(nil).Snapshot()
	if s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty histogram snapshot %+v", s)
	}
	if len(s.Buckets) != 1 {
		t.Errorf("no-bounds histogram has %d buckets, want 1 overflow bucket", len(s.Buckets))
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("same-name counters are distinct")
	}
	if r.Histogram("h", []float64{1}) != r.Histogram("h", nil) {
		t.Error("same-name histograms are distinct")
	}
}

func TestRegistryJSONDeterministic(t *testing.T) {
	mk := func() *Registry {
		r := NewRegistry()
		r.Counter("zeta").Add(3)
		r.Counter("alpha").Add(1)
		r.Histogram("mid", []float64{1, 2}).Observe(1.5)
		return r
	}
	a, err := json.Marshal(mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(mk())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("registry JSON not deterministic:\n%s\n%s", a, b)
	}
	var decoded map[string]any
	if err := json.Unmarshal(a, &decoded); err != nil {
		t.Fatalf("registry JSON invalid: %v", err)
	}
	if decoded["alpha"].(float64) != 1 || decoded["zeta"].(float64) != 3 {
		t.Errorf("decoded counters wrong: %v", decoded)
	}
}

func TestRegistryString(t *testing.T) {
	r := NewRegistry()
	r.Counter("n").Inc()
	var decoded map[string]any
	if err := json.Unmarshal([]byte(r.String()), &decoded); err != nil {
		t.Fatalf("String() is not JSON: %v", err)
	}
}

func TestDetectorMonitorStatsHooks(t *testing.T) {
	d := NewDetector()
	d.KSTest(0, 0.4, false)
	d.KSTest(0, 0.9, true)
	d.KSTest(1, 0.1, false)
	d.WindowObserved(0, true, false)
	d.WindowObserved(1, false, false)
	d.ReportFired(5)
	d.RegionSwitch(0, 1)

	if d.KSTests.Value() != 3 || d.KSRejects.Value() != 1 {
		t.Errorf("ks tests/rejects %d/%d, want 3/1", d.KSTests.Value(), d.KSRejects.Value())
	}
	if d.ReportsFired.Value() != 1 || d.RegionSwitches.Value() != 1 {
		t.Errorf("reports/switches %d/%d, want 1/1", d.ReportsFired.Value(), d.RegionSwitches.Value())
	}
	snap := d.Reg.Snapshot()
	if h, ok := snap["region_stat/R0"].(HistogramSnapshot); !ok || h.Count != 2 {
		t.Errorf("region_stat/R0 = %v, want 2 observations", snap["region_stat/R0"])
	}
	if c, ok := snap["region_rejects/R0"].(int64); !ok || c != 1 {
		t.Errorf("region_rejects/R0 = %v, want 1", snap["region_rejects/R0"])
	}
}

func TestRegistryPublish(t *testing.T) {
	// expvar.Publish panics on duplicate names, so publish a unique one
	// and only check it doesn't blow up.
	r := NewRegistry()
	r.Counter("x").Inc()
	r.Publish("eddie_metrics_test")
}

func TestRegistryPublishIdempotent(t *testing.T) {
	// Regression: Publish used to forward straight to expvar.Publish,
	// which panics on a duplicate name — so any process that published
	// per monitoring run (cmd/eddie -serve) died on the second run.
	r := NewRegistry()
	r.Counter("x").Inc()
	r.Publish("eddie_metrics_idempotent_test")
	r.Publish("eddie_metrics_idempotent_test") // same registry again

	// A different registry colliding on the name must not panic either;
	// the first publication wins.
	r2 := NewRegistry()
	r2.Publish("eddie_metrics_idempotent_test")

	// And concurrent publication must be safe.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Publish("eddie_metrics_idempotent_concurrent")
		}()
	}
	wg.Wait()
	if expvar.Get("eddie_metrics_idempotent_test") == nil {
		t.Fatal("name not published")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("sts_produced").Add(7)
	r.Counter("region_rejects/R3").Add(2)
	r.Histogram("peak_count", []float64{1, 4}).Observe(0.5)
	r.Histogram("peak_count", nil).Observe(3)
	r.Histogram("peak_count", nil).Observe(100)

	var b strings.Builder
	r.WritePrometheus(&b, "eddie")
	out := b.String()

	for _, want := range []string{
		"# TYPE eddie_sts_produced counter\n",
		"eddie_sts_produced 7\n",
		"# TYPE eddie_region_rejects counter\n",
		"eddie_region_rejects{key=\"R3\"} 2\n",
		"# TYPE eddie_peak_count histogram\n",
		"eddie_peak_count_bucket{le=\"1\"} 1\n",
		"eddie_peak_count_bucket{le=\"4\"} 2\n", // cumulative
		"eddie_peak_count_bucket{le=\"+Inf\"} 3\n",
		"eddie_peak_count_sum 103.5\n",
		"eddie_peak_count_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q; got:\n%s", want, out)
		}
	}

	// Deterministic output: two renders are byte-identical.
	var b2 strings.Builder
	r.WritePrometheus(&b2, "eddie")
	if out != b2.String() {
		t.Error("WritePrometheus output is not deterministic")
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"ks_tests":    "ks_tests",
		"weird-name":  "weird_name",
		"1starts":     "_1starts",
		"dots.inside": "dots_inside",
	} {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}
