package metrics

import (
	"math/bits"
	"sync/atomic"
)

// LogHistogram is an HDR-style log-bucketed histogram for hot-path
// latency and depth recording: fixed storage, lock-free, and zero-alloc
// on Record. Values are non-negative int64s (nanoseconds, queue depths);
// buckets are exact below logHistLinear and geometric above it with
// logHistSub sub-buckets per octave, bounding the relative quantile
// error at 1/logHistSub (6.25%) across the whole int64 range.
//
// Unlike Histogram (mutex + caller-chosen bounds, meant for offline
// evaluation counters), LogHistogram is safe to call from every shard
// scheduling turn of a 100k-session fleet node: Record is a handful of
// atomic adds with no branch on contention and no allocation (asserted
// by TestLogHistogramRecordZeroAlloc and the BENCH_obs.json gate).
type LogHistogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [logHistBuckets]atomic.Int64
}

const (
	// logHistSubBits fixes the per-octave resolution: 2^logHistSubBits
	// sub-buckets per power of two.
	logHistSubBits = 4
	logHistSub     = 1 << logHistSubBits // sub-buckets per octave
	// logHistLinear values [0, logHistLinear) get exact unit buckets.
	logHistLinear = 2 * logHistSub
	// logHistBuckets covers [0, 2^63): the linear range plus
	// (63 - logHistSubBits - 1) geometric octaves of logHistSub buckets.
	logHistBuckets = logHistLinear + (63-logHistSubBits-1)*logHistSub
)

// logBucketIndex maps a non-negative value onto its bucket.
func logBucketIndex(v int64) int {
	u := uint64(v)
	if u < logHistLinear {
		return int(u)
	}
	k := bits.Len64(u)                    // k >= logHistSubBits+2
	mant := u >> (k - logHistSubBits - 1) // in [logHistSub, 2*logHistSub)
	return logHistLinear + (k-logHistSubBits-2)*logHistSub + int(mant) - logHistSub
}

// logBucketMax returns the largest value mapping to bucket i (the
// bucket's inclusive upper bound), used for quantile estimation.
func logBucketMax(i int) int64 {
	if i < logHistLinear {
		return int64(i)
	}
	oct := (i - logHistLinear) / logHistSub
	sub := (i - logHistLinear) % logHistSub
	return int64(uint64(sub+logHistSub+1)<<(oct+1) - 1)
}

// Record adds one observation. Negative values clamp to zero. Safe for
// unsynchronized concurrent use; performs no allocation.
func (h *LogHistogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[logBucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of recorded observations.
func (h *LogHistogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of recorded values.
func (h *LogHistogram) Sum() int64 { return h.sum.Load() }

// LogHistogramSnapshot is the exported quantile summary of a
// LogHistogram. Quantiles are bucket upper bounds, so they overestimate
// by at most one bucket width (6.25% relative).
type LogHistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
	Max   int64   `json:"max"` // upper bound of the highest occupied bucket
}

// logHistQuantiles are the quantiles a snapshot (and the Prometheus
// summary rendering) reports.
var logHistQuantiles = []float64{0.5, 0.9, 0.99, 0.999}

// Snapshot summarizes the histogram. Concurrent Records may land
// between the bucket reads; each bucket is itself read atomically, so
// the summary is a consistent-enough view for monitoring.
func (h *LogHistogram) Snapshot() LogHistogramSnapshot {
	var counts [logHistBuckets]int64
	var total int64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	s := LogHistogramSnapshot{Count: total, Sum: h.sum.Load()}
	if total == 0 {
		return s
	}
	s.Mean = float64(s.Sum) / float64(total)
	qs := []*int64{&s.P50, &s.P90, &s.P99, &s.P999}
	qi := 0
	var cum int64
	for i := range counts {
		if counts[i] == 0 {
			continue
		}
		cum += counts[i]
		for qi < len(qs) && float64(cum) >= logHistQuantiles[qi]*float64(total) {
			*qs[qi] = logBucketMax(i)
			qi++
		}
		s.Max = logBucketMax(i)
	}
	for ; qi < len(qs); qi++ {
		*qs[qi] = s.Max
	}
	return s
}

// Quantile returns the value at quantile q in [0, 1] (the upper bound
// of the bucket holding it), or 0 with no observations.
func (h *LogHistogram) Quantile(q float64) int64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	var counts [logHistBuckets]int64
	var total int64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	if total == 0 {
		return 0
	}
	var cum int64
	last := int64(0)
	for i := range counts {
		if counts[i] == 0 {
			continue
		}
		cum += counts[i]
		last = logBucketMax(i)
		if float64(cum) >= q*float64(total) {
			return last
		}
	}
	return last
}
