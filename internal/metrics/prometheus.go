package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), the lingua franca of scrape-based monitoring.
// Instrument names of the form "family/label" (the per-region keys like
// "region_rejects/R3") become a labeled series
// `<ns>_family{key="label"} v`; histograms expose the standard
// cumulative `_bucket{le=...}`, `_sum` and `_count` series. Output is
// deterministic: families and labels are emitted in sorted order.
func (r *Registry) WritePrometheus(w io.Writer, namespace string) {
	if namespace == "" {
		namespace = "eddie"
	}
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)

	typed := map[string]bool{} // families with an emitted # TYPE line
	emitType := func(family, kind string) {
		if !typed[family] {
			typed[family] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", family, kind)
		}
	}
	for _, name := range names {
		family, labels := promName(namespace, name)
		switch v := snap[name].(type) {
		case int64:
			emitType(family, "counter")
			fmt.Fprintf(w, "%s%s %d\n", family, labels, v)
		case GaugeValue:
			emitType(family, "gauge")
			fmt.Fprintf(w, "%s%s %d\n", family, labels, int64(v))
		case FloatGaugeValue:
			emitType(family, "gauge")
			fmt.Fprintf(w, "%s%s %g\n", family, labels, float64(v))
		case InfoValue:
			emitType(family, "gauge")
			fmt.Fprintf(w, "%s%s 1\n", family, promInfoLabels(labels, v))
		case LogHistogramSnapshot:
			// Log-bucketed histograms export as a summary: the fixed
			// quantile set plus sum and count. 960 le-buckets would bloat
			// the exposition; the quantiles carry the same information at
			// bounded relative error.
			emitType(family, "summary")
			for i, q := range logHistQuantiles {
				val := [4]int64{v.P50, v.P90, v.P99, v.P999}[i]
				fmt.Fprintf(w, "%s%s %d\n", family, promLabel(labels, "quantile", fmt.Sprintf("%g", q)), val)
			}
			fmt.Fprintf(w, "%s_sum%s %d\n", family, labels, v.Sum)
			fmt.Fprintf(w, "%s_count%s %d\n", family, labels, v.Count)
		case HistogramSnapshot:
			emitType(family, "histogram")
			cum := int64(0)
			for i, bound := range v.Bounds {
				cum += v.Buckets[i]
				fmt.Fprintf(w, "%s_bucket%s %d\n", family, promLE(labels, fmt.Sprintf("%g", bound)), cum)
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", family, promLE(labels, "+Inf"), v.Count)
			fmt.Fprintf(w, "%s_sum%s %g\n", family, labels, v.Sum)
			fmt.Fprintf(w, "%s_count%s %d\n", family, labels, v.Count)
		}
	}
}

// promName splits an instrument name into a sanitized metric family and
// a label clause: "region_stat/R3" → ("ns_region_stat", `{key="R3"}`).
func promName(namespace, name string) (family, labels string) {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return namespace + "_" + sanitizeMetricName(name[:i]),
			fmt.Sprintf(`{key=%q}`, name[i+1:])
	}
	return namespace + "_" + sanitizeMetricName(name), ""
}

// promLE splices an le label into an existing label clause.
func promLE(labels, le string) string { return promLabel(labels, "le", le) }

// promLabel splices one key="value" pair into an existing label clause.
func promLabel(labels, key, value string) string {
	if labels == "" {
		return fmt.Sprintf(`{%s=%q}`, key, value)
	}
	return fmt.Sprintf(`%s,%s=%q}`, labels[:len(labels)-1], key, value)
}

// promInfoLabels splices an info metric's label set (sorted by key)
// into an existing label clause.
func promInfoLabels(labels string, info InfoValue) string {
	keys := make([]string, 0, len(info))
	for k := range info {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		labels = promLabel(labels, sanitizeMetricName(k), info[k])
	}
	return labels
}

// sanitizeMetricName maps arbitrary instrument names onto the Prometheus
// metric-name alphabet [a-zA-Z0-9_:].
func sanitizeMetricName(s string) string {
	var b strings.Builder
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
