// Package metrics is EDDIE's observability layer: cheap, concurrency-
// safe counters and histograms that the streaming detector and the
// monitor publish while running, exported as deterministic JSON and
// (optionally) through expvar for scraping. A production deployment of
// the ROADMAP's "heavy traffic" detector fleet needs exactly these
// signals: how many samples and windows flowed, how often the K-S tests
// rejected per region, how the per-region test statistic is distributed,
// and how detection latency and false-positive/negative counts behave
// against injected ground truth. See DESIGN.md §9 for the schema.
package metrics

import (
	"encoding/json"
	"expvar"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, live sessions): unlike a
// Counter it can go down. Exposed in snapshots as a float64 so JSON and
// Prometheus renderings distinguish it from monotone counters.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the current level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by d (d may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an instantaneous float64 level (an EWMA of a test
// statistic, an energy ratio). Lock-free: the value is stored as raw
// float bits in one atomic word.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set replaces the current level.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current level.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// ObserveEWMA folds one observation into the gauge as an exponentially
// weighted moving average with the given smoothing factor alpha in
// (0, 1]. The first observation seeds the average directly (the gauge's
// zero bit pattern doubles as the "unseeded" sentinel; a genuine zero
// average is stored as -0.0, which compares equal to 0). Lock-free and
// allocation-free — safe on the monitor's zero-alloc decision path.
func (g *FloatGauge) ObserveEWMA(x, alpha float64) {
	for {
		old := g.bits.Load()
		var next float64
		if old == 0 {
			next = x
		} else {
			prev := math.Float64frombits(old)
			next = prev + alpha*(x-prev)
		}
		nb := math.Float64bits(next)
		if nb == 0 {
			nb = math.Float64bits(math.Copysign(0, -1))
		}
		if g.bits.CompareAndSwap(old, nb) {
			return
		}
	}
}

// FloatGaugeValue is a float gauge's level in snapshots; a distinct
// type so renderers can tell it from histogram summaries.
type FloatGaugeValue float64

// InfoValue is a constant info metric's label set in snapshots —
// rendered as a Prometheus gauge with value 1 and the labels attached
// (the `build_info` idiom).
type InfoValue map[string]string

// Histogram accumulates a distribution of observations into fixed
// buckets. Bounds are upper bounds of each bucket; one overflow bucket
// catches everything above the last bound.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64
	count  int64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram creates a histogram with the given ascending bucket upper
// bounds (they are copied).
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
}

// HistogramSnapshot is the JSON form of a histogram.
type HistogramSnapshot struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Mean    float64   `json:"mean"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
}

// Snapshot returns a copy of the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Count:   h.count,
		Sum:     h.sum,
		Min:     h.min,
		Max:     h.max,
		Bounds:  append([]float64(nil), h.bounds...),
		Buckets: append([]int64(nil), h.counts...),
	}
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
	}
	return s
}

// GaugeValue is a gauge's level in snapshots; a distinct type so the
// JSON and Prometheus renderers can tell gauges from counters.
type GaugeValue int64

// Registry is a named collection of counters, gauges, histograms,
// log-bucketed histograms, float gauges and info metrics.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	fgauges  map[string]*FloatGauge
	hists    map[string]*Histogram
	logHists map[string]*LogHistogram
	infos    map[string]InfoValue
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		fgauges:  map[string]*FloatGauge{},
		hists:    map[string]*Histogram{},
		logHists: map[string]*LogHistogram{},
		infos:    map[string]InfoValue{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge returns the named float gauge, creating it on first use.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.fgauges[name]
	if g == nil {
		g = &FloatGauge{}
		r.fgauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// LogHist returns the named log-bucketed histogram, creating it on
// first use.
func (r *Registry) LogHist(name string) *LogHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.logHists[name]
	if h == nil {
		h = &LogHistogram{}
		r.logHists[name] = h
	}
	return h
}

// SetInfo publishes a constant info metric: a label set rendered as a
// gauge with value 1 (the Prometheus `build_info` idiom). The labels
// are copied; calling again replaces them.
func (r *Registry) SetInfo(name string, labels map[string]string) {
	cp := make(InfoValue, len(labels))
	for k, v := range labels {
		cp[k] = v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.infos[name] = cp
}

// Snapshot returns every instrument's current value, keyed by name.
// Counter values are int64, gauges GaugeValue, histograms
// HistogramSnapshot.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.fgauges)+
		len(r.hists)+len(r.logHists)+len(r.infos))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = GaugeValue(g.Value())
	}
	for name, g := range r.fgauges {
		out[name] = FloatGaugeValue(g.Value())
	}
	for name, h := range r.hists {
		out[name] = h.Snapshot()
	}
	for name, h := range r.logHists {
		out[name] = h.Snapshot()
	}
	for name, labels := range r.infos {
		out[name] = labels
	}
	return out
}

// MarshalJSON renders the registry as a JSON object with sorted keys
// (encoding/json sorts map keys, so the output is deterministic).
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

// String renders the registry as indented JSON (for -metrics output).
func (r *Registry) String() string {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Sprintf("metrics: %v", err)
	}
	return string(b)
}

// publishMu serializes the check-then-publish against expvar, whose
// Publish panics on duplicate names.
var publishMu sync.Mutex

// Publish exposes the registry through expvar under the given name, so
// an embedding server's /debug/vars endpoint serves it. Publish is
// idempotent: if the name is already published (by this registry or any
// other expvar), the existing publication is kept and the call is a
// no-op — the raw expvar.Publish would panic instead.
func (r *Registry) Publish(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
