package experiments

import (
	"io"

	"eddie/internal/cfg"
	"eddie/internal/core"
	"eddie/internal/inject"
	"eddie/internal/par"
	"eddie/internal/pipeline"
)

// latencyScales is the GroupSizeScale grid used by the latency sweeps; the
// effective K-S group size is scale * trained n, and detection latency is
// proportional to it.
var latencyScales = []float64{0.25, 0.5, 1, 2, 4}

// Fig3Point is one (latency, false-rejection-rate) point of Fig 3.
type Fig3Point struct {
	Scale     float64
	LatencyMs float64
	FRRPct    float64
}

// Fig3Series is the curve of one loop archetype.
type Fig3Series struct {
	Loop   string
	Region cfg.RegionID
	Points []Fig3Point
}

// bitcountArchetypes maps the paper's three Fig 3 loop shapes onto
// bitcount's nests: the 32-step shift loop has one sharp peak and
// harmonics, the nibble-table loop has several peaks, and the Kernighan
// loop (iteration count = popcount of the data) has poorly defined peaks.
var bitcountArchetypes = []struct {
	name string
	nest int
}{
	{"sharp peak + harmonics (shift loop)", 0},
	{"several peaks (table loop)", 2},
	{"poorly defined peaks (kernighan loop)", 1},
}

// Fig3 reproduces "Figure 3: Buffer size selection for three loops": the
// false-rejection rate of the K-S test on injection-free runs as a
// function of the detection latency (the monitored group size n).
func Fig3(e *Env, w io.Writer) ([]Fig3Series, error) {
	t, err := e.train("bitcount", e.Sim, e.TrainRunsSim)
	if err != nil {
		return nil, err
	}
	// Collect clean monitoring runs once (in parallel, indexed by run);
	// score them per scale.
	runs := make([][]core.STS, e.MonRunsSim)
	err = par.Do(e.MonRunsSim, 0, func(i int) error {
		run, err := pipeline.CollectRun(t.w, t.machine, e.Sim, monitorRunBase+i*3, nil)
		if err != nil {
			return err
		}
		runs[i] = run.STS
		return nil
	})
	if err != nil {
		return nil, err
	}
	var series []Fig3Series
	for _, arch := range bitcountArchetypes {
		region := t.machine.LoopRegionOf(arch.nest)
		rm := t.model.Regions[region]
		if rm == nil {
			continue
		}
		s := Fig3Series{Loop: arch.name, Region: region}
		for _, scale := range latencyScales {
			mc := e.MonitorCfg
			mc.GroupSizeScale = scale
			rejected, total := 0, 0
			for _, sts := range runs {
				mon, err := pipeline.Monitor(t.model, sts, mc)
				if err != nil {
					return nil, err
				}
				for i := range mon.Outcomes {
					if mon.Outcomes[i].Region == region && sts[i].Region == region {
						total++
						if mon.Outcomes[i].Rejected {
							rejected++
						}
					}
				}
			}
			frr := 0.0
			if total > 0 {
				frr = 100 * float64(rejected) / float64(total)
			}
			s.Points = append(s.Points, Fig3Point{
				Scale:     scale,
				LatencyMs: scale * float64(rm.GroupSize) * e.Sim.HopSeconds() * 1e3,
				FRRPct:    frr,
			})
		}
		series = append(series, s)
	}
	fprintf(w, "Fig 3: false-rejection rate vs detection latency (K-S group size), clean runs\n")
	for _, s := range series {
		fprintf(w, "  %s (R%d):\n", s.Loop, s.Region)
		for _, p := range s.Points {
			fprintf(w, "    latency %7.3f ms (scale %.2f): FRR %.2f%%\n", p.LatencyMs, p.Scale, p.FRRPct)
		}
	}
	return series, nil
}

// TPRPoint is one (latency, true-positive-rate) sweep point.
type TPRPoint struct {
	Scale     float64
	LatencyMs float64
	TPRPct    float64
	// FirstDetectMs is the time from injection start to the first
	// report, or -1 if never reported.
	FirstDetectMs float64
}

// tprSweep runs one injected configuration across the latency scale grid.
func (e *Env) tprSweep(t *trained, c pipeline.Config, runIdx int, inj inject.Injector, region cfg.RegionID) ([]TPRPoint, error) {
	run, err := pipeline.CollectRun(t.w, t.machine, c, runIdx, inj)
	if err != nil {
		return nil, err
	}
	rm := t.model.Regions[region]
	baseN := t.model.MaxGroupSize
	if rm != nil {
		baseN = rm.GroupSize
	}
	var out []TPRPoint
	for _, scale := range latencyScales {
		mc := e.MonitorCfg
		mc.GroupSizeScale = scale
		mon, err := pipeline.Monitor(t.model, run.STS, mc)
		if err != nil {
			return nil, err
		}
		m, err := core.Evaluate(t.model, run.STS, mon.Outcomes, mon.Reports, c.HopSeconds())
		if err != nil {
			return nil, err
		}
		firstInj := -1
		for i := range run.STS {
			if run.STS[i].Injected {
				firstInj = i
				break
			}
		}
		firstDet := -1.0
		if firstInj >= 0 {
			for _, r := range mon.Reports {
				if r.Window >= firstInj {
					firstDet = float64(r.Window-firstInj) * c.HopSeconds() * 1e3
					break
				}
			}
		}
		out = append(out, TPRPoint{
			Scale:         scale,
			LatencyMs:     scale * float64(baseN) * c.HopSeconds() * 1e3,
			TPRPct:        m.TruePositivePct(),
			FirstDetectMs: firstDet,
		})
	}
	return out, nil
}

// Fig6Series is one injected-size curve for one loop archetype.
type Fig6Series struct {
	Loop   string
	Instrs int
	Points []TPRPoint
}

// Fig6 reproduces "Figure 6: EDDIE's accuracy when changing the number of
// injected instructions inside loops": 2/4/6/8 instructions (half stores,
// half adds) injected into the three loop archetypes.
func Fig6(e *Env, w io.Writer) ([]Fig6Series, error) {
	t, err := e.train("bitcount", e.Sim, e.TrainRunsSim)
	if err != nil {
		return nil, err
	}
	instrGrid := []int{2, 4, 6, 8}
	series := make([]Fig6Series, len(bitcountArchetypes)*len(instrGrid))
	err = par.Do(len(series), 0, func(si int) error {
		arch := bitcountArchetypes[si/len(instrGrid)]
		instrs := instrGrid[si%len(instrGrid)]
		inj := &inject.InLoop{
			Header:        t.nestHeader(arch.nest),
			Instrs:        instrs,
			MemOps:        instrs / 2,
			Contamination: 1,
			Seed:          int64(instrs),
		}
		pts, err := e.tprSweep(t, e.Sim, injectionRunBase+instrs, inj, t.machine.LoopRegionOf(arch.nest))
		if err != nil {
			return err
		}
		series[si] = Fig6Series{Loop: arch.name, Instrs: instrs, Points: pts}
		return nil
	})
	if err != nil {
		return nil, err
	}
	fprintf(w, "Fig 6: TPR vs detection latency for 2/4/6/8 injected instructions per iteration\n")
	printTPRSeries(w, series)
	return series, nil
}

func printTPRSeries(w io.Writer, series []Fig6Series) {
	last := ""
	for _, s := range series {
		if s.Loop != last {
			fprintf(w, "  %s:\n", s.Loop)
			last = s.Loop
		}
		fprintf(w, "    %d instr:", s.Instrs)
		for _, p := range s.Points {
			fprintf(w, "  [%.2fms %.0f%%]", p.LatencyMs, p.TPRPct)
		}
		fprintf(w, "\n")
	}
}

// Fig8Series is one burst-size curve of Fig 8.
type Fig8Series struct {
	Instrs int
	Points []TPRPoint
}

// Fig8 reproduces "Figure 8: EDDIE's accuracy when changing the number of
// injected instructions outside loops": an empty-loop burst between
// bitcount's loops 2 and 3, 100k–500k dynamic instructions.
func Fig8(e *Env, w io.Writer) ([]Fig8Series, error) {
	t, err := e.train("bitcount", e.Sim, e.TrainRunsSim)
	if err != nil {
		return nil, err
	}
	sizes := []int{100_000, 187_000, 218_000, 315_000, 400_000, 500_000}
	series := make([]Fig8Series, len(sizes))
	err = par.Do(len(sizes), 0, func(si int) error {
		size := sizes[si]
		inj := &inject.Burst{
			BlockNest: t.machine.BlockNest,
			FromNest:  1, // between bitcount's second and third loop
			Count:     size,
		}
		pts, err := e.tprSweep(t, e.Sim, injectionRunBase+size/1000, inj, t.machine.LoopRegionOf(1))
		if err != nil {
			return err
		}
		series[si] = Fig8Series{Instrs: size, Points: pts}
		return nil
	})
	if err != nil {
		return nil, err
	}
	fprintf(w, "Fig 8: TPR vs detection latency for bursts outside loops (empty loop between loops 2 and 3)\n")
	for _, s := range series {
		fprintf(w, "  %6dk instr:", s.Instrs/1000)
		for _, p := range s.Points {
			fprintf(w, "  [%.2fms %.0f%%]", p.LatencyMs, p.TPRPct)
		}
		fprintf(w, "\n")
	}
	return series, nil
}

// Fig10Series is one instruction-mix curve of Fig 10.
type Fig10Series struct {
	Mix    string
	Points []TPRPoint
}

// Fig10 reproduces "Figure 10: Effect of changing the type of injected
// instructions": 8 on-chip adds vs 4 adds + 4 cache-missing stores.
func Fig10(e *Env, w io.Writer) ([]Fig10Series, error) {
	t, err := e.train("bitcount", e.Sim, e.TrainRunsSim)
	if err != nil {
		return nil, err
	}
	mixes := []struct {
		name   string
		memOps int
	}{
		{"on-chip (8 add)", 0},
		{"off-chip and on-chip (4 add + 4 store)", 4},
	}
	series := make([]Fig10Series, len(mixes))
	err = par.Do(len(mixes), 0, func(mi int) error {
		mix := mixes[mi]
		inj := &inject.InLoop{
			Header:        t.nestHeader(0),
			Instrs:        8,
			MemOps:        mix.memOps,
			Contamination: 1,
			Seed:          77,
		}
		pts, err := e.tprSweep(t, e.Sim, injectionRunBase+900+mix.memOps, inj, t.machine.LoopRegionOf(0))
		if err != nil {
			return err
		}
		series[mi] = Fig10Series{Mix: mix.name, Points: pts}
		return nil
	})
	if err != nil {
		return nil, err
	}
	fprintf(w, "Fig 10: TPR vs latency by injected-instruction type\n")
	for _, s := range series {
		fprintf(w, "  %-40s:", s.Mix)
		for _, p := range s.Points {
			fprintf(w, "  [%.2fms %.0f%%]", p.LatencyMs, p.TPRPct)
		}
		fprintf(w, "\n")
	}
	return series, nil
}

// Fig9Point is one (latency, FP-rate) point at one confidence level.
type Fig9Point struct {
	Scale     float64
	LatencyMs float64
	FPPct     float64
}

// Fig9Series is one confidence level's curve.
type Fig9Series struct {
	ConfidencePct float64
	Points        []Fig9Point
}

// Fig9 reproduces "Figure 9: False positives in EDDIE for different K-S
// test confidence levels" — 99% keeps false positives near zero at
// reasonable latency; lower confidence levels reject too eagerly.
func Fig9(e *Env, w io.Writer) ([]Fig9Series, error) {
	confs := []float64{99, 97, 95}
	series := make([]Fig9Series, len(confs))
	err := par.Do(len(confs), 0, func(ci int) error {
		conf := confs[ci]
		tc := e.Train
		tc.Alpha = 1 - conf/100
		t, err := e.trainCached("bitcount", e.Sim, e.TrainRunsSim, tc)
		if err != nil {
			return err
		}
		// Clean monitoring runs are shared across the scale sweep:
		// collect them once, in parallel, indexed by run.
		runs := make([][]core.STS, e.MonRunsSim)
		err = par.Do(e.MonRunsSim, 0, func(i int) error {
			run, err := pipeline.CollectRun(t.w, t.machine, e.Sim, monitorRunBase+i*3, nil)
			if err != nil {
				return err
			}
			runs[i] = run.STS
			return nil
		})
		if err != nil {
			return err
		}
		s := Fig9Series{ConfidencePct: conf}
		for _, scale := range latencyScales {
			mc := e.MonitorCfg
			mc.GroupSizeScale = scale
			// Like the paper's Fig 9, plot the raw K-S rejection rate on
			// clean runs (before the reportThreshold filtering), which is
			// what the confidence level directly controls.
			rejected, total := 0, 0
			for _, sts := range runs {
				mon, err := pipeline.Monitor(t.model, sts, mc)
				if err != nil {
					return err
				}
				for j := range mon.Outcomes {
					total++
					if mon.Outcomes[j].Rejected {
						rejected++
					}
				}
			}
			fp := 0.0
			if total > 0 {
				fp = 100 * float64(rejected) / float64(total)
			}
			s.Points = append(s.Points, Fig9Point{
				Scale:     scale,
				LatencyMs: scale * float64(t.model.MaxGroupSize) * e.Sim.HopSeconds() * 1e3,
				FPPct:     fp,
			})
		}
		series[ci] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	fprintf(w, "Fig 9: false positives vs latency for K-S confidence levels\n")
	for _, s := range series {
		fprintf(w, "  %.0f%% confidence:", s.ConfidencePct)
		for _, p := range s.Points {
			fprintf(w, "  [%.2fms %.2f%%]", p.LatencyMs, p.FPPct)
		}
		fprintf(w, "\n")
	}
	return series, nil
}
