package experiments

import (
	"io"
	"os"
	"sync"
	"testing"
)

func TestQuickTable2(t *testing.T) {
	e := sharedQuickEnv()
	if _, err := Table2(e, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFigs(t *testing.T) {
	e := sharedQuickEnv()
	type exp struct {
		name string
		fn   func() error
	}
	exps := []exp{
		{"Fig1", func() error { _, err := Fig1(e, os.Stdout); return err }},
		{"Fig2", func() error { _, err := Fig2(e, os.Stdout); return err }},
		{"Fig3", func() error { _, err := Fig3(e, os.Stdout); return err }},
		{"Fig6", func() error { _, err := Fig6(e, os.Stdout); return err }},
		{"Fig8", func() error { _, err := Fig8(e, os.Stdout); return err }},
		{"Fig9", func() error { _, err := Fig9(e, os.Stdout); return err }},
		{"Fig10", func() error { _, err := Fig10(e, os.Stdout); return err }},
	}
	for _, x := range exps {
		t.Run(x.name, func(t *testing.T) {
			if err := x.fn(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestQuickFig9(t *testing.T) {
	e := sharedQuickEnv()
	if _, err := Fig9(e, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFig4(t *testing.T) {
	e := sharedQuickEnv()
	if _, err := Fig4(e, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFig5(t *testing.T) {
	e := sharedQuickEnv()
	if _, err := Fig5And7(e, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAblations(t *testing.T) {
	e := sharedQuickEnv()
	if _, err := AblationUTest(e, os.Stdout); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationWindow(e, os.Stdout); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationPeakThreshold(e, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("slower quick table")
	}
	e := sharedQuickEnv()
	if _, err := Table1(e, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAblationModes(t *testing.T) {
	e := sharedQuickEnv()
	res, err := AblationModes(e, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if res.PooledFPPct < res.ModesFPPct {
		t.Errorf("pooled reference FP (%.2f%%) should exceed per-run-mode FP (%.2f%%)",
			res.PooledFPPct, res.ModesFPPct)
	}
}

// TestExperimentInvariants checks structural invariants of the
// experiment outputs on top of "doesn't error".
func TestExperimentInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several experiments")
	}
	e := sharedQuickEnv()

	rows, err := Table2(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("Table 2 has %d rows, want 10", len(rows))
	}
	for _, r := range rows {
		if r.FalsePosPct < 0 || r.FalsePosPct > 100 || r.AccuracyPct < 0 || r.AccuracyPct > 100 {
			t.Errorf("%s: percentages out of range: %+v", r.Benchmark, r)
		}
		if r.LatencyMs < 0 {
			t.Errorf("%s: negative latency", r.Benchmark)
		}
	}

	peaks, err := Fig1(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var carrier float64
	for _, p := range peaks {
		if p.Label == "carrier (Fclock)" {
			carrier = p.FreqHz
		}
	}
	if carrier == 0 {
		t.Fatal("Fig 1: no carrier line identified")
	}
	// Sidebands must come in symmetric pairs around the carrier.
	var offsets []float64
	for _, p := range peaks {
		if p.Label == "sideband" {
			offsets = append(offsets, p.FreqHz-carrier)
		}
	}
	for _, off := range offsets {
		found := false
		for _, other := range offsets {
			if other+off < 1e3 && other+off > -1e3 {
				found = true
			}
		}
		if !found {
			t.Errorf("sideband at %+.1f kHz has no mirror", off/1e3)
		}
	}

	fig2, err := Fig2(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if fig2.FitKS <= 0.02 {
		t.Errorf("Fig 2: bi-normal fit K-S distance %.3f suspiciously good; the multi-modality argument needs a mismatch", fig2.FitKS)
	}
	var mass float64
	for _, b := range fig2.Bins {
		mass += b.Empirical
	}
	if mass <= 0 {
		t.Error("Fig 2: empty empirical histogram")
	}

	fig8, err := Fig8(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig8) != 6 {
		t.Fatalf("Fig 8 has %d sizes, want 6", len(fig8))
	}
	// Largest burst must beat the smallest at the operating scale (index 2).
	small := fig8[0].Points[2].TPRPct
	large := fig8[len(fig8)-1].Points[2].TPRPct
	if large < small {
		t.Errorf("Fig 8: 500k burst TPR %.1f%% below 100k burst %.1f%%", large, small)
	}
}

// sharedQuickEnv returns the Env shared by the quick tests. The trained-
// model cache on Env is the whole point: Table 2, the figures and the
// robustness sweep monitor against largely the same (workload, config,
// runs) models, so sharing one Env trains each model once per test
// process instead of once per test. Models are read-only after training
// and the cache is concurrency-safe, so tests stay independent.
func sharedQuickEnv() *Env {
	quickEnvOnce.Do(func() { quickEnv = NewEnv(true) })
	return quickEnv
}

var (
	quickEnvOnce sync.Once
	quickEnv     *Env
)
