package experiments

import (
	"io"

	"eddie/internal/core"
	"eddie/internal/inject"
	"eddie/internal/par"
	"eddie/internal/pipeline"
)

// ContaminationPoint is one (rate, FN, latency) measurement.
type ContaminationPoint struct {
	RatePct       float64
	FNPct         float64
	FirstDetectMs float64 // time from first injected window to first report; -1 if undetected
	Detected      bool
}

// ContaminationSeries is one benchmark's sweep.
type ContaminationSeries struct {
	Benchmark string
	Points    []ContaminationPoint
}

// fig5Benchmarks are the five benchmarks of Figs 5 and 7.
var fig5Benchmarks = []string{"basicmath", "bitcount", "gsm", "patricia", "susan"}

// Fig5And7 reproduces "Figure 5: False negative rate of variable injection
// rates" and "Figure 7: Detection latency of variable injection rates":
// 8 memory + 8 integer instructions injected into a randomly chosen
// subset of the target loop's iterations, contamination 10%..100%.
func Fig5And7(e *Env, w io.Writer) ([]ContaminationSeries, error) {
	rates := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	// Both loops are parallel: benchmarks across the outer level, the ten
	// contamination rates within each, all writing by index.
	series := make([]ContaminationSeries, len(fig5Benchmarks))
	err := par.Do(len(fig5Benchmarks), 0, func(bi int) error {
		name := fig5Benchmarks[bi]
		t, err := e.train(name, e.Sim, e.TrainRunsSim)
		if err != nil {
			return err
		}
		points := make([]ContaminationPoint, len(rates))
		err = par.Do(len(rates), 0, func(ri int) error {
			rate := rates[ri]
			inj := &inject.InLoop{
				Header:        t.nestHeader(0),
				Instrs:        16,
				MemOps:        8,
				Contamination: rate,
				Seed:          int64(rate * 1000),
			}
			run, err := pipeline.CollectRun(t.w, t.machine, e.Sim, injectionRunBase+int(rate*100), inj)
			if err != nil {
				return err
			}
			mon, err := pipeline.Monitor(t.model, run.STS, e.MonitorCfg)
			if err != nil {
				return err
			}
			m, err := core.Evaluate(t.model, run.STS, mon.Outcomes, mon.Reports, e.Sim.HopSeconds())
			if err != nil {
				return err
			}
			firstInj := -1
			for i := range run.STS {
				if run.STS[i].Injected {
					firstInj = i
					break
				}
			}
			det := -1.0
			if firstInj >= 0 {
				for _, r := range mon.Reports {
					if r.Window >= firstInj {
						det = float64(r.Window-firstInj) * e.Sim.HopSeconds() * 1e3
						break
					}
				}
			}
			points[ri] = ContaminationPoint{
				RatePct:       rate * 100,
				FNPct:         m.FalseNegativePct(),
				FirstDetectMs: det,
				Detected:      det >= 0,
			}
			return nil
		})
		if err != nil {
			return err
		}
		series[bi] = ContaminationSeries{Benchmark: name, Points: points}
		return nil
	})
	if err != nil {
		return nil, err
	}
	fprintf(w, "Fig 5: false-negative rate vs contamination rate (16 instrs: 8 mem + 8 int)\n")
	for _, s := range series {
		fprintf(w, "  %-12s:", s.Benchmark)
		for _, p := range s.Points {
			fprintf(w, " [%3.0f%%: FN %5.1f%%]", p.RatePct, p.FNPct)
		}
		fprintf(w, "\n")
	}
	fprintf(w, "Fig 7: detection latency vs contamination rate\n")
	for _, s := range series {
		fprintf(w, "  %-12s:", s.Benchmark)
		for _, p := range s.Points {
			if p.Detected {
				fprintf(w, " [%3.0f%%: %6.2fms]", p.RatePct, p.FirstDetectMs)
			} else {
				fprintf(w, " [%3.0f%%:  missed]", p.RatePct)
			}
		}
		fprintf(w, "\n")
	}
	return series, nil
}
