package experiments

import "testing"

// TestDebugTable1Breakdown localizes Table 1 FPs per run type.
func TestDebugTable1Breakdown(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	e := NewEnv(true)
	for _, name := range []string{"bitcount", "sha"} {
		tr, err := e.train(name, e.IoT, e.TrainRunsIoT)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < e.MonRunsIoT; i++ {
			inj := tableInjector(tr, i)
			kind := "clean"
			desc := ""
			if inj != nil {
				desc = inj.Description()
				if i%3 == 1 {
					kind = "burst"
				} else {
					kind = "inloop"
				}
			}
			m, err := e.score(tr, e.IoT, monitorRunBase+i*7, inj, e.MonitorCfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%-9s run%02d %-6s %s | %s", name, i, kind, m, desc)
		}
	}
}
