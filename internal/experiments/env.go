// Package experiments regenerates every table and figure of the paper's
// evaluation (Tables 1–2, Figures 1–10, and the §5.3 ANOVA study), plus
// ablations of EDDIE's design choices. Each experiment prints the same
// rows/series the paper reports; absolute numbers differ (the substrate is
// a simulator, not the authors' testbed) but the shapes are comparable.
package experiments

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"eddie/internal/cfg"
	"eddie/internal/core"
	"eddie/internal/inject"
	"eddie/internal/isa"
	"eddie/internal/mibench"
	"eddie/internal/pipeline"
)

// Env bundles the shared experiment configuration.
type Env struct {
	// IoT is the Table 1 pipeline: in-order core + EM channel.
	IoT pipeline.Config
	// Sim is the Table 2 pipeline: OOO core, raw power signal.
	Sim pipeline.Config
	// TrainRunsIoT/MonRunsIoT are the run counts for the real-IoT-style
	// experiments (paper: 25/25).
	TrainRunsIoT, MonRunsIoT int
	// TrainRunsSim/MonRunsSim are the run counts for simulator-style
	// experiments (paper: 10/10).
	TrainRunsSim, MonRunsSim int
	// Train is the training configuration.
	Train core.TrainConfig
	// MonitorCfg is the monitoring configuration (reportThreshold=3).
	MonitorCfg core.MonitorConfig

	// modelMu guards models. Each entry is a per-key sync.Once, so
	// concurrent experiments that need the same (workload, pipeline
	// config, run count, train config) train it exactly once and share
	// the result; trained models are read-only during monitoring.
	modelMu sync.Mutex
	models  map[string]*modelEntry
	// trainings counts actual (non-cached) training executions; tests
	// assert the cache coalesces duplicate work.
	trainings atomic.Int64

	// hotMu guards hot, the per-workload hot-loop-header cache. Profiling
	// is functional (no timing model), so the headers depend only on the
	// workload, not the pipeline config — one profile serves every config.
	hotMu sync.Mutex
	hot   map[string]*hotEntry
}

type modelEntry struct {
	once sync.Once
	t    *trained
	err  error
}

type hotEntry struct {
	once    sync.Once
	headers []isa.BlockID
	err     error
}

// NewEnv returns the full-scale environment; short scales run counts down
// for quick iterations (go test -short).
func NewEnv(short bool) *Env {
	e := &Env{
		IoT:          pipeline.DefaultConfig(),
		Sim:          pipeline.SimulatorConfig(),
		TrainRunsIoT: 25,
		MonRunsIoT:   25,
		TrainRunsSim: 10,
		MonRunsSim:   10,
		Train:        core.DefaultTrainConfig(),
		MonitorCfg:   core.DefaultMonitorConfig(),
		models:       map[string]*modelEntry{},
		hot:          map[string]*hotEntry{},
	}
	if short {
		e.TrainRunsIoT = 8
		e.MonRunsIoT = 6
		e.TrainRunsSim = 6
		e.MonRunsSim = 4
	}
	return e
}

// trained couples a model with its machine and workload.
type trained struct {
	w       *mibench.Workload
	machine *cfg.Machine
	model   *core.Model
	// hotHeaders[nest] is the most frequently entered loop header inside
	// each nest — the attacker's natural in-loop injection site (the paper
	// injects per iteration of an existing hot loop body).
	hotHeaders []isa.BlockID
}

// trainCacheKey derives the model-cache key. All pipeline/train config
// fields are flat values (the EM channel pointer is dereferenced), so the
// formatted representation is a faithful identity.
func trainCacheKey(name string, c pipeline.Config, runs int, tc core.TrainConfig) string {
	channel := "nil"
	if c.Channel != nil {
		channel = fmt.Sprintf("%+v", *c.Channel)
	}
	return fmt.Sprintf("%s|runs=%d|sim=%+v|stft=%+v|peaks=%+v|dn=%+v|chan=%s|max=%d|tc=%+v",
		name, runs, c.Sim, c.STFT, c.Peaks, c.Denoise, channel, c.MaxInstrs, tc)
}

// trainCached trains a workload under a pipeline config, or returns the
// cached model if an identical training (same workload, pipeline config,
// run count and train config) already ran. Concurrent callers with the
// same key block on one training.
func (e *Env) trainCached(name string, c pipeline.Config, runs int, tc core.TrainConfig) (*trained, error) {
	key := trainCacheKey(name, c, runs, tc)
	e.modelMu.Lock()
	entry := e.models[key]
	if entry == nil {
		entry = &modelEntry{}
		e.models[key] = entry
	}
	e.modelMu.Unlock()
	entry.once.Do(func() {
		e.trainings.Add(1)
		entry.t, entry.err = e.trainFresh(name, c, runs, tc)
	})
	return entry.t, entry.err
}

// trainFresh performs an actual training run (no model cache; hot-loop
// headers still come from the per-workload profile cache).
func (e *Env) trainFresh(name string, c pipeline.Config, runs int, tc core.TrainConfig) (*trained, error) {
	w, err := mibench.ByName(name)
	if err != nil {
		return nil, err
	}
	model, machine, err := pipeline.Train(w, c, runs, tc)
	if err != nil {
		return nil, fmt.Errorf("experiments: training %s: %w", name, err)
	}
	t := &trained{w: w, machine: machine, model: model}
	t.hotHeaders, err = e.hotHeaders(w, machine)
	if err != nil {
		return nil, fmt.Errorf("experiments: profiling %s: %w", name, err)
	}
	return t, nil
}

// hotHeaders profiles the workload's hot inner-loop headers, once per
// workload: the profile is a functional execution, independent of the
// pipeline config, so every config shares it.
func (e *Env) hotHeaders(w *mibench.Workload, machine *cfg.Machine) ([]isa.BlockID, error) {
	e.hotMu.Lock()
	entry := e.hot[w.Name]
	if entry == nil {
		entry = &hotEntry{}
		e.hot[w.Name] = entry
	}
	e.hotMu.Unlock()
	entry.once.Do(func() {
		entry.headers, entry.err = pipeline.HotLoopHeaders(w, machine)
	})
	return entry.headers, entry.err
}

// Trainings returns how many actual (cache-missing) trainings ran.
func (e *Env) Trainings() int64 { return e.trainings.Load() }

// train builds a model for a workload under a pipeline config, using the
// environment's training configuration.
func (e *Env) train(name string, c pipeline.Config, runs int) (*trained, error) {
	return e.trainCached(name, c, runs, e.Train)
}

// score monitors one run (collected with the given injector and run index)
// and returns its metrics.
func (e *Env) score(t *trained, c pipeline.Config, runIdx int, inj inject.Injector, mc core.MonitorConfig) (*core.Metrics, error) {
	run, err := pipeline.CollectRun(t.w, t.machine, c, runIdx, inj)
	if err != nil {
		return nil, err
	}
	return pipeline.MonitorAndScore(t.model, c, run.STS, mc)
}

// loopNests returns the workload's loop-nest count.
func (t *trained) loopNests() int { return len(t.machine.Nests) }

// nestHeader returns the hot inner-loop header block of nest i.
func (t *trained) nestHeader(i int) isa.BlockID { return t.hotHeaders[i] }

// monitorRunIndex offsets monitoring inputs away from training inputs.
const monitorRunBase = 1000

// injectionRunBase offsets injected runs from clean monitoring runs.
const injectionRunBase = 2000

// fprintf writes formatted output, ignoring errors (experiment output is
// best-effort console text).
func fprintf(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}

// cfgRegionID aliases cfg.RegionID for files that do not otherwise import
// the cfg package.
type cfgRegionID = cfg.RegionID
