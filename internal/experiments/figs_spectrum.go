package experiments

import (
	"io"
	"math"
	"sort"

	"eddie/internal/cfg"
	"eddie/internal/dsp"
	"eddie/internal/emsim"
	"eddie/internal/pipeline"
	"eddie/internal/stats"
)

// Fig1Peak is one labeled spectral line of the Fig 1 reproduction.
type Fig1Peak struct {
	FreqHz   float64
	DB       float64
	Label    string
	OffsetHz float64 // distance from the carrier (0 for the carrier)
}

// Fig1 reproduces "Figure 1: Spectrum of an AM modulated loop activity":
// the power trace of one loop region amplitude-modulates a carrier; the
// spectrum shows the carrier line plus sidebands at ±1/T where T is the
// loop's per-iteration time.
func Fig1(e *Env, w io.Writer) ([]Fig1Peak, error) {
	t, err := e.train("bitcount", e.Sim, 2)
	if err != nil {
		return nil, err
	}
	run, err := pipeline.CollectRun(t.w, t.machine, e.Sim, 0, nil)
	if err != nil {
		return nil, err
	}
	// Slice out the samples of the first loop region (sharp peaks).
	var seg *segRange
	period := int64(e.Sim.Sim.SamplePeriod)
	for _, s := range run.Sim.Segments {
		if s.Region == t.machine.LoopRegionOf(0) {
			seg = &segRange{int(s.StartCycle / period), int(s.EndCycle / period)}
			break
		}
	}
	if seg == nil {
		return nil, errNoRegion
	}
	power := run.Sim.Power[seg.lo:seg.hi]
	fs := e.Sim.Sim.SampleRate()
	carrier := fs / 4
	pass := emsim.SynthesizeAM(power, carrier, fs, 0.5)
	// Whole-segment spectrum, trimmed to a power of two for speed.
	n := 1 << 14
	if n > len(pass) {
		n = dsp.NextPow2(len(pass)) / 2
	}
	spec := dsp.PowerSpectrum(pass[:n])
	binHz := fs / float64(n)

	// Identify the carrier and the strongest sidebands.
	type line struct {
		bin int
		p   float64
	}
	var lines []line
	for i := 2; i+1 < len(spec); i++ {
		if spec[i] > spec[i-1] && spec[i] >= spec[i+1] {
			lines = append(lines, line{i, spec[i]})
		}
	}
	sort.Slice(lines, func(a, b int) bool { return lines[a].p > lines[b].p })
	if len(lines) > 7 {
		lines = lines[:7]
	}
	carrierBin := int(math.Round(carrier / binHz))
	var peaks []Fig1Peak
	for _, l := range lines {
		f := float64(l.bin) * binHz
		label := "sideband"
		if abs(l.bin-carrierBin) <= 1 {
			label = "carrier (Fclock)"
		}
		peaks = append(peaks, Fig1Peak{
			FreqHz:   f,
			DB:       dsp.DB(l.p),
			Label:    label,
			OffsetHz: f - carrier,
		})
	}
	sort.Slice(peaks, func(a, b int) bool { return peaks[a].FreqHz < peaks[b].FreqHz })

	fprintf(w, "Fig 1: spectrum of AM-modulated loop activity (carrier %.3f MHz)\n", carrier/1e6)
	fprintf(w, "%-12s %-10s %-18s %s\n", "Freq(MHz)", "dB", "Offset(kHz)", "Line")
	for _, p := range peaks {
		fprintf(w, "%-12.4f %-10.1f %-18.1f %s\n", p.FreqHz/1e6, p.DB, p.OffsetHz/1e3, p.Label)
	}
	// Sanity note: sidebands should be symmetric around the carrier.
	fprintf(w, "(loop per-iteration frequency f = sideband offset; peaks at Fclock ± f)\n")
	return peaks, nil
}

type segRange struct{ lo, hi int }

type noRegionError struct{}

func (noRegionError) Error() string { return "experiments: region not found in run segments" }

var errNoRegion = noRegionError{}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Fig2Bin is one histogram bin of the Fig 2 reproduction.
type Fig2Bin struct {
	FreqHz    float64
	Empirical float64 // empirical probability density
	BiNormal  float64 // fitted two-component Gaussian density
}

// Fig2Result carries the Fig 2 series plus the fit mismatch.
type Fig2Result struct {
	Bins []Fig2Bin
	// FitKS is the K-S distance between the empirical distribution and
	// the fitted bi-normal — the paper's argument for nonparametric
	// tests: even the best bi-normal fit mismatches the real (multi-
	// modal) peak-frequency distribution, which would cause parametric
	// false positives/negatives.
	FitKS float64
}

// Fig2 reproduces "Figure 2: Normal vs Malicious activity" — the
// distribution of a loop's strongest-peak frequency is multi-modal and
// poorly fitted by parametric families.
func Fig2(e *Env, w io.Writer) (*Fig2Result, error) {
	t, err := e.train("susan", e.Sim, e.TrainRunsSim)
	if err != nil {
		return nil, err
	}
	// Use the first modeled loop region's pooled rank-0 reference.
	var sample []float64
	for _, id := range t.model.RegionIDs() {
		rm := t.model.Regions[id]
		if t.machine.Region(id).Kind == cfg.LoopRegion && !rm.Blind() {
			sample = rm.Ref[0]
			break
		}
	}
	if len(sample) == 0 {
		return nil, errNoRegion
	}
	lo, hi := stats.MinMax(sample)
	span := hi - lo
	if span == 0 {
		span = 1
	}
	lo -= 0.05 * span
	hi += 0.05 * span
	const nbins = 36
	counts := stats.Histogram(sample, lo, hi, nbins)
	fit := stats.FitBiNormal(sample, 80)
	binW := (hi - lo) / nbins

	res := &Fig2Result{}
	for i, c := range counts {
		center := lo + (float64(i)+0.5)*binW
		res.Bins = append(res.Bins, Fig2Bin{
			FreqHz:    center,
			Empirical: float64(c) / (float64(len(sample)) * binW),
			BiNormal:  fit.PDF(center),
		})
	}
	// K-S distance of the fit.
	var d float64
	ecdf, err := stats.NewECDF(sample)
	if err != nil {
		return nil, err
	}
	for _, v := range ecdf.Sorted() {
		if diff := math.Abs(ecdf.At(v) - fit.CDF(v)); diff > d {
			d = diff
		}
	}
	res.FitKS = d

	fprintf(w, "Fig 2: strongest-peak frequency distribution vs best bi-normal fit\n")
	fprintf(w, "%-12s %-14s %-14s\n", "Freq(kHz)", "empirical", "bi-normal fit")
	for _, b := range res.Bins {
		fprintf(w, "%-12.1f %-14.3g %-14.3g\n", b.FreqHz/1e3, b.Empirical, b.BiNormal)
	}
	fprintf(w, "K-S distance of bi-normal fit: %.3f (parametric tests would mis-estimate tails)\n", res.FitKS)
	return res, nil
}
