package experiments

import (
	"io"

	"eddie/internal/core"
	"eddie/internal/inject"
	"eddie/internal/par"
	"eddie/internal/pipeline"
)

// TableRow is one benchmark's aggregated result for Table 1 / Table 2.
type TableRow struct {
	Benchmark     string
	LatencyMs     float64
	FalsePosPct   float64
	AccuracyPct   float64
	CoveragePct   float64
	DetectionPct  float64
	TrainedRgns   int
	MonitoredRuns int
}

// Table1 reproduces "Table 1: Accuracy for EDDIE monitoring of an actual
// IoT device": all ten benchmarks through the EM channel pipeline, with
// shellcode-sized bursts injected outside loops and 8-instruction
// injections inside loops, reportThreshold=3.
func Table1(e *Env, w io.Writer) ([]TableRow, error) {
	return runTable(e, w, "Table 1: EDDIE on the (simulated) IoT device, EM channel",
		e.IoT, e.TrainRunsIoT, e.MonRunsIoT)
}

// Table2 reproduces "Table 2: EDDIE's latency and accuracy when using a
// simulator-generated power signal": the OOO core's raw power trace.
func Table2(e *Env, w io.Writer) ([]TableRow, error) {
	return runTable(e, w, "Table 2: EDDIE on the simulator power signal",
		e.Sim, e.TrainRunsSim, e.MonRunsSim)
}

func runTable(e *Env, w io.Writer, title string, c pipeline.Config, trainRuns, monRuns int) ([]TableRow, error) {
	fprintf(w, "%s\n", title)
	fprintf(w, "%-14s %12s %10s %10s %10s %10s\n",
		"Benchmark", "Latency(ms)", "FP(%)", "Acc(%)", "Cov(%)", "Det(%)")
	// Benchmarks run in parallel; rows are written by index and printed
	// afterwards in the paper's order, so the output matches the serial
	// path byte for byte.
	rows := make([]TableRow, len(benchmarkOrder))
	err := par.Do(len(benchmarkOrder), 0, func(bi int) error {
		name := benchmarkOrder[bi]
		t, err := e.train(name, c, trainRuns)
		if err != nil {
			return err
		}
		// Monitoring runs are also parallel; Metrics are merged in run
		// order afterwards because float accumulation is order-sensitive.
		ms := make([]*core.Metrics, monRuns)
		err = par.Do(monRuns, 0, func(i int) error {
			inj := tableInjector(t, i)
			m, err := e.score(t, c, monitorRunBase+i*7, inj, e.MonitorCfg)
			if err != nil {
				return err
			}
			ms[i] = m
			return nil
		})
		if err != nil {
			return err
		}
		agg := &core.Metrics{}
		for _, m := range ms {
			agg.Merge(m)
		}
		rows[bi] = TableRow{
			Benchmark:     name,
			LatencyMs:     agg.DetectionLatencySec() * 1e3,
			FalsePosPct:   agg.FalsePositivePct(),
			AccuracyPct:   agg.AccuracyPct(),
			CoveragePct:   agg.CoveragePct(),
			DetectionPct:  agg.DetectionRatePct(),
			TrainedRgns:   len(t.model.Regions),
			MonitoredRuns: monRuns,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		fprintf(w, "%-14s %12.2f %10.2f %10.1f %10.1f %10.0f\n",
			row.Benchmark, row.LatencyMs, row.FalsePosPct, row.AccuracyPct,
			row.CoveragePct, row.DetectionPct)
	}
	return rows, nil
}

// benchmarkOrder is the paper's Table 1 row order.
var benchmarkOrder = []string{
	"bitcount", "basicmath", "susan", "dijkstra", "patricia",
	"gsm", "fft", "sha", "rijndael", "stringsearch",
}

// tableInjector rotates injections across monitoring runs the way the
// paper describes (§5.2): injections into different regions of each
// application; bursts (an empty shell invocation, ~476k instructions)
// outside loops and 8-instruction (4 integer + 4 memory) injections inside
// loop bodies. One in three runs stays clean so false positives are
// measured on injection-free executions too.
func tableInjector(t *trained, i int) inject.Injector {
	nests := t.loopNests()
	switch i % 3 {
	case 0:
		return nil // clean run
	case 1:
		return &inject.Burst{
			BlockNest: t.machine.BlockNest,
			FromNest:  (i / 3) % nests,
			Count:     476_000,
		}
	default:
		return &inject.InLoop{
			Header:        t.nestHeader((i / 3) % nests),
			Instrs:        8,
			MemOps:        4,
			Contamination: 1,
			Seed:          int64(i) + 1,
		}
	}
}
