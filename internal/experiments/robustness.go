package experiments

import (
	"fmt"
	"io"
	"time"

	"eddie/internal/core"
	"eddie/internal/dsp"
	"eddie/internal/impair"
	"eddie/internal/inject"
	"eddie/internal/metrics"
	"eddie/internal/par"
	"eddie/internal/pipeline"
	"eddie/internal/stream"
)

// RobustnessPoint is one impairment-severity measurement, aggregated over
// the clean and injected monitoring runs.
type RobustnessPoint struct {
	// Impairment names the transform and severity ("awgn(10dB)", …).
	Impairment string `json:"impairment"`
	// SNRdB is set on the AWGN sweep points (the x axis of the
	// accuracy-vs-SNR curve); 0 otherwise.
	SNRdB float64 `json:"snr_db,omitempty"`

	AccuracyPct  float64 `json:"accuracy_pct"`
	FalsePosPct  float64 `json:"false_pos_pct"`
	FalseNegPct  float64 `json:"false_neg_pct"`
	DetectionPct float64 `json:"detection_pct"`
	LatencyMs    float64 `json:"latency_ms"`
}

// StreamRobustness is the online-detector leg: an impaired injected run
// fed sample by sample through stream.Detector with the metrics layer
// attached.
type StreamRobustness struct {
	Impairment     string         `json:"impairment"`
	Windows        int            `json:"windows"`
	Reports        int            `json:"reports"`
	TruePositives  int64          `json:"true_positives"`
	FalsePositives int64          `json:"false_positives"`
	FalseNegatives int64          `json:"false_negatives"`
	TrueNegatives  int64          `json:"true_negatives"`
	Metrics        map[string]any `json:"metrics"`
}

// DriftPoint is one severity rung of the slow-drift leg: both detectors
// saw the same impaired samples, so the flagged counts compare directly.
type DriftPoint struct {
	// Impairment names the rung ("skew(1500ppm)+gaindrift").
	Impairment string `json:"impairment"`
	// PPM is the clock-skew severity of this rung.
	PPM float64 `json:"ppm"`
	// Windows is how many STFT windows each detector judged on this rung.
	Windows int `json:"windows"`
	// StaticFlagged / AdaptiveFlagged count flagged (false-positive)
	// windows on this clean stream.
	StaticFlagged   int `json:"static_flagged"`
	AdaptiveFlagged int `json:"adaptive_flagged"`
	// StaticCleanPct / AdaptiveCleanPct are the corresponding clean-window
	// percentages (100 = no false positives).
	StaticCleanPct   float64 `json:"static_clean_pct"`
	AdaptiveCleanPct float64 `json:"adaptive_clean_pct"`
}

// DriftLeg is the long-lived-session leg: one clean capture replayed
// through a stateful channel-drift chain whose severity ramps between
// rungs, fed chunk-for-chunk to a static and an adaptive detector.
type DriftLeg struct {
	Segments []DriftPoint `json:"segments"`
	// AdaptUpdates / AdaptDrift are the adaptive detector's accounting at
	// the end of the session: admitted reference updates and cumulative
	// normalized reference movement.
	AdaptUpdates int64   `json:"adapt_updates"`
	AdaptDrift   float64 `json:"adapt_drift"`
}

// DenoiseInfo records the subspace-denoising configuration of the
// denoised SNR sweep together with its measured cost and subspace
// quality on this workload.
type DenoiseInfo struct {
	Rank   int `json:"rank"`
	Block  int `json:"block"`
	Stride int `json:"stride"`
	// PerWindowNs is the measured steady-state cost of the stage per
	// spectrum (projection plus amortized refactorization).
	PerWindowNs float64 `json:"per_window_ns"`
	// EnergyRatio is the fraction of block spectral energy the final
	// subspace captured on a clean capture; Refactors how many
	// factorizations that capture triggered.
	EnergyRatio float64 `json:"energy_ratio"`
	Refactors   int64   `json:"refactors"`
}

// RobustnessResult is the full robustness experiment output
// (BENCH_robustness.json).
type RobustnessResult struct {
	Benchmark string `json:"benchmark"`
	TrainRuns int    `json:"train_runs"`
	MonRuns   int    `json:"mon_runs"`
	// Baseline is the unimpaired reference point.
	Baseline RobustnessPoint `json:"baseline"`
	// SNR is the accuracy-vs-SNR sweep (descending SNR), the simulator
	// analogue of the paper's Fig 9 accuracy-vs-distance curve: distance
	// degrades SNR, so accuracy should fall off the same way as severity
	// rises.
	SNR []RobustnessPoint `json:"snr"`
	// SNRDenoised repeats the AWGN sweep with the SVD subspace denoising
	// stage enabled (and a model trained under it): the low-SNR points
	// should recover accuracy relative to SNR.
	SNRDenoised []RobustnessPoint `json:"snr_denoised"`
	// Denoise describes the stage the denoised sweep ran with.
	Denoise *DenoiseInfo `json:"denoise,omitempty"`
	// Impairments sweeps the non-noise faults (dropouts, clock skew, gain
	// drift, DC wander, interferer tones) at increasing severity.
	Impairments []RobustnessPoint `json:"impairments"`
	// Stream is the online-detector leg.
	Stream StreamRobustness `json:"stream"`
	// Drift is the slow-drift leg: static vs adaptive detection across a
	// ramping clock-skew session (the tentpole's acceptance measurement).
	Drift DriftLeg `json:"drift"`
}

// robustnessSNRGrid is the AWGN sweep, in dB, descending. 120 dB is
// effectively clean; 0 dB means noise as strong as the signal.
var robustnessSNRGrid = []float64{120, 30, 20, 15, 10, 5, 0}

// robustnessDenoise is the subspace-denoising configuration of the
// denoised sweep: rank 3 keeps just the dominant loop-activity
// directions (higher ranks readmit noise and cost accuracy at low SNR),
// over a 32-window block, refactoring every 8 windows.
var robustnessDenoise = dsp.DenoiseConfig{Rank: 3, Block: 32, Stride: 8}

// robustnessAttack is the injected fault every monitored run carries:
// the Fig 5 style in-loop injection at 50% contamination.
func robustnessAttack(t *trained) inject.Injector {
	return &inject.InLoop{
		Header: t.nestHeader(0), Instrs: 16, MemOps: 8,
		Contamination: 0.5, Seed: 42,
	}
}

// Robustness sweeps signal impairments over one benchmark's monitored
// runs and measures how detection degrades. Runs are simulated once;
// each severity point re-impairs and re-reduces the captured signals
// (impair.Apply + pipeline.Reduce), so the sweep isolates the channel
// effect from run-to-run workload variation.
func Robustness(e *Env, w io.Writer) (*RobustnessResult, error) {
	const benchmark = "bitcount"
	t, err := e.train(benchmark, e.Sim, e.TrainRunsSim)
	if err != nil {
		return nil, err
	}
	nRuns := e.MonRunsSim

	// Collect the monitored runs once, keeping signals for re-reduction:
	// nRuns clean and nRuns injected.
	runs := make([]*pipeline.Run, 2*nRuns)
	err = par.Do(2*nRuns, 0, func(i int) error {
		var inj inject.Injector
		runIdx := monitorRunBase + i
		if i >= nRuns {
			inj = robustnessAttack(t)
			runIdx = injectionRunBase + (i - nRuns)
		}
		r, err := pipeline.CollectRun(t.w, t.machine, e.Sim, runIdx, inj)
		if err != nil {
			return err
		}
		runs[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &RobustnessResult{
		Benchmark: benchmark,
		TrainRuns: e.TrainRunsSim,
		MonRuns:   nRuns,
	}

	// Baseline: no impairment.
	base, err := robustnessPoint(e, t, e.Sim, runs, "clean", func(runIdx int) impair.Transform { return nil })
	if err != nil {
		return nil, err
	}
	res.Baseline = *base

	// AWGN sweep. Each run gets its own noise realization, seeded by the
	// run index so the whole sweep is reproducible.
	res.SNR = make([]RobustnessPoint, len(robustnessSNRGrid))
	err = par.Do(len(robustnessSNRGrid), 0, func(si int) error {
		snr := robustnessSNRGrid[si]
		p, err := robustnessPoint(e, t, e.Sim, runs, fmt.Sprintf("awgn(%gdB)", snr), func(runIdx int) impair.Transform {
			return &impair.AWGN{SNRdB: snr, Seed: 7000 + int64(runIdx)}
		})
		if err != nil {
			return err
		}
		p.SNRdB = snr
		res.SNR[si] = *p
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Denoised AWGN sweep: the same grid and noise realizations with the
	// SVD subspace stage in the pipeline and a model trained under it
	// (training and monitoring must see the same spectra). The collected
	// signals are reused — denoising acts on the reduction, not the run.
	simD := e.Sim
	simD.Denoise = robustnessDenoise
	tD, err := e.train(benchmark, simD, e.TrainRunsSim)
	if err != nil {
		return nil, err
	}
	res.SNRDenoised = make([]RobustnessPoint, len(robustnessSNRGrid))
	err = par.Do(len(robustnessSNRGrid), 0, func(si int) error {
		snr := robustnessSNRGrid[si]
		p, err := robustnessPoint(e, tD, simD, runs, fmt.Sprintf("awgn(%gdB)+denoise", snr), func(runIdx int) impair.Transform {
			return &impair.AWGN{SNRdB: snr, Seed: 7000 + int64(runIdx)}
		})
		if err != nil {
			return err
		}
		p.SNRdB = snr
		res.SNRDenoised[si] = *p
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Denoise, err = measureDenoise(simD, runs[0])
	if err != nil {
		return nil, err
	}

	// Non-noise impairments at increasing severity.
	sampleRate := e.Sim.STFT.SampleRate
	impairments := []struct {
		label string
		mk    func(runIdx int) impair.Transform
	}{
		{"dropout(1e-4)", func(i int) impair.Transform { return &impair.Dropout{Rate: 1e-4, MeanLen: 64, Seed: 7100 + int64(i)} }},
		{"dropout(1e-3)", func(i int) impair.Transform { return &impair.Dropout{Rate: 1e-3, MeanLen: 64, Seed: 7200 + int64(i)} }},
		{"skew(200ppm)", func(i int) impair.Transform { return &impair.ClockSkew{PPM: 200} }},
		{"skew(5000ppm)", func(i int) impair.Transform { return &impair.ClockSkew{PPM: 5000} }},
		{"gaindrift(1e-5)", func(i int) impair.Transform { return &impair.GainDrift{Std: 1e-5, Seed: 7300 + int64(i)} }},
		{"gaindrift(1e-3)", func(i int) impair.Transform { return &impair.GainDrift{Std: 1e-3, Seed: 7400 + int64(i)} }},
		{"dcwander(0.1)", func(i int) impair.Transform { return &impair.DCWander{Std: 0.1, Max: 50, Seed: 7500 + int64(i)} }},
		{"tone(1MHz)", func(i int) impair.Transform {
			return &impair.Tone{FreqHz: 1e6, SampleRate: sampleRate, Amp: 10}
		}},
		{"awgn+dropout+tone", func(i int) impair.Transform {
			return impair.NewChain(
				&impair.AWGN{SNRdB: 20, Seed: 7600 + int64(i)},
				&impair.Dropout{Rate: 1e-4, MeanLen: 64, Seed: 7700 + int64(i)},
				&impair.Tone{FreqHz: 2e6, SampleRate: sampleRate, Amp: 5},
			)
		}},
	}
	res.Impairments = make([]RobustnessPoint, len(impairments))
	err = par.Do(len(impairments), 0, func(ii int) error {
		p, err := robustnessPoint(e, t, e.Sim, runs, impairments[ii].label, impairments[ii].mk)
		if err != nil {
			return err
		}
		res.Impairments[ii] = *p
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Online leg: one injected run through stream.Detector with a 20 dB
	// AWGN impairment and the metrics layer attached.
	str, err := robustnessStream(e, t, runs[nRuns])
	if err != nil {
		return nil, err
	}
	res.Stream = *str

	// Slow-drift leg: clean capture, ramping skew, static vs adaptive.
	drift, err := robustnessDrift(e, t, runs[0])
	if err != nil {
		return nil, err
	}
	res.Drift = *drift

	printRobustness(w, res)
	return res, nil
}

// robustnessDriftPPM is the clock-skew ramp of the drift leg, in ppm.
// Each rung replays the clean capture twice through the same stateful
// impairment chain, so the skew accumulates phase continuously and the
// step between rungs stays far below the adaptive pursuit range.
var robustnessDriftPPM = []float64{0, 500, 1500, 4000}

// robustnessDrift replays one clean capture through a ramping
// channel-drift chain (clock skew plus a mild gain walk) and feeds the
// impaired chunks to a static and an adaptive detector in lockstep. On a
// clean stream every flagged window is a false positive, so the two
// flagged counts measure how much detection budget each detector loses
// to drift at every severity rung.
func robustnessDrift(e *Env, t *trained, run *pipeline.Run) (*DriftLeg, error) {
	mkDet := func(adapt core.AdaptConfig) (*stream.Detector, error) {
		mc := e.MonitorCfg
		mc.Adapt = adapt
		return stream.NewDetector(t.model, stream.Config{
			STFT:    e.Sim.STFT,
			Peaks:   e.Sim.Peaks,
			Monitor: mc,
		})
	}
	static, err := mkDet(core.AdaptConfig{})
	if err != nil {
		return nil, err
	}
	adaptive, err := mkDet(core.AdaptConfig{Enabled: true, Rate: 0.1, MinCleanStreak: 8})
	if err != nil {
		return nil, err
	}

	// One stateful chain for the whole session: mutating the skew's PPM
	// between chunks ramps severity without discontinuity (the resampler
	// keeps its phase), and the gain walk continues across rungs.
	skew := &impair.ClockSkew{}
	gain := &impair.GainDrift{Std: 1e-6, Seed: 7900}
	flaggedSince := func(d *stream.Detector, from int) (int, int) {
		out := d.Monitor().Outcomes
		n := 0
		for _, o := range out[from:] {
			if o.Flagged {
				n++
			}
		}
		return n, len(out)
	}

	leg := &DriftLeg{Segments: make([]DriftPoint, 0, len(robustnessDriftPPM))}
	buf := make([]float64, 0, 4096)
	for _, ppm := range robustnessDriftPPM {
		skew.PPM = ppm
		sMark := len(static.Monitor().Outcomes)
		aMark := len(adaptive.Monitor().Outcomes)
		for rep := 0; rep < 2; rep++ {
			sig := run.Signal
			for len(sig) > 0 {
				n := min(4096, len(sig))
				// The chain mutates its input and returns internal buffers,
				// so impair a copy and feed both detectors the same output
				// before the next Process call invalidates it.
				buf = append(buf[:0], sig[:n]...)
				out := gain.Process(skew.Process(buf))
				static.Feed(out)
				adaptive.Feed(out)
				sig = sig[n:]
			}
		}
		sf, sEnd := flaggedSince(static, sMark)
		af, aEnd := flaggedSince(adaptive, aMark)
		windows := sEnd - sMark
		if aw := aEnd - aMark; aw != windows {
			return nil, fmt.Errorf("drift leg: detectors diverged on window count (%d vs %d)", windows, aw)
		}
		p := DriftPoint{
			Impairment:      fmt.Sprintf("skew(%gppm)+gaindrift", ppm),
			PPM:             ppm,
			Windows:         windows,
			StaticFlagged:   sf,
			AdaptiveFlagged: af,
		}
		if windows > 0 {
			p.StaticCleanPct = 100 * float64(windows-sf) / float64(windows)
			p.AdaptiveCleanPct = 100 * float64(windows-af) / float64(windows)
		}
		leg.Segments = append(leg.Segments, p)
	}
	leg.AdaptUpdates = adaptive.Monitor().AdaptUpdates()
	leg.AdaptDrift = adaptive.Monitor().AdaptDrift()
	return leg, nil
}

// robustnessPoint impairs every collected run with mk(runIdx), re-reduces
// it under c (which may differ from the collection config by its Denoise
// stage), re-monitors against t's model and aggregates the evaluation
// metrics.
func robustnessPoint(e *Env, t *trained, c pipeline.Config, runs []*pipeline.Run, label string, mk func(runIdx int) impair.Transform) (*RobustnessPoint, error) {
	agg := &core.Metrics{}
	for i, run := range runs {
		signal := impair.Apply(mk(i), run.Signal)
		sts, err := pipeline.Reduce(signal, run.Sim, c)
		if err != nil {
			return nil, fmt.Errorf("robustness %s: %w", label, err)
		}
		mon, err := pipeline.Monitor(t.model, sts, e.MonitorCfg)
		if err != nil {
			return nil, err
		}
		m, err := core.Evaluate(t.model, sts, mon.Outcomes, mon.Reports, c.HopSeconds())
		if err != nil {
			return nil, err
		}
		agg.Merge(m)
	}
	return &RobustnessPoint{
		Impairment:   label,
		AccuracyPct:  agg.AccuracyPct(),
		FalsePosPct:  agg.FalsePositivePct(),
		FalseNegPct:  agg.FalseNegativePct(),
		DetectionPct: agg.DetectionRatePct(),
		LatencyMs:    agg.DetectionLatencySec() * 1e3,
	}, nil
}

// measureDenoise times the subspace stage on one clean capture's
// spectrogram and reports the per-window cost together with the final
// subspace quality.
func measureDenoise(c pipeline.Config, run *pipeline.Run) (*DenoiseInfo, error) {
	frames, err := dsp.STFT(dsp.Detrend(run.Signal), c.STFT)
	if err != nil {
		return nil, err
	}
	dn, err := dsp.NewDenoiser(c.Denoise, c.STFT.WindowSize/2+1)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for i := range frames {
		dn.Push(frames[i].Power)
	}
	elapsed := time.Since(start)
	info := &DenoiseInfo{
		Rank:        c.Denoise.Rank,
		Block:       c.Denoise.Block,
		Stride:      c.Denoise.Stride,
		EnergyRatio: dn.EnergyRatio(),
		Refactors:   dn.Refactors(),
	}
	if len(frames) > 0 {
		info.PerWindowNs = float64(elapsed.Nanoseconds()) / float64(len(frames))
	}
	return info, nil
}

// robustnessStream runs the online detector over one injected capture
// with a mild AWGN impairment and the metrics layer wired in.
func robustnessStream(e *Env, t *trained, run *pipeline.Run) (*StreamRobustness, error) {
	m := metrics.NewDetector()
	cfg := stream.Config{
		STFT:    e.Sim.STFT,
		Peaks:   e.Sim.Peaks,
		Monitor: e.MonitorCfg,
		Impair:  &impair.AWGN{SNRdB: 20, Seed: 99},
		Metrics: m,
		GroundTruth: func(w int) bool {
			return w < len(run.STS) && run.STS[w].Injected
		},
	}
	d, err := stream.NewDetector(t.model, cfg)
	if err != nil {
		return nil, err
	}
	// Feed in receiver-buffer sized chunks, as a deployment would.
	sig := run.Signal
	for len(sig) > 0 {
		n := 4096
		if n > len(sig) {
			n = len(sig)
		}
		d.Feed(sig[:n])
		sig = sig[n:]
	}
	return &StreamRobustness{
		Impairment:     cfg.Impair.Name(),
		Windows:        d.Windows(),
		Reports:        len(d.Monitor().Reports),
		TruePositives:  m.TruePos.Value(),
		FalsePositives: m.FalsePos.Value(),
		FalseNegatives: m.FalseNeg.Value(),
		TrueNegatives:  m.TrueNeg.Value(),
		Metrics:        m.Reg.Snapshot(),
	}, nil
}

func printRobustness(w io.Writer, res *RobustnessResult) {
	fprintf(w, "Robustness: %s, %d clean + %d injected monitored runs\n",
		res.Benchmark, res.MonRuns, res.MonRuns)
	row := func(p *RobustnessPoint) {
		fprintf(w, "  %-20s acc %5.1f%%  fp %5.2f%%  fn %5.1f%%  det %3.0f%%  lat %6.2fms\n",
			p.Impairment, p.AccuracyPct, p.FalsePosPct, p.FalseNegPct, p.DetectionPct, p.LatencyMs)
	}
	row(&res.Baseline)
	fprintf(w, "accuracy vs SNR (cf. Fig 9's accuracy-vs-distance):\n")
	for i := range res.SNR {
		row(&res.SNR[i])
	}
	if res.Denoise != nil {
		fprintf(w, "accuracy vs SNR with subspace denoising (rank %d, block %d, stride %d; %.0f ns/window, energy %.2f):\n",
			res.Denoise.Rank, res.Denoise.Block, res.Denoise.Stride, res.Denoise.PerWindowNs, res.Denoise.EnergyRatio)
		for i := range res.SNRDenoised {
			row(&res.SNRDenoised[i])
		}
	}
	fprintf(w, "impairment severities:\n")
	for i := range res.Impairments {
		row(&res.Impairments[i])
	}
	s := &res.Stream
	fprintf(w, "online detector (%s): %d windows, %d reports, TP %d FP %d FN %d TN %d\n",
		s.Impairment, s.Windows, s.Reports, s.TruePositives, s.FalsePositives, s.FalseNegatives, s.TrueNegatives)
	fprintf(w, "slow-drift leg, static vs adaptive (updates %d, drift %.3f):\n",
		res.Drift.AdaptUpdates, res.Drift.AdaptDrift)
	for i := range res.Drift.Segments {
		p := &res.Drift.Segments[i]
		fprintf(w, "  %-24s %4d windows  static %3d flagged (%5.1f%% clean)  adaptive %3d flagged (%5.1f%% clean)\n",
			p.Impairment, p.Windows, p.StaticFlagged, p.StaticCleanPct, p.AdaptiveFlagged, p.AdaptiveCleanPct)
	}
}
