package experiments

import (
	"io"
	"os"
	"testing"
)

// TestQuickRobustness runs the robustness sweep at quick scale and
// checks the qualitative shape the experiment exists to demonstrate:
// accuracy degrades as SNR falls, and the clean baseline detects.
func TestQuickRobustness(t *testing.T) {
	e := sharedQuickEnv()
	res, err := Robustness(e, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline.DetectionPct == 0 {
		t.Error("baseline detects nothing")
	}
	if res.Baseline.AccuracyPct < 50 {
		t.Errorf("baseline accuracy %.1f%% below 50%%", res.Baseline.AccuracyPct)
	}

	// Monotone trend: highest SNR must beat lowest, and no step may rise
	// by more than a small tolerance (run-to-run noise at quick scale).
	snr := res.SNR
	if len(snr) < 3 {
		t.Fatalf("SNR sweep has %d points", len(snr))
	}
	first, last := snr[0], snr[len(snr)-1]
	if first.AccuracyPct <= last.AccuracyPct {
		t.Errorf("accuracy did not degrade with SNR: %.1f%% at %g dB vs %.1f%% at %g dB",
			first.AccuracyPct, first.SNRdB, last.AccuracyPct, last.SNRdB)
	}
	const tol = 5.0 // percentage points
	for i := 1; i < len(snr); i++ {
		if snr[i].SNRdB >= snr[i-1].SNRdB {
			t.Fatalf("SNR grid not descending at %d", i)
		}
		if snr[i].AccuracyPct > snr[i-1].AccuracyPct+tol {
			t.Errorf("accuracy rose from %.1f%% (%g dB) to %.1f%% (%g dB)",
				snr[i-1].AccuracyPct, snr[i-1].SNRdB, snr[i].AccuracyPct, snr[i].SNRdB)
		}
	}
	// Effectively-clean AWGN should track the baseline closely.
	if d := snr[0].AccuracyPct - res.Baseline.AccuracyPct; d > 1 || d < -1 {
		t.Errorf("120 dB AWGN shifted accuracy by %.1f points from baseline", d)
	}

	if len(res.Impairments) == 0 {
		t.Fatal("no impairment severity points")
	}
	if res.Stream.Windows == 0 {
		t.Error("stream leg processed no windows")
	}
	if res.Stream.TruePositives == 0 {
		t.Error("stream leg found no true positives on an injected run")
	}
	if len(res.Stream.Metrics) == 0 {
		t.Error("stream leg metrics snapshot empty")
	}

	// Drift leg: the adaptive detector must be no worse than the static
	// one at every severity rung, the ramp must actually degrade the
	// static detector, and the static-vs-adaptive gap must be widest at
	// maximum drift (the tentpole's acceptance criterion).
	seg := res.Drift.Segments
	if len(seg) < 3 {
		t.Fatalf("drift leg has %d segments", len(seg))
	}
	for i, p := range seg {
		if p.Windows == 0 {
			t.Fatalf("drift segment %d (%s) judged no windows", i, p.Impairment)
		}
		if p.AdaptiveFlagged > p.StaticFlagged {
			t.Errorf("%s: adaptive flagged %d clean windows, static %d",
				p.Impairment, p.AdaptiveFlagged, p.StaticFlagged)
		}
	}
	dFirst, dTop := seg[0], seg[len(seg)-1]
	if dTop.StaticFlagged <= dFirst.StaticFlagged {
		t.Errorf("drift ramp did not degrade the static detector: %d flagged at %g ppm vs %d at %g ppm",
			dTop.StaticFlagged, dTop.PPM, dFirst.StaticFlagged, dFirst.PPM)
	}
	firstGap := dFirst.StaticFlagged - dFirst.AdaptiveFlagged
	topGap := dTop.StaticFlagged - dTop.AdaptiveFlagged
	if topGap <= firstGap {
		t.Errorf("adaptive advantage did not widen with drift: gap %d at %g ppm vs %d at %g ppm",
			topGap, dTop.PPM, firstGap, dFirst.PPM)
	}
	if res.Drift.AdaptUpdates == 0 {
		t.Error("drift leg admitted no adaptive reference updates")
	}
	if res.Drift.AdaptDrift == 0 {
		t.Error("drift leg tracked a real ramp but reports zero cumulative drift")
	}
}

// TestRobustnessDeterministic re-runs the experiment and expects
// identical results: everything is seeded, so any drift is a
// reproducibility bug in the impairment or reduction path.
func TestRobustnessDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sweep twice")
	}
	e := sharedQuickEnv()
	a, err := Robustness(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Robustness(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.SNR) != len(b.SNR) {
		t.Fatalf("sweep sizes differ: %d vs %d", len(a.SNR), len(b.SNR))
	}
	for i := range a.SNR {
		if a.SNR[i] != b.SNR[i] {
			t.Errorf("SNR point %d differs between runs:\n%+v\n%+v", i, a.SNR[i], b.SNR[i])
		}
	}
	for i := range a.Impairments {
		if a.Impairments[i] != b.Impairments[i] {
			t.Errorf("impairment point %d differs between runs:\n%+v\n%+v", i, a.Impairments[i], b.Impairments[i])
		}
	}
	if len(a.Drift.Segments) != len(b.Drift.Segments) {
		t.Fatalf("drift leg sizes differ: %d vs %d", len(a.Drift.Segments), len(b.Drift.Segments))
	}
	for i := range a.Drift.Segments {
		if a.Drift.Segments[i] != b.Drift.Segments[i] {
			t.Errorf("drift segment %d differs between runs:\n%+v\n%+v", i, a.Drift.Segments[i], b.Drift.Segments[i])
		}
	}
	if a.Drift.AdaptUpdates != b.Drift.AdaptUpdates || a.Drift.AdaptDrift != b.Drift.AdaptDrift {
		t.Errorf("drift accounting differs between runs: %d/%g vs %d/%g",
			a.Drift.AdaptUpdates, a.Drift.AdaptDrift, b.Drift.AdaptUpdates, b.Drift.AdaptDrift)
	}
}
