package experiments

import (
	"sync"
	"testing"
)

// TestModelCacheSingleTrain asserts the Env model cache coalesces
// identical trainings: repeated and concurrent requests for the same
// (workload, config, runs, train config) key run exactly one training,
// while a different key trains again.
func TestModelCacheSingleTrain(t *testing.T) {
	e := NewEnv(true)
	e.TrainRunsSim = 3 // keep the two real trainings cheap

	first, err := e.train("bitcount", e.Sim, e.TrainRunsSim)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Trainings(); got != 1 {
		t.Fatalf("after first train: %d trainings, want 1", got)
	}

	// Concurrent same-key callers must all get the one cached result.
	const callers = 8
	results := make([]*trained, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := e.train("bitcount", e.Sim, e.TrainRunsSim)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			results[i] = tr
		}(i)
	}
	wg.Wait()
	if got := e.Trainings(); got != 1 {
		t.Fatalf("after %d concurrent same-key trains: %d trainings, want 1", callers, got)
	}
	for i, tr := range results {
		if tr != first {
			t.Fatalf("caller %d got a different *trained than the cached one", i)
		}
	}

	// A different run count is a different key: one more real training.
	if _, err := e.train("bitcount", e.Sim, e.TrainRunsSim+1); err != nil {
		t.Fatal(err)
	}
	if got := e.Trainings(); got != 2 {
		t.Fatalf("after different-key train: %d trainings, want 2", got)
	}
}
