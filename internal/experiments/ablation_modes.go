package experiments

import (
	"io"

	"eddie/internal/core"
	"eddie/internal/inject"
	"eddie/internal/par"
	"eddie/internal/pipeline"
)

// AblationModesResult compares per-run reference modes (this
// implementation's design, DESIGN.md §6.2) against a single pooled
// reference distribution (the naive reading of the paper).
type AblationModesResult struct {
	ModesFPPct   float64
	PooledFPPct  float64
	ModesTPRPct  float64
	PooledTPRPct float64
}

// AblationModes re-scores the same clean and injected runs with both model
// variants. Pooling is applied by collapsing each region's per-run modes
// into one mode built from the pooled reference.
func AblationModes(e *Env, w io.Writer) (*AblationModesResult, error) {
	t, err := e.train("bitcount", e.Sim, e.TrainRunsSim)
	if err != nil {
		return nil, err
	}
	pooled := pooledModel(t.model)

	scoreBoth := func(runIdx int, inj inject.Injector) (*core.Metrics, *core.Metrics, error) {
		run, err := pipeline.CollectRun(t.w, t.machine, e.Sim, runIdx, inj)
		if err != nil {
			return nil, nil, err
		}
		mm, err := pipeline.MonitorAndScore(t.model, e.Sim, run.STS, e.MonitorCfg)
		if err != nil {
			return nil, nil, err
		}
		pm, err := pipeline.MonitorAndScore(pooled, e.Sim, run.STS, e.MonitorCfg)
		if err != nil {
			return nil, nil, err
		}
		return mm, pm, nil
	}

	type pair struct{ cm, cp, im, ip *core.Metrics }
	pairs := make([]pair, e.MonRunsSim)
	err = par.Do(e.MonRunsSim, 0, func(i int) error {
		cm, cp, err := scoreBoth(monitorRunBase+i*5, nil)
		if err != nil {
			return err
		}
		inj := &inject.InLoop{Header: t.nestHeader(0), Instrs: 8, MemOps: 4, Contamination: 1, Seed: int64(i)}
		im, ip, err := scoreBoth(injectionRunBase+i*5, inj)
		if err != nil {
			return err
		}
		pairs[i] = pair{cm: cm, cp: cp, im: im, ip: ip}
		return nil
	})
	if err != nil {
		return nil, err
	}
	aggModes, aggPooled := &core.Metrics{}, &core.Metrics{}
	for _, p := range pairs {
		aggModes.Merge(p.cm)
		aggPooled.Merge(p.cp)
		aggModes.Merge(p.im)
		aggPooled.Merge(p.ip)
	}
	res := &AblationModesResult{
		ModesFPPct:   aggModes.FalsePositivePct(),
		PooledFPPct:  aggPooled.FalsePositivePct(),
		ModesTPRPct:  aggModes.TruePositivePct(),
		PooledTPRPct: aggPooled.TruePositivePct(),
	}
	fprintf(w, "Ablation: per-run reference modes vs one pooled reference distribution\n")
	fprintf(w, "  %-22s FP %6.2f%%   TPR %6.1f%%\n", "per-run modes", res.ModesFPPct, res.ModesTPRPct)
	fprintf(w, "  %-22s FP %6.2f%%   TPR %6.1f%%\n", "pooled reference", res.PooledFPPct, res.PooledTPRPct)
	fprintf(w, "  (within one run STSs are tightly clustered; against a pooled cross-run\n")
	fprintf(w, "   mixture such a group is rejected by construction — see DESIGN.md §6.2)\n")
	return res, nil
}

// pooledModel returns a copy of the model whose regions each have exactly
// one mode: the pooled cross-run reference.
func pooledModel(m *core.Model) *core.Model {
	out := &core.Model{
		ProgramName:  m.ProgramName + "-pooled",
		Machine:      m.Machine,
		Regions:      map[cfgRegionID]*core.RegionModel{},
		Alpha:        m.Alpha,
		MaxGroupSize: m.MaxGroupSize,
	}
	for id, rm := range m.Regions {
		cp := *rm
		cp.Modes = []core.RegionMode{{Run: -1, Ref: rm.Ref}}
		out.Regions[id] = &cp
	}
	return out
}
