package experiments

import (
	"io"

	"eddie/internal/core"
	"eddie/internal/inject"
	"eddie/internal/par"
	"eddie/internal/pipeline"
	"eddie/internal/stats"
)

// AblationUTestResult compares the K-S test against the Wilcoxon-Mann-
// Whitney U test as EDDIE's group-vs-reference decision (§4.2: the paper
// tried both and kept K-S).
type AblationUTestResult struct {
	KSCleanRejPct   float64
	UCleanRejPct    float64
	ADCleanRejPct   float64
	KSInjectRejPct  float64
	UInjectRejPct   float64
	ADInjectRejPct  float64
	GroupsEvaluated int
}

// AblationUTest measures, on one benchmark, how often each test rejects
// clean groups (false rejections) and injected groups (power), using the
// same per-mode references and group size.
func AblationUTest(e *Env, w io.Writer) (*AblationUTestResult, error) {
	t, err := e.train("bitcount", e.Sim, e.TrainRunsSim)
	if err != nil {
		return nil, err
	}
	region := t.machine.LoopRegionOf(0)
	rm := t.model.Regions[region]
	if rm == nil {
		return nil, errNoRegion
	}
	n := rm.GroupSize
	cAlpha := stats.KolmogorovInverse(1 - t.model.Alpha)

	collect := func(runIdx int, inj inject.Injector) ([][]float64, error) {
		run, err := pipeline.CollectRun(t.w, t.machine, e.Sim, runIdx, inj)
		if err != nil {
			return nil, err
		}
		var seq []core.STS
		for i := range run.STS {
			if run.STS[i].Region == region {
				seq = append(seq, run.STS[i])
			}
		}
		var groups [][]float64 // per group: rank-0 values (one rank suffices for the comparison)
		for start := 0; start+n <= len(seq); start += n {
			g := make([]float64, n)
			for i := 0; i < n; i++ {
				g[i] = seq[start+i].PeakAt(0)
			}
			groups = append(groups, g)
		}
		return groups, nil
	}

	evalAll := func(groups [][]float64) (ksRej, uRej, adRej int, err error) {
		scratch := make([]float64, n)
		for gi, g := range groups {
			// A group is rejected when *no* mode accepts it (same rule as
			// the monitor, restricted to rank 0).
			ksAll, uAll, adAll := true, true, true
			for _, mode := range rm.Modes {
				if !stats.KSRejectSorted(mode.Ref[0], g, scratch, cAlpha) {
					ksAll = false
				}
				ures, err := stats.UTest(mode.Ref[0], g, t.model.Alpha)
				if err != nil {
					return 0, 0, 0, err
				}
				if !ures.Reject {
					uAll = false
				}
				if adAll {
					ares, err := stats.ADTest(mode.Ref[0], g, 0.05, 99, int64(gi))
					if err != nil {
						return 0, 0, 0, err
					}
					if !ares.Reject {
						adAll = false
					}
				}
			}
			if ksAll {
				ksRej++
			}
			if uAll {
				uRej++
			}
			if adAll {
				adRej++
			}
		}
		return ksRej, uRej, adRej, nil
	}

	// Collect clean and injected runs in parallel; flatten in run order so
	// the group sequence (and the per-group A-D seeds) match the serial
	// path exactly.
	cleanPer := make([][][]float64, e.MonRunsSim)
	injPer := make([][][]float64, e.MonRunsSim)
	err = par.Do(e.MonRunsSim, 0, func(i int) error {
		g, err := collect(monitorRunBase+i*3, nil)
		if err != nil {
			return err
		}
		cleanPer[i] = g
		inj := &inject.InLoop{Header: t.nestHeader(0), Instrs: 8, MemOps: 4, Contamination: 1, Seed: int64(i)}
		g, err = collect(injectionRunBase+i*3, inj)
		if err != nil {
			return err
		}
		injPer[i] = g
		return nil
	})
	if err != nil {
		return nil, err
	}
	var cleanGroups, injGroups [][]float64
	for i := 0; i < e.MonRunsSim; i++ {
		cleanGroups = append(cleanGroups, cleanPer[i]...)
		injGroups = append(injGroups, injPer[i]...)
	}
	ksC, uC, adC, err := evalAll(cleanGroups)
	if err != nil {
		return nil, err
	}
	ksI, uI, adI, err := evalAll(injGroups)
	if err != nil {
		return nil, err
	}
	pct := func(a, total int) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(a) / float64(total)
	}
	res := &AblationUTestResult{
		KSCleanRejPct:   pct(ksC, len(cleanGroups)),
		UCleanRejPct:    pct(uC, len(cleanGroups)),
		ADCleanRejPct:   pct(adC, len(cleanGroups)),
		KSInjectRejPct:  pct(ksI, len(injGroups)),
		UInjectRejPct:   pct(uI, len(injGroups)),
		ADInjectRejPct:  pct(adI, len(injGroups)),
		GroupsEvaluated: len(cleanGroups) + len(injGroups),
	}
	fprintf(w, "Ablation: alternative group tests (rank-0, n=%d): K-S (paper), Mann-Whitney U, Anderson-Darling\n", n)
	fprintf(w, "  %-18s clean-rejection %6.2f%%   injected-rejection %6.2f%%\n", "K-S", res.KSCleanRejPct, res.KSInjectRejPct)
	fprintf(w, "  %-18s clean-rejection %6.2f%%   injected-rejection %6.2f%%\n", "U-test", res.UCleanRejPct, res.UInjectRejPct)
	fprintf(w, "  %-18s clean-rejection %6.2f%%   injected-rejection %6.2f%%\n", "Anderson-Darling", res.ADCleanRejPct, res.ADInjectRejPct)
	fprintf(w, "  (the paper kept K-S; the U test keys on medians only, A-D weights the tails)\n")
	return res, nil
}

// AblationWindowRow is one STFT window size's outcome.
type AblationWindowRow struct {
	WindowSize int
	FPPct      float64
	TPRPct     float64
}

// AblationWindow sweeps the STFT window size: short windows give more
// STSs per region visit (shorter latency) but coarser frequency
// resolution; long windows the opposite.
func AblationWindow(e *Env, w io.Writer) ([]AblationWindowRow, error) {
	sizes := []int{256, 512, 1024}
	rows := make([]AblationWindowRow, len(sizes))
	err := par.Do(len(sizes), 0, func(si int) error {
		ws := sizes[si]
		c := e.Sim
		c.STFT.WindowSize = ws
		c.STFT.HopSize = ws / 2
		t, err := trainWith(e, "bitcount", c)
		if err != nil {
			return err
		}
		row := AblationWindowRow{WindowSize: ws}
		ms := make([]*core.Metrics, e.MonRunsSim)
		err = par.Do(e.MonRunsSim, 0, func(i int) error {
			m, err := e.score(t, c, monitorRunBase+i*3, nil, e.MonitorCfg)
			if err != nil {
				return err
			}
			ms[i] = m
			return nil
		})
		if err != nil {
			return err
		}
		agg := &core.Metrics{}
		for _, m := range ms {
			agg.Merge(m)
		}
		row.FPPct = agg.FalsePositivePct()
		inj := &inject.InLoop{Header: t.nestHeader(0), Instrs: 8, MemOps: 4, Contamination: 1, Seed: 3}
		m, err := e.score(t, c, injectionRunBase, inj, e.MonitorCfg)
		if err != nil {
			return err
		}
		row.TPRPct = m.TruePositivePct()
		rows[si] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	fprintf(w, "Ablation: STFT window size\n")
	for _, r := range rows {
		fprintf(w, "  window %4d: FP %.2f%%  in-loop TPR %.1f%%\n", r.WindowSize, r.FPPct, r.TPRPct)
	}
	return rows, nil
}

// AblationPeakThresholdRow is one peak-energy threshold's outcome.
type AblationPeakThresholdRow struct {
	Fraction float64
	AvgPeaks float64
	FPPct    float64
	TPRPct   float64
}

// AblationPeakThreshold sweeps the minimum peak-energy fraction (the
// paper's 1%-of-window-energy rule).
func AblationPeakThreshold(e *Env, w io.Writer) ([]AblationPeakThresholdRow, error) {
	fracs := []float64{0.01, 0.02, 0.04, 0.08}
	rows := make([]AblationPeakThresholdRow, len(fracs))
	err := par.Do(len(fracs), 0, func(fi int) error {
		frac := fracs[fi]
		c := e.Sim
		c.Peaks.MinEnergyFraction = frac
		t, err := trainWith(e, "bitcount", c)
		if err != nil {
			return err
		}
		row := AblationPeakThresholdRow{Fraction: frac}
		type runResult struct {
			peaks, windows int
			m              *core.Metrics
		}
		results := make([]runResult, e.MonRunsSim)
		err = par.Do(e.MonRunsSim, 0, func(i int) error {
			run, err := pipeline.CollectRun(t.w, t.machine, c, monitorRunBase+i*3, nil)
			if err != nil {
				return err
			}
			rr := runResult{}
			for j := range run.STS {
				rr.peaks += len(run.STS[j].PeakFreqs)
				rr.windows++
			}
			rr.m, err = pipeline.MonitorAndScore(t.model, c, run.STS, e.MonitorCfg)
			if err != nil {
				return err
			}
			results[i] = rr
			return nil
		})
		if err != nil {
			return err
		}
		var peaks, windows int
		agg := &core.Metrics{}
		for _, rr := range results {
			peaks += rr.peaks
			windows += rr.windows
			agg.Merge(rr.m)
		}
		row.FPPct = agg.FalsePositivePct()
		if windows > 0 {
			row.AvgPeaks = float64(peaks) / float64(windows)
		}
		inj := &inject.InLoop{Header: t.nestHeader(0), Instrs: 8, MemOps: 4, Contamination: 1, Seed: 3}
		m, err := e.score(t, c, injectionRunBase, inj, e.MonitorCfg)
		if err != nil {
			return err
		}
		row.TPRPct = m.TruePositivePct()
		rows[fi] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	fprintf(w, "Ablation: peak energy threshold\n")
	for _, r := range rows {
		fprintf(w, "  fraction %.2f: %.1f peaks/window  FP %.2f%%  in-loop TPR %.1f%%\n",
			r.Fraction, r.AvgPeaks, r.FPPct, r.TPRPct)
	}
	return rows, nil
}

// trainWith trains a workload under an arbitrary pipeline config, sharing
// the environment's model cache.
func trainWith(e *Env, name string, c pipeline.Config) (*trained, error) {
	return e.trainCached(name, c, e.TrainRunsSim, e.Train)
}
