package experiments

import (
	"fmt"
	"io"

	"eddie/internal/mibench"
	"eddie/internal/pipeline"
	"eddie/internal/sim"
	"eddie/internal/stats"
)

// Fig4Row is one region's detection latency under both core types.
type Fig4Row struct {
	Region    string
	InOrderMs float64
	OOOMs     float64
}

// fig4Benchmarks supply the regions of Fig 4 (the paper uses 15 regions
// from three benchmarks; our workload versions expose 12 loop regions
// across the same three, plus sha to reach 15).
var fig4Benchmarks = []string{"basicmath", "bitcount", "susan", "sha"}

// Fig4 reproduces "Figure 4: Detection latency of 15 different regions in
// in-order and out-of-order architecture". Latency is the trained K-S
// group size n times the window hop — exactly the paper's definition
// ("this latency mainly reflects the number of STSs that are used in the
// K-S test"). OOO cores produce more schedule variation, so their
// references are broader and need larger n.
func Fig4(e *Env, w io.Writer) ([]Fig4Row, error) {
	inorder := e.Sim
	inorder.Sim = sim.DefaultIoT() // in-order core, raw power signal
	inorder.STFT = pipeline.DefaultSTFT(inorder.Sim)
	inorder.Channel = nil
	ooo := e.Sim

	var rows []Fig4Row
	for _, name := range fig4Benchmarks {
		if len(rows) >= 15 {
			break
		}
		wl, err := mibench.ByName(name)
		if err != nil {
			return nil, err
		}
		mIn, machine, err := pipeline.Train(wl, inorder, e.TrainRunsSim, e.Train)
		if err != nil {
			return nil, err
		}
		mOoo, _, err := pipeline.Train(wl, ooo, e.TrainRunsSim, e.Train)
		if err != nil {
			return nil, err
		}
		for nest := range machine.Nests {
			if len(rows) >= 15 {
				break
			}
			id := machine.LoopRegionOf(nest)
			ri := mIn.Regions[id]
			ro := mOoo.Regions[id]
			if ri == nil || ro == nil {
				continue
			}
			rows = append(rows, Fig4Row{
				Region:    fmt.Sprintf("%s/%s", name, ri.Label),
				InOrderMs: float64(ri.GroupSize) * inorder.HopSeconds() * 1e3,
				OOOMs:     float64(ro.GroupSize) * ooo.HopSeconds() * 1e3,
			})
		}
	}
	fprintf(w, "Fig 4: per-region detection latency, in-order vs out-of-order\n")
	fprintf(w, "%-4s %-34s %12s %12s\n", "#", "Region", "InOrder(ms)", "OOO(ms)")
	var sumIn, sumOoo float64
	for i, r := range rows {
		fprintf(w, "%-4d %-34s %12.2f %12.2f\n", i+1, r.Region, r.InOrderMs, r.OOOMs)
		sumIn += r.InOrderMs
		sumOoo += r.OOOMs
	}
	if len(rows) > 0 {
		fprintf(w, "%-4s %-34s %12.2f %12.2f\n", "", "Avg",
			sumIn/float64(len(rows)), sumOoo/float64(len(rows)))
	}
	return rows, nil
}

// ANOVAResult is the §5.3 sensitivity study output.
type ANOVAResult struct {
	InOrder stats.ANOVAResult
	OOO     stats.ANOVAResult
	Configs int
}

// anovaBenchmarks are the three benchmarks of the paper's §5.3 study.
var anovaBenchmarks = []string{"basicmath", "bitcount", "susan"}

// ANOVA reproduces the §5.3 study: 51 simulator configurations (in-order:
// 3 issue widths x 2 pipeline depths; out-of-order: 3 widths x 3 depths x
// 5 ROB sizes), N-way analysis of variance of EDDIE's per-region detection
// latency against the architectural factors.
func ANOVA(e *Env, w io.Writer) (*ANOVAResult, error) {
	trainRuns := e.TrainRunsSim
	if trainRuns > 6 {
		trainRuns = 6 // 51 configs x 3 benchmarks: keep each cell modest
	}
	type obs struct {
		latency float64
		width   int
		depth   int
		rob     int
		bench   int
	}
	var inOrderObs, oooObs []obs

	collect := func(c pipeline.Config, width, depth, rob, bench int, name string) error {
		wl, err := mibench.ByName(name)
		if err != nil {
			return err
		}
		model, machine, err := pipeline.Train(wl, c, trainRuns, e.Train)
		if err != nil {
			return err
		}
		// Response: mean loop-region latency (n x hop) of the benchmark.
		var sum float64
		var count int
		for nest := range machine.Nests {
			if rm := model.Regions[machine.LoopRegionOf(nest)]; rm != nil {
				sum += float64(rm.GroupSize) * c.HopSeconds() * 1e3
				count++
			}
		}
		if count == 0 {
			return nil
		}
		o := obs{latency: sum / float64(count), width: width, depth: depth, rob: rob, bench: bench}
		if rob == 0 {
			inOrderObs = append(inOrderObs, o)
		} else {
			oooObs = append(oooObs, o)
		}
		return nil
	}

	configs := 0
	for bi, name := range anovaBenchmarks {
		// In-order: 3 widths x 2 depths.
		for _, width := range []int{1, 2, 4} {
			for _, depth := range []int{8, 13} {
				c := e.Sim
				sc := sim.DefaultIoT()
				sc.IssueWidth = width
				sc.PipelineDepth = depth
				c.Sim = sc
				c.STFT = pipeline.DefaultSTFT(sc)
				c.Channel = nil
				if err := collect(c, width, depth, 0, bi, name); err != nil {
					return nil, err
				}
				if bi == 0 {
					configs++
				}
			}
		}
		// Out-of-order: 3 widths x 3 depths x 5 ROB sizes.
		for _, width := range []int{1, 2, 4} {
			for _, depth := range []int{8, 13, 18} {
				for _, rob := range []int{32, 64, 128, 192, 256} {
					c := e.Sim
					sc := sim.DefaultOOO()
					sc.IssueWidth = width
					sc.PipelineDepth = depth
					sc.ROBSize = rob
					c.Sim = sc
					c.STFT = pipeline.DefaultSTFT(sc)
					if err := collect(c, width, depth, rob, bi, name); err != nil {
						return nil, err
					}
					if bi == 0 {
						configs++
					}
				}
			}
		}
	}

	build := func(obsList []obs, withROB bool) (stats.ANOVAResult, error) {
		resp := make([]float64, len(obsList))
		factors := [][]int{{}, {}, {}}
		names := []string{"issue-width", "pipeline-depth", "benchmark"}
		if withROB {
			factors = append(factors, []int{})
			names = append(names, "rob-size")
		}
		for i, o := range obsList {
			resp[i] = o.latency
			factors[0] = append(factors[0], o.width)
			factors[1] = append(factors[1], o.depth)
			factors[2] = append(factors[2], o.bench)
			if withROB {
				factors[3] = append(factors[3], o.rob)
			}
		}
		return stats.ANOVA(resp, factors, names, 0.05)
	}
	inRes, err := build(inOrderObs, false)
	if err != nil {
		return nil, err
	}
	oooRes, err := build(oooObs, true)
	if err != nil {
		return nil, err
	}

	fprintf(w, "ANOVA (§5.3): which architectural parameters affect EDDIE's latency (%d configs x %d benchmarks)\n",
		configs, len(anovaBenchmarks))
	printANOVA(w, "in-order", inRes)
	printANOVA(w, "out-of-order", oooRes)
	return &ANOVAResult{InOrder: inRes, OOO: oooRes, Configs: configs}, nil
}

func printANOVA(w io.Writer, title string, r stats.ANOVAResult) {
	fprintf(w, "  %s cores:\n", title)
	for _, ef := range r.Effects {
		sig := "not significant"
		if ef.Significant {
			sig = "SIGNIFICANT"
		}
		fprintf(w, "    %-16s F=%8.2f p=%8.4f  %s\n", ef.Name, ef.F, ef.PValue, sig)
	}
}
