package experiments

import (
	"fmt"
	"io"

	"eddie/internal/cfg"
	"eddie/internal/mibench"
	"eddie/internal/par"
	"eddie/internal/pipeline"
	"eddie/internal/sim"
	"eddie/internal/stats"
)

// Fig4Row is one region's detection latency under both core types.
type Fig4Row struct {
	Region    string
	InOrderMs float64
	OOOMs     float64
}

// fig4Benchmarks supply the regions of Fig 4 (the paper uses 15 regions
// from three benchmarks; our workload versions expose 12 loop regions
// across the same three, plus sha to reach 15).
var fig4Benchmarks = []string{"basicmath", "bitcount", "susan", "sha"}

// Fig4 reproduces "Figure 4: Detection latency of 15 different regions in
// in-order and out-of-order architecture". Latency is the trained K-S
// group size n times the window hop — exactly the paper's definition
// ("this latency mainly reflects the number of STSs that are used in the
// K-S test"). OOO cores produce more schedule variation, so their
// references are broader and need larger n.
func Fig4(e *Env, w io.Writer) ([]Fig4Row, error) {
	inorder := e.Sim
	inorder.Sim = sim.DefaultIoT() // in-order core, raw power signal
	inorder.STFT = pipeline.DefaultSTFT(inorder.Sim)
	inorder.Channel = nil
	ooo := e.Sim

	// The paper stops at 15 regions, and the serial loop stopped *training*
	// once it had them; keep that work bound by counting loop nests from
	// the (cheap, training-free) machines first and dropping benchmarks
	// that cannot contribute a row.
	need := len(fig4Benchmarks)
	for i, total := 0, 0; i < len(fig4Benchmarks); i++ {
		wl, err := mibench.ByName(fig4Benchmarks[i])
		if err != nil {
			return nil, err
		}
		machine, err := cfg.BuildMachine(wl.Program)
		if err != nil {
			return nil, err
		}
		total += len(machine.Nests)
		if total >= 15 {
			need = i + 1
			break
		}
	}

	// Benchmarks train in parallel (both core configs come from the model
	// cache, shared with the other figures); per-benchmark rows are
	// assembled by index and concatenated in the paper's order.
	perBench := make([][]Fig4Row, need)
	err := par.Do(need, 0, func(bi int) error {
		name := fig4Benchmarks[bi]
		tIn, err := e.train(name, inorder, e.TrainRunsSim)
		if err != nil {
			return err
		}
		tOoo, err := e.train(name, ooo, e.TrainRunsSim)
		if err != nil {
			return err
		}
		machine := tIn.machine
		var out []Fig4Row
		for nest := range machine.Nests {
			id := machine.LoopRegionOf(nest)
			ri := tIn.model.Regions[id]
			ro := tOoo.model.Regions[id]
			if ri == nil || ro == nil {
				continue
			}
			out = append(out, Fig4Row{
				Region:    fmt.Sprintf("%s/%s", name, ri.Label),
				InOrderMs: float64(ri.GroupSize) * inorder.HopSeconds() * 1e3,
				OOOMs:     float64(ro.GroupSize) * ooo.HopSeconds() * 1e3,
			})
		}
		perBench[bi] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig4Row
	for _, out := range perBench {
		for _, r := range out {
			if len(rows) >= 15 {
				break
			}
			rows = append(rows, r)
		}
	}
	fprintf(w, "Fig 4: per-region detection latency, in-order vs out-of-order\n")
	fprintf(w, "%-4s %-34s %12s %12s\n", "#", "Region", "InOrder(ms)", "OOO(ms)")
	var sumIn, sumOoo float64
	for i, r := range rows {
		fprintf(w, "%-4d %-34s %12.2f %12.2f\n", i+1, r.Region, r.InOrderMs, r.OOOMs)
		sumIn += r.InOrderMs
		sumOoo += r.OOOMs
	}
	if len(rows) > 0 {
		fprintf(w, "%-4s %-34s %12.2f %12.2f\n", "", "Avg",
			sumIn/float64(len(rows)), sumOoo/float64(len(rows)))
	}
	return rows, nil
}

// ANOVAResult is the §5.3 sensitivity study output.
type ANOVAResult struct {
	InOrder stats.ANOVAResult
	OOO     stats.ANOVAResult
	Configs int
}

// anovaBenchmarks are the three benchmarks of the paper's §5.3 study.
var anovaBenchmarks = []string{"basicmath", "bitcount", "susan"}

// ANOVA reproduces the §5.3 study: 51 simulator configurations (in-order:
// 3 issue widths x 2 pipeline depths; out-of-order: 3 widths x 3 depths x
// 5 ROB sizes), N-way analysis of variance of EDDIE's per-region detection
// latency against the architectural factors.
func ANOVA(e *Env, w io.Writer) (*ANOVAResult, error) {
	trainRuns := e.TrainRunsSim
	if trainRuns > 6 {
		trainRuns = 6 // 51 configs x 3 benchmarks: keep each cell modest
	}
	type obs struct {
		latency float64
		width   int
		depth   int
		rob     int
		bench   int
	}

	// Enumerate the full config x benchmark grid up front (in the exact
	// order the serial loops visited it), train every cell on the worker
	// pool, then partition the observations in grid order so the ANOVA
	// sums accumulate exactly as they did serially.
	type job struct {
		c      pipeline.Config
		width  int
		depth  int
		rob    int
		bench  int
		name   string
		result *obs
	}
	var jobs []*job
	configs := 0
	for bi, name := range anovaBenchmarks {
		// In-order: 3 widths x 2 depths.
		for _, width := range []int{1, 2, 4} {
			for _, depth := range []int{8, 13} {
				c := e.Sim
				sc := sim.DefaultIoT()
				sc.IssueWidth = width
				sc.PipelineDepth = depth
				c.Sim = sc
				c.STFT = pipeline.DefaultSTFT(sc)
				c.Channel = nil
				jobs = append(jobs, &job{c: c, width: width, depth: depth, rob: 0, bench: bi, name: name})
				if bi == 0 {
					configs++
				}
			}
		}
		// Out-of-order: 3 widths x 3 depths x 5 ROB sizes.
		for _, width := range []int{1, 2, 4} {
			for _, depth := range []int{8, 13, 18} {
				for _, rob := range []int{32, 64, 128, 192, 256} {
					c := e.Sim
					sc := sim.DefaultOOO()
					sc.IssueWidth = width
					sc.PipelineDepth = depth
					sc.ROBSize = rob
					c.Sim = sc
					c.STFT = pipeline.DefaultSTFT(sc)
					jobs = append(jobs, &job{c: c, width: width, depth: depth, rob: rob, bench: bi, name: name})
					if bi == 0 {
						configs++
					}
				}
			}
		}
	}
	err := par.Do(len(jobs), 0, func(ji int) error {
		j := jobs[ji]
		t, err := e.trainCached(j.name, j.c, trainRuns, e.Train)
		if err != nil {
			return err
		}
		// Response: mean loop-region latency (n x hop) of the benchmark.
		var sum float64
		var count int
		for nest := range t.machine.Nests {
			if rm := t.model.Regions[t.machine.LoopRegionOf(nest)]; rm != nil {
				sum += float64(rm.GroupSize) * j.c.HopSeconds() * 1e3
				count++
			}
		}
		if count == 0 {
			return nil
		}
		j.result = &obs{latency: sum / float64(count), width: j.width, depth: j.depth, rob: j.rob, bench: j.bench}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var inOrderObs, oooObs []obs
	for _, j := range jobs {
		if j.result == nil {
			continue
		}
		if j.rob == 0 {
			inOrderObs = append(inOrderObs, *j.result)
		} else {
			oooObs = append(oooObs, *j.result)
		}
	}

	build := func(obsList []obs, withROB bool) (stats.ANOVAResult, error) {
		resp := make([]float64, len(obsList))
		factors := [][]int{{}, {}, {}}
		names := []string{"issue-width", "pipeline-depth", "benchmark"}
		if withROB {
			factors = append(factors, []int{})
			names = append(names, "rob-size")
		}
		for i, o := range obsList {
			resp[i] = o.latency
			factors[0] = append(factors[0], o.width)
			factors[1] = append(factors[1], o.depth)
			factors[2] = append(factors[2], o.bench)
			if withROB {
				factors[3] = append(factors[3], o.rob)
			}
		}
		return stats.ANOVA(resp, factors, names, 0.05)
	}
	inRes, err := build(inOrderObs, false)
	if err != nil {
		return nil, err
	}
	oooRes, err := build(oooObs, true)
	if err != nil {
		return nil, err
	}

	fprintf(w, "ANOVA (§5.3): which architectural parameters affect EDDIE's latency (%d configs x %d benchmarks)\n",
		configs, len(anovaBenchmarks))
	printANOVA(w, "in-order", inRes)
	printANOVA(w, "out-of-order", oooRes)
	return &ANOVAResult{InOrder: inRes, OOO: oooRes, Configs: configs}, nil
}

func printANOVA(w io.Writer, title string, r stats.ANOVAResult) {
	fprintf(w, "  %s cores:\n", title)
	for _, ef := range r.Effects {
		sig := "not significant"
		if ef.Significant {
			sig = "SIGNIFICANT"
		}
		fprintf(w, "    %-16s F=%8.2f p=%8.4f  %s\n", ef.Name, ef.F, ef.PValue, sig)
	}
}
