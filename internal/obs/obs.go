// Package obs is EDDIE's flight-recorder and tracing layer: low-overhead
// execution spans for every pipeline stage (simulation → EM channel →
// impairments → STFT/peaks → K-S decision), per-window decision
// provenance with a bounded flight recorder that dumps its evidence when
// an alarm fires, and a debug HTTP mux exposing all of it live.
//
// The whole layer is disabled by default and must cost nothing when off:
// every entry point is safe on a nil receiver and the disabled fast path
// performs no allocation and no time lookup (verified by the zero-alloc
// test and `make obs-bench`). Spans follow the always-on-tracing span
// model (Dapper-style named tracks with nested timed sections) and export
// as Chrome trace-event JSON, loadable in Perfetto or chrome://tracing.
package obs

import (
	"sync"
	"time"
)

// DefaultMaxEvents bounds a Recorder's event buffer; events past the cap
// are counted in Dropped() instead of growing memory without bound.
const DefaultMaxEvents = 1 << 20

// phase constants for recorded events (Chrome trace-event phases).
const (
	phaseComplete = 'X' // timed span with duration
	phaseInstant  = 'i' // zero-duration marker
	phaseMeta     = 'M' // metadata (track names)
)

// event is one recorded trace event. Timestamps are nanoseconds since
// the recorder's start (the monotonic clock, so spans never go
// backwards).
type event struct {
	name string
	cat  string
	ph   byte
	tid  int64
	ts   int64 // start, ns since t0
	dur  int64 // duration, ns (phaseComplete only)
	arg  string
}

// Recorder collects spans and instant events from concurrent pipeline
// stages. A nil *Recorder is the disabled state: Track, Start, End and
// Instant all become no-ops with zero allocation.
type Recorder struct {
	mu      sync.Mutex
	t0      time.Time
	events  []event
	max     int
	dropped int64
	nextTID int64
}

// NewRecorder creates an enabled recorder with the default event cap.
func NewRecorder() *Recorder { return NewRecorderCap(DefaultMaxEvents) }

// NewRecorderCap creates a recorder holding at most limit events;
// further events are dropped (and counted) rather than buffered.
func NewRecorderCap(limit int) *Recorder {
	if limit <= 0 {
		limit = DefaultMaxEvents
	}
	return &Recorder{t0: time.Now(), max: limit}
}

// Track names one horizontal lane of the trace (a pipeline stage, a run,
// the monitor). The zero Track is the disabled state.
type Track struct {
	r     *Recorder
	id    int64
	label string
}

// Track allocates a new trace lane with the given label. Safe on a nil
// recorder (returns the disabled zero Track).
func (r *Recorder) Track(label string) Track {
	if r == nil {
		return Track{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextTID++
	id := r.nextTID
	r.addLocked(event{name: "thread_name", ph: phaseMeta, tid: id, arg: label})
	return Track{r: r, id: id, label: label}
}

// Enabled reports whether spans started on this track are recorded.
func (t Track) Enabled() bool { return t.r != nil }

// Span is one in-flight timed section on a track. It is a plain value:
// the disabled path never allocates.
type Span struct {
	t     Track
	name  string
	start int64
}

// Start opens a span. On a disabled track this is a few instructions and
// zero allocations.
func (t Track) Start(name string) Span {
	if t.r == nil {
		return Span{}
	}
	return Span{t: t, name: name, start: int64(time.Since(t.r.t0))}
}

// End closes the span and records it. No-op for spans from a disabled
// track.
func (s Span) End() {
	r := s.t.r
	if r == nil {
		return
	}
	end := int64(time.Since(r.t0))
	r.mu.Lock()
	r.addLocked(event{name: s.name, cat: s.t.label, ph: phaseComplete, tid: s.t.id, ts: s.start, dur: end - s.start})
	r.mu.Unlock()
}

// Instant records a zero-duration marker (a region switch, a fired
// report) on the track.
func (t Track) Instant(name string) {
	if t.r == nil {
		return
	}
	ts := int64(time.Since(t.r.t0))
	t.r.mu.Lock()
	t.r.addLocked(event{name: name, cat: t.label, ph: phaseInstant, tid: t.id, ts: ts})
	t.r.mu.Unlock()
}

// addLocked appends an event under r.mu, honoring the cap.
func (r *Recorder) addLocked(e event) {
	if len(r.events) >= r.max {
		r.dropped++
		return
	}
	r.events = append(r.events, e)
}

// Len returns the number of recorded events. Zero on a nil recorder.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Dropped returns how many events were discarded past the cap.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
