package obs

import (
	"testing"
	"time"
)

// fakeClock drives an SLOTracker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func newTestSLO(c *fakeClock, cfg SLOConfig) *SLOTracker {
	cfg.Now = c.now
	return NewSLOTracker(cfg)
}

func TestSLOHealthReady(t *testing.T) {
	c := newFakeClock()
	s := newTestSLO(c, SLOConfig{})
	if h := s.Health(); h.Status != HealthReady {
		t.Fatalf("empty tracker: %s, want ready", h.Status)
	}
	for i := 0; i < 1000; i++ {
		s.Record(10 * time.Millisecond)
	}
	h := s.Health()
	if h.Status != HealthReady || h.Short.Good != 1000 || h.Short.Bad != 0 {
		t.Fatalf("all-good tracker: %+v", h)
	}
	if h.BudgetMillis != 500 || h.Objective != 0.99 {
		t.Fatalf("defaults not applied: %+v", h)
	}
}

func TestSLOHealthDegradedAndOverloaded(t *testing.T) {
	c := newFakeClock()
	s := newTestSLO(c, SLOConfig{})
	// 5% bad = burn 5 with a 1% error budget: degraded, not overloaded.
	for i := 0; i < 1000; i++ {
		lat := 10 * time.Millisecond
		if i%20 == 0 {
			lat = time.Second
		}
		s.Record(lat)
	}
	if h := s.Health(); h.Status != HealthDegraded {
		t.Fatalf("5%% bad: %s (short burn %.1f), want degraded", h.Status, h.Short.Burn)
	}
	// All-bad = burn 100: overloaded.
	s2 := newTestSLO(c, SLOConfig{})
	for i := 0; i < 100; i++ {
		s2.Record(2 * time.Second)
	}
	if h := s2.Health(); h.Status != HealthOverloaded {
		t.Fatalf("all bad: %s, want overloaded", h.Status)
	}
}

// TestSLOShortWindowRecovers: after the bad burst ages past the short
// window (but inside the long one), health returns to ready — the
// short window gates the verdict.
func TestSLOShortWindowRecovers(t *testing.T) {
	c := newFakeClock()
	s := newTestSLO(c, SLOConfig{ShortWindow: time.Minute, LongWindow: 10 * time.Minute})
	for i := 0; i < 100; i++ {
		s.Record(2 * time.Second) // all bad
	}
	if h := s.Health(); h.Status != HealthOverloaded {
		t.Fatalf("fresh burst: %s, want overloaded", h.Status)
	}
	c.advance(2 * time.Minute)
	for i := 0; i < 1000; i++ {
		s.Record(time.Millisecond)
	}
	h := s.Health()
	if h.Status != HealthReady {
		t.Fatalf("after burst aged out: %s (short %+v long %+v)", h.Status, h.Short, h.Long)
	}
	if h.Long.Bad != 100 {
		t.Fatalf("long window lost the burst: %+v", h.Long)
	}
}

// TestSLOSlotExpiry: events older than the long window vanish entirely
// (the ring reuses slots lazily).
func TestSLOSlotExpiry(t *testing.T) {
	c := newFakeClock()
	s := newTestSLO(c, SLOConfig{ShortWindow: time.Minute, LongWindow: 5 * time.Minute})
	s.Record(2 * time.Second)
	c.advance(6 * time.Minute)
	s.Record(time.Millisecond)
	h := s.Health()
	if h.Long.Bad != 0 || h.Long.Good != 1 {
		t.Fatalf("expired slot still counted: %+v", h.Long)
	}
}

func TestSLORecordZeroAlloc(t *testing.T) {
	s := NewSLOTracker(SLOConfig{})
	if allocs := testing.AllocsPerRun(1000, func() {
		s.Record(3 * time.Millisecond)
	}); allocs != 0 {
		t.Fatalf("SLOTracker.Record allocates %v allocs/op, want 0", allocs)
	}
}

func TestSLONil(t *testing.T) {
	var s *SLOTracker
	s.Record(time.Second) // no panic
	if h := s.Health(); h.Status != HealthReady {
		t.Fatalf("nil tracker health: %s", h.Status)
	}
	if s.Budget() != 0 {
		t.Fatal("nil Budget != 0")
	}
}

func TestSLOConfigDefaults(t *testing.T) {
	cfg := SLOConfig{}.withDefaults()
	if cfg.Budget != 500*time.Millisecond || cfg.Objective != 0.99 ||
		cfg.Slot != 5*time.Second || cfg.ShortWindow != 5*time.Minute ||
		cfg.LongWindow != time.Hour || cfg.DegradedBurn != 1 || cfg.OverloadBurn != 10 {
		t.Fatalf("defaults: %+v", cfg)
	}
	// LongWindow clamps up to ShortWindow.
	cfg = SLOConfig{ShortWindow: time.Hour, LongWindow: time.Minute}.withDefaults()
	if cfg.LongWindow != time.Hour {
		t.Fatalf("LongWindow not clamped: %v", cfg.LongWindow)
	}
}

func BenchmarkSLORecord(b *testing.B) {
	s := NewSLOTracker(SLOConfig{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Record(time.Duration(i&1023) * time.Millisecond)
	}
}
