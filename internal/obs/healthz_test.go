package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

// fakeFleetHealth implements FleetHealth for handler tests.
type fakeFleetHealth struct {
	SessionLister
	draining    bool
	active, max int
}

func (f *fakeFleetHealth) Draining() bool             { return f.draining }
func (f *fakeFleetHealth) ActiveSessions() (int, int) { return f.active, f.max }
func (f *fakeFleetHealth) FleetSessions() any         { return []any{} }

func getHealthz(t *testing.T, s ServeState) (int, map[string]any) {
	t.Helper()
	srv := httptest.NewServer(NewMux(s))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/eddie/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestHealthzReady(t *testing.T) {
	slo := NewSLOTracker(SLOConfig{})
	for i := 0; i < 100; i++ {
		slo.Record(time.Millisecond)
	}
	code, body := getHealthz(t, ServeState{Health: slo})
	if code != 200 || body["status"] != HealthReady {
		t.Fatalf("code %d status %v, want 200 ready", code, body["status"])
	}
	if body["budget_ms"] != 500.0 {
		t.Fatalf("budget_ms %v", body["budget_ms"])
	}
}

func TestHealthzNilTracker(t *testing.T) {
	code, body := getHealthz(t, ServeState{})
	if code != 200 || body["status"] != HealthReady {
		t.Fatalf("nil tracker: code %d status %v", code, body["status"])
	}
}

func TestHealthzOverloaded503(t *testing.T) {
	slo := NewSLOTracker(SLOConfig{})
	for i := 0; i < 100; i++ {
		slo.Record(10 * time.Second)
	}
	code, body := getHealthz(t, ServeState{Health: slo})
	if code != 503 || body["status"] != HealthOverloaded {
		t.Fatalf("code %d status %v, want 503 overloaded", code, body["status"])
	}
}

// fakeStatusFleet adds a self-supplied verdict (HealthStatuser), the
// shape the coordinator exposes from ring membership.
type fakeStatusFleet struct {
	fakeFleetHealth
	status string
}

func (f *fakeStatusFleet) HealthStatus() string { return f.status }

func TestHealthzFleetStatusOverride(t *testing.T) {
	slo := NewSLOTracker(SLOConfig{})
	slo.Record(time.Millisecond) // SLO plane says ready

	fleet := &fakeStatusFleet{status: HealthDegraded}
	code, body := getHealthz(t, ServeState{Health: slo, Fleet: fleet})
	if code != 200 || body["status"] != HealthDegraded {
		t.Fatalf("degraded fleet: code %d status %v, want 200 degraded", code, body["status"])
	}

	fleet.status = HealthOverloaded // no live backend: fail closed
	code, body = getHealthz(t, ServeState{Health: slo, Fleet: fleet})
	if code != 503 || body["status"] != HealthOverloaded {
		t.Fatalf("dead fleet: code %d status %v, want 503 overloaded", code, body["status"])
	}

	// The worse verdict wins in both directions: a ready fleet does not
	// mask an overloaded SLO tracker.
	burned := NewSLOTracker(SLOConfig{})
	for i := 0; i < 100; i++ {
		burned.Record(10 * time.Second)
	}
	fleet.status = HealthReady
	code, body = getHealthz(t, ServeState{Health: burned, Fleet: fleet})
	if code != 503 || body["status"] != HealthOverloaded {
		t.Fatalf("burned SLO: code %d status %v, want 503 overloaded", code, body["status"])
	}
}

func TestHealthzDrainingOverrides(t *testing.T) {
	slo := NewSLOTracker(SLOConfig{})
	slo.Record(time.Millisecond)
	fleet := &fakeFleetHealth{draining: true, active: 3, max: 100}
	code, body := getHealthz(t, ServeState{Health: slo, Fleet: fleet})
	if code != 503 || body["status"] != HealthDraining {
		t.Fatalf("code %d status %v, want 503 draining", code, body["status"])
	}
	if body["sessions_active"] != 3.0 || body["sessions_max"] != 100.0 {
		t.Fatalf("session counts: %v / %v", body["sessions_active"], body["sessions_max"])
	}
}
