package obs

import (
	"bufio"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAlarmStreamFanout(t *testing.T) {
	a := NewAlarmStream()
	ch1, cancel1 := a.Subscribe()
	ch2, cancel2 := a.Subscribe()
	defer cancel1()
	defer cancel2()
	a.Publish([]byte(`{"alarm":1}`))
	for i, ch := range []<-chan []byte{ch1, ch2} {
		select {
		case ev := <-ch:
			if string(ev) != `{"alarm":1}` {
				t.Errorf("sub %d got %s", i, ev)
			}
		default:
			t.Fatalf("sub %d got nothing", i)
		}
	}
	pubs, dropped, subs := a.Stats()
	if pubs != 1 || dropped != 0 || subs != 2 {
		t.Fatalf("stats: %d/%d/%d", pubs, dropped, subs)
	}
}

// TestAlarmStreamDropSlowest: a full subscriber queue loses its OLDEST
// event; the newest published events survive.
func TestAlarmStreamDropSlowest(t *testing.T) {
	a := &AlarmStream{QueueLen: 2}
	ch, cancel := a.Subscribe()
	defer cancel()
	for i := 1; i <= 5; i++ {
		a.Publish([]byte(fmt.Sprintf("ev%d", i)))
	}
	var got []string
	for len(ch) > 0 {
		got = append(got, string(<-ch))
	}
	if strings.Join(got, ",") != "ev4,ev5" {
		t.Fatalf("queued events %v, want [ev4 ev5]", got)
	}
	if _, dropped, _ := a.Stats(); dropped != 3 {
		t.Fatalf("dropped = %d, want 3", dropped)
	}
}

func TestAlarmStreamCancelAndClose(t *testing.T) {
	a := NewAlarmStream()
	ch1, cancel1 := a.Subscribe()
	ch2, _ := a.Subscribe()
	cancel1()
	cancel1() // idempotent
	if _, ok := <-ch1; ok {
		t.Fatal("canceled channel not closed")
	}
	a.Publish([]byte("x")) // must not panic on the removed sub
	a.Close()
	a.Close() // idempotent
	// ch2 drains its queued event, then reports closed.
	if ev, ok := <-ch2; !ok || string(ev) != "x" {
		t.Fatalf("queued event lost at close: %q %v", ev, ok)
	}
	if _, ok := <-ch2; ok {
		t.Fatal("channel not closed by Close")
	}
	// Post-close Subscribe/Publish no-op.
	ch3, cancel3 := a.Subscribe()
	if _, ok := <-ch3; ok {
		t.Fatal("post-close Subscribe returned a live channel")
	}
	cancel3()
	a.Publish([]byte("y"))
}

func TestAlarmStreamNil(t *testing.T) {
	var a *AlarmStream
	a.Publish([]byte("x"))
	ch, cancel := a.Subscribe()
	if _, ok := <-ch; ok {
		t.Fatal("nil stream channel not closed")
	}
	cancel()
	a.Close()
	if p, d, s := a.Stats(); p != 0 || d != 0 || s != 0 {
		t.Fatal("nil stats not zero")
	}
}

func TestAlarmStreamConcurrent(t *testing.T) {
	a := NewAlarmStream()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ch, cancel := a.Subscribe()
				for range ch {
				}
				_ = cancel
			}
		}()
	}
	for i := 0; i < 1000; i++ {
		a.Publish([]byte("ev"))
	}
	a.Close()
	close(stop)
	wg.Wait()
}

// TestAlarmSSEHandler: the endpoint streams published alarms as SSE
// frames and emits a shutdown event when the stream closes.
func TestAlarmSSEHandler(t *testing.T) {
	a := NewAlarmStream()
	srv := httptest.NewServer(NewMux(ServeState{Alarms: a}))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/eddie/alarms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	r := bufio.NewReader(resp.Body)
	readLine := func() string {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		return strings.TrimRight(line, "\n")
	}
	if got := readLine(); got != ": eddie alarm stream" {
		t.Fatalf("preamble %q", got)
	}
	readLine() // blank

	// The subscriber registers asynchronously with the handler goroutine;
	// poll until the publish lands.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, subs := a.Stats(); subs > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	a.Publish([]byte(`{"alarm":7}`))
	if got := readLine(); got != "event: alarm" {
		t.Fatalf("event line %q", got)
	}
	if got := readLine(); got != `data: {"alarm":7}` {
		t.Fatalf("data line %q", got)
	}
	readLine() // blank

	a.Close()
	if got := readLine(); got != "event: shutdown" {
		t.Fatalf("shutdown line %q", got)
	}
}

func TestAlarmSSEHandlerDisabled(t *testing.T) {
	srv := httptest.NewServer(NewMux(ServeState{}))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/eddie/alarms")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}
