package obs

import (
	"sync"
	"time"
)

// SLO health verdicts, ordered by severity.
const (
	// HealthReady: both burn-rate windows are inside budget.
	HealthReady = "ready"
	// HealthDegraded: the short window is burning error budget faster
	// than sustainable — latency is slipping but the node still serves.
	HealthDegraded = "degraded"
	// HealthOverloaded: the short window burn is far over budget; a
	// coordinator should stop routing new sessions here.
	HealthOverloaded = "overloaded"
	// HealthDraining: the server is in graceful shutdown.
	HealthDraining = "draining"
)

// SLOConfig configures a latency SLO burn-rate tracker.
type SLOConfig struct {
	// Budget is the per-event latency budget (default 500ms — the p99
	// frame-to-verdict bound from BENCH_fleet.json).
	Budget time.Duration
	// Objective is the target fraction of events inside Budget
	// (default 0.99).
	Objective float64
	// Slot is the ring granularity (default 5s).
	Slot time.Duration
	// ShortWindow / LongWindow are the two burn-rate horizons
	// (defaults 5m / 1h). LongWindow must be a multiple of Slot and
	// at least ShortWindow.
	ShortWindow, LongWindow time.Duration
	// DegradedBurn / OverloadBurn are the short-window burn-rate
	// thresholds for the degraded and overloaded verdicts (defaults
	// 1 and 10). Burn rate 1 means the error budget is being consumed
	// exactly as fast as the objective allows.
	DegradedBurn, OverloadBurn float64
	// Now overrides the clock (tests).
	Now func() time.Time
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Budget <= 0 {
		c.Budget = 500 * time.Millisecond
	}
	if c.Objective <= 0 || c.Objective >= 1 {
		c.Objective = 0.99
	}
	if c.Slot <= 0 {
		c.Slot = 5 * time.Second
	}
	if c.ShortWindow <= 0 {
		c.ShortWindow = 5 * time.Minute
	}
	if c.LongWindow <= 0 {
		c.LongWindow = time.Hour
	}
	if c.LongWindow < c.ShortWindow {
		c.LongWindow = c.ShortWindow
	}
	if c.DegradedBurn <= 0 {
		c.DegradedBurn = 1
	}
	if c.OverloadBurn <= c.DegradedBurn {
		c.OverloadBurn = 10 * c.DegradedBurn
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// sloSlot is one time slot's good/bad counts. epoch identifies which
// slot-aligned time the entry currently holds, so stale ring entries
// are detected lazily instead of by a background sweeper.
type sloSlot struct {
	epoch     int64
	good, bad int64
}

// SLOTracker measures a latency SLO as multi-window burn rates, the
// SRE-workbook alerting scheme: each recorded event is good (within
// Budget) or bad, counts land in a ring of Slot-sized time slots, and
// Health compares the short- and long-window bad fractions against the
// objective's error budget. A nil *SLOTracker no-ops. Record holds a
// mutex for a few adds — cheap enough for every frame-to-verdict
// event, and allocation-free.
type SLOTracker struct {
	cfg   SLOConfig
	mu    sync.Mutex
	slots []sloSlot
}

// NewSLOTracker creates a tracker (see SLOConfig for defaults).
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	cfg = cfg.withDefaults()
	n := int(cfg.LongWindow / cfg.Slot)
	if n < 1 {
		n = 1
	}
	return &SLOTracker{cfg: cfg, slots: make([]sloSlot, n)}
}

// Budget returns the configured per-event latency budget (0 on nil).
func (s *SLOTracker) Budget() time.Duration {
	if s == nil {
		return 0
	}
	return s.cfg.Budget
}

// Record classifies one event latency against the budget.
// Allocation-free; safe on a nil tracker.
func (s *SLOTracker) Record(latency time.Duration) {
	if s == nil {
		return
	}
	epoch := s.cfg.Now().UnixNano() / int64(s.cfg.Slot)
	s.mu.Lock()
	sl := &s.slots[int(epoch%int64(len(s.slots)))]
	if sl.epoch != epoch {
		sl.epoch, sl.good, sl.bad = epoch, 0, 0
	}
	if latency <= s.cfg.Budget {
		sl.good++
	} else {
		sl.bad++
	}
	s.mu.Unlock()
}

// SLOWindow is one horizon's aggregate in a health report.
type SLOWindow struct {
	// Window is the horizon length in seconds.
	Window float64 `json:"window_sec"`
	// Good / Bad are the event counts inside the horizon.
	Good int64 `json:"good"`
	Bad  int64 `json:"bad"`
	// BadFrac is Bad / (Good+Bad) (0 with no events).
	BadFrac float64 `json:"bad_frac"`
	// Burn is BadFrac divided by the error budget (1 - Objective):
	// burn 1 consumes the budget exactly at the sustainable rate.
	Burn float64 `json:"burn"`
}

// SLOHealth is the tracker's verdict.
type SLOHealth struct {
	// Status is HealthReady, HealthDegraded or HealthOverloaded (the
	// serving layer may override with HealthDraining).
	Status string `json:"status"`
	// BudgetMillis is the per-event latency budget.
	BudgetMillis float64 `json:"budget_ms"`
	// Objective is the target in-budget fraction.
	Objective float64 `json:"objective"`
	// Short and Long are the two burn-rate windows.
	Short SLOWindow `json:"short"`
	Long  SLOWindow `json:"long"`
}

// window aggregates the slots inside the horizon ending now. Caller
// holds s.mu.
func (s *SLOTracker) windowLocked(nowEpoch int64, horizon time.Duration) SLOWindow {
	n := int64(horizon / s.cfg.Slot)
	if n < 1 {
		n = 1
	}
	w := SLOWindow{Window: horizon.Seconds()}
	for e := nowEpoch - n + 1; e <= nowEpoch; e++ {
		if e < 0 {
			continue
		}
		sl := &s.slots[int(e%int64(len(s.slots)))]
		if sl.epoch == e {
			w.Good += sl.good
			w.Bad += sl.bad
		}
	}
	if tot := w.Good + w.Bad; tot > 0 {
		w.BadFrac = float64(w.Bad) / float64(tot)
	}
	w.Burn = w.BadFrac / (1 - s.cfg.Objective)
	return w
}

// Health computes the current verdict. Safe on a nil tracker (returns
// a ready report with zero windows).
func (s *SLOTracker) Health() SLOHealth {
	if s == nil {
		return SLOHealth{Status: HealthReady}
	}
	nowEpoch := s.cfg.Now().UnixNano() / int64(s.cfg.Slot)
	s.mu.Lock()
	short := s.windowLocked(nowEpoch, s.cfg.ShortWindow)
	long := s.windowLocked(nowEpoch, s.cfg.LongWindow)
	s.mu.Unlock()
	h := SLOHealth{
		Status:       HealthReady,
		BudgetMillis: float64(s.cfg.Budget) / float64(time.Millisecond),
		Objective:    s.cfg.Objective,
		Short:        short,
		Long:         long,
	}
	// Multi-window gating: the short window must be burning AND the
	// long window must confirm it is not a transient blip — unless the
	// short burn is so extreme (overload) that waiting for the long
	// window to catch up would delay re-homing.
	switch {
	case short.Burn >= s.cfg.OverloadBurn:
		h.Status = HealthOverloaded
	case short.Burn >= s.cfg.DegradedBurn && long.Burn >= s.cfg.DegradedBurn:
		h.Status = HealthDegraded
	case short.Burn >= s.cfg.DegradedBurn:
		// Short-window burn without long-window confirmation still
		// reports degraded: the tracker usually starts cold (long
		// window empty), and a fresh overload must not hide behind an
		// empty hour.
		if long.Good+long.Bad == short.Good+short.Bad {
			h.Status = HealthDegraded
		}
	}
	return h
}
