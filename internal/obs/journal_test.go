package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestJournalAppendAndRecover(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	j.Event("server_start", "", 0, "", "")
	j.Event("connect", "dev-1", 7, "s03", "")
	j.Event("backpressure", "dev-1", 7, "s03", "inbox full")
	dump := &AlarmDump{
		Alarm: 1, Window: 42, TimeSec: 1.75, Region: 3, Streak: 5,
		RejectedRanks: []int{0, 2},
		Records: []WindowRecord{{
			Window: 42, TimeSec: 1.75, Region: 3, Tested: true,
			GroupSize: 8, CAlpha: 1.36, BestMode: 1, RejFrac: 0.5,
			Ranks:         []RankKS{{Rank: 0, Stat: 0.9, Crit: 0.4, Rejected: true}},
			RejectedRanks: []int{0, 2}, Rejected: true, Streak: 5,
			Transition: TransStay, SwitchTo: -1, Reported: true,
		}},
	}
	seq := j.AppendEvent(&JournalEvent{Type: "alarm", Device: "dev-1", Session: 7, Shard: "s03", Alarm: dump})
	if seq != 4 {
		t.Fatalf("alarm seq = %d, want 4", seq)
	}
	j.Event("disconnect", "dev-1", 7, "s03", "EOF")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := RecoverJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Files != 1 || rec.CorruptLines != 0 || rec.TruncatedTail {
		t.Fatalf("recovery stats: %+v", rec)
	}
	if len(rec.Events) != 5 {
		t.Fatalf("recovered %d events, want 5", len(rec.Events))
	}
	types := make([]string, len(rec.Events))
	for i, ev := range rec.Events {
		types[i] = ev.Type
		if ev.Seq != int64(i+1) {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, i+1)
		}
		if ev.TimeUnixNano == 0 {
			t.Errorf("event %d missing timestamp", i)
		}
	}
	want := []string{"server_start", "connect", "backpressure", "alarm", "disconnect"}
	if !reflect.DeepEqual(types, want) {
		t.Fatalf("event types %v, want %v", types, want)
	}
	if ev := rec.Events[2]; ev.Device != "dev-1" || ev.Session != 7 || ev.Shard != "s03" || ev.Detail != "inbox full" {
		t.Errorf("backpressure envelope: %+v", ev)
	}
	// The recovered alarm round-trips bit-identically: re-marshaling it
	// matches marshaling the live dump.
	if len(rec.Alarms) != 1 {
		t.Fatalf("recovered %d alarms, want 1", len(rec.Alarms))
	}
	liveJSON, _ := json.Marshal(dump)
	recJSON, _ := json.Marshal(rec.Alarms[0])
	if string(liveJSON) != string(recJSON) {
		t.Errorf("alarm dump not bit-identical after recovery:\nlive: %s\nrec:  %s", liveJSON, recJSON)
	}
}

func TestJournalRotation(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalConfig{Dir: dir, MaxFileBytes: 256, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		j.Event("connect", "device-with-a-long-name", int64(i+1), "s00", "")
	}
	j.Close()
	entries, _ := os.ReadDir(dir)
	if len(entries) < 2 {
		t.Fatalf("expected rotation to produce multiple files, got %d", len(entries))
	}
	rec, err := RecoverJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Events) != 50 {
		t.Fatalf("recovered %d events across %d files, want 50", len(rec.Events), rec.Files)
	}
	for i, ev := range rec.Events {
		if ev.Seq != int64(i+1) {
			t.Fatalf("seq order broken at %d: %d", i, ev.Seq)
		}
	}
}

// TestJournalNeverAppendsToOldFile: reopening a journal directory
// starts a fresh numbered file (the old tail may be torn).
func TestJournalNeverAppendsToOldFile(t *testing.T) {
	dir := t.TempDir()
	j1, _ := OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncNever})
	j1.Event("server_start", "", 0, "", "")
	j1.Close()
	j2, _ := OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncNever})
	j2.Event("server_start", "", 0, "", "")
	j2.Close()
	entries, _ := os.ReadDir(dir)
	if len(entries) != 2 {
		t.Fatalf("expected 2 files after reopen, got %d", len(entries))
	}
	rec, _ := RecoverJournal(dir)
	if len(rec.Events) != 2 || rec.Files != 2 {
		t.Fatalf("recovery: %+v", rec)
	}
}

func TestJournalRecoverTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	j, _ := OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncNever})
	j.Event("connect", "a", 1, "s00", "")
	j.Event("connect", "b", 2, "s00", "")
	j.Close()
	// Tear the final line mid-payload, as a crash during append would.
	path := filepath.Join(dir, journalFileName(0))
	b, _ := os.ReadFile(path)
	if err := os.WriteFile(path, b[:len(b)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := RecoverJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.TruncatedTail {
		t.Error("truncated tail not flagged")
	}
	if len(rec.Events) != 1 || rec.Events[0].Device != "a" {
		t.Fatalf("recovered %d events, want the 1 intact one", len(rec.Events))
	}
	if rec.CorruptLines != 0 {
		t.Errorf("torn tail miscounted as corruption: %d", rec.CorruptLines)
	}
}

func TestJournalRecoverCorruptInterior(t *testing.T) {
	dir := t.TempDir()
	j, _ := OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncNever})
	j.Event("connect", "a", 1, "s00", "")
	j.Event("connect", "b", 2, "s00", "")
	j.Event("connect", "c", 3, "s00", "")
	j.Close()
	path := filepath.Join(dir, journalFileName(0))
	b, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(b), "\n")
	lines[1] = "{garbage###\n"
	os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644)
	rec, err := RecoverJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CorruptLines != 1 || len(rec.Events) != 2 || rec.TruncatedTail {
		t.Fatalf("recovery: corrupt=%d events=%d torn=%v, want 1/2/false",
			rec.CorruptLines, len(rec.Events), rec.TruncatedTail)
	}
}

func TestJournalRecoverMissingDir(t *testing.T) {
	rec, err := RecoverJournal(filepath.Join(t.TempDir(), "nope"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Events) != 0 || rec.Files != 0 {
		t.Fatalf("missing dir recovery: %+v", rec)
	}
}

func TestJournalNilAndClosed(t *testing.T) {
	var j *Journal
	j.Event("connect", "a", 1, "", "") // no-op, no panic
	if j.AppendEvent(&JournalEvent{Type: "alarm"}) != 0 {
		t.Error("nil AppendEvent returned a seq")
	}
	if j.Sync() != nil || j.Close() != nil || j.Seq() != 0 {
		t.Error("nil journal methods not no-ops")
	}

	dir := t.TempDir()
	real, _ := OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncNever})
	real.Close()
	real.Event("connect", "a", 1, "", "") // closed: dropped
	if err := real.Close(); err != nil {  // idempotent
		t.Error(err)
	}
	rec, _ := RecoverJournal(dir)
	if len(rec.Events) != 0 {
		t.Error("closed journal accepted an event")
	}
}

func TestJournalConfigValidation(t *testing.T) {
	if _, err := OpenJournal(JournalConfig{}); err == nil {
		t.Error("empty Dir accepted")
	}
	if _, err := OpenJournal(JournalConfig{Dir: t.TempDir(), Fsync: "sometimes"}); err == nil {
		t.Error("bad fsync policy accepted")
	}
}

func TestJournalFsyncPolicies(t *testing.T) {
	for _, policy := range []string{FsyncAlways, FsyncInterval, FsyncNever} {
		dir := t.TempDir()
		j, err := OpenJournal(JournalConfig{Dir: dir, Fsync: policy, FsyncInterval: 10 * time.Millisecond})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		j.Event("connect", "dev", 1, "s00", "")
		if policy == FsyncInterval {
			time.Sleep(50 * time.Millisecond) // let the ticker flush
		}
		if err := j.Close(); err != nil {
			t.Fatalf("%s: close: %v", policy, err)
		}
		rec, _ := RecoverJournal(dir)
		if len(rec.Events) != 1 {
			t.Fatalf("%s: recovered %d events, want 1", policy, len(rec.Events))
		}
	}
}

func TestAppendJSONString(t *testing.T) {
	for in, want := range map[string]string{
		"plain":       `"plain"`,
		`q"uote`:      `"q\"uote"`,
		"back\\slash": `"back\\slash"`,
		"new\nline":   `"new\nline"`,
		"tab\tcr\r":   `"tab\tcr\r"`,
		"ctl\x01":     `"ctl\u0001"`,
		"utf8 ✓":      `"utf8 ✓"`,
	} {
		if got := string(appendJSONString(nil, in)); got != want {
			t.Errorf("appendJSONString(%q) = %s, want %s", in, got, want)
		}
		// Output must be valid JSON decoding back to the input.
		var back string
		if err := json.Unmarshal(appendJSONString(nil, in), &back); err != nil || back != in {
			t.Errorf("appendJSONString(%q) does not round-trip: %v %q", in, err, back)
		}
	}
}

// TestJournalEventZeroAlloc is the alloc gate for the lifecycle-event
// path (run by make obs-bench): after warm-up, Event must not allocate.
func TestJournalEventZeroAlloc(t *testing.T) {
	j, err := OpenJournal(JournalConfig{Dir: t.TempDir(), Fsync: FsyncNever,
		MaxFileBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.Event("connect", "device-0001", 1, "s00", "") // warm the line buffer
	if allocs := testing.AllocsPerRun(1000, func() {
		j.Event("connect", "device-0001", 1, "s00", "")
	}); allocs != 0 {
		t.Fatalf("Journal.Event allocates %v allocs/op, want 0", allocs)
	}
}

func BenchmarkJournalEvent(b *testing.B) {
	j, err := OpenJournal(JournalConfig{Dir: b.TempDir(), Fsync: FsyncNever,
		MaxFileBytes: 1 << 40})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Event("connect", "device-0001", 1, "s00", "")
	}
}

func BenchmarkJournalAppendAlarm(b *testing.B) {
	j, err := OpenJournal(JournalConfig{Dir: b.TempDir(), Fsync: FsyncNever,
		MaxFileBytes: 1 << 40})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	dump := &AlarmDump{Alarm: 1, Window: 42, Region: 3, Streak: 5,
		RejectedRanks: []int{0, 2},
		Records: []WindowRecord{{Window: 42, Region: 3, Tested: true,
			Ranks: []RankKS{{Rank: 0, Stat: 0.9, Crit: 0.4, Rejected: true}}}}}
	ev := JournalEvent{Type: "alarm", Device: "dev-1", Session: 7, Shard: "s03", Alarm: dump}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := ev
		j.AppendEvent(&e)
	}
}
