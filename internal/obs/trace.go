package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// chromeEvent is the JSON shape of one Chrome trace-event. Timestamps
// and durations are microseconds (the trace-event convention); Perfetto
// and chrome://tracing load the {"traceEvents": [...]} container format.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level trace-event JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace renders every recorded event as Chrome trace-event
// JSON. The output loads directly in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Safe on a nil recorder (writes an empty trace).
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	trace := chromeTrace{
		TraceEvents:     []chromeEvent{},
		DisplayTimeUnit: "ms",
	}
	if r != nil {
		r.mu.Lock()
		events := append([]event(nil), r.events...)
		dropped := r.dropped
		r.mu.Unlock()
		trace.TraceEvents = make([]chromeEvent, 0, len(events))
		for _, e := range events {
			ce := chromeEvent{
				Name: e.name,
				Cat:  e.cat,
				Ph:   string(rune(e.ph)),
				TS:   float64(e.ts) / 1e3,
				PID:  1,
				TID:  e.tid,
			}
			switch e.ph {
			case phaseComplete:
				ce.Dur = float64(e.dur) / 1e3
			case phaseInstant:
				ce.S = "t" // thread-scoped instant
			case phaseMeta:
				ce.TS = 0
				ce.Args = map[string]any{"name": e.arg}
			}
			trace.TraceEvents = append(trace.TraceEvents, ce)
		}
		if dropped > 0 {
			trace.OtherData = map[string]any{"dropped_events": dropped}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&trace)
}

// WriteChromeTraceFile writes the trace to a file (0644).
func (r *Recorder) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: trace out: %w", err)
	}
	if err := r.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: trace out: %w", err)
	}
	return f.Close()
}
