package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// PromWriter renders itself in Prometheus text exposition format;
// metrics.Registry implements it (obs stays stdlib-only by depending on
// the interface rather than the package).
type PromWriter interface {
	WritePrometheus(w io.Writer, namespace string)
}

// SessionLister exposes a live listing of detector sessions; the fleet
// server implements it (obs stays stdlib-only by depending on the
// interface rather than the fleet package).
type SessionLister interface {
	FleetSessions() any
}

// SessionPager is the paged variant of SessionLister for fleets too
// large to dump in one response. FleetSessionsPage returns one listing
// page plus the listing total and live-session count (surfaced as
// response headers). The fleet server implements it; a plain
// SessionLister still works, minus paging.
type SessionPager interface {
	FleetSessionsPage(offset, limit int) (page any, total, active int)
}

// DefaultFleetPageLimit is /eddie/fleet's page size when the request
// has no explicit ?limit=.
const DefaultFleetPageLimit = 1000

// MaxFleetPageLimit caps an explicit ?limit= (one page stays a bounded
// amount of JSON no matter what the query says).
const MaxFleetPageLimit = 10000

// ServeState bundles everything the debug mux exposes. Any field may be
// nil; the corresponding endpoint then reports 404/empty.
type ServeState struct {
	// Metrics serves /metrics in Prometheus text format.
	Metrics PromWriter
	// Namespace prefixes every exposed metric name ("eddie" if empty).
	Namespace string
	// Flight serves /eddie/last-alarm and /eddie/flight.
	Flight *FlightRecorder
	// Trace serves /eddie/trace (a live Chrome trace snapshot).
	Trace *Recorder
	// Fleet serves /eddie/fleet (the live device-session listing).
	Fleet SessionLister
	// Health serves /eddie/healthz (the SLO burn-rate verdict).
	Health *SLOTracker
	// Alarms serves /eddie/alarms (live alarm SSE streaming).
	Alarms *AlarmStream
}

// HealthStatuser lets the fleet object supply its own health verdict in
// addition to the SLO tracker's — the coordinator derives one from ring
// membership (no live backend = overloaded, partial fleet = degraded).
// The worse of the two verdicts wins, so healthz fails closed whichever
// plane sees the trouble first.
type HealthStatuser interface {
	HealthStatus() string
}

// healthSeverity orders verdicts for combining independent sources.
var healthSeverity = map[string]int{
	HealthReady:      0,
	HealthDegraded:   1,
	HealthOverloaded: 2,
	HealthDraining:   3,
}

// FleetHealth augments the healthz verdict with fleet lifecycle state;
// the fleet server implements it (obs stays stdlib-only by depending on
// the interface). A draining server reports HealthDraining regardless
// of burn rates.
type FleetHealth interface {
	Draining() bool
	ActiveSessions() (active, max int)
}

// NewMux builds the detector's debug HTTP mux:
//
//	/debug/vars        expvar JSON (includes registries Publish-ed there)
//	/debug/pprof/*     runtime profiling
//	/metrics           Prometheus text exposition of the registry
//	/eddie/last-alarm  latest flight-recorder alarm dump (JSON)
//	/eddie/flight      current flight-recorder ring contents (JSON)
//	/eddie/fleet       live device-session listing (JSON)
//	/eddie/healthz     SLO burn-rate health verdict (JSON; 503 when
//	                   overloaded or draining)
//	/eddie/alarms      live alarm stream (Server-Sent Events)
//	/eddie/trace       Chrome trace-event JSON of the spans so far
//	/                  plain-text index of the above
func NewMux(s ServeState) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ns := s.Namespace
	if ns == "" {
		ns = "eddie"
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if s.Metrics == nil {
			http.Error(w, "no metrics registry attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.Metrics.WritePrometheus(w, ns)
	})

	mux.HandleFunc("/eddie/last-alarm", func(w http.ResponseWriter, r *http.Request) {
		if s.Flight == nil {
			http.Error(w, "no flight recorder attached", http.StatusNotFound)
			return
		}
		b, err := s.Flight.LastAlarmJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if s.Flight.LastAlarm() == nil {
			w.WriteHeader(http.StatusNotFound)
		}
		w.Write(append(b, '\n'))
	})

	mux.HandleFunc("/eddie/flight", func(w http.ResponseWriter, r *http.Request) {
		if s.Flight == nil {
			http.Error(w, "no flight recorder attached", http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]any{
			"seen":    s.Flight.Seen(),
			"alarms":  s.Flight.Alarms(),
			"records": s.Flight.Recent(),
		})
	})

	mux.HandleFunc("/eddie/fleet", func(w http.ResponseWriter, r *http.Request) {
		if s.Fleet == nil {
			http.Error(w, "no fleet server attached", http.StatusNotFound)
			return
		}
		pager, ok := s.Fleet.(SessionPager)
		if !ok {
			writeJSON(w, s.Fleet.FleetSessions())
			return
		}
		offset, err := queryInt(r, "offset", 0)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		limit, err := queryInt(r, "limit", DefaultFleetPageLimit)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if offset < 0 || limit <= 0 {
			http.Error(w, "offset must be >= 0 and limit > 0", http.StatusBadRequest)
			return
		}
		if limit > MaxFleetPageLimit {
			limit = MaxFleetPageLimit
		}
		page, total, active := pager.FleetSessionsPage(offset, limit)
		w.Header().Set("X-Eddie-Fleet-Total", strconv.Itoa(total))
		w.Header().Set("X-Eddie-Fleet-Active", strconv.Itoa(active))
		writeJSON(w, page)
	})

	mux.HandleFunc("/eddie/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := s.Health.Health() // nil-safe: ready with empty windows
		body := map[string]any{
			"status":    h.Status,
			"budget_ms": h.BudgetMillis,
			"objective": h.Objective,
			"short":     h.Short,
			"long":      h.Long,
		}
		if hs, ok := s.Fleet.(HealthStatuser); ok {
			if st := hs.HealthStatus(); healthSeverity[st] > healthSeverity[h.Status] {
				h.Status = st
				body["status"] = st
			}
		}
		if fh, ok := s.Fleet.(FleetHealth); ok {
			if fh.Draining() {
				h.Status = HealthDraining
				body["status"] = HealthDraining
			}
			active, limit := fh.ActiveSessions()
			body["sessions_active"] = active
			body["sessions_max"] = limit
		}
		code := http.StatusOK
		if h.Status == HealthOverloaded || h.Status == HealthDraining {
			// 503 lets load balancers and the future coordinator act on
			// the verdict without parsing the body; degraded stays 200
			// (the node still serves, it is a paging signal not an
			// eviction one).
			code = http.StatusServiceUnavailable
		}
		b, err := json.MarshalIndent(body, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		w.Write(append(b, '\n'))
	})

	mux.HandleFunc("/eddie/alarms", handleAlarmSSE(s.Alarms))

	mux.HandleFunc("/eddie/trace", func(w http.ResponseWriter, r *http.Request) {
		if s.Trace == nil {
			http.Error(w, "no trace recorder attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		s.Trace.WriteChromeTrace(w)
	})

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "eddie debug server\n\n"+
			"/debug/vars        expvar JSON\n"+
			"/debug/pprof/      profiling\n"+
			"/metrics           Prometheus text exposition\n"+
			"/eddie/last-alarm  latest alarm dump with decision provenance\n"+
			"/eddie/flight      flight-recorder ring contents\n"+
			"/eddie/fleet       live device-session listing\n"+
			"/eddie/healthz     SLO burn-rate health verdict\n"+
			"/eddie/alarms      live alarm stream (Server-Sent Events)\n"+
			"/eddie/trace       Chrome trace-event JSON (load in Perfetto)\n")
	})
	return mux
}

// queryInt parses an optional integer query parameter.
func queryInt(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %v", name, err)
	}
	return n, nil
}

// writeJSON writes v as indented JSON with the right content type.
func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}
