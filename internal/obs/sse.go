package obs

import (
	"fmt"
	"net/http"
	"sync"
	"time"
)

// DefaultSubscriberQueue is the per-subscriber buffered-event capacity
// when AlarmStream.QueueLen is zero.
const DefaultSubscriberQueue = 64

// AlarmStream fans out alarm events to live subscribers (the
// /eddie/alarms SSE endpoint). Each subscriber owns a bounded queue;
// when a slow subscriber's queue fills, its oldest queued event is
// dropped to make room for the new one (drop-slowest: a live tail
// should show the latest alarms, and the journal — not the stream — is
// the durable record). A nil *AlarmStream no-ops, and Publish never
// blocks on subscribers.
type AlarmStream struct {
	// QueueLen is the per-subscriber queue capacity (default
	// DefaultSubscriberQueue). Set before the first Subscribe.
	QueueLen int

	mu      sync.Mutex
	subs    map[int]chan []byte
	nextID  int
	closed  bool
	dropped int64
	pubs    int64
}

// NewAlarmStream creates an empty stream.
func NewAlarmStream() *AlarmStream { return &AlarmStream{} }

// Subscribe registers a new subscriber and returns its event channel
// and a cancel function (idempotent; closes the channel). On a nil or
// closed stream the channel is already closed.
func (a *AlarmStream) Subscribe() (<-chan []byte, func()) {
	ch := make(chan []byte, func() int {
		if a == nil || a.QueueLen <= 0 {
			return DefaultSubscriberQueue
		}
		return a.QueueLen
	}())
	if a == nil {
		close(ch)
		return ch, func() {}
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	if a.subs == nil {
		a.subs = map[int]chan []byte{}
	}
	id := a.nextID
	a.nextID++
	a.subs[id] = ch
	a.mu.Unlock()

	var once sync.Once
	cancel := func() {
		once.Do(func() {
			a.mu.Lock()
			if _, ok := a.subs[id]; ok {
				delete(a.subs, id)
				close(ch)
			}
			a.mu.Unlock()
		})
	}
	return ch, cancel
}

// Publish delivers one pre-encoded event to every subscriber without
// blocking: a full subscriber queue evicts its oldest event first.
// Publishing happens under the stream lock, so it is the only writer
// to the channels and the evict-then-retry cannot race another send.
// Safe on a nil stream.
func (a *AlarmStream) Publish(event []byte) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return
	}
	a.pubs++
	for _, ch := range a.subs {
		select {
		case ch <- event:
		default:
			// Queue full: drop the slowest subscriber's oldest event.
			select {
			case <-ch:
				a.dropped++
			default:
			}
			select {
			case ch <- event:
			default:
				a.dropped++
			}
		}
	}
}

// Stats returns lifetime published/dropped counts and the live
// subscriber count. Safe on a nil stream.
func (a *AlarmStream) Stats() (published, dropped int64, subscribers int) {
	if a == nil {
		return 0, 0, 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pubs, a.dropped, len(a.subs)
}

// Close terminates the stream: every subscriber channel is closed and
// later Publish/Subscribe calls no-op. Safe on a nil stream and
// idempotent.
func (a *AlarmStream) Close() {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return
	}
	a.closed = true
	for id, ch := range a.subs {
		delete(a.subs, id)
		close(ch)
	}
}

// sseHeartbeat is how often the SSE handler emits a comment line to
// keep idle connections alive (and detect dead peers).
var sseHeartbeat = 15 * time.Second

// handleAlarmSSE serves one Server-Sent Events subscriber: each
// published alarm event becomes one `data:` frame; comment heartbeats
// keep the connection alive between alarms. The handler exits when the
// client disconnects or the stream closes (server drain).
func handleAlarmSSE(a *AlarmStream) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if a == nil {
			http.Error(w, "alarm streaming not enabled", http.StatusNotFound)
			return
		}
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		h := w.Header()
		h.Set("Content-Type", "text/event-stream")
		h.Set("Cache-Control", "no-store")
		h.Set("X-Accel-Buffering", "no")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, ": eddie alarm stream\n\n")
		fl.Flush()

		ch, cancel := a.Subscribe()
		defer cancel()
		hb := time.NewTicker(sseHeartbeat)
		defer hb.Stop()
		for {
			select {
			case <-r.Context().Done():
				return
			case <-hb.C:
				if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
					return
				}
				fl.Flush()
			case ev, ok := <-ch:
				if !ok {
					fmt.Fprint(w, "event: shutdown\ndata: {}\n\n")
					fl.Flush()
					return
				}
				if _, err := fmt.Fprintf(w, "event: alarm\ndata: %s\n\n", ev); err != nil {
					return
				}
				fl.Flush()
			}
		}
	}
}
