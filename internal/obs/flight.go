package obs

import (
	"encoding/json"
	"sync"
)

// Transition names the monitor state-machine edge taken on one window.
const (
	// TransStay: the monitor stayed in its current region.
	TransStay = "stay"
	// TransSwitch: the monitor moved to a successor region.
	TransSwitch = "switch"
	// TransRelock: the monitor re-locked globally after a stuck alarm.
	TransRelock = "relock"
	// TransBlind: the current region is blind (no peaks to test).
	TransBlind = "blind"
)

// RankKS is the per-peak-rank evidence of one region-level K-S
// evaluation: the two-sample K-S statistic D for that rank against the
// best training mode, the critical value it was compared to (cAlpha
// scaled by the two sample sizes), and the verdict.
type RankKS struct {
	Rank     int     `json:"rank"`
	Stat     float64 `json:"stat"`
	Crit     float64 `json:"crit"`
	Rejected bool    `json:"rejected"`
}

// WindowRecord is the decision provenance of one monitored window — the
// evidence behind the monitor's one-bit verdict, in the terms of the
// paper's §4: which region was tested at what group size n, how each
// peak rank's K-S test came out against the cAlpha threshold, and which
// state-machine transition the monitor took.
type WindowRecord struct {
	// Window is the STS index within the monitored stream.
	Window int `json:"window"`
	// TimeSec is the window's start time within its run.
	TimeSec float64 `json:"time_sec"`
	// Region is the region under test when the window arrived (before
	// any transition this window caused).
	Region int `json:"region"`
	// Tested reports whether a K-S evaluation ran: false during the
	// post-switch warm-up and in blind regions.
	Tested bool `json:"tested"`
	// GroupSize is the number of windows jointly tested (the n of §4.2);
	// zero when untested.
	GroupSize int `json:"group_size"`
	// Burst marks evidence from the short-horizon burst test rather than
	// the region's trained group size.
	Burst bool `json:"burst,omitempty"`
	// CAlpha is the Kolmogorov inverse at the model's confidence level;
	// each rank's Crit is CAlpha scaled by its sample sizes.
	CAlpha float64 `json:"c_alpha"`
	// BestMode is the index of the best-matching training mode (-1 when
	// untested).
	BestMode int `json:"best_mode"`
	// RejFrac is the best mode's rank-rejection fraction (the region
	// test statistic, in [0,1]).
	RejFrac float64 `json:"rej_frac"`
	// CountOut reports that the peak-count/energy bounds test failed,
	// which rejects before any rank is tested.
	CountOut bool `json:"count_out,omitempty"`
	// Ranks holds the per-rank K-S evidence for the best mode.
	Ranks []RankKS `json:"ranks,omitempty"`
	// RejectedRanks lists the rank indices that rejected (redundant with
	// Ranks, kept flat for quick reading of an alarm dump).
	RejectedRanks []int `json:"rejected_ranks,omitempty"`
	// Rejected / Flagged mirror the monitor's WindowOutcome.
	Rejected bool `json:"rejected"`
	Flagged  bool `json:"flagged"`
	// Streak is the consecutive-rejection streak after this window.
	Streak int `json:"streak"`
	// Transition is the state-machine edge taken (TransStay, TransSwitch,
	// TransRelock, TransBlind).
	Transition string `json:"transition"`
	// SwitchTo is the destination region of a switch/relock (-1 if none).
	SwitchTo int `json:"switch_to"`
	// Reported is true when this window fired an anomaly report.
	Reported bool `json:"reported,omitempty"`
}

// CopyEvidence deep-copies the evaluation evidence of src into r,
// leaving the window identity fields (Window, TimeSec, Region,
// Transition, ...) alone. The monitor uses it to promote burst-test
// evidence into the decision record when the short-horizon test is the
// decisive one.
func (r *WindowRecord) CopyEvidence(src *WindowRecord) {
	r.Tested = src.Tested
	r.GroupSize = src.GroupSize
	r.Burst = src.Burst
	r.BestMode = src.BestMode
	r.RejFrac = src.RejFrac
	r.CountOut = src.CountOut
	r.Ranks = append(r.Ranks[:0], src.Ranks...)
	r.RejectedRanks = append(r.RejectedRanks[:0], src.RejectedRanks...)
}

// AlarmDump is the flight recorder's evidence package for one fired
// report: the alarm header plus the buffered window records leading up
// to (and including) the alarm window.
type AlarmDump struct {
	// Alarm counts fired reports since the recorder was created (1 = the
	// first).
	Alarm int `json:"alarm"`
	// Window / TimeSec / Region / Streak identify the firing window.
	Window  int     `json:"window"`
	TimeSec float64 `json:"time_sec"`
	Region  int     `json:"region"`
	Streak  int     `json:"streak"`
	// RejectedRanks is the firing window's rejecting rank list, repeated
	// from its record for quick inspection.
	RejectedRanks []int `json:"rejected_ranks"`
	// Records is the flight-recorder contents, oldest first; the last
	// entry is the alarm window itself.
	Records []WindowRecord `json:"records"`
}

// DefaultFlightDepth is the number of window records the flight
// recorder retains when no depth is given.
const DefaultFlightDepth = 64

// FlightRecorder keeps the last N window records in a ring and
// snapshots them into an AlarmDump when a report fires, so a detection
// always comes with its evidence attached. A nil *FlightRecorder is the
// disabled state: Record and Alarm are no-ops, and the monitor's
// decision loop stays allocation-free.
type FlightRecorder struct {
	mu      sync.Mutex
	depth   int
	ring    []WindowRecord
	seen    int
	alarms  int
	last    *AlarmDump
	onAlarm func(*AlarmDump)
}

// NewFlightRecorder creates a recorder retaining the last depth window
// records (DefaultFlightDepth if depth <= 0).
func NewFlightRecorder(depth int) *FlightRecorder {
	if depth <= 0 {
		depth = DefaultFlightDepth
	}
	return &FlightRecorder{depth: depth, ring: make([]WindowRecord, 0, depth)}
}

// Record buffers one window's provenance. The record is deep-copied
// (the monitor reuses its scratch record and slices across windows).
// Safe on a nil recorder.
func (f *FlightRecorder) Record(rec *WindowRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	cp := *rec
	cp.Ranks = append([]RankKS(nil), rec.Ranks...)
	cp.RejectedRanks = append([]int(nil), rec.RejectedRanks...)
	if len(f.ring) < f.depth {
		f.ring = append(f.ring, cp)
	} else {
		f.ring[f.seen%f.depth] = cp
	}
	f.seen++
}

// recentLocked returns the buffered records oldest-first. Caller holds
// f.mu. Stored records own their slices and are never mutated in place,
// so sharing their backing arrays with the snapshot is safe.
func (f *FlightRecorder) recentLocked() []WindowRecord {
	out := make([]WindowRecord, 0, len(f.ring))
	start := 0
	if f.seen > f.depth {
		start = f.seen % f.depth
	}
	for i := 0; i < len(f.ring); i++ {
		out = append(out, f.ring[(start+i)%len(f.ring)])
	}
	return out
}

// Recent returns a copy of the buffered window records, oldest first.
// Nil-safe (returns nil).
func (f *FlightRecorder) Recent() []WindowRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.recentLocked()
}

// Seen returns how many records were ever pushed (including those the
// ring has since evicted).
func (f *FlightRecorder) Seen() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seen
}

// SetOnAlarm installs a hook invoked with each alarm dump right after
// it is taken (outside the recorder's lock). The fleet server uses it
// to journal and stream alarms the moment they fire; the dump is
// immutable, so the hook may retain it. Safe on a nil recorder (no-op).
// Not safe to call concurrently with Alarm; install before feeding.
func (f *FlightRecorder) SetOnAlarm(fn func(*AlarmDump)) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.onAlarm = fn
	f.mu.Unlock()
}

// Alarm snapshots the ring into the last-alarm dump. The monitor calls
// it right after Record-ing the firing window, so the dump's final
// record is the alarm window itself. Safe on a nil recorder.
func (f *FlightRecorder) Alarm(window int, timeSec float64, region, streak int, rejectedRanks []int) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.alarms++
	dump := &AlarmDump{
		Alarm:         f.alarms,
		Window:        window,
		TimeSec:       timeSec,
		Region:        region,
		Streak:        streak,
		RejectedRanks: append([]int(nil), rejectedRanks...),
		Records:       f.recentLocked(),
	}
	f.last = dump
	hook := f.onAlarm
	f.mu.Unlock()
	if hook != nil {
		hook(dump)
	}
}

// Alarms returns how many alarm dumps were taken.
func (f *FlightRecorder) Alarms() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.alarms
}

// LastAlarm returns the most recent alarm dump, or nil if no report has
// fired. The dump is immutable once taken.
func (f *FlightRecorder) LastAlarm() *AlarmDump {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.last
}

// LastAlarmJSON renders the last alarm dump as indented JSON ("null"
// when no alarm has fired).
func (f *FlightRecorder) LastAlarmJSON() ([]byte, error) {
	return json.MarshalIndent(f.LastAlarm(), "", "  ")
}
