package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// stubProm is a minimal PromWriter for mux tests (the real implementation
// lives in internal/metrics, which obs must not import).
type stubProm struct{}

func (stubProm) WritePrometheus(w io.Writer, namespace string) {
	fmt.Fprintf(w, "# TYPE %s_up counter\n%s_up 1\n", namespace, namespace)
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", path, err)
	}
	return resp.StatusCode, string(b), resp.Header.Get("Content-Type")
}

func TestMuxEmptyState(t *testing.T) {
	srv := httptest.NewServer(NewMux(ServeState{}))
	defer srv.Close()

	if code, body, _ := get(t, srv, "/"); code != 200 || !strings.Contains(body, "eddie debug server") {
		t.Errorf("index: code %d body %q", code, body)
	}
	if code, _, _ := get(t, srv, "/nope"); code != 404 {
		t.Errorf("unknown path code %d, want 404", code)
	}
	for _, path := range []string{"/metrics", "/eddie/last-alarm", "/eddie/flight", "/eddie/trace", "/eddie/fleet"} {
		if code, _, _ := get(t, srv, path); code != 404 {
			t.Errorf("%s with nil state: code %d, want 404", path, code)
		}
	}
	if code, body, _ := get(t, srv, "/debug/vars"); code != 200 || !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Errorf("/debug/vars: code %d body %q", code, body)
	}
	if code, _, _ := get(t, srv, "/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/: code %d, want 200", code)
	}
}

func TestMuxFullState(t *testing.T) {
	rec := NewRecorder()
	rec.Track("stage").Start("span").End()
	fl := NewFlightRecorder(8)
	fl.Record(&WindowRecord{Window: 0, Region: 2})
	srv := httptest.NewServer(NewMux(ServeState{
		Metrics: stubProm{},
		Flight:  fl,
		Trace:   rec,
	}))
	defer srv.Close()

	code, body, ct := get(t, srv, "/metrics")
	if code != 200 || !strings.Contains(body, "eddie_up 1") {
		t.Errorf("/metrics: code %d body %q", code, body)
	}
	if !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type %q", ct)
	}

	// No alarm yet: JSON null with 404.
	code, body, ct = get(t, srv, "/eddie/last-alarm")
	if code != 404 || strings.TrimSpace(body) != "null" || !strings.Contains(ct, "json") {
		t.Errorf("pre-alarm last-alarm: code %d body %q ct %q", code, body, ct)
	}

	fl.Record(&WindowRecord{Window: 1, Region: 2, Reported: true, RejectedRanks: []int{0, 3}})
	fl.Alarm(1, 0.5, 2, 3, []int{0, 3})
	code, body, _ = get(t, srv, "/eddie/last-alarm")
	if code != 200 {
		t.Fatalf("last-alarm code %d, want 200", code)
	}
	var dump AlarmDump
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("last-alarm not JSON: %v", err)
	}
	if dump.Window != 1 || len(dump.RejectedRanks) != 2 || len(dump.Records) != 2 {
		t.Errorf("alarm dump %+v", dump)
	}

	code, body, _ = get(t, srv, "/eddie/flight")
	if code != 200 {
		t.Fatalf("flight code %d", code)
	}
	var flight struct {
		Seen    int            `json:"seen"`
		Alarms  int            `json:"alarms"`
		Records []WindowRecord `json:"records"`
	}
	if err := json.Unmarshal([]byte(body), &flight); err != nil {
		t.Fatalf("flight not JSON: %v", err)
	}
	if flight.Seen != 2 || flight.Alarms != 1 || len(flight.Records) != 2 {
		t.Errorf("flight state %+v", flight)
	}

	code, body, _ = get(t, srv, "/eddie/trace")
	if code != 200 {
		t.Fatalf("trace code %d", code)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	if len(tr.TraceEvents) != 2 { // meta + span
		t.Errorf("trace has %d events, want 2", len(tr.TraceEvents))
	}
}

// stubFleet is a minimal SessionLister (the real one is the fleet
// server, which obs must not import).
type stubFleet struct{}

func (stubFleet) FleetSessions() any {
	return map[string]any{"active": 3, "max": 16, "draining": false}
}

func TestMuxFleetListing(t *testing.T) {
	srv := httptest.NewServer(NewMux(ServeState{Fleet: stubFleet{}}))
	defer srv.Close()

	code, body, ct := get(t, srv, "/eddie/fleet")
	if code != 200 || !strings.Contains(ct, "json") {
		t.Fatalf("/eddie/fleet: code %d ct %q", code, ct)
	}
	var got struct {
		Active   int  `json:"active"`
		Max      int  `json:"max"`
		Draining bool `json:"draining"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("fleet listing not JSON: %v", err)
	}
	if got.Active != 3 || got.Max != 16 || got.Draining {
		t.Errorf("fleet listing %+v", got)
	}
}

func TestMuxNamespace(t *testing.T) {
	srv := httptest.NewServer(NewMux(ServeState{Metrics: stubProm{}, Namespace: "custom"}))
	defer srv.Close()
	if _, body, _ := get(t, srv, "/metrics"); !strings.Contains(body, "custom_up 1") {
		t.Errorf("namespace not forwarded: %q", body)
	}
}
