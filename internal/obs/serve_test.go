package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// stubProm is a minimal PromWriter for mux tests (the real implementation
// lives in internal/metrics, which obs must not import).
type stubProm struct{}

func (stubProm) WritePrometheus(w io.Writer, namespace string) {
	fmt.Fprintf(w, "# TYPE %s_up counter\n%s_up 1\n", namespace, namespace)
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", path, err)
	}
	return resp.StatusCode, string(b), resp.Header.Get("Content-Type")
}

func TestMuxEmptyState(t *testing.T) {
	srv := httptest.NewServer(NewMux(ServeState{}))
	defer srv.Close()

	if code, body, _ := get(t, srv, "/"); code != 200 || !strings.Contains(body, "eddie debug server") {
		t.Errorf("index: code %d body %q", code, body)
	}
	if code, _, _ := get(t, srv, "/nope"); code != 404 {
		t.Errorf("unknown path code %d, want 404", code)
	}
	for _, path := range []string{"/metrics", "/eddie/last-alarm", "/eddie/flight", "/eddie/trace", "/eddie/fleet"} {
		if code, _, _ := get(t, srv, path); code != 404 {
			t.Errorf("%s with nil state: code %d, want 404", path, code)
		}
	}
	if code, body, _ := get(t, srv, "/debug/vars"); code != 200 || !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Errorf("/debug/vars: code %d body %q", code, body)
	}
	if code, _, _ := get(t, srv, "/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/: code %d, want 200", code)
	}
}

func TestMuxFullState(t *testing.T) {
	rec := NewRecorder()
	rec.Track("stage").Start("span").End()
	fl := NewFlightRecorder(8)
	fl.Record(&WindowRecord{Window: 0, Region: 2})
	srv := httptest.NewServer(NewMux(ServeState{
		Metrics: stubProm{},
		Flight:  fl,
		Trace:   rec,
	}))
	defer srv.Close()

	code, body, ct := get(t, srv, "/metrics")
	if code != 200 || !strings.Contains(body, "eddie_up 1") {
		t.Errorf("/metrics: code %d body %q", code, body)
	}
	if !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type %q", ct)
	}

	// No alarm yet: JSON null with 404.
	code, body, ct = get(t, srv, "/eddie/last-alarm")
	if code != 404 || strings.TrimSpace(body) != "null" || !strings.Contains(ct, "json") {
		t.Errorf("pre-alarm last-alarm: code %d body %q ct %q", code, body, ct)
	}

	fl.Record(&WindowRecord{Window: 1, Region: 2, Reported: true, RejectedRanks: []int{0, 3}})
	fl.Alarm(1, 0.5, 2, 3, []int{0, 3})
	code, body, _ = get(t, srv, "/eddie/last-alarm")
	if code != 200 {
		t.Fatalf("last-alarm code %d, want 200", code)
	}
	var dump AlarmDump
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("last-alarm not JSON: %v", err)
	}
	if dump.Window != 1 || len(dump.RejectedRanks) != 2 || len(dump.Records) != 2 {
		t.Errorf("alarm dump %+v", dump)
	}

	code, body, _ = get(t, srv, "/eddie/flight")
	if code != 200 {
		t.Fatalf("flight code %d", code)
	}
	var flight struct {
		Seen    int            `json:"seen"`
		Alarms  int            `json:"alarms"`
		Records []WindowRecord `json:"records"`
	}
	if err := json.Unmarshal([]byte(body), &flight); err != nil {
		t.Fatalf("flight not JSON: %v", err)
	}
	if flight.Seen != 2 || flight.Alarms != 1 || len(flight.Records) != 2 {
		t.Errorf("flight state %+v", flight)
	}

	code, body, _ = get(t, srv, "/eddie/trace")
	if code != 200 {
		t.Fatalf("trace code %d", code)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	if len(tr.TraceEvents) != 2 { // meta + span
		t.Errorf("trace has %d events, want 2", len(tr.TraceEvents))
	}
}

// stubFleet is a minimal SessionLister (the real one is the fleet
// server, which obs must not import).
type stubFleet struct{}

func (stubFleet) FleetSessions() any {
	return map[string]any{"active": 3, "max": 16, "draining": false}
}

func TestMuxFleetListing(t *testing.T) {
	srv := httptest.NewServer(NewMux(ServeState{Fleet: stubFleet{}}))
	defer srv.Close()

	code, body, ct := get(t, srv, "/eddie/fleet")
	if code != 200 || !strings.Contains(ct, "json") {
		t.Fatalf("/eddie/fleet: code %d ct %q", code, ct)
	}
	var got struct {
		Active   int  `json:"active"`
		Max      int  `json:"max"`
		Draining bool `json:"draining"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("fleet listing not JSON: %v", err)
	}
	if got.Active != 3 || got.Max != 16 || got.Draining {
		t.Errorf("fleet listing %+v", got)
	}
}

// stubPagedFleet implements SessionPager on top of a fixed session
// list, recording the offset/limit it was asked for.
type stubPagedFleet struct {
	total, active       int
	gotOffset, gotLimit int
}

func (s *stubPagedFleet) FleetSessions() any {
	page, _, _ := s.FleetSessionsPage(0, DefaultFleetPageLimit)
	return page
}

func (s *stubPagedFleet) FleetSessionsPage(offset, limit int) (any, int, int) {
	s.gotOffset, s.gotLimit = offset, limit
	n := s.total - offset
	if n < 0 {
		n = 0
	}
	if n > limit {
		n = limit
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = offset + i
	}
	return map[string]any{"sessions": ids, "offset": offset, "limit": limit}, s.total, s.active
}

func TestMuxFleetPaging(t *testing.T) {
	fl := &stubPagedFleet{total: 2500, active: 40}
	srv := httptest.NewServer(NewMux(ServeState{Fleet: fl}))
	defer srv.Close()

	page := func(t *testing.T, path string) (sessions []int, offset, limit int) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: code %d", path, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Eddie-Fleet-Total"); got != "2500" {
			t.Errorf("X-Eddie-Fleet-Total %q, want 2500", got)
		}
		if got := resp.Header.Get("X-Eddie-Fleet-Active"); got != "40" {
			t.Errorf("X-Eddie-Fleet-Active %q, want 40", got)
		}
		var body struct {
			Sessions []int `json:"sessions"`
			Offset   int   `json:"offset"`
			Limit    int   `json:"limit"`
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(b, &body); err != nil {
			t.Fatalf("GET %s: not JSON: %v", path, err)
		}
		return body.Sessions, body.Offset, body.Limit
	}

	// Default page: offset 0, the default limit.
	sessions, offset, limit := page(t, "/eddie/fleet")
	if offset != 0 || limit != DefaultFleetPageLimit || len(sessions) != DefaultFleetPageLimit {
		t.Errorf("default page: offset %d limit %d len %d", offset, limit, len(sessions))
	}

	// Explicit window lands where asked.
	sessions, offset, limit = page(t, "/eddie/fleet?offset=2400&limit=50")
	if offset != 2400 || limit != 50 || len(sessions) != 50 || sessions[0] != 2400 {
		t.Errorf("explicit page: offset %d limit %d sessions %v...", offset, limit, sessions[:1])
	}

	// Past the end: empty page, headers still present.
	if sessions, _, _ = page(t, "/eddie/fleet?offset=99999"); len(sessions) != 0 {
		t.Errorf("past-the-end page has %d sessions", len(sessions))
	}

	// An oversized limit is clamped, not rejected.
	page(t, "/eddie/fleet?limit=999999")
	if fl.gotLimit != MaxFleetPageLimit {
		t.Errorf("oversized limit reached pager as %d, want clamp to %d", fl.gotLimit, MaxFleetPageLimit)
	}

	// Malformed and out-of-range parameters are a 400, not a panic or a
	// silent default.
	for _, q := range []string{"?offset=abc", "?limit=xyz", "?offset=-1", "?limit=0", "?limit=-5"} {
		resp, err := srv.Client().Get(srv.URL + "/eddie/fleet" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("GET %s: code %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestMuxNamespace(t *testing.T) {
	srv := httptest.NewServer(NewMux(ServeState{Metrics: stubProm{}, Namespace: "custom"}))
	defer srv.Close()
	if _, body, _ := get(t, srv, "/metrics"); !strings.Contains(body, "custom_up 1") {
		t.Errorf("namespace not forwarded: %q", body)
	}
}
