package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalRecover feeds arbitrary bytes to the journal recovery path
// as the contents of the final (possibly torn) journal file. Recovery
// must never error or panic on any input — corruption and truncation
// are expected states, not failures — and its accounting must stay
// consistent.
func FuzzJournalRecover(f *testing.F) {
	// Seeds: intact file, torn tail (mid-payload and mid-frame), corrupt
	// interior line, empty file, binary garbage, huge line, an alarm
	// event, and JSON of the wrong shape.
	f.Add([]byte(`{"seq":1,"t":123,"type":"connect","device":"a","session":1,"shard":"s00"}` + "\n"))
	f.Add([]byte(`{"seq":1,"t":123,"type":"connect"}` + "\n" + `{"seq":2,"t":124,"type":"disco`))
	f.Add([]byte(`{"seq":1,"t":123,"type":"connect"}`)) // complete JSON, no frame
	f.Add([]byte(`{garbage` + "\n" + `{"seq":2,"t":1,"type":"drain"}` + "\n"))
	f.Add([]byte(""))
	f.Add([]byte("\x00\x01\xff\xfe\n\n\n"))
	f.Add(bytes.Repeat([]byte("x"), 1<<17))
	f.Add([]byte(`{"seq":3,"t":9,"type":"alarm","alarm":{"alarm":1,"window":4,"time_sec":0.5,"region":2,"streak":3,"rejected_ranks":[0],"records":[]}}` + "\n"))
	f.Add([]byte(`[1,2,3]` + "\n" + `"string"` + "\n" + `42` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		// An intact first file makes sure fuzzed tails never corrupt
		// recovery of earlier files.
		if err := os.WriteFile(filepath.Join(dir, journalFileName(0)),
			[]byte(`{"seq":1,"t":1,"type":"server_start"}`+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, journalFileName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := RecoverJournal(dir)
		if err != nil {
			t.Fatalf("recovery errored on fuzzed input: %v", err)
		}
		if rec.Files != 2 {
			t.Fatalf("Files = %d, want 2", rec.Files)
		}
		if len(rec.Events) < 1 {
			t.Fatal("intact first file lost")
		}
		if rec.Events[0].Type != "server_start" {
			t.Fatalf("first event %q, want server_start", rec.Events[0].Type)
		}
		if len(rec.Alarms) > len(rec.Events) {
			t.Fatalf("more alarms (%d) than events (%d)", len(rec.Alarms), len(rec.Events))
		}
		for _, a := range rec.Alarms {
			if a == nil {
				t.Fatal("nil alarm collected")
			}
		}
	})
}
