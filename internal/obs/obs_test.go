package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	tk := r.Track("anything")
	if tk.Enabled() {
		t.Error("track from nil recorder reports enabled")
	}
	sp := tk.Start("span")
	sp.End()
	tk.Instant("marker")
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Error("nil recorder reports nonzero counts")
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil recorder WriteChromeTrace: %v", err)
	}
	var tr struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("nil recorder trace is not JSON: %v", err)
	}
	if len(tr.TraceEvents) != 0 {
		t.Errorf("nil recorder trace has %d events, want 0", len(tr.TraceEvents))
	}
}

func TestRecorderSpansAndTrace(t *testing.T) {
	r := NewRecorder()
	tk := r.Track("stage-a")
	if !tk.Enabled() {
		t.Fatal("track not enabled")
	}
	sp := tk.Start("work")
	time.Sleep(time.Millisecond)
	sp.End()
	tk.Instant("marker")
	tk2 := r.Track("stage-b")
	sp = tk2.Start("other")
	sp.End()

	// 2 meta + 2 complete + 1 instant.
	if r.Len() != 5 {
		t.Fatalf("recorded %d events, want 5", r.Len())
	}

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int64          `json:"tid"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q, want ms", trace.DisplayTimeUnit)
	}
	byPh := map[string]int{}
	var sawSpan, sawMeta, sawInstant bool
	for _, e := range trace.TraceEvents {
		byPh[e.Ph]++
		switch {
		case e.Ph == "X" && e.Name == "work":
			sawSpan = true
			if e.Cat != "stage-a" {
				t.Errorf("span cat %q, want stage-a", e.Cat)
			}
			if e.Dur < 0.9e3 { // slept 1ms; dur is in microseconds
				t.Errorf("span dur %g µs, want >= ~1000", e.Dur)
			}
		case e.Ph == "M" && e.Name == "thread_name":
			sawMeta = true
			if e.Args["name"] != "stage-a" && e.Args["name"] != "stage-b" {
				t.Errorf("meta args %v", e.Args)
			}
		case e.Ph == "i":
			sawInstant = true
			if e.S != "t" {
				t.Errorf("instant scope %q, want t", e.S)
			}
		}
		if e.PID != 1 {
			t.Errorf("pid %d, want 1", e.PID)
		}
	}
	if !sawSpan || !sawMeta || !sawInstant {
		t.Errorf("missing event kinds: span=%v meta=%v instant=%v (counts %v)",
			sawSpan, sawMeta, sawInstant, byPh)
	}
}

func TestRecorderCapDrops(t *testing.T) {
	r := NewRecorderCap(3)
	tk := r.Track("t") // 1 meta event
	for i := 0; i < 5; i++ {
		tk.Start("s").End()
	}
	if r.Len() != 3 {
		t.Errorf("len %d, want cap 3", r.Len())
	}
	if r.Dropped() != 3 {
		t.Errorf("dropped %d, want 3", r.Dropped())
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dropped_events") {
		t.Error("trace otherData does not report dropped_events")
	}
}

func TestWriteChromeTraceFile(t *testing.T) {
	r := NewRecorder()
	r.Track("x").Start("y").End()
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := r.WriteChromeTraceFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatalf("trace file is not JSON: %v", err)
	}
	if _, ok := v["traceEvents"]; !ok {
		t.Error("trace file missing traceEvents")
	}
	if err := r.WriteChromeTraceFile(filepath.Join(path, "nope")); err == nil {
		t.Error("writing under a file path should fail")
	}
}

func TestNilFlightRecorderIsSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(&WindowRecord{Window: 1})
	f.Alarm(1, 0.5, 2, 3, []int{0})
	if f.Recent() != nil || f.Seen() != 0 || f.Alarms() != 0 || f.LastAlarm() != nil {
		t.Error("nil flight recorder not inert")
	}
	b, err := f.LastAlarmJSON()
	if err != nil || strings.TrimSpace(string(b)) != "null" {
		t.Errorf("nil LastAlarmJSON = %q, %v; want null", b, err)
	}
}

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(3)
	scratch := WindowRecord{}
	for i := 0; i < 5; i++ {
		scratch.Window = i
		scratch.Ranks = append(scratch.Ranks[:0], RankKS{Rank: i, Stat: float64(i)})
		scratch.RejectedRanks = append(scratch.RejectedRanks[:0], i)
		f.Record(&scratch)
	}
	if f.Seen() != 5 {
		t.Errorf("seen %d, want 5", f.Seen())
	}
	rec := f.Recent()
	if len(rec) != 3 {
		t.Fatalf("recent len %d, want 3", len(rec))
	}
	for i, want := range []int{2, 3, 4} {
		if rec[i].Window != want {
			t.Errorf("recent[%d].Window = %d, want %d (oldest first)", i, rec[i].Window, want)
		}
		// Deep copy: the scratch record's slices were reused.
		if len(rec[i].Ranks) != 1 || rec[i].Ranks[0].Rank != want {
			t.Errorf("recent[%d].Ranks = %v, want rank %d", i, rec[i].Ranks, want)
		}
		if len(rec[i].RejectedRanks) != 1 || rec[i].RejectedRanks[0] != want {
			t.Errorf("recent[%d].RejectedRanks = %v, want [%d]", i, rec[i].RejectedRanks, want)
		}
	}
}

func TestFlightRecorderDefaultDepth(t *testing.T) {
	f := NewFlightRecorder(0)
	for i := 0; i < DefaultFlightDepth+10; i++ {
		f.Record(&WindowRecord{Window: i})
	}
	if got := len(f.Recent()); got != DefaultFlightDepth {
		t.Errorf("default-depth ring holds %d, want %d", got, DefaultFlightDepth)
	}
}

func TestFlightRecorderAlarm(t *testing.T) {
	f := NewFlightRecorder(4)
	if f.LastAlarm() != nil {
		t.Fatal("fresh recorder has an alarm")
	}
	for i := 0; i < 6; i++ {
		f.Record(&WindowRecord{Window: i, Reported: i == 5})
	}
	f.Alarm(5, 1.25, 7, 3, []int{0, 2})
	a := f.LastAlarm()
	if a == nil {
		t.Fatal("no alarm dump")
	}
	if a.Alarm != 1 || a.Window != 5 || a.TimeSec != 1.25 || a.Region != 7 || a.Streak != 3 {
		t.Errorf("alarm header %+v wrong", a)
	}
	if len(a.RejectedRanks) != 2 || a.RejectedRanks[0] != 0 || a.RejectedRanks[1] != 2 {
		t.Errorf("alarm rejected ranks %v, want [0 2]", a.RejectedRanks)
	}
	if len(a.Records) != 4 || a.Records[len(a.Records)-1].Window != 5 {
		t.Errorf("alarm records %d entries ending at window %d; want 4 ending at 5",
			len(a.Records), a.Records[len(a.Records)-1].Window)
	}
	if f.Alarms() != 1 {
		t.Errorf("alarms %d, want 1", f.Alarms())
	}
	b, err := f.LastAlarmJSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded AlarmDump
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("alarm JSON invalid: %v", err)
	}
	if decoded.Window != 5 {
		t.Errorf("decoded alarm window %d, want 5", decoded.Window)
	}

	// A second alarm replaces the first.
	f.Alarm(9, 2, 7, 4, nil)
	if a2 := f.LastAlarm(); a2.Alarm != 2 || a2.Window != 9 {
		t.Errorf("second alarm %+v", f.LastAlarm())
	}
}

func TestCopyEvidence(t *testing.T) {
	src := WindowRecord{
		Window: 3, Region: 9, Transition: TransSwitch, // identity: must NOT copy
		Tested: true, GroupSize: 5, Burst: true, BestMode: 2, RejFrac: 0.5,
		CountOut:      true,
		Ranks:         []RankKS{{Rank: 1, Stat: 0.9, Crit: 0.5, Rejected: true}},
		RejectedRanks: []int{1},
	}
	dst := WindowRecord{Window: 7, Region: 1, Transition: TransStay}
	dst.CopyEvidence(&src)
	if dst.Window != 7 || dst.Region != 1 || dst.Transition != TransStay {
		t.Errorf("CopyEvidence touched identity fields: %+v", dst)
	}
	if !dst.Tested || dst.GroupSize != 5 || !dst.Burst || dst.BestMode != 2 ||
		dst.RejFrac != 0.5 || !dst.CountOut {
		t.Errorf("evidence fields not copied: %+v", dst)
	}
	if len(dst.Ranks) != 1 || dst.Ranks[0] != src.Ranks[0] {
		t.Errorf("ranks not copied: %v", dst.Ranks)
	}
	// Deep copy: mutating src must not affect dst.
	src.Ranks[0].Stat = 0
	if dst.Ranks[0].Stat != 0.9 {
		t.Error("CopyEvidence aliased the Ranks slice")
	}
}
