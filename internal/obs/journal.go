package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Fsync policies for the journal. The policy trades alarm durability
// against append latency; "interval" is the deployment default (at most
// FsyncInterval of events at risk on power loss, no fsync on the append
// path).
const (
	// FsyncAlways syncs after every append: nothing is ever lost, each
	// append pays a disk flush.
	FsyncAlways = "always"
	// FsyncInterval syncs from a background ticker.
	FsyncInterval = "interval"
	// FsyncNever leaves flushing to the OS page cache.
	FsyncNever = "never"
)

// JournalConfig configures a durable event journal.
type JournalConfig struct {
	// Dir is the journal directory (created if missing). Required.
	Dir string
	// MaxFileBytes rotates to a new numbered file when the current one
	// exceeds this size (default 64 MiB).
	MaxFileBytes int64
	// Fsync is one of FsyncAlways, FsyncInterval, FsyncNever (default
	// FsyncInterval).
	Fsync string
	// FsyncInterval is the background sync period under FsyncInterval
	// (default 1s).
	FsyncInterval time.Duration
}

func (c JournalConfig) withDefaults() (JournalConfig, error) {
	if c.Dir == "" {
		return c, fmt.Errorf("journal: Dir is required")
	}
	if c.MaxFileBytes <= 0 {
		c.MaxFileBytes = 64 << 20
	}
	switch c.Fsync {
	case "":
		c.Fsync = FsyncInterval
	case FsyncAlways, FsyncInterval, FsyncNever:
	default:
		return c, fmt.Errorf("journal: unknown fsync policy %q", c.Fsync)
	}
	if c.FsyncInterval <= 0 {
		c.FsyncInterval = time.Second
	}
	return c, nil
}

// JournalEvent is one journal line. Lifecycle events carry only the
// envelope; alarm events attach the full AlarmDump so the journal is a
// durable, audit-grade record of every alarm's evidence.
type JournalEvent struct {
	// Seq is the journal-assigned sequence number, monotone across
	// rotations within one process.
	Seq int64 `json:"seq"`
	// TimeUnixNano is the append wall-clock time.
	TimeUnixNano int64 `json:"t"`
	// Type is the event kind: "server_start", "server_stop", "connect",
	// "drain", "disconnect", "backpressure", "alarm".
	Type string `json:"type"`
	// Device / Session / Shard locate the event's origin in the fleet.
	Device  string `json:"device,omitempty"`
	Session int64  `json:"session,omitempty"`
	Shard   string `json:"shard,omitempty"`
	// Detail is free-form context (an error string, a drain reason).
	Detail string `json:"detail,omitempty"`
	// Alarm is the evidence package of an "alarm" event.
	Alarm *AlarmDump `json:"alarm,omitempty"`
}

// Journal is an append-only JSONL write-ahead log of fleet events:
// size-rotated numbered files, a configurable fsync policy, and
// crash-safe recovery (RecoverJournal) that tolerates a torn final
// line. A nil *Journal is the disabled state — every method no-ops —
// so callers thread it unconditionally.
//
// The lifecycle-event path (Event) is allocation-free after warm-up: it
// hand-encodes the line into a reusable buffer, because the fleet emits
// one per session transition and a 100k-session drain would otherwise
// allocate 100k JSON encoders. Alarm appends (AppendEvent) marshal with
// encoding/json — alarms are rare and carry nested evidence.
type Journal struct {
	cfg JournalConfig

	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	size    int64
	fileIdx int
	seq     int64
	buf     []byte // reusable line buffer for Event
	dirty   bool   // writes since last sync
	closed  bool

	stop chan struct{}
	done chan struct{}
}

// journalFileName renders the numbered journal file name.
func journalFileName(idx int) string {
	return fmt.Sprintf("journal-%06d.jsonl", idx)
}

// journalFileIndex parses a journal file name back to its index,
// returning -1 for non-journal files.
func journalFileIndex(name string) int {
	var idx int
	if _, err := fmt.Sscanf(name, "journal-%06d.jsonl", &idx); err != nil {
		return -1
	}
	if journalFileName(idx) != name {
		return -1
	}
	return idx
}

// OpenJournal opens (creating if needed) a journal in cfg.Dir. It never
// appends to an existing file — the previous file's tail may be torn
// from a crash — and instead starts a fresh file numbered one past the
// highest present.
func OpenJournal(cfg JournalConfig) (*Journal, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	next := 0
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	for _, e := range entries {
		if idx := journalFileIndex(e.Name()); idx >= next {
			next = idx + 1
		}
	}
	j := &Journal{
		cfg:     cfg,
		fileIdx: next,
		buf:     make([]byte, 0, 512),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if err := j.openFileLocked(); err != nil {
		return nil, err
	}
	if cfg.Fsync == FsyncInterval {
		go j.syncLoop()
	} else {
		close(j.done)
	}
	return j, nil
}

// openFileLocked opens the current numbered file for writing. Caller
// holds j.mu (or has exclusive access during construction).
func (j *Journal) openFileLocked() error {
	f, err := os.OpenFile(filepath.Join(j.cfg.Dir, journalFileName(j.fileIdx)),
		os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.f = f
	j.w = bufio.NewWriterSize(f, 1<<16)
	j.size = 0
	return nil
}

// syncLoop is the FsyncInterval background flusher.
func (j *Journal) syncLoop() {
	defer close(j.done)
	t := time.NewTicker(j.cfg.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			j.Sync()
		case <-j.stop:
			return
		}
	}
}

// Event appends one lifecycle event, stamping its sequence number and
// time. Allocation-free after warm-up (strings are hand-escaped into a
// reusable buffer). Safe on a nil journal.
func (j *Journal) Event(typ, device string, session int64, shard, detail string) {
	if j == nil {
		return
	}
	now := time.Now().UnixNano()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.seq++
	b := j.buf[:0]
	b = append(b, `{"seq":`...)
	b = strconv.AppendInt(b, j.seq, 10)
	b = append(b, `,"t":`...)
	b = strconv.AppendInt(b, now, 10)
	b = append(b, `,"type":`...)
	b = appendJSONString(b, typ)
	if device != "" {
		b = append(b, `,"device":`...)
		b = appendJSONString(b, device)
	}
	if session != 0 {
		b = append(b, `,"session":`...)
		b = strconv.AppendInt(b, session, 10)
	}
	if shard != "" {
		b = append(b, `,"shard":`...)
		b = appendJSONString(b, shard)
	}
	if detail != "" {
		b = append(b, `,"detail":`...)
		b = appendJSONString(b, detail)
	}
	b = append(b, '}', '\n')
	j.buf = b
	j.appendLocked(b)
}

// AppendEvent appends an arbitrary event (the alarm path), stamping Seq
// and TimeUnixNano in place. Returns the assigned sequence number (0 on
// a nil or closed journal).
func (j *Journal) AppendEvent(ev *JournalEvent) int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0
	}
	j.seq++
	ev.Seq = j.seq
	if ev.TimeUnixNano == 0 {
		ev.TimeUnixNano = time.Now().UnixNano()
	}
	line, err := json.Marshal(ev)
	if err != nil {
		// Marshal of JournalEvent cannot fail (fixed shape, no cycles);
		// drop the event rather than wedge the caller.
		return ev.Seq
	}
	j.appendLocked(append(line, '\n'))
	return ev.Seq
}

// appendLocked writes one framed line, rotating and syncing per policy.
// Caller holds j.mu.
func (j *Journal) appendLocked(line []byte) {
	if j.size+int64(len(line)) > j.cfg.MaxFileBytes && j.size > 0 {
		j.w.Flush()
		if j.cfg.Fsync != FsyncNever {
			j.f.Sync()
		}
		j.f.Close()
		j.fileIdx++
		if err := j.openFileLocked(); err != nil {
			// Disk trouble mid-run: mark closed so later appends no-op
			// instead of nil-dereferencing.
			j.closed = true
			return
		}
	}
	j.w.Write(line)
	j.size += int64(len(line))
	j.dirty = true
	if j.cfg.Fsync == FsyncAlways {
		j.w.Flush()
		j.f.Sync()
		j.dirty = false
	}
}

// Sync flushes buffered lines to the OS and, unless the policy is
// FsyncNever, to stable storage. Safe on a nil journal.
func (j *Journal) Sync() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if j.closed || !j.dirty {
		return nil
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	j.dirty = false
	if j.cfg.Fsync == FsyncNever {
		return nil
	}
	return j.f.Sync()
}

// Seq returns the last assigned sequence number.
func (j *Journal) Seq() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Close flushes, syncs and closes the journal. Further appends no-op.
// Safe on a nil journal and idempotent.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	err := j.syncLocked()
	j.closed = true
	cerr := j.f.Close()
	j.mu.Unlock()
	close(j.stop)
	<-j.done
	if err == nil {
		err = cerr
	}
	return err
}

// appendJSONString appends s as a JSON string literal. It emits only
// escapes valid in RFC 8259 JSON (strconv.AppendQuote would produce
// Go-style \x escapes for some bytes). Allocation-free when b has
// capacity.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c >= 0x20:
			b = append(b, c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\r':
			b = append(b, '\\', 'r')
		case c == '\t':
			b = append(b, '\\', 't')
		default:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		}
	}
	return append(b, '"')
}

// RecoveredJournal is the result of replaying a journal directory.
type RecoveredJournal struct {
	// Events holds every intact event, in file-then-line order.
	Events []JournalEvent
	// Alarms collects the AlarmDumps of the "alarm" events, in order —
	// the durable mirror of what the flight recorders fired live.
	Alarms []*AlarmDump
	// Files is how many journal files were read.
	Files int
	// CorruptLines counts undecodable non-final lines (bit rot,
	// concurrent truncation); they are skipped, not fatal.
	CorruptLines int
	// TruncatedTail is true when the last file's final line was torn
	// (no trailing newline or undecodable) — the expected signature of
	// a crash mid-append.
	TruncatedTail bool
}

// RecoverJournal replays every journal file in dir, oldest first,
// tolerating a torn final line and skipping corrupt interior lines.
// A missing directory recovers to an empty journal.
func RecoverJournal(dir string) (*RecoveredJournal, error) {
	rec := &RecoveredJournal{}
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return rec, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal recover: %w", err)
	}
	var idxs []int
	for _, e := range entries {
		if idx := journalFileIndex(e.Name()); idx >= 0 {
			idxs = append(idxs, idx)
		}
	}
	sort.Ints(idxs)
	for n, idx := range idxs {
		last := n == len(idxs)-1
		if err := recoverFile(filepath.Join(dir, journalFileName(idx)), last, rec); err != nil {
			return nil, err
		}
		rec.Files++
	}
	return rec, nil
}

// recoverFile replays one journal file into rec. lastFile marks the
// final (possibly torn) file.
func recoverFile(path string, lastFile bool, rec *RecoveredJournal) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("journal recover: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		line, err := r.ReadBytes('\n')
		torn := err == io.EOF && len(line) > 0 // no trailing newline
		if len(line) > 0 {
			var ev JournalEvent
			if jerr := json.Unmarshal(line, &ev); jerr != nil {
				if torn || (err == io.EOF && lastFile) {
					// A torn or trailing-garbage final line in the last
					// file is the crash signature: drop it silently.
					rec.TruncatedTail = true
				} else {
					rec.CorruptLines++
				}
			} else {
				if torn {
					// Complete JSON without the newline frame: the crash
					// hit between payload and frame. The event is intact —
					// keep it, but still flag the tail.
					rec.TruncatedTail = true
				}
				rec.Events = append(rec.Events, ev)
				if ev.Type == "alarm" && ev.Alarm != nil {
					rec.Alarms = append(rec.Alarms, ev.Alarm)
				}
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("journal recover: %w", err)
		}
	}
}
