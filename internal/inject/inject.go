// Package inject implements the code-injection attack models EDDIE is
// evaluated against. An injector wraps the dynamic instruction stream
// between the functional executor (isa.Execute) and the timing engine
// (sim.Engine), inserting extra dynamic instructions without changing the
// architectural state of the host program — exactly the paper's idealized
// attack that "directly injects dynamic instructions into the simulated
// instruction stream without changing the application's code or using any
// architectural registers" (§5.3).
package inject

import (
	"fmt"
	"math/rand"

	"eddie/internal/isa"
)

// Injector transforms the dynamic instruction stream.
type Injector interface {
	// Wrap returns a consumer that forwards the original stream to next,
	// interleaved with injected instructions.
	Wrap(next isa.Consumer) isa.Consumer
	// Description summarizes the attack for logs and reports.
	Description() string
}

// InLoop injects a fixed number of instructions into (a fraction of) the
// iterations of a target loop, the stealth strategy of §5.2/§5.4/§5.5:
// small chunks of work spread over many iterations.
type InLoop struct {
	// Header is the header block of the target loop nest. A new iteration
	// is recognized each time control enters this block.
	Header isa.BlockID
	// Instrs is the number of instructions injected per contaminated
	// iteration.
	Instrs int
	// MemOps of the Instrs instructions are stores that walk a large
	// array (cache-hostile); the rest are integer adds. The paper's
	// default in-loop injection is 8 instructions: 4 integer + 4 memory.
	MemOps int
	// Contamination is the fraction of iterations that receive the
	// injection, in (0, 1]. The paper sweeps 10%..100% (Fig 5/7).
	Contamination float64
	// StrideWords is the address stride between consecutive injected
	// memory accesses; large strides defeat the caches. Zero selects a
	// default that misses both cache levels.
	StrideWords int64
	// Seed drives the iteration-selection randomness.
	Seed int64
}

// Description implements Injector.
func (a *InLoop) Description() string {
	return fmt.Sprintf("in-loop injection: %d instrs (%d mem) in %.0f%% of iterations of block %d",
		a.Instrs, a.MemOps, a.Contamination*100, a.Header)
}

// Wrap implements Injector.
func (a *InLoop) Wrap(next isa.Consumer) isa.Consumer {
	rng := rand.New(rand.NewSource(a.Seed))
	stride := a.StrideWords
	if stride == 0 {
		stride = 8192 // 64 KB in bytes: misses a 32 KB L1 quickly and churns L2
	}
	var addr int64 = 1 << 30 // far from any program data
	prevBlock := isa.NoBlock
	inj := isa.DynInstr{Injected: true, MemAddr: -1}
	return func(di *isa.DynInstr) bool {
		if !next(di) {
			return false
		}
		entered := di.Block == a.Header && prevBlock != a.Header
		prevBlock = di.Block
		if !entered {
			return true
		}
		if a.Contamination < 1 && rng.Float64() >= a.Contamination {
			return true
		}
		for k := 0; k < a.Instrs; k++ {
			inj.Block = di.Block
			if k < a.MemOps {
				inj.Op = isa.Store
				addr += stride
				inj.MemAddr = addr
			} else {
				inj.Op = isa.Add
				inj.MemAddr = -1
			}
			inj.IsBranch = false
			inj.Taken = false
			if !next(&inj) {
				return false
			}
		}
		return true
	}
}

// Burst injects a single burst of execution at a region boundary: the
// shellcode model of §5.2 (a shell invocation executes ~476k instructions
// even with an empty payload) and the empty-loop burst of §5.5/Fig 8.
type Burst struct {
	// BlockNest maps blocks to loop-nest indices (from cfg.Machine);
	// the burst fires the first time control leaves FromNest.
	BlockNest []int
	// FromNest is the nest whose exit triggers the burst.
	FromNest int
	// Count is the number of dynamic instructions in the burst.
	Count int
	// The burst is an empty loop: every iteration is an add followed by a
	// taken branch, matching the paper's empty-loop injection.
}

// Description implements Injector.
func (a *Burst) Description() string {
	return fmt.Sprintf("burst injection: %d instrs after nest %d", a.Count, a.FromNest)
}

// Wrap implements Injector.
func (a *Burst) Wrap(next isa.Consumer) isa.Consumer {
	fired := false
	inNest := false
	inj := isa.DynInstr{Injected: true, MemAddr: -1}
	return func(di *isa.DynInstr) bool {
		nest := -1
		if int(di.Block) < len(a.BlockNest) {
			nest = a.BlockNest[di.Block]
		}
		leaving := inNest && nest != a.FromNest && !fired
		inNest = nest == a.FromNest
		if leaving {
			fired = true
			// Emit the burst *before* the first instruction of the next
			// region, i.e. exactly at the boundary.
			for k := 0; k < a.Count; k++ {
				inj.Block = di.Block
				if k%2 == 0 {
					inj.Op = isa.Add
					inj.IsBranch = false
					inj.Taken = false
				} else {
					inj.Op = isa.Sub
					inj.IsBranch = true
					inj.Taken = k+2 < a.Count
				}
				if !next(&inj) {
					return false
				}
			}
		}
		return next(di)
	}
}

// None is the no-op injector used for clean runs.
type None struct{}

// Description implements Injector.
func (None) Description() string { return "no injection" }

// Wrap implements Injector.
func (None) Wrap(next isa.Consumer) isa.Consumer { return next }
