package inject

import (
	"testing"
	"testing/quick"

	"eddie/internal/cfg"
	"eddie/internal/isa"
	"eddie/internal/mibench"
)

// runWith executes a workload with an injector, returning the final
// memory, total consumed instructions and the injected subset.
func runWith(t *testing.T, w *mibench.Workload, inj Injector) (mem []int64, total, injected int64) {
	t.Helper()
	consumer := func(di *isa.DynInstr) bool {
		total++
		if di.Injected {
			injected++
		}
		return true
	}
	var c isa.Consumer = consumer
	if inj != nil {
		c = inj.Wrap(c)
	}
	res, err := isa.Execute(w.Program, isa.ExecConfig{
		MaxInstrs: 30_000_000,
		InitMem:   w.GenInput(0),
	}, c)
	if err != nil {
		t.Fatal(err)
	}
	return res.Mem, total, injected
}

func TestInjectionPreservesArchitecturalState(t *testing.T) {
	// Property (paper §5.3): the injection changes only the dynamic
	// stream, never the program's results.
	w := mibench.Bitcount()
	machine, err := cfg.BuildMachine(w.Program)
	if err != nil {
		t.Fatal(err)
	}
	cleanMem, cleanTotal, cleanInj := runWith(t, w, nil)
	if cleanInj != 0 {
		t.Fatal("clean run has injected instructions")
	}
	injectors := []Injector{
		&InLoop{Header: machine.Nests[0].Header, Instrs: 8, MemOps: 4, Contamination: 1, Seed: 1},
		&InLoop{Header: machine.Nests[1].Header, Instrs: 2, MemOps: 1, Contamination: 0.3, Seed: 2},
		&Burst{BlockNest: machine.BlockNest, FromNest: 0, Count: 10_000},
		None{},
	}
	for _, inj := range injectors {
		mem, total, injected := runWith(t, w, inj)
		for i := range cleanMem {
			if mem[i] != cleanMem[i] {
				t.Fatalf("%s: memory differs at word %d", inj.Description(), i)
			}
		}
		if total != cleanTotal+injected {
			t.Errorf("%s: total %d != clean %d + injected %d", inj.Description(), total, cleanTotal, injected)
		}
	}
}

func TestInLoopInjectionCountMatchesIterations(t *testing.T) {
	w := mibench.Bitcount()
	machine, err := cfg.BuildMachine(w.Program)
	if err != nil {
		t.Fatal(err)
	}
	header := machine.Nests[0].Header
	// Count header entries in a clean run.
	entries := int64(0)
	prev := isa.NoBlock
	_, err = isa.Execute(w.Program, isa.ExecConfig{MaxInstrs: 30_000_000, InitMem: w.GenInput(0)},
		func(di *isa.DynInstr) bool {
			if di.Block == header && prev != header {
				entries++
			}
			prev = di.Block
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	inj := &InLoop{Header: header, Instrs: 8, MemOps: 4, Contamination: 1, Seed: 1}
	_, _, injected := runWith(t, w, inj)
	if injected != entries*8 {
		t.Errorf("injected %d instrs, want %d (%d iterations x 8)", injected, entries*8, entries)
	}
}

func TestInLoopContaminationScalesInjection(t *testing.T) {
	w := mibench.Bitcount()
	machine, err := cfg.BuildMachine(w.Program)
	if err != nil {
		t.Fatal(err)
	}
	header := machine.Nests[0].Header
	full := &InLoop{Header: header, Instrs: 8, MemOps: 4, Contamination: 1, Seed: 1}
	_, _, fullCount := runWith(t, w, full)
	half := &InLoop{Header: header, Instrs: 8, MemOps: 4, Contamination: 0.5, Seed: 1}
	_, _, halfCount := runWith(t, w, half)
	ratio := float64(halfCount) / float64(fullCount)
	if ratio < 0.4 || ratio > 0.6 {
		t.Errorf("50%% contamination injected %.0f%% of the instructions", ratio*100)
	}
}

func TestBurstInjectsExactCountOnce(t *testing.T) {
	w := mibench.Bitcount()
	machine, err := cfg.BuildMachine(w.Program)
	if err != nil {
		t.Fatal(err)
	}
	inj := &Burst{BlockNest: machine.BlockNest, FromNest: 1, Count: 12_345}
	_, _, injected := runWith(t, w, inj)
	if injected != 12_345 {
		t.Errorf("burst injected %d instrs, want 12345", injected)
	}
}

func TestBurstEmptyLoopShape(t *testing.T) {
	w := mibench.Bitcount()
	machine, err := cfg.BuildMachine(w.Program)
	if err != nil {
		t.Fatal(err)
	}
	inj := &Burst{BlockNest: machine.BlockNest, FromNest: 0, Count: 1000}
	branches, adds := 0, 0
	var lastInjected *isa.DynInstr
	c := inj.Wrap(func(di *isa.DynInstr) bool {
		if di.Injected {
			cp := *di
			lastInjected = &cp
			if di.IsBranch {
				branches++
			} else {
				adds++
			}
		}
		return true
	})
	if _, err := isa.Execute(w.Program, isa.ExecConfig{MaxInstrs: 30_000_000, InitMem: w.GenInput(0)}, c); err != nil {
		t.Fatal(err)
	}
	if adds != 500 || branches != 500 {
		t.Errorf("burst shape: %d adds, %d branches; want 500/500 (empty loop)", adds, branches)
	}
	if lastInjected == nil || lastInjected.Taken {
		t.Error("the final burst branch should fall through (loop exit)")
	}
}

func TestInjectedMemOpsUseDistinctLines(t *testing.T) {
	w := mibench.Bitcount()
	machine, err := cfg.BuildMachine(w.Program)
	if err != nil {
		t.Fatal(err)
	}
	inj := &InLoop{Header: machine.Nests[0].Header, Instrs: 4, MemOps: 4, Contamination: 1, Seed: 1}
	seen := map[int64]bool{}
	dup := 0
	c := inj.Wrap(func(di *isa.DynInstr) bool {
		if di.Injected && di.Op == isa.Store {
			if seen[di.MemAddr] {
				dup++
			}
			seen[di.MemAddr] = true
		}
		return true
	})
	if _, err := isa.Execute(w.Program, isa.ExecConfig{MaxInstrs: 30_000_000, InitMem: w.GenInput(0)}, c); err != nil {
		t.Fatal(err)
	}
	if dup != 0 {
		t.Errorf("%d duplicate injected store addresses; stride walk must not repeat", dup)
	}
	if len(seen) == 0 {
		t.Fatal("no injected stores observed")
	}
}

func TestInjectionDeterministicProperty(t *testing.T) {
	w := mibench.Bitcount()
	machine, err := cfg.BuildMachine(w.Program)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, contamPct uint8) bool {
		contam := float64(contamPct%100+1) / 100
		count := func() int64 {
			inj := &InLoop{Header: machine.Nests[1].Header, Instrs: 4, MemOps: 2, Contamination: contam, Seed: seed}
			var injected int64
			c := inj.Wrap(func(di *isa.DynInstr) bool {
				if di.Injected {
					injected++
				}
				return true
			})
			if _, err := isa.Execute(w.Program, isa.ExecConfig{MaxInstrs: 30_000_000, InitMem: w.GenInput(0)}, c); err != nil {
				return -1
			}
			return injected
		}
		a := count()
		return a >= 0 && a == count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}
