// Package isa defines the instruction set, program representation, and
// functional (architectural) executor of the simulated processor that
// EDDIE's workloads run on.
//
// The ISA is a small RISC-like register machine: 32 general-purpose 64-bit
// registers, a flat word-addressed memory, basic blocks terminated by an
// explicit jump/branch/halt, and a fixed operation set. The timing and
// power behaviour of a program is modeled separately by package sim; this
// package only defines *what* executes, in what order.
package isa

import "fmt"

// Reg names one of the 32 general-purpose registers.
type Reg uint8

// NumRegs is the architectural register count.
const NumRegs = 32

// Op is an operation code.
type Op uint8

// Operation codes. Alu ops compute Dst = A op B (or A op Imm). Load reads
// Dst = Mem[A+Imm]; Store writes Mem[A+Imm] = B. LoadImm sets Dst = Imm.
// Mov copies Dst = A. Nop does nothing (used by injected filler code).
const (
	Nop Op = iota
	LoadImm
	Mov
	Add
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl
	Shr
	Load
	Store
	numOps
)

// String returns the assembler mnemonic of the op.
func (o Op) String() string {
	names := [...]string{
		"nop", "li", "mov", "add", "sub", "mul", "div", "rem",
		"and", "or", "xor", "shl", "shr", "load", "store",
	}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsMem reports whether the op accesses memory.
func (o Op) IsMem() bool { return o == Load || o == Store }

// Instr is one instruction inside a basic block.
type Instr struct {
	Op  Op
	Dst Reg
	A   Reg
	B   Reg
	// Imm is the immediate operand. For ALU ops it is used instead of B
	// when HasImm is set; for Load/Store it is the address offset added to
	// register A; for LoadImm it is the value loaded.
	Imm    int64
	HasImm bool
}

// Cond is a branch condition comparing two registers (signed).
type Cond uint8

// Branch conditions.
const (
	EQ Cond = iota
	NE
	LT
	LE
	GT
	GE
)

// String returns the mnemonic of the condition.
func (c Cond) String() string {
	names := [...]string{"eq", "ne", "lt", "le", "gt", "ge"}
	if int(c) < len(names) {
		return names[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Eval applies the condition to two values.
func (c Cond) Eval(a, b int64) bool {
	switch c {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	case GE:
		return a >= b
	default:
		panic(fmt.Sprintf("isa: invalid condition %d", uint8(c)))
	}
}

// BlockID identifies a basic block within a program.
type BlockID int

// NoBlock is the absent-block sentinel.
const NoBlock BlockID = -1

// TermKind discriminates block terminators.
type TermKind uint8

// Terminator kinds.
const (
	// Jump transfers unconditionally to Then.
	Jump TermKind = iota
	// Branch transfers to Then when Cond(A, B) holds, else to Else.
	Branch
	// Halt ends the program.
	Halt
)

// Terminator ends a basic block.
type Terminator struct {
	Kind TermKind
	Cond Cond
	A, B Reg
	Then BlockID
	Else BlockID
}

// Block is a basic block: a straight-line instruction sequence plus a
// terminator.
type Block struct {
	ID    BlockID
	Label string
	Code  []Instr
	Term  Terminator
}

// Program is a complete executable program.
type Program struct {
	// Name identifies the workload (e.g. "bitcount").
	Name string
	// Blocks holds the basic blocks; Blocks[i].ID == i.
	Blocks []Block
	// Entry is the first block executed.
	Entry BlockID
	// MemWords is the size of the data memory in 64-bit words.
	MemWords int
}

// Block returns the block with the given id, or nil if out of range.
func (p *Program) Block(id BlockID) *Block {
	if id < 0 || int(id) >= len(p.Blocks) {
		return nil
	}
	return &p.Blocks[id]
}

// Validate checks structural invariants: entry in range, every terminator
// target in range, register indices valid.
func (p *Program) Validate() error {
	if p.Entry < 0 || int(p.Entry) >= len(p.Blocks) {
		return fmt.Errorf("isa: program %q entry block %d out of range [0,%d)", p.Name, p.Entry, len(p.Blocks))
	}
	if p.MemWords < 0 {
		return fmt.Errorf("isa: program %q has negative memory size %d", p.Name, p.MemWords)
	}
	checkTarget := func(b *Block, id BlockID, what string) error {
		if id < 0 || int(id) >= len(p.Blocks) {
			return fmt.Errorf("isa: program %q block %d (%s): %s target %d out of range", p.Name, b.ID, b.Label, what, id)
		}
		return nil
	}
	for i := range p.Blocks {
		b := &p.Blocks[i]
		if b.ID != BlockID(i) {
			return fmt.Errorf("isa: program %q block at index %d has ID %d", p.Name, i, b.ID)
		}
		for j, ins := range b.Code {
			if ins.Op >= numOps {
				return fmt.Errorf("isa: program %q block %d instr %d: invalid op %d", p.Name, i, j, ins.Op)
			}
			if ins.Dst >= NumRegs || ins.A >= NumRegs || ins.B >= NumRegs {
				return fmt.Errorf("isa: program %q block %d instr %d: register out of range", p.Name, i, j)
			}
		}
		switch b.Term.Kind {
		case Jump:
			if err := checkTarget(b, b.Term.Then, "jump"); err != nil {
				return err
			}
		case Branch:
			if err := checkTarget(b, b.Term.Then, "branch-then"); err != nil {
				return err
			}
			if err := checkTarget(b, b.Term.Else, "branch-else"); err != nil {
				return err
			}
		case Halt:
		default:
			return fmt.Errorf("isa: program %q block %d: invalid terminator kind %d", p.Name, i, b.Term.Kind)
		}
	}
	return nil
}

// Successors returns the possible next blocks of b.
func (b *Block) Successors() []BlockID {
	switch b.Term.Kind {
	case Jump:
		return []BlockID{b.Term.Then}
	case Branch:
		if b.Term.Then == b.Term.Else {
			return []BlockID{b.Term.Then}
		}
		return []BlockID{b.Term.Then, b.Term.Else}
	default:
		return nil
	}
}
