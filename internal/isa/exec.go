package isa

import "fmt"

// DynInstr describes one dynamically executed instruction. The timing
// model in package sim consumes a stream of these.
type DynInstr struct {
	// Op is the operation executed.
	Op Op
	// Block is the basic block the instruction belongs to. Injected
	// instructions carry the block of the injection site.
	Block BlockID
	// Dst, A, B are the architectural registers named by the instruction.
	Dst, A, B Reg
	// MemAddr is the effective word address for Load/Store, -1 otherwise.
	MemAddr int64
	// IsBranch marks the synthetic branch instruction emitted for a
	// block's conditional terminator.
	IsBranch bool
	// Taken is the branch outcome (meaningful when IsBranch).
	Taken bool
	// Injected marks instructions inserted by an attack, not the program.
	Injected bool
}

// Consumer receives each dynamic instruction in program order. Returning
// false stops execution early (used by bounded monitoring runs).
type Consumer func(*DynInstr) bool

// ExecResult summarizes a completed architectural execution.
type ExecResult struct {
	// DynInstrs is the number of instructions executed, including the
	// synthetic branch instructions for conditional terminators.
	DynInstrs int64
	// Mem is the final data memory.
	Mem []int64
	// Regs is the final register file.
	Regs [NumRegs]int64
	// Stopped reports whether the consumer stopped execution early.
	Stopped bool
}

// ExecConfig bounds and configures a functional execution.
type ExecConfig struct {
	// MaxInstrs aborts execution with an error when exceeded; a guard
	// against accidentally non-terminating workloads. Zero means the
	// default of 1e9.
	MaxInstrs int64
	// InitMem seeds the data memory. It may be shorter than the
	// program's MemWords; remaining words are zero.
	InitMem []int64
}

const defaultMaxInstrs = 1_000_000_000

// Execute runs the program functionally, invoking consume (if non-nil) for
// every dynamic instruction, including a synthetic branch record for each
// conditional terminator. Division or remainder by zero produces zero, and
// out-of-range memory accesses wrap modulo the memory size, so workloads
// cannot crash the simulator; both behaviours are deterministic.
func Execute(p *Program, cfg ExecConfig, consume Consumer) (*ExecResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	maxInstrs := cfg.MaxInstrs
	if maxInstrs <= 0 {
		maxInstrs = defaultMaxInstrs
	}
	mem := make([]int64, p.MemWords)
	copy(mem, cfg.InitMem)
	var regs [NumRegs]int64
	res := &ExecResult{Mem: mem}

	memSize := int64(p.MemWords)

	cur := p.Entry
	var dyn DynInstr
	for {
		b := &p.Blocks[cur]
		for i := range b.Code {
			ins := &b.Code[i]
			res.DynInstrs++
			if res.DynInstrs > maxInstrs {
				return nil, fmt.Errorf("isa: program %q exceeded instruction budget %d", p.Name, maxInstrs)
			}
			addr := int64(-1)
			switch ins.Op {
			case Nop:
			case LoadImm:
				regs[ins.Dst] = ins.Imm
			case Mov:
				regs[ins.Dst] = regs[ins.A]
			case Load:
				addr = wrapAddr(regs[ins.A]+ins.Imm, memSize)
				regs[ins.Dst] = mem[addr]
			case Store:
				addr = wrapAddr(regs[ins.A]+ins.Imm, memSize)
				mem[addr] = regs[ins.B]
			default:
				a := regs[ins.A]
				var bv int64
				if ins.HasImm {
					bv = ins.Imm
				} else {
					bv = regs[ins.B]
				}
				regs[ins.Dst] = aluOp(ins.Op, a, bv)
			}
			if consume != nil {
				dyn = DynInstr{
					Op: ins.Op, Block: cur,
					Dst: ins.Dst, A: ins.A, B: ins.B,
					MemAddr: addr,
				}
				if !consume(&dyn) {
					res.Stopped = true
					res.Regs = regs
					return res, nil
				}
			}
		}
		switch b.Term.Kind {
		case Halt:
			res.Regs = regs
			return res, nil
		case Jump:
			cur = b.Term.Then
		case Branch:
			res.DynInstrs++
			if res.DynInstrs > maxInstrs {
				return nil, fmt.Errorf("isa: program %q exceeded instruction budget %d", p.Name, maxInstrs)
			}
			taken := b.Term.Cond.Eval(regs[b.Term.A], regs[b.Term.B])
			if consume != nil {
				dyn = DynInstr{
					Op: Sub, Block: cur, A: b.Term.A, B: b.Term.B,
					MemAddr: -1, IsBranch: true, Taken: taken,
				}
				if !consume(&dyn) {
					res.Stopped = true
					res.Regs = regs
					return res, nil
				}
			}
			if taken {
				cur = b.Term.Then
			} else {
				cur = b.Term.Else
			}
		}
	}
}

func wrapAddr(addr, size int64) int64 {
	if size <= 0 {
		return 0
	}
	addr %= size
	if addr < 0 {
		addr += size
	}
	return addr
}

func aluOp(op Op, a, b int64) int64 {
	switch op {
	case Add:
		return a + b
	case Sub:
		return a - b
	case Mul:
		return a * b
	case Div:
		if b == 0 {
			return 0
		}
		return a / b
	case Rem:
		if b == 0 {
			return 0
		}
		return a % b
	case And:
		return a & b
	case Or:
		return a | b
	case Xor:
		return a ^ b
	case Shl:
		return a << (uint64(b) & 63)
	case Shr:
		return a >> (uint64(b) & 63)
	default:
		panic(fmt.Sprintf("isa: aluOp called with non-ALU op %v", op))
	}
}
