package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildCountdown builds: r1 = n; loop { r2 += r1; r1 -= 1 } until r1 == 0.
func buildCountdown(n int64) *Program {
	b := NewBuilder("countdown", 8)
	entry := b.NewBlock("entry")
	head := b.NewBlock("head")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	entry.Li(1, n).Li(2, 0).Li(0, 0)
	entry.Jump(head)
	head.Branch(GT, 1, 0, body, exit)
	body.Add(2, 2, 1).SubI(1, 1, 1)
	body.Jump(head)
	exit.Store(0, 0, 2)
	exit.Halt()
	return b.Build()
}

func TestExecuteCountdown(t *testing.T) {
	p := buildCountdown(100)
	res, err := Execute(p, ExecConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Mem[0]; got != 5050 {
		t.Errorf("sum = %d, want 5050", got)
	}
	// 3 entry + 101 branch + 100*2 body + 1 store = 305 dynamic instrs.
	if res.DynInstrs != 305 {
		t.Errorf("dynamic instructions = %d, want 305", res.DynInstrs)
	}
}

func TestExecuteConsumerSeesEveryInstruction(t *testing.T) {
	p := buildCountdown(10)
	var count int64
	var branches int
	res, err := Execute(p, ExecConfig{}, func(di *DynInstr) bool {
		count++
		if di.IsBranch {
			branches++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != res.DynInstrs {
		t.Errorf("consumer saw %d instrs, result says %d", count, res.DynInstrs)
	}
	if branches != 11 {
		t.Errorf("saw %d branches, want 11", branches)
	}
}

func TestExecuteEarlyStop(t *testing.T) {
	p := buildCountdown(1000)
	n := 0
	res, err := Execute(p, ExecConfig{}, func(di *DynInstr) bool {
		n++
		return n < 50
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Error("expected Stopped")
	}
	if n != 50 {
		t.Errorf("consumer called %d times, want 50", n)
	}
}

func TestExecuteInstructionBudget(t *testing.T) {
	b := NewBuilder("spin", 0)
	blk := b.NewBlock("spin")
	blk.Nop()
	blk.Jump(blk)
	p := b.Build()
	if _, err := Execute(p, ExecConfig{MaxInstrs: 1000}, nil); err == nil {
		t.Error("non-terminating program should exceed its budget")
	} else if !strings.Contains(err.Error(), "budget") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestALUOperations(t *testing.T) {
	cases := []struct {
		op      Op
		a, b, w int64
	}{
		{Add, 3, 4, 7},
		{Sub, 3, 4, -1},
		{Mul, -3, 4, -12},
		{Div, 7, 2, 3},
		{Div, 7, 0, 0},
		{Div, -7, 2, -3},
		{Rem, 7, 3, 1},
		{Rem, 7, 0, 0},
		{And, 0b1100, 0b1010, 0b1000},
		{Or, 0b1100, 0b1010, 0b1110},
		{Xor, 0b1100, 0b1010, 0b0110},
		{Shl, 1, 4, 16},
		{Shl, 1, 64, 1}, // shift amount masked to 6 bits
		{Shr, -8, 1, -4},
		{Shr, 16, 2, 4},
	}
	for _, c := range cases {
		if got := aluOp(c.op, c.a, c.b); got != c.w {
			t.Errorf("%v(%d,%d) = %d, want %d", c.op, c.a, c.b, got, c.w)
		}
	}
}

func TestCondEval(t *testing.T) {
	cases := []struct {
		c    Cond
		a, b int64
		want bool
	}{
		{EQ, 1, 1, true}, {EQ, 1, 2, false},
		{NE, 1, 2, true}, {NE, 2, 2, false},
		{LT, 1, 2, true}, {LT, 2, 2, false},
		{LE, 2, 2, true}, {LE, 3, 2, false},
		{GT, 3, 2, true}, {GT, 2, 2, false},
		{GE, 2, 2, true}, {GE, 1, 2, false},
	}
	for _, c := range cases {
		if got := c.c.Eval(c.a, c.b); got != c.want {
			t.Errorf("%v(%d,%d) = %t", c.c, c.a, c.b, got)
		}
	}
}

func TestMemoryWrapsModuloSize(t *testing.T) {
	b := NewBuilder("wrap", 4)
	blk := b.NewBlock("main")
	blk.Li(1, 7).Li(2, 42).Store(1, 0, 2). // Mem[7 mod 4 = 3] = 42
						Li(3, -1).Load(4, 3, 0). // Mem[-1 mod 4 = 3] -> r4
						Store(0, 1, 4)           // Mem[1] = r4
	blk.Halt()
	p := b.Build()
	res, err := Execute(p, ExecConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem[3] != 42 || res.Mem[1] != 42 {
		t.Errorf("mem = %v, want wrap-around stores to land at index 3", res.Mem)
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	// Jump target out of range.
	p := &Program{
		Name:   "bad",
		Blocks: []Block{{ID: 0, Term: Terminator{Kind: Jump, Then: 5}}},
		Entry:  0,
	}
	if err := p.Validate(); err == nil {
		t.Error("out-of-range jump target should fail validation")
	}
	// Entry out of range.
	p = &Program{Name: "bad2", Blocks: []Block{{ID: 0, Term: Terminator{Kind: Halt}}}, Entry: 3}
	if err := p.Validate(); err == nil {
		t.Error("out-of-range entry should fail validation")
	}
	// Register out of range.
	p = &Program{
		Name: "bad3",
		Blocks: []Block{{
			ID:   0,
			Code: []Instr{{Op: Add, Dst: 200}},
			Term: Terminator{Kind: Halt},
		}},
		Entry: 0,
	}
	if err := p.Validate(); err == nil {
		t.Error("register out of range should fail validation")
	}
}

func TestBuilderPanicsOnMisuse(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("unterminated block", func() {
		b := NewBuilder("x", 0)
		b.NewBlock("a")
		b.Build()
	})
	expectPanic("double terminate", func() {
		b := NewBuilder("x", 0)
		blk := b.NewBlock("a")
		blk.Halt()
		blk.Halt()
	})
	expectPanic("emit after terminate", func() {
		b := NewBuilder("x", 0)
		blk := b.NewBlock("a")
		blk.Halt()
		blk.Nop()
	})
	expectPanic("double build", func() {
		b := NewBuilder("x", 0)
		blk := b.NewBlock("a")
		blk.Halt()
		b.Build()
		b.Build()
	})
}

// TestExecuteDeterministicProperty: the same program and input always give
// the same result.
func TestExecuteDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := int64(1 + r.Intn(500))
		p := buildCountdown(n)
		a, err1 := Execute(p, ExecConfig{}, nil)
		b, err2 := Execute(p, ExecConfig{}, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		return a.Mem[0] == b.Mem[0] && a.DynInstrs == b.DynInstrs &&
			a.Mem[0] == n*(n+1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSuccessors(t *testing.T) {
	b := NewBuilder("s", 0)
	a := b.NewBlock("a")
	c := b.NewBlock("c")
	d := b.NewBlock("d")
	a.Branch(EQ, 0, 0, c, d)
	c.Jump(d)
	d.Halt()
	p := b.Build()
	if s := p.Blocks[0].Successors(); len(s) != 2 {
		t.Errorf("branch successors = %v", s)
	}
	if s := p.Blocks[1].Successors(); len(s) != 1 || s[0] != 2 {
		t.Errorf("jump successors = %v", s)
	}
	if s := p.Blocks[2].Successors(); s != nil {
		t.Errorf("halt successors = %v", s)
	}
	// A branch with equal arms reports one successor.
	b2 := NewBuilder("s2", 0)
	x := b2.NewBlock("x")
	y := b2.NewBlock("y")
	x.Branch(EQ, 0, 0, y, y)
	y.Halt()
	p2 := b2.Build()
	if s := p2.Blocks[0].Successors(); len(s) != 1 {
		t.Errorf("equal-arm branch successors = %v", s)
	}
}

func TestOpString(t *testing.T) {
	if Add.String() != "add" || Load.String() != "load" {
		t.Error("op mnemonics wrong")
	}
	if !Load.IsMem() || !Store.IsMem() || Add.IsMem() {
		t.Error("IsMem wrong")
	}
}

func TestDisassemble(t *testing.T) {
	p := buildCountdown(5)
	out := p.Disassemble()
	for _, want := range []string{
		"program \"countdown\"", ".B0:", "li    r1, 5", "b.gt  r1, r0, .B2, .B3",
		"add   r2, r2, r1", "sub   r1, r1, 1", "store [r0+0], r2", "halt",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
	if n := p.StaticInstrCount(); n != 3+1+2+1 {
		t.Errorf("static instruction count %d, want 7", n)
	}
}

func TestInstrStringForms(t *testing.T) {
	cases := map[string]Instr{
		"nop":               {Op: Nop},
		"li    r3, -7":      {Op: LoadImm, Dst: 3, Imm: -7, HasImm: true},
		"mov   r1, r2":      {Op: Mov, Dst: 1, A: 2},
		"load  r4, [r5+16]": {Op: Load, Dst: 4, A: 5, Imm: 16},
		"store [r6-1], r7":  {Op: Store, A: 6, Imm: -1, B: 7},
		"xor   r1, r2, r3":  {Op: Xor, Dst: 1, A: 2, B: 3},
		"shl   r1, r2, 4":   {Op: Shl, Dst: 1, A: 2, Imm: 4, HasImm: true},
	}
	for want, ins := range cases {
		if got := ins.String(); got != want {
			t.Errorf("got %q, want %q", got, want)
		}
	}
}
