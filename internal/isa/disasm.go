package isa

import (
	"fmt"
	"strings"
)

// String renders an instruction in assembler-like form.
func (i Instr) String() string {
	switch i.Op {
	case Nop:
		return "nop"
	case LoadImm:
		return fmt.Sprintf("li    r%d, %d", i.Dst, i.Imm)
	case Mov:
		return fmt.Sprintf("mov   r%d, r%d", i.Dst, i.A)
	case Load:
		return fmt.Sprintf("load  r%d, [r%d%+d]", i.Dst, i.A, i.Imm)
	case Store:
		return fmt.Sprintf("store [r%d%+d], r%d", i.A, i.Imm, i.B)
	default:
		if i.HasImm {
			return fmt.Sprintf("%-5s r%d, r%d, %d", i.Op, i.Dst, i.A, i.Imm)
		}
		return fmt.Sprintf("%-5s r%d, r%d, r%d", i.Op, i.Dst, i.A, i.B)
	}
}

// String renders a terminator.
func (t Terminator) String() string {
	switch t.Kind {
	case Jump:
		return fmt.Sprintf("jmp   .B%d", t.Then)
	case Branch:
		return fmt.Sprintf("b.%-3s r%d, r%d, .B%d, .B%d", t.Cond, t.A, t.B, t.Then, t.Else)
	case Halt:
		return "halt"
	default:
		return fmt.Sprintf("term(%d)", t.Kind)
	}
}

// Disassemble renders the whole program as a block-structured listing.
func (p *Program) Disassemble() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; program %q: %d blocks, %d memory words, entry .B%d\n",
		p.Name, len(p.Blocks), p.MemWords, p.Entry)
	for i := range p.Blocks {
		b := &p.Blocks[i]
		fmt.Fprintf(&sb, ".B%d:  ; %s\n", b.ID, b.Label)
		for _, ins := range b.Code {
			fmt.Fprintf(&sb, "\t%s\n", ins)
		}
		fmt.Fprintf(&sb, "\t%s\n", b.Term)
	}
	return sb.String()
}

// StaticInstrCount returns the number of static instructions, counting
// each conditional terminator as one.
func (p *Program) StaticInstrCount() int {
	n := 0
	for i := range p.Blocks {
		n += len(p.Blocks[i].Code)
		if p.Blocks[i].Term.Kind == Branch {
			n++
		}
	}
	return n
}
