package isa

import "fmt"

// Builder assembles a Program block by block. It is the API the workload
// generators in package mibench use; it panics on structural misuse
// (wrong register, unterminated block) because those are programming
// errors in the workload definition, not runtime conditions.
type Builder struct {
	prog       Program
	terminated []bool
	built      bool
}

// NewBuilder starts a program with the given name and data memory size.
func NewBuilder(name string, memWords int) *Builder {
	if memWords < 0 {
		panic(fmt.Sprintf("isa: negative memory size %d", memWords))
	}
	return &Builder{prog: Program{Name: name, MemWords: memWords, Entry: NoBlock}}
}

// BlockBuilder appends instructions to one basic block.
type BlockBuilder struct {
	b          *Builder
	id         BlockID
	terminated bool
}

// NewBlock creates an empty block with a label and returns its builder.
// The first block created becomes the program entry unless SetEntry is
// called.
func (b *Builder) NewBlock(label string) *BlockBuilder {
	id := BlockID(len(b.prog.Blocks))
	b.prog.Blocks = append(b.prog.Blocks, Block{ID: id, Label: label})
	b.terminated = append(b.terminated, false)
	if b.prog.Entry == NoBlock {
		b.prog.Entry = id
	}
	return &BlockBuilder{b: b, id: id}
}

// SetEntry overrides the program entry block.
func (b *Builder) SetEntry(bb *BlockBuilder) { b.prog.Entry = bb.id }

// Build finalizes and validates the program. It panics if any block lacks
// a terminator or validation fails; a workload with such defects must not
// ship.
func (b *Builder) Build() *Program {
	if b.built {
		panic("isa: Build called twice")
	}
	b.built = true
	for i, done := range b.terminated {
		if !done {
			panic(fmt.Sprintf("isa: block %d (%s) has no terminator", i, b.prog.Blocks[i].Label))
		}
	}
	p := b.prog
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &p
}

// ID returns the block's identifier.
func (bb *BlockBuilder) ID() BlockID { return bb.id }

func (bb *BlockBuilder) block() *Block { return &bb.b.prog.Blocks[bb.id] }

func (bb *BlockBuilder) emit(i Instr) *BlockBuilder {
	if bb.terminated {
		panic(fmt.Sprintf("isa: emit into terminated block %d (%s)", bb.id, bb.block().Label))
	}
	bb.block().Code = append(bb.block().Code, i)
	return bb
}

// Li loads an immediate: dst = imm.
func (bb *BlockBuilder) Li(dst Reg, imm int64) *BlockBuilder {
	return bb.emit(Instr{Op: LoadImm, Dst: dst, Imm: imm, HasImm: true})
}

// Mov copies a register: dst = a.
func (bb *BlockBuilder) Mov(dst, a Reg) *BlockBuilder {
	return bb.emit(Instr{Op: Mov, Dst: dst, A: a})
}

// Op3 emits a three-register ALU op: dst = a op c.
func (bb *BlockBuilder) Op3(op Op, dst, a, c Reg) *BlockBuilder {
	return bb.emit(Instr{Op: op, Dst: dst, A: a, B: c})
}

// OpI emits a register-immediate ALU op: dst = a op imm.
func (bb *BlockBuilder) OpI(op Op, dst, a Reg, imm int64) *BlockBuilder {
	return bb.emit(Instr{Op: op, Dst: dst, A: a, Imm: imm, HasImm: true})
}

// Add emits dst = a + c.
func (bb *BlockBuilder) Add(dst, a, c Reg) *BlockBuilder { return bb.Op3(Add, dst, a, c) }

// AddI emits dst = a + imm.
func (bb *BlockBuilder) AddI(dst, a Reg, imm int64) *BlockBuilder { return bb.OpI(Add, dst, a, imm) }

// Sub emits dst = a - c.
func (bb *BlockBuilder) Sub(dst, a, c Reg) *BlockBuilder { return bb.Op3(Sub, dst, a, c) }

// SubI emits dst = a - imm.
func (bb *BlockBuilder) SubI(dst, a Reg, imm int64) *BlockBuilder { return bb.OpI(Sub, dst, a, imm) }

// Mul emits dst = a * c.
func (bb *BlockBuilder) Mul(dst, a, c Reg) *BlockBuilder { return bb.Op3(Mul, dst, a, c) }

// MulI emits dst = a * imm.
func (bb *BlockBuilder) MulI(dst, a Reg, imm int64) *BlockBuilder { return bb.OpI(Mul, dst, a, imm) }

// Div emits dst = a / c (signed; division by zero yields 0).
func (bb *BlockBuilder) Div(dst, a, c Reg) *BlockBuilder { return bb.Op3(Div, dst, a, c) }

// Rem emits dst = a % c (signed; modulo by zero yields 0).
func (bb *BlockBuilder) Rem(dst, a, c Reg) *BlockBuilder { return bb.Op3(Rem, dst, a, c) }

// RemI emits dst = a % imm.
func (bb *BlockBuilder) RemI(dst, a Reg, imm int64) *BlockBuilder { return bb.OpI(Rem, dst, a, imm) }

// And emits dst = a & c.
func (bb *BlockBuilder) And(dst, a, c Reg) *BlockBuilder { return bb.Op3(And, dst, a, c) }

// AndI emits dst = a & imm.
func (bb *BlockBuilder) AndI(dst, a Reg, imm int64) *BlockBuilder { return bb.OpI(And, dst, a, imm) }

// Or emits dst = a | c.
func (bb *BlockBuilder) Or(dst, a, c Reg) *BlockBuilder { return bb.Op3(Or, dst, a, c) }

// Xor emits dst = a ^ c.
func (bb *BlockBuilder) Xor(dst, a, c Reg) *BlockBuilder { return bb.Op3(Xor, dst, a, c) }

// XorI emits dst = a ^ imm.
func (bb *BlockBuilder) XorI(dst, a Reg, imm int64) *BlockBuilder { return bb.OpI(Xor, dst, a, imm) }

// ShlI emits dst = a << imm.
func (bb *BlockBuilder) ShlI(dst, a Reg, imm int64) *BlockBuilder { return bb.OpI(Shl, dst, a, imm) }

// ShrI emits dst = a >> imm (arithmetic).
func (bb *BlockBuilder) ShrI(dst, a Reg, imm int64) *BlockBuilder { return bb.OpI(Shr, dst, a, imm) }

// Shl emits dst = a << c.
func (bb *BlockBuilder) Shl(dst, a, c Reg) *BlockBuilder { return bb.Op3(Shl, dst, a, c) }

// Shr emits dst = a >> c (arithmetic).
func (bb *BlockBuilder) Shr(dst, a, c Reg) *BlockBuilder { return bb.Op3(Shr, dst, a, c) }

// Load emits dst = Mem[base + off].
func (bb *BlockBuilder) Load(dst, base Reg, off int64) *BlockBuilder {
	return bb.emit(Instr{Op: Load, Dst: dst, A: base, Imm: off})
}

// Store emits Mem[base + off] = val.
func (bb *BlockBuilder) Store(base Reg, off int64, val Reg) *BlockBuilder {
	return bb.emit(Instr{Op: Store, A: base, Imm: off, B: val})
}

// Nop emits a no-op.
func (bb *BlockBuilder) Nop() *BlockBuilder { return bb.emit(Instr{Op: Nop}) }

func (bb *BlockBuilder) terminate(t Terminator) {
	if bb.terminated {
		panic(fmt.Sprintf("isa: block %d (%s) terminated twice", bb.id, bb.block().Label))
	}
	bb.terminated = true
	bb.b.terminated[bb.id] = true
	bb.block().Term = t
}

// Jump terminates the block with an unconditional jump.
func (bb *BlockBuilder) Jump(to *BlockBuilder) {
	bb.terminate(Terminator{Kind: Jump, Then: to.id})
}

// Branch terminates the block with a conditional branch: if cond(a,b) goto
// then else goto els.
func (bb *BlockBuilder) Branch(cond Cond, a, b Reg, then, els *BlockBuilder) {
	bb.terminate(Terminator{Kind: Branch, Cond: cond, A: a, B: b, Then: then.id, Else: els.id})
}

// Halt terminates the block and the program.
func (bb *BlockBuilder) Halt() {
	bb.terminate(Terminator{Kind: Halt})
}
