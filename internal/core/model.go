package core

import (
	"fmt"
	"sort"
	"sync"

	"eddie/internal/cfg"
)

// RegionModel is the trained characterization of one region: its reference
// peak-frequency distributions per peak rank and the K-S group size chosen
// for it during training (§4.3: the accuracy/latency trade-off is managed
// per region).
type RegionModel struct {
	// Region identifies the region in the program's region machine.
	Region cfg.RegionID
	// Label is the human-readable region name.
	Label string
	// NumPeaks is the number of peak ranks tracked for the region (the
	// typical peak count of its STSs). Zero marks a "blind" region whose
	// STSs have no usable peaks (e.g. the peakless GSM loop the paper
	// blames for poor coverage).
	NumPeaks int
	// Ref[k] is the pooled reference sample of rank-k peak frequencies
	// across all training runs (sorted ascending). Used for reporting and
	// distribution plots (Fig 2); the monitoring decision uses Modes.
	Ref [][]float64
	// Modes holds one reference distribution per training run that
	// visited the region. Within one execution the STSs of a region are
	// strongly correlated (one input → one spectral "mode"), so a
	// monitored group is compared against each training mode and accepted
	// if it is consistent with at least one — the pooled mixture would
	// reject any tight group outright (a point mass has K-S distance
	// >= 0.5 from any diffuse distribution). This is why the paper needs
	// "multiple runs ... to improve coverage" (§4.1).
	Modes []RegionMode
	// CountRef is the reference sample of per-window peak counts (sorted
	// ascending): the "statistical properties of the spikes" beyond their
	// positions. Injected code typically adds spectral content, so the
	// count distribution is a sensitive extra test dimension.
	CountRef []float64
	// EnergyRef is the reference sample of per-window AC spectral energy
	// (sorted ascending). A region's loops emit a characteristic level of
	// periodic modulation; injected activity with flat power (an empty
	// spin loop) or heavy off-chip traffic lands far outside it.
	EnergyRef []float64
	// GroupSize is the number of monitoring STSs jointly tested against
	// Ref (the n of §4.2/§4.3), selected per region during training.
	GroupSize int
	// TrainWindows is the number of training STSs the model was built
	// from, for reporting.
	TrainWindows int
}

// RegionMode is one training run's reference distributions for a region.
type RegionMode struct {
	// Run is the training-run index the mode came from.
	Run int
	// Ref[k] holds the rank-k peak frequencies of that run's windows in
	// this region, sorted ascending.
	Ref [][]float64
}

// Blind reports whether the region has no usable spectral peaks.
func (rm *RegionModel) Blind() bool { return rm.NumPeaks == 0 }

// Testable reports whether the region has reference modes to test against;
// untestable regions are handled like blind ones by the monitor.
func (rm *RegionModel) Testable() bool { return rm.NumPeaks > 0 && len(rm.Modes) > 0 }

// CountBounds returns the acceptable range of per-window peak counts: the
// full training range widened by three. The count test compares the
// *median* of a monitored group against these bounds. The margin is
// generous because marginal peaks flicker across the energy threshold
// from input to input, while code injections add an order of magnitude
// more spectral content — a 2-instruction in-loop injection already
// doubles the typical peak count.
func (rm *RegionModel) CountBounds() (lo, hi float64) {
	n := len(rm.CountRef)
	if n == 0 {
		return 0, 0
	}
	return rm.CountRef[0] - 3, rm.CountRef[n-1] + 3
}

// EnergyBounds returns the acceptable range of per-window AC energy: the
// full training range widened by a generous multiplicative margin (the
// energy channel is a coarse physical check, not a precision test).
func (rm *RegionModel) EnergyBounds() (lo, hi float64) {
	n := len(rm.EnergyRef)
	if n == 0 {
		return 0, 0
	}
	return rm.EnergyRef[0] / 4, rm.EnergyRef[n-1] * 4
}

// Model is a trained EDDIE model for one program.
type Model struct {
	// ProgramName identifies the application the model was trained for.
	ProgramName string
	// Machine is the program's region-level state machine.
	Machine *cfg.Machine
	// Regions maps region ids to their trained models. Regions never
	// observed in training have no entry (the paper notes multiple runs
	// are needed to cover all regions; unobserved regions are treated as
	// anomalous when visited).
	Regions map[cfg.RegionID]*RegionModel
	// Alpha is the K-S significance level (1 - confidence).
	Alpha float64
	// MaxGroupSize is the largest GroupSize across regions; the monitor
	// keeps this much history.
	MaxGroupSize int

	// regionIDs caches the sorted region-id listing. Models are immutable
	// once trained or loaded, so the listing is computed once and shared
	// by every monitor on the model — a fleet node running thousands of
	// sessions against one model would otherwise allocate a fresh id
	// slice per global rejection scan per session.
	regionIDsOnce sync.Once
	regionIDs     []cfg.RegionID
}

// RegionIDs returns the modeled regions in ascending order. The slice is
// cached on the model and shared: callers must not modify it.
func (m *Model) RegionIDs() []cfg.RegionID {
	m.regionIDsOnce.Do(func() {
		ids := make([]cfg.RegionID, 0, len(m.Regions))
		for id := range m.Regions {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		m.regionIDs = ids
	})
	return m.regionIDs
}

// String summarizes the model.
func (m *Model) String() string {
	s := fmt.Sprintf("EDDIE model for %q: %d regions, alpha=%g\n", m.ProgramName, len(m.Regions), m.Alpha)
	for _, id := range m.RegionIDs() {
		rm := m.Regions[id]
		s += fmt.Sprintf("  R%-3d %-22s peaks=%-2d n=%-3d windows=%d\n",
			id, rm.Label, rm.NumPeaks, rm.GroupSize, rm.TrainWindows)
	}
	return s
}
