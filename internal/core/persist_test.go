package core

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	m := testMachine(t)
	model, err := Train("synthetic", m, synthTrainingRuns(m, 6, 100e3, 250e3), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf, m)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ProgramName != model.ProgramName || loaded.Alpha != model.Alpha ||
		loaded.MaxGroupSize != model.MaxGroupSize {
		t.Error("header fields not preserved")
	}
	if len(loaded.Regions) != len(model.Regions) {
		t.Fatalf("region count %d != %d", len(loaded.Regions), len(model.Regions))
	}
	for id, rm := range model.Regions {
		lrm := loaded.Regions[id]
		if lrm == nil {
			t.Fatalf("region %d missing after load", id)
		}
		if lrm.NumPeaks != rm.NumPeaks || lrm.GroupSize != rm.GroupSize ||
			lrm.TrainWindows != rm.TrainWindows || len(lrm.Modes) != len(rm.Modes) {
			t.Errorf("region %d scalar fields differ", id)
		}
		for k := range rm.Ref {
			if len(lrm.Ref[k]) != len(rm.Ref[k]) {
				t.Fatalf("region %d rank %d length differs", id, k)
			}
			for i := range rm.Ref[k] {
				if lrm.Ref[k][i] != rm.Ref[k][i] {
					t.Fatalf("region %d rank %d value %d differs", id, k, i)
				}
			}
		}
	}

	// The loaded model must behave identically under monitoring.
	r := rand.New(rand.NewSource(77))
	run := synthRun(r, m, 100e3, 250e3*0.85)
	score := func(model *Model) int {
		mon, err := NewMonitor(model, DefaultMonitorConfig())
		if err != nil {
			t.Fatal(err)
		}
		for i := range run {
			mon.Observe(&run[i])
		}
		return len(mon.Reports)
	}
	if a, b := score(model), score(loaded); a != b {
		t.Errorf("original model: %d reports, loaded model: %d", a, b)
	}
}

func TestModelSaveLoadFile(t *testing.T) {
	m := testMachine(t)
	model, err := Train("synthetic", m, synthTrainingRuns(m, 4, 100e3, 250e3), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModelFile(path, m)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ProgramName != "synthetic" {
		t.Errorf("loaded program name %q", loaded.ProgramName)
	}
	if _, err := LoadModelFile(filepath.Join(t.TempDir(), "absent.json"), m); err == nil {
		t.Error("loading a missing file should fail")
	}
}

func TestLoadModelRejectsMismatchedMachine(t *testing.T) {
	m := testMachine(t)
	model, err := Train("synthetic", m, synthTrainingRuns(m, 4, 100e3, 250e3), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := otherMachine(t)
	if _, err := LoadModel(&buf, other); err == nil {
		t.Error("model attached to a machine of a different program")
	} else if !strings.Contains(err.Error(), "different program") {
		t.Errorf("unexpected error: %v", err)
	}
}

// otherMachine builds a machine with a different shape than testMachine.
func otherMachine(t *testing.T) *cfgMachine {
	t.Helper()
	b := builderNew("other", 4)
	entry := b.NewBlock("entry")
	h1 := b.NewBlock("h1")
	b1 := b.NewBlock("b1")
	exit := b.NewBlock("exit")
	entry.Li(1, 10).Li(0, 0)
	entry.Jump(h1)
	h1.Branch(condGT, 1, 0, b1, exit)
	b1.SubI(1, 1, 1)
	b1.Jump(h1)
	exit.Halt()
	m, err := machineBuild(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	m := testMachine(t)
	if _, err := LoadModel(strings.NewReader("not json"), m); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadModel(strings.NewReader(`{"format":99}`), m); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := LoadModel(strings.NewReader(`{"format":1,"alpha":0.01,"machine":{"nests":2,"regions":5,"blocks":7},"regions":[]}`), m); err == nil {
		t.Error("empty region list accepted")
	}
}
