package core

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	m := testMachine(t)
	model, err := Train("synthetic", m, synthTrainingRuns(m, 6, 100e3, 250e3), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf, m)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ProgramName != model.ProgramName || loaded.Alpha != model.Alpha ||
		loaded.MaxGroupSize != model.MaxGroupSize {
		t.Error("header fields not preserved")
	}
	if len(loaded.Regions) != len(model.Regions) {
		t.Fatalf("region count %d != %d", len(loaded.Regions), len(model.Regions))
	}
	for id, rm := range model.Regions {
		lrm := loaded.Regions[id]
		if lrm == nil {
			t.Fatalf("region %d missing after load", id)
		}
		if lrm.NumPeaks != rm.NumPeaks || lrm.GroupSize != rm.GroupSize ||
			lrm.TrainWindows != rm.TrainWindows || len(lrm.Modes) != len(rm.Modes) {
			t.Errorf("region %d scalar fields differ", id)
		}
		for k := range rm.Ref {
			if len(lrm.Ref[k]) != len(rm.Ref[k]) {
				t.Fatalf("region %d rank %d length differs", id, k)
			}
			for i := range rm.Ref[k] {
				if lrm.Ref[k][i] != rm.Ref[k][i] {
					t.Fatalf("region %d rank %d value %d differs", id, k, i)
				}
			}
		}
	}

	// The loaded model must behave identically under monitoring.
	r := rand.New(rand.NewSource(77))
	run := synthRun(r, m, 100e3, 250e3*0.85)
	score := func(model *Model) int {
		mon, err := NewMonitor(model, DefaultMonitorConfig())
		if err != nil {
			t.Fatal(err)
		}
		for i := range run {
			mon.Observe(&run[i])
		}
		return len(mon.Reports)
	}
	if a, b := score(model), score(loaded); a != b {
		t.Errorf("original model: %d reports, loaded model: %d", a, b)
	}
}

func TestModelSaveLoadFile(t *testing.T) {
	m := testMachine(t)
	model, err := Train("synthetic", m, synthTrainingRuns(m, 4, 100e3, 250e3), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModelFile(path, m)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ProgramName != "synthetic" {
		t.Errorf("loaded program name %q", loaded.ProgramName)
	}
	if _, err := LoadModelFile(filepath.Join(t.TempDir(), "absent.json"), m); err == nil {
		t.Error("loading a missing file should fail")
	}
}

func TestLoadModelRejectsMismatchedMachine(t *testing.T) {
	m := testMachine(t)
	model, err := Train("synthetic", m, synthTrainingRuns(m, 4, 100e3, 250e3), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := otherMachine(t)
	if _, err := LoadModel(&buf, other); err == nil {
		t.Error("model attached to a machine of a different program")
	} else if !strings.Contains(err.Error(), "different program") {
		t.Errorf("unexpected error: %v", err)
	}
}

// otherMachine builds a machine with a different shape than testMachine.
func otherMachine(t *testing.T) *cfgMachine {
	t.Helper()
	b := builderNew("other", 4)
	entry := b.NewBlock("entry")
	h1 := b.NewBlock("h1")
	b1 := b.NewBlock("b1")
	exit := b.NewBlock("exit")
	entry.Li(1, 10).Li(0, 0)
	entry.Jump(h1)
	h1.Branch(condGT, 1, 0, b1, exit)
	b1.SubI(1, 1, 1)
	b1.Jump(h1)
	exit.Halt()
	m, err := machineBuild(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// corruptModelJSON decodes a saved model into generic JSON, applies a
// mutation, and re-encodes it — the corrupt-fixture factory for the
// hostile-file tests below.
func corruptModelJSON(t *testing.T, saved []byte, mutate func(m map[string]any)) *bytes.Buffer {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(saved, &m); err != nil {
		t.Fatal(err)
	}
	mutate(m)
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewBuffer(b)
}

// testableRegion returns the first saved region with peaks and modes
// (the interesting one to corrupt) as a generic JSON object.
func testableRegion(t *testing.T, m map[string]any) map[string]any {
	t.Helper()
	for _, r := range m["regions"].([]any) {
		reg := r.(map[string]any)
		if reg["numPeaks"].(float64) > 0 && reg["modes"] != nil {
			return reg
		}
	}
	t.Fatal("no testable region in saved model")
	return nil
}

// TestLoadModelRejectsCorruptFiles feeds LoadModel a battery of corrupt
// model files — the kind a hostile fleet client could point the server
// at — and asserts every one is rejected with a descriptive error
// instead of a panic, an oversized allocation, or silent acceptance.
func TestLoadModelRejectsCorruptFiles(t *testing.T) {
	m := testMachine(t)
	model, err := Train("synthetic", m, synthTrainingRuns(m, 4, 100e3, 250e3), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := append([]byte(nil), buf.Bytes()...)

	// The pristine bytes must still load (guards against the fixture
	// factory itself breaking the file).
	if _, err := LoadModel(bytes.NewReader(saved), m); err != nil {
		t.Fatalf("pristine model rejected: %v", err)
	}

	cases := []struct {
		name    string
		mutate  func(mj map[string]any)
		wantErr string
	}{
		{"alpha zero", func(mj map[string]any) { mj["alpha"] = 0.0 }, "invalid alpha"},
		{"alpha one", func(mj map[string]any) { mj["alpha"] = 1.0 }, "invalid alpha"},
		{"alpha negative", func(mj map[string]any) { mj["alpha"] = -0.5 }, "invalid alpha"},
		{"alpha null", func(mj map[string]any) { mj["alpha"] = nil }, "invalid alpha"},
		{"max group size zero", func(mj map[string]any) { mj["maxGroupSize"] = 0 }, "invalid max group size"},
		{"max group size huge", func(mj map[string]any) { mj["maxGroupSize"] = 1 << 24 }, "invalid max group size"},
		{"group size zero", func(mj map[string]any) {
			testableRegion(t, mj)["groupSize"] = 0
		}, "invalid group size"},
		{"group size negative", func(mj map[string]any) {
			testableRegion(t, mj)["groupSize"] = -3
		}, "invalid group size"},
		{"group size above max", func(mj map[string]any) {
			testableRegion(t, mj)["groupSize"] = mj["maxGroupSize"].(float64) + 1
		}, "exceeds max group size"},
		{"negative peak count", func(mj map[string]any) {
			testableRegion(t, mj)["numPeaks"] = -1
		}, "invalid peak count"},
		{"huge peak count", func(mj map[string]any) {
			testableRegion(t, mj)["numPeaks"] = 1 << 20
		}, ""},
		{"negative train windows", func(mj map[string]any) {
			testableRegion(t, mj)["trainWindows"] = -7
		}, "negative train windows"},
		{"ragged ref rows", func(mj map[string]any) {
			reg := testableRegion(t, mj)
			ref := reg["ref"].([]any)
			reg["ref"] = ref[:len(ref)-1]
		}, "reference ranks"},
		{"ragged mode rows", func(mj map[string]any) {
			reg := testableRegion(t, mj)
			mode := reg["modes"].([]any)[0].(map[string]any)
			ref := mode["ref"].([]any)
			mode["ref"] = ref[:len(ref)-1]
		}, "ragged"},
		{"unsorted ref row", func(mj map[string]any) {
			reg := testableRegion(t, mj)
			row := reg["ref"].([]any)[0].([]any)
			if len(row) < 2 {
				t.Skip("ref row too short to unsort")
			}
			row[0], row[len(row)-1] = row[len(row)-1], row[0]
		}, "not sorted"},
		{"unsorted count ref", func(mj map[string]any) {
			reg := testableRegion(t, mj)
			row := reg["countRef"].([]any)
			row[0] = row[len(row)-1].(float64) + 1
		}, "not sorted"},
		{"unknown region id", func(mj map[string]any) {
			testableRegion(t, mj)["region"] = 9999
		}, "not present in machine"},
		{"duplicate region", func(mj map[string]any) {
			regions := mj["regions"].([]any)
			mj["regions"] = append(regions, regions[0])
		}, "appears twice"},
		{"no regions", func(mj map[string]any) {
			mj["regions"] = []any{}
		}, "no regions"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadModel(corruptModelJSON(t, saved, tc.mutate), m)
			if err == nil {
				t.Fatal("corrupt model accepted")
			}
			if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestValidateRegionRejectsNonFinite exercises the NaN/Inf checks
// directly: JSON itself cannot encode non-finite numbers, but the
// validator is the last line of defense for any future binary format or
// hand-built region model.
func TestValidateRegionRejectsNonFinite(t *testing.T) {
	base := func() regionModelFile {
		return regionModelFile{
			Region:   1,
			NumPeaks: 1,
			Ref:      [][]float64{{1, 2, 3}},
			Modes: []regionModeFile{
				{Run: 0, Ref: [][]float64{{1, 2, 3}}},
			},
			CountRef:  []float64{1, 2},
			EnergyRef: []float64{1, 2},
			GroupSize: 4,
		}
	}
	if err := validateRegionFile(&regionModelFile{Region: 1, NumPeaks: 1, Ref: [][]float64{{1, 2}}, GroupSize: 4}); err != nil {
		t.Fatalf("valid region rejected: %v", err)
	}
	for _, tc := range []struct {
		name   string
		mutate func(rf *regionModelFile)
	}{
		{"NaN in ref", func(rf *regionModelFile) { rf.Ref[0][1] = math.NaN() }},
		{"+Inf in ref", func(rf *regionModelFile) { rf.Ref[0][2] = math.Inf(1) }},
		{"-Inf in mode ref", func(rf *regionModelFile) { rf.Modes[0].Ref[0][0] = math.Inf(-1) }},
		{"NaN in countRef", func(rf *regionModelFile) { rf.CountRef[0] = math.NaN() }},
		{"NaN in energyRef", func(rf *regionModelFile) { rf.EnergyRef[1] = math.NaN() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rf := base()
			tc.mutate(&rf)
			if err := validateRegionFile(&rf); err == nil {
				t.Error("non-finite reference accepted")
			} else if !strings.Contains(err.Error(), "not finite") {
				t.Errorf("error %q does not mention finiteness", err)
			}
		})
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	m := testMachine(t)
	if _, err := LoadModel(strings.NewReader("not json"), m); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadModel(strings.NewReader(`{"format":99}`), m); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := LoadModel(strings.NewReader(`{"format":1,"alpha":0.01,"machine":{"nests":2,"regions":5,"blocks":7},"regions":[]}`), m); err == nil {
		t.Error("empty region list accepted")
	}
}
