package core

import (
	"eddie/internal/obs"
	"eddie/internal/stats"
)

// evalResult is the outcome of testing a monitored group against a region
// model.
type evalResult struct {
	// rejected is true when no training mode accepts the group.
	rejected bool
	// bestMode is the index (into rm.Modes) of the best-matching mode.
	bestMode int
	// bestRejFrac is the fraction of rank tests that rejected for the
	// best mode: 0 = perfect match, 1 = nothing matches.
	bestRejFrac float64
	// countOut reports that the peak-count bounds test failed (which
	// rejects regardless of modes).
	countOut bool
}

// provCapture collects per-rank K-S evidence while evalGroups scans the
// training modes: tmp holds the mode currently being tested, best the
// best mode seen so far. nil disables capture — the hot path then runs
// the original statistic-free tests and allocates nothing.
type provCapture struct {
	tmp  []obs.RankKS
	best []obs.RankKS
}

// evalGroups applies the region decision to monitored rank groups:
// the group is accepted if its median peak count and median AC energy
// fall inside the reference bounds and at least one training mode's
// per-rank K-S tests accept it (rank rejections <= rejectFraction).
// groups[k] holds the monitored rank-k values; counts the per-window peak
// counts; energies the per-window AC energies (may be nil to skip the
// energy check). modes may be a subset of rm.Modes (leave-one-out during
// training); startMode rotates the scan order so the monitor can re-test
// its last good mode first. scratch must have capacity >= len(groups[0]).
// prov, when non-nil, captures the best mode's per-rank statistics; the
// rejection decisions are computed from the identical statistic/critical
// pair, so capture never changes the verdict.
func evalGroups(rm *RegionModel, modes []RegionMode, groups [][]float64, counts, energies []float64, rejectFraction, cAlpha float64, scratch []float64, startMode int, prov *provCapture) evalResult {
	res := evalResult{rejected: true, bestMode: -1, bestRejFrac: 1}
	if prov != nil {
		prov.best = prov.best[:0]
	}
	if len(counts) > 0 && len(rm.CountRef) > 0 {
		lo, hi := rm.CountBounds()
		if med := stats.MedianScratch(counts, scratch); med < lo || med > hi {
			res.countOut = true
			return res
		}
	}
	if len(energies) > 0 && len(rm.EnergyRef) > 0 {
		lo, hi := rm.EnergyBounds()
		if med := stats.MedianScratch(energies, scratch); med < lo || med > hi {
			res.countOut = true
			return res
		}
	}
	if rm.NumPeaks == 0 || len(modes) == 0 {
		// Nothing to test against: treat as accepted (blind region).
		res.rejected = false
		res.bestRejFrac = 0
		return res
	}
	ranks := rm.NumPeaks
	if ranks > len(groups) {
		ranks = len(groups)
	}
	limit := rejectFraction * float64(ranks)
	for i := 0; i < len(modes); i++ {
		mi := (startMode + i) % len(modes)
		mode := &modes[mi]
		rej := 0
		if prov != nil {
			prov.tmp = prov.tmp[:0]
		}
		for k := 0; k < ranks && k < len(mode.Ref); k++ {
			var rejected bool
			if prov != nil {
				d, crit := stats.KSRejectStatSorted(mode.Ref[k], groups[k], scratch, cAlpha)
				rejected = d > crit
				prov.tmp = append(prov.tmp, obs.RankKS{Rank: k, Stat: d, Crit: crit, Rejected: rejected})
			} else {
				rejected = stats.KSRejectSorted(mode.Ref[k], groups[k], scratch, cAlpha)
			}
			if rejected {
				rej++
			}
		}
		frac := float64(rej) / float64(ranks)
		if frac < res.bestRejFrac {
			res.bestRejFrac = frac
			res.bestMode = mi
			if prov != nil {
				prov.best = append(prov.best[:0], prov.tmp...)
			}
		}
		if float64(rej) <= limit {
			// An accepting mode always has frac <= rejectFraction while
			// every previously scanned mode had frac > rejectFraction, so
			// the best-mode update above already ran for it.
			res.rejected = false
			return res
		}
	}
	return res
}
