package core

import (
	"eddie/internal/obs"
	"eddie/internal/stats"
)

// evalResult is the outcome of testing a monitored group against a region
// model.
type evalResult struct {
	// rejected is true when no training mode accepts the group.
	rejected bool
	// bestMode is the index (into rm.Modes) of the best-matching mode.
	bestMode int
	// bestRejFrac is the fraction of rank tests that rejected for the
	// best mode: 0 = perfect match, 1 = nothing matches.
	bestRejFrac float64
	// countOut reports that the peak-count bounds test failed (which
	// rejects regardless of modes).
	countOut bool
}

// provCapture collects per-rank K-S evidence while evalGroups scans the
// training modes: tmp holds the mode currently being tested, best the
// best mode seen so far. nil disables capture — the hot path then runs
// the original statistic-free tests and allocates nothing.
type provCapture struct {
	tmp  []obs.RankKS
	best []obs.RankKS
}

// groupSet is one monitored window group readied for the region decision:
// ranks[k] holds the rank-k peak frequencies of the group's windows,
// counts the per-window peak counts and energies the per-window AC
// energies (either may be empty to skip its bounds test). When sorted is
// true every slice is sorted ascending — the sort-once representation:
// each group is sorted exactly once when it is (re)built or slid forward,
// and then re-tested unchanged against every training mode of every
// candidate region with the zero-copy presorted K-S kernel. When sorted
// is false the slices are in window-time order and evalGroups falls back
// to the original copy-and-sort kernel (the legacy path kept for
// differential testing).
type groupSet struct {
	ranks    [][]float64
	counts   []float64
	energies []float64
	sorted   bool
}

// reset empties the set's slices, keeping their backing arrays.
func (g *groupSet) reset() {
	g.counts = g.counts[:0]
	g.energies = g.energies[:0]
	for k := range g.ranks {
		g.ranks[k] = g.ranks[k][:0]
	}
}

// sortAll sorts every slice ascending and marks the set sorted.
func (g *groupSet) sortAll() {
	for k := range g.ranks {
		stats.Sort(g.ranks[k])
	}
	stats.Sort(g.counts)
	stats.Sort(g.energies)
	g.sorted = true
}

// evalGroups applies the region decision to one monitored group set: the
// group is accepted if its median peak count and median AC energy fall
// inside the reference bounds and at least one training mode's per-rank
// K-S tests accept it (rank rejections <= rejectFraction). modes may be a
// subset of rm.Modes (leave-one-out during training); startMode rotates
// the scan order so the monitor can re-test its last good mode first.
// scratch must have capacity >= the group length; the presorted path only
// needs it when g is unsorted. prov, when non-nil, captures the best
// mode's per-rank statistics; the rejection decisions are computed from
// the identical statistic/critical pair, so capture never changes the
// verdict. Sorted and unsorted group sets produce bit-identical results:
// the median and the K-S statistic depend only on the multiset.
func evalGroups(rm *RegionModel, modes []RegionMode, g *groupSet, rejectFraction, cAlpha float64, scratch []float64, startMode int, prov *provCapture) evalResult {
	res := evalResult{rejected: true, bestMode: -1, bestRejFrac: 1}
	if prov != nil {
		prov.best = prov.best[:0]
	}
	if len(g.counts) > 0 && len(rm.CountRef) > 0 {
		lo, hi := rm.CountBounds()
		var med float64
		if g.sorted {
			med = stats.MedianSorted(g.counts)
		} else {
			med = stats.MedianScratch(g.counts, scratch)
		}
		if med < lo || med > hi {
			res.countOut = true
			return res
		}
	}
	if len(g.energies) > 0 && len(rm.EnergyRef) > 0 {
		lo, hi := rm.EnergyBounds()
		var med float64
		if g.sorted {
			med = stats.MedianSorted(g.energies)
		} else {
			med = stats.MedianScratch(g.energies, scratch)
		}
		if med < lo || med > hi {
			res.countOut = true
			return res
		}
	}
	if rm.NumPeaks == 0 || len(modes) == 0 {
		// Nothing to test against: treat as accepted (blind region).
		res.rejected = false
		res.bestRejFrac = 0
		return res
	}
	ranks := rm.NumPeaks
	if ranks > len(g.ranks) {
		ranks = len(g.ranks)
	}
	limit := rejectFraction * float64(ranks)
	for i := 0; i < len(modes); i++ {
		mi := (startMode + i) % len(modes)
		mode := &modes[mi]
		rej := 0
		if prov != nil {
			prov.tmp = prov.tmp[:0]
		}
		for k := 0; k < ranks && k < len(mode.Ref); k++ {
			var rejected bool
			switch {
			case prov != nil && g.sorted:
				d, crit := stats.KSRejectStatPresorted(mode.Ref[k], g.ranks[k], cAlpha)
				rejected = d > crit
				prov.tmp = append(prov.tmp, obs.RankKS{Rank: k, Stat: d, Crit: crit, Rejected: rejected})
			case prov != nil:
				d, crit := stats.KSRejectStatSorted(mode.Ref[k], g.ranks[k], scratch, cAlpha)
				rejected = d > crit
				prov.tmp = append(prov.tmp, obs.RankKS{Rank: k, Stat: d, Crit: crit, Rejected: rejected})
			case g.sorted:
				rejected = stats.KSRejectPresorted(mode.Ref[k], g.ranks[k], cAlpha)
			default:
				rejected = stats.KSRejectSorted(mode.Ref[k], g.ranks[k], scratch, cAlpha)
			}
			if rejected {
				rej++
			}
		}
		frac := float64(rej) / float64(ranks)
		if frac < res.bestRejFrac {
			res.bestRejFrac = frac
			res.bestMode = mi
			if prov != nil {
				prov.best = append(prov.best[:0], prov.tmp...)
			}
		}
		if float64(rej) <= limit {
			// An accepting mode always has frac <= rejectFraction while
			// every previously scanned mode had frac > rejectFraction, so
			// the best-mode update above already ran for it.
			res.rejected = false
			return res
		}
	}
	return res
}
