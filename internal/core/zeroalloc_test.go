package core_test

import (
	"testing"

	"eddie/internal/core"
	"eddie/internal/obs"
	"eddie/internal/pipeline"
	"eddie/internal/pipeline/pipetest"
)

// monitorFeed builds a monitor over the tiny fixture plus one collected
// run to feed it, warmed so ring and outcome buffers have reached steady
// state before any measurement.
func monitorFeed(tb testing.TB, mcfg core.MonitorConfig) (*core.Monitor, []core.STS) {
	tb.Helper()
	f := pipetest.Tiny(tb)
	run, err := pipeline.CollectRun(f.W, f.Machine, f.Config, 900, nil)
	if err != nil {
		tb.Fatal(err)
	}
	mon, err := core.NewMonitor(f.Model, mcfg)
	if err != nil {
		tb.Fatal(err)
	}
	// Warm-up pass: fill the history ring, grow the outcome buffers and
	// the per-rank scratch to their steady-state capacities.
	for i := range run.STS {
		mon.Observe(&run.STS[i])
	}
	return mon, run.STS
}

// TestObserveDisabledObsZeroAlloc pins the contract the obs layer is
// built around: with Trace, Flight and Stats all nil (the default
// configuration), the monitor's decision loop performs zero heap
// allocations per observed window. testing.AllocsPerRun divides total
// allocations by the run count, so the amortized ring/outcome slice
// growth (a handful of allocations across thousands of windows) rounds
// to zero while any per-window allocation would not.
func TestObserveDisabledObsZeroAlloc(t *testing.T) {
	mon, sts := monitorFeed(t, core.DefaultMonitorConfig())
	i := 0
	avg := testing.AllocsPerRun(2000, func() {
		mon.Observe(&sts[i%len(sts)])
		i++
	})
	if avg != 0 {
		t.Errorf("disabled-observability Observe allocates %.3f allocs/op, want 0", avg)
	}
}

func BenchmarkObserveDisabled(b *testing.B) {
	mon, sts := monitorFeed(b, core.DefaultMonitorConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon.Observe(&sts[i%len(sts)])
	}
}

// BenchmarkObserveLegacy runs the same real-fixture stream through the
// pre-optimization copy-and-sort decision path (kept for differential
// testing) — the before side of BenchmarkObserveDisabled.
func BenchmarkObserveLegacy(b *testing.B) {
	mcfg := core.DefaultMonitorConfig()
	mcfg.LegacySort = true
	mon, sts := monitorFeed(b, mcfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon.Observe(&sts[i%len(sts)])
	}
}

func BenchmarkObserveFlight(b *testing.B) {
	mcfg := core.DefaultMonitorConfig()
	mcfg.Flight = obs.NewFlightRecorder(0)
	mon, sts := monitorFeed(b, mcfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon.Observe(&sts[i%len(sts)])
	}
}

func BenchmarkObserveTraceAndFlight(b *testing.B) {
	mcfg := core.DefaultMonitorConfig()
	mcfg.Flight = obs.NewFlightRecorder(0)
	mcfg.Trace = obs.NewRecorder()
	mon, sts := monitorFeed(b, mcfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon.Observe(&sts[i%len(sts)])
	}
}
