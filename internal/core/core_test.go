package core

import (
	"math/rand"
	"testing"

	"eddie/internal/cfg"
	"eddie/internal/isa"
)

// testMachine builds a two-nest machine for synthetic-data tests.
func testMachine(t testing.TB) *cfg.Machine {
	t.Helper()
	b := isa.NewBuilder("synthetic", 4)
	entry := b.NewBlock("entry")
	h1 := b.NewBlock("h1")
	b1 := b.NewBlock("b1")
	mid := b.NewBlock("mid")
	h2 := b.NewBlock("h2")
	b2 := b.NewBlock("b2")
	exit := b.NewBlock("exit")
	entry.Li(1, 10).Li(0, 0)
	entry.Jump(h1)
	h1.Branch(isa.GT, 1, 0, b1, mid)
	b1.SubI(1, 1, 1)
	b1.Jump(h1)
	mid.Li(1, 10)
	mid.Jump(h2)
	h2.Branch(isa.GT, 1, 0, b2, exit)
	b2.SubI(1, 1, 1)
	b2.Jump(h2)
	exit.Halt()
	m, err := cfg.BuildMachine(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// synthSTS makes a window with peaks at the given base frequency's
// harmonics, jittered by the rng.
func synthSTS(r *rand.Rand, region cfg.RegionID, baseHz float64, nPeaks int, timeSec float64) STS {
	freqs := make([]float64, nPeaks)
	for k := range freqs {
		freqs[k] = baseHz*float64(k+1) + r.NormFloat64()*baseHz*0.01
	}
	return STS{PeakFreqs: freqs, Energy: 1000 + r.Float64()*100, Region: region, TimeSec: timeSec}
}

// synthRun builds one run: 60 windows of region 0 (base f0), then 60 of
// region 1 (base f1), separated by 4 transition windows.
func synthRun(r *rand.Rand, m *cfg.Machine, f0, f1 float64) []STS {
	var run []STS
	tick := 0.0
	add := func(s STS) {
		s.TimeSec = tick
		tick += 0.001
		run = append(run, s)
	}
	for i := 0; i < 60; i++ {
		add(synthSTS(r, m.LoopRegionOf(0), f0, 5, 0))
	}
	if tr, ok := m.TransRegionOf(0, 1); ok {
		for i := 0; i < 4; i++ {
			add(synthSTS(r, tr, (f0+f1)/2, 2, 0))
		}
	}
	for i := 0; i < 60; i++ {
		add(synthSTS(r, m.LoopRegionOf(1), f1, 5, 0))
	}
	return run
}

func synthTrainingRuns(m *cfg.Machine, n int, f0, f1 float64) [][]STS {
	runs := make([][]STS, n)
	for i := range runs {
		r := rand.New(rand.NewSource(int64(i + 1)))
		runs[i] = synthRun(r, m, f0, f1)
	}
	return runs
}

func TestTrainBuildsRegionModels(t *testing.T) {
	m := testMachine(t)
	runs := synthTrainingRuns(m, 8, 100e3, 250e3)
	model, err := Train("synthetic", m, runs, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	for nest := 0; nest < 2; nest++ {
		rm := model.Regions[m.LoopRegionOf(nest)]
		if rm == nil {
			t.Fatalf("loop region %d not modeled", nest)
		}
		if rm.NumPeaks != 5 {
			t.Errorf("region %d: NumPeaks=%d, want 5", nest, rm.NumPeaks)
		}
		if rm.GroupSize < 2 {
			t.Errorf("region %d: group size %d", nest, rm.GroupSize)
		}
		if len(rm.Modes) != 8 {
			t.Errorf("region %d: %d modes, want 8 (one per run)", nest, len(rm.Modes))
		}
		if rm.TrainWindows != 8*60 {
			t.Errorf("region %d: %d training windows, want 480", nest, rm.TrainWindows)
		}
		// References sorted ascending.
		for k, ref := range rm.Ref {
			for i := 1; i < len(ref); i++ {
				if ref[i] < ref[i-1] {
					t.Fatalf("region %d rank %d reference not sorted", nest, k)
				}
			}
		}
	}
}

func TestTrainValidation(t *testing.T) {
	m := testMachine(t)
	if _, err := Train("x", nil, nil, DefaultTrainConfig()); err == nil {
		t.Error("nil machine accepted")
	}
	tc := DefaultTrainConfig()
	tc.Alpha = 0
	if _, err := Train("x", m, synthTrainingRuns(m, 2, 1e5, 2e5), tc); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := Train("x", m, nil, DefaultTrainConfig()); err == nil {
		t.Error("no training data accepted")
	}
}

func TestMonitorAcceptsMatchingStream(t *testing.T) {
	m := testMachine(t)
	model, err := Train("synthetic", m, synthTrainingRuns(m, 8, 100e3, 250e3), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(99))
	run := synthRun(r, m, 100e3, 250e3)
	mon, err := NewMonitor(model, DefaultMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range run {
		mon.Observe(&run[i])
	}
	if len(mon.Reports) != 0 {
		t.Errorf("clean matching stream produced %d reports", len(mon.Reports))
	}
	// The monitor should have followed the region sequence.
	covered := 0
	for i, o := range mon.Outcomes {
		if o.Region == run[i].Region {
			covered++
		}
	}
	if float64(covered) < 0.7*float64(len(run)) {
		t.Errorf("coverage %d/%d too low", covered, len(run))
	}
}

func TestMonitorDetectsShiftedSpectrum(t *testing.T) {
	m := testMachine(t)
	model, err := Train("synthetic", m, synthTrainingRuns(m, 8, 100e3, 250e3), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Region 1 runs 12% slow — the signature of injected per-iteration work.
	r := rand.New(rand.NewSource(100))
	run := synthRun(r, m, 100e3, 250e3*0.88)
	mon, err := NewMonitor(model, DefaultMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range run {
		mon.Observe(&run[i])
	}
	if len(mon.Reports) == 0 {
		t.Error("12% period shift in region 1 not reported")
	}
}

func TestMonitorDetectsExtraPeaks(t *testing.T) {
	m := testMachine(t)
	model, err := Train("synthetic", m, synthTrainingRuns(m, 8, 100e3, 250e3), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Injected code adds its own periodicity: 5 extra peaks per window in
	// region 0.
	r := rand.New(rand.NewSource(101))
	run := synthRun(r, m, 100e3, 250e3)
	for i := range run {
		if run[i].Region == m.LoopRegionOf(0) {
			extra := synthSTS(r, run[i].Region, 37e3, 5, run[i].TimeSec)
			run[i].PeakFreqs = append(run[i].PeakFreqs, extra.PeakFreqs...)
		}
	}
	mon, err := NewMonitor(model, DefaultMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range run {
		mon.Observe(&run[i])
	}
	if len(mon.Reports) == 0 {
		t.Error("doubled peak count in region 0 not reported")
	}
}

func TestMonitorDetectsEnergyCollapse(t *testing.T) {
	m := testMachine(t)
	model, err := Train("synthetic", m, synthTrainingRuns(m, 8, 100e3, 250e3), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A flat-power burst: same peaks but 100x less AC energy.
	r := rand.New(rand.NewSource(102))
	run := synthRun(r, m, 100e3, 250e3)
	for i := 70; i < 100 && i < len(run); i++ {
		run[i].Energy /= 100
	}
	mon, err := NewMonitor(model, DefaultMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range run {
		mon.Observe(&run[i])
	}
	if len(mon.Reports) == 0 {
		t.Error("energy collapse not reported")
	}
}

func TestSTSPeakAt(t *testing.T) {
	s := STS{PeakFreqs: []float64{10, 20}}
	if s.PeakAt(0) != 10 || s.PeakAt(1) != 20 {
		t.Error("PeakAt wrong")
	}
	if s.PeakAt(2) != 0 || s.PeakAt(-1) != 0 {
		t.Error("missing ranks must read as 0")
	}
}

func TestCountAndEnergyBounds(t *testing.T) {
	rm := &RegionModel{
		CountRef:  []float64{5, 6, 7, 8},
		EnergyRef: []float64{100, 200, 400},
	}
	lo, hi := rm.CountBounds()
	if lo != 2 || hi != 11 {
		t.Errorf("count bounds [%g,%g], want [2,11]", lo, hi)
	}
	elo, ehi := rm.EnergyBounds()
	if elo != 25 || ehi != 1600 {
		t.Errorf("energy bounds [%g,%g], want [25,1600]", elo, ehi)
	}
	empty := &RegionModel{}
	if l, h := empty.CountBounds(); l != 0 || h != 0 {
		t.Error("empty count bounds")
	}
}

func TestMetricsMath(t *testing.T) {
	m := &Metrics{
		Windows:        100,
		FalsePositives: 2,
		CleanGroups:    80,
		TruePositives:  15,
		InjectedGroups: 20,
		CoveredWindows: 90,
		Episodes:       2,
		Detections:     1,
		LatencySumSec:  0.004,
	}
	if got := m.FalsePositivePct(); got != 2 {
		t.Errorf("FP%% = %g", got)
	}
	if got := m.FalseNegativePct(); got != 25 {
		t.Errorf("FN%% = %g", got)
	}
	if got := m.TruePositivePct(); got != 75 {
		t.Errorf("TPR%% = %g", got)
	}
	if got := m.CoveragePct(); got != 90 {
		t.Errorf("coverage%% = %g", got)
	}
	if got := m.DetectionLatencySec(); got != 0.004 {
		t.Errorf("latency = %g", got)
	}
	if got := m.DetectionRatePct(); got != 50 {
		t.Errorf("detection rate = %g", got)
	}
	var other Metrics
	other.Merge(m)
	other.Merge(m)
	if other.Windows != 200 || other.TruePositives != 30 {
		t.Error("Merge arithmetic wrong")
	}
}

func TestEvaluateEndToEnd(t *testing.T) {
	m := testMachine(t)
	model, err := Train("synthetic", m, synthTrainingRuns(m, 8, 100e3, 250e3), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(103))
	run := synthRun(r, m, 100e3, 250e3*0.85)
	// Mark region-1 windows as injected ground truth.
	for i := range run {
		if run[i].Region == m.LoopRegionOf(1) {
			run[i].Injected = true
		}
	}
	mon, err := NewMonitor(model, DefaultMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range run {
		mon.Observe(&run[i])
	}
	metrics, err := Evaluate(model, run, mon.Outcomes, mon.Reports, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Episodes != 1 {
		t.Errorf("episodes = %d, want 1", metrics.Episodes)
	}
	if metrics.Detections != 1 {
		t.Errorf("detections = %d, want 1", metrics.Detections)
	}
	if metrics.TruePositivePct() < 30 {
		t.Errorf("TPR %.1f%% too low for a 15%% shift", metrics.TruePositivePct())
	}
	// Mismatched lengths rejected.
	if _, err := Evaluate(model, run[:10], mon.Outcomes, mon.Reports, 0.001); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestMonitorValidation(t *testing.T) {
	m := testMachine(t)
	model, err := Train("synthetic", m, synthTrainingRuns(m, 4, 1e5, 2e5), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultMonitorConfig()
	bad.ReportThreshold = -1
	if _, err := NewMonitor(model, bad); err == nil {
		t.Error("negative report threshold accepted")
	}
	bad = DefaultMonitorConfig()
	bad.GroupSizeScale = -1
	if _, err := NewMonitor(model, bad); err == nil {
		t.Error("negative scale accepted")
	}
}

// Aliases used by persist_test.go to build a second machine without
// importing isa/cfg under clashing names.
type cfgMachine = cfg.Machine

var (
	builderNew   = isa.NewBuilder
	machineBuild = cfg.BuildMachine
	condGT       = isa.GT
)

type programT = isa.Program
