package core

import (
	"fmt"
	"sort"

	"eddie/internal/cfg"
)

// Metrics are the paper's evaluation quantities (Tables 1–2, Figs 5–10)
// computed over one or more monitored runs.
type Metrics struct {
	// Windows is the number of observed STSs (each observed STS heads one
	// STS group, the unit the paper counts).
	Windows int
	// FalsePositives counts flagged groups containing no injected
	// execution; CleanGroups counts all injection-free groups.
	FalsePositives int
	CleanGroups    int
	// TruePositives counts flagged injection-containing groups;
	// InjectedGroups counts all injection-containing groups.
	TruePositives  int
	InjectedGroups int
	// regionCorrect/regionTotal back the per-region accuracy average.
	regionCorrect map[cfg.RegionID]int
	regionTotal   map[cfg.RegionID]int
	// CoveredWindows counts windows attributed to the region that truly
	// produced them.
	CoveredWindows int
	// Episodes is the number of injection episodes; Detections how many
	// were reported; LatencySumSec accumulates their detection latencies.
	Episodes      int
	Detections    int
	LatencySumSec float64
}

// FalsePositivePct returns flagged clean groups as a percentage of all groups.
func (m *Metrics) FalsePositivePct() float64 {
	if m.Windows == 0 {
		return 0
	}
	return 100 * float64(m.FalsePositives) / float64(m.Windows)
}

// FalseNegativePct returns unflagged injected groups as a percentage of
// injected groups.
func (m *Metrics) FalseNegativePct() float64 {
	if m.InjectedGroups == 0 {
		return 0
	}
	return 100 * float64(m.InjectedGroups-m.TruePositives) / float64(m.InjectedGroups)
}

// TruePositivePct returns flagged injected groups as a percentage of
// injected groups.
func (m *Metrics) TruePositivePct() float64 {
	if m.InjectedGroups == 0 {
		return 0
	}
	return 100 * float64(m.TruePositives) / float64(m.InjectedGroups)
}

// AccuracyPct returns the average of per-region accuracies, the paper's
// Table 1/2 accuracy definition: groups with a correct reporting outcome
// (injected and flagged, or clean and unflagged) as a percentage of the
// region's groups, averaged over regions. Regions are summed in ID order
// so the result is bit-identical across calls (map order would perturb
// the last ULP of the float accumulation).
func (m *Metrics) AccuracyPct() float64 {
	if len(m.regionTotal) == 0 {
		return 0
	}
	regions := make([]cfg.RegionID, 0, len(m.regionTotal))
	for r := range m.regionTotal {
		regions = append(regions, r)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
	var sum float64
	for _, r := range regions {
		if total := m.regionTotal[r]; total > 0 {
			sum += float64(m.regionCorrect[r]) / float64(total)
		}
	}
	return 100 * sum / float64(len(m.regionTotal))
}

// CoveragePct returns the fraction of time the STS was attributed to the
// region that actually produced it.
func (m *Metrics) CoveragePct() float64 {
	if m.Windows == 0 {
		return 0
	}
	return 100 * float64(m.CoveredWindows) / float64(m.Windows)
}

// DetectionLatencySec returns the mean latency between injection start and
// the report, over detected injections.
func (m *Metrics) DetectionLatencySec() float64 {
	if m.Detections == 0 {
		return 0
	}
	return m.LatencySumSec / float64(m.Detections)
}

// DetectionRatePct returns the share of injection episodes that were
// reported at all.
func (m *Metrics) DetectionRatePct() float64 {
	if m.Episodes == 0 {
		return 0
	}
	return 100 * float64(m.Detections) / float64(m.Episodes)
}

// Merge accumulates another run's metrics into m.
func (m *Metrics) Merge(o *Metrics) {
	m.Windows += o.Windows
	m.FalsePositives += o.FalsePositives
	m.CleanGroups += o.CleanGroups
	m.TruePositives += o.TruePositives
	m.InjectedGroups += o.InjectedGroups
	m.CoveredWindows += o.CoveredWindows
	m.Episodes += o.Episodes
	m.Detections += o.Detections
	m.LatencySumSec += o.LatencySumSec
	if m.regionCorrect == nil {
		m.regionCorrect = map[cfg.RegionID]int{}
		m.regionTotal = map[cfg.RegionID]int{}
	}
	for r, v := range o.regionCorrect {
		m.regionCorrect[r] += v
	}
	for r, v := range o.regionTotal {
		m.regionTotal[r] += v
	}
}

// String renders the Table 1/2 row for these metrics.
func (m *Metrics) String() string {
	return fmt.Sprintf("latency=%.2fms fp=%.2f%% acc=%.1f%% cov=%.1f%% fn=%.1f%% det=%.0f%%",
		m.DetectionLatencySec()*1e3, m.FalsePositivePct(), m.AccuracyPct(),
		m.CoveragePct(), m.FalseNegativePct(), m.DetectionRatePct())
}

// Evaluate scores one monitored run against ground truth. stss must be the
// sequence fed to the monitor (carrying ground-truth labels), outcomes and
// reports the monitor's outputs, hopSec the STS hop duration, and model the
// model used (for per-region group sizes).
func Evaluate(model *Model, stss []STS, outcomes []WindowOutcome, reports []Report, hopSec float64) (*Metrics, error) {
	if len(stss) != len(outcomes) {
		return nil, fmt.Errorf("core: %d STSs but %d outcomes", len(stss), len(outcomes))
	}
	m := &Metrics{
		regionCorrect: map[cfg.RegionID]int{},
		regionTotal:   map[cfg.RegionID]int{},
	}
	m.Windows = len(stss)

	// Prefix counts of injected windows for group-containment queries.
	prefix := make([]int, len(stss)+1)
	for i := range stss {
		prefix[i+1] = prefix[i]
		if stss[i].Injected {
			prefix[i+1]++
		}
	}
	groupInjected := func(i int) bool {
		n := model.MaxGroupSize
		if rm := model.Regions[outcomes[i].Region]; rm != nil {
			n = rm.GroupSize
		}
		lo := i - n + 1
		if lo < 0 {
			lo = 0
		}
		return prefix[i+1]-prefix[lo] > 0
	}

	for i := range stss {
		inj := groupInjected(i)
		flagged := outcomes[i].Flagged
		if inj {
			m.InjectedGroups++
			if flagged {
				m.TruePositives++
			}
		} else {
			m.CleanGroups++
			if flagged {
				m.FalsePositives++
			}
		}
		truth := stss[i].Region
		if truth != cfg.NoRegion {
			m.regionTotal[truth]++
			if (inj && flagged) || (!inj && !flagged) {
				m.regionCorrect[truth]++
			}
			if outcomes[i].Region == truth {
				m.CoveredWindows++
			}
		}
	}

	// Injection episodes: maximal runs of consecutive injected windows.
	// An episode counts as detected when a report fires inside it (plus a
	// post-window slack: rejections accumulate while the group still
	// contains injected windows), or when the alarm raised by an earlier
	// episode is still flagging its windows — the user has already been
	// notified and the flag attributes the ongoing anomaly correctly.
	slack := 2 * model.MaxGroupSize
	i := 0
	for i < len(stss) {
		if !stss[i].Injected {
			i++
			continue
		}
		start := i
		for i < len(stss) && stss[i].Injected {
			i++
		}
		end := i - 1
		m.Episodes++
		detectedAt := -1
		for _, r := range reports {
			if r.Window >= start && r.Window <= end+slack {
				detectedAt = r.Window
				break
			}
		}
		if detectedAt < 0 {
			for w := start; w <= end+slack && w < len(outcomes); w++ {
				if outcomes[w].Flagged {
					detectedAt = w
					break
				}
			}
		}
		if detectedAt >= 0 {
			m.Detections++
			if detectedAt > start {
				m.LatencySumSec += float64(detectedAt-start) * hopSec
			}
		}
	}
	return m, nil
}
