package core

import (
	"fmt"
	"sort"

	"eddie/internal/cfg"
	"eddie/internal/par"
	"eddie/internal/stats"
)

// TrainConfig controls model training.
type TrainConfig struct {
	// Alpha is the K-S significance level (1 - confidence). The paper
	// uses the 99% confidence level, i.e. 0.01.
	Alpha float64
	// GroupSizes is the candidate grid for the per-region K-S group size
	// n. Training picks, per region, the smallest candidate achieving
	// the minimum false-rejection rate observed across the grid (§4.3).
	GroupSizes []int
	// MaxPeakRanks caps how many peak ranks are tracked per region.
	MaxPeakRanks int
	// MinWindows is the minimum number of training STSs needed to model
	// a region; regions with fewer are dropped (and later treated like
	// unmodeled regions).
	MinWindows int
	// RejectFraction is the fraction of peak ranks whose K-S test must
	// reject for the whole region test to count as a rejection. Shared
	// with monitoring so the training-time FRR sweep measures the same
	// decision the monitor makes.
	RejectFraction float64
	// FRRTolerance is how far above the observed minimum false-rejection
	// rate a candidate n may be and still qualify as "minimum"; it makes
	// the smallest-n selection robust to sampling noise.
	FRRTolerance float64
	// PowerTargetD is the distribution shift (K-S statistic) the test
	// must be able to detect: n is floored so that the critical value
	// D_{m,n,alpha} falls below this target. Without the floor, tiny n
	// trivially achieves zero false rejections — the left edge of the
	// paper's Fig 3 curves — but has no detection power at all.
	PowerTargetD float64
	// ShiftFraction is the relative peak-frequency shift the region's
	// test should be able to detect (a small in-loop injection changes
	// the loop period by a few percent). The per-region power target is
	// the K-S distance that such a shift produces on the region's own
	// reference distributions: sharp regions yield distances near 1
	// (small n suffices — short latency), diffuse regions yield small
	// distances (large n — long latency), reproducing the per-region
	// latency spread of the paper's Figs 3/4/6.
	ShiftFraction float64
	// Workers bounds the worker pool that builds region models (reference
	// sets, modes and the leave-one-out group-size sweep run per region,
	// fanned out on internal/par). Zero selects the process-wide default
	// (par.SetParallelism / EDDIE_PARALLELISM / GOMAXPROCS). Every worker
	// count produces the byte-identical Model: regions are independent
	// and results are assembled in region-id order.
	Workers int
	// LegacySort forces the pre-sort-once evaluation inside the
	// group-size sweep (each candidate group rebuilt unsorted, each K-S
	// test copying and sorting it). Differential tests use it to prove
	// the presorted sweep picks the identical group sizes; production
	// leaves it false.
	LegacySort bool
}

// DefaultTrainConfig returns the paper-equivalent training configuration.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Alpha:          0.01,
		GroupSizes:     []int{4, 6, 8, 12, 16, 24, 32, 48, 64, 96},
		MaxPeakRanks:   10,
		MinWindows:     24,
		RejectFraction: 0.35,
		FRRTolerance:   0.01,
		PowerTargetD:   0.35,
		ShiftFraction:  0.03,
	}
}

// Validate checks the training configuration.
func (tc TrainConfig) Validate() error {
	if tc.Alpha <= 0 || tc.Alpha >= 1 {
		return fmt.Errorf("core: alpha must be in (0,1), got %g", tc.Alpha)
	}
	if len(tc.GroupSizes) == 0 {
		return fmt.Errorf("core: no candidate group sizes")
	}
	for _, n := range tc.GroupSizes {
		if n < 2 {
			return fmt.Errorf("core: group size candidates must be >= 2, got %d", n)
		}
	}
	if tc.MaxPeakRanks <= 0 {
		return fmt.Errorf("core: MaxPeakRanks must be positive, got %d", tc.MaxPeakRanks)
	}
	if tc.RejectFraction < 0 || tc.RejectFraction >= 1 {
		return fmt.Errorf("core: RejectFraction must be in [0,1), got %g", tc.RejectFraction)
	}
	return nil
}

// Train builds an EDDIE model from injection-free training runs. Each
// element of runs is the STS sequence of one run (in time order), labeled
// with ground-truth regions by package trace — the stand-in for the
// paper's compile-time loop instrumentation.
func Train(programName string, machine *cfg.Machine, runs [][]STS, tc TrainConfig) (*Model, error) {
	if err := tc.Validate(); err != nil {
		return nil, err
	}
	if machine == nil {
		return nil, fmt.Errorf("core: nil region machine")
	}
	// Group windows per region, preserving per-run temporal order (the
	// FRR sweep needs consecutive windows of the same region visit) and
	// per-run identity (each run contributes one reference mode).
	perRegion := map[cfg.RegionID]*regionData{}
	for runIdx, run := range runs {
		var curRegion cfg.RegionID = cfg.NoRegion
		var cur []STS
		flush := func() {
			if len(cur) > 0 && curRegion != cfg.NoRegion {
				rd := perRegion[curRegion]
				if rd == nil {
					rd = &regionData{}
					perRegion[curRegion] = rd
				}
				rd.seqs = append(rd.seqs, taggedSeq{run: runIdx, sts: cur})
				rd.all = append(rd.all, cur...)
			}
			cur = nil
		}
		for _, sts := range run {
			if sts.Region != curRegion {
				flush()
				curRegion = sts.Region
			}
			cur = append(cur, sts)
		}
		flush()
	}

	model := &Model{
		ProgramName: programName,
		Machine:     machine,
		Regions:     map[cfg.RegionID]*RegionModel{},
		Alpha:       tc.Alpha,
	}
	cAlpha := stats.KolmogorovInverse(1 - tc.Alpha)

	ids := make([]cfg.RegionID, 0, len(perRegion))
	for id := range perRegion {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	// Build the per-region models concurrently: each region's reference
	// sets, modes and leave-one-out group-size sweep depend only on that
	// region's training windows, so the fan-out writes into index-
	// addressed slots and the id-ordered assembly below yields the
	// byte-identical Model at any worker count (the same determinism
	// contract as pipeline.CollectRuns).
	built := make([]*RegionModel, len(ids))
	if err := par.Do(len(ids), tc.Workers, func(i int) error {
		rd := perRegion[ids[i]]
		if len(rd.all) < tc.MinWindows {
			return nil
		}
		rm := buildRegionModel(ids[i], machine, rd.all, tc)
		buildModes(rm, rd.seqs)
		rm.GroupSize = selectGroupSize(rm, rd.seqs, tc, cAlpha)
		built[i] = rm
		return nil
	}); err != nil {
		return nil, err
	}
	for i, id := range ids {
		rm := built[i]
		if rm == nil {
			continue
		}
		if rm.GroupSize > model.MaxGroupSize {
			model.MaxGroupSize = rm.GroupSize
		}
		model.Regions[id] = rm
	}
	if len(model.Regions) == 0 {
		return nil, fmt.Errorf("core: training produced no region models for %q (no region had >= %d windows)", programName, tc.MinWindows)
	}
	return model, nil
}

// taggedSeq is one contiguous same-region window stretch of one run.
type taggedSeq struct {
	run int
	sts []STS
}

// regionData aggregates one region's training windows.
type regionData struct {
	seqs []taggedSeq
	all  []STS
}

// buildRegionModel derives the peak-rank count and reference sets of one
// region from its training windows.
func buildRegionModel(id cfg.RegionID, machine *cfg.Machine, windows []STS, tc TrainConfig) *RegionModel {
	// NumPeaks: the median peak count of the region's STSs, capped.
	counts := make([]int, len(windows))
	for i := range windows {
		counts[i] = len(windows[i].PeakFreqs)
	}
	sort.Ints(counts)
	numPeaks := counts[len(counts)/2]
	if numPeaks > tc.MaxPeakRanks {
		numPeaks = tc.MaxPeakRanks
	}
	label := fmt.Sprintf("R%d", id)
	if r := machine.Region(id); r != nil {
		label = r.Label
	}
	rm := &RegionModel{
		Region:       id,
		Label:        label,
		NumPeaks:     numPeaks,
		TrainWindows: len(windows),
	}
	rm.Ref = make([][]float64, numPeaks)
	for k := 0; k < numPeaks; k++ {
		ref := make([]float64, len(windows))
		for i := range windows {
			ref[i] = windows[i].PeakAt(k)
		}
		sort.Float64s(ref)
		rm.Ref[k] = ref
	}
	rm.CountRef = make([]float64, len(windows))
	rm.EnergyRef = make([]float64, len(windows))
	for i := range windows {
		rm.CountRef[i] = float64(len(windows[i].PeakFreqs))
		rm.EnergyRef[i] = windows[i].Energy
	}
	sort.Float64s(rm.CountRef)
	sort.Float64s(rm.EnergyRef)
	return rm
}

// buildModes groups a region's windows per training run into reference
// modes (see RegionModel.Modes). Runs with fewer than minModeWindows
// windows in the region are folded into the nearest-sized mode-less pool;
// in practice they are rare and simply skipped.
const minModeWindows = 6

func buildModes(rm *RegionModel, seqs []taggedSeq) {
	byRun := map[int][]STS{}
	var runOrder []int
	for _, s := range seqs {
		if _, ok := byRun[s.run]; !ok {
			runOrder = append(runOrder, s.run)
		}
		byRun[s.run] = append(byRun[s.run], s.sts...)
	}
	sort.Ints(runOrder)
	for _, run := range runOrder {
		windows := byRun[run]
		if len(windows) < minModeWindows {
			continue
		}
		mode := RegionMode{Run: run, Ref: make([][]float64, rm.NumPeaks)}
		for k := 0; k < rm.NumPeaks; k++ {
			ref := make([]float64, len(windows))
			for i := range windows {
				ref[i] = windows[i].PeakAt(k)
			}
			sort.Float64s(ref)
			mode.Ref[k] = ref
		}
		rm.Modes = append(rm.Modes, mode)
	}
	if len(rm.Modes) == 0 && len(byRun) > 0 {
		// Every run's visit was too short for a per-run mode (typical for
		// brief transition regions): pool all windows into one mode so the
		// region still has a testable reference rather than silently
		// accepting everything.
		var all []STS
		for _, run := range runOrder {
			all = append(all, byRun[run]...)
		}
		mode := RegionMode{Run: -1, Ref: make([][]float64, rm.NumPeaks)}
		for k := 0; k < rm.NumPeaks; k++ {
			ref := make([]float64, len(all))
			for i := range all {
				ref[i] = all[i].PeakAt(k)
			}
			sort.Float64s(ref)
			mode.Ref[k] = ref
		}
		rm.Modes = append(rm.Modes, mode)
	}
}

// selectGroupSize implements §4.3: apply the K-S test to training-time
// STSs with each candidate n and pick the smallest n whose false-rejection
// rate matches the minimum observed across the grid.
func selectGroupSize(rm *RegionModel, seqs []taggedSeq, tc TrainConfig, cAlpha float64) int {
	minCandidate := tc.GroupSizes[0]
	for _, n := range tc.GroupSizes[1:] {
		if n < minCandidate {
			minCandidate = n
		}
	}
	if rm.Blind() {
		return minCandidate
	}
	if len(seqs) == 0 {
		// A region can carry modes but no tagged sequences (e.g. a model
		// assembled from pooled windows); there is nothing to sweep, and
		// the visit-length median below would index an empty slice.
		return minCandidate
	}
	sizes := append([]int(nil), tc.GroupSizes...)
	sort.Ints(sizes)

	// Cap n at the region's typical contiguous visit length: a group
	// larger than one visit necessarily mixes regions and would reject
	// permanently at every border.
	visitLens := make([]int, len(seqs))
	for i, s := range seqs {
		visitLens[i] = len(s.sts)
	}
	sort.Ints(visitLens)
	capN := visitLens[len(visitLens)/2]
	if capN < minCandidate {
		capN = minCandidate
	}

	// Floor n so the K-S critical value can actually detect a shift of
	// PowerTargetD: c(alpha)*sqrt((m+n)/(m*n)) <= D* solved for n, with m
	// the typical per-mode reference size (each monitored group is tested
	// against individual training-run modes, not the pooled reference).
	floor := minCandidate
	if tc.PowerTargetD > 0 {
		modeSizes := make([]int, 0, len(rm.Modes))
		for _, mode := range rm.Modes {
			if len(mode.Ref) > 0 {
				modeSizes = append(modeSizes, len(mode.Ref[0]))
			}
		}
		m := float64(rm.TrainWindows)
		if len(modeSizes) > 0 {
			sort.Ints(modeSizes)
			m = float64(modeSizes[len(modeSizes)/2])
		}
		d := tc.PowerTargetD
		if tc.ShiftFraction > 0 {
			if ds := detectableShiftD(rm, tc.ShiftFraction); ds > 0 {
				// Clamp: even razor-sharp references keep a safety margin
				// (d <= 0.6 -> n >= ~8) and hopelessly diffuse ones don't
				// drive n to absurd sizes on their own (the visit-length
				// cap below has the final word anyway).
				if ds > 0.6 {
					ds = 0.6
				}
				if ds < 0.15 {
					ds = 0.15
				}
				d = ds
			}
		}
		den := d*d - cAlpha*cAlpha/m
		if den <= 0 {
			floor = capN // unreachable power; take what the region allows
		} else {
			floor = int(cAlpha*cAlpha/den) + 1
		}
	}
	if floor > capN {
		floor = capN
	}

	type cand struct {
		n   int
		frr float64
	}
	var cands []cand
	maxN := maxInts(sizes) + capN
	scratch := make([]float64, maxN)
	g := newGroupSet(rm.NumPeaks, maxN)
	// Leave-one-out mode sets, cached per run.
	looCache := map[int][]RegionMode{}
	looModes := func(run int) []RegionMode {
		if m, ok := looCache[run]; ok {
			return m
		}
		var out []RegionMode
		for _, mode := range rm.Modes {
			if mode.Run != run {
				out = append(out, mode)
			}
		}
		if len(out) == 0 {
			out = rm.Modes // single-run training: no LOO possible
		}
		looCache[run] = out
		return out
	}
	for _, n := range sizes {
		if n < floor || n > capN {
			continue
		}
		tested, rejected := 0, 0
		for _, seq := range seqs {
			if len(seq.sts) < n {
				continue
			}
			modes := looModes(seq.run)
			stride := n / 2
			if stride < 1 {
				stride = 1
			}
			for start := 0; start+n <= len(seq.sts); start += stride {
				tested++
				g.reset()
				g.sorted = false
				for i := start; i < start+n; i++ {
					g.counts = append(g.counts, float64(len(seq.sts[i].PeakFreqs)))
					g.energies = append(g.energies, seq.sts[i].Energy)
					for k := range g.ranks {
						g.ranks[k] = append(g.ranks[k], seq.sts[i].PeakAt(k))
					}
				}
				if !tc.LegacySort {
					// Sort each candidate group once here instead of once
					// per training mode inside the K-S tests — the same
					// sort-once kernel the monitor uses.
					g.sortAll()
				}
				// Same decision rule as the monitor, against the modes of
				// the *other* runs (leave-one-out), so the sweep measures
				// generalization rather than self-match.
				res := evalGroups(rm, modes, &g, tc.RejectFraction, cAlpha, scratch, 0, nil)
				if res.rejected {
					rejected++
				}
			}
		}
		if tested == 0 {
			continue
		}
		cands = append(cands, cand{n: n, frr: float64(rejected) / float64(tested)})
	}
	if len(cands) == 0 {
		// No grid candidate fits [floor, capN]; use the floor directly
		// (GroupSize is not restricted to the grid).
		return floor
	}
	minFRR := cands[0].frr
	for _, c := range cands[1:] {
		if c.frr < minFRR {
			minFRR = c.frr
		}
	}
	best := cands[len(cands)-1].n
	for _, c := range cands {
		if c.frr <= minFRR+tc.FRRTolerance {
			best = c.n
			break // candidates are in ascending n order
		}
	}
	return best
}

// detectableShiftD returns the median (over peak ranks) K-S distance
// between each pooled reference distribution and a copy of itself with all
// frequencies scaled by (1+gamma) — the spectral signature of an in-loop
// injection that lengthens the loop period by ~gamma. Sharp references
// yield values near 1; diffuse ones small values.
func detectableShiftD(rm *RegionModel, gamma float64) float64 {
	if rm.NumPeaks == 0 {
		return 0
	}
	var ds []float64
	for k := 0; k < rm.NumPeaks; k++ {
		ref := rm.Ref[k]
		if len(ref) == 0 {
			continue
		}
		shifted := make([]float64, len(ref))
		for i, v := range ref {
			shifted[i] = v / (1 + gamma)
		}
		// ref is sorted and dividing by the positive 1+gamma preserves
		// order, so both samples are already ascending: the presorted
		// statistic skips KSStatistic's copy-and-sort and is bit-identical
		// (sorting a sorted slice is the identity).
		ds = append(ds, stats.KSStatisticPresorted(ref, shifted))
	}
	if len(ds) == 0 {
		return 0
	}
	sort.Float64s(ds)
	return ds[len(ds)/2]
}

func maxInts(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
