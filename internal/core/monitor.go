package core

import (
	"fmt"

	"eddie/internal/cfg"
	"eddie/internal/obs"
	"eddie/internal/stats"
)

// MonitorConfig controls the monitoring algorithm (Algorithm 1).
type MonitorConfig struct {
	// ReportThreshold is how many consecutive K-S rejections are
	// tolerated before an anomaly is reported; the paper uses 3 (an
	// anomaly is reported on a 4-long-or-longer rejection streak).
	ReportThreshold int
	// ChangeFraction is the fraction of a successor region's peak ranks
	// that must accept for the monitor to switch to that region.
	ChangeFraction float64
	// RejectFraction is the fraction of the current region's peak ranks
	// that must reject for the region-level test to reject. Must match
	// the value used in training.
	RejectFraction float64
	// GroupSizeScale multiplies every region's trained group size n;
	// the sensitivity sweeps (Figs 3, 6, 8, 9, 10) use it to trade
	// detection latency against accuracy. Zero means 1.
	GroupSizeScale float64
	// MinTestWindows is the smallest K-S group the monitor will test;
	// right after a region switch the monitor only has a few windows of
	// the new region and waits until this many have accumulated. Zero
	// means 4.
	MinTestWindows int
	// ProbeWindows is the group size used when probing successor regions
	// for a region change: small, so the probe reflects only the most
	// recent windows (which belong to the new region at a true border).
	// Zero means 8.
	ProbeWindows int
	// BurstWindows adds a second, short-horizon K-S test alongside the
	// region's trained group size: regions with diffuse spectra train
	// large n (hundreds of windows), and a brief injected burst would
	// dilute to invisibility inside such a group. The short test keeps
	// burst detection responsive; its occasional false rejections are
	// absorbed by ReportThreshold. Zero means 12; negative disables it.
	BurstWindows int
	// LegacySort forces the pre-sort-once decision path: the monitored
	// group is rebuilt in window-time order for every evaluation and
	// every K-S test copies it into scratch and sorts it there. The
	// default (false) path sorts each group once when it is built —
	// incrementally when the window slides by one hop — and feeds the
	// zero-copy presorted kernel. Both paths compute the identical
	// statistics from the identical multisets, so verdicts, outcomes and
	// provenance are bit-identical; the differential tests prove it.
	// Production leaves this false.
	LegacySort bool
	// Adapt configures the drift-adaptive reference layer (see
	// AdaptConfig). The zero value disables it, leaving the decision path
	// bit-identical to the static monitor.
	Adapt AdaptConfig
	// Stats, when non-nil, receives monitoring-internals events (K-S
	// tests, per-window outcomes, region switches, reports). It is never
	// consulted for decisions; internal/metrics provides the standard
	// implementation.
	Stats MonitorStats
	// Trace, when non-nil, records a span per observed window plus
	// instant events for region switches and fired reports on the
	// recorder's "monitor" track. Nil (the default) costs nothing.
	Trace *obs.Recorder
	// Flight, when non-nil, receives one decision-provenance record per
	// observed window (region under test, group size, per-rank K-S
	// statistics vs. the cAlpha threshold, transition taken) and an
	// alarm dump whenever a report fires. Nil (the default) keeps the
	// decision loop allocation-free.
	Flight *obs.FlightRecorder
}

// MonitorStats receives the monitor's internal events for observability.
// Implementations must be cheap: the hooks run on the monitoring hot
// path, once per window or per region evaluation.
type MonitorStats interface {
	// KSTest reports one region-level K-S decision: the tested region,
	// the best-mode rejection fraction (the test statistic, in [0,1])
	// and whether the region test rejected.
	KSTest(region cfg.RegionID, rejFrac float64, rejected bool)
	// WindowObserved reports one processed STS with the monitor's final
	// view of it.
	WindowObserved(region cfg.RegionID, rejected, flagged bool)
	// ReportFired reports an anomaly report raised after a rejection
	// streak of the given length.
	ReportFired(streak int)
	// RegionSwitch reports a region transition.
	RegionSwitch(from, to cfg.RegionID)
}

// DefaultMonitorConfig mirrors the paper's operating point.
func DefaultMonitorConfig() MonitorConfig {
	return MonitorConfig{
		ReportThreshold: 3,
		ChangeFraction:  0.5,
		RejectFraction:  0.5,
	}
}

// Report is one anomaly reported to the user.
type Report struct {
	// Window is the index of the STS at which the report fired.
	Window int
	// TimeSec is that STS's start time within the run.
	TimeSec float64
	// Region is the monitor's current region at report time.
	Region cfg.RegionID
}

// WindowOutcome records the monitor's view of one observed STS, consumed
// by the evaluation harness.
type WindowOutcome struct {
	// Region is the monitor's region estimate when the window was
	// processed (used for the coverage metric).
	Region cfg.RegionID
	// Rejected reports whether the current region's K-S test rejected.
	Rejected bool
	// Flagged reports whether the window fell inside an active alarm
	// (a rejection streak that crossed ReportThreshold).
	Flagged bool
}

// Monitor consumes a stream of STSs and reports anomalies, walking the
// region-level state machine as execution progresses (Algorithm 1).
type Monitor struct {
	model  *Model
	mcfg   MonitorConfig
	cAlpha float64

	// ring buffers the last MaxGroupSize peak-frequency vectors.
	ring    [][]float64
	ringCap int
	seen    int

	cur        cfg.RegionID
	streak     int
	alarm      bool
	lastSwitch int // value of seen when the monitor entered cur

	scratchA []float64
	// slots cache sorted group sets keyed by group size: a probe of R
	// candidate regions at the same effective n reuses one sorted fill,
	// and consecutive windows at the same n slide the sorted groups
	// incrementally instead of rebuilding and re-sorting them. Three
	// slots cover the steady-state fill sizes (trained n, burst horizon,
	// probe size).
	slots [3]fillSlot
	// legacy is the unsorted window-time-order group set used when
	// MonitorConfig.LegacySort is set (differential testing only).
	legacy groupSet
	// energyRing buffers each window's AC energy alongside ring.
	energyRing []float64
	lastMode   map[cfg.RegionID]int
	// adapt holds the drift-adaptive reference state; nil (the default)
	// is the static monitor.
	adapt *adaptState

	// Reports collects the anomalies reported so far.
	Reports []Report
	// Outcomes collects one record per observed STS (since the last
	// TrimHistory call; see OutcomeAt for absolute-index access).
	Outcomes []WindowOutcome
	// trimmed is the number of outcomes discarded by TrimHistory:
	// Outcomes[0] describes absolute window index trimmed.
	trimmed int

	// Observability state: the trace track, the per-rank provenance
	// capture scratch and the reusable window records (main decision and
	// short-horizon burst test). All stay zero/nil when the hooks are
	// disabled.
	track    obs.Track
	prov     provCapture
	rec      obs.WindowRecord
	recBurst obs.WindowRecord
}

// NewMonitor creates a monitor positioned at the program start. The model
// must contain at least one region.
func NewMonitor(model *Model, mcfg MonitorConfig) (*Monitor, error) {
	if model == nil || len(model.Regions) == 0 {
		return nil, fmt.Errorf("core: monitor needs a trained model with at least one region")
	}
	if mcfg.ReportThreshold < 0 {
		return nil, fmt.Errorf("core: negative report threshold %d", mcfg.ReportThreshold)
	}
	if mcfg.GroupSizeScale < 0 {
		return nil, fmt.Errorf("core: negative group size scale %g", mcfg.GroupSizeScale)
	}
	if mcfg.ChangeFraction <= 0 {
		mcfg.ChangeFraction = 0.5
	}
	if mcfg.RejectFraction <= 0 {
		mcfg.RejectFraction = 0.5
	}
	if mcfg.MinTestWindows <= 0 {
		mcfg.MinTestWindows = 4
	}
	if mcfg.ProbeWindows <= 0 {
		mcfg.ProbeWindows = 8
	}
	if mcfg.BurstWindows == 0 {
		mcfg.BurstWindows = 12
	}
	scale := mcfg.GroupSizeScale
	if scale == 0 {
		scale = 1
	}
	ringCap := int(float64(model.MaxGroupSize)*scale) + 1
	if ringCap < 2 {
		ringCap = 2
	}
	maxRanks := 0
	for _, rm := range model.Regions {
		if rm.NumPeaks > maxRanks {
			maxRanks = rm.NumPeaks
		}
	}
	m := &Monitor{
		model:      model,
		mcfg:       mcfg,
		cAlpha:     stats.KolmogorovInverse(1 - model.Alpha),
		ringCap:    ringCap,
		ring:       make([][]float64, 0, ringCap),
		scratchA:   make([]float64, ringCap),
		energyRing: make([]float64, ringCap),
		lastMode:   map[cfg.RegionID]int{},
		cur:        startRegion(model),
		track:      mcfg.Trace.Track("monitor"),
	}
	if mcfg.LegacySort {
		m.legacy = newGroupSet(maxRanks, ringCap)
	} else {
		for i := range m.slots {
			m.slots[i].g = newGroupSet(maxRanks, ringCap)
			m.slots[i].g.sorted = true
		}
	}
	if mcfg.Adapt.Enabled {
		a, err := newAdaptState(mcfg.Adapt)
		if err != nil {
			return nil, err
		}
		m.adapt = a
	}
	return m, nil
}

// fillSlot caches one sorted group set together with the group size and
// window position it was built for. A slot whose (n, seen) matches a
// fill request is reused outright; one that is exactly one window behind
// at the same n is slid forward incrementally.
type fillSlot struct {
	n    int
	seen int
	g    groupSet
}

// newGroupSet allocates a group set with capacity for capacity windows
// across ranks peak ranks; all later fills reuse these backing arrays,
// keeping the decision loop allocation-free.
func newGroupSet(ranks, capacity int) groupSet {
	g := groupSet{
		ranks:    make([][]float64, ranks),
		counts:   make([]float64, 0, capacity),
		energies: make([]float64, 0, capacity),
	}
	for k := range g.ranks {
		g.ranks[k] = make([]float64, 0, capacity)
	}
	return g
}

// startRegion picks the monitor's initial region: the start-boundary
// transition if modeled, else the lowest-numbered modeled region.
func startRegion(model *Model) cfg.RegionID {
	for _, r := range model.Machine.Regions {
		if r.Kind == cfg.TransRegion && r.From == cfg.Boundary {
			if _, ok := model.Regions[r.ID]; ok {
				return r.ID
			}
		}
	}
	return model.RegionIDs()[0]
}

// CurrentRegion returns the monitor's current region estimate.
func (m *Monitor) CurrentRegion() cfg.RegionID { return m.cur }

// TrimHistory drops the oldest Outcomes and Reports so that at most keep
// of each remain, releasing the memory a long-running monitoring session
// would otherwise accumulate without bound (a day-long device stream
// produces millions of windows). Decision state — the sliding STS ring,
// the region estimate, streaks — is untouched: trimming never changes
// verdicts. Absolute window indexing survives via OutcomeAt.
func (m *Monitor) TrimHistory(keep int) {
	if keep < 0 {
		keep = 0
	}
	if drop := len(m.Outcomes) - keep; drop > 0 {
		m.trimmed += drop
		m.Outcomes = append(m.Outcomes[:0], m.Outcomes[drop:]...)
	}
	if drop := len(m.Reports) - keep; drop > 0 {
		m.Reports = append(m.Reports[:0], m.Reports[drop:]...)
	}
}

// Trimmed returns how many outcomes TrimHistory has discarded; the
// outcome of absolute window w lives at Outcomes[w-Trimmed()].
func (m *Monitor) Trimmed() int { return m.trimmed }

// OutcomeAt returns the outcome of the window with absolute index w
// (counting every window ever observed, regardless of trimming). The
// second result is false when the window was trimmed away or not yet
// observed.
func (m *Monitor) OutcomeAt(w int) (WindowOutcome, bool) {
	i := w - m.trimmed
	if i < 0 || i >= len(m.Outcomes) {
		return WindowOutcome{}, false
	}
	return m.Outcomes[i], true
}

// groupSize returns the effective K-S group size for a region.
func (m *Monitor) groupSize(rm *RegionModel) int {
	n := rm.GroupSize
	if m.mcfg.GroupSizeScale != 0 {
		n = int(float64(n) * m.mcfg.GroupSizeScale)
	}
	if n < 2 {
		n = 2
	}
	if n > m.ringCap {
		n = m.ringCap
	}
	return n
}

// Observe processes one STS and returns true if an anomaly report fired on
// this window.
func (m *Monitor) Observe(sts *STS) bool {
	sp := m.track.Start("observe")
	m.push(sts)
	out := WindowOutcome{Region: m.cur}
	reported := false

	// rec, when enabled, accumulates this window's decision provenance.
	// It reuses the monitor's scratch record; the flight recorder deep-
	// copies on Record, and a nil flight recorder keeps this loop
	// allocation-free.
	var rec *obs.WindowRecord
	if m.mcfg.Flight != nil {
		m.rec = obs.WindowRecord{
			Window:        m.seen - 1,
			TimeSec:       sts.TimeSec,
			Region:        int(m.cur),
			BestMode:      -1,
			SwitchTo:      -1,
			Transition:    obs.TransStay,
			CAlpha:        m.cAlpha,
			Ranks:         m.rec.Ranks[:0],
			RejectedRanks: m.rec.RejectedRanks[:0],
		}
		rec = &m.rec
	}

	curModel := m.regionModel(m.cur)
	switch {
	case curModel == nil:
		// The monitor believes it is in a region training never modeled;
		// treat as rejected and try to move on.
		out.Rejected = true
		reported = m.handleRejection(sts, &out, rec)
	case !curModel.Testable():
		// Blind region: no peaks to test. Try to leave as soon as a
		// successor matches; never raise anomalies from here (this is
		// the coverage cost the paper attributes to peakless loops).
		if rec != nil {
			rec.Transition = obs.TransBlind
		}
		if id, ok := m.bestSuccessor(); ok {
			m.switchTo(id)
			if rec != nil {
				rec.Transition = obs.TransSwitch
				rec.SwitchTo = int(id)
			}
		}
		m.streak = 0
		m.alarm = false
	default:
		// Test only windows observed since entering the current region:
		// mixing the previous region's windows into the group would make
		// every region border look anomalous.
		n := m.groupSize(curModel)
		full := true
		avail := m.seen - m.lastSwitch
		if avail < n {
			n = avail
			full = false
		}
		if n < m.mcfg.MinTestWindows {
			break // too few windows of this region yet
		}
		rejected := m.regionRejects(curModel, n, rec)
		if !rejected && m.mcfg.BurstWindows > 0 && n > m.mcfg.BurstWindows {
			// Multi-scale: also test a short recent horizon so a brief
			// burst cannot hide inside a large trained group size.
			if rec == nil {
				rejected = m.regionRejects(curModel, m.mcfg.BurstWindows, nil)
			} else {
				// Capture the burst evidence separately: it only becomes
				// the window's provenance when it is the decisive
				// (rejecting) test; otherwise the accepted full-group
				// evidence stands.
				m.recBurst.Ranks = m.recBurst.Ranks[:0]
				m.recBurst.RejectedRanks = m.recBurst.RejectedRanks[:0]
				if m.regionRejects(curModel, m.mcfg.BurstWindows, &m.recBurst) {
					rejected = true
					m.recBurst.Burst = true
					rec.CopyEvidence(&m.recBurst)
				}
			}
		}
		if rejected {
			out.Rejected = true
			reported = m.handleRejection(sts, &out, rec)
		} else {
			m.streak = 0
			m.alarm = false
			if m.adapt != nil {
				// A clean verdict: extend the clean streak, and offer the
				// group as a teacher if it is the region's trained group
				// (or a still-representative partial one).
				m.adaptObserve(curModel, n, full || n >= adaptMinGroup)
			}
		}
	}

	out.Flagged = m.alarm
	out.Region = m.cur
	m.Outcomes = append(m.Outcomes, out)
	if m.mcfg.Stats != nil {
		m.mcfg.Stats.WindowObserved(out.Region, out.Rejected, out.Flagged)
	}
	if rec != nil {
		rec.Rejected = out.Rejected
		rec.Flagged = out.Flagged
		rec.Streak = m.streak
		rec.Reported = reported
		m.mcfg.Flight.Record(rec)
		if reported {
			// Snapshot the ring after recording, so the dump's final
			// record is the alarm window itself with its evidence.
			m.mcfg.Flight.Alarm(rec.Window, rec.TimeSec, rec.Region, rec.Streak, rec.RejectedRanks)
		}
	}
	if reported {
		m.track.Instant("report")
	}
	sp.End()
	return reported
}

// handleRejection implements the rejected branch of Algorithm 1: consider
// successor regions; failing that, count toward an anomaly report. rec,
// when non-nil, receives the transition provenance.
func (m *Monitor) handleRejection(sts *STS, out *WindowOutcome, rec *obs.WindowRecord) bool {
	if m.adapt != nil {
		// Any rejection — including one resolved by a region switch —
		// breaks the clean streak that gates reference updates.
		m.adapt.cleanStreak = 0
	}
	if id, ok := m.bestSuccessor(); ok {
		m.switchTo(id)
		if rec != nil {
			rec.Transition = obs.TransSwitch
			rec.SwitchTo = int(id)
		}
		return false
	}
	m.streak++
	if m.streak > m.mcfg.ReportThreshold {
		if !m.alarm {
			m.alarm = true
			m.Reports = append(m.Reports, Report{
				Window:  m.seen - 1,
				TimeSec: sts.TimeSec,
				Region:  m.cur,
			})
			if m.mcfg.Stats != nil {
				m.mcfg.Stats.ReportFired(m.streak)
			}
			return true
		}
		// Alarm already raised and the stream still doesn't match: try a
		// global re-lock so the monitor recovers tracking after the
		// anomalous episode ends (e.g. once a burst finishes, execution
		// continues somewhere the successor relation can't reach). A
		// successful re-lock clears the alarm: the report already fired,
		// and flagging the recovered-clean stream would only inflate
		// false positives — if the attack is still ongoing, the re-locked
		// region rejects again within a few windows and re-alarms.
		if m.streak > 2*m.mcfg.ReportThreshold {
			if id, ok := m.bestRegionGlobal(); ok {
				m.switchTo(id)
				if rec != nil {
					rec.Transition = obs.TransRelock
					rec.SwitchTo = int(id)
				}
			}
		}
	}
	return false
}

// bestRegionGlobal probes every modeled region (ignoring the successor
// relation) and returns the best match, if any clears ChangeFraction.
func (m *Monitor) bestRegionGlobal() (cfg.RegionID, bool) {
	var bestID cfg.RegionID = cfg.NoRegion
	bestScore := -1.0
	for _, id := range m.model.RegionIDs() {
		if id == m.cur {
			continue
		}
		rm := m.regionModel(id)
		if !rm.Testable() {
			continue
		}
		n := m.groupSize(rm)
		if n > m.mcfg.ProbeWindows {
			n = m.mcfg.ProbeWindows
		}
		if m.seen < n {
			continue
		}
		res := m.evalRegion(rm, n, nil)
		if res.rejected {
			continue
		}
		score := 1 - res.bestRejFrac
		if score >= m.mcfg.ChangeFraction && score > bestScore {
			bestScore = score
			bestID = id
		}
	}
	return bestID, bestID != cfg.NoRegion
}

// bestSuccessor evaluates the successors of the current region and
// returns the best-matching one, if any clears ChangeFraction.
func (m *Monitor) bestSuccessor() (cfg.RegionID, bool) {
	var bestID cfg.RegionID = cfg.NoRegion
	bestScore := -1.0
	var blindID cfg.RegionID = cfg.NoRegion
	for _, succ := range m.model.Machine.Successors(m.cur) {
		rm := m.regionModel(succ)
		if rm == nil {
			continue
		}
		if !rm.Testable() {
			if blindID == cfg.NoRegion {
				blindID = succ
			}
			continue
		}
		n := m.groupSize(rm)
		if n > m.mcfg.ProbeWindows {
			n = m.mcfg.ProbeWindows
		}
		if m.seen < n {
			continue
		}
		res := m.evalRegion(rm, n, nil)
		if res.rejected {
			continue
		}
		score := 1 - res.bestRejFrac
		if score >= m.mcfg.ChangeFraction && score > bestScore {
			bestScore = score
			bestID = succ
		}
	}
	if bestID != cfg.NoRegion {
		return bestID, true
	}
	// Fall back to a blind successor only when nothing else matches AND
	// the alarm has already fired: the program may well be inside a
	// peakless loop (which produces no evidence either way), but moving
	// there must never preempt the anomaly report itself.
	if blindID != cfg.NoRegion && m.alarm {
		return blindID, true
	}
	return cfg.NoRegion, false
}

// switchTo moves the monitor to a new region. The adaptive clean streak
// deliberately survives the switch: a border crossing is normal program
// behavior, and resetting here would keep short-dwell regions from ever
// accumulating enough trust to learn. Suspicion events (rejections,
// relocks) reset the streak in handleRejection instead.
func (m *Monitor) switchTo(id cfg.RegionID) {
	if id == m.cur {
		m.streak = 0
		m.alarm = false
		return
	}
	if m.mcfg.Stats != nil {
		m.mcfg.Stats.RegionSwitch(m.cur, id)
	}
	m.track.Instant("region_switch")
	m.cur = id
	m.streak = 0
	m.alarm = false
	m.lastSwitch = m.seen
}

// fillGroups returns the group set of the last n observed windows. On
// the default path the returned set is sorted ascending per slice and
// served from the slot cache: a request matching a slot's (n, seen)
// costs nothing (every candidate region probed at the same n this window
// shares one fill), a request one window ahead at the same n slides the
// sorted groups incrementally (O(n) instead of O(n log n) re-sorts per
// rank), and only a cache miss rebuilds and re-sorts from the ring.
// The group's content depends only on (n, seen) — never on the region
// under test — which is what makes the cache sound.
func (m *Monitor) fillGroups(n int) *groupSet {
	if m.mcfg.LegacySort {
		m.fillInto(&m.legacy, n)
		return &m.legacy
	}
	var slot *fillSlot
	for i := range m.slots {
		if m.slots[i].n == n {
			slot = &m.slots[i]
			break
		}
	}
	if slot != nil {
		if slot.seen == m.seen {
			return &slot.g
		}
		if slot.seen == m.seen-1 && n < m.seen && m.slideSlot(slot) {
			return &slot.g
		}
	} else {
		// Evict the stalest slot; break ties toward the smaller n (the
		// cheaper rebuild).
		slot = &m.slots[0]
		for i := 1; i < len(m.slots); i++ {
			s := &m.slots[i]
			if s.seen < slot.seen || (s.seen == slot.seen && s.n < slot.n) {
				slot = s
			}
		}
	}
	m.fillInto(&slot.g, n)
	slot.g.sortAll()
	slot.n, slot.seen = n, m.seen
	return &slot.g
}

// fillInto loads the last n windows' rank values, peak counts and
// energies into g in window-time order (unsorted).
func (m *Monitor) fillInto(g *groupSet, n int) {
	g.reset()
	for i := m.seen - n; i < m.seen; i++ {
		v := m.ring[i%m.ringCap]
		g.counts = append(g.counts, float64(len(v)))
		g.energies = append(g.energies, m.energyRing[i%m.ringCap])
		for k := range g.ranks {
			if k < len(v) {
				g.ranks[k] = append(g.ranks[k], v[k])
			} else {
				g.ranks[k] = append(g.ranks[k], 0)
			}
		}
	}
}

// slideSlot advances a sorted slot by one window: the slot holds windows
// [seen-1-n, seen-1) and must come to hold [seen-n, seen), so window
// seen-1-n leaves every slice and window seen-1 enters. The leaving
// window is still live in the ring (the ring keeps ringCap > n windows).
// On any failure (a non-finite value defeating the sorted search) the
// slot is left inconsistent and the caller rebuilds it from scratch.
func (m *Monitor) slideSlot(s *fillSlot) bool {
	iOut := (m.seen - 1 - s.n) % m.ringCap
	iIn := (m.seen - 1) % m.ringCap
	out, in := m.ring[iOut], m.ring[iIn]
	for k := range s.g.ranks {
		if !stats.SlideSorted(s.g.ranks[k], rankOf(out, k), rankOf(in, k)) {
			return false
		}
	}
	if !stats.SlideSorted(s.g.counts, float64(len(out)), float64(len(in))) {
		return false
	}
	if !stats.SlideSorted(s.g.energies, m.energyRing[iOut], m.energyRing[iIn]) {
		return false
	}
	s.seen = m.seen
	return true
}

// rankOf returns the rank-k value of one window's peak-frequency vector,
// zero-padded past the available peaks (the same padding fillInto uses).
func rankOf(v []float64, k int) float64 {
	if k < len(v) {
		return v[k]
	}
	return 0
}

// evalRegion tests the last n windows against a region model, starting the
// mode scan at the region's last good mode. rec, when non-nil, receives
// the evaluation's provenance (group size, best mode, per-rank K-S
// statistics); the decision itself is unchanged by capture.
func (m *Monitor) evalRegion(rm *RegionModel, n int, rec *obs.WindowRecord) evalResult {
	g := m.fillGroups(n)
	start := 0
	if len(rm.Modes) > 0 {
		start = m.lastMode[rm.Region] % len(rm.Modes)
	}
	var pc *provCapture
	if rec != nil {
		pc = &m.prov
	}
	res := evalGroups(rm, rm.Modes, g, m.mcfg.RejectFraction, m.cAlpha, m.scratchA, start, pc)
	if !res.rejected && res.bestMode >= 0 {
		m.lastMode[rm.Region] = res.bestMode
	}
	if m.mcfg.Stats != nil {
		m.mcfg.Stats.KSTest(rm.Region, res.bestRejFrac, res.rejected)
	}
	if rec != nil {
		rec.Tested = true
		rec.GroupSize = n
		rec.BestMode = res.bestMode
		rec.RejFrac = res.bestRejFrac
		rec.CountOut = res.countOut
		rec.Ranks = append(rec.Ranks[:0], m.prov.best...)
		rec.RejectedRanks = rec.RejectedRanks[:0]
		for _, rk := range rec.Ranks {
			if rk.Rejected {
				rec.RejectedRanks = append(rec.RejectedRanks, rk.Rank)
			}
		}
	}
	return res
}

// regionRejects runs the region decision over the last n observed windows.
func (m *Monitor) regionRejects(rm *RegionModel, n int, rec *obs.WindowRecord) bool {
	return m.evalRegion(rm, n, rec).rejected
}

// push appends an STS's peak-frequency vector and energy to the history
// ring.
func (m *Monitor) push(sts *STS) {
	if len(m.ring) < m.ringCap {
		v := make([]float64, len(sts.PeakFreqs))
		copy(v, sts.PeakFreqs)
		m.ring = append(m.ring, v)
	} else {
		m.ring[m.seen%m.ringCap] = append(m.ring[m.seen%m.ringCap][:0], sts.PeakFreqs...)
	}
	m.energyRing[m.seen%m.ringCap] = sts.Energy
	m.seen++
}
