// Package core implements EDDIE itself: training a model of normal
// execution from reference Short-Term Spectra (STSs) and monitoring a
// stream of STSs for statistical deviations using per-peak two-sample
// Kolmogorov–Smirnov tests, following §4 of the paper.
package core

import (
	"sort"

	"eddie/internal/cfg"
	"eddie/internal/dsp"
	"eddie/internal/trace"
)

// STS is one Short-Term Spectrum reduced to the representation EDDIE
// operates on: the frequencies of its spectral peaks ordered strongest
// first, plus ground-truth annotations used in training and evaluation
// (never by the monitor's decision logic).
type STS struct {
	// PeakFreqs holds the frequencies (Hz) of the window's spectral
	// peaks, sorted ascending. Indexing by frequency order rather than
	// strength order keeps each rank's distribution sharp: peak *powers*
	// jitter between windows (reordering a strength ranking), while the
	// frequency ladder of a loop's harmonics is stable — and an injection
	// that changes the loop period moves every rung of the ladder.
	PeakFreqs []float64
	// Energy is the window's total AC spectral energy (the bins above the
	// DC/drift guard band). Loops emit strong periodic modulation; flat
	// activity (e.g. an empty injected spin loop) emits almost none, so
	// the energy level is a robust side channel alongside the peaks.
	Energy float64
	// Region is the ground-truth region label (training/evaluation only).
	Region cfg.RegionID
	// Injected is the ground-truth attack label (evaluation only).
	Injected bool
	// TimeSec is the window start time within its run.
	TimeSec float64
}

// PeakAt returns the rank-k peak frequency, or 0 if the STS has fewer
// peaks. Zero doubles as the "no such peak" frequency: real peaks exclude
// DC, so 0 never collides with an observed peak and systematically missing
// ranks shift the compared distribution, which is exactly the evidence the
// K-S test should see.
func (s *STS) PeakAt(k int) float64 {
	if k < 0 || k >= len(s.PeakFreqs) {
		return 0
	}
	return s.PeakFreqs[k]
}

// ExtractSTS converts labeled STFT frames into the STS sequence of one
// run. stftCfg must match the frames; peakCfg controls peak extraction
// (DefaultPeakConfig matches the paper's 1%-of-energy rule).
func ExtractSTS(frames []trace.LabeledFrame, stftCfg dsp.STFTConfig, peakCfg dsp.PeakConfig) []STS {
	out := make([]STS, 0, len(frames))
	for i := range frames {
		f := &frames[i]
		peaks := dsp.FindPeaks(&f.Frame, peakCfg, stftCfg.BinFrequency)
		freqs := make([]float64, len(peaks))
		for k, p := range peaks {
			freqs[k] = dsp.InterpolatePeakFrequency(&f.Frame, p.Bin, stftCfg.SampleRate/float64(stftCfg.WindowSize))
		}
		sort.Float64s(freqs)
		minBin := peakCfg.MinBin
		if minBin < 1 {
			minBin = 1
		}
		var energy float64
		for b := minBin; b < len(f.Frame.Power); b++ {
			energy += f.Frame.Power[b]
		}
		out = append(out, STS{
			PeakFreqs: freqs,
			Energy:    energy,
			Region:    f.Region,
			Injected:  f.Injected,
			TimeSec:   f.TimeSec,
		})
	}
	return out
}
