package core_test

import (
	"testing"

	"eddie/internal/cfg"
	"eddie/internal/core"
	"eddie/internal/pipeline"
	"eddie/internal/pipeline/pipetest"
)

// adaptStream builds a long monitored stream by repeating the tiny
// fixture's clean run and applying a per-window transform: scale
// multiplies every peak frequency (the STS-level effect of clock skew)
// by a factor interpolated from 1 at the stream start to 1+maxScale at
// the end. The returned windows own their slices.
func adaptStream(tb testing.TB, repeats int, maxScale float64) []core.STS {
	tb.Helper()
	f := pipetest.Tiny(tb)
	run, err := pipeline.CollectRun(f.W, f.Machine, f.Config, 900, nil)
	if err != nil {
		tb.Fatal(err)
	}
	total := repeats * len(run.STS)
	out := make([]core.STS, 0, total)
	for r := 0; r < repeats; r++ {
		for i := range run.STS {
			w := run.STS[i]
			frac := float64(len(out)) / float64(total-1)
			s := 1 + maxScale*frac
			pf := make([]float64, len(w.PeakFreqs))
			for k, v := range w.PeakFreqs {
				pf[k] = v * s
			}
			w.PeakFreqs = pf
			out = append(out, w)
		}
	}
	return out
}

// feedAll observes every window and returns how many came back flagged.
func feedAll(m *core.Monitor, sts []core.STS) int {
	flagged := 0
	for i := range sts {
		m.Observe(&sts[i])
		if m.Outcomes[len(m.Outcomes)-1].Flagged {
			flagged++
		}
	}
	return flagged
}

// TestAdaptConfigValidation pins the parameter ranges NewMonitor accepts.
func TestAdaptConfigValidation(t *testing.T) {
	f := pipetest.Tiny(t)
	bad := []core.AdaptConfig{
		{Enabled: true, Rate: 1.5},
		{Enabled: true, Rate: -0.1},
		{Enabled: true, MaxStepFrac: 2},
		{Enabled: true, MinCleanStreak: -1},
		{Enabled: true, MaxKSDistance: 1},
	}
	for i, ac := range bad {
		mcfg := core.DefaultMonitorConfig()
		mcfg.Adapt = ac
		if _, err := core.NewMonitor(f.Model, mcfg); err == nil {
			t.Errorf("case %d: invalid adapt config %+v accepted", i, ac)
		}
	}
	mcfg := core.DefaultMonitorConfig()
	mcfg.Adapt = core.AdaptConfig{Enabled: true}
	m, err := core.NewMonitor(f.Model, mcfg)
	if err != nil {
		t.Fatalf("default adapt config rejected: %v", err)
	}
	if !m.AdaptEnabled() {
		t.Error("AdaptEnabled() false after enabling adaptation")
	}
}

// TestAdaptEngagesOnCleanStream verifies that a stationary clean stream
// feeds the adaptive reference (updates flow) without making the monitor
// any noisier than the static one.
func TestAdaptEngagesOnCleanStream(t *testing.T) {
	f := pipetest.Tiny(t)
	sts := adaptStream(t, 4, 0)

	static, err := core.NewMonitor(f.Model, core.DefaultMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	mcfg := core.DefaultMonitorConfig()
	mcfg.Adapt = core.AdaptConfig{Enabled: true}
	adaptive, err := core.NewMonitor(f.Model, mcfg)
	if err != nil {
		t.Fatal(err)
	}

	fs := feedAll(static, sts)
	fa := feedAll(adaptive, sts)
	if adaptive.AdaptUpdates() == 0 {
		t.Error("no reference updates admitted over a long clean stream")
	}
	if fa > fs {
		t.Errorf("adaptive monitor flagged %d clean windows, static %d", fa, fs)
	}
	// A stationary stream should move the reference barely at all: the
	// blend pulls toward quantiles the reference already matches.
	if d := adaptive.AdaptDrift(); d > float64(adaptive.AdaptUpdates())*core.DefaultAdaptMaxStepFrac {
		t.Errorf("stationary-stream drift %g implausibly large for %d updates", d, adaptive.AdaptUpdates())
	}
	// Per-region drift iteration is ordered and only covers visited regions.
	last := -1
	adaptive.AdaptRegionDrift(func(id cfg.RegionID, d float64) {
		if int(id) <= last {
			t.Errorf("AdaptRegionDrift out of order: %d after %d", id, last)
		}
		last = int(id)
	})
}

// TestAdaptTracksSlowDrift is the tentpole's core claim at unit scale: a
// slowly accelerating peak-frequency drift (the STS-level picture of
// clock skew) degrades the static monitor while the adaptive one tracks
// it. The second half of the ramp is where the static reference has
// fallen behind; the adaptive monitor must flag strictly fewer windows
// there and fewer overall.
func TestAdaptTracksSlowDrift(t *testing.T) {
	f := pipetest.Tiny(t)
	sts := adaptStream(t, 8, 0.008)

	static, err := core.NewMonitor(f.Model, core.DefaultMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	mcfg := core.DefaultMonitorConfig()
	mcfg.Adapt = core.AdaptConfig{Enabled: true, Rate: 0.1, MinCleanStreak: 8}
	adaptive, err := core.NewMonitor(f.Model, mcfg)
	if err != nil {
		t.Fatal(err)
	}

	half := len(sts) / 2
	sFlagged1 := feedAll(static, sts[:half])
	aFlagged1 := feedAll(adaptive, sts[:half])
	sFlagged2 := feedAll(static, sts[half:])
	aFlagged2 := feedAll(adaptive, sts[half:])

	t.Logf("static flagged: %d then %d; adaptive flagged: %d then %d (updates=%d drift=%.3f)",
		sFlagged1, sFlagged2, aFlagged1, aFlagged2, adaptive.AdaptUpdates(), adaptive.AdaptDrift())
	if sFlagged2 == 0 {
		t.Fatal("drift ramp did not degrade the static monitor; the test exercises nothing")
	}
	if aFlagged2 >= sFlagged2 {
		t.Errorf("adaptive monitor flagged %d windows under max drift, static %d", aFlagged2, sFlagged2)
	}
	if total, stotal := aFlagged1+aFlagged2, sFlagged1+sFlagged2; total >= stotal {
		t.Errorf("adaptive flagged %d total, static %d", total, stotal)
	}
	if adaptive.AdaptDrift() == 0 {
		t.Error("adaptive monitor reports zero drift after tracking a real ramp")
	}
}

// TestAdaptContaminationGuard proves the acceptance criterion: a stream
// of anomalous windows cannot pull the adaptive reference toward the
// anomaly. The monitor rejects every anomalous group, so the clean
// streak never opens the gate, zero updates are admitted, and the
// adaptive monitor's verdicts — on the anomalous stream AND on a
// subsequent clean stream — are bit-identical to the static monitor's.
func TestAdaptContaminationGuard(t *testing.T) {
	f := pipetest.Tiny(t)
	clean := adaptStream(t, 2, 0)
	// A gross anomaly shaped like real injected code: the loop retimed
	// (every peak shifted 30%) plus the injected activity's own spectral
	// content (a dozen extra peaks), so every region's count bounds and
	// tight ranks reject it.
	anom := make([]core.STS, len(clean))
	for i := range clean {
		w := clean[i]
		pf := make([]float64, 0, len(w.PeakFreqs)+12)
		for _, v := range w.PeakFreqs {
			pf = append(pf, v*1.3)
		}
		base := 1e5
		if len(pf) > 0 {
			base = pf[len(pf)-1]
		}
		for k := 0; k < 12; k++ {
			pf = append(pf, base*(1.05+0.05*float64(k)))
		}
		w.PeakFreqs = pf
		anom[i] = w
	}

	static, err := core.NewMonitor(f.Model, core.DefaultMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	mcfg := core.DefaultMonitorConfig()
	mcfg.Adapt = core.AdaptConfig{Enabled: true, MinCleanStreak: 2}
	adaptive, err := core.NewMonitor(f.Model, mcfg)
	if err != nil {
		t.Fatal(err)
	}

	feedAll(static, anom)
	feedAll(adaptive, anom)
	if u := adaptive.AdaptUpdates(); u != 0 {
		t.Fatalf("anomalous stream admitted %d reference updates, want 0", u)
	}
	if d := adaptive.AdaptDrift(); d != 0 {
		t.Fatalf("anomalous stream moved the reference by %g, want 0", d)
	}

	// Subsequent clean stream: verdict-for-verdict identical. With zero
	// updates admitted the shadow references equal the trained ones, so
	// any divergence here means the anomaly taught the monitor something.
	feedAll(static, clean)
	feedAll(adaptive, clean)
	so, ao := static.Outcomes, adaptive.Outcomes
	if len(so) != len(ao) {
		t.Fatalf("outcome lengths diverge: %d vs %d", len(so), len(ao))
	}
	for i := range so {
		if so[i] != ao[i] {
			t.Fatalf("window %d: static %+v vs adaptive %+v after contaminated pre-stream", i, so[i], ao[i])
		}
	}
	if len(static.Reports) != len(adaptive.Reports) {
		t.Fatalf("report counts diverge: %d vs %d", len(static.Reports), len(adaptive.Reports))
	}
}

// TestAdaptGuardedIsBitIdentical locks the mechanism behind the
// disabled-path guarantee: an adaptive monitor whose guards never admit
// an update makes bit-identical decisions to the static monitor on an
// arbitrary stream (here: drifting, so plenty of marginal verdicts).
func TestAdaptGuardedIsBitIdentical(t *testing.T) {
	f := pipetest.Tiny(t)
	sts := adaptStream(t, 4, 0.006)

	static, err := core.NewMonitor(f.Model, core.DefaultMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	mcfg := core.DefaultMonitorConfig()
	mcfg.Adapt = core.AdaptConfig{Enabled: true, MinCleanStreak: 1 << 30}
	adaptive, err := core.NewMonitor(f.Model, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	feedAll(static, sts)
	feedAll(adaptive, sts)
	if adaptive.AdaptUpdates() != 0 {
		t.Fatalf("guard admitted %d updates", adaptive.AdaptUpdates())
	}
	for i := range static.Outcomes {
		if static.Outcomes[i] != adaptive.Outcomes[i] {
			t.Fatalf("window %d: outcomes diverge with a closed update gate", i)
		}
	}
}

// TestObserveAdaptiveSteadyStateZeroAlloc extends the zero-alloc
// guarantee to the enabled path: once every visited region's shadow is
// built, the decide-and-update loop allocates nothing.
func TestObserveAdaptiveSteadyStateZeroAlloc(t *testing.T) {
	mcfg := core.DefaultMonitorConfig()
	mcfg.Adapt = core.AdaptConfig{Enabled: true, MinCleanStreak: 4}
	mon, sts := monitorFeed(t, mcfg)
	i := 0
	avg := testing.AllocsPerRun(2000, func() {
		mon.Observe(&sts[i%len(sts)])
		i++
	})
	if avg != 0 {
		t.Errorf("adaptive Observe allocates %.3f allocs/op in steady state, want 0", avg)
	}
	if mon.AdaptUpdates() == 0 {
		t.Error("steady-state loop admitted no updates; the measurement missed the update path")
	}
}
