package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"eddie/internal/cfg"
)

// modelFile is the on-disk representation of a trained model. The region
// machine itself is not serialized — it is deterministic compile-time
// analysis, so the loader rebuilds it from the program and verifies the
// fingerprint matches.
type modelFile struct {
	Format       int               `json:"format"`
	ProgramName  string            `json:"program"`
	Alpha        float64           `json:"alpha"`
	MaxGroupSize int               `json:"maxGroupSize"`
	Machine      machineSummary    `json:"machine"`
	Regions      []regionModelFile `json:"regions"`
}

// machineSummary fingerprints the region machine the model was built for.
type machineSummary struct {
	Nests   int `json:"nests"`
	Regions int `json:"regions"`
	Blocks  int `json:"blocks"`
}

type regionModelFile struct {
	Region       cfg.RegionID     `json:"region"`
	Label        string           `json:"label"`
	NumPeaks     int              `json:"numPeaks"`
	GroupSize    int              `json:"groupSize"`
	TrainWindows int              `json:"trainWindows"`
	Ref          [][]float64      `json:"ref"`
	CountRef     []float64        `json:"countRef"`
	EnergyRef    []float64        `json:"energyRef"`
	Modes        []regionModeFile `json:"modes"`
}

type regionModeFile struct {
	Run int         `json:"run"`
	Ref [][]float64 `json:"ref"`
}

const modelFormatVersion = 1

// Save writes the model to w as JSON.
func (m *Model) Save(w io.Writer) error {
	mf := modelFile{
		Format:       modelFormatVersion,
		ProgramName:  m.ProgramName,
		Alpha:        m.Alpha,
		MaxGroupSize: m.MaxGroupSize,
		Machine: machineSummary{
			Nests:   len(m.Machine.Nests),
			Regions: m.Machine.NumRegions(),
			Blocks:  len(m.Machine.BlockNest),
		},
	}
	for _, id := range m.RegionIDs() {
		rm := m.Regions[id]
		rf := regionModelFile{
			Region:       rm.Region,
			Label:        rm.Label,
			NumPeaks:     rm.NumPeaks,
			GroupSize:    rm.GroupSize,
			TrainWindows: rm.TrainWindows,
			Ref:          rm.Ref,
			CountRef:     rm.CountRef,
			EnergyRef:    rm.EnergyRef,
		}
		for _, mode := range rm.Modes {
			rf.Modes = append(rf.Modes, regionModeFile{Run: mode.Run, Ref: mode.Ref})
		}
		mf.Regions = append(mf.Regions, rf)
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(&mf); err != nil {
		return fmt.Errorf("core: encoding model: %w", err)
	}
	return bw.Flush()
}

// SaveFile writes the model to a file.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: saving model: %w", err)
	}
	if err := m.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Hard sanity caps on loaded models. In fleet mode the model file is
// named by a remote client, so a hostile or corrupt file must not be
// able to provoke a panic, a silent mis-detection, or an oversized
// allocation (the monitor allocates ring buffers of MaxGroupSize+1
// windows up front).
const (
	maxLoadGroupSize = 1 << 20
	maxLoadNumPeaks  = 1 << 12
)

// checkSortedFinite verifies one reference sample: every value finite
// (NaN/Inf poison the K-S comparisons into silently accepting or
// rejecting everything) and sorted ascending (the two-sample K-S walk
// assumes sorted references; unsorted data yields garbage statistics,
// not an error).
func checkSortedFinite(region cfg.RegionID, what string, xs []float64) error {
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("core: model region %d: %s[%d] is not finite", region, what, i)
		}
		if i > 0 && x < xs[i-1] {
			return fmt.Errorf("core: model region %d: %s not sorted ascending at index %d", region, what, i)
		}
	}
	return nil
}

// validateRegionFile checks one region's reference data against the
// invariants Save guarantees and the monitor assumes.
func validateRegionFile(rf *regionModelFile) error {
	id := rf.Region
	if rf.NumPeaks < 0 || rf.NumPeaks > maxLoadNumPeaks {
		return fmt.Errorf("core: model region %d has invalid peak count %d", id, rf.NumPeaks)
	}
	if rf.GroupSize < 1 || rf.GroupSize > maxLoadGroupSize {
		return fmt.Errorf("core: model region %d has invalid group size %d", id, rf.GroupSize)
	}
	if rf.TrainWindows < 0 {
		return fmt.Errorf("core: model region %d has negative train windows %d", id, rf.TrainWindows)
	}
	if len(rf.Ref) != rf.NumPeaks {
		return fmt.Errorf("core: model region %d: %d reference ranks for %d peaks", id, len(rf.Ref), rf.NumPeaks)
	}
	for k, ref := range rf.Ref {
		if err := checkSortedFinite(id, fmt.Sprintf("ref[%d]", k), ref); err != nil {
			return err
		}
	}
	for j := range rf.Modes {
		mo := &rf.Modes[j]
		if len(mo.Ref) != rf.NumPeaks {
			return fmt.Errorf("core: model region %d mode %d: %d reference ranks for %d peaks (ragged)", id, j, len(mo.Ref), rf.NumPeaks)
		}
		for k, ref := range mo.Ref {
			if err := checkSortedFinite(id, fmt.Sprintf("mode[%d].ref[%d]", j, k), ref); err != nil {
				return err
			}
		}
	}
	if err := checkSortedFinite(id, "countRef", rf.CountRef); err != nil {
		return err
	}
	if err := checkSortedFinite(id, "energyRef", rf.EnergyRef); err != nil {
		return err
	}
	return nil
}

// LoadModel reads a model saved by Save and attaches it to the given
// region machine, which must have been rebuilt from the same program.
//
// The file is treated as untrusted input (in fleet mode its name arrives
// from a remote client): besides the format/fingerprint checks, every
// reference sample is validated to be finite and sorted, region shapes
// must be consistent (no ragged rank tables), and the group sizes are
// bounds-checked so a corrupt file fails with a descriptive error rather
// than a panic, an absurd allocation, or silent mis-detection.
func LoadModel(r io.Reader, machine *cfg.Machine) (*Model, error) {
	var mf modelFile
	dec := json.NewDecoder(bufio.NewReader(r))
	if err := dec.Decode(&mf); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if mf.Format != modelFormatVersion {
		return nil, fmt.Errorf("core: model format %d not supported (want %d)", mf.Format, modelFormatVersion)
	}
	// NaN fails every comparison, so test for the valid range instead of
	// the invalid one.
	if !(mf.Alpha > 0 && mf.Alpha < 1) {
		return nil, fmt.Errorf("core: model has invalid alpha %g", mf.Alpha)
	}
	if mf.MaxGroupSize < 1 || mf.MaxGroupSize > maxLoadGroupSize {
		return nil, fmt.Errorf("core: model has invalid max group size %d", mf.MaxGroupSize)
	}
	got := machineSummary{
		Nests:   len(machine.Nests),
		Regions: machine.NumRegions(),
		Blocks:  len(machine.BlockNest),
	}
	if got != mf.Machine {
		return nil, fmt.Errorf("core: model was trained for a different program: machine %+v, model expects %+v", got, mf.Machine)
	}
	m := &Model{
		ProgramName:  mf.ProgramName,
		Machine:      machine,
		Regions:      map[cfg.RegionID]*RegionModel{},
		Alpha:        mf.Alpha,
		MaxGroupSize: mf.MaxGroupSize,
	}
	for i := range mf.Regions {
		rf := &mf.Regions[i]
		if machine.Region(rf.Region) == nil {
			return nil, fmt.Errorf("core: model region %d not present in machine", rf.Region)
		}
		if m.Regions[rf.Region] != nil {
			return nil, fmt.Errorf("core: model region %d appears twice", rf.Region)
		}
		if err := validateRegionFile(rf); err != nil {
			return nil, err
		}
		if rf.GroupSize > mf.MaxGroupSize {
			return nil, fmt.Errorf("core: model region %d group size %d exceeds max group size %d", rf.Region, rf.GroupSize, mf.MaxGroupSize)
		}
		rm := &RegionModel{
			Region:       rf.Region,
			Label:        rf.Label,
			NumPeaks:     rf.NumPeaks,
			GroupSize:    rf.GroupSize,
			TrainWindows: rf.TrainWindows,
			Ref:          rf.Ref,
			CountRef:     rf.CountRef,
			EnergyRef:    rf.EnergyRef,
		}
		for _, mo := range rf.Modes {
			rm.Modes = append(rm.Modes, RegionMode{Run: mo.Run, Ref: mo.Ref})
		}
		m.Regions[rf.Region] = rm
	}
	if len(m.Regions) == 0 {
		return nil, fmt.Errorf("core: model contains no regions")
	}
	return m, nil
}

// LoadModelFile reads a model from a file.
func LoadModelFile(path string, machine *cfg.Machine) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: loading model: %w", err)
	}
	defer f.Close()
	return LoadModel(f, machine)
}
