package core

import (
	"math/rand"
	"testing"
)

// trainSmall builds a model over the two-region synthetic machine.
func trainSmall(t *testing.T) (*Model, *cfgMachine) {
	t.Helper()
	m := testMachine(t)
	model, err := Train("synthetic", m, synthTrainingRuns(m, 8, 100e3, 250e3), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	return model, m
}

// anomalousSTS yields windows that match no region (peaks at a foreign
// base frequency and twice the usual count).
func anomalousSTS(r *rand.Rand, n int) []STS {
	out := make([]STS, n)
	for i := range out {
		out[i] = synthSTS(r, 0, 37e3, 12, float64(i)*0.001)
	}
	return out
}

// TestReportThresholdSemantics: the paper tolerates up to reportThreshold
// consecutive rejections; the report fires on the next one.
func TestReportThresholdSemantics(t *testing.T) {
	model, m := trainSmall(t)
	r := rand.New(rand.NewSource(5))

	mc := DefaultMonitorConfig()
	mc.ReportThreshold = 3
	mon, err := NewMonitor(model, mc)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up with matching region-0 windows.
	for i := 0; i < 30; i++ {
		s := synthSTS(r, m.LoopRegionOf(0), 100e3, 5, float64(i)*0.001)
		if mon.Observe(&s) {
			t.Fatalf("report during clean warm-up at %d", i)
		}
	}
	// Feed anomalous windows; the report must fire on a streak longer
	// than the threshold, not at the first rejection.
	bad := anomalousSTS(r, 12)
	reportAt := -1
	firstRejectAt := -1
	for i := range bad {
		fired := mon.Observe(&bad[i])
		if firstRejectAt < 0 && mon.Outcomes[len(mon.Outcomes)-1].Rejected {
			firstRejectAt = i
		}
		if fired && reportAt < 0 {
			reportAt = i
		}
	}
	if reportAt < 0 {
		t.Fatal("anomalous stream never reported")
	}
	if firstRejectAt < 0 {
		t.Fatal("anomalous stream never rejected")
	}
	if gap := reportAt - firstRejectAt; gap < mc.ReportThreshold {
		t.Errorf("report after %d rejections; threshold %d must be tolerated first", gap+1, mc.ReportThreshold)
	}
}

// TestGroupSizeScaleChangesLatency: a larger scale means more windows are
// needed before the monitor can test at all.
func TestGroupSizeScaleChangesLatency(t *testing.T) {
	model, m := trainSmall(t)

	firstRejection := func(scale float64) int {
		r := rand.New(rand.NewSource(6))
		mc := DefaultMonitorConfig()
		mc.GroupSizeScale = scale
		mc.BurstWindows = -1 // isolate the scaled main test
		mon, err := NewMonitor(model, mc)
		if err != nil {
			t.Fatal(err)
		}
		// Matching region-0 stream whose peaks drift 8% after window 40:
		// a shift only a full-size group can resolve.
		for i := 0; i < 40; i++ {
			s := synthSTS(r, m.LoopRegionOf(0), 100e3, 5, float64(i)*0.001)
			mon.Observe(&s)
		}
		for i := 40; i < 200; i++ {
			s := synthSTS(r, m.LoopRegionOf(0), 92e3, 5, float64(i)*0.001)
			mon.Observe(&s)
			if mon.Outcomes[len(mon.Outcomes)-1].Rejected {
				return i
			}
		}
		return 1 << 30
	}
	fast := firstRejection(1)
	slow := firstRejection(3)
	if fast >= 1<<30 {
		t.Fatal("scale 1 never rejected the shifted stream")
	}
	if slow < fast {
		t.Errorf("3x group size rejected at window %d, before 1x at %d", slow, fast)
	}
}

// TestMonitorOutcomesAlignWithObservations: one outcome per Observe call,
// in order.
func TestMonitorOutcomesAlignWithObservations(t *testing.T) {
	model, m := trainSmall(t)
	mon, err := NewMonitor(model, DefaultMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	run := synthRun(r, m, 100e3, 250e3)
	for i := range run {
		mon.Observe(&run[i])
		if len(mon.Outcomes) != i+1 {
			t.Fatalf("after %d observations: %d outcomes", i+1, len(mon.Outcomes))
		}
	}
	// Reports reference valid windows.
	for _, rep := range mon.Reports {
		if rep.Window < 0 || rep.Window >= len(run) {
			t.Errorf("report window %d out of range", rep.Window)
		}
	}
}

// TestMonitorRecoversAfterAnomaly: once an anomalous episode ends, the
// monitor re-locks and stops flagging.
func TestMonitorRecoversAfterAnomaly(t *testing.T) {
	model, m := trainSmall(t)
	mon, err := NewMonitor(model, DefaultMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(8))
	var stream []STS
	for i := 0; i < 40; i++ {
		stream = append(stream, synthSTS(r, m.LoopRegionOf(0), 100e3, 5, 0))
	}
	stream = append(stream, anomalousSTS(r, 20)...)
	for i := 0; i < 60; i++ {
		stream = append(stream, synthSTS(r, m.LoopRegionOf(0), 100e3, 5, 0))
	}
	for i := range stream {
		mon.Observe(&stream[i])
	}
	if len(mon.Reports) == 0 {
		t.Fatal("anomalous episode not reported")
	}
	// The tail (last 20 windows, well past the episode) must be unflagged.
	for i := len(stream) - 20; i < len(stream); i++ {
		if mon.Outcomes[i].Flagged {
			t.Errorf("window %d still flagged long after the episode ended", i)
		}
	}
}

// TestMonitorCurrentRegion tracks the public region estimate.
func TestMonitorCurrentRegion(t *testing.T) {
	model, m := trainSmall(t)
	mon, err := NewMonitor(model, DefaultMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	run := synthRun(r, m, 100e3, 250e3)
	for i := range run {
		mon.Observe(&run[i])
	}
	if got := mon.CurrentRegion(); got != m.LoopRegionOf(1) {
		t.Errorf("final region estimate %v, want loop region 1", got)
	}
}

// BenchmarkMonitorObserve measures monitoring throughput in windows/sec —
// the budget a deployed receiver has per STS.
func BenchmarkMonitorObserve(b *testing.B) {
	m, err := machineBuild(buildBenchProgram())
	if err != nil {
		b.Fatal(err)
	}
	model, err := Train("bench", m, synthTrainingRuns(m, 8, 100e3, 250e3), DefaultTrainConfig())
	if err != nil {
		b.Fatal(err)
	}
	mon, err := NewMonitor(model, DefaultMonitorConfig())
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	windows := make([]STS, 256)
	for i := range windows {
		windows[i] = synthSTS(r, m.LoopRegionOf(0), 100e3, 5, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon.Observe(&windows[i%len(windows)])
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "windows/s")
}

// buildBenchProgram mirrors testMachine's program without needing a *testing.T.
func buildBenchProgram() *programT {
	b := builderNew("bench", 4)
	entry := b.NewBlock("entry")
	h1 := b.NewBlock("h1")
	b1 := b.NewBlock("b1")
	mid := b.NewBlock("mid")
	h2 := b.NewBlock("h2")
	b2 := b.NewBlock("b2")
	exit := b.NewBlock("exit")
	entry.Li(1, 10).Li(0, 0)
	entry.Jump(h1)
	h1.Branch(condGT, 1, 0, b1, mid)
	b1.SubI(1, 1, 1)
	b1.Jump(h1)
	mid.Li(1, 10)
	mid.Jump(h2)
	h2.Branch(condGT, 1, 0, b2, exit)
	b2.SubI(1, 1, 1)
	b2.Jump(h2)
	exit.Halt()
	return b.Build()
}
