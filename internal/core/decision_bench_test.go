package core

import (
	"math/rand"
	"testing"

	"eddie/internal/stats"
)

// benchEvalSetup trains a 16-mode model on the two-nest synthetic
// machine and builds one monitored group of size n whose peak
// frequencies sit 5% off every training mode: the multi-mode worst case,
// where evalGroups scans all 16 modes before rejecting. The counts and
// energies are in-bounds so the scan is not short-circuited.
func benchEvalSetup(b *testing.B, n int) (*RegionModel, *groupSet, float64) {
	b.Helper()
	m := testMachine(b)
	runs := synthTrainingRuns(m, 16, 100e3, 250e3)
	tc := DefaultTrainConfig()
	model, err := Train("synthetic", m, runs, tc)
	if err != nil {
		b.Fatal(err)
	}
	rm := model.Regions[m.LoopRegionOf(0)]
	if rm == nil || len(rm.Modes) != 16 {
		b.Fatalf("unexpected bench model: %+v", rm)
	}
	g := newGroupSet(rm.NumPeaks, n)
	g.reset()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		g.counts = append(g.counts, float64(rm.NumPeaks))
		g.energies = append(g.energies, 1050+r.Float64()*10)
		for k := 0; k < rm.NumPeaks; k++ {
			ref := rm.Modes[0].Ref[k]
			g.ranks[k] = append(g.ranks[k], ref[r.Intn(len(ref))]*1.05)
		}
	}
	return rm, &g, stats.KolmogorovInverse(1 - tc.Alpha)
}

// BenchmarkEvalGroups measures one full multi-mode region decision on an
// anomalous group of 96 windows (the largest candidate in the default
// group-size grid). The legacy variant copy-and-sorts the
// group inside every K-S call (16 modes x 5 ranks per op); the presorted
// variant pays one up-front sort per group (amortized across every
// re-test by the monitor's fill-slot cache, so it is excluded here the
// same way it is amortized in production) and runs the zero-copy merge
// kernel.
func BenchmarkEvalGroups(b *testing.B) {
	const n = 96
	b.Run("legacy", func(b *testing.B) {
		rm, g, cAlpha := benchEvalSetup(b, n)
		scratch := make([]float64, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := evalGroups(rm, rm.Modes, g, 0.2, cAlpha, scratch, 0, nil)
			if !res.rejected {
				b.Fatal("anomalous group accepted")
			}
		}
	})
	b.Run("presorted", func(b *testing.B) {
		rm, g, cAlpha := benchEvalSetup(b, n)
		g.sortAll()
		scratch := make([]float64, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := evalGroups(rm, rm.Modes, g, 0.2, cAlpha, scratch, 0, nil)
			if !res.rejected {
				b.Fatal("anomalous group accepted")
			}
		}
	})
}
