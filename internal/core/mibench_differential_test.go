package core_test

import (
	"reflect"
	"testing"

	"eddie/internal/core"
	"eddie/internal/inject"
	"eddie/internal/mibench"
	"eddie/internal/obs"
	"eddie/internal/pipeline"
	"eddie/internal/pipeline/pipetest"
)

// TestMibenchDifferentialLegacyVsPresorted locks the sort-once decision
// kernel and the parallel training path down against the pre-existing
// behaviour on real workloads: every mibench program is trained through
// both the legacy copy-and-sort serial path and the presorted parallel
// path (the models must be byte-identical), and a clean plus an injected
// monitoring run is replayed through both decision kernels asserting
// bit-identical WindowOutcome history, reports and flight-recorder
// provenance including alarm dumps. Short mode covers a three-workload
// subset; the full run covers all of mibench.
func TestMibenchDifferentialLegacyVsPresorted(t *testing.T) {
	var names []string
	for _, w := range mibench.All() {
		names = append(names, w.Name)
	}
	if testing.Short() {
		names = names[:3]
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			f := pipetest.Train(t, name, pipetest.TinyConfig(), 5)

			// Training differential: the fixture model was built by the
			// presorted parallel path (Workers=0); rebuild from the same
			// runs with the legacy serial sweep and compare byte for byte.
			runs, err := pipeline.CollectRuns(f.W, f.Machine, f.Config, 0, f.TrainRuns, nil)
			if err != nil {
				t.Fatal(err)
			}
			tc := core.DefaultTrainConfig()
			tc.LegacySort = true
			tc.Workers = 1
			legacyModel, err := core.Train(f.W.Name, f.Machine, runs, tc)
			if err != nil {
				t.Fatal(err)
			}
			// Prime the lazy region-id cache on both sides: DeepEqual sees
			// the unexported cache fields, and whether the shared fixture's
			// cache is already populated depends on which tests ran first.
			f.Model.RegionIDs()
			legacyModel.RegionIDs()
			if !reflect.DeepEqual(f.Model, legacyModel) {
				t.Error("legacy serial training differs from presorted parallel training")
			}

			var injector inject.Injector
			if len(f.Machine.Nests) > 0 {
				injector = &inject.InLoop{
					Header: f.Machine.Nests[0].Header, Instrs: 8, MemOps: 4,
					Contamination: 0.5, Seed: 3,
				}
			}
			for _, cs := range []struct {
				name string
				inj  inject.Injector
			}{{"clean", nil}, {"injected", injector}} {
				t.Run(cs.name, func(t *testing.T) {
					run, err := pipeline.CollectRun(f.W, f.Machine, f.Config, 800, cs.inj)
					if err != nil {
						t.Fatal(err)
					}
					mcfgNew := core.DefaultMonitorConfig()
					mcfgNew.Flight = obs.NewFlightRecorder(len(run.STS) + 1)
					mcfgLegacy := core.DefaultMonitorConfig()
					mcfgLegacy.LegacySort = true
					mcfgLegacy.Flight = obs.NewFlightRecorder(len(run.STS) + 1)

					monNew, err := pipeline.Monitor(f.Model, run.STS, mcfgNew)
					if err != nil {
						t.Fatal(err)
					}
					monLegacy, err := pipeline.Monitor(f.Model, run.STS, mcfgLegacy)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(monNew.Outcomes, monLegacy.Outcomes) {
						t.Error("WindowOutcome histories differ")
					}
					if !reflect.DeepEqual(monNew.Reports, monLegacy.Reports) {
						t.Error("report lists differ")
					}
					recNew := mcfgNew.Flight.Recent()
					recLegacy := mcfgLegacy.Flight.Recent()
					if len(recNew) != len(recLegacy) {
						t.Fatalf("flight record counts differ: %d vs %d", len(recNew), len(recLegacy))
					}
					for i := range recNew {
						if !reflect.DeepEqual(recNew[i], recLegacy[i]) {
							t.Fatalf("flight record %d differs:\npresorted: %+v\nlegacy:    %+v", i, recNew[i], recLegacy[i])
						}
					}
					if mcfgNew.Flight.Alarms() != mcfgLegacy.Flight.Alarms() {
						t.Errorf("alarm counts differ: %d vs %d", mcfgNew.Flight.Alarms(), mcfgLegacy.Flight.Alarms())
					}
					if !reflect.DeepEqual(mcfgNew.Flight.LastAlarm(), mcfgLegacy.Flight.LastAlarm()) {
						t.Error("alarm dumps differ")
					}
				})
			}
		})
	}
}
