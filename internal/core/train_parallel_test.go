package core

import (
	"reflect"
	"testing"

	"eddie/internal/stats"
)

// TestSelectGroupSizeEmptySeqs is the regression test for the empty-seqs
// guard: a region can carry modes but no tagged sequences (e.g. a model
// assembled by hand or from pooled windows), and the visit-length median
// used to index an empty slice. The sweep has nothing to measure, so the
// smallest candidate is the right answer.
func TestSelectGroupSizeEmptySeqs(t *testing.T) {
	tc := DefaultTrainConfig()
	rm := &RegionModel{
		Region:   1,
		NumPeaks: 2,
		Ref:      [][]float64{{1, 2, 3}, {4, 5, 6}},
		Modes: []RegionMode{
			{Run: 0, Ref: [][]float64{{1, 2, 3}, {4, 5, 6}}},
		},
		TrainWindows: 3,
	}
	cAlpha := stats.KolmogorovInverse(1 - tc.Alpha)
	got := selectGroupSize(rm, nil, tc, cAlpha)
	want := tc.GroupSizes[0]
	for _, n := range tc.GroupSizes {
		if n < want {
			want = n
		}
	}
	if got != want {
		t.Errorf("selectGroupSize with empty seqs = %d, want minimum candidate %d", got, want)
	}
	if got2 := selectGroupSize(rm, []taggedSeq{}, tc, cAlpha); got2 != want {
		t.Errorf("selectGroupSize with zero-length seqs = %d, want %d", got2, want)
	}
}

// TestTrainWorkerCountDeterministic pins the parallel-training contract:
// every worker count builds the byte-identical model. Regions are
// independent, results land in index-addressed slots, and assembly is in
// region-id order, so only scheduling varies.
func TestTrainWorkerCountDeterministic(t *testing.T) {
	m := testMachine(t)
	runs := synthTrainingRuns(m, 8, 100e3, 250e3)
	tc := DefaultTrainConfig()
	tc.Workers = 1
	base, err := Train("synthetic", m, runs, tc)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 0} {
		tc.Workers = workers
		model, err := Train("synthetic", m, runs, tc)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(base, model) {
			t.Errorf("workers=%d: model differs from serial build", workers)
		}
	}
}

// TestTrainLegacySortIdentical proves the presorted group-size sweep
// picks the identical model as the copy-and-sort sweep it replaced.
func TestTrainLegacySortIdentical(t *testing.T) {
	m := testMachine(t)
	runs := synthTrainingRuns(m, 8, 100e3, 250e3)
	tc := DefaultTrainConfig()
	tc.LegacySort = true
	tc.Workers = 1
	legacy, err := Train("synthetic", m, runs, tc)
	if err != nil {
		t.Fatal(err)
	}
	tc.LegacySort = false
	tc.Workers = 0
	presorted, err := Train("synthetic", m, runs, tc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy, presorted) {
		t.Error("presorted training differs from the legacy copy-and-sort path")
	}
}
