package core_test

import (
	"fmt"
	"runtime"
	"testing"

	"eddie/internal/core"
	"eddie/internal/synthbench"
)

// synthBenchModel trains the scaled synthetic benchmark model: 12 loop
// regions (plus transitions) with 16 spectral modes each — wide enough
// that the global rejection scan and the per-region training fan-out
// both have real work.
func synthBenchModel(b *testing.B) (*core.Model, []core.STS, []core.STS) {
	b.Helper()
	const nests = 12
	m, err := synthbench.Machine(nests)
	if err != nil {
		b.Fatal(err)
	}
	runs := synthbench.TrainingRuns(m, nests, 16, 30, 5)
	model, err := core.Train("synthbench", m, runs, core.DefaultTrainConfig())
	if err != nil {
		b.Fatal(err)
	}
	clean := synthbench.Stream(m, 2000, 5, 1)
	anomalous := synthbench.Stream(m, 2000, 5, 1.05)
	return model, clean, anomalous
}

// BenchmarkObserveMultiMode is the multi-mode/multi-region decision
// worst case: every monitored group is 5% off all 16 training modes, so
// each window drives the full rejection machinery — mode scan, burst
// test, successor probes and the global scan over all regions. The same
// group is re-tested dozens of times per window; the presorted kernel
// sorts it once per fill slot while the legacy path re-sorts inside
// every K-S call.
func BenchmarkObserveMultiMode(b *testing.B) {
	model, _, anomalous := synthBenchModel(b)
	for _, legacy := range []bool{false, true} {
		name := "presorted"
		if legacy {
			name = "legacy"
		}
		b.Run(name, func(b *testing.B) {
			mcfg := core.DefaultMonitorConfig()
			mcfg.GroupSizeScale = 8 // n=96: the paper's largest group size
			mcfg.LegacySort = legacy
			mon, err := core.NewMonitor(model, mcfg)
			if err != nil {
				b.Fatal(err)
			}
			for i := range anomalous {
				mon.Observe(&anomalous[i])
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mon.Observe(&anomalous[i%len(anomalous)])
			}
		})
	}
}

// BenchmarkObserveClean is the steady accept path the fleet server lives
// in: the monitored stream matches the model, the first scanned mode
// accepts.
func BenchmarkObserveClean(b *testing.B) {
	model, clean, _ := synthBenchModel(b)
	for _, legacy := range []bool{false, true} {
		name := "presorted"
		if legacy {
			name = "legacy"
		}
		b.Run(name, func(b *testing.B) {
			mcfg := core.DefaultMonitorConfig()
			mcfg.LegacySort = legacy
			mon, err := core.NewMonitor(model, mcfg)
			if err != nil {
				b.Fatal(err)
			}
			for i := range clean {
				mon.Observe(&clean[i])
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mon.Observe(&clean[i%len(clean)])
			}
		})
	}
}

// BenchmarkTrain measures the per-region training fan-out: 12 loop
// regions, 16 runs each, leave-one-out group-size sweeps per region.
// Workers=1 is the serial baseline; scaling should be near-linear until
// the region count or the core count runs out.
func BenchmarkTrain(b *testing.B) {
	const nests = 12
	m, err := synthbench.Machine(nests)
	if err != nil {
		b.Fatal(err)
	}
	runs := synthbench.TrainingRuns(m, nests, 16, 30, 5)
	workerCounts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		workerCounts = append(workerCounts, n)
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			tc := core.DefaultTrainConfig()
			tc.Workers = w
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Train("synthbench", m, runs, tc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
