package core

import (
	"fmt"

	"eddie/internal/cfg"
	"eddie/internal/stats"
)

// Default adaptation parameters. The rate and step bound are deliberately
// conservative: slow channel drift (gain drift, DC wander, clock skew)
// moves the spectra by a tiny fraction per window, so a small per-update
// pull is enough to track it, while a short anomalous episode that
// somehow survives every guard still cannot move the reference far
// before rejections cut the clean streak.
const (
	DefaultAdaptRate           = 0.05
	DefaultAdaptMaxStepFrac    = 0.05
	DefaultAdaptMinCleanStreak = 12
	DefaultAdaptMaxKSDistance  = 0.35
)

// adaptMinGroup is the smallest accepted monitored group adaptation will
// learn from. Regions dwell for only a few dozen windows per visit —
// often fewer than their trained group size — so insisting on a full
// trained group would starve adaptation in exactly the short-dwell
// regions that need it; below 8 windows the group's empirical quantiles
// are too coarse to be a teacher.
const adaptMinGroup = 8

// adaptRelSpanFloor widens the blend's step-bound span to at least this
// fraction of the reference's median value, and doubles as the "relative
// nearness" pursuit gate. Some rank references are near point masses — a
// span of tens of Hz at MHz positions — so a purely span-relative step
// bound could never track ppm-scale clock skew (hundreds of spans per
// hour), and the K-S distance to such a rank saturates at 1 the moment
// the ladder moves at all. A rank whose observed median sits within this
// relative distance of its reference is channel drift by construction:
// code injection retimes loops at percent scale, far above this floor.
const adaptRelSpanFloor = 0.005

// AdaptConfig controls the drift-adaptive reference layer: when enabled,
// the monitor maintains a per-region shadow of the trained reference
// distributions as incrementally updated sorted sketches, folding in
// monitored groups only from windows it judged clean. Three stacked
// guards keep injected code from poisoning the reference: an update is
// admitted only after MinCleanStreak consecutive clean windows, each
// peak rank is blended only when it agrees with its current reference (a
// K-S distance within MaxKSDistance, or a sub-permille relative shift no
// injection could produce), and even then each reference value moves at
// most a bounded step per update.
//
// The zero value (Enabled false) is the static paper behavior: the
// monitor never touches the model and the decision path is bit-identical
// to a build without this layer. Adaptation requires the default
// sort-once decision path; under LegacySort (differential testing only)
// updates are skipped.
type AdaptConfig struct {
	// Enabled turns the adaptive layer on. Off by default.
	Enabled bool
	// Rate is the per-update blend fraction: each reference quantile
	// moves this fraction of the way toward the observed group's
	// matching quantile. Must be in (0, 1]; zero means
	// DefaultAdaptRate.
	Rate float64
	// MaxStepFrac bounds a single update's per-value shift to this
	// fraction of the reference span (the contamination backstop; the
	// span is floored at a small fraction of the reference's position so
	// near-point-mass ranks can track at all). Must be in (0, 1]; zero
	// means DefaultAdaptMaxStepFrac.
	MaxStepFrac float64
	// MinCleanStreak is how many consecutive clean windows must
	// accumulate before updates are admitted; any rejection resets the
	// streak. Zero means DefaultAdaptMinCleanStreak.
	MinCleanStreak int
	// MaxKSDistance gates each peak rank individually: a rank whose
	// monitored sample sits further than this K-S distance from its
	// current reference is not blended (a group can be "clean" at
	// significance alpha yet still be an implausible teacher for the
	// ranks it disagrees on), unless the rank's shift is relatively tiny
	// (see adaptRelSpanFloor). Must be in (0, 1); zero means
	// DefaultAdaptMaxKSDistance.
	MaxKSDistance float64
}

// withDefaults fills zero fields and validates ranges.
func (c AdaptConfig) withDefaults() (AdaptConfig, error) {
	if c.Rate == 0 {
		c.Rate = DefaultAdaptRate
	}
	if c.MaxStepFrac == 0 {
		c.MaxStepFrac = DefaultAdaptMaxStepFrac
	}
	if c.MinCleanStreak == 0 {
		c.MinCleanStreak = DefaultAdaptMinCleanStreak
	}
	if c.MaxKSDistance == 0 {
		c.MaxKSDistance = DefaultAdaptMaxKSDistance
	}
	if c.Rate < 0 || c.Rate > 1 {
		return c, fmt.Errorf("core: adapt rate %g outside (0, 1]", c.Rate)
	}
	if c.MaxStepFrac < 0 || c.MaxStepFrac > 1 {
		return c, fmt.Errorf("core: adapt max step fraction %g outside (0, 1]", c.MaxStepFrac)
	}
	if c.MinCleanStreak < 0 {
		return c, fmt.Errorf("core: negative adapt clean streak %d", c.MinCleanStreak)
	}
	if c.MaxKSDistance < 0 || c.MaxKSDistance >= 1 {
		return c, fmt.Errorf("core: adapt K-S gate %g outside (0, 1)", c.MaxKSDistance)
	}
	return c, nil
}

// adaptRegion is one region's adaptive shadow: a private deep copy of the
// trained RegionModel whose mode references, count reference and energy
// reference are mutable sketches. The shadow — never the shared, interned
// Model — is what the monitor's decision path tests against, so thousands
// of fleet sessions can adapt independently off one trained model.
type adaptRegion struct {
	rm RegionModel
	// drift accumulates the normalized per-update shift of this region's
	// sketches: how far adaptation has pulled the reference from its
	// trained position, in units of (floored) reference spans.
	drift float64
}

// adaptState is the monitor's adaptation bookkeeping.
type adaptState struct {
	cfg     AdaptConfig
	regions map[cfg.RegionID]*adaptRegion
	// cleanStreak counts consecutive clean tested windows; any rejection
	// resets it. It survives clean region transitions: a border crossing
	// is normal program behavior, not grounds for suspicion, and
	// short-dwell regions would otherwise never accumulate enough trust
	// to learn.
	cleanStreak int
	updates     int64
	drift       float64
}

func newAdaptState(c AdaptConfig) (*adaptState, error) {
	c, err := c.withDefaults()
	if err != nil {
		return nil, err
	}
	return &adaptState{cfg: c, regions: map[cfg.RegionID]*adaptRegion{}}, nil
}

// region returns src's adaptive shadow, building it on first use. The
// shadow copies every slice the blend mutates (mode refs, count ref,
// energy ref); the pooled Ref and the immutable metadata alias the
// trained model.
func (a *adaptState) region(src *RegionModel) *adaptRegion {
	ar := a.regions[src.Region]
	if ar != nil {
		return ar
	}
	ar = &adaptRegion{rm: *src}
	ar.rm.Modes = make([]RegionMode, len(src.Modes))
	for i, md := range src.Modes {
		refs := make([][]float64, len(md.Ref))
		for k, r := range md.Ref {
			refs[k] = append([]float64(nil), r...)
		}
		ar.rm.Modes[i] = RegionMode{Run: md.Run, Ref: refs}
	}
	ar.rm.CountRef = append([]float64(nil), src.CountRef...)
	ar.rm.EnergyRef = append([]float64(nil), src.EnergyRef...)
	a.regions[src.Region] = ar
	return ar
}

// regionModel resolves the reference model the decision path should test
// region id against: the adaptive shadow when adaptation is on, else the
// trained model. With adaptation off this is a nil check and a map
// lookup — the exact lookup the monitor always did.
func (m *Monitor) regionModel(id cfg.RegionID) *RegionModel {
	rm := m.model.Regions[id]
	if m.adapt == nil || rm == nil || !rm.Testable() {
		return rm
	}
	return &m.adapt.region(rm).rm
}

// adaptObserve runs after every clean region test: it advances the clean
// streak and, when the group is large enough (qualified) and every guard
// passes, folds the accepted monitored group into the current region's
// reference sketches. rm is the region's shadow model (the one the clean
// verdict was computed against) and n the group size just tested, so
// fillGroups(n) is a slot-cache hit for the very group just tested — the
// update costs a few merge passes and zero allocations.
func (m *Monitor) adaptObserve(rm *RegionModel, n int, qualified bool) {
	a := m.adapt
	a.cleanStreak++
	if !qualified || a.cleanStreak < a.cfg.MinCleanStreak || m.mcfg.LegacySort {
		return
	}
	ar := a.regions[rm.Region]
	if ar == nil || len(ar.rm.Modes) == 0 {
		return
	}
	g := m.fillGroups(n)
	if !g.sorted {
		return
	}
	// Teach only the mode that accepted the group: the other training
	// modes describe inputs the stream is not currently executing, and
	// pulling them toward this group would smear distinct modes together.
	mode := &ar.rm.Modes[m.lastMode[rm.Region]%len(ar.rm.Modes)]
	ranks := rm.NumPeaks
	if ranks > len(g.ranks) {
		ranks = len(g.ranks)
	}
	if ranks > len(mode.Ref) {
		ranks = len(mode.Ref)
	}
	// Per-rank distance gate: a clean verdict tolerates up to
	// RejectFraction of the ranks rejecting, and even accepted small
	// groups sit a sizable K-S distance from the pooled reference — so
	// each rank qualifies as a teacher individually. A rank is blended
	// when it agrees with its current reference (D within MaxKSDistance)
	// or when its whole distribution moved by a relative hair's breadth
	// (within adaptRelSpanFloor): near-point-mass ranks saturate D at
	// the slightest clock skew, yet a sub-permille shift is far below
	// the scale any code injection produces. Disagreeing ranks
	// contribute nothing: an injected signature that survives the streak
	// guard still cannot teach the ranks it perturbed.
	var drift float64
	blended := 0
	for k := 0; k < ranks; k++ {
		ref := mode.Ref[k]
		obs := g.ranks[k]
		if len(ref) == 0 || len(obs) == 0 {
			continue
		}
		refMid := stats.MedianSorted(ref)
		if stats.KSStatisticPresorted(ref, obs) > a.cfg.MaxKSDistance {
			obsMid := stats.MedianSorted(obs)
			near := refMid > 0 && obsMid > 0 &&
				obsMid > refMid*(1-adaptRelSpanFloor) && obsMid < refMid*(1+adaptRelSpanFloor)
			if !near {
				continue
			}
		}
		minSpan := 0.0
		if refMid > 0 {
			minSpan = adaptRelSpanFloor * refMid
		}
		drift += stats.BlendSorted(ref, obs, a.cfg.Rate, a.cfg.MaxStepFrac, minSpan)
		blended++
	}
	if blended == 0 {
		// No rank agreed with its reference: the group is not a
		// plausible teacher at all, so leave the side channels alone too.
		return
	}
	if len(ar.rm.CountRef) > 0 && len(g.counts) > 0 {
		drift += stats.BlendSorted(ar.rm.CountRef, g.counts, a.cfg.Rate, a.cfg.MaxStepFrac, 0)
		blended++
	}
	if len(ar.rm.EnergyRef) > 0 && len(g.energies) > 0 {
		drift += stats.BlendSorted(ar.rm.EnergyRef, g.energies, a.cfg.Rate, a.cfg.MaxStepFrac, 0)
		blended++
	}
	drift /= float64(blended)
	ar.drift += drift
	a.drift += drift
	a.updates++
}

// AdaptEnabled reports whether the adaptive reference layer is active.
func (m *Monitor) AdaptEnabled() bool { return m.adapt != nil }

// AdaptUpdates returns how many reference updates adaptation has admitted
// so far (0 when disabled). Monotone; pollers diff successive reads.
func (m *Monitor) AdaptUpdates() int64 {
	if m.adapt == nil {
		return 0
	}
	return m.adapt.updates
}

// AdaptDrift returns the cumulative normalized drift distance adaptation
// has moved the references across all regions, in units of (floored)
// reference spans (0 when disabled).
func (m *Monitor) AdaptDrift() float64 {
	if m.adapt == nil {
		return 0
	}
	return m.adapt.drift
}

// AdaptRegionDrift calls fn with each adapted region's cumulative drift,
// in ascending region order. Regions never visited (no shadow yet) are
// skipped.
func (m *Monitor) AdaptRegionDrift(fn func(region cfg.RegionID, drift float64)) {
	if m.adapt == nil {
		return
	}
	for _, id := range m.model.RegionIDs() {
		if ar := m.adapt.regions[id]; ar != nil {
			fn(id, ar.drift)
		}
	}
}
