package core

import (
	"math/rand"
	"reflect"
	"testing"

	"eddie/internal/obs"
)

// diffStreams builds the monitored streams for the legacy-vs-presorted
// differential: a clean run (region switching, steady accepts, the
// fill-slot cache sliding every window) and an anomalous run whose
// middle third has all peak frequencies shifted by 8% (rejection
// streaks, burst tests, successor probes, alarms and global re-locks).
func diffStreams(m *cfgMachine) map[string][]STS {
	r := rand.New(rand.NewSource(99))
	clean := synthRun(r, m, 100e3, 250e3)
	anomalous := make([]STS, len(clean))
	for i, s := range clean {
		c := s
		c.PeakFreqs = append([]float64(nil), s.PeakFreqs...)
		if i > len(clean)/3 && i < 2*len(clean)/3 {
			for k := range c.PeakFreqs {
				c.PeakFreqs[k] *= 1.08
			}
		}
		anomalous[i] = c
	}
	return map[string][]STS{"clean": clean, "anomalous": anomalous}
}

// TestMonitorLegacyVsPresortedDifferential feeds identical streams
// through the legacy copy-and-sort decision path and the sort-once
// presorted path and asserts every observable is bit-identical: the
// per-window report verdicts, the WindowOutcome history, the report
// list, and the full flight-recorder provenance including alarm dumps.
// Config variants force the paths through the burst test (large scaled
// group sizes), tiny probe groups and the default operating point.
func TestMonitorLegacyVsPresortedDifferential(t *testing.T) {
	m := testMachine(t)
	model, err := Train("synthetic", m, synthTrainingRuns(m, 8, 100e3, 250e3), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	configs := map[string]MonitorConfig{
		"default": DefaultMonitorConfig(),
		"scaled": func() MonitorConfig {
			c := DefaultMonitorConfig()
			c.GroupSizeScale = 4 // large n: exercises the burst test and the incremental slide
			return c
		}(),
		"tight": func() MonitorConfig {
			c := DefaultMonitorConfig()
			c.ReportThreshold = 1
			c.ProbeWindows = 4
			c.BurstWindows = 6
			return c
		}(),
	}
	for cname, mcfg := range configs {
		for sname, stream := range diffStreams(m) {
			t.Run(cname+"/"+sname, func(t *testing.T) {
				newCfg := mcfg
				newCfg.Flight = obs.NewFlightRecorder(len(stream) + 1)
				legacyCfg := mcfg
				legacyCfg.LegacySort = true
				legacyCfg.Flight = obs.NewFlightRecorder(len(stream) + 1)

				monNew, err := NewMonitor(model, newCfg)
				if err != nil {
					t.Fatal(err)
				}
				monLegacy, err := NewMonitor(model, legacyCfg)
				if err != nil {
					t.Fatal(err)
				}
				for i := range stream {
					rn := monNew.Observe(&stream[i])
					rl := monLegacy.Observe(&stream[i])
					if rn != rl {
						t.Fatalf("window %d: presorted reported=%v, legacy reported=%v", i, rn, rl)
					}
				}
				if !reflect.DeepEqual(monNew.Outcomes, monLegacy.Outcomes) {
					t.Error("WindowOutcome histories differ")
				}
				if !reflect.DeepEqual(monNew.Reports, monLegacy.Reports) {
					t.Errorf("report lists differ: presorted %+v, legacy %+v", monNew.Reports, monLegacy.Reports)
				}
				recNew := newCfg.Flight.Recent()
				recLegacy := legacyCfg.Flight.Recent()
				if len(recNew) != len(recLegacy) {
					t.Fatalf("flight record counts differ: %d vs %d", len(recNew), len(recLegacy))
				}
				for i := range recNew {
					if !reflect.DeepEqual(recNew[i], recLegacy[i]) {
						t.Fatalf("flight record %d differs:\npresorted: %+v\nlegacy:    %+v", i, recNew[i], recLegacy[i])
					}
				}
				if newCfg.Flight.Alarms() != legacyCfg.Flight.Alarms() {
					t.Errorf("alarm counts differ: %d vs %d", newCfg.Flight.Alarms(), legacyCfg.Flight.Alarms())
				}
				if !reflect.DeepEqual(newCfg.Flight.LastAlarm(), legacyCfg.Flight.LastAlarm()) {
					t.Error("alarm dumps differ")
				}
				if sname == "anomalous" && len(monNew.Reports) == 0 {
					t.Error("anomalous stream raised no reports; differential exercised nothing")
				}
			})
		}
	}
}
