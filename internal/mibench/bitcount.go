package mibench

import "eddie/internal/isa"

// Bitcount memory layout (word addresses):
//
//	0:               N (item count, <= bitcountMaxN)
//	1..7:            per-method checksum outputs
//	8..23:           nibble popcount table (16 entries)
//	btab..btab+256:  byte popcount table (256 entries)
//	arr..arr+maxN:   input array A
//	out_m = arr+maxN*(1+m) for m in 0..6: per-method result arrays
//
// The program mirrors MiBench bitcount's structure: seven independent
// bit-counting methods (the original has seven too), each a loop nest over
// the same input array, with short non-loop checksum code between nests.
const (
	bitcountMaxN    = 2048
	bitcountNAddr   = 0
	bitcountSums    = 1
	bitcountTable   = 8
	bitcountByteTab = 32
	bitcountArr     = bitcountByteTab + 256
	bitcountOut     = bitcountArr + bitcountMaxN
	bitcountMethods = 7
	bitcountWords   = bitcountArr + bitcountMaxN*(1+bitcountMethods)
	bitcountNScale  = 1200 // nominal N; varies per run
)

// Bitcount builds the bitcount workload: seven bit-counting methods —
// shift-and-mask, Kernighan, nibble table lookup, SWAR, byte table lookup,
// shift-until-zero, and a 2x unrolled shift loop — each its own loop nest.
func Bitcount() *Workload {
	b := isa.NewBuilder("bitcount", bitcountWords)

	// Register conventions:
	//   r0  = constant 0        r1  = N
	//   r2  = i (item index)    r3  = x (current value)
	//   r4  = c (bit count)     r5  = scratch/address
	//   r6  = b (bit index)     r7  = scratch
	//   r8  = sum accumulator   r9  = constant base
	entry := b.NewBlock("entry")
	m1Head := b.NewBlock("m1_head")
	m1Item := b.NewBlock("m1_item")
	m1BitHead := b.NewBlock("m1_bit_head")
	m1BitBody := b.NewBlock("m1_bit_body")
	m1ItemDone := b.NewBlock("m1_item_done")
	m1Done := b.NewBlock("m1_done")
	m2Head := b.NewBlock("m2_head")
	m2Item := b.NewBlock("m2_item")
	m2KernHead := b.NewBlock("m2_kern_head")
	m2KernBody := b.NewBlock("m2_kern_body")
	m2ItemDone := b.NewBlock("m2_item_done")
	m2Done := b.NewBlock("m2_done")
	m3Head := b.NewBlock("m3_head")
	m3Item := b.NewBlock("m3_item")
	m3NibHead := b.NewBlock("m3_nib_head")
	m3NibBody := b.NewBlock("m3_nib_body")
	m3ItemDone := b.NewBlock("m3_item_done")
	m3Done := b.NewBlock("m3_done")
	m4Head := b.NewBlock("m4_head")
	m4Item := b.NewBlock("m4_item")
	m4Done := b.NewBlock("m4_done")
	m5Head := b.NewBlock("m5_head")
	m5Item := b.NewBlock("m5_item")
	m5ByteHead := b.NewBlock("m5_byte_head")
	m5ByteBody := b.NewBlock("m5_byte_body")
	m5ItemDone := b.NewBlock("m5_item_done")
	m5Done := b.NewBlock("m5_done")
	m6Head := b.NewBlock("m6_head")
	m6Item := b.NewBlock("m6_item")
	m6ShiftHead := b.NewBlock("m6_shift_head")
	m6ShiftBody := b.NewBlock("m6_shift_body")
	m6ItemDone := b.NewBlock("m6_item_done")
	m6Done := b.NewBlock("m6_done")
	m7Head := b.NewBlock("m7_head")
	m7Item := b.NewBlock("m7_item")
	m7BitHead := b.NewBlock("m7_bit_head")
	m7BitBody := b.NewBlock("m7_bit_body")
	m7ItemDone := b.NewBlock("m7_item_done")
	m7Done := b.NewBlock("m7_done")
	exit := b.NewBlock("exit")

	entry.
		Li(r0, 0).
		Load(r1, r0, bitcountNAddr).
		Li(r2, 0).
		Li(r8, 0)
	entry.Jump(m1Head)

	// Method 1: test-and-shift over the low 32 bits of each item.
	m1Head.Branch(isa.LT, r2, r1, m1Item, m1Done)
	m1Item.
		AddI(r5, r2, bitcountArr).
		Load(r3, r5, 0).
		Li(r4, 0).
		Li(r6, 0)
	m1Item.Jump(m1BitHead)
	m1BitHead.
		Li(r7, 32)
	m1BitHead.Branch(isa.LT, r6, r7, m1BitBody, m1ItemDone)
	m1BitBody.
		AndI(r7, r3, 1).
		Add(r4, r4, r7).
		ShrI(r3, r3, 1).
		AddI(r6, r6, 1)
	m1BitBody.Jump(m1BitHead)
	m1ItemDone.
		AddI(r5, r2, bitcountOut).
		Store(r5, 0, r4).
		Add(r8, r8, r4).
		AddI(r2, r2, 1)
	m1ItemDone.Jump(m1Head)
	// Inter-loop: record the method-1 checksum, reset for method 2.
	m1Done.
		Store(r0, bitcountSums+0, r8).
		Li(r2, 0).
		Li(r8, 0).
		XorI(r7, r8, 0x5a5a).
		AddI(r7, r7, 17)
	m1Done.Jump(m2Head)

	// Method 2: Kernighan's x &= x-1 loop (iteration count = popcount).
	m2Head.Branch(isa.LT, r2, r1, m2Item, m2Done)
	m2Item.
		AddI(r5, r2, bitcountArr).
		Load(r3, r5, 0).
		Li(r4, 0)
	m2Item.Jump(m2KernHead)
	m2KernHead.Branch(isa.NE, r3, r0, m2KernBody, m2ItemDone)
	m2KernBody.
		SubI(r7, r3, 1).
		And(r3, r3, r7).
		AddI(r4, r4, 1)
	m2KernBody.Jump(m2KernHead)
	m2ItemDone.
		AddI(r5, r2, bitcountOut+bitcountMaxN).
		Store(r5, 0, r4).
		Add(r8, r8, r4).
		AddI(r2, r2, 1)
	m2ItemDone.Jump(m2Head)
	m2Done.
		Store(r0, bitcountSums+1, r8).
		Li(r2, 0).
		Li(r8, 0).
		MulI(r7, r1, 3).
		ShrI(r7, r7, 2)
	m2Done.Jump(m3Head)

	// Method 3: nibble table lookup over the low 32 bits (8 nibbles).
	m3Head.Branch(isa.LT, r2, r1, m3Item, m3Done)
	m3Item.
		AddI(r5, r2, bitcountArr).
		Load(r3, r5, 0).
		Li(r4, 0).
		Li(r6, 0)
	m3Item.Jump(m3NibHead)
	m3NibHead.
		Li(r7, 8)
	m3NibHead.Branch(isa.LT, r6, r7, m3NibBody, m3ItemDone)
	m3NibBody.
		AndI(r7, r3, 15).
		AddI(r7, r7, bitcountTable).
		Load(r7, r7, 0).
		Add(r4, r4, r7).
		ShrI(r3, r3, 4).
		AddI(r6, r6, 1)
	m3NibBody.Jump(m3NibHead)
	m3ItemDone.
		AddI(r5, r2, bitcountOut+2*bitcountMaxN).
		Store(r5, 0, r4).
		Add(r8, r8, r4).
		AddI(r2, r2, 1)
	m3ItemDone.Jump(m3Head)
	m3Done.
		Store(r0, bitcountSums+2, r8).
		Li(r2, 0).
		Li(r8, 0)
	m3Done.Jump(m4Head)

	// Method 4: SWAR parallel popcount of the low 32 bits, straight-line.
	m4Head.Branch(isa.LT, r2, r1, m4Item, m4Done)
	m4Item.
		AddI(r5, r2, bitcountArr).
		Load(r3, r5, 0).
		// x = x - ((x >> 1) & 0x55555555)
		ShrI(r7, r3, 1).
		AndI(r7, r7, 0x55555555).
		Sub(r3, r3, r7).
		// x = (x & 0x33..) + ((x >> 2) & 0x33..)
		AndI(r7, r3, 0x33333333).
		ShrI(r3, r3, 2).
		AndI(r3, r3, 0x33333333).
		Add(r3, r3, r7).
		// x = (x + (x >> 4)) & 0x0f0f0f0f
		ShrI(r7, r3, 4).
		Add(r3, r3, r7).
		AndI(r3, r3, 0x0f0f0f0f).
		// c = (x * 0x01010101) >> 24
		MulI(r3, r3, 0x01010101).
		ShrI(r4, r3, 24).
		AndI(r4, r4, 0xff).
		AddI(r5, r2, bitcountOut+3*bitcountMaxN).
		Store(r5, 0, r4).
		Add(r8, r8, r4).
		AddI(r2, r2, 1)
	m4Item.Jump(m4Head)
	m4Done.
		Store(r0, bitcountSums+3, r8).
		Li(r2, 0).
		Li(r8, 0)
	m4Done.Jump(m5Head)

	// Method 5: byte table lookup over the low 32 bits (4 bytes).
	m5Head.Branch(isa.LT, r2, r1, m5Item, m5Done)
	m5Item.
		AddI(r5, r2, bitcountArr).
		Load(r3, r5, 0).
		Li(r4, 0).
		Li(r6, 0)
	m5Item.Jump(m5ByteHead)
	m5ByteHead.
		Li(r7, 4)
	m5ByteHead.Branch(isa.LT, r6, r7, m5ByteBody, m5ItemDone)
	m5ByteBody.
		AndI(r7, r3, 255).
		AddI(r7, r7, bitcountByteTab).
		Load(r7, r7, 0).
		Add(r4, r4, r7).
		ShrI(r3, r3, 8).
		AddI(r6, r6, 1)
	m5ByteBody.Jump(m5ByteHead)
	m5ItemDone.
		AddI(r5, r2, bitcountOut+4*bitcountMaxN).
		Store(r5, 0, r4).
		Add(r8, r8, r4).
		AddI(r2, r2, 1)
	m5ItemDone.Jump(m5Head)
	m5Done.
		Store(r0, bitcountSums+4, r8).
		Li(r2, 0).
		Li(r8, 0)
	m5Done.Jump(m6Head)

	// Method 6: shift-until-zero — like method 1 but the inner loop ends
	// as soon as the remaining value is zero (data-dependent length =
	// position of the highest set bit).
	m6Head.Branch(isa.LT, r2, r1, m6Item, m6Done)
	m6Item.
		AddI(r5, r2, bitcountArr).
		Load(r3, r5, 0).
		Li(r4, 0)
	m6Item.Jump(m6ShiftHead)
	m6ShiftHead.Branch(isa.NE, r3, r0, m6ShiftBody, m6ItemDone)
	m6ShiftBody.
		AndI(r7, r3, 1).
		Add(r4, r4, r7).
		ShrI(r3, r3, 1)
	m6ShiftBody.Jump(m6ShiftHead)
	m6ItemDone.
		AddI(r5, r2, bitcountOut+5*bitcountMaxN).
		Store(r5, 0, r4).
		Add(r8, r8, r4).
		AddI(r2, r2, 1)
	m6ItemDone.Jump(m6Head)
	m6Done.
		Store(r0, bitcountSums+5, r8).
		Li(r2, 0).
		Li(r8, 0)
	m6Done.Jump(m7Head)

	// Method 7: 2x unrolled test-and-shift (16 inner iterations covering
	// 32 bits) — same work as method 1 at half the iteration frequency, so
	// its spectral peak sits an octave below method 1's.
	m7Head.Branch(isa.LT, r2, r1, m7Item, m7Done)
	m7Item.
		AddI(r5, r2, bitcountArr).
		Load(r3, r5, 0).
		Li(r4, 0).
		Li(r6, 0)
	m7Item.Jump(m7BitHead)
	m7BitHead.
		Li(r7, 16)
	m7BitHead.Branch(isa.LT, r6, r7, m7BitBody, m7ItemDone)
	m7BitBody.
		AndI(r7, r3, 1).
		Add(r4, r4, r7).
		ShrI(r3, r3, 1).
		AndI(r7, r3, 1).
		Add(r4, r4, r7).
		ShrI(r3, r3, 1).
		AddI(r6, r6, 1)
	m7BitBody.Jump(m7BitHead)
	m7ItemDone.
		AddI(r5, r2, bitcountOut+6*bitcountMaxN).
		Store(r5, 0, r4).
		Add(r8, r8, r4).
		AddI(r2, r2, 1)
	m7ItemDone.Jump(m7Head)
	m7Done.
		Store(r0, bitcountSums+6, r8)
	m7Done.Jump(exit)
	exit.Halt()

	prog := b.Build()
	return &Workload{
		Name:    "bitcount",
		Program: prog,
		GenInput: func(run int) []int64 {
			r := rng("bitcount", run)
			n := bitcountNScale + r.Intn(400) - 200
			mem := make([]int64, bitcountArr+bitcountMaxN)
			mem[bitcountNAddr] = int64(n)
			for i := 0; i < 16; i++ {
				mem[bitcountTable+i] = int64(popcount4(i))
			}
			for i := 0; i < 256; i++ {
				mem[bitcountByteTab+i] = int64(popcount4(i))
			}
			for i := 0; i < n; i++ {
				mem[bitcountArr+i] = int64(r.Uint32())
			}
			return mem
		},
	}
}

func popcount4(x int) int {
	c := 0
	for x != 0 {
		c += x & 1
		x >>= 1
	}
	return c
}
