package mibench

import (
	"testing"

	"eddie/internal/cfg"
	"eddie/internal/isa"
)

// run executes a workload functionally and returns the result.
func run(t *testing.T, w *Workload, runIdx int) *isa.ExecResult {
	t.Helper()
	res, err := isa.Execute(w.Program, isa.ExecConfig{
		MaxInstrs: 20_000_000,
		InitMem:   w.GenInput(runIdx),
	}, nil)
	if err != nil {
		t.Fatalf("%s: execute: %v", w.Name, err)
	}
	return res
}

func TestWorkloadsExecuteWithinBudget(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			res := run(t, w, 0)
			if res.DynInstrs < 100_000 {
				t.Errorf("%s: only %d dynamic instructions; too small for a region trace", w.Name, res.DynInstrs)
			}
			if res.DynInstrs > 5_000_000 {
				t.Errorf("%s: %d dynamic instructions; too slow for the experiment matrix", w.Name, res.DynInstrs)
			}
			t.Logf("%s: %d dynamic instructions", w.Name, res.DynInstrs)
		})
	}
}

func TestWorkloadsHaveMultipleLoopNests(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			m, err := cfg.BuildMachine(w.Program)
			if err != nil {
				t.Fatalf("BuildMachine: %v", err)
			}
			if len(m.Nests) < 2 {
				t.Errorf("%s: %d loop nests, want >= 2 (EDDIE needs region transitions)", w.Name, len(m.Nests))
			}
			t.Logf("%s: %d nests, %d regions", w.Name, len(m.Nests), m.NumRegions())
		})
	}
}

func TestWorkloadInputsVaryAcrossRuns(t *testing.T) {
	for _, w := range All() {
		a := w.GenInput(0)
		b := w.GenInput(1)
		same := len(a) == len(b)
		if same {
			diff := 0
			for i := range a {
				if a[i] != b[i] {
					diff++
				}
			}
			if diff == 0 {
				t.Errorf("%s: runs 0 and 1 have identical inputs", w.Name)
			}
		}
		c := w.GenInput(0)
		if len(c) != len(a) {
			t.Fatalf("%s: GenInput(0) not deterministic in length", w.Name)
		}
		for i := range a {
			if a[i] != c[i] {
				t.Fatalf("%s: GenInput(0) not deterministic at word %d", w.Name, i)
			}
		}
	}
}

func TestBitcountOracle(t *testing.T) {
	w := Bitcount()
	mem := w.GenInput(3)
	res := run(t, w, 3)
	n := int(mem[bitcountNAddr])
	var want int64
	for i := 0; i < n; i++ {
		v := uint32(mem[bitcountArr+i])
		c := int64(popcount32(v))
		want += c
		for m := 0; m < bitcountMethods; m++ {
			got := res.Mem[bitcountOut+m*bitcountMaxN+i]
			if got != c {
				t.Fatalf("method %d item %d: got %d bits, want %d (v=%#x)", m+1, i, got, c, v)
			}
		}
	}
	for m := 0; m < bitcountMethods; m++ {
		if got := res.Mem[bitcountSums+m]; got != want {
			t.Errorf("method %d checksum: got %d, want %d", m+1, got, want)
		}
	}
}

func popcount32(v uint32) int {
	c := 0
	for v != 0 {
		c += int(v & 1)
		v >>= 1
	}
	return c
}

func TestBasicmathOracle(t *testing.T) {
	w := Basicmath()
	mem := w.GenInput(5)
	res := run(t, w, 5)
	n := int(mem[basicmathNAddr])
	for i := 0; i < n; i++ {
		v := mem[basicmathArr+i]
		// Cube root: replicate the 8 Newton steps exactly.
		x := (v >> 20) + 64
		for it := 0; it < 8; it++ {
			x = (2*x + v/(x*x)) / 3
		}
		if got := res.Mem[basicmathArr+basicmathMaxN+i]; got != x {
			t.Fatalf("cbrt item %d: got %d, want %d (v=%d)", i, got, x, v)
		}
		// isqrt: exact integer square root of v & 0x3fffffff.
		vv := v & 0x3fffffff
		var s int64
		for bit := int64(15); bit >= 0; bit-- {
			trial := s | 1<<uint(bit)
			if trial*trial <= vv {
				s = trial
			}
		}
		if got := res.Mem[basicmathArr+2*basicmathMaxN+i]; got != s {
			t.Fatalf("isqrt item %d: got %d, want %d (v=%d)", i, got, s, vv)
		}
		// Degree conversion.
		rad := v * 314159 / 18000000
		if got := res.Mem[basicmathArr+3*basicmathMaxN+i]; got != rad {
			t.Fatalf("rad item %d: got %d, want %d", i, got, rad)
		}
	}
}
