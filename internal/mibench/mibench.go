// Package mibench provides the ten MiBench-equivalent workloads the paper
// evaluates EDDIE on: bitcount, basicmath, susan, dijkstra, patricia, gsm,
// fft, sha, rijndael and stringsearch, reimplemented for the simulated ISA.
//
// Each workload reproduces the loop structure of its MiBench namesake —
// the property EDDIE actually observes — with real data-dependent control
// flow driven by per-run pseudorandom inputs. Workload programs are static
// (the same CFG for every run); inputs vary per run through the initial
// memory image, mirroring the paper's training methodology of many runs
// with different inputs.
package mibench

import (
	"fmt"
	"math/rand"
	"sort"

	"eddie/internal/isa"
)

// Workload couples a program with its input generator.
type Workload struct {
	// Name is the MiBench benchmark name.
	Name string
	// Program is the static program, shared across runs.
	Program *isa.Program
	// GenInput returns the initial memory image for one run. Different
	// run indices produce different inputs deterministically.
	GenInput func(run int) []int64
}

// Register aliases used by the workload generators.
const (
	r0 isa.Reg = iota
	r1
	r2
	r3
	r4
	r5
	r6
	r7
	r8
	r9
	r10
	r11
	r12
	r13
	r14
	r15
	r16
	r17
	r18
	r19
	r20
	r21
	r22
	r23
)

// All returns the ten workloads in the paper's Table 1 order, plus the
// ICS duty-cycle workload (the deployment-class program EDDIE targets).
func All() []*Workload {
	return []*Workload{
		Bitcount(),
		Basicmath(),
		Susan(),
		Dijkstra(),
		Patricia(),
		GSM(),
		FFT(),
		Sha(),
		Rijndael(),
		Stringsearch(),
		ICSDuty(),
	}
}

// ByName returns the named workload.
func ByName(name string) (*Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	var names []string
	for _, w := range All() {
		names = append(names, w.Name)
	}
	sort.Strings(names)
	return nil, fmt.Errorf("mibench: unknown workload %q (have %v)", name, names)
}

// rng returns the deterministic per-run random source of a workload.
func rng(name string, run int) *rand.Rand {
	var seed int64 = 0x9e3779b9
	for _, c := range name {
		seed = seed*31 + int64(c)
	}
	return rand.New(rand.NewSource(seed ^ int64(run)*0x100000001b3))
}
