package mibench

import "eddie/internal/isa"

// Patricia memory layout (word addresses):
//
//	0:       M  (insert key count)
//	1:       Q  (probe key count)
//	2:       D  (trie depth in bits)
//	3..4:    outputs: node count, hit count
//	5:       next free node index (bump allocator, starts at 1)
//	keys:    16 .. 16+M                  insert keys
//	probes:  16+maxM .. +Q               probe keys
//	nodes:   nodeBase ..                 nodes: 3 words {left, right, value}
//
// Mirrors MiBench patricia: a trie-insert nest with data-dependent
// branching per key bit, then a lookup nest over probe keys. Node links
// are word indices into the node array (0 = null; node 0 is the root).
const (
	patriciaMaxM     = 2600
	patriciaMaxQ     = 2600
	patriciaKeys     = 16
	patriciaProbes   = patriciaKeys + patriciaMaxM
	patriciaNodeBase = patriciaProbes + patriciaMaxQ
	patriciaMaxNodes = 40000
	patriciaWords    = patriciaNodeBase + 3*patriciaMaxNodes
	patriciaDepth    = 12
)

// Patricia builds the patricia trie workload.
func Patricia() *Workload {
	b := isa.NewBuilder("patricia", patriciaWords)

	// Registers: r0=0, r1=M, r2=Q, r3=i, r4=key, r5=cur node addr,
	// r6=bit index, r7=scratch, r8=hits, r9=child idx, r10=next-free,
	// r11=D, r12=child slot addr, r13=scratch, r14=scratch.
	entry := b.NewBlock("entry")
	insHead := b.NewBlock("ins_head")
	insKey := b.NewBlock("ins_key")
	insBitHead := b.NewBlock("ins_bit_head")
	insBitBody := b.NewBlock("ins_bit_body")
	insAlloc := b.NewBlock("ins_alloc")
	insWalk := b.NewBlock("ins_walk")
	insLeaf := b.NewBlock("ins_leaf")
	insDone := b.NewBlock("ins_done")
	qHead := b.NewBlock("probe_head")
	qKey := b.NewBlock("probe_key")
	qBitHead := b.NewBlock("probe_bit_head")
	qBitBody := b.NewBlock("probe_bit_body")
	qMiss := b.NewBlock("probe_miss")
	qLeaf := b.NewBlock("probe_leaf")
	qHit := b.NewBlock("probe_hit")
	qNext := b.NewBlock("probe_next")
	qDone := b.NewBlock("probe_done")
	exit := b.NewBlock("exit")

	entry.
		Li(r0, 0).
		Load(r1, r0, 0).
		Load(r2, r0, 1).
		Load(r11, r0, 2).
		Li(r3, 0).
		Li(r10, 1) // node 0 is the root; allocation starts at 1
	entry.Jump(insHead)

	// Nest 1: insert M keys, walking D bits from the top.
	insHead.Branch(isa.LT, r3, r1, insKey, insDone)
	insKey.
		AddI(r7, r3, patriciaKeys).
		Load(r4, r7, 0).
		Li(r5, 0). // cur = root node index
		SubI(r6, r11, 1)
	insKey.Jump(insBitHead)
	insBitHead.Branch(isa.GE, r6, r0, insBitBody, insLeaf)
	insBitBody.
		// child slot = &nodes[cur].left + bit(key, r6)
		Shr(r7, r4, r6).
		AndI(r7, r7, 1).
		MulI(r12, r5, 3).
		AddI(r12, r12, patriciaNodeBase).
		Add(r12, r12, r7).
		Load(r9, r12, 0)
	insBitBody.Branch(isa.EQ, r9, r0, insAlloc, insWalk)
	insAlloc.
		// allocate node r10, link it into the slot
		Store(r12, 0, r10).
		Mov(r9, r10).
		AddI(r10, r10, 1)
	insAlloc.Jump(insWalk)
	insWalk.
		Mov(r5, r9).
		SubI(r6, r6, 1)
	insWalk.Jump(insBitHead)
	insLeaf.
		// value += 1 at the leaf (counts duplicate keys too)
		MulI(r12, r5, 3).
		AddI(r12, r12, patriciaNodeBase).
		Load(r7, r12, 2).
		AddI(r7, r7, 1).
		Store(r12, 2, r7).
		AddI(r3, r3, 1)
	insLeaf.Jump(insHead)
	insDone.
		Store(r0, 3, r10).
		Li(r3, 0).
		Li(r8, 0)
	insDone.Jump(qHead)

	// Nest 2: probe Q keys; count how many reach a populated leaf.
	qHead.Branch(isa.LT, r3, r2, qKey, qDone)
	qKey.
		AddI(r7, r3, patriciaProbes).
		Load(r4, r7, 0).
		Li(r5, 0).
		SubI(r6, r11, 1)
	qKey.Jump(qBitHead)
	qBitHead.Branch(isa.GE, r6, r0, qBitBody, qLeaf)
	qBitBody.
		Shr(r7, r4, r6).
		AndI(r7, r7, 1).
		MulI(r12, r5, 3).
		AddI(r12, r12, patriciaNodeBase).
		Add(r12, r12, r7).
		Load(r9, r12, 0)
	qBitBody.Branch(isa.EQ, r9, r0, qMiss, qWalk(b, qBitHead))
	qMiss.
		Nop()
	qMiss.Jump(qNext)
	qLeaf.
		MulI(r12, r5, 3).
		AddI(r12, r12, patriciaNodeBase).
		Load(r7, r12, 2)
	qLeaf.Branch(isa.GT, r7, r0, qHit, qNext)
	qHit.
		AddI(r8, r8, 1)
	qHit.Jump(qNext)
	qNext.
		AddI(r3, r3, 1)
	qNext.Jump(qHead)
	qDone.
		Store(r0, 4, r8)
	qDone.Jump(exit)
	exit.Halt()

	prog := b.Build()
	return &Workload{Name: "patricia", Program: prog, GenInput: patriciaInput}
}

// qWalk advances the probe walk to the child and loops back to the bit head.
func qWalk(b *isa.Builder, bitHead *isa.BlockBuilder) *isa.BlockBuilder {
	w := b.NewBlock("probe_walk")
	w.
		Mov(r5, r9).
		SubI(r6, r6, 1)
	w.Jump(bitHead)
	return w
}

// patriciaInput builds one run's memory image: random keys clustered so
// that probe hit rate is data-dependent.
func patriciaInput(run int) []int64 {
	r := rng("patricia", run)
	m := 2200 + r.Intn(300)
	q := 2200 + r.Intn(300)
	mem := make([]int64, patriciaProbes+patriciaMaxQ)
	mem[0] = int64(m)
	mem[1] = int64(q)
	mem[2] = patriciaDepth
	for i := 0; i < m; i++ {
		mem[patriciaKeys+i] = int64(r.Int31n(1 << patriciaDepth))
	}
	for i := 0; i < q; i++ {
		if r.Intn(2) == 0 {
			// probe an inserted key
			mem[patriciaProbes+i] = mem[patriciaKeys+r.Intn(m)]
		} else {
			mem[patriciaProbes+i] = int64(r.Int31n(1 << patriciaDepth))
		}
	}
	return mem
}
