package mibench

import (
	"testing"

	"eddie/internal/cfg"
	"eddie/internal/isa"
)

// TestWorkloadInstructionMixes verifies each workload exercises a
// realistic mix: memory operations, multiplies (where its namesake is
// multiply-heavy), and data-dependent branches. A workload whose dynamic
// stream is all ALU ops would give the power model nothing to modulate.
func TestWorkloadInstructionMixes(t *testing.T) {
	type mix struct {
		mem, mul, branch, total int64
		taken                   int64
	}
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			var m mix
			_, err := isa.Execute(w.Program, isa.ExecConfig{
				MaxInstrs: 20_000_000,
				InitMem:   w.GenInput(1),
			}, func(di *isa.DynInstr) bool {
				m.total++
				switch {
				case di.IsBranch:
					m.branch++
					if di.Taken {
						m.taken++
					}
				case di.Op.IsMem():
					m.mem++
				case di.Op == isa.Mul:
					m.mul++
				}
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			memFrac := float64(m.mem) / float64(m.total)
			branchFrac := float64(m.branch) / float64(m.total)
			if memFrac < 0.02 {
				t.Errorf("memory ops only %.1f%% of the stream", memFrac*100)
			}
			if branchFrac < 0.03 || branchFrac > 0.5 {
				t.Errorf("branches are %.1f%% of the stream", branchFrac*100)
			}
			// Branches must not be all-taken or all-fallthrough: loop
			// back-edges dominate, but exits and data-dependent branches
			// must appear.
			takenFrac := float64(m.taken) / float64(m.branch)
			if takenFrac < 0.15 || takenFrac > 0.999 {
				t.Errorf("taken fraction %.3f implausible", takenFrac)
			}
			t.Logf("%s: %.1f%% mem, %.1f%% mul, %.1f%% branch (%.1f%% taken)",
				w.Name, memFrac*100, float64(m.mul)/float64(m.total)*100,
				branchFrac*100, takenFrac*100)
		})
	}
}

// TestWorkloadRegionDwells verifies every workload's loop nests each hold
// a meaningful share of execution: EDDIE needs regions that last many
// STFT windows.
func TestWorkloadRegionDwells(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			machine, err := cfg.BuildMachine(w.Program)
			if err != nil {
				t.Fatal(err)
			}
			counts := make([]int64, len(machine.Nests))
			var total int64
			_, err = isa.Execute(w.Program, isa.ExecConfig{
				MaxInstrs: 20_000_000,
				InitMem:   w.GenInput(2),
			}, func(di *isa.DynInstr) bool {
				total++
				if n := machine.BlockNest[di.Block]; n >= 0 {
					counts[n]++
				}
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			var inNests int64
			for nest, c := range counts {
				inNests += c
				if c < 10_000 {
					t.Errorf("nest %d executes only %d instructions; too brief to model", nest, c)
				}
			}
			if frac := float64(inNests) / float64(total); frac < 0.95 {
				t.Errorf("only %.1f%% of execution inside loop nests; inter-loop code dominates", frac*100)
			}
		})
	}
}

// TestWorkloadRuntimeWalkAcceptedByMachine ties every workload's dynamic
// region sequence to its static region machine.
func TestWorkloadRuntimeWalkAcceptedByMachine(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			machine, err := cfg.BuildMachine(w.Program)
			if err != nil {
				t.Fatal(err)
			}
			var nestSeq []int
			prev := -2
			_, err = isa.Execute(w.Program, isa.ExecConfig{
				MaxInstrs: 20_000_000,
				InitMem:   w.GenInput(3),
			}, func(di *isa.DynInstr) bool {
				if n := machine.BlockNest[di.Block]; n != prev {
					if n >= 0 {
						nestSeq = append(nestSeq, n)
					}
					prev = n
				}
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			var walk []cfg.RegionID
			last := cfg.Boundary
			for _, n := range nestSeq {
				if n == last {
					continue
				}
				if tr, ok := machine.TransRegionOf(last, n); ok {
					walk = append(walk, tr)
				}
				walk = append(walk, machine.LoopRegionOf(n))
				last = n
			}
			if !machine.Accepts(walk) {
				t.Errorf("runtime region walk rejected by the machine (len %d)", len(walk))
			}
		})
	}
}
