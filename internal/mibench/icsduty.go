package mibench

import "eddie/internal/isa"

// ICSDuty memory layout (word addresses):
//
//	0:        C (scan cycle count)
//	1..4:     per-phase checksum outputs (filter, pid, duty, final)
//	5:        watchdog heartbeat word (stored from the duty phase)
//	8..71:    duty-cycle pattern table (64 words)
//	sens:     icsSens .. +icsS   raw sensor readings
//	setp:     icsSetp .. +icsS   control setpoints
//	filt:     icsFilt .. +icsS   filtered sensor state
//	prev:     icsPrev .. +icsS   previous control error (derivative term)
//	integ:    icsInteg .. +icsS  integrator state
//	outp:     icsOut .. +icsS    actuator outputs
//
// The program mirrors an ICS/PLC scan-cycle firmware — the long-lived,
// periodic workload class EDDIE targets in deployment: an input filter
// pass, a PID control-law pass with anti-windup and output saturation
// (data-dependent clamping branches), and a duty-cycled poll phase that
// alternates heavy table-driven bursts with light busy-wait spins. Each
// phase is its own top-level loop nest sweeping all scan cycles, so the
// region machine sees the same nest structure as the other workloads.
const (
	icsS     = 256 // sensors / actuators (power of two: masked indexing)
	icsP     = 256 // poll slots per scan cycle
	icsDuty  = 8
	icsSens  = 128
	icsSetp  = icsSens + icsS
	icsFilt  = icsSetp + icsS
	icsPrev  = icsFilt + icsS
	icsInteg = icsPrev + icsS
	icsOut   = icsInteg + icsS
	icsWords = icsOut + icsS
)

// ICSDuty builds the industrial-control duty-cycle workload.
func ICSDuty() *Workload {
	b := isa.NewBuilder("icsduty", icsWords)

	// Registers: r0=0, r1=C, r2=cycle, r3=i/k, r4=addr, r5=value,
	// r6=checksum acc, r7=scratch, r8=error, r9=integrator, r10=deriv,
	// r11=control output, r12=limit, r13=spin state, r14=loop bound.
	entry := b.NewBlock("entry")
	flHead := b.NewBlock("fl_head")
	flCyc := b.NewBlock("fl_cyc")
	flIHead := b.NewBlock("fl_i_head")
	flIBody := b.NewBlock("fl_i_body")
	flCycDone := b.NewBlock("fl_cyc_done")
	flDone := b.NewBlock("fl_done")
	pidHead := b.NewBlock("pid_head")
	pidCyc := b.NewBlock("pid_cyc")
	pidIHead := b.NewBlock("pid_i_head")
	pidIBody := b.NewBlock("pid_i_body")
	pidWindHi := b.NewBlock("pid_wind_hi")
	pidWindLoChk := b.NewBlock("pid_wind_lo_chk")
	pidWindLo := b.NewBlock("pid_wind_lo")
	pidDer := b.NewBlock("pid_der")
	pidSatHi := b.NewBlock("pid_sat_hi")
	pidSatLoChk := b.NewBlock("pid_sat_lo_chk")
	pidSatLo := b.NewBlock("pid_sat_lo")
	pidOut := b.NewBlock("pid_out")
	pidCycDone := b.NewBlock("pid_cyc_done")
	pidDone := b.NewBlock("pid_done")
	dtHead := b.NewBlock("dt_head")
	dtCyc := b.NewBlock("dt_cyc")
	dtIHead := b.NewBlock("dt_i_head")
	dtIBody := b.NewBlock("dt_i_body")
	dtHeavy := b.NewBlock("dt_heavy")
	dtLight := b.NewBlock("dt_light")
	dtNext := b.NewBlock("dt_next")
	dtCycDone := b.NewBlock("dt_cyc_done")
	dtDone := b.NewBlock("dt_done")
	exit := b.NewBlock("exit")

	entry.
		Li(r0, 0).
		Load(r1, r0, 0).
		Li(r2, 0).
		Li(r6, 0).
		Li(r13, 0)
	entry.Jump(flHead)

	// Nest 1: exponential input filter, all scan cycles. The read order
	// rotates with the cycle (i + 7c mod S), so addresses and filter
	// trajectories are data-dependent.
	flHead.Branch(isa.LT, r2, r1, flCyc, flDone)
	flCyc.
		Li(r3, 0).
		MulI(r7, r2, 7)
	flCyc.Jump(flIHead)
	flIHead.
		Li(r14, icsS)
	flIHead.Branch(isa.LT, r3, r14, flIBody, flCycDone)
	flIBody.
		Add(r4, r3, r7).
		AndI(r4, r4, icsS-1).
		AddI(r4, r4, icsSens).
		Load(r5, r4, 0).
		AddI(r4, r3, icsFilt).
		Load(r8, r4, 0).
		MulI(r8, r8, 3).
		Add(r8, r8, r5).
		ShrI(r8, r8, 2).
		Store(r4, 0, r8).
		Add(r6, r6, r8).
		AddI(r3, r3, 1)
	flIBody.Jump(flIHead)
	flCycDone.
		AddI(r2, r2, 1)
	flCycDone.Jump(flHead)
	flDone.
		Store(r0, 1, r6).
		Li(r2, 0).
		Li(r6, 0)
	flDone.Jump(pidHead)

	// Nest 2: PID control law with integrator anti-windup and output
	// saturation — the clamping branches fire data-dependently as the
	// integrator charges over the scan cycles. The windup limit is tight
	// (a few cycles' worth of error) so the charge transient is short and
	// the per-cycle branch pattern settles to a run-stable steady state.
	pidHead.Branch(isa.LT, r2, r1, pidCyc, pidDone)
	pidCyc.
		Li(r3, 0)
	pidCyc.Jump(pidIHead)
	pidIHead.
		Li(r14, icsS)
	pidIHead.Branch(isa.LT, r3, r14, pidIBody, pidCycDone)
	pidIBody.
		AddI(r4, r3, icsSetp).
		Load(r5, r4, 0).
		AddI(r4, r3, icsFilt).
		Load(r7, r4, 0).
		Sub(r8, r5, r7).
		AddI(r4, r3, icsInteg).
		Load(r9, r4, 0).
		Add(r9, r9, r8).
		Li(r12, 4096)
	pidIBody.Branch(isa.GT, r9, r12, pidWindHi, pidWindLoChk)
	pidWindHi.
		Mov(r9, r12)
	pidWindHi.Jump(pidDer)
	pidWindLoChk.
		Li(r12, -4096)
	pidWindLoChk.Branch(isa.LT, r9, r12, pidWindLo, pidDer)
	pidWindLo.
		Mov(r9, r12)
	pidWindLo.Jump(pidDer)
	pidDer.
		AddI(r4, r3, icsPrev).
		Load(r10, r4, 0).
		Sub(r10, r8, r10).
		Store(r4, 0, r8).
		AddI(r4, r3, icsInteg).
		Store(r4, 0, r9).
		MulI(r11, r8, 3).
		Add(r11, r11, r10).
		Add(r11, r11, r9).
		Li(r12, 4095)
	pidDer.Branch(isa.GT, r11, r12, pidSatHi, pidSatLoChk)
	pidSatHi.
		Mov(r11, r12)
	pidSatHi.Jump(pidOut)
	pidSatLoChk.Branch(isa.LT, r11, r0, pidSatLo, pidOut)
	pidSatLo.
		Li(r11, 0)
	pidSatLo.Jump(pidOut)
	pidOut.
		AddI(r4, r3, icsOut).
		Store(r4, 0, r11).
		Add(r6, r6, r11).
		AddI(r3, r3, 1)
	pidOut.Jump(pidIHead)
	pidCycDone.
		AddI(r2, r2, 1)
	pidCycDone.Jump(pidHead)
	pidDone.
		Store(r0, 2, r6).
		Li(r2, 0).
		Li(r6, 0)
	pidDone.Jump(dtHead)

	// Nest 3: duty-cycled polling on a fixed alternating schedule (slot
	// parity flips with the scan cycle, as a real PLC poll table would):
	// heavy slots do table-driven output accumulation scaled by the duty
	// word plus a watchdog heartbeat store, light slots spin a cheap
	// LFSR-ish state. The schedule is deliberately input-independent so
	// the loop period — what EDDIE fingerprints — is stable run to run;
	// the duty table only scales the accumulated data.
	dtHead.Branch(isa.LT, r2, r1, dtCyc, dtDone)
	dtCyc.
		Li(r3, 0)
	dtCyc.Jump(dtIHead)
	dtIHead.
		Li(r14, icsP)
	dtIHead.Branch(isa.LT, r3, r14, dtIBody, dtCycDone)
	dtIBody.
		AndI(r4, r3, 63).
		AddI(r4, r4, icsDuty).
		Load(r5, r4, 0).
		Add(r7, r3, r2).
		AndI(r7, r7, 1)
	dtIBody.Branch(isa.NE, r7, r0, dtHeavy, dtLight)
	dtHeavy.
		MulI(r4, r3, 13).
		Add(r4, r4, r2).
		AndI(r4, r4, icsS-1).
		AddI(r4, r4, icsOut).
		Load(r7, r4, 0).
		Mul(r7, r7, r5).
		Add(r6, r6, r7).
		Store(r0, 5, r6)
	dtHeavy.Jump(dtNext)
	dtLight.
		ShlI(r7, r13, 1).
		Xor(r13, r13, r7).
		AddI(r13, r13, 1).
		AndI(r13, r13, 0xffff)
	dtLight.Jump(dtNext)
	dtNext.
		AddI(r3, r3, 1)
	dtNext.Jump(dtIHead)
	dtCycDone.
		AddI(r2, r2, 1)
	dtCycDone.Jump(dtHead)
	dtDone.
		Store(r0, 3, r6).
		Load(r5, r0, 1).
		Load(r7, r0, 2).
		Xor(r5, r5, r7).
		Load(r7, r0, 3).
		Xor(r5, r5, r7).
		Add(r5, r5, r13).
		Store(r0, 4, r5)
	dtDone.Jump(exit)
	exit.Halt()

	prog := b.Build()
	return &Workload{Name: "icsduty", Program: prog, GenInput: icsDutyInput}
}

// icsDutyInput builds one run's memory image: scan-cycle count, sensor
// readings, setpoints and the duty pattern all vary per run.
func icsDutyInput(run int) []int64 {
	r := rng("icsduty", run)
	mem := make([]int64, icsWords)
	// 88..112 scan cycles: ~1.3-1.7M dynamic instructions, inside the
	// tiny-fixture 2M budget (pipetest.TinyConfig) with headroom.
	mem[0] = int64(88 + r.Intn(25)) // C
	for i := 0; i < 64; i++ {
		mem[icsDuty+i] = int64(1 + r.Intn(16))
	}
	for i := 0; i < icsS; i++ {
		mem[icsSens+i] = int64(r.Intn(4096))
		mem[icsSetp+i] = int64(r.Intn(4096))
	}
	return mem
}
