package mibench

import "eddie/internal/isa"

// Basicmath memory layout (word addresses):
//
//	0:            N (item count, <= basicmathMaxN)
//	1..3:         per-phase checksum outputs
//	16..16+maxN:  input array V (positive values)
//	cbrt out:     16+maxN
//	isqrt out:    16+2*maxN
//	rad out:      16+3*maxN
//
// Mirrors MiBench basicmath: cube-root solving (Newton iteration), integer
// square root (bit-by-bit), and angle conversion, each its own loop nest.
const (
	basicmathMaxN  = 2048
	basicmathNAddr = 0
	basicmathSums  = 1
	basicmathArr   = 16
	basicmathWords = basicmathArr + basicmathMaxN*4
	basicmathN     = 1100
)

// Basicmath builds the basicmath workload.
func Basicmath() *Workload {
	b := isa.NewBuilder("basicmath", basicmathWords)

	// Registers: r0=0, r1=N, r2=i, r3=v, r4=x/result, r5=addr/scratch,
	// r6=inner counter, r7/r9/r10=scratch, r8=checksum, r11=bit.
	entry := b.NewBlock("entry")
	cbHead := b.NewBlock("cbrt_head")
	cbItem := b.NewBlock("cbrt_item")
	cbIterHead := b.NewBlock("cbrt_iter_head")
	cbIterBody := b.NewBlock("cbrt_iter_body")
	cbItemDone := b.NewBlock("cbrt_item_done")
	cbDone := b.NewBlock("cbrt_done")
	sqHead := b.NewBlock("isqrt_head")
	sqItem := b.NewBlock("isqrt_item")
	sqBitHead := b.NewBlock("isqrt_bit_head")
	sqBitBody := b.NewBlock("isqrt_bit_body")
	sqBitSet := b.NewBlock("isqrt_bit_set")
	sqBitNext := b.NewBlock("isqrt_bit_next")
	sqItemDone := b.NewBlock("isqrt_item_done")
	sqDone := b.NewBlock("isqrt_done")
	radHead := b.NewBlock("rad_head")
	radItem := b.NewBlock("rad_item")
	radDone := b.NewBlock("rad_done")
	exit := b.NewBlock("exit")

	entry.
		Li(r0, 0).
		Load(r1, r0, basicmathNAddr).
		Li(r2, 0).
		Li(r8, 0)
	entry.Jump(cbHead)

	// Phase 1: integer cube root by 8 Newton steps:
	// x <- (2x + v/(x*x)) / 3, seeded with x = (v >> 20) + 64.
	cbHead.Branch(isa.LT, r2, r1, cbItem, cbDone)
	cbItem.
		AddI(r5, r2, basicmathArr).
		Load(r3, r5, 0).
		ShrI(r4, r3, 20).
		AddI(r4, r4, 64).
		Li(r6, 0)
	cbItem.Jump(cbIterHead)
	cbIterHead.
		Li(r7, 8)
	cbIterHead.Branch(isa.LT, r6, r7, cbIterBody, cbItemDone)
	cbIterBody.
		Mul(r9, r4, r4).
		Div(r9, r3, r9).
		MulI(r10, r4, 2).
		Add(r9, r9, r10).
		Li(r10, 3).
		Div(r4, r9, r10).
		AddI(r6, r6, 1)
	cbIterBody.Jump(cbIterHead)
	cbItemDone.
		AddI(r5, r2, basicmathArr+basicmathMaxN).
		Store(r5, 0, r4).
		Add(r8, r8, r4).
		AddI(r2, r2, 1)
	cbItemDone.Jump(cbHead)
	cbDone.
		Store(r0, basicmathSums+0, r8).
		Li(r2, 0).
		Li(r8, 0)
	cbDone.Jump(sqHead)

	// Phase 2: integer square root, bit-by-bit from bit 15 down.
	sqHead.Branch(isa.LT, r2, r1, sqItem, sqDone)
	sqItem.
		AddI(r5, r2, basicmathArr).
		Load(r3, r5, 0).
		AndI(r3, r3, 0x3fffffff).
		Li(r4, 0).
		Li(r11, 15)
	sqItem.Jump(sqBitHead)
	sqBitHead.Branch(isa.GE, r11, r0, sqBitBody, sqItemDone)
	sqBitBody.
		// trial = x | (1 << bit); if trial*trial <= v keep it.
		Li(r7, 1).
		Shl(r7, r7, r11).
		Or(r7, r4, r7).
		Mul(r9, r7, r7).
		Nop()
	sqBitBody.Branch(isa.LE, r9, r3, sqBitSet, sqBitNext)
	sqBitSet.
		Li(r7, 1).
		Shl(r7, r7, r11).
		Or(r4, r4, r7)
	sqBitSet.Jump(sqBitNext)
	sqBitNext.
		SubI(r11, r11, 1)
	sqBitNext.Jump(sqBitHead)
	sqItemDone.
		AddI(r5, r2, basicmathArr+2*basicmathMaxN).
		Store(r5, 0, r4).
		Add(r8, r8, r4).
		AddI(r2, r2, 1)
	sqItemDone.Jump(sqHead)
	sqDone.
		Store(r0, basicmathSums+1, r8).
		Li(r2, 0).
		Li(r8, 0)
	sqDone.Jump(radHead)

	// Phase 3: fixed-point degree-to-radian conversion:
	// rad = v * 314159 / 18000000 (values treated as millidegrees).
	radHead.Branch(isa.LT, r2, r1, radItem, radDone)
	radItem.
		AddI(r5, r2, basicmathArr).
		Load(r3, r5, 0).
		MulI(r4, r3, 314159).
		Li(r7, 18000000).
		Div(r4, r4, r7).
		AddI(r5, r2, basicmathArr+3*basicmathMaxN).
		Store(r5, 0, r4).
		Add(r8, r8, r4).
		AddI(r2, r2, 1)
	radItem.Jump(radHead)
	radDone.
		Store(r0, basicmathSums+2, r8)
	radDone.Jump(exit)
	exit.Halt()

	prog := b.Build()
	return &Workload{
		Name:    "basicmath",
		Program: prog,
		GenInput: func(run int) []int64 {
			r := rng("basicmath", run)
			n := basicmathN + r.Intn(300) - 150
			mem := make([]int64, basicmathArr+basicmathMaxN)
			mem[basicmathNAddr] = int64(n)
			for i := 0; i < n; i++ {
				mem[basicmathArr+i] = int64(r.Int31n(1<<28) + 1)
			}
			return mem
		},
	}
}
